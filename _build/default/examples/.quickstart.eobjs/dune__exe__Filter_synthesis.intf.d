examples/filter_synthesis.mli:
