examples/ladder_sweep.ml: Array List Printf Symref_circuit Symref_core Symref_mna Symref_numeric Symref_poly
