examples/ladder_sweep.mli:
