examples/ota_table1.ml: Printf Symref_circuit Symref_core Symref_mna
