examples/ota_table1.mli:
