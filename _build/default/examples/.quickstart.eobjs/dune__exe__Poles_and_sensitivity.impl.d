examples/poles_and_sensitivity.ml: Complex Float Format List Printf String Symref_circuit Symref_core Symref_mna Symref_numeric
