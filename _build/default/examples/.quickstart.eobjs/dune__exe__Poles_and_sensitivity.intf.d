examples/poles_and_sensitivity.mli:
