examples/quickstart.ml: Array Complex Float Format Printf Symref_circuit Symref_core Symref_mna Symref_numeric
