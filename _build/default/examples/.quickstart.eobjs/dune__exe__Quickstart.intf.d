examples/quickstart.mli:
