examples/sbg_demo.ml: Format List Printf String Symref_circuit Symref_mna Symref_numeric Symref_symbolic
