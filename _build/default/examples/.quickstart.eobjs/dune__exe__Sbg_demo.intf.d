examples/sbg_demo.mli:
