examples/sdg_demo.ml: Array List Printf Seq Symref_circuit Symref_core Symref_mna Symref_numeric Symref_symbolic
