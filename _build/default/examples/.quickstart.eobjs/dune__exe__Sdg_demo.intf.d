examples/sdg_demo.mli:
