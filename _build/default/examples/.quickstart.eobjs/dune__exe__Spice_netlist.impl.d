examples/spice_netlist.ml: Array Complex Float Format Printf Symref_circuit Symref_core Symref_mna Symref_numeric Symref_spice
