examples/spice_netlist.mli:
