examples/tolerance_and_noise.ml: Array Complex Float Format List Printf Symref_core Symref_mna Symref_numeric Symref_spice
