examples/tolerance_and_noise.mli:
