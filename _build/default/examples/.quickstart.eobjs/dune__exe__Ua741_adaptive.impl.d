examples/ua741_adaptive.ml: Float Format List Printf Symref_circuit Symref_core Symref_mna Symref_numeric
