examples/ua741_adaptive.mli:
