(* Filter synthesis end to end: prototype poles -> gm-C cascade ->
   references -> response, for the three classical all-pole families.

     dune exec examples/filter_synthesis.exe
*)

module Fd = Symref_circuit.Filter_design
module Biquad = Symref_circuit.Biquad
module Nodal = Symref_mna.Nodal
module Reference = Symref_core.Reference
module Rational = Symref_core.Rational
module Plot = Symref_core.Ascii_plot
module Grid = Symref_numeric.Grid

let fc = 1e6
let order = 5

let response kind =
  let r =
    Reference.generate
      (Fd.realize kind ~order ~f_cut_hz:fc)
      ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out")
  in
  let freqs = Grid.decades ~start:1e4 ~stop:1e8 ~per_decade:12 in
  let mags =
    Array.map
      (fun f ->
        20.
        *. Float.log10
             (Complex.norm
                (Reference.eval r { Complex.re = 0.; im = 2. *. Float.pi *. f })))
      freqs
  in
  (r, freqs, mags)

let () =
  Printf.printf "5th-order 1 MHz lowpass, three classical families:\n\n";
  List.iter
    (fun (kind, name) ->
      Printf.printf "--- %s sections:\n" name;
      List.iter
        (fun sec ->
          match sec with
          | Fd.Second_order d ->
              Printf.printf "  biquad  f0 = %8.4g Hz  Q = %.4f\n" d.Biquad.f0_hz
                d.Biquad.q
          | Fd.First_order f0 -> Printf.printf "  1st-ord f0 = %8.4g Hz\n" f0)
        (Fd.sections kind ~order ~f_cut_hz:fc))
    [ (Fd.Butterworth, "Butterworth"); (Fd.Chebyshev 1., "Chebyshev 1 dB");
      (Fd.Bessel, "Bessel") ];

  let _, freqs, bw = response Fd.Butterworth in
  let _, _, ch = response (Fd.Chebyshev 1.) in
  print_newline ();
  print_string
    (Plot.render ~y_label:"Magnitude (dB): Butterworth vs Chebyshev"
       [
         { Plot.label = "butterworth"; xs = freqs; ys = bw };
         { Plot.label = "chebyshev 1dB"; xs = freqs; ys = ch };
       ]);

  (* Group delay comparison at a few in-band points. *)
  let rb, _, _ = response Fd.Butterworth in
  let rbes, _, _ = response Fd.Bessel in
  let tb = Rational.of_reference rb and tbes = Rational.of_reference rbes in
  print_endline "\nin-band group delay (ns):";
  Printf.printf "  %-12s %-14s %-14s\n" "freq" "butterworth" "bessel";
  List.iter
    (fun f ->
      Printf.printf "  %-12.3g %-14.2f %-14.2f\n" f
        (1e9 *. Rational.group_delay tb ~freq_hz:f)
        (1e9 *. Rational.group_delay tbes ~freq_hz:f))
    [ 1e4; 2e5; 5e5; 8e5 ];
  print_endline "(the Bessel column is flat - that is its design property)"
