(* Scalability sweep (the paper's motivation: "large analog circuits"):
   generate references for RC ladders of growing order and show where each
   method stops working — naive at ~1-2 coefficients, fixed scale at ~10-20
   coefficients, adaptive everywhere — with exact-coefficient validation
   from the ladder's closed form.

     dune exec examples/ladder_sweep.exe
*)

module Ladder = Symref_circuit.Rc_ladder
module Nodal = Symref_mna.Nodal
module Evaluator = Symref_core.Evaluator
module Naive = Symref_core.Naive
module Fixed_scale = Symref_core.Fixed_scale
module Adaptive = Symref_core.Adaptive
module Band = Symref_core.Band
module Epoly = Symref_poly.Epoly
module Ef = Symref_numeric.Extfloat

let band_width = function None -> 0 | Some b -> Band.width b

let max_rel_error exact (r : Adaptive.result) =
  let e0 = Epoly.coeff exact 0 and d0 = r.Adaptive.coeffs.(0) in
  let worst = ref 0. in
  Array.iteri
    (fun i c ->
      if r.Adaptive.established.(i) then begin
        let got = Ef.div c d0 and want = Ef.div (Epoly.coeff exact i) e0 in
        if not (Ef.is_zero want) then begin
          let rel = Ef.to_float (Ef.abs (Ef.div (Ef.sub got want) want)) in
          if rel > !worst then worst := rel
        end
      end)
    r.Adaptive.coeffs;
  !worst

let () =
  (* Graded ladders: element values spread by 1.5x per section, giving the
     wide coefficient ranges of extracted parasitic networks. *)
  let spread = 1.5 in
  Printf.printf "%-6s  %-12s  %-12s  %-8s  %-8s  %-10s\n" "order" "naive band"
    "fixed band" "passes" "LU" "max error";
  List.iter
    (fun n ->
      let circuit = Ladder.circuit ~spread n in
      let problem =
        Nodal.make circuit ~input:(Nodal.Vsrc_element "vin")
          ~output:(Nodal.Out_node Ladder.output_node)
      in
      let naive = Naive.run (Evaluator.of_nodal problem ~num:false) in
      let fixed =
        Fixed_scale.run
          ~f:(1. /. Nodal.mean_capacitance problem)
          ~g:(1. /. Nodal.mean_conductance problem)
          (Evaluator.of_nodal problem ~num:false)
      in
      let den_ev = Evaluator.of_nodal problem ~num:false in
      let adaptive = Adaptive.run den_ev in
      let exact = Ladder.exact_denominator ~spread n in
      Printf.printf "%-6d  %-3d of %-5d  %-3d of %-5d  %-8d  %-8d  %.2e%s\n" n
        (band_width naive.Naive.band) (n + 1)
        (band_width fixed.Fixed_scale.band)
        (n + 1) adaptive.Adaptive.passes adaptive.Adaptive.evaluations
        (max_rel_error exact adaptive)
        (if adaptive.Adaptive.converged then "" else "  (not converged)"))
    [ 2; 5; 10; 20; 30; 40; 60; 80 ]
