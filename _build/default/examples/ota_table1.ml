(* Walkthrough of paper §2.2 and §3 on the positive-feedback OTA of Fig. 1:
   why plain unit-circle interpolation produces round-off garbage (Table 1a)
   and how a fixed frequency scale factor rescues the low-order coefficients
   (Table 1b).

     dune exec examples/ota_table1.exe
*)

module Ota = Symref_circuit.Ota
module Nodal = Symref_mna.Nodal
module Evaluator = Symref_core.Evaluator
module Naive = Symref_core.Naive
module Fixed_scale = Symref_core.Fixed_scale
module Report = Symref_core.Report

let () =
  let problem =
    Nodal.make Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output)
  in
  Printf.printf
    "OTA of Fig. 1: %d capacitors -> order estimate %d; %d free nodes\n\n"
    (Symref_circuit.Netlist.capacitor_count Ota.circuit)
    (Nodal.order_bound problem) (Nodal.dimension problem);

  (* --- Table 1a: interpolation points on the unit circle, no scaling. *)
  let num_ev = Evaluator.of_nodal problem ~num:true in
  let den_ev = Evaluator.of_nodal problem ~num:false in
  let num = Naive.run num_ev and den = Naive.run den_ev in
  print_string
    (Report.naive_table
       ~title:
         "Table 1a analogue: unit-circle interpolation, no scaling.\n\
          Note the imaginary parts comparable to the real parts beyond the\n\
          first coefficients - round-off, not data."
       ~num ~den ());
  Printf.printf "garbage fraction: num %.0f%%, den %.0f%%\n\n"
    (100. *. Naive.garbage_fraction num)
    (100. *. Naive.garbage_fraction den);

  (* --- Table 1b: fixed frequency scale factor (the paper uses 1e9). *)
  let f = 1e9 in
  let den_scaled = Fixed_scale.run ~f (Evaluator.of_nodal problem ~num:false) in
  print_string
    (Report.fixed_scale_table
       ~title:
         (Printf.sprintf
            "Table 1b analogue: denominator with frequency scale factor %g.\n\
             The starred band now carries 6 significant digits." f)
       den_scaled);
  let num_scaled = Fixed_scale.run ~f (Evaluator.of_nodal problem ~num:true) in
  print_string
    (Report.fixed_scale_table ~title:"numerator with the same scale:" num_scaled)
