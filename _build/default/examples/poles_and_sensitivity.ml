(* Downstream design insight from accurate references: pole/zero extraction
   (meaningless on round-off-corrupted coefficients) and element
   sensitivities on a gm-C biquad cascade with known answers.

     dune exec examples/poles_and_sensitivity.exe
*)

module Biquad = Symref_circuit.Biquad
module Nodal = Symref_mna.Nodal
module Sensitivity = Symref_mna.Sensitivity
module Reference = Symref_core.Reference
module Poles = Symref_core.Poles
module Cx = Symref_numeric.Cx

let () =
  (* A 6th-order 1 MHz Butterworth lowpass: three biquads with the classic
     Q values 0.518, 0.707, 1.932. *)
  let designs =
    List.map
      (fun q -> { Biquad.f0_hz = 1e6; q; gm = 40e-6 })
      [ 0.5176; 0.7071; 1.9319 ]
  in
  let circuit = Biquad.cascade designs in
  let input = Nodal.Vsrc_element "vin" in
  let output = Nodal.Out_node "out" in

  let r = Reference.generate circuit ~input ~output in
  Printf.printf "references: den order %d, %d LU evaluations total\n\n"
    r.Reference.den.Symref_core.Adaptive.effective_order
    (Reference.total_evaluations r);

  (* Poles vs the design targets. *)
  let a = Poles.analyse r in
  Format.printf "%a@." Poles.pp a;
  print_endline "designed:";
  List.iter
    (fun (d : Biquad.design) ->
      Printf.printf "  pole pair at %g Hz, Q = %.4f\n" d.Biquad.f0_hz d.Biquad.q)
    designs;

  (* Who sets the passband edge?  Sensitivities at the corner. *)
  print_endline "\nsensitivities at 1 MHz (top 8):";
  let entries = Sensitivity.at circuit ~input ~output ~freq_hz:1e6 in
  List.iteri
    (fun i (e : Sensitivity.entry) ->
      if i < 8 then
        Printf.printf "  %-10s |S| = %-8.3f (%+.4f dB per +1%%)\n"
          e.Sensitivity.element
          (Complex.norm e.Sensitivity.s)
          e.Sensitivity.mag_db_per_percent)
    entries;

  (* The highest-Q section must dominate the corner behaviour. *)
  let max_by_prefix p =
    List.fold_left
      (fun acc (e : Sensitivity.entry) ->
        if String.length e.Sensitivity.element >= String.length p
           && String.sub e.Sensitivity.element 0 (String.length p) = p
        then Float.max acc (Complex.norm e.Sensitivity.s)
        else acc)
      0. entries
  in
  Printf.printf "\nper-section worst |S| at the corner: b1 %.3f, b2 %.3f, b3 %.3f\n"
    (max_by_prefix "b1.") (max_by_prefix "b2.") (max_by_prefix "b3.");
  print_endline "(the Q = 1.93 section, b3, dominates - as any filter designer expects)"
