(* Quickstart: build a small RC circuit, generate numerical references for
   its transfer function, and print them.

     dune exec examples/quickstart.exe
*)

module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Reference = Symref_core.Reference
module Report = Symref_core.Report
module Adaptive = Symref_core.Adaptive
module Ef = Symref_numeric.Extfloat

let () =
  (* A two-pole RC lowpass driven by a voltage source. *)
  let b = N.Builder.create ~title:"quickstart RC filter" () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"mid" 1e3;
  N.Builder.capacitor b "c1" ~a:"mid" ~b:"0" 1e-9;
  N.Builder.resistor b "r2" ~a:"mid" ~b:"out" 10e3;
  N.Builder.capacitor b "c2" ~a:"out" ~b:"0" 100e-12;
  let circuit = N.Builder.finish b in
  Format.printf "%a@." N.pp_summary circuit;

  (* Numerical references: every coefficient of H(s) = N(s)/D(s). *)
  let r =
    Reference.generate circuit ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out")
  in
  print_string (Report.reference_summary r);

  print_endline "denominator coefficients (references for SBG/SDG error control):";
  Array.iteri
    (fun i c -> Printf.printf "  d%d = %s\n" i (Ef.to_string c))
    r.Reference.den.Adaptive.coeffs;
  print_endline "numerator coefficients:";
  Array.iteri
    (fun i c -> Printf.printf "  n%d = %s\n" i (Ef.to_string c))
    r.Reference.num.Adaptive.coeffs;

  Printf.printf "DC gain: %.6f (expected 1.0 for an unloaded RC ladder)\n"
    (Reference.dc_gain r);
  let h1k = Reference.eval r { Complex.re = 0.; im = 2. *. Float.pi *. 1e3 } in
  Printf.printf "|H(j*2pi*1kHz)| = %.6f\n" (Complex.norm h1k)
