(* Simplification Before Generation (paper §1): remove negligible elements
   from the network before symbolic analysis, with error control against the
   full circuit's response.

     dune exec examples/sbg_demo.exe
*)

module N = Symref_circuit.Netlist
module Ota = Symref_circuit.Ota
module Nodal = Symref_mna.Nodal
module Sbg = Symref_symbolic.Sbg
module Sdet = Symref_symbolic.Sdet
module Sym = Symref_symbolic.Sym
module Grid = Symref_numeric.Grid

let () =
  let input = Nodal.V_diff (Ota.input_p, Ota.input_n) in
  let output = Nodal.Out_node Ota.output in
  let freqs = Grid.decades ~start:1e2 ~stop:1e9 ~per_decade:3 in

  Format.printf "before: %a@." N.pp_summary Ota.circuit;
  let full = Sdet.network_function Ota.circuit ~input ~output in
  Printf.printf "full symbolic size: num %d terms, den %d terms\n\n"
    (Sym.term_count full.Sdet.num) (Sym.term_count full.Sdet.den);

  List.iter
    (fun (db, deg) ->
      let config = { Sbg.default_config with Sbg.tolerance_db = db; tolerance_deg = deg } in
      let o = Sbg.prune ~config Ota.circuit ~input ~output ~freqs in
      Printf.printf "tolerance %.2f dB / %.0f deg: removed %d of %d candidates (%s)\n"
        db deg (List.length o.Sbg.removed) o.Sbg.candidates
        (String.concat ", " o.Sbg.removed);
      Printf.printf "  residual error: %.3f dB, %.2f deg; %d trial analyses\n" o.Sbg.error_db
        o.Sbg.error_deg o.Sbg.trials;
      let reduced = Sdet.network_function o.Sbg.pruned ~input ~output in
      Printf.printf "  symbolic size after SBG: num %d terms, den %d terms\n\n"
        (Sym.term_count reduced.Sdet.num) (Sym.term_count reduced.Sdet.den))
    [ (0.1, 1.); (0.5, 5.); (2., 15.) ]
