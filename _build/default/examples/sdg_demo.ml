(* Simplification During Generation (paper §1, eq. 3): generate the symbolic
   terms of a small OTA's network function largest-first and stop when the
   numerical reference says the truncation error is inside budget.

     dune exec examples/sdg_demo.exe
*)

module Ota = Symref_circuit.Ota
module Nodal = Symref_mna.Nodal
module Sdet = Symref_symbolic.Sdet
module Sdg = Symref_symbolic.Sdg
module Sym = Symref_symbolic.Sym
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Ef = Symref_numeric.Extfloat

let () =
  let input = Nodal.V_diff (Ota.input_p, Ota.input_n) in
  let output = Nodal.Out_node Ota.output in

  (* Exact symbolic network function (viable on this small circuit). *)
  let nf = Sdet.network_function Ota.circuit ~input ~output in
  Printf.printf "full symbolic expression: %d numerator terms, %d denominator terms\n\n"
    (Sym.term_count nf.Sdet.num) (Sym.term_count nf.Sdet.den);

  (* Numerical references from the adaptive algorithm: the error control. *)
  let r = Reference.generate Ota.circuit ~input ~output in
  let references which = Array.map Ef.to_float which.Adaptive.coeffs in

  (* --- True SDG on a passive network: terms generated largest-first by
     spanning-tree enumeration, stopping per coefficient on eq. 3, without
     ever building the full expression. *)
  let module Tree_terms = Symref_symbolic.Tree_terms in
  let module Ladder = Symref_circuit.Rc_ladder in
  let ladder = Ladder.circuit ~spread:4. 6 in
  let lref =
    Reference.generate ladder ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  let lrefs =
    Array.map Symref_numeric.Extfloat.to_float lref.Reference.den.Adaptive.coeffs
  in
  let total = Seq.length (Tree_terms.terms ladder ~input:(Nodal.Vsrc_element "vin")) in
  print_endline "true SDG (spanning-tree enumeration) on a graded RC ladder:";
  List.iter
    (fun epsilon ->
      let s =
        Tree_terms.generate_until ~epsilon ~references:lrefs ladder
          ~input:(Nodal.Vsrc_element "vin")
      in
      Printf.printf
        "  epsilon = %-5g: kept %3d of %d terms (%d trees enumerated, eq. 3 %s)\n"
        epsilon
        (List.length s.Tree_terms.kept)
        total s.Tree_terms.generated
        (if s.Tree_terms.satisfied then "satisfied" else "NOT satisfied"))
    [ 0.01; 0.05; 0.25 ];
  print_newline ();

  print_endline "SDG truncation of the full OTA expression (VCCS network):";
  List.iter
    (fun epsilon ->
      let den, den_rep =
        Sdg.simplify ~epsilon ~references:(references r.Reference.den) nf.Sdet.den
      in
      let num, num_rep =
        Sdg.simplify ~epsilon ~references:(references r.Reference.num) nf.Sdet.num
      in
      Printf.printf "epsilon = %-5g:  den %3d -> %-3d terms,  num %3d -> %-3d terms\n"
        epsilon den_rep.Sdg.total_terms den_rep.Sdg.kept_terms num_rep.Sdg.total_terms
        num_rep.Sdg.kept_terms;
      if epsilon = 0.25 then begin
        print_endline "\n  per-coefficient detail at epsilon = 0.25 (denominator):";
        List.iter
          (fun (c : Sdg.coefficient_report) ->
            Printf.printf
              "    s^%d: %d of %d terms, reference %.4g, achieved error %.2g\n"
              c.Sdg.power c.Sdg.kept_terms c.Sdg.total_terms c.Sdg.reference
              c.Sdg.achieved_error)
          den_rep.Sdg.coefficients;
        print_endline "\n  simplified denominator:";
        Printf.printf "    %s\n" (Sym.to_string den);
        print_endline "\n  simplified numerator:";
        Printf.printf "    %s\n" (Sym.to_string num);
        (* Nested-form compaction for human reading (paper intro: "formula
           interpretation by human designers"). *)
        let module Nested = Symref_symbolic.Nested in
        let nested = Nested.nest num in
        Printf.printf
          "\n  numerator in nested form (%d ops vs %d expanded):\n    %s\n\n"
          (Nested.operations nested)
          (Nested.expanded_operations num)
          (Nested.to_string nested)
      end)
    [ 0.01; 0.05; 0.25 ]
