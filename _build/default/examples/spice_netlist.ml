(* Working from a SPICE-subset netlist: parse, generate references, and run
   an AC sweep — the flow a downstream tool would use.

     dune exec examples/spice_netlist.exe
*)

module Parser = Symref_spice.Parser
module Writer = Symref_spice.Writer
module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Report = Symref_core.Report
module Grid = Symref_numeric.Grid

let netlist =
  {|two-stage bipolar amplifier
* small-signal BJT models on a vintage process
v1 in 0 ac 1
rs in b1 600
q1 c1 b1 e1 nfast
re1 e1 0 220
rc1 c1 0 4.7k
cc c1 b2 10u
q2 c2 b2 0 nslow
rb2 b2 0 47k
rc2 c2 0 2.2k
cl c2 0 50p
.model nfast bjtss ic=2m beta=180 tf=350p cmu=1.5p rb=150 ccs=1p
.model nslow bjtss ic=5m beta=120 tf=600p cmu=2p rb=200 ccs=1.5p
.end
|}

let () =
  let circuit = Parser.parse_string netlist in
  Format.printf "parsed: %a@.@." N.pp_summary circuit;

  (* References for the voltage gain v(c2)/v(in). *)
  let r =
    Reference.generate circuit ~input:(Nodal.Vsrc_element "v1")
      ~output:(Nodal.Out_node "c2")
  in
  print_string (Report.reference_summary r);
  Printf.printf "midband gain target: |H| at 10 kHz = %.2f\n\n"
    (Complex.norm (Reference.eval r { Complex.re = 0.; im = 2. *. Float.pi *. 1e4 }));

  (* AC sweep of the same netlist through the full-MNA simulator. *)
  let freqs = Grid.decades ~start:10. ~stop:1e9 ~per_decade:1 in
  let pts = Ac.bode circuit ~out_p:"c2" freqs in
  print_endline "AC sweep (full MNA):";
  Array.iter
    (fun (p : Ac.bode_point) ->
      Printf.printf "  %10.3g Hz  %8.2f dB  %8.1f deg\n" p.Ac.freq_hz p.Ac.mag_db
        p.Ac.phase_deg)
    pts;

  (* Round-trip through the writer. *)
  let again = Parser.parse_string (Writer.to_string circuit) in
  Printf.printf "\nwriter round-trip: %d elements -> %d elements\n"
    (N.element_count circuit) (N.element_count again)
