(* Production analyses on top of the same substrate: noise breakdown,
   stability margins and Monte-Carlo gain spread of a two-stage bipolar
   amplifier described as a SPICE netlist.

     dune exec examples/tolerance_and_noise.exe
*)

module Parser = Symref_spice.Parser
module Nodal = Symref_mna.Nodal
module Noise = Symref_mna.Noise
module Mc = Symref_mna.Monte_carlo
module Reference = Symref_core.Reference
module Margins = Symref_core.Margins
module Grid = Symref_numeric.Grid

let netlist =
  {|two-stage amplifier for robustness analyses
v1 in 0 ac 1
rs in b1 600
q1 c1 b1 e1 nfast
re1 e1 0 220
rc1 c1 0 4.7k
cc c1 b2 10u
q2 c2 b2 0 nslow
rb2 b2 0 47k
rc2 c2 0 2.2k
cl c2 0 50p
.model nfast bjtss ic=2m beta=180 tf=350p cmu=1.5p rb=150 ccs=1p
.model nslow bjtss ic=5m beta=120 tf=600p cmu=2p rb=200 ccs=1.5p
.end
|}

let () =
  let c = Parser.parse_string netlist in
  let input = Nodal.Vsrc_element "v1" and output = Nodal.Out_node "c2" in

  (* --- noise --- *)
  let p = Noise.at c ~input ~output ~freq_hz:10e3 in
  Printf.printf "noise at 10 kHz: %.3g V/rtHz out, %.3g nV/rtHz input-referred\n"
    (Float.sqrt p.Noise.output_density)
    (1e9 *. Float.sqrt p.Noise.input_density);
  print_endline "  top contributors:";
  List.iteri
    (fun i (e : Noise.contribution) ->
      if i < 5 then
        Printf.printf "    %-10s %5.1f%%\n" e.Noise.element
          (100. *. e.Noise.output_density /. p.Noise.output_density))
    p.Noise.contributions;
  let band = Grid.logspace 10. 1e8 200 in
  Printf.printf "  integrated 10 Hz - 100 MHz: %.3g mV rms at the output\n\n"
    (1e3 *. Noise.integrate_rms (Noise.sweep c ~input ~output ~freqs:band));

  (* --- margins (from the adaptive references) --- *)
  let r = Reference.generate c ~input ~output in
  Format.printf "%a@." Margins.pp (Margins.analyse r);

  (* --- Monte-Carlo gain spread --- *)
  let freqs = Grid.decades ~start:1e2 ~stop:1e8 ~per_decade:1 in
  let config = { Mc.default_config with Mc.samples = 200 } in
  let stats = Mc.gain_spread ~config c ~input ~output ~freqs in
  print_endline "Monte-Carlo gain spread (200 samples, 10% R/C, 20% gm):";
  Printf.printf "  %-12s %-9s %-9s %-7s %-16s\n" "freq (Hz)" "nominal" "mean" "std"
    "min .. max";
  Array.iter
    (fun (s : Mc.stat) ->
      Printf.printf "  %-12.3g %-9.2f %-9.2f %-7.2f %6.2f .. %-6.2f\n" s.Mc.freq_hz
        s.Mc.nominal_db s.Mc.mean_db s.Mc.std_db s.Mc.min_db s.Mc.max_db)
    stats;

  (* --- yield against a midband gain spec --- *)
  let spec h =
    Array.for_all
      (fun (z : Complex.t) ->
        let db = 20. *. Float.log10 (Complex.norm z) in
        db > 56. && db < 61.)
      h
  in
  let y =
    Mc.yield_ ~config c ~input ~output ~accept:spec ~freqs:[| 1e3; 1e4 |]
  in
  Printf.printf "\nyield against a 56..61 dB midband spec: %.0f%%\n" (100. *. y)
