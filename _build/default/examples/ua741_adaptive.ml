(* The paper's main demonstration (§3.2, Tables 2a/2b/3 and Fig. 2): the
   adaptive scaling algorithm on the µA741 voltage gain, pass by pass, plus
   the Bode comparison against the AC simulator.

     dune exec examples/ua741_adaptive.exe
*)

module Ua741 = Symref_circuit.Ua741
module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Report = Symref_core.Report
module Grid = Symref_numeric.Grid

let () =
  Format.printf "%a@.@." N.pp_summary Ua741.circuit;
  let r =
    Reference.generate Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  print_string (Report.adaptive_summary ~title:"denominator passes:" r.Reference.den);
  print_newline ();

  (* Tables 2a / 2b / 3: the successive interpolations of the denominator. *)
  List.iter
    (fun p ->
      if p.Adaptive.fresh > 0 then begin
        print_string (Report.adaptive_pass_table ~pass:p.Adaptive.pass r.Reference.den);
        print_newline ()
      end)
    r.Reference.den.Adaptive.reports;

  Printf.printf "open-loop DC gain: %.1f dB\n\n"
    (20. *. Float.log10 (Float.abs (Reference.dc_gain r)));

  (* Fig. 2: Bode diagrams, interpolated coefficients vs electrical
     simulator. *)
  let freqs = Grid.decades ~start:1. ~stop:1e8 ~per_decade:2 in
  let with_sources =
    N.extend Ua741.circuit (fun b ->
        N.Builder.vsrc b "srcp" ~p:Ua741.input_p ~m:"0" 0.5;
        N.Builder.vsrc b "srcm" ~p:Ua741.input_n ~m:"0" (-0.5))
  in
  let sim = Ac.bode with_sources ~out_p:Ua741.output freqs in
  let interp = Reference.bode r freqs in
  print_string (Report.bode_table ~interpolated:interp ~simulator:sim);
  let dmag, dph = Reference.bode_vs_simulator r sim in
  Printf.printf
    "\nFig. 2 agreement: max |delta magnitude| = %.4g dB, max |delta phase| = %.4g deg\n"
    dmag dph
