lib/circuit/biquad.ml: Complex Float List Netlist Printf
