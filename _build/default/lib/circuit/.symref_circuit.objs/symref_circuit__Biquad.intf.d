lib/circuit/biquad.mli: Complex Netlist
