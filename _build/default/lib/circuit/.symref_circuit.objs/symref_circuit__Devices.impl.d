lib/circuit/devices.ml: Netlist
