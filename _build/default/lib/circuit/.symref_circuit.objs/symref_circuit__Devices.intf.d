lib/circuit/devices.mli: Netlist
