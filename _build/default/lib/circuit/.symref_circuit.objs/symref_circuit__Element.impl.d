lib/circuit/element.ml: Float List Printf
