lib/circuit/element.mli:
