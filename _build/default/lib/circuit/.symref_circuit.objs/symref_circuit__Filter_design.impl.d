lib/circuit/filter_design.ml: Array Biquad Complex Float List Netlist Printf Symref_poly
