lib/circuit/filter_design.mli: Biquad Complex Netlist
