lib/circuit/gm_c.ml: Netlist Printf
