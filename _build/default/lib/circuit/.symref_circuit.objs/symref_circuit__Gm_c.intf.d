lib/circuit/gm_c.mli: Netlist
