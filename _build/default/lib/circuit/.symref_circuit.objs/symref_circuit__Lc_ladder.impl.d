lib/circuit/lc_ladder.ml: Float Netlist Printf Transform
