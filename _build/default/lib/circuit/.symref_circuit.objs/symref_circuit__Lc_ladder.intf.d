lib/circuit/lc_ladder.mli: Netlist
