lib/circuit/netlist.ml: Array Element Format Fun Hashtbl List Printf Symref_numeric
