lib/circuit/ota.ml: Devices List Netlist
