lib/circuit/ota.mli: Netlist
