lib/circuit/random_net.ml: Float Netlist Option Printf
