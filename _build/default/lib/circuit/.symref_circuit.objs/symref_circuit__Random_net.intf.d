lib/circuit/random_net.mli: Netlist
