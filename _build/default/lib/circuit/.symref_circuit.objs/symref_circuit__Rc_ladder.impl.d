lib/circuit/rc_ladder.ml: List Netlist Printf Symref_numeric Symref_poly
