lib/circuit/rc_ladder.mli: Netlist Symref_poly
