lib/circuit/transform.ml: Element List Netlist Symref_numeric
