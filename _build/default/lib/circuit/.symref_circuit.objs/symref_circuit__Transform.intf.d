lib/circuit/transform.mli: Netlist
