lib/circuit/two_stage_miller.ml: Devices Float Netlist
