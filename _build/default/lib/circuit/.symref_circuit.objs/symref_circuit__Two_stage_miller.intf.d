lib/circuit/two_stage_miller.mli: Netlist
