lib/circuit/ua741.ml: Devices Netlist
