lib/circuit/ua741.mli: Netlist
