type design = { f0_hz : float; q : float; gm : float }

let check d =
  if not (d.f0_hz > 0. && d.q > 0. && d.gm > 0.) then
    invalid_arg "Biquad: f0, q and gm must be positive"

(* Equal capacitors, equal loop transconductances: C = gm / w0, gmq = gm/q. *)
let section b ~prefix ~input ~output (d : design) =
  check d;
  let module B = Netlist.Builder in
  let w0 = 2. *. Float.pi *. d.f0_hz in
  let c = d.gm /. w0 in
  let v1 = prefix ^ ".v1" in
  B.capacitor b (prefix ^ ".c1") ~a:v1 ~b:"0" c;
  B.capacitor b (prefix ^ ".c2") ~a:output ~b:"0" c;
  B.vccs b (prefix ^ ".gm1") ~p:"0" ~m:v1 ~cp:input ~cm:"0" d.gm;
  B.conductance b (prefix ^ ".gmq") ~a:v1 ~b:"0" (d.gm /. d.q);
  B.vccs b (prefix ^ ".gm2") ~p:v1 ~m:"0" ~cp:output ~cm:"0" d.gm;
  B.vccs b (prefix ^ ".gm3") ~p:"0" ~m:output ~cp:v1 ~cm:"0" d.gm

let cascade designs =
  if designs = [] then invalid_arg "Biquad.cascade: empty list";
  let module B = Netlist.Builder in
  let n = List.length designs in
  let b = B.create ~title:(Printf.sprintf "gm-C biquad cascade (%d sections)" n) () in
  B.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  List.iteri
    (fun i d ->
      let input = if i = 0 then "in" else Printf.sprintf "s%d" i in
      let output = if i = n - 1 then "out" else Printf.sprintf "s%d" (i + 1) in
      section b ~prefix:(Printf.sprintf "b%d" (i + 1)) ~input ~output d)
    designs;
  B.finish b

let poles d =
  check d;
  let w0 = 2. *. Float.pi *. d.f0_hz in
  let re = -.w0 /. (2. *. d.q) in
  if d.q > 0.5 then begin
    let im = w0 *. Float.sqrt (1. -. (1. /. (4. *. d.q *. d.q))) in
    ({ Complex.re; im }, { Complex.re; im = -.im })
  end
  else begin
    (* Overdamped: two real poles. *)
    let disc = w0 *. Float.sqrt ((1. /. (4. *. d.q *. d.q)) -. 1.) in
    ({ Complex.re = re +. disc; im = 0. }, { Complex.re = re -. disc; im = 0. })
  end
