(** gm-C biquad sections and cascades with analytically known poles.

    The two-integrator-loop (Tow-Thomas style) gm-C biquad:

    {v
      C1 dv1/dt = gm1*vin - gmq*v1 - gm2*v2
      C2 dv2/dt = gm3*v1
    v}

    has the lowpass transfer [H(s) = (gm1*gm3/C1C2) / (s^2 + s*gmq/C1 +
    gm2*gm3/(C1*C2))]: pole frequency [w0 = sqrt (gm2*gm3/(C1*C2))] and
    quality factor [Q = w0 * C1 / gmq] by design — a workload whose poles the
    pole-extraction pipeline must reproduce exactly. *)

type design = {
  f0_hz : float;  (** pole frequency *)
  q : float;      (** quality factor *)
  gm : float;     (** transconductance used for the loop, S *)
}

val section :
  Netlist.Builder.t -> prefix:string -> input:string -> output:string -> design -> unit
(** Add one biquad between the named nodes (output = the lowpass node). *)

val cascade : design list -> Netlist.t
(** A chain of biquads driven by a voltage source ["vin"] at node ["in"];
    the output of stage [i] is node ["s<i>"] (1-based), overall output
    ["out"].  @raise Invalid_argument on an empty list. *)

val poles : design -> Complex.t * Complex.t
(** The section's design poles (conjugate pair for [q > 0.5]), rad/s. *)
