type mos = {
  gm : float;
  gds : float;
  cgs : float;
  cgd : float;
  cdb : float;
  csb : float;
}

let mos_default =
  { gm = 300e-6; gds = 5e-6; cgs = 100e-15; cgd = 20e-15; cdb = 0.; csb = 0. }

let add_mos builder name ~d ~g ~s (p : mos) =
  let module B = Netlist.Builder in
  B.vccs builder (name ^ ".gm") ~p:d ~m:s ~cp:g ~cm:s p.gm;
  B.conductance builder (name ^ ".gds") ~a:d ~b:s p.gds;
  if p.cgs > 0. then B.capacitor builder (name ^ ".cgs") ~a:g ~b:s p.cgs;
  if p.cgd > 0. then B.capacitor builder (name ^ ".cgd") ~a:g ~b:d p.cgd;
  if p.cdb > 0. then B.capacitor builder (name ^ ".cdb") ~a:d ~b:"0" p.cdb;
  if p.csb > 0. then B.capacitor builder (name ^ ".csb") ~a:s ~b:"0" p.csb

type bjt = {
  gm : float;
  gpi : float;
  go : float;
  cpi : float;
  cmu : float;
  rb : float;
  ccs : float;
}

let thermal_voltage = 0.02585

let bjt_of_bias ?(beta = 200.) ?(va = 100.) ?(tf = 400e-12) ?(cmu = 2e-12)
    ?(rb = 0.) ?(ccs = 0.) ~ic () =
  if not (ic > 0.) then invalid_arg "Devices.bjt_of_bias: ic must be > 0";
  let gm = ic /. thermal_voltage in
  { gm; gpi = gm /. beta; go = ic /. va; cpi = (gm *. tf) +. 2e-12; cmu; rb; ccs }

let add_bjt builder name ~c ~b ~e (p : bjt) =
  let module B = Netlist.Builder in
  (* With base resistance the junctions and the control voltage live on an
     internal node, as in the SPICE Gummel-Poon small-signal expansion. *)
  let bx =
    if p.rb > 0. then begin
      let bx = name ^ ".bx" in
      B.resistor builder (name ^ ".rb") ~a:b ~b:bx p.rb;
      bx
    end
    else b
  in
  B.vccs builder (name ^ ".gm") ~p:c ~m:e ~cp:bx ~cm:e p.gm;
  B.conductance builder (name ^ ".gpi") ~a:bx ~b:e p.gpi;
  B.conductance builder (name ^ ".go") ~a:c ~b:e p.go;
  B.capacitor builder (name ^ ".cpi") ~a:bx ~b:e p.cpi;
  B.capacitor builder (name ^ ".cmu") ~a:bx ~b:c p.cmu;
  if p.ccs > 0. then B.capacitor builder (name ^ ".ccs") ~a:c ~b:"0" p.ccs
