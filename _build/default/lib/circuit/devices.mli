(** Small-signal device models.

    Transistors are linearised into the nodal-class primitives at their
    operating point, which is what symbolic analysis of analog ICs works on:
    the paper's terms are "products of admittances: transconductances and
    capacitors".

    MOS quasi-static model: [gm] from gate, [gds] drain-source conductance,
    [Cgs], [Cgd] (and optional junction caps [Cdb], [Csb]).

    BJT hybrid-pi model: [gm], [gpi = 1/r_pi], [go = 1/r_o], [Cpi], [Cmu]. *)

type mos = {
  gm : float;   (** transconductance, S *)
  gds : float;  (** output conductance, S *)
  cgs : float;  (** gate-source capacitance, F; [0.] omits the element *)
  cgd : float;  (** gate-drain capacitance, F; [0.] omits the element *)
  cdb : float;  (** drain-bulk capacitance, F; [0.] omits the element *)
  csb : float;  (** source-bulk capacitance, F; [0.] omits the element *)
}

val mos_default : mos
(** A typical 1990s CMOS operating point: [gm = 300uS], [gds = 5uS],
    [cgs = 100fF], [cgd = 20fF], no junction caps. *)

val add_mos :
  Netlist.Builder.t -> string -> d:string -> g:string -> s:string -> mos -> unit
(** [add_mos b name ~d ~g ~s params] stamps the quasi-static model between
    drain, gate and source nodes (bulk tied to AC ground for the junction
    caps).  Elements are named [name.gm], [name.gds], [name.cgs], ... *)

type bjt = {
  gm : float;
  gpi : float;  (** base-emitter conductance [1/r_pi], S *)
  go : float;   (** output conductance [1/r_o], S *)
  cpi : float;  (** base-emitter capacitance, F *)
  cmu : float;  (** base-collector capacitance, F *)
  rb : float;   (** base-spreading resistance, ohm; [0.] omits the internal
                    base node (vintage devices: 100..500 ohm).  With [rb > 0]
                    the junction capacitances and the controlling voltage sit
                    on an internal node [<name>.bx], which adds a state and a
                    node per transistor — this is what pushes a full opamp
                    netlist to the ~50th-order denominators the paper
                    analyses. *)
  ccs : float;  (** collector-substrate capacitance, F; [0.] omits it.
                    Large for vintage lateral/substrate PNPs. *)
}

val bjt_of_bias :
  ?beta:float ->
  ?va:float ->
  ?tf:float ->
  ?cmu:float ->
  ?rb:float ->
  ?ccs:float ->
  ic:float ->
  unit ->
  bjt
(** Hybrid-pi parameters from a collector bias current: [gm = ic/VT]
    (VT = 25.85 mV), [gpi = gm/beta], [go = ic/va], [cpi = gm*tf + 2pF],
    defaults [beta = 200], [va = 100V], [tf = 400ps], [cmu = 2pF],
    [rb = 0.], [ccs = 0.] — a fair sketch of the 741's vintage bipolar
    process. *)

val add_bjt :
  Netlist.Builder.t -> string -> c:string -> b:string -> e:string -> bjt -> unit
(** Stamps the hybrid-pi model between collector, base and emitter.
    Substrate (for [ccs]) is AC ground. *)
