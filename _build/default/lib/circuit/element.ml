type node = int

type kind =
  | Conductance of { a : node; b : node; siemens : float }
  | Resistor of { a : node; b : node; ohms : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Inductor of { a : node; b : node; henries : float }
  | Vccs of { p : node; m : node; cp : node; cm : node; gm : float }
  | Vcvs of { p : node; m : node; cp : node; cm : node; gain : float }
  | Cccs of { p : node; m : node; vname : string; gain : float }
  | Ccvs of { p : node; m : node; vname : string; ohms : float }
  | Isrc of { a : node; b : node; amps : float }
  | Vsrc of { p : node; m : node; volts : float }

type t = { name : string; kind : kind }

let check_value ~name ~what ~positive v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Element %s: %s is not finite" name what);
  if positive && not (v > 0.) then
    invalid_arg (Printf.sprintf "Element %s: %s must be > 0" name what);
  if (not positive) && v = 0. then
    invalid_arg (Printf.sprintf "Element %s: %s must be non-zero" name what)

let nodes_of_kind = function
  | Conductance { a; b; _ } | Resistor { a; b; _ } | Capacitor { a; b; _ }
  | Inductor { a; b; _ } | Isrc { a; b; _ } ->
      [ a; b ]
  | Vsrc { p; m; _ } | Cccs { p; m; _ } | Ccvs { p; m; _ } -> [ p; m ]
  | Vccs { p; m; cp; cm; _ } | Vcvs { p; m; cp; cm; _ } -> [ p; m; cp; cm ]

let make name kind =
  if name = "" then invalid_arg "Element.make: empty name";
  List.iter
    (fun n -> if n < 0 then invalid_arg (Printf.sprintf "Element %s: negative node" name))
    (nodes_of_kind kind);
  (match kind with
  | Conductance { siemens; _ } ->
      check_value ~name ~what:"conductance" ~positive:false siemens
  | Resistor { ohms; _ } -> check_value ~name ~what:"resistance" ~positive:true ohms
  | Capacitor { farads; _ } -> check_value ~name ~what:"capacitance" ~positive:true farads
  | Inductor { henries; _ } -> check_value ~name ~what:"inductance" ~positive:true henries
  | Vccs { gm; _ } -> check_value ~name ~what:"transconductance" ~positive:false gm
  | Vcvs { gain; _ } -> check_value ~name ~what:"gain" ~positive:false gain
  | Cccs { gain; _ } -> check_value ~name ~what:"gain" ~positive:false gain
  | Ccvs { ohms; _ } -> check_value ~name ~what:"transresistance" ~positive:false ohms
  | Isrc { amps; _ } ->
      if not (Float.is_finite amps) then
        invalid_arg (Printf.sprintf "Element %s: current not finite" name)
  | Vsrc { volts; _ } ->
      if not (Float.is_finite volts) then
        invalid_arg (Printf.sprintf "Element %s: voltage not finite" name));
  { name; kind }

let nodes t = nodes_of_kind t.kind

let is_nodal_class t =
  match t.kind with
  | Conductance _ | Resistor _ | Capacitor _ | Vccs _ | Isrc _ -> true
  | Inductor _ | Vcvs _ | Cccs _ | Ccvs _ | Vsrc _ -> false

let conductance_value t =
  match t.kind with
  | Conductance { siemens; _ } -> Some (Float.abs siemens)
  | Resistor { ohms; _ } -> Some (1. /. ohms)
  | Vccs { gm; _ } -> Some (Float.abs gm)
  | Capacitor _ | Inductor _ | Vcvs _ | Cccs _ | Ccvs _ | Isrc _ | Vsrc _ -> None

let capacitance_value t =
  match t.kind with
  | Capacitor { farads; _ } -> Some farads
  | Conductance _ | Resistor _ | Inductor _ | Vccs _ | Vcvs _ | Cccs _ | Ccvs _
  | Isrc _ | Vsrc _ ->
      None

let principal_value t =
  match t.kind with
  | Conductance { siemens; _ } -> siemens
  | Resistor { ohms; _ } -> ohms
  | Capacitor { farads; _ } -> farads
  | Inductor { henries; _ } -> henries
  | Vccs { gm; _ } -> gm
  | Vcvs { gain; _ } -> gain
  | Cccs { gain; _ } -> gain
  | Ccvs { ohms; _ } -> ohms
  | Isrc { amps; _ } -> amps
  | Vsrc { volts; _ } -> volts

let scale_value t k =
  let kind =
    match t.kind with
    | Conductance c -> Conductance { c with siemens = c.siemens *. k }
    | Resistor r -> Resistor { r with ohms = r.ohms *. k }
    | Capacitor c -> Capacitor { c with farads = c.farads *. k }
    | Inductor l -> Inductor { l with henries = l.henries *. k }
    | Vccs v -> Vccs { v with gm = v.gm *. k }
    | Vcvs v -> Vcvs { v with gain = v.gain *. k }
    | Cccs v -> Cccs { v with gain = v.gain *. k }
    | Ccvs v -> Ccvs { v with ohms = v.ohms *. k }
    | Isrc i -> Isrc { i with amps = i.amps *. k }
    | Vsrc v -> Vsrc { v with volts = v.volts *. k }
  in
  make t.name kind

let describe t =
  let k =
    match t.kind with
    | Conductance { a; b; siemens } -> Printf.sprintf "G(%d,%d)=%gS" a b siemens
    | Resistor { a; b; ohms } -> Printf.sprintf "R(%d,%d)=%gohm" a b ohms
    | Capacitor { a; b; farads } -> Printf.sprintf "C(%d,%d)=%gF" a b farads
    | Inductor { a; b; henries } -> Printf.sprintf "L(%d,%d)=%gH" a b henries
    | Vccs { p; m; cp; cm; gm } ->
        Printf.sprintf "VCCS(%d,%d<-%d,%d)=%gS" p m cp cm gm
    | Vcvs { p; m; cp; cm; gain } ->
        Printf.sprintf "VCVS(%d,%d<-%d,%d)=%g" p m cp cm gain
    | Cccs { p; m; vname; gain } -> Printf.sprintf "CCCS(%d,%d<-%s)=%g" p m vname gain
    | Ccvs { p; m; vname; ohms } ->
        Printf.sprintf "CCVS(%d,%d<-%s)=%gohm" p m vname ohms
    | Isrc { a; b; amps } -> Printf.sprintf "I(%d,%d)=%gA" a b amps
    | Vsrc { p; m; volts } -> Printf.sprintf "V(%d,%d)=%gV" p m volts
  in
  t.name ^ ": " ^ k
