(** Linear(ised) circuit elements.

    Node [0] is ground.  Values are small-signal: transistors enter a netlist
    already expanded into their hybrid-pi / quasi-static models (see
    {!Devices}).

    Elements split into two classes:

    - the {e nodal class} — conductances, resistors, capacitors, VCCS and
      independent current sources — for which every nodal-determinant
      monomial is a product of admittances.  This homogeneity is what makes
      the paper's conductance/frequency scaling (eq. 11) exact, so the
      reference generator accepts only this class (plus grounded voltage
      sources, which are eliminated).
    - general MNA elements (floating/independent voltage sources, VCVS,
      CCCS, CCVS, inductors) that need auxiliary current rows; the AC
      simulator supports all of them. *)

type node = int

type kind =
  | Conductance of { a : node; b : node; siemens : float }
  | Resistor of { a : node; b : node; ohms : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Inductor of { a : node; b : node; henries : float }
  | Vccs of { p : node; m : node; cp : node; cm : node; gm : float }
      (** Current [gm * (v cp - v cm)] flows from [p] to [m] (through the
          source), i.e. it is injected into node [m] and drawn from [p]
          following the SPICE [G] element convention. *)
  | Vcvs of { p : node; m : node; cp : node; cm : node; gain : float }
  | Cccs of { p : node; m : node; vname : string; gain : float }
      (** Controlled by the current through the voltage source [vname]. *)
  | Ccvs of { p : node; m : node; vname : string; ohms : float }
  | Isrc of { a : node; b : node; amps : float }
      (** AC magnitude; current flows from [a] through the source to [b]. *)
  | Vsrc of { p : node; m : node; volts : float }  (** AC magnitude. *)

type t = { name : string; kind : kind }

val make : string -> kind -> t
(** @raise Invalid_argument on empty name, negative node, non-finite or
    non-positive value where positivity is required (R, C, L must be
    [> 0]; G and gm may be negative — e.g. positive feedback — but not
    zero). *)

val nodes : t -> node list
(** Every node the element touches (including controlling nodes). *)

val is_nodal_class : t -> bool
(** True for elements compatible with pure nodal analysis (see above);
    grounded voltage sources are {e not} in the class (they are handled by
    node elimination one level up). *)

val conductance_value : t -> float option
(** Magnitude entering the conductance-mean heuristic: conductances,
    resistors (as [1/R]) and VCCS transconductances. *)

val capacitance_value : t -> float option

val principal_value : t -> float
(** The element's defining value (ohms, farads, siemens, gain, source
    magnitude ...). *)

val scale_value : t -> float -> t
(** [scale_value e k] multiplies the principal value by [k] (same name, same
    nodes) — the perturbation primitive of sensitivity analysis.
    @raise Invalid_argument when the scaled value is invalid for the kind
    (e.g. non-positive resistance). *)

val describe : t -> string
(** One-line human-readable form. *)
