type kind = Butterworth | Chebyshev of float | Bessel

type section = Second_order of Biquad.design | First_order of float

let butterworth_poles n =
  Array.init n (fun k ->
      let th =
        Float.pi *. ((2. *. float_of_int (k + 1)) +. float_of_int n -. 1.)
        /. (2. *. float_of_int n)
      in
      { Complex.re = Float.cos th; im = Float.sin th })

let chebyshev_poles ripple_db n =
  if not (ripple_db > 0.) then invalid_arg "Filter_design: ripple must be > 0";
  let epsilon = Float.sqrt ((10. ** (ripple_db /. 10.)) -. 1.) in
  let a = Float.log ((1. /. epsilon) +. Float.sqrt ((1. /. (epsilon *. epsilon)) +. 1.)) /. float_of_int n in
  Array.init n (fun k ->
      let th = (2. *. float_of_int (k + 1) -. 1.) *. Float.pi /. (2. *. float_of_int n) in
      { Complex.re = -.Float.sinh a *. Float.sin th; im = Float.cosh a *. Float.cos th })

(* Reverse Bessel polynomial by the standard recurrence; poles are its
   roots, rescaled so the -3 dB point sits at 1 rad/s. *)
let bessel_poles n =
  let module Poly = Symref_poly.Poly in
  let rec theta k =
    if k = 0 then Poly.one
    else if k = 1 then Poly.of_list [ 1.; 1. ]
    else
      Poly.add
        (Poly.scale (2. *. float_of_int k -. 1.) (theta (k - 1)))
        (Poly.mul (Poly.of_list [ 0.; 0.; 1. ]) (theta (k - 2)))
  in
  let b = theta n in
  let roots, q = Symref_poly.Roots.find_real b in
  if not q.Symref_poly.Roots.converged then failwith "Filter_design: Bessel roots";
  (* |H(jw)|^2 = b(0)^2 / |b(jw)|^2; bisect for the -3 dB frequency. *)
  let b0 = Poly.eval b 0. in
  let mag2 w =
    let v = Poly.eval_complex b { Complex.re = 0.; im = w } in
    b0 *. b0 /. (Complex.norm v *. Complex.norm v)
  in
  let rec bisect lo hi i =
    if i = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if mag2 mid > 0.5 then bisect mid hi (i - 1) else bisect lo mid (i - 1)
  in
  let rec upper w = if mag2 w > 0.5 then upper (2. *. w) else w in
  let w3 = bisect 0. (upper 1.) 60 in
  Array.map (fun (p : Complex.t) -> { Complex.re = p.re /. w3; im = p.im /. w3 }) roots

let prototype_poles kind ~order =
  if order < 1 then invalid_arg "Filter_design: order must be >= 1";
  match kind with
  | Butterworth -> butterworth_poles order
  | Chebyshev r -> chebyshev_poles r order
  | Bessel -> bessel_poles order

let sections ?(gm = 50e-6) kind ~order ~f_cut_hz =
  if not (f_cut_hz > 0.) then invalid_arg "Filter_design: f_cut must be > 0";
  let poles = prototype_poles kind ~order in
  let pairs, reals = Symref_poly.Roots.conjugate_pairs poles in
  let of_pair ((p : Complex.t), _) =
    let w = Complex.norm p in
    Second_order
      { Biquad.f0_hz = w *. f_cut_hz; q = w /. (2. *. Float.abs p.re); gm }
  in
  let of_real (p : Complex.t) = First_order (Complex.norm p *. f_cut_hz) in
  let q_of = function Second_order d -> d.Biquad.q | First_order _ -> 0.5 in
  List.sort
    (fun a b -> Float.compare (q_of a) (q_of b))
    (List.map of_pair pairs @ List.map of_real reals)

let realize ?(gm = 50e-6) kind ~order ~f_cut_hz =
  let secs = sections ~gm kind ~order ~f_cut_hz in
  let module B = Netlist.Builder in
  let b =
    B.create
      ~title:
        (Printf.sprintf "%s lowpass order %d at %g Hz"
           (match kind with
           | Butterworth -> "butterworth"
           | Chebyshev r -> Printf.sprintf "chebyshev-%.2gdB" r
           | Bessel -> "bessel")
           order f_cut_hz)
      ()
  in
  B.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  let n = List.length secs in
  List.iteri
    (fun i sec ->
      let input = if i = 0 then "in" else Printf.sprintf "s%d" i in
      let output = if i = n - 1 then "out" else Printf.sprintf "s%d" (i + 1) in
      let prefix = Printf.sprintf "f%d" (i + 1) in
      match sec with
      | Second_order d -> Biquad.section b ~prefix ~input ~output d
      | First_order f0 ->
          (* One-pole unity-gain gm-C section: C dv/dt = gm (vin - v). *)
          let c = gm /. (2. *. Float.pi *. f0) in
          B.vccs b (prefix ^ ".gm") ~p:"0" ~m:output ~cp:input ~cm:"0" gm;
          B.conductance b (prefix ^ ".gterm") ~a:output ~b:"0" gm;
          B.capacitor b (prefix ^ ".c") ~a:output ~b:"0" c)
    secs;
  B.finish b
