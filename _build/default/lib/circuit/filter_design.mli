(** Classical all-pole lowpass synthesis: Butterworth, Chebyshev-I and
    Bessel prototypes mapped onto gm-C biquad cascades (plus one first-order
    section for odd orders).

    Pole placement follows the textbook formulas (Butterworth circle,
    Chebyshev ellipse); Bessel poles are the roots of the reverse Bessel
    polynomial, found with the library's own root finder and rescaled so the
    [-3 dB] point lands on the requested cutoff (bisection on the
    prototype's magnitude). *)

type kind =
  | Butterworth
  | Chebyshev of float  (** passband ripple, dB (> 0) *)
  | Bessel

type section =
  | Second_order of Biquad.design
  | First_order of float  (** real pole frequency, Hz *)

val sections : ?gm:float -> kind -> order:int -> f_cut_hz:float -> section list
(** Pole pairs of the prototype, highest Q last (the conventional cascade
    ordering).  [gm] (default [50e-6] S) is carried into the biquad designs.
    @raise Invalid_argument when [order < 1] or the ripple is not
    positive. *)

val realize : ?gm:float -> kind -> order:int -> f_cut_hz:float -> Netlist.t
(** Build the gm-C cascade: voltage source ["vin"] at ["in"], output
    ["out"]. *)

val prototype_poles : kind -> order:int -> Complex.t array
(** Normalised poles (cutoff 1 rad/s: Butterworth/Bessel at their [-3 dB]
    point, Chebyshev at the ripple-band edge). *)
