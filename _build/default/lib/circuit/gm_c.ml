let input_node = "in"
let output_node n = Printf.sprintf "v%d" n

let circuit ?(gm = 50e-6) ?(c = 5e-12) ?(grade = 1.05) n =
  if n < 1 then invalid_arg "Gm_c.circuit: order must be >= 1";
  if not (grade > 0.) then invalid_arg "Gm_c.circuit: grade must be > 0";
  let module B = Netlist.Builder in
  let b = B.create ~title:(Printf.sprintf "gm-C leapfrog order %d" n) () in
  let v i = output_node i in
  let gmi i = gm *. (grade ** float_of_int i) in
  let ci i = c *. (grade ** float_of_int (-i)) in
  (* State capacitors. *)
  for i = 1 to n do
    B.capacitor b (Printf.sprintf "c%d" i) ~a:(v i) ~b:"0" (ci i)
  done;
  (* Input coupling and terminations. *)
  B.vccs b "gmin" ~p:"0" ~m:(v 1) ~cp:input_node ~cm:"0" (gmi 0);
  B.conductance b "gterm1" ~a:(v 1) ~b:"0" (gmi 0);
  B.conductance b "gtermn" ~a:(v n) ~b:"0" (gmi n);
  (* Leapfrog couplings: node i is driven by +gm*v(i-1) and -gm*v(i+1). *)
  for i = 1 to n - 1 do
    B.vccs b
      (Printf.sprintf "gmf%d" i)
      ~p:"0" ~m:(v (i + 1)) ~cp:(v i) ~cm:"0" (gmi i);
    B.vccs b
      (Printf.sprintf "gmb%d" i)
      ~p:(v i) ~m:"0" ~cp:(v (i + 1)) ~cm:"0" (gmi i)
  done;
  B.finish b
