(** Scalable gm-C leapfrog ladder filters.

    The standard transconductor-capacitor emulation of a doubly-terminated
    LC ladder: one grounded capacitor per state, antisymmetric gm couplings
    between neighbours, gm terminations at both ends.  Entirely inside the
    nodal class (VCCS + C + G), with exactly [n] capacitors and [n] internal
    nodes — an [n]-th order all-pole lowpass of arbitrary size, the "large
    analog circuit" scaling workload. *)

val circuit : ?gm:float -> ?c:float -> ?grade:float -> int -> Netlist.t
(** [circuit n] builds an [n]-th order filter.  Defaults [gm = 50e-6] S,
    [c = 5e-12] F; [grade] (default [1.05]) geometrically spreads element
    values so coefficient magnitudes drift as in extracted netlists.
    Input node ["in"] (drive with a voltage source), output ["v<n>"].
    @raise Invalid_argument when [n < 1]. *)

val input_node : string
val output_node : int -> string
