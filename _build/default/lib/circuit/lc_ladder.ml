let input_node = "in"
let output_node = "out"

let butterworth ?(r = 600.) ?(f_cut = 1e6) n =
  if n < 1 then invalid_arg "Lc_ladder.butterworth: order must be >= 1";
  if not (r > 0. && f_cut > 0.) then
    invalid_arg "Lc_ladder.butterworth: r and f_cut must be positive";
  let wc = 2. *. Float.pi *. f_cut in
  let g k = 2. *. Float.sin ((2. *. float_of_int k -. 1.) *. Float.pi /. (2. *. float_of_int n)) in
  let module B = Netlist.Builder in
  let b = B.create ~title:(Printf.sprintf "butterworth LC ladder order %d" n) () in
  B.vsrc b "vin" ~p:input_node ~m:"0" 1.;
  (* Node chain: in -rs- l1 ... ; odd g's are shunt capacitors, even g's
     series inductors (first-element-shunt convention). *)
  (* Ladder nodes 0 .. n/2; the last one carries the load. *)
  let node i = if i >= n / 2 then output_node else Printf.sprintf "l%d" (i + 1) in
  B.resistor b "rs" ~a:input_node ~b:(node 0) r;
  for k = 1 to n do
    let i = (k - 1) / 2 in
    if k mod 2 = 1 then
      (* shunt capacitor at node i: C = g / (R wc) *)
      B.capacitor b
        (Printf.sprintf "c%d" k)
        ~a:(node i) ~b:"0"
        (g k /. (r *. wc))
    else
      (* series inductor from node i-? to next: L = g R / wc *)
      B.inductor b
        (Printf.sprintf "l%d" k)
        ~a:(node i) ~b:(node (i + 1))
        (g k *. r /. wc)
  done;
  B.resistor b "rload" ~a:output_node ~b:"0" r;
  B.finish b

let nodal ?r ?f_cut n = Transform.inductors_to_gyrators (butterworth ?r ?f_cut n)
