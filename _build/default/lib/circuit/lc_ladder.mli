(** Doubly-terminated LC ladder filters (Butterworth prototypes).

    The classical passive realisation: source resistor, alternating shunt-C /
    series-L ladder from the normalised g-values
    [g_k = 2 sin((2k-1) pi / (2n))], load resistor.  Inductors keep these
    circuits outside the nodal class until {!Transform.inductors_to_gyrators}
    is applied — which is exactly the workload the paper's footnote-1
    transformation argument needs.

    Known answers for validation: DC gain [1/2] (equal terminations), [-3 dB]
    relative attenuation at the cutoff, and all [n] poles on the circle of
    radius [2 pi f_cut] in the left half plane. *)

val butterworth : ?r:float -> ?f_cut:float -> int -> Netlist.t
(** [butterworth n] builds the [n]-th order prototype.  Defaults:
    [r = 600] ohm terminations, [f_cut = 1e6] Hz.  Input source ["vin"] at
    node ["in"], output node ["out"].
    @raise Invalid_argument when [n < 1]. *)

val nodal : ?r:float -> ?f_cut:float -> int -> Netlist.t
(** {!butterworth} composed with {!Transform.inductors_to_gyrators}: ready
    for reference generation. *)

val input_node : string
val output_node : string
