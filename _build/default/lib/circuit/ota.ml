let input_p = "inp"
let input_n = "inn"
let output = "out"
let capacitor_count = 9

(* Typical magnitudes of a 1990s CMOS OTA: transconductances of hundreds of
   uS, output conductances of a few uS, parasitics of tens of fF — giving the
   1e6..1e9 ratio between consecutive transfer coefficients that defeats the
   unscaled interpolation (paper §2.2). *)
let circuit =
  let module B = Netlist.Builder in
  let b = B.create ~title:"positive-feedback OTA (Fig. 1)" () in
  let mos = Devices.mos_default in
  (* Differential pair, common tail node "t". *)
  Devices.add_mos b "m1" ~d:"x1" ~g:input_p ~s:"t"
    { mos with gm = 310e-6; gds = 4e-6; cgs = 120e-15; cgd = 25e-15 };
  Devices.add_mos b "m2" ~d:"x2" ~g:input_n ~s:"t"
    { mos with gm = 310e-6; gds = 4e-6; cgs = 120e-15; cgd = 25e-15 };
  (* Cross-coupled load pair: the positive feedback.  Their gate-source
     capacitance is merged into the diode loads' output capacitance. *)
  Devices.add_mos b "m3" ~d:"x1" ~g:"x2" ~s:"0"
    { mos with gm = 170e-6; gds = 6e-6; cgs = 0.; cgd = 30e-15 };
  Devices.add_mos b "m4" ~d:"x2" ~g:"x1" ~s:"0"
    { mos with gm = 170e-6; gds = 6e-6; cgs = 0.; cgd = 30e-15 };
  (* Diode-connected companions act as conductances at the load nodes. *)
  B.conductance b "m5.gdiode" ~a:"x1" ~b:"0" 180e-6;
  B.conductance b "m6.gdiode" ~a:"x2" ~b:"0" 180e-6;
  (* Output stage. *)
  Devices.add_mos b "m7" ~d:output ~g:"x2" ~s:"0"
    { mos with gm = 450e-6; gds = 9e-6; cgs = 60e-15; cgd = 35e-15 };
  (* Tail current source output conductance. *)
  B.conductance b "gtail" ~a:"t" ~b:"0" 1e-6;
  (* Output load. *)
  B.conductance b "gload" ~a:output ~b:"0" 10e-6;
  B.capacitor b "cload" ~a:output ~b:"0" 250e-15;
  B.finish b

let () = assert (List.length (Netlist.capacitor_values circuit) = capacitor_count)
