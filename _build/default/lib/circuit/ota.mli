(** The positive-feedback OTA of Fig. 1 (paper §2.2), as a MOS small-signal
    netlist.

    Differential pair [M1]/[M2] into a cross-coupled load pair [M3]/[M4]
    (the positive feedback that boosts the first-stage gain) with
    diode-connected companions, followed by a common-source output stage
    with a capacitive load.

    The circuit contains exactly 9 capacitors — hence the "upper estimate on
    the polynomial order for this circuit is 9" of §2.2 — while the true
    denominator order is limited by the 4 internal nodes, which is why the
    naive unit-circle interpolation of Table 1a produces round-off garbage
    in the unused orders. *)

val circuit : Netlist.t
(** Input nodes ["inp"]/["inn"] (to be driven differentially), output
    ["out"]. *)

val input_p : string
val input_n : string
val output : string

val capacitor_count : int
(** 9, the order estimate of §2.2. *)
