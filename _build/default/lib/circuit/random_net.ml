let input_node = "in"

(* Deterministic LCG (Numerical Recipes constants), 30-bit output. *)
type lcg = { mutable state : int }

let make_lcg seed = { state = (seed * 2654435761) land 0x3FFFFFFF }

let next g =
  g.state <- ((g.state * 1103515245) + 12345) land 0x3FFFFFFF;
  g.state

let uniform g = float_of_int (next g) /. float_of_int 0x40000000

let log_uniform g lo hi =
  Float.exp (Float.log lo +. (uniform g *. (Float.log hi -. Float.log lo)))

let int_below g n = next g mod n

let node_name i = Printf.sprintf "n%d" (i + 1)

let circuit ?(coupling_density = 0.3) ?gm_count ~seed ~nodes () =
  if nodes < 1 then invalid_arg "Random_net.circuit: nodes must be >= 1";
  let gm_count = Option.value gm_count ~default:(nodes / 2) in
  let g = make_lcg seed in
  let module B = Netlist.Builder in
  let b = B.create ~title:(Printf.sprintf "random-net seed=%d nodes=%d" seed nodes) () in
  B.vsrc b "vin" ~p:input_node ~m:"0" 1.;
  (* Backbone: node i connects to a previous node (or input/ground),
     guaranteeing connectivity and a DC path everywhere. *)
  for i = 0 to nodes - 1 do
    let target =
      if i = 0 then input_node
      else
        match int_below g (i + 2) with
        | 0 -> "0"
        | 1 -> input_node
        | k -> node_name (k - 2)
    in
    B.conductance b
      (Printf.sprintf "gb%d" (i + 1))
      ~a:(node_name i) ~b:target
      (log_uniform g 1e-6 1e-3);
    B.capacitor b
      (Printf.sprintf "cg%d" (i + 1))
      ~a:(node_name i) ~b:"0"
      (log_uniform g 1e-14 1e-11);
    (* Leak to ground keeps the DC matrix comfortably non-singular. *)
    B.conductance b
      (Printf.sprintf "gl%d" (i + 1))
      ~a:(node_name i) ~b:"0"
      (log_uniform g 1e-7 1e-5)
  done;
  (* Random couplings. *)
  let couplings = int_of_float (coupling_density *. float_of_int (nodes * 2)) in
  for k = 0 to couplings - 1 do
    let a = int_below g nodes and b' = int_below g nodes in
    if a <> b' then begin
      if uniform g < 0.5 then
        B.conductance b
          (Printf.sprintf "gc%d" k)
          ~a:(node_name a) ~b:(node_name b')
          (log_uniform g 1e-6 1e-4)
      else
        B.capacitor b
          (Printf.sprintf "cc%d" k)
          ~a:(node_name a) ~b:(node_name b')
          (log_uniform g 1e-14 1e-12)
    end
  done;
  (* Transconductances, kept below the local conductance level so the
     random network stays comfortably regular. *)
  for k = 0 to gm_count - 1 do
    let src = if int_below g 4 = 0 then input_node else node_name (int_below g nodes) in
    let dst = node_name (int_below g nodes) in
    if src <> dst then
      B.vccs b
        (Printf.sprintf "gm%d" k)
        ~p:"0" ~m:dst ~cp:src ~cm:"0"
        ((if uniform g < 0.25 then -1. else 1.) *. log_uniform g 1e-7 3e-5)
  done;
  B.finish b

let output_node ~seed ~nodes =
  let g = make_lcg (seed + 7919) in
  node_name (int_below g nodes)
