(** Deterministic random nodal-class circuits, for property-based testing.

    Generates connected G/C/VCCS networks with IC-typical value ranges
    (conductances 1e-6..1e-3 S, capacitances 1e-14..1e-11 F, moderate
    transconductances) so the generated transfer functions show the wide
    coefficient spreads the reference generator is built for.  A linear
    congruential generator keeps every circuit reproducible from its seed —
    no global randomness. *)

val circuit :
  ?coupling_density:float ->
  ?gm_count:int ->
  seed:int ->
  nodes:int ->
  unit ->
  Netlist.t
(** [circuit ~seed ~nodes ()] builds a circuit with [nodes] internal nodes
    plus a driven input node ["in"].  Every internal node has a conductance
    path towards ground (connectivity by construction) and a grounded
    capacitor; [coupling_density] (default [0.3]) adds node-to-node R/C
    coupling, [gm_count] (default [nodes/2]) adds VCCS elements.
    Node names are ["n1"..].  @raise Invalid_argument when [nodes < 1]. *)

val input_node : string

val output_node : seed:int -> nodes:int -> string
(** A pseudo-random—but seed-stable—choice of observation node. *)
