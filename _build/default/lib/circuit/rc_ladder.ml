module Epoly = Symref_poly.Epoly
module Ef = Symref_numeric.Extfloat

let input_node = "in"
let output_node = "out"

let section_values ?(r = 1e3) ?(c = 1e-12) ?(spread = 1.) n =
  if n < 1 then invalid_arg "Rc_ladder: need at least one section";
  if not (spread > 0.) then invalid_arg "Rc_ladder: spread must be > 0";
  List.init n (fun i ->
      let k = spread ** float_of_int i in
      (r *. k, c /. k))

let circuit ?r ?c ?spread n =
  let sections = section_values ?r ?c ?spread n in
  let b = Netlist.Builder.create ~title:(Printf.sprintf "rc-ladder-%d" n) () in
  let node_of i = if i = n then output_node else Printf.sprintf "n%d" i in
  Netlist.Builder.vsrc b "vin" ~p:input_node ~m:"0" 1.;
  List.iteri
    (fun i (ri, ci) ->
      let prev = if i = 0 then input_node else node_of i in
      let here = node_of (i + 1) in
      Netlist.Builder.resistor b (Printf.sprintf "r%d" (i + 1)) ~a:prev ~b:here ri;
      Netlist.Builder.capacitor b (Printf.sprintf "c%d" (i + 1)) ~a:here ~b:"0" ci)
    sections;
  Netlist.Builder.finish b

(* 2x2 ABCD chain; only polynomials in s appear (Z = R, Y = s*C). *)
type abcd = { a : Epoly.t; b : Epoly.t; c : Epoly.t; d : Epoly.t }

let identity =
  let one = Epoly.of_floats [| 1. |] in
  let zero = Epoly.zero in
  { a = one; b = zero; c = zero; d = one }

let mul x y =
  {
    a = Epoly.add (Epoly.mul x.a y.a) (Epoly.mul x.b y.c);
    b = Epoly.add (Epoly.mul x.a y.b) (Epoly.mul x.b y.d);
    c = Epoly.add (Epoly.mul x.c y.a) (Epoly.mul x.d y.c);
    d = Epoly.add (Epoly.mul x.c y.b) (Epoly.mul x.d y.d);
  }

let series_r r =
  { identity with b = Epoly.of_floats [| r |] }

let shunt_c c =
  { identity with c = Epoly.of_coeffs [| Ef.zero; Ef.of_float c |] }

let exact_denominator ?r ?c ?spread n =
  let sections = section_values ?r ?c ?spread n in
  let t =
    List.fold_left
      (fun acc (ri, ci) -> mul acc (mul (series_r ri) (shunt_c ci)))
      identity sections
  in
  t.a
