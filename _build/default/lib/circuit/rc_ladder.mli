(** RC ladder networks with exact transfer-function coefficients.

    An [n]-section ladder is [vin -R1- n1 -R2- n2 - ... -Rn- nn] with a
    capacitor from every internal node to ground, driven by a voltage source
    and observed (unloaded) at the last node.

    The voltage transfer is [H(s) = 1 / A(s)] where [A] is the chain product
    of ABCD matrices; because every product term is positive the recurrence
    computes the denominator coefficients {e without cancellation}, providing
    an exact oracle for the interpolation engines.  The denominator order is
    exactly [n]. *)

val circuit :
  ?r:float -> ?c:float -> ?spread:float -> int -> Netlist.t
(** [circuit n] builds an [n]-section ladder.  Defaults: [r = 1e3] ohm,
    [c = 1e-12] F.  [spread] (default [1.]) geometrically grades the values,
    section [i] getting [r * spread^i] and [c / spread^i], so large ladders
    exercise wide coefficient ranges like real IC parasitics.
    Input node: ["in"]; output node: ["out"]; input source: ["vin"].
    @raise Invalid_argument when [n < 1]. *)

val input_node : string
val output_node : string

val exact_denominator :
  ?r:float -> ?c:float -> ?spread:float -> int -> Symref_poly.Epoly.t
(** Denominator [A(s)] of the [n]-section ladder, normalised so the constant
    coefficient is [1] (the numerator is the constant [1]).  Computed by the
    cancellation-free ABCD recurrence in extended-range arithmetic. *)
