let inductors_to_gyrators ?g circuit =
  let has_inductor =
    List.exists
      (fun (e : Element.t) ->
        match e.Element.kind with Element.Inductor _ -> true | _ -> false)
      (Netlist.elements circuit)
  in
  if not has_inductor then circuit
  else begin
    let g =
      match g with
      | Some v -> v
      | None -> (
          match Netlist.conductance_values circuit with
          | [] -> 1e-3
          | vs -> Symref_numeric.Stats.mean vs)
    in
    let module B = Netlist.Builder in
    let b = B.create ~title:(Netlist.title circuit) () in
    (* Keep node ids stable for all existing nodes. *)
    for i = 1 to Netlist.node_count circuit do
      ignore (B.node b (Netlist.node_name circuit i))
    done;
    List.iter
      (fun (e : Element.t) ->
        match e.Element.kind with
        | Element.Inductor { a; b = b'; henries } ->
            let name = e.Element.name in
            let x = name ^ ".x" in
            let na = Netlist.node_name circuit a
            and nb = Netlist.node_name circuit b' in
            (* Gyrator of transconductance g terminated by C = L * g^2:
               i(a->b) = g * v_x and s*C*v_x = g * (v_a - v_b). *)
            B.vccs b (name ^ ".gyr1") ~p:"0" ~m:x ~cp:na ~cm:nb g;
            B.vccs b (name ^ ".gyr2") ~p:na ~m:nb ~cp:x ~cm:"0" g;
            B.capacitor b (name ^ ".cgyr") ~a:x ~b:"0" (henries *. g *. g)
        | Element.Conductance _ | Element.Resistor _ | Element.Capacitor _
        | Element.Vccs _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _
        | Element.Isrc _ | Element.Vsrc _ ->
            B.add b e)
      (Netlist.elements circuit);
    B.finish b
  end
