(** Network transformations that bring circuits into the nodal class.

    The paper (footnote 1, after eq. 10) restricts the analysis to circuits
    whose only frequency-dependent elements are capacitors, noting that
    "circuits containing inductors can be analysed using transformation
    methods".  The classic transformation is the gyrator-C equivalence: an
    inductor [L] between two nodes behaves exactly like a gyrator of
    transconductance [g] terminated by a grounded capacitor [C = L * g^2] —
    and a gyrator is just a pair of VCCS elements, which {e are} in the
    nodal class.

    The transformation is exact at all frequencies (it adds one internal
    node and one state per inductor; the network function is unchanged). *)

val inductors_to_gyrators : ?g:float -> Netlist.t -> Netlist.t
(** Replace every inductor by its gyrator-C equivalent.  [g] (default: the
    circuit's mean conductance, falling back to [1e-3] S) sets the gyration
    transconductance, hence the replacement capacitor value [L * g^2] — pick
    it near the circuit's own conductance level so the transformed values
    stay in range.  Inductor [lx] becomes elements [lx.gyr1], [lx.gyr2],
    [lx.cgyr] and internal node [lx.x].  Circuits without inductors are
    returned unchanged. *)
