type params = {
  gm1 : float;
  gm6 : float;
  cc : float;
  cl : float;
  gtail : float;
}

let default_params =
  { gm1 = 100e-6; gm6 = 1e-3; cc = 2e-12; cl = 5e-12; gtail = 1e-6 }

let input_p = "inp"
let input_n = "inn"
let output = "out"

(* Output conductances scale with the device currents; fixed at levels that
   give the textbook ~68 dB two-stage gain with the default transconductances. *)
let circuit ?(params = default_params) () =
  let p = params in
  let module B = Netlist.Builder in
  let b = B.create ~title:"two-stage Miller opamp" () in
  let mos = Devices.mos_default in
  let gds1 = p.gm1 /. 500. in
  (* Input pair. *)
  Devices.add_mos b "m1" ~d:"x1" ~g:input_p ~s:"t"
    { mos with gm = p.gm1; gds = gds1; cgs = 100e-15; cgd = 20e-15 };
  Devices.add_mos b "m2" ~d:"x2" ~g:input_n ~s:"t"
    { mos with gm = p.gm1; gds = gds1; cgs = 100e-15; cgd = 20e-15 };
  (* Mirror load: diode-connected M3 mirrored by M4 into x2. *)
  Devices.add_mos b "m3" ~d:"x1" ~g:"x1" ~s:"0"
    { mos with gm = p.gm1; gds = gds1; cgs = 80e-15; cgd = 15e-15 };
  Devices.add_mos b "m4" ~d:"x2" ~g:"x1" ~s:"0"
    { mos with gm = p.gm1; gds = gds1; cgs = 80e-15; cgd = 15e-15 };
  (* Tail current source. *)
  B.conductance b "gtail" ~a:"t" ~b:"0" p.gtail;
  B.capacitor b "ctail" ~a:"t" ~b:"0" 60e-15;
  (* Second stage. *)
  Devices.add_mos b "m6" ~d:output ~g:"x2" ~s:"0"
    { mos with gm = p.gm6; gds = p.gm6 /. 200.; cgs = 200e-15; cgd = 40e-15 };
  (* Current-source load of the second stage. *)
  B.conductance b "g7" ~a:output ~b:"0" (p.gm6 /. 200.);
  (* Compensation: nulling resistor Rz = 1/gm6 in series with Cc. *)
  B.resistor b "rz" ~a:"x2" ~b:"z" (1. /. p.gm6);
  B.capacitor b "cc" ~a:"z" ~b:output p.cc;
  B.capacitor b "cload" ~a:output ~b:"0" p.cl;
  B.finish b

let gbw_hz p = p.gm1 /. (2. *. Float.pi *. p.cc)

let dc_gain p =
  let gds1 = p.gm1 /. 500. in
  let r1 = 1. /. (2. *. gds1) in
  let r2 = 1. /. (2. *. (p.gm6 /. 200.)) in
  p.gm1 *. r1 *. p.gm6 *. r2
