(** The classic CMOS two-stage Miller-compensated opamp, as a small-signal
    workload with textbook closed forms:

    - gain-bandwidth product [GBW = gm1 / (2 pi Cc)];
    - DC gain [gm1/go1 * gm6/go2];
    - the right-half-plane zero [gm6/Cc] cancelled by the nulling resistor
      [Rz = 1/gm6];
    - common-mode rejection set by the tail conductance.

    Differential pair M1/M2 with mirror load M3/M4, common-source second
    stage M6, compensation branch [Rz + Cc] and a capacitive load. *)

type params = {
  gm1 : float;   (** input-pair transconductance, S *)
  gm6 : float;   (** second-stage transconductance, S *)
  cc : float;    (** Miller capacitor, F *)
  cl : float;    (** load capacitor, F *)
  gtail : float; (** tail current source output conductance, S *)
}

val default_params : params
(** [gm1 = 100uS], [gm6 = 1mS], [cc = 2pF], [cl = 5pF], [gtail = 1uS]:
    GBW ~ 8 MHz, DC gain ~ 68 dB. *)

val circuit : ?params:params -> unit -> Netlist.t
val input_p : string
val input_n : string
val output : string

val gbw_hz : params -> float
(** The design GBW, [gm1 / (2 pi cc)]. *)

val dc_gain : params -> float
(** The design DC gain (linear). *)
