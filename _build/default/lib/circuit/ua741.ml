let input_p = "inp"
let input_n = "inn"
let output = "out"
let transistor_count = 24

(* Process sketch: vertical NPN (fast) and lateral/substrate PNP (slow, large
   parasitics), as in the 741's vintage process.  [ccs = 0.] for devices whose
   collector sits at an AC-ground supply rail. *)
let npn ?(ccs = 1.5e-12) ic =
  Devices.bjt_of_bias ~beta:200. ~va:100. ~tf:400e-12 ~cmu:1.5e-12 ~rb:200. ~ccs ~ic ()

let pnp ?(ccs = 3e-12) ic =
  Devices.bjt_of_bias ~beta:50. ~va:60. ~tf:20e-9 ~cmu:2e-12 ~rb:300. ~ccs ~ic ()

let circuit =
  let module B = Netlist.Builder in
  let b = B.create ~title:"uA741 (small-signal, 24 BJT)" () in
  let bjt = Devices.add_bjt b in
  (* --- Input stage: emitter followers into common-base PNPs, mirror load. *)
  bjt "q1" ~c:"n8" ~b:input_p ~e:"n1" (npn 9.5e-6);
  bjt "q2" ~c:"n8" ~b:input_n ~e:"n2" (npn 9.5e-6);
  bjt "q3" ~c:"n5" ~b:"n9" ~e:"n1" (pnp 9.5e-6);
  bjt "q4" ~c:"n10" ~b:"n9" ~e:"n2" (pnp 9.5e-6);
  bjt "q5" ~c:"n5" ~b:"n6" ~e:"n3" (npn 9.5e-6);
  bjt "q6" ~c:"n10" ~b:"n6" ~e:"n4" (npn 9.5e-6);
  bjt "q7" ~c:"0" ~b:"n5" ~e:"n6" (npn ~ccs:0. 10e-6);
  B.resistor b "r1" ~a:"n3" ~b:"0" 1e3;
  B.resistor b "r2" ~a:"n4" ~b:"0" 1e3;
  B.resistor b "r3" ~a:"n6" ~b:"0" 50e3;
  (* --- Bias chain: Q8/Q9 mirror, Q10/Q11 Widlar, Q12/Q13 PNP mirror. *)
  bjt "q8" ~c:"n8" ~b:"n8" ~e:"0" (pnp 19e-6);
  bjt "q9" ~c:"n9" ~b:"n8" ~e:"0" (pnp 19e-6);
  bjt "q10" ~c:"n9" ~b:"n11" ~e:"n12" (npn 19e-6);
  bjt "q11" ~c:"n11" ~b:"n11" ~e:"0" (npn 730e-6);
  bjt "q12" ~c:"n13" ~b:"n13" ~e:"0" (pnp 730e-6);
  bjt "q13" ~c:"n14" ~b:"n13" ~e:"0" (pnp 550e-6);
  B.resistor b "r4" ~a:"n12" ~b:"0" 5e3;
  B.resistor b "r5" ~a:"n11" ~b:"n13" 39e3;
  (* --- Gain stage: Darlington Q16/Q17 with the 30 pF Miller capacitor. *)
  bjt "q16" ~c:"0" ~b:"n10" ~e:"n15" (npn ~ccs:0. 16e-6);
  bjt "q17" ~c:"n14" ~b:"n15" ~e:"n16" (npn 550e-6);
  B.resistor b "r9" ~a:"n15" ~b:"0" 50e3;
  B.resistor b "r8" ~a:"n16" ~b:"0" 100.;
  B.capacitor b "cc" ~a:"n10" ~b:"n14" 30e-12;
  (* --- Vbe multiplier Q18 (+ series diode Q19) between drive and output
         bases. *)
  bjt "q18" ~c:"n14" ~b:"n17" ~e:"n18" (npn 165e-6);
  B.resistor b "r11" ~a:"n14" ~b:"n17" 7.5e3;
  B.resistor b "r10" ~a:"n17" ~b:"n18" 40e3;
  bjt "q19" ~c:"n18" ~b:"n18" ~e:"n19" (npn 165e-6);
  (* --- Class-AB output pair with emitter resistors. *)
  bjt "q14" ~c:"0" ~b:"n14" ~e:"n20" (npn ~ccs:0. 150e-6);
  bjt "q20" ~c:"0" ~b:"n19" ~e:"n21" (pnp ~ccs:0. 150e-6);
  B.resistor b "r6" ~a:"n20" ~b:output 27.;
  B.resistor b "r7" ~a:"n21" ~b:output 22.;
  (* --- Protection devices: off at DC, biased at 10 nA so that their
         parasitics remain in the netlist without loading the signal path. *)
  bjt "q15" ~c:"n14" ~b:"n20" ~e:output (npn 10e-9);
  bjt "q21" ~c:"n22" ~b:output ~e:"n21" (pnp 10e-9);
  bjt "q22" ~c:"n10" ~b:"n22" ~e:"0" (npn 10e-9);
  bjt "q23" ~c:"0" ~b:"n22" ~e:"n10" (pnp ~ccs:0. 10e-9);
  bjt "q24" ~c:"n22" ~b:"n22" ~e:"0" (npn 10e-9);
  (* --- Load. *)
  B.resistor b "rload" ~a:output ~b:"0" 2e3;
  B.capacitor b "cload" ~a:output ~b:"0" 100e-12;
  B.finish b

let () = assert (Netlist.is_connected circuit)
