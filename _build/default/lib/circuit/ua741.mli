(** Small-signal µA741 operational amplifier.

    The full 24-transistor Fairchild topology (input stage Q1-Q9, bias
    chain Q10-Q13, gain stage Q16/Q17, Vbe multiplier Q18/Q19, class-AB
    output Q14/Q20, protection devices Q15/Q21-Q24 modelled weakly on),
    datasheet resistors, the 30 pF compensation capacitor, and a 2 kohm /
    100 pF load.  Every BJT is expanded into its hybrid-pi model with
    base-spreading resistance and (where the collector is not at an AC
    ground) collector-substrate capacitance, so the voltage-gain denominator
    reaches the ~48th order analysed in Tables 2-3 of the paper.

    This is the documented substitution for the paper's proprietary µA741
    netlist: the topology and bias currents follow the classic schematic,
    the junction capacitances follow a vintage bipolar process (lateral PNPs
    with ~20 ns transit time), so the property the algorithm exercises — a
    ~1e6..1e9 magnitude ratio between consecutive coefficients over ~48
    orders — is preserved even though absolute coefficient values differ
    from the authors'. *)

val circuit : Netlist.t
val input_p : string
val input_n : string
val output : string

val transistor_count : int
(** 24. *)
