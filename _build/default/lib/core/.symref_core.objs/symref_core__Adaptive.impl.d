lib/core/adaptive.ml: Array Band Evaluator Float Fun Hashtbl Int Interp List Scaling Symref_numeric
