lib/core/adaptive.mli: Band Evaluator Scaling Symref_numeric
