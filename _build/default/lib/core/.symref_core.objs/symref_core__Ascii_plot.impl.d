lib/core/ascii_plot.ml: Array Buffer Float Int List Printf Reference String Symref_mna Symref_numeric
