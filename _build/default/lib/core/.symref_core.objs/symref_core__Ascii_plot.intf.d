lib/core/ascii_plot.mli: Reference Symref_mna
