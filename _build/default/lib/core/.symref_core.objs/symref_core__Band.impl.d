lib/core/band.ml: Array Symref_numeric
