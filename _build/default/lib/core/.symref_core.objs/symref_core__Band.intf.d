lib/core/band.mli: Symref_numeric
