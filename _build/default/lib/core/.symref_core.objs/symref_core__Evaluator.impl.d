lib/core/evaluator.ml: Array Complex Symref_mna Symref_numeric Symref_poly
