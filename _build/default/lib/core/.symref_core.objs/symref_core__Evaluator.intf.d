lib/core/evaluator.mli: Complex Symref_mna Symref_numeric Symref_poly
