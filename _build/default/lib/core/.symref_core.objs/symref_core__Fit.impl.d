lib/core/fit.ml: Array Complex Float Int List Rational Symref_linalg Symref_numeric Symref_poly
