lib/core/fit.mli: Complex Rational
