lib/core/fixed_scale.ml: Array Band Evaluator Interp Scaling Symref_numeric
