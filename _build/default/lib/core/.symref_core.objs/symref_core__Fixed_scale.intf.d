lib/core/fixed_scale.mli: Band Evaluator Scaling Symref_numeric
