lib/core/interp.ml: Array Complex Evaluator Float Int List Scaling Symref_dft Symref_numeric Symref_poly
