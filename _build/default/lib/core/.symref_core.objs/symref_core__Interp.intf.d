lib/core/interp.mli: Evaluator Scaling Symref_numeric
