lib/core/locus.ml: Array Complex Reference Symref_circuit Symref_poly
