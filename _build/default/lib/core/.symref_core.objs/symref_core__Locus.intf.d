lib/core/locus.mli: Adaptive Complex Symref_circuit Symref_mna
