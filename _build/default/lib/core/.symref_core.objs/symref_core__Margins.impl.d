lib/core/margins.ml: Array Float Format Option Reference Symref_mna Symref_numeric
