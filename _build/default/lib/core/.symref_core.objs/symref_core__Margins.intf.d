lib/core/margins.mli: Format Reference
