lib/core/naive.ml: Array Band Evaluator Interp Scaling Symref_numeric
