lib/core/naive.mli: Band Evaluator Symref_numeric
