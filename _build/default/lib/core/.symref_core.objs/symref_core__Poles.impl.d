lib/core/poles.ml: Array Complex Float Format List Reference Symref_poly
