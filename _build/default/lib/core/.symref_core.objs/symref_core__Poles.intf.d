lib/core/poles.mli: Complex Format Reference Symref_poly
