lib/core/rational.ml: Array Complex Float List Reference Symref_numeric Symref_poly
