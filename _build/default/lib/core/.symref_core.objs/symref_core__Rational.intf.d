lib/core/rational.mli: Complex Reference Symref_poly
