lib/core/reference.ml: Adaptive Array Complex Evaluator Float Symref_mna Symref_numeric Symref_poly
