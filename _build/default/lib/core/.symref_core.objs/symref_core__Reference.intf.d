lib/core/reference.mli: Adaptive Complex Symref_circuit Symref_mna Symref_numeric Symref_poly
