lib/core/report.ml: Adaptive Array Band Buffer Fixed_scale Float Int List Naive Printf Reference Scaling String Symref_mna Symref_numeric
