lib/core/report.mli: Adaptive Fixed_scale Naive Reference Symref_mna
