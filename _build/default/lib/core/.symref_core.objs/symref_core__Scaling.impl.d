lib/core/scaling.ml: Evaluator Float Symref_numeric
