lib/core/scaling.mli: Evaluator Symref_numeric
