lib/core/verify.ml: Adaptive Array Complex Evaluator Float List Scaling Symref_numeric Symref_poly
