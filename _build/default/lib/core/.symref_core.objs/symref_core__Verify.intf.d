lib/core/verify.mli: Adaptive Evaluator
