module Ac = Symref_mna.Ac

type series = { label : string; xs : float array; ys : float array }

let render ?(width = 72) ?(height = 20) ?(y_label = "") series =
  (match series with
  | [] -> invalid_arg "Ascii_plot.render: no series"
  | _ :: _ :: _ :: _ -> invalid_arg "Ascii_plot.render: at most two series"
  | _ -> ());
  List.iter
    (fun s ->
      if Array.length s.xs = 0 || Array.length s.xs <> Array.length s.ys then
        invalid_arg "Ascii_plot.render: empty or mismatched series";
      Array.iter
        (fun x -> if not (x > 0.) then invalid_arg "Ascii_plot.render: x must be > 0")
        s.xs)
    series;
  let all_x = List.concat_map (fun s -> Array.to_list s.xs) series in
  let all_y = List.concat_map (fun s -> Array.to_list s.ys) series in
  let x_lo, x_hi = Symref_numeric.Stats.min_max (List.map Float.log10 all_x) in
  let y_lo, y_hi = Symref_numeric.Stats.min_max all_y in
  let y_lo, y_hi = if y_hi -. y_lo < 1e-9 then (y_lo -. 1., y_hi +. 1.) else (y_lo, y_hi) in
  let x_hi = if x_hi -. x_lo < 1e-9 then x_lo +. 1. else x_hi in
  let grid = Array.make_matrix height width ' ' in
  let col x =
    let t = (Float.log10 x -. x_lo) /. (x_hi -. x_lo) in
    Int.min (width - 1) (Int.max 0 (int_of_float (t *. float_of_int (width - 1))))
  in
  let row y =
    let t = (y -. y_lo) /. (y_hi -. y_lo) in
    let r = height - 1 - int_of_float (t *. float_of_int (height - 1)) in
    Int.min (height - 1) (Int.max 0 r)
  in
  let marks = [| '*'; 'o' |] in
  List.iteri
    (fun si s ->
      Array.iteri
        (fun i x ->
          let r = row s.ys.(i) and c = col x in
          grid.(r).(c) <-
            (match grid.(r).(c) with
            | ' ' -> marks.(si)
            | existing when existing <> marks.(si) -> '#'
            | existing -> existing))
        s.xs)
    series;
  let buf = Buffer.create (width * height * 2) in
  if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
  Array.iteri
    (fun r line ->
      let label =
        if r = 0 then Printf.sprintf "%10.3g |" y_hi
        else if r = height - 1 then Printf.sprintf "%10.3g |" y_lo
        else Printf.sprintf "%10s |" ""
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%10s  %-10.3g%*s%.3g Hz\n" "" (Float.exp (x_lo *. Float.log 10.))
       (width - 20) ""
       (Float.exp (x_hi *. Float.log 10.)));
  List.iteri
    (fun si s ->
      Buffer.add_string buf (Printf.sprintf "%10s  %c = %s\n" "" marks.(si) s.label))
    series;
  Buffer.contents buf

let bode_figure ~interpolated ~simulator =
  let freqs_i = Array.map (fun (p : Reference.bode_point) -> p.Reference.freq_hz) interpolated in
  let freqs_s = Array.map (fun (p : Ac.bode_point) -> p.Ac.freq_hz) simulator in
  let mag =
    render ~y_label:"Magnitude (dB)"
      [
        {
          label = "interpolated";
          xs = freqs_i;
          ys = Array.map (fun p -> p.Reference.mag_db) interpolated;
        };
        {
          label = "electrical simulator";
          xs = freqs_s;
          ys = Array.map (fun (p : Ac.bode_point) -> p.Ac.mag_db) simulator;
        };
      ]
  in
  let phase =
    render ~y_label:"Phase (deg)"
      [
        {
          label = "interpolated";
          xs = freqs_i;
          ys = Array.map (fun p -> p.Reference.phase_deg) interpolated;
        };
        {
          label = "electrical simulator";
          xs = freqs_s;
          ys = Array.map (fun (p : Ac.bode_point) -> p.Ac.phase_deg) simulator;
        };
      ]
  in
  mag ^ "\n" ^ phase
