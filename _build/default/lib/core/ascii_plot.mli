(** Terminal plotting of frequency responses: the Fig. 2 view without
    leaving the shell.

    Renders one or two series on a log-frequency axis into a character
    grid with axis labels; two series share the canvas ([*] first, [o]
    second, [#] where they coincide — Fig. 2's "interpolated vs electrical
    simulator" overlay). *)

type series = { label : string; xs : float array; ys : float array }

val render :
  ?width:int ->
  ?height:int ->
  ?y_label:string ->
  series list ->
  string
(** [render series] draws up to two series ([width] x [height] characters,
    defaults 72 x 20).  X values must be positive (log axis).
    @raise Invalid_argument on empty input, mismatched lengths, more than
    two series, or non-positive frequencies. *)

val bode_figure :
  interpolated:Reference.bode_point array ->
  simulator:Symref_mna.Ac.bode_point array ->
  string
(** The Fig. 2 pair: magnitude and phase canvases of both curves. *)
