module Ec = Symref_numeric.Extcomplex
module Ef = Symref_numeric.Extfloat
module Epoly = Symref_poly.Epoly
module Nodal = Symref_mna.Nodal

type t = {
  eval : f:float -> g:float -> Complex.t -> Ec.t;
  gdeg : int;
  order_bound : int;
  f0 : float;
  g0 : float;
  name : string;
  counter : int ref;
}

let of_nodal problem ~num =
  let counter = ref 0 in
  let eval ~f ~g s =
    incr counter;
    let v = Nodal.eval ~f ~g problem s in
    if num then v.Nodal.num else v.Nodal.den
  in
  {
    eval;
    gdeg = (if num then Nodal.num_gdeg problem else Nodal.den_gdeg problem);
    order_bound = Nodal.order_bound problem;
    f0 = 1. /. Nodal.mean_capacitance problem;
    g0 = 1. /. Nodal.mean_conductance problem;
    name = (if num then "num" else "den");
    counter;
  }

let of_epoly ?(name = "poly") ~gdeg ~f0 ~g0 p =
  if Epoly.degree p > gdeg then
    invalid_arg "Evaluator.of_epoly: degree exceeds homogeneity degree";
  let counter = ref 0 in
  let eval ~f ~g s =
    incr counter;
    (* Scale coefficients exactly: p_i -> p_i f^i g^(gdeg-i), then Horner. *)
    let coeffs = Epoly.coeffs p in
    let scaled =
      Array.mapi
        (fun i c ->
          Ef.mul c (Ef.mul (Ef.float_pow_int f i) (Ef.float_pow_int g (gdeg - i))))
        coeffs
    in
    Epoly.eval (Epoly.of_coeffs scaled) (Ec.of_complex s)
  in
  { eval; gdeg; order_bound = Epoly.degree p; f0; g0; name; counter }

let eval_count t = !(t.counter)
