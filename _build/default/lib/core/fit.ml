module Dense = Symref_linalg.Dense
module Epoly = Symref_poly.Epoly

type result = {
  model : Rational.t;
  iterations : int;
  max_relative_error : float;
}

(* Real least squares via normal equations, solved with the complex LU. *)
let solve_least_squares rows rhs unknowns =
  let m = Array.make_matrix unknowns unknowns Complex.zero in
  let v = Array.make unknowns Complex.zero in
  List.iter2
    (fun (row : float array) (b : float) ->
      for i = 0 to unknowns - 1 do
        v.(i) <- Complex.add v.(i) { re = row.(i) *. b; im = 0. };
        for j = 0 to unknowns - 1 do
          m.(i).(j) <- Complex.add m.(i).(j) { re = row.(i) *. row.(j); im = 0. }
        done
      done)
    rows rhs;
  Array.map (fun (z : Complex.t) -> z.re) (Dense.solve (Dense.factor m) v)

let rational ?(iterations = 8) ~num_degree ~den_degree ~freqs_hz values =
  if num_degree < 0 || den_degree < 1 then
    invalid_arg "Fit.rational: need num_degree >= 0 and den_degree >= 1";
  let m = Array.length freqs_hz in
  if m <> Array.length values then invalid_arg "Fit.rational: mismatched arrays";
  let unknowns = num_degree + 1 + den_degree in
  if m < unknowns then invalid_arg "Fit.rational: not enough samples";
  Array.iter
    (fun f -> if not (f > 0.) then invalid_arg "Fit.rational: frequencies must be > 0")
    freqs_hz;
  (* Normalised evaluation points for conditioning. *)
  let w0 =
    Symref_numeric.Stats.geometric_mean
      (Array.to_list (Array.map (fun f -> 2. *. Float.pi *. f) freqs_hz))
  in
  let points =
    Array.map (fun f -> { Complex.re = 0.; im = 2. *. Float.pi *. f /. w0 }) freqs_hz
  in
  (* Powers table: points.(i)^k. *)
  let pow = Array.make_matrix m (Int.max (num_degree + 1) (den_degree + 1)) Complex.one in
  Array.iteri
    (fun i s ->
      for k = 1 to Array.length pow.(0) - 1 do
        pow.(i).(k) <- Complex.mul pow.(i).(k - 1) s
      done)
    points;
  let weights = Array.make m 1. in
  let num = Array.make (num_degree + 1) 0. and den = Array.make (den_degree + 1) 0. in
  den.(0) <- 1.;
  let iter_count = ref 0 in
  for _ = 1 to iterations do
    incr iter_count;
    let rows = ref [] and rhs = ref [] in
    for i = 0 to m - 1 do
      let w = weights.(i) in
      let h = values.(i) in
      let row_re = Array.make unknowns 0. and row_im = Array.make unknowns 0. in
      for k = 0 to num_degree do
        let c = pow.(i).(k) in
        row_re.(k) <- w *. c.Complex.re;
        row_im.(k) <- w *. c.Complex.im
      done;
      for k = 1 to den_degree do
        let c = Complex.mul h pow.(i).(k) in
        row_re.(num_degree + k) <- -.w *. c.Complex.re;
        row_im.(num_degree + k) <- -.w *. c.Complex.im
      done;
      rows := row_im :: row_re :: !rows;
      rhs := (w *. h.Complex.im) :: (w *. h.Complex.re) :: !rhs
    done;
    let x = solve_least_squares (List.rev !rows) (List.rev !rhs) unknowns in
    Array.blit x 0 num 0 (num_degree + 1);
    for k = 1 to den_degree do
      den.(k) <- x.(num_degree + k)
    done;
    (* SK reweighting. *)
    for i = 0 to m - 1 do
      let d = ref Complex.zero in
      for k = den_degree downto 0 do
        d := Complex.add (Complex.mul !d points.(i)) { re = den.(k); im = 0. }
      done;
      let mag = Complex.norm !d in
      if mag > 1e-12 then weights.(i) <- 1. /. mag
    done
  done;
  (* Denormalise: coefficient of s^k divides by w0^k. *)
  let denorm coeffs =
    Epoly.of_coeffs
      (Array.mapi
         (fun k c ->
           Symref_numeric.Extfloat.mul
             (Symref_numeric.Extfloat.of_float c)
             (Symref_numeric.Extfloat.float_pow_int w0 (-k)))
         coeffs)
  in
  let model = Rational.of_epolys ~num:(denorm num) ~den:(denorm den) in
  let max_relative_error =
    let worst = ref 0. in
    Array.iteri
      (fun i f ->
        let h = Rational.eval model { Complex.re = 0.; im = 2. *. Float.pi *. f } in
        let e =
          Complex.norm (Complex.sub h values.(i)) /. (Complex.norm values.(i) +. 1e-300)
        in
        if e > !worst then worst := e)
      freqs_hz;
    !worst
  in
  { model; iterations = !iter_count; max_relative_error }
