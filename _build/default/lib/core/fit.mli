(** Rational fitting of sampled frequency responses (Sanathanan-Koerner
    iteration): from AC-sweep data back to an [N(s)/D(s)] model — the
    inverse of what {!Reference} computes, and a useful cross-check
    (fitting the simulator's sweep must recover the reference
    coefficients' ratios).

    The linearised least-squares problem at each iteration minimises
    [sum |N(s_i) - h_i D(s_i)|^2 / |D_prev(s_i)|^2] with [d_0 = 1] fixed;
    frequencies are normalised to their geometric mean for conditioning.
    Normal equations are solved with the dense complex LU. *)

type result = {
  model : Rational.t;
  iterations : int;
  max_relative_error : float;
      (** worst [|H_model - h| / |h|] over the samples *)
}

val rational :
  ?iterations:int ->
  num_degree:int ->
  den_degree:int ->
  freqs_hz:float array ->
  Complex.t array ->
  result
(** [rational ~num_degree ~den_degree ~freqs_hz values] fits the samples
    [values.(i) = H(j 2 pi freqs_hz.(i))].  Needs at least
    [num_degree + den_degree + 1] samples.  [iterations] defaults to 8.
    @raise Invalid_argument on bad degrees, too few samples or mismatched
    arrays. *)
