module Ec = Symref_numeric.Extcomplex
module Ef = Symref_numeric.Extfloat

type t = {
  scale : Scaling.pair;
  normalized : Ec.t array;
  band : Band.t option;
  denormalized : Ef.t array;
  points : int;
  evaluations : int;
}

let run ?(conj_symmetry = true) ?(sigma = 6) ?(g = 1.) ~f (ev : Evaluator.t) =
  let scale = { Scaling.f; g } in
  let k = ev.Evaluator.order_bound + 1 in
  let pass = Interp.run ~conj_symmetry ev ~scale ~k in
  let normalized = pass.Interp.normalized in
  let denormalized =
    Array.mapi
      (fun i c -> Scaling.denormalize ~gdeg:ev.Evaluator.gdeg scale i (Ec.re c))
      normalized
  in
  {
    scale;
    normalized;
    band = Band.detect ~sigma ~base:0 normalized;
    denormalized;
    points = pass.Interp.points;
    evaluations = pass.Interp.evaluations;
  }
