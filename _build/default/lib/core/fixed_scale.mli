(** Single-pass interpolation with user-chosen scale factors (paper §3,
    Table 1b).  Rescues the conventional method for polynomials up to about
    tenth order; beyond that no single scale pair keeps every coefficient
    above the error level — which is what the adaptive algorithm fixes. *)

type t = {
  scale : Scaling.pair;
  normalized : Symref_numeric.Extcomplex.t array;
      (** coefficients at the chosen normalisation (Table 1b shows these) *)
  band : Band.t option;  (** the valid region (shadowed cells of Table 1b) *)
  denormalized : Symref_numeric.Extfloat.t array;
      (** true coefficients; only indices inside [band] are meaningful *)
  points : int;
  evaluations : int;
}

val run :
  ?conj_symmetry:bool ->
  ?sigma:int ->
  ?g:float ->
  f:float ->
  Evaluator.t ->
  t
(** [run ~f ev] interpolates once with frequency scale [f] (and conductance
    scale [g], default [1.]). *)
