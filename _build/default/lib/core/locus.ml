module Netlist = Symref_circuit.Netlist
module Roots = Symref_poly.Roots

type point = {
  factor : float;
  poles : Complex.t array;
  dc_gain : float;
  evaluations : int;
}

let poles_vs_element ?config circuit ~input ~output ~element ~factors =
  if Netlist.find_element circuit element = None then raise Not_found;
  Array.map
    (fun factor ->
      let c = Netlist.scale_element circuit element factor in
      let r = Reference.generate ?config c ~input ~output in
      let poles, _ = Roots.find (Reference.denominator r) in
      {
        factor;
        poles;
        dc_gain = Reference.dc_gain r;
        evaluations = Reference.total_evaluations r;
      })
    factors
