(** Pole/zero loci under element-value sweeps — the root-locus view a
    designer uses to size a compensation element, computed by regenerating
    references at each sweep point and extracting roots.

    This is deliberately the expensive-but-exact route (a full adaptive run
    per point): it exercises the reference generator the way a sizing loop
    in a synthesis tool would (the paper's motivating application is
    "repetitive evaluations in design automation"). *)

type point = {
  factor : float;          (** multiplier applied to the element value *)
  poles : Complex.t array;
  dc_gain : float;
  evaluations : int;       (** LU evaluations spent at this point *)
}

val poles_vs_element :
  ?config:Adaptive.config ->
  Symref_circuit.Netlist.t ->
  input:Symref_mna.Nodal.input ->
  output:Symref_mna.Nodal.output ->
  element:string ->
  factors:float array ->
  point array
(** [poles_vs_element c ~element ~factors] scales the named element by each
    factor and returns the pole set (and DC gain) at each point.
    @raise Not_found when the element does not exist;
    @raise Symref_mna.Nodal.Unsupported outside the nodal class. *)
