module Grid = Symref_numeric.Grid
module Ac = Symref_mna.Ac

type t = {
  dc_gain_db : float;
  unity_gain_hz : float option;
  phase_margin_deg : float option;
  gain_margin_db : float option;
  gbw_hz : float option;
}

(* Linear interpolation of the x where series y crosses level, scanning from
   the left; x is interpolated in log-frequency. *)
let crossing freqs y level =
  let n = Array.length y in
  let rec go i =
    if i >= n - 1 then None
    else
      let a = y.(i) -. level and b = y.(i + 1) -. level in
      if a = 0. then Some freqs.(i)
      else if a *. b < 0. then begin
        let t = a /. (a -. b) in
        let lf = Float.log10 freqs.(i) +. (t *. (Float.log10 freqs.(i + 1) -. Float.log10 freqs.(i))) in
        Some (Float.exp (lf *. Float.log 10.))
      end
      else go (i + 1)
  in
  go 0

let interpolate freqs y f =
  let n = Array.length freqs in
  let rec go i =
    if i >= n - 1 then y.(n - 1)
    else if f <= freqs.(i + 1) then begin
      let lf = Float.log10 f
      and l0 = Float.log10 freqs.(i)
      and l1 = Float.log10 freqs.(i + 1) in
      let t = if l1 = l0 then 0. else (lf -. l0) /. (l1 -. l0) in
      y.(i) +. (t *. (y.(i + 1) -. y.(i)))
    end
    else go (i + 1)
  in
  if f <= freqs.(0) then y.(0) else go 0

let analyse ?(f_min = 1e-2) ?(f_max = 1e12) (r : Reference.t) =
  let freqs = Grid.decades ~start:f_min ~stop:f_max ~per_decade:40 in
  let pts = Reference.bode r freqs in
  let mags = Array.map (fun p -> p.Reference.mag_db) pts in
  let phases =
    Ac.unwrap_phase_deg (Array.map (fun p -> p.Reference.phase_deg) pts)
  in
  let dc_gain_db = 20. *. Float.log10 (Float.abs (Reference.dc_gain r)) in
  let unity_gain_hz = crossing freqs mags 0. in
  (* Phase lag accumulated since the gain peak (midband): an inverting
     amplifier starts at +-180, an AC-coupled one carries leading phase from
     its coupling zeros — both are referenced out before counting lag. *)
  let peak = ref 0 in
  Array.iteri (fun i m -> if m > mags.(!peak) then peak := i) mags;
  let p0 = phases.(!peak) in
  let rel = Array.map (fun p -> p -. p0) phases in
  let phase_margin_deg =
    Option.map (fun f -> 180. +. interpolate freqs rel f) unity_gain_hz
  in
  let gain_margin_db =
    Option.map (fun f -> -.interpolate freqs mags f) (crossing freqs rel (-180.))
  in
  let gbw_hz =
    Option.map
      (fun f3 -> Float.abs (Reference.dc_gain r) *. f3)
      (crossing freqs mags (dc_gain_db -. 3.0103))
  in
  { dc_gain_db; unity_gain_hz; phase_margin_deg; gain_margin_db; gbw_hz }

let pp ppf t =
  let opt ppf = function
    | None -> Format.fprintf ppf "n/a"
    | Some v -> Format.fprintf ppf "%.4g" v
  in
  Format.fprintf ppf "DC gain %.1f dB, unity gain at %a Hz@." t.dc_gain_db opt
    t.unity_gain_hz;
  Format.fprintf ppf "phase margin %a deg, gain margin %a dB, GBW %a Hz@."
    opt t.phase_margin_deg opt t.gain_margin_db opt t.gbw_hz
