(** Loop-stability figures from reference coefficients: unity-gain
    frequency, phase margin, gain margin — the numbers an opamp designer
    reads off the Bode plot that Fig. 2 compares.

    All quantities are computed from the extended-range [N]/[D] coefficient
    polynomials by bisection on smooth magnitude/phase functions of
    frequency, so they inherit the references' accuracy. *)

type t = {
  dc_gain_db : float;
  unity_gain_hz : float option;
      (** frequency where [|H| = 1] (0 dB crossover); [None] when the gain
          never crosses unity in the searched range *)
  phase_margin_deg : float option;
      (** [180 + phase at the 0 dB crossover] *)
  gain_margin_db : float option;
      (** [-|H|dB] at the first [-180 deg] phase crossing *)
  gbw_hz : float option;
      (** gain-bandwidth product estimated at the dominant pole
          ([dc gain * f_3dB]); [None] if no -3 dB corner is found *)
}

val analyse : ?f_min:float -> ?f_max:float -> Reference.t -> t
(** Search range defaults to [1e-2 .. 1e12] Hz. *)

val pp : Format.formatter -> t -> unit
