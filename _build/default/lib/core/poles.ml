module Roots = Symref_poly.Roots
module Epoly = Symref_poly.Epoly

type resonance = { pole : Complex.t; freq_hz : float; q : float }

type analysis = {
  poles : Complex.t array;
  zeros : Complex.t array;
  resonances : resonance list;
  real_poles_hz : float list;
  stable : bool;
  quality : Roots.quality;
}

let two_pi = 2. *. Float.pi

let analyse (t : Reference.t) =
  let den = Reference.denominator t and num = Reference.numerator t in
  let poles, quality = Roots.find den in
  let zeros =
    if Epoly.degree num < 1 then [||] else fst (Roots.find num)
  in
  let pairs, reals = Roots.conjugate_pairs poles in
  let resonances =
    List.map
      (fun ((p : Complex.t), _) ->
        let w = Complex.norm p in
        { pole = p; freq_hz = w /. two_pi; q = w /. (2. *. Float.abs p.re) })
      pairs
    |> List.sort (fun a b -> Float.compare a.freq_hz b.freq_hz)
  in
  let real_poles_hz =
    List.map (fun (p : Complex.t) -> Complex.norm p /. two_pi) reals
    |> List.sort Float.compare
  in
  let stable = Array.for_all (fun (p : Complex.t) -> p.re < 0.) poles in
  { poles; zeros; resonances; real_poles_hz; stable; quality }

let pp ppf a =
  Format.fprintf ppf "poles: %d (%s), zeros: %d@."
    (Array.length a.poles)
    (if a.stable then "stable" else "UNSTABLE")
    (Array.length a.zeros);
  List.iter
    (fun f -> Format.fprintf ppf "  real pole at %.4g Hz@." f)
    a.real_poles_hz;
  List.iter
    (fun r -> Format.fprintf ppf "  pole pair at %.4g Hz, Q = %.3f@." r.freq_hz r.q)
    a.resonances;
  Format.fprintf ppf "  (root finder: %d iterations, residual %.2g, converged %b)@."
    a.quality.Roots.iterations a.quality.Roots.max_residual a.quality.Roots.converged
