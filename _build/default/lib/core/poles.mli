(** Poles and zeros of a generated reference: the classic downstream use of
    accurate network-function coefficients (pole/zero extraction is
    meaningless on coefficients corrupted by round-off, which is another way
    to see why the adaptive algorithm matters). *)

type resonance = {
  pole : Complex.t;      (** the upper-half representative *)
  freq_hz : float;       (** |pole| / 2 pi *)
  q : float;             (** |pole| / (2 |Re pole|); 0.5 for a real pole *)
}

type analysis = {
  poles : Complex.t array;   (** roots of the denominator, rad/s *)
  zeros : Complex.t array;   (** roots of the numerator, rad/s *)
  resonances : resonance list;  (** complex pole pairs, ascending frequency *)
  real_poles_hz : float list;   (** real poles as corner frequencies, ascending *)
  stable : bool;             (** all poles strictly in the left half plane *)
  quality : Symref_poly.Roots.quality;  (** denominator root-finder report *)
}

val analyse : Reference.t -> analysis
(** @raise Invalid_argument when the denominator has degree < 1. *)

val pp : Format.formatter -> analysis -> unit
(** Human-readable pole/zero summary. *)
