module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Epoly = Symref_poly.Epoly
module Roots = Symref_poly.Roots

type t = { num : Epoly.t; den : Epoly.t }

let of_epolys ~num ~den =
  if Epoly.is_zero den then invalid_arg "Rational.of_epolys: zero denominator";
  { num; den }

let of_reference (r : Reference.t) =
  of_epolys ~num:(Reference.numerator r) ~den:(Reference.denominator r)

let eval t (s : Complex.t) =
  let z = Ec.of_complex s in
  let n = Epoly.eval t.num z and d = Epoly.eval t.den z in
  if Ec.is_zero d then { Complex.re = infinity; im = 0. }
  else Ec.to_complex (Ec.div n d)

let degree_num t = Epoly.degree t.num
let degree_den t = Epoly.degree t.den

let group_delay t ~freq_hz =
  let w = 2. *. Float.pi *. freq_hz in
  let z = Ec.of_complex { Complex.re = 0.; im = w } in
  let ratio p =
    let v = Epoly.eval p z in
    if Ec.is_zero v then Complex.zero
    else Ec.to_complex (Ec.div (Epoly.eval (Epoly.derivative p) z) v)
  in
  let d = Complex.sub (ratio t.num) (ratio t.den) in
  (* tau = -d(arg H)/dw = -Re (N'/N - D'/D) at s = jw. *)
  -.d.Complex.re

type modes = {
  poles : Complex.t array;
  residues : Complex.t array;
  direct : float;
  quality : float;
}

let decompose t =
  let dn = Epoly.degree t.num and dd = Epoly.degree t.den in
  if dd < 1 then invalid_arg "Rational.decompose: constant denominator";
  if dn > dd then invalid_arg "Rational.decompose: improper rational function";
  let poles, _ = Roots.find t.den in
  let d' = Epoly.derivative t.den in
  let residues =
    Array.map
      (fun p ->
        let z = Ec.of_complex p in
        let n = Epoly.eval t.num z and dp = Epoly.eval d' z in
        if Ec.is_zero dp then { Complex.re = infinity; im = 0. }
        else Ec.to_complex (Ec.div n dp))
      poles
  in
  let direct =
    if dn = dd then Ef.to_float (Ef.div (Epoly.coeff t.num dn) (Epoly.coeff t.den dd))
    else 0.
  in
  (* Quality: reconstruct H at probe points from the modes and compare. *)
  let probe =
    let wmax = Array.fold_left (fun acc (p : Complex.t) -> Float.max acc (Complex.norm p)) 1. poles in
    [ { Complex.re = 0.1 *. wmax; im = 0.7 *. wmax }; { re = 0.; im = 0.31 *. wmax } ]
  in
  let quality =
    List.fold_left
      (fun acc s ->
        let direct_c = { Complex.re = direct; im = 0. } in
        let recon = ref direct_c in
        Array.iteri
          (fun k p ->
            recon := Complex.add !recon (Complex.div residues.(k) (Complex.sub s p)))
          poles;
        let h = eval t s in
        let e = Complex.norm (Complex.sub !recon h) /. (Complex.norm h +. 1e-300) in
        Float.max acc e)
      0. probe
  in
  { poles; residues; direct; quality }

let get_modes ?modes t = match modes with Some m -> m | None -> decompose t

let impulse_response ?modes t ~times =
  let m = get_modes ?modes t in
  Array.map
    (fun time ->
      let acc = ref 0. in
      Array.iteri
        (fun k (p : Complex.t) ->
          let e = Complex.exp { Complex.re = p.re *. time; im = p.im *. time } in
          acc := !acc +. (Complex.mul m.residues.(k) e).Complex.re)
        m.poles;
      !acc)
    times

let step_response ?modes t ~times =
  let m = get_modes ?modes t in
  let h0 =
    let d0 = Epoly.coeff t.den 0 in
    if Ef.is_zero d0 then infinity else Ef.to_float (Ef.div (Epoly.coeff t.num 0) d0)
  in
  Array.map
    (fun time ->
      let acc = ref h0 in
      Array.iteri
        (fun k (p : Complex.t) ->
          let e = Complex.exp { Complex.re = p.re *. time; im = p.im *. time } in
          acc := !acc +. (Complex.mul (Complex.div m.residues.(k) p) e).Complex.re)
        m.poles;
      !acc)
    times
