(** Rational network functions built from reference coefficients: modal
    decomposition (partial fractions), time-domain responses and group
    delay.

    These are the analyses a downstream design tool runs once the
    coefficients exist — and they are only as good as the coefficients,
    which is the reference generator's whole point.  All evaluation happens
    in extended range; results are returned as doubles.

    Partial fractions assume {e simple} poles (the generic case for circuit
    determinants); {!decompose} reports a residual-based quality figure so
    callers can detect near-degenerate pole clusters. *)

type t
(** A rational function [N(s)/D(s)] with extended-range coefficients. *)

val of_reference : Reference.t -> t
val of_epolys : num:Symref_poly.Epoly.t -> den:Symref_poly.Epoly.t -> t
(** @raise Invalid_argument when the denominator is zero. *)

val eval : t -> Complex.t -> Complex.t
val degree_num : t -> int
val degree_den : t -> int

val group_delay : t -> freq_hz:float -> float
(** [-d(arg H)/d omega] at [j*2*pi*freq], seconds, computed analytically
    from [N'/N - D'/D] (no finite differences). *)

type modes = {
  poles : Complex.t array;
  residues : Complex.t array;  (** [residue.(k) = N(p_k) / D'(p_k)] *)
  direct : float;              (** feed-through term for [deg N = deg D] *)
  quality : float;             (** max relative reconstruction error of [H]
                                   at probe points; large values signal
                                   repeated/clustered poles *)
}

val decompose : t -> modes
(** @raise Invalid_argument when [deg N > deg D] (not a network function of
    a passive-terminated system) or [deg D < 1]. *)

val impulse_response : ?modes:modes -> t -> times:float array -> float array
(** [h(t) = sum_k Re(r_k e^(p_k t))] (plus a delta at 0 for the direct term,
    which is {e not} represented in the samples). *)

val step_response : ?modes:modes -> t -> times:float array -> float array
(** [s(t) = H(0) + sum_k Re((r_k / p_k) e^(p_k t))] — the inverse transform
    of [H(s)/s]; the direct feed-through is included automatically. *)
