module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Ac = Symref_mna.Ac

let buffer_table ?title f =
  let buf = Buffer.create 1024 in
  (match title with
  | None -> ()
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n');
  f buf;
  Buffer.contents buf

let complex_cell c =
  Printf.sprintf "%s %sj%s"
    (Ef.to_string (Ec.re c))
    (if Ef.sign (Ec.im c) >= 0 then "+" else "-")
    (Ef.to_string (Ef.abs (Ec.im c)))

let in_band band i =
  match band with None -> false | Some b -> Band.contains b i

let naive_table ?title ~(num : Naive.t) ~(den : Naive.t) () =
  buffer_table ?title (fun buf ->
      Buffer.add_string buf
        (Printf.sprintf "%-4s  %-28s  %-28s\n" "s^i" "Numerator" "Denominator");
      let n = Int.max (Array.length num.Naive.coeffs) (Array.length den.Naive.coeffs) in
      for i = 0 to n - 1 do
        let cell (r : Naive.t) =
          if i < Array.length r.Naive.coeffs then
            Printf.sprintf "%s%s"
              (complex_cell r.Naive.coeffs.(i))
              (if in_band r.Naive.band i then " *" else "")
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "s^%-2d  %-28s  %-28s\n" i (cell num) (cell den))
      done;
      Buffer.add_string buf "(* = above the error level of eq. 12)\n")

let fixed_scale_table ?title (r : Fixed_scale.t) =
  buffer_table ?title (fun buf ->
      Buffer.add_string buf
        (Printf.sprintf "scale factors: f = %g, g = %g\n" r.Fixed_scale.scale.Scaling.f
           r.Fixed_scale.scale.Scaling.g);
      Buffer.add_string buf
        (Printf.sprintf "%-4s  %-28s  %-15s  %s\n" "s^i" "Normalized (complex)"
           "Denormalized" "valid");
      Array.iteri
        (fun i c ->
          Buffer.add_string buf
            (Printf.sprintf "s^%-2d  %-28s  %-15s  %s\n" i (complex_cell c)
               (Ef.to_string r.Fixed_scale.denormalized.(i))
               (if in_band r.Fixed_scale.band i then "*" else "")))
        r.Fixed_scale.normalized)

let adaptive_pass_table ?title ~pass (r : Adaptive.result) =
  buffer_table ?title (fun buf ->
      match List.find_opt (fun p -> p.Adaptive.pass = pass) r.Adaptive.reports with
      | None -> Buffer.add_string buf (Printf.sprintf "no pass %d\n" pass)
      | Some p ->
          let scale = p.Adaptive.scale in
          Buffer.add_string buf
            (Printf.sprintf "interpolation %d: f = %.6g, g = %.6g, %d points\n" pass
               scale.Scaling.f scale.Scaling.g p.Adaptive.points);
          Buffer.add_string buf
            (Printf.sprintf "%-4s  %-15s  %-15s\n" "s^i" "Normalized" "Denormalized");
          let elided = ref false in
          Array.iteri
            (fun i owner ->
              if owner = pass then begin
                elided := false;
                let normalized =
                  Scaling.normalize ~gdeg:r.Adaptive.gdeg scale i r.Adaptive.coeffs.(i)
                in
                Buffer.add_string buf
                  (Printf.sprintf "s^%-2d  %-15s  %-15s\n" i (Ef.to_string normalized)
                     (Ef.to_string r.Adaptive.coeffs.(i)))
              end
              else if not !elided then begin
                elided := true;
                Buffer.add_string buf "...\n"
              end)
            r.Adaptive.owners)

let band_cell = function
  | None -> "none"
  | Some b -> Printf.sprintf "[%d..%d] peak %d" b.Band.lo b.Band.hi b.Band.peak

let adaptive_summary ?title (r : Adaptive.result) =
  buffer_table ?title (fun buf ->
      Buffer.add_string buf
        (Printf.sprintf "%-5s  %-12s  %-12s  %-6s  %-20s  %s\n" "pass" "f" "g" "pts"
           "valid band" "fresh");
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "%-5d  %-12.4g  %-12.4g  %-6d  %-20s  %d\n" p.Adaptive.pass
               p.Adaptive.scale.Scaling.f p.Adaptive.scale.Scaling.g p.Adaptive.points
               (band_cell p.Adaptive.band) p.Adaptive.fresh))
        r.Adaptive.reports;
      Buffer.add_string buf
        (Printf.sprintf
           "effective order %d, %d LU evaluations, converged %b, overlap mismatch %.2e\n"
           r.Adaptive.effective_order r.Adaptive.evaluations r.Adaptive.converged
           r.Adaptive.max_overlap_mismatch))

let reference_summary (t : Reference.t) =
  String.concat ""
    [
      adaptive_summary ~title:"numerator:" t.Reference.num;
      adaptive_summary ~title:"denominator:" t.Reference.den;
      Printf.sprintf "total LU evaluations: %d\n" (Reference.total_evaluations t);
    ]

let bode_table ~(interpolated : Reference.bode_point array)
    ~(simulator : Ac.bode_point array) =
  buffer_table (fun buf ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s  %-10s %-10s %-8s   %-10s %-10s %-8s\n" "freq (Hz)"
           "interp dB" "sim dB" "delta" "interp deg" "sim deg" "delta");
      Array.iteri
        (fun i (p : Reference.bode_point) ->
          let s = simulator.(i) in
          Buffer.add_string buf
            (Printf.sprintf "%-12.4g  %-10.3f %-10.3f %-8.4f   %-10.2f %-10.2f %-8.4f\n"
               p.Reference.freq_hz p.Reference.mag_db s.Ac.mag_db
               (Float.abs (p.Reference.mag_db -. s.Ac.mag_db))
               p.Reference.phase_deg s.Ac.phase_deg
               (Float.abs (p.Reference.phase_deg -. s.Ac.phase_deg))))
        interpolated)
