(** Paper-style table rendering for interpolation results.

    These produce the textual analogues of the paper's tables: complex
    coefficient listings (Table 1a), normalised/denormalised columns with
    the valid band marked (Tables 1b, 2a, 2b, 3), and per-pass summaries of
    an adaptive run. *)

val naive_table :
  ?title:string -> num:Naive.t -> den:Naive.t -> unit -> string
(** Table 1a: complex numerator and denominator coefficients side by side;
    an asterisk marks entries inside the (usually tiny) valid band. *)

val fixed_scale_table : ?title:string -> Fixed_scale.t -> string
(** Table 1b: normalised and denormalised columns, valid band marked. *)

val adaptive_pass_table : ?title:string -> pass:int -> Adaptive.result -> string
(** Tables 2a/2b/3: normalised and denormalised coefficient columns of one
    interpolation pass of an adaptive run (coefficients owned by other
    passes are elided as in the paper's "..." rows). *)

val adaptive_summary : ?title:string -> Adaptive.result -> string
(** One line per pass: scale factors, points, band, fresh coefficients. *)

val reference_summary : Reference.t -> string
(** Numerator and denominator adaptive summaries plus totals. *)

val bode_table :
  interpolated:Reference.bode_point array ->
  simulator:Symref_mna.Ac.bode_point array ->
  string
(** Fig. 2 as numbers: frequency, magnitude and phase from both sources and
    the deltas. *)
