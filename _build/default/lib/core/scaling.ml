module Ef = Symref_numeric.Extfloat

type pair = { f : float; g : float }

let initial (ev : Evaluator.t) = { f = ev.Evaluator.f0; g = ev.Evaluator.g0 }

let magnitude_cap = 1e18

(* Keep both factors inside [1/cap, cap] by shifting a common factor between
   them; the tilt f/g is preserved, only the irrelevant overall level (and
   hence the evaluation conditioning) changes. *)
let rebalance { f; g } =
  let shift v = if v > magnitude_cap then magnitude_cap /. v
    else if v < 1. /. magnitude_cap then 1. /. (magnitude_cap *. v)
    else 1.
  in
  let k = shift f in
  let f = f *. k and g = g *. k in
  let k = shift g in
  { f = f *. k; g = g *. k }

let tilt ?(policy = `Split) ~dir ~r ~edge ~edge_mag ~peak ~peak_mag { f; g } =
  let decades = 13. +. r in
  let sign = match dir with `Up -> 1. | `Down -> -1. in
  let log_q =
    if edge = peak then
      (* Degenerate band: no slope information; move half a window. *)
      sign *. decades /. 2.
    else
      let q =
        (Ef.log10_abs peak_mag -. Ef.log10_abs edge_mag +. decades)
        /. float_of_int (edge - peak)
      in
      (* A profile that disagrees with the direction of travel is noise;
         fall back to the half-window step. *)
      if q *. sign > 0. then q else sign *. decades /. 2.
  in
  match policy with
  | `Split ->
      (* Split q evenly: f' = f * sqrt q, g' = g / sqrt q (eq. 13). *)
      let half = Float.exp (log_q /. 2. *. Float.log 10.) in
      rebalance { f = f *. half; g = g /. half }
  | `Frequency_only ->
      (* The whole tilt on f, factors allowed to run away (no rebalance):
         this is the failure mode §3.2's simultaneous scaling avoids. *)
      let q = Float.exp (log_q *. Float.log 10.) in
      { f = f *. q; g }

let gap_fill a b =
  rebalance { f = Float.sqrt (a.f *. b.f); g = Float.sqrt (a.g *. b.g) }

let renormalize_factor ~gdeg ~from_ ~to_ i =
  Ef.mul
    (Ef.float_pow_int (to_.f /. from_.f) i)
    (Ef.float_pow_int (to_.g /. from_.g) (gdeg - i))

let normalize ~gdeg { f; g } i p =
  Ef.mul p (Ef.mul (Ef.float_pow_int f i) (Ef.float_pow_int g (gdeg - i)))

let denormalize ~gdeg { f; g } i p' =
  Ef.mul p' (Ef.mul (Ef.float_pow_int f (-i)) (Ef.float_pow_int g (i - gdeg)))
