(** Scale-factor calculus of the adaptive algorithm (paper §3.2).

    A scale pair [(f, g)] normalises coefficients as
    [p'_i = p_i * f^i * g^(gdeg - i)]; the tilt between consecutive
    coefficients is governed by [f/g] alone (eq. 11), and the paper splits
    every tilt update [q] evenly between the two factors
    ([f' = f*sqrt q], [g' = g/sqrt q], eq. 13) precisely to keep either
    factor from exceeding ~1e18. *)

type pair = { f : float; g : float }

val initial : Evaluator.t -> pair
(** First-interpolation heuristic: [f = 1/mean C], [g = 1/mean G] (§3.2). *)

val magnitude_cap : float
(** [1e18]: beyond this, evaluation of N and D at the interpolation points
    degrades (§3.2). *)

val tilt :
  ?policy:[ `Split | `Frequency_only ] ->
  dir:[ `Up | `Down ] ->
  r:float ->
  edge:int ->
  edge_mag:Symref_numeric.Extfloat.t ->
  peak:int ->
  peak_mag:Symref_numeric.Extfloat.t ->
  pair ->
  pair
(** One adaptive rescaling.  Solves eq. (14)/(15)
    [|p_e| q^e = |p_m| q^m * 10^(13 + r)] for [q] ([e = edge] is the last
    valid coefficient in the direction of travel, [m = peak] the maximum of
    the last valid region, [r] the tuning factor), then applies eq. (13).
    [dir] is the direction of travel ([`Up] towards higher powers); when the
    band gives no usable slope ([edge = peak], or noise inverts the sign) a
    fallback half-window tilt of [10^((13+r)/2)] total is used.

    [policy] (default [`Split]) applies eq. 13's simultaneous scaling,
    splitting [q] evenly between [f] and [g]; [`Frequency_only] puts the
    whole tilt on [f] — the naive alternative the paper rejects because it
    occasionally needs factors beyond ~1e18, degrading the evaluation of
    N and D at the interpolation points (§3.2).  Under [`Frequency_only]
    the result is {e not} rebalanced, so the degradation is observable.
    Under [`Split] the result is rebalanced into [1/cap, cap]. *)

val gap_fill : pair -> pair -> pair
(** Eq. (16): geometric mean of two band scale pairs, for coefficients left
    invalid between two consecutive valid regions. *)

val renormalize_factor :
  gdeg:int -> from_:pair -> to_:pair -> int -> Symref_numeric.Extfloat.t
(** [renormalize_factor ~gdeg ~from_ ~to_ i] is the exact factor carrying the
    coefficient of [s^i] from one normalisation to another:
    [(f2/f1)^i * (g2/g1)^(gdeg-i)]. *)

val denormalize :
  gdeg:int -> pair -> int -> Symref_numeric.Extfloat.t -> Symref_numeric.Extfloat.t
(** Inverse of eq. (11): [p_i = p'_i * f^(-i) * g^(i - gdeg)]. *)

val normalize :
  gdeg:int -> pair -> int -> Symref_numeric.Extfloat.t -> Symref_numeric.Extfloat.t
(** Eq. (11): [p'_i = p_i * f^i * g^(gdeg - i)]. *)
