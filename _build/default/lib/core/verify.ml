module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Epoly = Symref_poly.Epoly

type report = {
  probes : int;
  max_relative_residual : float;
  passed : bool;
}

(* Off-circle probe points: radii away from 1 so these were never
   interpolation points, angles away from the axes. *)
let probe_points =
  [
    { Complex.re = 0.83 *. Float.cos 0.7; im = 0.83 *. Float.sin 0.7 };
    { Complex.re = 1.21 *. Float.cos 2.1; im = 1.21 *. Float.sin 2.1 };
    { Complex.re = -0.95 *. Float.cos 1.3; im = 0.95 *. Float.sin 1.3 };
  ]

let check ?(tolerance = 1e-4) (ev : Evaluator.t) (result : Adaptive.result) =
  let gdeg = result.Adaptive.gdeg in
  let scales =
    List.filter_map
      (fun p -> if p.Adaptive.fresh > 0 then Some p.Adaptive.scale else None)
      result.Adaptive.reports
  in
  let probes = ref 0 in
  let worst = ref 0. in
  List.iter
    (fun scale ->
      (* Renormalise the full coefficient set to this band's scale. *)
      let normalized =
        Epoly.of_coeffs
          (Array.mapi
             (fun i c -> Scaling.normalize ~gdeg scale i c)
             result.Adaptive.coeffs)
      in
      List.iter
        (fun s ->
          incr probes;
          let reconstructed = Epoly.eval normalized (Ec.of_complex s) in
          let fresh = ev.Evaluator.eval ~f:scale.Scaling.f ~g:scale.Scaling.g s in
          let denom = Ec.norm fresh in
          if not (Ef.is_zero denom) then begin
            let residual =
              Ef.to_float (Ef.div (Ec.norm (Ec.sub reconstructed fresh)) denom)
            in
            if residual > !worst then worst := residual
          end)
        probe_points)
    scales;
  { probes = !probes; max_relative_residual = !worst; passed = !worst <= tolerance }
