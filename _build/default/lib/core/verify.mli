(** Independent a-posteriori verification of generated references.

    The adaptive algorithm certifies coefficients through the eq.-12
    validity criterion and cross-pass overlap; this module adds a
    {e structural} check: evaluate the reconstructed polynomial against
    fresh evaluator values at probe points that were never interpolation
    points, under scale factors chosen so each band dominates in turn.  A
    reference set with a wrong coefficient cannot pass for every band. *)

type report = {
  probes : int;
  max_relative_residual : float;
      (** worst [|P_reconstructed(s) - P_evaluated(s)| / |P_evaluated(s)|] *)
  passed : bool;
}

val check :
  ?tolerance:float ->
  Evaluator.t ->
  Adaptive.result ->
  report
(** [check ev result] probes each productive band of [result] at off-circle
    points with that band's scale factors.  [tolerance] defaults to [1e-4]
    (the residual bound for sigma = 6 coefficients with band-edge error).
    The evaluator must be the same network the result came from. *)
