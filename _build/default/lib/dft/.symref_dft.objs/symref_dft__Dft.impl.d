lib/dft/dft.ml: Array Complex Unit_circle
