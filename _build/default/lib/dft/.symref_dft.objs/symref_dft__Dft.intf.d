lib/dft/dft.mli: Complex
