lib/dft/fft.ml: Array Complex Float
