lib/dft/fft.mli: Complex
