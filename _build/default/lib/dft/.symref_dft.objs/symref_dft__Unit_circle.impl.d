lib/dft/unit_circle.ml: Array Complex Float
