lib/dft/unit_circle.mli: Complex
