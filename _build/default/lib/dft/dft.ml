let transform ~sign (x : Complex.t array) =
  let k = Array.length x in
  if k = 0 then [||]
  else
    Array.init k (fun i ->
        let acc = ref Complex.zero in
        for j = 0 to k - 1 do
          (* w^(sign * i * j); indices into the root table keep the twiddle
             factors exact on the axes. *)
          let idx = sign * i * j mod k in
          acc := Complex.add !acc (Complex.mul x.(j) (Unit_circle.point k idx))
        done;
        !acc)

let forward x = transform ~sign:1 x

let inverse x =
  let k = Array.length x in
  if k = 0 then [||]
  else
    let inv_k = 1. /. float_of_int k in
    Array.map
      (fun z -> { Complex.re = z.Complex.re *. inv_k; im = z.Complex.im *. inv_k })
      (transform ~sign:(-1) x)

let complete_real_spectrum k half =
  if Array.length half <> (k / 2) + 1 then
    invalid_arg "Dft.complete_real_spectrum: need k/2 + 1 values";
  Array.init k (fun i -> if i <= k / 2 then half.(i) else Complex.conj half.(k - i))
