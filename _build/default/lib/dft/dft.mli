(** Discrete Fourier transforms (direct [O(K^2)] evaluation).

    The inverse transform recovers polynomial coefficients from values at the
    roots of unity (eq. 5 of the paper):
    [p_i = (1/K) * sum_k P(s_k) * e^(-2*pi*j*i*k/K)].

    The direct algorithm is used for arbitrary [K] (the number of
    interpolation points is [n+1] for an [n]-th order polynomial, rarely a
    power of two); {!Fft} accelerates the power-of-two case.  In this
    application the LU decompositions behind each [P(s_k)] dominate the run
    time, not the transform. *)

val forward : Complex.t array -> Complex.t array
(** [forward p] evaluates the polynomial with coefficients [p] at the [K]
    roots of unity ([K = Array.length p]): [X.(k) = sum_i p.(i) w^(ik)],
    [w = e^(2*pi*j/K)]. *)

val inverse : Complex.t array -> Complex.t array
(** [inverse values] recovers coefficients from values at the roots of unity;
    inverse of {!forward}. *)

val complete_real_spectrum : int -> Complex.t array -> Complex.t array
(** [complete_real_spectrum k half] expands values at the first [k/2 + 1]
    roots of unity into all [k] values using the conjugate symmetry
    [P(conj s) = conj (P s)] that holds for real-coefficient polynomials.
    @raise Invalid_argument when [Array.length half <> k/2 + 1]. *)
