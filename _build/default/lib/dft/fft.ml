let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Iterative Cooley-Tukey with bit-reversal permutation.  [sign = +1] matches
   Dft.forward's convention (w = e^(+2*pi*j/K)); [-1] is its inverse modulo
   the 1/K factor. *)
let fft ~sign (input : Complex.t array) =
  let n = Array.length input in
  if not (is_pow2 n) then invalid_arg "Fft: length must be a power of two";
  let a = Array.copy input in
  let bits =
    let rec go b p = if p = n then b else go (b + 1) (p * 2) in
    go 0 1
  in
  let reverse i =
    let r = ref 0 and x = ref i in
    for _ = 1 to bits do
      r := (!r lsl 1) lor (!x land 1);
      x := !x lsr 1
    done;
    !r
  in
  Array.iteri
    (fun i _ ->
      let j = reverse i in
      if i < j then begin
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      end)
    a;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let ang = float_of_int sign *. 2. *. Float.pi /. float_of_int !len in
    let wlen = { Complex.re = Float.cos ang; im = Float.sin ang } in
    let i = ref 0 in
    while !i < n do
      let w = ref Complex.one in
      for k = 0 to half - 1 do
        let u = a.(!i + k) in
        let v = Complex.mul a.(!i + k + half) !w in
        a.(!i + k) <- Complex.add u v;
        a.(!i + k + half) <- Complex.sub u v;
        w := Complex.mul !w wlen
      done;
      i := !i + !len
    done;
    len := !len * 2
  done;
  a

let forward x = fft ~sign:1 x

let inverse x =
  let n = Array.length x in
  let inv_n = 1. /. float_of_int n in
  Array.map
    (fun z -> { Complex.re = z.Complex.re *. inv_n; im = z.Complex.im *. inv_n })
    (fft ~sign:(-1) x)
