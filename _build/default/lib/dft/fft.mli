(** Radix-2 fast Fourier transform for power-of-two sizes.

    Matches {!Dft.forward}/{!Dft.inverse} exactly in convention; used by the
    interpolator when the point count is (rounded up to) a power of two. *)

val is_pow2 : int -> bool
val next_pow2 : int -> int
(** Smallest power of two [>= n] (with [next_pow2 0 = 1]). *)

val forward : Complex.t array -> Complex.t array
(** @raise Invalid_argument when the length is not a power of two. *)

val inverse : Complex.t array -> Complex.t array
(** @raise Invalid_argument when the length is not a power of two. *)
