let point k i =
  if k < 1 then invalid_arg "Unit_circle.point: k must be >= 1";
  let i = ((i mod k) + k) mod k in
  (* Exact values on the axes avoid spurious 1e-16 components that would
     otherwise leak into every interpolated coefficient. *)
  let q = 4 * i in
  if q mod k = 0 then
    match q / k with
    | 0 -> Complex.one
    | 1 -> { Complex.re = 0.; im = 1. }
    | 2 -> { Complex.re = -1.; im = 0. }
    | _ -> { Complex.re = 0.; im = -1. }
  else
    let t = 2. *. Float.pi *. float_of_int i /. float_of_int k in
    { Complex.re = Float.cos t; im = Float.sin t }

let points k =
  if k < 1 then invalid_arg "Unit_circle.points: k must be >= 1";
  Array.init k (point k)

let half_points k =
  if k < 1 then invalid_arg "Unit_circle.half_points: k must be >= 1";
  Array.init ((k / 2) + 1) (point k)
