(** Interpolation points on the unit circle.

    Polynomial interpolation for network functions evaluates [P(s_k)] at
    [K] equally-spaced points [s_k = e^(2*pi*j*k/K)] — the choice shown in
    the literature to be optimal for numerical accuracy and stability. *)

val points : int -> Complex.t array
(** [points k] returns the [k] roots of unity, index [i] holding
    [e^(2*pi*j*i/k)].  @raise Invalid_argument when [k < 1]. *)

val point : int -> int -> Complex.t
(** [point k i] is the [i]-th of the [k] roots of unity (computed directly,
    exact trigonometry at the quadrant boundaries). *)

val half_points : int -> Complex.t array
(** The first [k/2 + 1] points; the remainder follow from conjugate symmetry
    for real-coefficient polynomials ([P(conj s) = conj (P s)]), halving the
    number of LU decompositions needed. *)
