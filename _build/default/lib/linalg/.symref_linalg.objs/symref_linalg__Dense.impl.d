lib/linalg/dense.ml: Array Complex Fun Symref_numeric
