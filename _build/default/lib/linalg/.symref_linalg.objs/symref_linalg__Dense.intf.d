lib/linalg/dense.mli: Complex Symref_numeric
