lib/linalg/sparse.ml: Array Complex Hashtbl List Symref_numeric
