lib/linalg/sparse.mli: Complex Symref_numeric
