module Ec = Symref_numeric.Extcomplex

exception Singular

type factor = {
  n : int;
  lu : Complex.t array array; (* L below diagonal (unit diag implicit), U on/above *)
  perm : int array;           (* perm.(k) = original row pivoting step k *)
  det : Ec.t;
  singular : bool;
}

let factor a =
  let n = Array.length a in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Dense.factor: not square")
    a;
  let lu = Array.map Array.copy a in
  let perm = Array.init n Fun.id in
  let det = ref Ec.one in
  let singular = ref false in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k at or below the
       diagonal. *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm lu.(i).(k) > Complex.norm lu.(!best).(k) then best := i
    done;
    if Complex.norm lu.(!best).(k) = 0. then singular := true
    else begin
      if !best <> k then begin
        let t = lu.(k) in
        lu.(k) <- lu.(!best);
        lu.(!best) <- t;
        let t = perm.(k) in
        perm.(k) <- perm.(!best);
        perm.(!best) <- t;
        det := Ec.neg !det
      end;
      let piv = lu.(k).(k) in
      det := Ec.mul !det (Ec.of_complex piv);
      for i = k + 1 to n - 1 do
        if lu.(i).(k) <> Complex.zero then begin
          let m = Complex.div lu.(i).(k) piv in
          lu.(i).(k) <- m;
          for j = k + 1 to n - 1 do
            lu.(i).(j) <- Complex.sub lu.(i).(j) (Complex.mul m lu.(k).(j))
          done
        end
      done
    end
  done;
  let det = if !singular then Ec.zero else !det in
  { n; lu; perm; det; singular = !singular }

let det f = f.det

let solve f b =
  if Array.length b <> f.n then invalid_arg "Dense.solve: dimension mismatch";
  if f.singular then raise Singular;
  let n = f.n in
  (* Forward substitution on the permuted right-hand side. *)
  let y = Array.make n Complex.zero in
  for k = 0 to n - 1 do
    let acc = ref b.(f.perm.(k)) in
    for j = 0 to k - 1 do
      acc := Complex.sub !acc (Complex.mul f.lu.(k).(j) y.(j))
    done;
    y.(k) <- !acc
  done;
  (* Back substitution. *)
  let x = Array.make n Complex.zero in
  for k = n - 1 downto 0 do
    let acc = ref y.(k) in
    for j = k + 1 to n - 1 do
      acc := Complex.sub !acc (Complex.mul f.lu.(k).(j) x.(j))
    done;
    x.(k) <- Complex.div !acc f.lu.(k).(k)
  done;
  x

let solve_matrix a b = solve (factor a) b

let mul_vec a x =
  Array.map
    (fun row ->
      let acc = ref Complex.zero in
      Array.iteri (fun j v -> acc := Complex.add !acc (Complex.mul v x.(j))) row;
      !acc)
    a
