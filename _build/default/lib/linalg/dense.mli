(** Dense complex LU decomposition with partial (row) pivoting.

    Serves as the correctness oracle for {!Sparse} and as the baseline of the
    sparse-vs-dense ablation.  Determinants are accumulated in extended-range
    arithmetic: for a 50-node analog circuit the product of pivots routinely
    leaves IEEE-double range. *)

exception Singular
(** Raised when a solve hits a (numerically) singular matrix. *)

type factor
(** The result of factoring an [n x n] matrix. *)

val factor : Complex.t array array -> factor
(** [factor a] LU-factors a square matrix (the input is not modified).
    Singular matrices are factored as far as possible; their determinant is
    zero and {!solve} raises {!Singular}.
    @raise Invalid_argument when [a] is not square. *)

val det : factor -> Symref_numeric.Extcomplex.t
(** Determinant (with pivoting sign), in extended range. *)

val solve : factor -> Complex.t array -> Complex.t array
(** [solve f b] returns [x] with [a x = b].
    @raise Singular when the matrix was singular.
    @raise Invalid_argument on dimension mismatch. *)

val solve_matrix : Complex.t array array -> Complex.t array -> Complex.t array
(** One-shot [factor] + [solve]. *)

val mul_vec : Complex.t array array -> Complex.t array -> Complex.t array
(** Matrix-vector product (test helper). *)
