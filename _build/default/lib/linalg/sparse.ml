module Ec = Symref_numeric.Extcomplex

exception Singular

type builder = { n : int; rows : (int, Complex.t) Hashtbl.t array }

let create n =
  if n < 0 then invalid_arg "Sparse.create: negative dimension";
  { n; rows = Array.init n (fun _ -> Hashtbl.create 8) }

let add b i j v =
  if i < 0 || i >= b.n || j < 0 || j >= b.n then
    invalid_arg "Sparse.add: index out of range";
  let row = b.rows.(i) in
  match Hashtbl.find_opt row j with
  | None -> if v <> Complex.zero then Hashtbl.replace row j v
  | Some old -> Hashtbl.replace row j (Complex.add old v)

let dimension b = b.n
let nnz b = Array.fold_left (fun acc r -> acc + Hashtbl.length r) 0 b.rows

let to_dense b =
  let a = Array.make_matrix b.n b.n Complex.zero in
  Array.iteri (fun i row -> Hashtbl.iter (fun j v -> a.(i).(j) <- v) row) b.rows;
  a

let clear b = Array.iter Hashtbl.reset b.rows

type factor = {
  n : int;
  pivot_rows : int array; (* step -> original row *)
  pivot_cols : int array; (* step -> original column *)
  pivots : Complex.t array;
  lower : (int * int * Complex.t) array; (* (row, step, multiplier), in order *)
  upper : (int * Complex.t) array array; (* step -> off-pivot U entries (orig col, v) *)
  det : Ec.t;
  fill_in : int;
  singular : bool;
}

(* Parity of the permutation sending position k to perm.(k). *)
let permutation_sign perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    if not seen.(k) then begin
      (* Walk the cycle containing k; a cycle of length L contributes
         (-1)^(L-1). *)
      let len = ref 0 and i = ref k in
      while not seen.(!i) do
        seen.(!i) <- true;
        incr len;
        i := perm.(!i)
      done;
      if !len mod 2 = 0 then sign := - !sign
    end
  done;
  !sign

let factor ?(pivot_threshold = 0.1) (b : builder) =
  let n = b.n in
  let rows = Array.map Hashtbl.copy b.rows in
  let row_active = Array.make n true and col_active = Array.make n true in
  (* Row/column occupancy counts over the active submatrix, incremental. *)
  let col_count = Array.make n 0 in
  let row_count = Array.make n 0 in
  Array.iteri
    (fun i row ->
      row_count.(i) <- Hashtbl.length row;
      Hashtbl.iter (fun j _ -> col_count.(j) <- col_count.(j) + 1) row)
    rows;
  let pivot_rows = Array.make n (-1)
  and pivot_cols = Array.make n (-1)
  and pivots = Array.make n Complex.zero in
  let lower = ref [] and upper = Array.make n [||] in
  let det_mag = ref Ec.one in
  let fill = ref 0 in
  let singular = ref false in
  (* Markowitz search restricted to a few sparsest candidate rows: the
     classical circuit-simulator compromise between fill-in optimality and
     search cost (a full scan would dominate the factorisation). *)
  let max_candidate_rows = 8 in
  (try
     for k = 0 to n - 1 do
       let best = ref None in
       let search_row i =
         let row = rows.(i) in
         let rmax = ref 0. in
         Hashtbl.iter
           (fun j v ->
             if col_active.(j) then begin
               let m = Complex.norm v in
               if m > !rmax then rmax := m
             end)
           row;
         if !rmax > 0. then
           Hashtbl.iter
             (fun j v ->
               if col_active.(j) then begin
                 let m = Complex.norm v in
                 if m >= pivot_threshold *. !rmax then begin
                   let cost = (row_count.(i) - 1) * (col_count.(j) - 1) in
                   let better =
                     match !best with
                     | None -> true
                     | Some (_, _, _, bcost, bmag) ->
                         cost < bcost || (cost = bcost && m > bmag)
                   in
                   if better then best := Some (i, j, v, cost, m)
                 end
               end)
             row
       in
       (* Examine only the sparsest active rows (counts within one of the
          minimum), allocation-free. *)
       let min_count = ref max_int in
       for i = 0 to n - 1 do
         if row_active.(i) && row_count.(i) > 0 && row_count.(i) < !min_count then
           min_count := row_count.(i)
       done;
       if !min_count < max_int then begin
         let examined = ref 0 in
         let i = ref 0 in
         while !examined < max_candidate_rows && !i < n do
           if row_active.(!i) && row_count.(!i) > 0 && row_count.(!i) <= !min_count + 1
           then begin
             search_row !i;
             incr examined
           end;
           incr i
         done;
         (* Threshold pivoting can reject every entry of the sparse candidate
            rows; fall back to a full search before declaring singularity. *)
         if !best = None then
           for i = 0 to n - 1 do
             if row_active.(i) && row_count.(i) > 0 then search_row i
           done
       end;
       match !best with
       | None ->
           singular := true;
           raise Exit
       | Some (pi, pj, pv, _, _) ->
           pivot_rows.(k) <- pi;
           pivot_cols.(k) <- pj;
           pivots.(k) <- pv;
           det_mag := Ec.mul !det_mag (Ec.of_complex pv);
           row_active.(pi) <- false;
           col_active.(pj) <- false;
           Hashtbl.iter (fun j _ -> col_count.(j) <- col_count.(j) - 1) rows.(pi);
           (* Snapshot the U row (active columns other than the pivot). *)
           let u = ref [] in
           Hashtbl.iter
             (fun j v -> if j <> pj && col_active.(j) then u := (j, v) :: !u)
             rows.(pi);
           upper.(k) <- Array.of_list !u;
           (* Eliminate the pivot column from the remaining active rows. *)
           for i = 0 to n - 1 do
             if row_active.(i) then
               match Hashtbl.find_opt rows.(i) pj with
               | None -> ()
               | Some v ->
                   Hashtbl.remove rows.(i) pj;
                   col_count.(pj) <- col_count.(pj) - 1;
                   row_count.(i) <- row_count.(i) - 1;
                   let m = Complex.div v pv in
                   lower := (i, k, m) :: !lower;
                   Array.iter
                     (fun (j, u) ->
                       let upd = Complex.neg (Complex.mul m u) in
                       match Hashtbl.find_opt rows.(i) j with
                       | None ->
                           if upd <> Complex.zero then begin
                             Hashtbl.replace rows.(i) j upd;
                             col_count.(j) <- col_count.(j) + 1;
                             row_count.(i) <- row_count.(i) + 1;
                             incr fill
                           end
                       | Some w ->
                           let nv = Complex.add w upd in
                           Hashtbl.replace rows.(i) j nv)
                     upper.(k)
           done
     done
   with Exit -> ());
  let det =
    if !singular then Ec.zero
    else
      let sr = permutation_sign pivot_rows and sc = permutation_sign pivot_cols in
      if sr * sc < 0 then Ec.neg !det_mag else !det_mag
  in
  {
    n;
    pivot_rows;
    pivot_cols;
    pivots;
    lower = Array.of_list (List.rev !lower);
    upper;
    det;
    fill_in = !fill;
    singular = !singular;
  }

let det f = f.det
let fill_in f = f.fill_in

(* With row/column pivot orders P, Q and the stored unit-lower multipliers L
   and upper rows U (step coordinates: M = P A Q = L U), the transpose system
   A^T x = b becomes U^T L^T (P x) = Q^T b: a forward pass through U^T (using
   the inverse column-pivot map), a reverse replay of the multipliers for
   L^T, and the row-pivot scatter. *)
let solve_transpose f b =
  if Array.length b <> f.n then
    invalid_arg "Sparse.solve_transpose: dimension mismatch";
  if f.singular then raise Singular;
  let n = f.n in
  let step_of_col = Array.make n 0 in
  Array.iteri (fun k c -> step_of_col.(c) <- k) f.pivot_cols;
  let step_of_row = Array.make n 0 in
  Array.iteri (fun k r -> step_of_row.(r) <- k) f.pivot_rows;
  (* Forward: U^T w = Q^T b, scattering each solved w_k through U's row k. *)
  let w = Array.init n (fun k -> b.(f.pivot_cols.(k))) in
  for k = 0 to n - 1 do
    w.(k) <- Complex.div w.(k) f.pivots.(k);
    Array.iter
      (fun (j, u) ->
        let s = step_of_col.(j) in
        w.(s) <- Complex.sub w.(s) (Complex.mul u w.(k)))
      f.upper.(k)
  done;
  (* Backward: L^T v = w, replaying the multipliers in reverse. *)
  for idx = Array.length f.lower - 1 downto 0 do
    let i, k, m = f.lower.(idx) in
    let s = step_of_row.(i) in
    w.(k) <- Complex.sub w.(k) (Complex.mul m w.(s))
  done;
  (* P x = v. *)
  let x = Array.make n Complex.zero in
  Array.iteri (fun k r -> x.(r) <- w.(k)) f.pivot_rows;
  x

let solve f b =
  if Array.length b <> f.n then invalid_arg "Sparse.solve: dimension mismatch";
  if f.singular then raise Singular;
  let y = Array.copy b in
  (* Forward elimination replay: multipliers were recorded in order. *)
  Array.iter
    (fun (i, k, m) -> y.(i) <- Complex.sub y.(i) (Complex.mul m y.(f.pivot_rows.(k))))
    f.lower;
  let x = Array.make f.n Complex.zero in
  for k = f.n - 1 downto 0 do
    let acc = ref y.(f.pivot_rows.(k)) in
    Array.iter
      (fun (j, u) -> acc := Complex.sub !acc (Complex.mul u x.(j)))
      f.upper.(k);
    x.(f.pivot_cols.(k)) <- Complex.div !acc f.pivots.(k)
  done;
  x
