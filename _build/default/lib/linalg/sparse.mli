(** Sparse complex LU decomposition with Markowitz pivoting.

    MNA matrices of analog circuits are extremely sparse (a handful of
    entries per row); the paper notes its algorithm "has been implemented
    using sparse matrix techniques".  This module provides a right-looking
    LU with Markowitz ordering under threshold partial pivoting, the
    classical choice for circuit simulators.

    Typical use: assemble once with {!create}/{!add}, then {!factor} (at each
    interpolation or AC frequency point), read the {!det} and {!solve}. *)

exception Singular
(** Raised by {!solve} when the matrix is (numerically) singular. *)

type builder
(** Mutable triplet-style accumulator for an [n x n] matrix. *)

val create : int -> builder
(** [create n] prepares an empty [n x n] builder. @raise Invalid_argument
    when [n < 0]. *)

val add : builder -> int -> int -> Complex.t -> unit
(** [add b i j v] accumulates [v] into entry [(i, j)] (duplicates sum, as
    element stamps require). @raise Invalid_argument when out of range. *)

val dimension : builder -> int
val nnz : builder -> int
(** Number of structurally non-zero entries currently stored. *)

val to_dense : builder -> Complex.t array array
(** Materialise (test helper and dense-baseline bridge). *)

val clear : builder -> unit
(** Reset all entries, keeping the dimension (cheap re-assembly at the next
    frequency point). *)

type factor

val factor : ?pivot_threshold:float -> builder -> factor
(** LU-factorisation.  [pivot_threshold] (default [0.1]) is the threshold
    partial pivoting parameter [tau]: a pivot candidate must satisfy
    [|a| >= tau * max_row |a|]; among candidates the one minimising the
    Markowitz count [(r-1)(c-1)] is chosen (ties broken by magnitude).
    Singular matrices factor with determinant zero. *)

val det : factor -> Symref_numeric.Extcomplex.t
val fill_in : factor -> int
(** Entries created during elimination (diagnostic). *)

val solve : factor -> Complex.t array -> Complex.t array
(** @raise Singular on singular matrices.
    @raise Invalid_argument on dimension mismatch. *)

val solve_transpose : factor -> Complex.t array -> Complex.t array
(** Solve [transpose A x = b] from the same factorisation — the adjoint
    (transpose) network solve that yields every element sensitivity from a
    single extra substitution.  Same exceptions as {!solve}. *)
