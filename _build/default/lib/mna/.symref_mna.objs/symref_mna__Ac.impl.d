lib/mna/ac.ml: Array Complex Float Hashtbl List Printf Symref_circuit Symref_linalg
