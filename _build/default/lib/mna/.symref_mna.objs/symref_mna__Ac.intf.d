lib/mna/ac.mli: Complex Symref_circuit
