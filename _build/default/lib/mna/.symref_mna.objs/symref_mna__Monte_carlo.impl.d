lib/mna/monte_carlo.ml: Array Complex Float List Nodal Symref_circuit Symref_numeric
