lib/mna/monte_carlo.mli: Complex Nodal Symref_circuit
