lib/mna/nodal.ml: Array Complex Int List Printf Symref_circuit Symref_linalg Symref_numeric
