lib/mna/nodal.mli: Complex Symref_circuit Symref_numeric
