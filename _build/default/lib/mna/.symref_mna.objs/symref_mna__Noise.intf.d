lib/mna/noise.mli: Nodal Symref_circuit
