lib/mna/sensitivity.ml: Array Complex Float Hashtbl List Nodal Symref_circuit Symref_linalg Symref_numeric
