lib/mna/sensitivity.mli: Complex Nodal Symref_circuit
