lib/mna/transient.ml: Array Complex Float List Nodal Symref_circuit Symref_linalg Symref_numeric
