lib/mna/transient.mli: Nodal Symref_circuit
