lib/mna/twoport.ml: Ac Complex Float List Symref_circuit
