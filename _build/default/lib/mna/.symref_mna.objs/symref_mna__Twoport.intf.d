lib/mna/twoport.mli: Complex Symref_circuit
