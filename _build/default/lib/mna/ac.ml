module Sparse = Symref_linalg.Sparse
module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist

exception Unsupported of string

type t = {
  circuit : Netlist.t;
  n_nodes : int;
  dim : int;
  aux : (string, int) Hashtbl.t; (* element name -> auxiliary row index *)
}

let needs_aux (e : Element.t) =
  match e.Element.kind with
  | Element.Vsrc _ | Element.Vcvs _ | Element.Ccvs _ | Element.Inductor _ -> true
  | Element.Conductance _ | Element.Resistor _ | Element.Capacitor _
  | Element.Vccs _ | Element.Cccs _ | Element.Isrc _ ->
      false

let make circuit =
  let n_nodes = Netlist.node_count circuit in
  if n_nodes = 0 then raise (Unsupported "empty circuit");
  let aux = Hashtbl.create 8 in
  let next = ref n_nodes in
  List.iter
    (fun (e : Element.t) ->
      if needs_aux e then begin
        Hashtbl.replace aux e.Element.name !next;
        incr next
      end)
    (Netlist.elements circuit);
  { circuit; n_nodes; dim = !next; aux }

let dimension t = t.dim

type solution = { voltages : Complex.t array; currents : (string * Complex.t) list }

(* Matrix rows/cols: node k (1-based) -> k-1; auxiliary rows as assigned. *)
let solve_full t ~omega =
  let s = { Complex.re = 0.; im = omega } in
  let b = Sparse.create t.dim in
  let rhs = Array.make t.dim Complex.zero in
  let idx node = node - 1 in
  let entry r c v = if r >= 0 && c >= 0 then Sparse.add b r c v in
  let row_ok node = node > 0 in
  let add_node r c v = if row_ok r && row_ok c then Sparse.add b (idx r) (idx c) v in
  let admittance a b' y =
    add_node a a y;
    add_node b' b' y;
    let ny = Complex.neg y in
    add_node a b' ny;
    add_node b' a ny
  in
  let inject n v = if row_ok n then rhs.(idx n) <- Complex.add rhs.(idx n) v in
  let aux_of name = Hashtbl.find t.aux name in
  List.iter
    (fun (e : Element.t) ->
      match e.Element.kind with
      | Element.Conductance { a; b; siemens } -> admittance a b { re = siemens; im = 0. }
      | Element.Resistor { a; b; ohms } -> admittance a b { re = 1. /. ohms; im = 0. }
      | Element.Capacitor { a; b; farads } ->
          admittance a b (Complex.mul s { re = farads; im = 0. })
      | Element.Vccs { p; m; cp; cm; gm } ->
          let y = { Complex.re = gm; im = 0. } in
          let ny = Complex.neg y in
          add_node p cp y;
          add_node p cm ny;
          add_node m cp ny;
          add_node m cm y
      | Element.Isrc { a; b; amps } ->
          inject a { re = -.amps; im = 0. };
          inject b { re = amps; im = 0. }
      | Element.Vsrc { p; m; volts } ->
          let k = aux_of e.Element.name in
          (* Branch current i flows p -> m through the source. *)
          if row_ok p then begin
            entry (idx p) k Complex.one;
            entry k (idx p) Complex.one
          end;
          if row_ok m then begin
            entry (idx m) k { re = -1.; im = 0. };
            entry k (idx m) { re = -1.; im = 0. }
          end;
          rhs.(k) <- { re = volts; im = 0. }
      | Element.Vcvs { p; m; cp; cm; gain } ->
          let k = aux_of e.Element.name in
          if row_ok p then begin
            entry (idx p) k Complex.one;
            entry k (idx p) Complex.one
          end;
          if row_ok m then begin
            entry (idx m) k { re = -1.; im = 0. };
            entry k (idx m) { re = -1.; im = 0. }
          end;
          if row_ok cp then entry k (idx cp) { re = -.gain; im = 0. };
          if row_ok cm then entry k (idx cm) { re = gain; im = 0. }
      | Element.Cccs { p; m; vname; gain } ->
          let kv = aux_of vname in
          if row_ok p then entry (idx p) kv { re = gain; im = 0. };
          if row_ok m then entry (idx m) kv { re = -.gain; im = 0. }
      | Element.Ccvs { p; m; vname; ohms } ->
          let k = aux_of e.Element.name and kv = aux_of vname in
          if row_ok p then begin
            entry (idx p) k Complex.one;
            entry k (idx p) Complex.one
          end;
          if row_ok m then begin
            entry (idx m) k { re = -1.; im = 0. };
            entry k (idx m) { re = -1.; im = 0. }
          end;
          entry k kv { re = -.ohms; im = 0. }
      | Element.Inductor { a; b = b'; henries } ->
          let k = aux_of e.Element.name in
          if row_ok a then begin
            entry (idx a) k Complex.one;
            entry k (idx a) Complex.one
          end;
          if row_ok b' then begin
            entry (idx b') k { re = -1.; im = 0. };
            entry k (idx b') { re = -1.; im = 0. }
          end;
          entry k k (Complex.neg (Complex.mul s { re = henries; im = 0. })))
    (Netlist.elements t.circuit);
  let x = Sparse.solve (Sparse.factor b) rhs in
  let voltages =
    Array.init (t.n_nodes + 1) (fun i -> if i = 0 then Complex.zero else x.(i - 1))
  in
  let currents = Hashtbl.fold (fun name k acc -> (name, x.(k)) :: acc) t.aux [] in
  { voltages; currents }

let solve t ~omega = (solve_full t ~omega).voltages

let node_id_exn circuit name =
  match Netlist.node_id circuit name with
  | Some id -> id
  | None -> raise (Unsupported (Printf.sprintf "unknown node %s" name))

let transfer circuit ~out_p ?(out_m = "0") freqs =
  let t = make circuit in
  let p = node_id_exn circuit out_p and m = node_id_exn circuit out_m in
  Array.map
    (fun f ->
      let v = solve t ~omega:(2. *. Float.pi *. f) in
      Complex.sub v.(p) v.(m))
    freqs

type bode_point = { freq_hz : float; mag_db : float; phase_deg : float }

let unwrap_phase_deg ph =
  let out = Array.copy ph in
  let offset = ref 0. in
  for i = 1 to Array.length ph - 1 do
    let d = ph.(i) -. ph.(i - 1) in
    if d > 180. then offset := !offset -. 360.
    else if d < -180. then offset := !offset +. 360.;
    out.(i) <- ph.(i) +. !offset
  done;
  out

let bode circuit ~out_p ?out_m freqs =
  let h = transfer circuit ~out_p ?out_m freqs in
  let raw_phase =
    Array.map (fun z -> Complex.arg z *. 180. /. Float.pi) h
  in
  let phase = unwrap_phase_deg raw_phase in
  Array.mapi
    (fun i z ->
      {
        freq_hz = freqs.(i);
        mag_db = 20. *. Float.log10 (Complex.norm z);
        phase_deg = phase.(i);
      })
    h
