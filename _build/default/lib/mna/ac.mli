(** Small-signal AC analysis by direct solution of the full Modified Nodal
    Analysis system — our substitute for the "commercial electrical
    simulator" the paper compares against in Fig. 2.

    Supports the complete element set (voltage sources, all four controlled
    sources and inductors get auxiliary current rows).  Shares no code with
    the interpolation path beyond the sparse LU, so agreement between the two
    is a meaningful check. *)

exception Unsupported of string

type t
(** A prepared AC problem: MNA structure for a circuit. *)

val make : Symref_circuit.Netlist.t -> t
(** @raise Unsupported on an empty circuit. *)

val dimension : t -> int
(** Nodes plus auxiliary branch currents. *)

val solve : t -> omega:float -> Complex.t array
(** Node voltages (index = node id, entry [0] is ground = 0) at angular
    frequency [omega], driven by all independent sources at their AC
    magnitudes.  @raise Symref_linalg.Sparse.Singular if the MNA matrix is
    singular at this frequency. *)

type solution = {
  voltages : Complex.t array;  (** per node id; entry [0] is ground *)
  currents : (string * Complex.t) list;
      (** branch currents of the elements that carry an auxiliary MNA row
          (voltage sources, VCVS, CCVS, inductors), flowing from the [p]/[a]
          terminal through the element *)
}

val solve_full : t -> omega:float -> solution
(** {!solve} plus the auxiliary branch currents — current probing through
    the classic 0 V source trick, port currents for two-port extraction. *)

val transfer :
  Symref_circuit.Netlist.t -> out_p:string -> ?out_m:string -> float array -> Complex.t array
(** [transfer c ~out_p ~out_m freqs] runs a sweep over [freqs] (in Hz) and
    returns [v(out_p) - v(out_m)] at each point ([out_m] defaults to
    ground).  With a single unit-magnitude source this is the network
    function on the [j*omega] axis. *)

type bode_point = { freq_hz : float; mag_db : float; phase_deg : float }

val bode :
  Symref_circuit.Netlist.t -> out_p:string -> ?out_m:string -> float array -> bode_point array
(** Magnitude/phase view of {!transfer}; the phase is unwrapped so cascaded
    poles accumulate (Fig. 2 plots down to -800 degrees). *)

val unwrap_phase_deg : float array -> float array
(** Remove 360-degree jumps from a phase sequence (exposed for testing). *)
