module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist

type config = {
  samples : int;
  seed : int;
  tolerance : Element.t -> float option;
}

let default_tolerance (e : Element.t) =
  match e.Element.kind with
  | Element.Resistor _ | Element.Capacitor _ | Element.Conductance _
  | Element.Inductor _ ->
      Some 0.10
  | Element.Vccs _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _ -> Some 0.20
  | Element.Isrc _ | Element.Vsrc _ -> None

let default_config = { samples = 100; seed = 1; tolerance = default_tolerance }

type stat = {
  freq_hz : float;
  nominal_db : float;
  mean_db : float;
  std_db : float;
  min_db : float;
  max_db : float;
}

type lcg = { mutable state : int }

let next g =
  g.state <- ((g.state * 1103515245) + 12345) land 0x3FFFFFFF;
  float_of_int g.state /. float_of_int 0x40000000

(* One sampled circuit: every toleranced element scaled by a factor uniform
   in [1/(1+tol), 1+tol] (symmetric in log). *)
let sample config g circuit =
  List.fold_left
    (fun c (e : Element.t) ->
      match config.tolerance e with
      | None -> c
      | Some tol ->
          let span = Float.log (1. +. tol) in
          let factor = Float.exp (((2. *. next g) -. 1.) *. span) in
          Netlist.scale_element c e.Element.name factor)
    circuit (Netlist.elements circuit)

let responses ?(config = default_config) circuit ~input ~output ~freqs =
  let g = { state = (config.seed * 2654435761) land 0x3FFFFFFF } in
  let h_of c =
    match Nodal.make c ~input ~output with
    | problem ->
        let values =
          Array.map
            (fun f -> Nodal.eval problem { Complex.re = 0.; im = 2. *. Float.pi *. f })
            freqs
        in
        if Array.exists (fun v -> v.Nodal.singular) values then None
        else Some (Array.map (fun v -> v.Nodal.h) values)
    | exception Nodal.Unsupported _ -> None
  in
  let nominal =
    match h_of circuit with
    | Some h -> h
    | None -> invalid_arg "Monte_carlo: nominal circuit is singular"
  in
  let samples = ref [] in
  for _ = 1 to config.samples do
    match h_of (sample config g circuit) with
    | Some h -> samples := h :: !samples
    | None -> ()
  done;
  (nominal, List.rev !samples)

let gain_spread ?config circuit ~input ~output ~freqs =
  let nominal, samples = responses ?config circuit ~input ~output ~freqs in
  let db z = 20. *. Float.log10 (Complex.norm z +. 1e-300) in
  Array.mapi
    (fun i f ->
      let values = List.map (fun h -> db (Array.get h i)) samples in
      let n = float_of_int (List.length values) in
      if n = 0. then
        {
          freq_hz = f;
          nominal_db = db nominal.(i);
          mean_db = Float.nan;
          std_db = Float.nan;
          min_db = Float.nan;
          max_db = Float.nan;
        }
      else begin
        let mean = List.fold_left ( +. ) 0. values /. n in
        let var =
          List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. values /. n
        in
        let lo, hi = Symref_numeric.Stats.min_max values in
        {
          freq_hz = f;
          nominal_db = db nominal.(i);
          mean_db = mean;
          std_db = Float.sqrt var;
          min_db = lo;
          max_db = hi;
        }
      end)
    freqs

let yield_ ?(config = default_config) circuit ~input ~output ~accept ~freqs =
  let _, samples = responses ~config circuit ~input ~output ~freqs in
  let accepted = List.length (List.filter accept samples) in
  float_of_int accepted /. float_of_int config.samples
