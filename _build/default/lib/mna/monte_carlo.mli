(** Monte-Carlo tolerance analysis: sample element values around their
    design point, re-run the small-signal analysis, and report the response
    spread — the production companion of the sensitivity table (and a heavy
    consumer of fast repeated analyses).

    Sampling is deterministic from the seed (LCG, log-normal-ish via a
    uniform factor in [1/(1+tol), 1+tol]); no global randomness. *)

type config = {
  samples : int;                (** default 100 *)
  seed : int;                   (** default 1 *)
  tolerance : Symref_circuit.Element.t -> float option;
      (** per-element relative tolerance; [None] leaves the element exact.
          Default: 10% on R/C/G, 20% on transconductances, sources exact. *)
}

val default_config : config

type stat = {
  freq_hz : float;
  nominal_db : float;
  mean_db : float;
  std_db : float;
  min_db : float;
  max_db : float;
}

val gain_spread :
  ?config:config ->
  Symref_circuit.Netlist.t ->
  input:Nodal.input ->
  output:Nodal.output ->
  freqs:float array ->
  stat array
(** Magnitude statistics of [H(j w)] across the samples at each frequency.
    Samples whose network turns out singular are skipped (and never counted).
    @raise Nodal.Unsupported outside the nodal class. *)

val yield_ :
  ?config:config ->
  Symref_circuit.Netlist.t ->
  input:Nodal.input ->
  output:Nodal.output ->
  accept:(Complex.t array -> bool) ->
  freqs:float array ->
  float
(** Fraction of samples whose response (the array of [H(j w)] over [freqs])
    passes the acceptance test — a scripted yield study.  Singular samples
    count as rejects. *)
