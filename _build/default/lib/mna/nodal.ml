module Sparse = Symref_linalg.Sparse
module Ec = Symref_numeric.Extcomplex
module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist

type input =
  | Vsrc_element of string
  | V_single of string
  | V_diff of string * string
  | V_common of string * string
  | I_single of string

type output = Out_node of string | Out_diff of string * string

exception Unsupported of string

type role = Ground | Driven of float | Free of int

type t = {
  circuit : Netlist.t; (* input voltage source removed *)
  roles : role array;
  dim : int;
  injections : (int * float) list; (* reduced row -> unit-current injection *)
  out_p : int option;
  out_m : int option;
  den_gdeg : int;
  num_gdeg : int;
  order_bound : int;
}

type value = {
  den : Ec.t;
  num : Ec.t;
  h : Complex.t;
  singular : bool;
}

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let resolve_node circuit name =
  match Netlist.node_id circuit name with
  | Some id -> id
  | None -> unsupported "unknown node %s" name

let make circuit ~input ~output =
  (* Resolve the input into (circuit without source, driven nodes, current
     injections). *)
  let circuit, driven, injections_nodes =
    match input with
    | Vsrc_element name -> (
        match Netlist.find_element circuit name with
        | None -> unsupported "no element named %s" name
        | Some { Element.kind = Element.Vsrc { p; m; volts }; _ } ->
            let reduced = Netlist.remove_element circuit name in
            if m = 0 && p <> 0 then (reduced, [ (p, volts) ], [])
            else if p = 0 && m <> 0 then (reduced, [ (m, -.volts) ], [])
            else unsupported "voltage source %s is not grounded" name
        | Some _ -> unsupported "element %s is not a voltage source" name)
    | V_single name ->
        let n = resolve_node circuit name in
        if n = 0 then unsupported "cannot drive ground";
        (circuit, [ (n, 1.) ], [])
    | V_diff (pn, mn) ->
        let p = resolve_node circuit pn and m = resolve_node circuit mn in
        if p = 0 || m = 0 || p = m then
          unsupported "differential input needs two distinct non-ground nodes";
        (circuit, [ (p, 0.5); (m, -0.5) ], [])
    | V_common (pn, mn) ->
        let p = resolve_node circuit pn and m = resolve_node circuit mn in
        if p = 0 || m = 0 || p = m then
          unsupported "common-mode input needs two distinct non-ground nodes";
        (circuit, [ (p, 1.); (m, 1.) ], [])
    | I_single name ->
        let n = resolve_node circuit name in
        if n = 0 then unsupported "cannot inject into ground";
        (circuit, [], [ (n, 1.) ])
  in
  List.iter
    (fun e ->
      if not (Element.is_nodal_class e) then
        unsupported "element %s is outside the nodal class (%s)" e.Element.name
          (Element.describe e))
    (Netlist.elements circuit);
  let n_nodes = Netlist.node_count circuit in
  let roles = Array.make (n_nodes + 1) Ground in
  List.iter (fun (n, d) -> roles.(n) <- Driven d) driven;
  let dim = ref 0 in
  for i = 1 to n_nodes do
    match roles.(i) with
    | Ground ->
        roles.(i) <- Free !dim;
        incr dim
    | Driven _ -> ()
    | Free _ -> assert false
  done;
  let dim = !dim in
  if dim = 0 then unsupported "no free nodes left";
  let reduced_of name =
    let n = resolve_node circuit name in
    match roles.(n) with
    | Ground -> None
    | Free i -> Some i
    | Driven _ -> unsupported "output node %s is driven" name
  in
  let out_p, out_m =
    match output with
    | Out_node name -> (reduced_of name, None)
    | Out_diff (a, b) -> (reduced_of a, reduced_of b)
  in
  if out_p = None && out_m = None then unsupported "output is identically zero";
  let injections =
    List.map
      (fun (n, v) ->
        match roles.(n) with
        | Free i -> (i, v)
        | Ground | Driven _ -> unsupported "cannot inject into a driven node")
      injections_nodes
  in
  let num_gdeg = match input with I_single _ -> dim - 1 | _ -> dim in
  {
    circuit;
    roles;
    dim;
    injections;
    out_p;
    out_m;
    den_gdeg = dim;
    num_gdeg;
    order_bound = Int.min (Netlist.capacitor_count circuit) dim;
  }

type plan = {
  reduced_circuit : Netlist.t;
  roles : role array;
  plan_dim : int;
  plan_out_p : int option;
  plan_out_m : int option;
  plan_injections : (int * float) list;
}

let plan t =
  {
    reduced_circuit = t.circuit;
    roles = Array.copy t.roles;
    plan_dim = t.dim;
    plan_out_p = t.out_p;
    plan_out_m = t.out_m;
    plan_injections = t.injections;
  }

let dimension t = t.dim
let order_bound t = t.order_bound
let den_gdeg t = t.den_gdeg
let num_gdeg t = t.num_gdeg
let mean_conductance t = Netlist.mean_conductance t.circuit
let mean_capacitance t = Netlist.mean_capacitance t.circuit

let eval ?(f = 1.) ?(g = 1.) t s =
  let entries = ref [] in
  let rhs = Array.make t.dim Complex.zero in
  (* One scalar entry of the full nodal matrix, routed to the reduced matrix
     or (for driven columns) to the right-hand side. *)
  let entry row col (v : Complex.t) =
    match t.roles.(row) with
    | Ground | Driven _ -> ()
    | Free r -> (
        match t.roles.(col) with
        | Ground -> ()
        | Driven d ->
            rhs.(r) <-
              Complex.sub rhs.(r) { re = v.re *. d; im = v.im *. d }
        | Free c -> entries := (r, c, v) :: !entries)
  in
  let admittance a b y =
    entry a a y;
    entry b b y;
    let ny = Complex.neg y in
    entry a b ny;
    entry b a ny
  in
  let transconductance p m cp cm gm =
    let y = { Complex.re = gm; im = 0. } and ny = { Complex.re = -.gm; im = 0. } in
    entry p cp y;
    entry p cm ny;
    entry m cp ny;
    entry m cm y
  in
  let inject n amps =
    match t.roles.(n) with
    | Ground | Driven _ -> ()
    | Free r -> rhs.(r) <- Complex.add rhs.(r) { re = amps; im = 0. }
  in
  List.iter
    (fun (e : Element.t) ->
      match e.Element.kind with
      | Element.Conductance { a; b; siemens } ->
          admittance a b { re = siemens *. g; im = 0. }
      | Element.Resistor { a; b; ohms } -> admittance a b { re = g /. ohms; im = 0. }
      | Element.Capacitor { a; b; farads } ->
          admittance a b (Complex.mul s { re = farads *. f; im = 0. })
      | Element.Vccs { p; m; cp; cm; gm } -> transconductance p m cp cm (gm *. g)
      | Element.Isrc { a; b; amps } ->
          inject a (-.amps);
          inject b amps
      | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _
      | Element.Vsrc _ ->
          assert false (* rejected in make *))
    (Netlist.elements t.circuit);
  List.iter (fun (r, v) -> rhs.(r) <- Complex.add rhs.(r) { re = v; im = 0. }) t.injections;
  let build filter_col =
    let b = Sparse.create t.dim in
    List.iter
      (fun (r, c, v) ->
        match filter_col with
        | Some col when c = col -> ()
        | Some _ | None -> Sparse.add b r c v)
      !entries;
    (match filter_col with
    | None -> ()
    | Some col ->
        Array.iteri (fun r v -> if v <> Complex.zero then Sparse.add b r col v) rhs);
    b
  in
  let factor = Sparse.factor (build None) in
  let den = Sparse.det factor in
  if Ec.is_zero den then begin
    (* A pole sits exactly on this interpolation point: H is undefined, but
       the numerator value is still well-defined through Cramer's rule
       (x_j * D = det of the matrix with column j replaced by the RHS). *)
    let cramer = function
      | None -> Ec.zero
      | Some col -> Sparse.det (Sparse.factor (build (Some col)))
    in
    let num = Ec.sub (cramer t.out_p) (cramer t.out_m) in
    { den = Ec.zero; num; h = Complex.zero; singular = true }
  end
  else begin
    let x = Sparse.solve factor rhs in
    let pick = function Some i -> x.(i) | None -> Complex.zero in
    let h = Complex.sub (pick t.out_p) (pick t.out_m) in
    let num = Ec.mul_complex den h in
    { den; num; h; singular = false }
  end
