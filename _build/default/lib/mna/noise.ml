module Sparse = Symref_linalg.Sparse
module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist

type contribution = { element : string; output_density : float }

type point = {
  freq_hz : float;
  output_density : float;
  input_density : float;
  contributions : contribution list;
}

let temperature_kelvin = ref 300.
let boltzmann = 1.380649e-23

(* Noise current spectral density of an element, A^2/Hz, between its output
   terminals; None for noiseless elements. *)
let source_of (e : Element.t) =
  let kt = boltzmann *. !temperature_kelvin in
  match e.Element.kind with
  | Element.Resistor { a; b; ohms } -> Some (a, b, 4. *. kt /. ohms)
  | Element.Conductance { a; b; siemens } ->
      if siemens > 0. then Some (a, b, 4. *. kt *. siemens) else None
  | Element.Vccs { p; m; gm; _ } ->
      (* Shot noise 2qI with I = gm * VT: 2 k T gm. *)
      Some (p, m, 2. *. kt *. Float.abs gm)
  | Element.Capacitor _ | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _
  | Element.Ccvs _ | Element.Isrc _ | Element.Vsrc _ ->
      None

let at circuit ~input ~output ~freq_hz =
  let problem = Nodal.make circuit ~input ~output in
  let plan = Nodal.plan problem in
  let s = { Complex.re = 0.; im = 2. *. Float.pi *. freq_hz } in
  (* Assemble the reduced nodal matrix once (unit scale factors). *)
  let dim = plan.Nodal.plan_dim in
  let b = Sparse.create dim in
  let entry row col (v : Complex.t) =
    match plan.Nodal.roles.(row) with
    | Nodal.Ground | Nodal.Driven _ -> ()
    | Nodal.Free r -> (
        match plan.Nodal.roles.(col) with
        | Nodal.Ground | Nodal.Driven _ -> ()
        | Nodal.Free c -> Sparse.add b r c v)
  in
  let admittance a b' y =
    entry a a y;
    entry b' b' y;
    let ny = Complex.neg y in
    entry a b' ny;
    entry b' a ny
  in
  List.iter
    (fun (e : Element.t) ->
      match e.Element.kind with
      | Element.Conductance { a; b = b'; siemens } ->
          admittance a b' { re = siemens; im = 0. }
      | Element.Resistor { a; b = b'; ohms } -> admittance a b' { re = 1. /. ohms; im = 0. }
      | Element.Capacitor { a; b = b'; farads } ->
          admittance a b' (Complex.mul s { re = farads; im = 0. })
      | Element.Vccs { p; m; cp; cm; gm } ->
          let y = { Complex.re = gm; im = 0. } in
          let ny = Complex.neg y in
          entry p cp y;
          entry p cm ny;
          entry m cp ny;
          entry m cm y
      | Element.Isrc _ -> ()
      | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _
      | Element.Vsrc _ ->
          assert false)
    (Netlist.elements plan.Nodal.reduced_circuit);
  let factor = Sparse.factor b in
  if Symref_numeric.Extcomplex.is_zero (Sparse.det factor) then
    invalid_arg "Noise.at: network singular at this frequency";
  let transimpedance a b' =
    let rhs = Array.make dim Complex.zero in
    let inject n v =
      match plan.Nodal.roles.(n) with
      | Nodal.Ground | Nodal.Driven _ -> ()
      | Nodal.Free r -> rhs.(r) <- Complex.add rhs.(r) v
    in
    (* Unit noise current from a to b through the source. *)
    inject a { re = -1.; im = 0. };
    inject b' { re = 1.; im = 0. };
    let x = Sparse.solve factor rhs in
    let pick = function Some i -> x.(i) | None -> Complex.zero in
    Complex.sub (pick plan.Nodal.plan_out_p) (pick plan.Nodal.plan_out_m)
  in
  let contributions =
    List.filter_map
      (fun (e : Element.t) ->
        match source_of e with
        | None -> None
        | Some (a, b', density) ->
            let z = transimpedance a b' in
            Some
              {
                element = e.Element.name;
                output_density = density *. Complex.norm z *. Complex.norm z;
              })
      (Netlist.elements plan.Nodal.reduced_circuit)
    |> List.sort (fun (x : contribution) (y : contribution) ->
           Float.compare y.output_density x.output_density)
  in
  let output_density =
    List.fold_left (fun acc (c : contribution) -> acc +. c.output_density) 0. contributions
  in
  let h = (Nodal.eval problem s).Nodal.h in
  let h2 = Complex.norm h *. Complex.norm h in
  {
    freq_hz;
    output_density;
    input_density = (if h2 = 0. then infinity else output_density /. h2);
    contributions;
  }

let sweep circuit ~input ~output ~freqs =
  Array.map (fun f -> at circuit ~input ~output ~freq_hz:f) freqs

let integrate_rms points =
  let acc = ref 0. in
  for i = 0 to Array.length points - 2 do
    let a = points.(i) and b = points.(i + 1) in
    acc :=
      !acc
      +. ((a.output_density +. b.output_density) /. 2. *. (b.freq_hz -. a.freq_hz))
  done;
  Float.sqrt !acc
