(** Small-signal noise analysis.

    Thermal noise of every resistive element (resistors and conductances,
    [4kT G] A^2/Hz as a parallel current source) and shot noise of every
    transconductance (treated as a device channel/collector current source
    with spectral density [2 q I = 2 q (gm V_T)], i.e. [2 k T gm] for a
    bipolar-like device — the standard small-signal shorthand) is propagated
    to the output by one nodal solve per source per frequency, and summed in
    power.

    Input-referred noise divides by the signal gain computed with the same
    machinery. *)

type contribution = {
  element : string;
  output_density : float;  (** V^2/Hz at the output due to this source *)
}

type point = {
  freq_hz : float;
  output_density : float;     (** total, V^2/Hz *)
  input_density : float;      (** output / |H|^2, V^2/Hz *)
  contributions : contribution list;  (** descending *)
}

val temperature_kelvin : float ref
(** Defaults to 300 K. *)

val at :
  Symref_circuit.Netlist.t ->
  input:Nodal.input ->
  output:Nodal.output ->
  freq_hz:float ->
  point
(** @raise Nodal.Unsupported outside the nodal class; @raise Invalid_argument
    when the network is singular at the requested frequency. *)

val sweep :
  Symref_circuit.Netlist.t ->
  input:Nodal.input ->
  output:Nodal.output ->
  freqs:float array ->
  point array

val integrate_rms : point array -> float
(** Total RMS output noise over the swept band (trapezoidal integration of
    the output density), volts. *)
