module Netlist = Symref_circuit.Netlist
module Element = Symref_circuit.Element

type entry = {
  element : string;
  value : float;
  s : Complex.t;
  mag_db_per_percent : float;
  phase_deg_per_percent : float;
}

let perturbable (e : Element.t) =
  match e.Element.kind with
  | Element.Conductance _ | Element.Resistor _ | Element.Capacitor _
  | Element.Inductor _ | Element.Vccs _ | Element.Vcvs _ | Element.Cccs _
  | Element.Ccvs _ ->
      true
  | Element.Isrc _ | Element.Vsrc _ -> false

let h_of circuit ~input ~output s =
  let v = Nodal.eval (Nodal.make circuit ~input ~output) s in
  if v.Nodal.singular then None else Some v.Nodal.h

let at ?(rel_step = 1e-4) circuit ~input ~output ~freq_hz =
  let s = { Complex.re = 0.; im = 2. *. Float.pi *. freq_hz } in
  let h0 =
    match h_of circuit ~input ~output s with
    | Some h when Complex.norm h > 0. -> h
    | Some _ | None -> invalid_arg "Sensitivity.at: H is zero or singular at this point"
  in
  let entries =
    List.filter_map
      (fun (e : Element.t) ->
        if not (perturbable e) then None
        else begin
          let name = e.Element.name in
          let up = Netlist.scale_element circuit name (1. +. rel_step) in
          let dn = Netlist.scale_element circuit name (1. -. rel_step) in
          match (h_of up ~input ~output s, h_of dn ~input ~output s) with
          | Some hp, Some hm ->
              (* S = (x/H) dH/dx with dx = x * rel_step, central difference. *)
              let dh = Complex.sub hp hm in
              let sens =
                Complex.div dh (Symref_numeric.Cx.scale (2. *. rel_step) h0)
              in
              (* A +1% value change moves |H| by ~20/ln10 * Re S * 0.01 dB and
                 the phase by ~Im S * 0.01 rad. *)
              let percent = 0.01 in
              Some
                {
                  element = name;
                  value = Element.principal_value e;
                  s = sens;
                  mag_db_per_percent =
                    20. /. Float.log 10. *. sens.Complex.re *. percent;
                  phase_deg_per_percent =
                    sens.Complex.im *. percent *. 180. /. Float.pi;
                }
          | _ -> None
        end)
      (Netlist.elements circuit)
  in
  List.sort
    (fun a b -> Float.compare (Complex.norm b.s) (Complex.norm a.s))
    entries

(* Adjoint method: one forward solve for v, one transpose solve for w with
   the output selector as RHS; every element sensitivity is then a local
   product.  dv_out/dA_jk = -w_j v_k for free indices; driven and ground
   nodes carry v = drive value (resp. 0) and w = 0. *)
let adjoint_at circuit ~input ~output ~freq_hz =
  let module Sparse = Symref_linalg.Sparse in
  let module Ec = Symref_numeric.Extcomplex in
  let problem = Nodal.make circuit ~input ~output in
  let plan = Nodal.plan problem in
  let s = { Complex.re = 0.; im = 2. *. Float.pi *. freq_hz } in
  let dim = plan.Nodal.plan_dim in
  let b = Sparse.create dim in
  let rhs = Array.make dim Complex.zero in
  let entry row col (v : Complex.t) =
    match plan.Nodal.roles.(row) with
    | Nodal.Ground | Nodal.Driven _ -> ()
    | Nodal.Free r -> (
        match plan.Nodal.roles.(col) with
        | Nodal.Ground -> ()
        | Nodal.Driven d -> rhs.(r) <- Complex.sub rhs.(r) { re = v.re *. d; im = v.im *. d }
        | Nodal.Free c -> Sparse.add b r c v)
  in
  let admittance a b' y =
    entry a a y;
    entry b' b' y;
    let ny = Complex.neg y in
    entry a b' ny;
    entry b' a ny
  in
  List.iter
    (fun (e : Element.t) ->
      match e.Element.kind with
      | Element.Conductance { a; b = b'; siemens } -> admittance a b' { re = siemens; im = 0. }
      | Element.Resistor { a; b = b'; ohms } -> admittance a b' { re = 1. /. ohms; im = 0. }
      | Element.Capacitor { a; b = b'; farads } ->
          admittance a b' (Complex.mul s { re = farads; im = 0. })
      | Element.Vccs { p; m; cp; cm; gm } ->
          let y = { Complex.re = gm; im = 0. } in
          let ny = Complex.neg y in
          entry p cp y;
          entry p cm ny;
          entry m cp ny;
          entry m cm y
      | Element.Isrc { a; b = b'; amps } ->
          (match plan.Nodal.roles.(a) with
          | Nodal.Free r -> rhs.(r) <- Complex.add rhs.(r) { re = -.amps; im = 0. }
          | Nodal.Ground | Nodal.Driven _ -> ());
          (match plan.Nodal.roles.(b') with
          | Nodal.Free r -> rhs.(r) <- Complex.add rhs.(r) { re = amps; im = 0. }
          | Nodal.Ground | Nodal.Driven _ -> ())
      | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _
      | Element.Vsrc _ ->
          assert false)
    (Netlist.elements plan.Nodal.reduced_circuit);
  List.iter
    (fun (r, v) -> rhs.(r) <- Complex.add rhs.(r) { re = v; im = 0. })
    plan.Nodal.plan_injections;
  let factor = Sparse.factor b in
  if Ec.is_zero (Sparse.det factor) then
    invalid_arg "Sensitivity.adjoint_at: singular network";
  let v = Sparse.solve factor rhs in
  let selector = Array.make dim Complex.zero in
  (match plan.Nodal.plan_out_p with
  | Some r -> selector.(r) <- Complex.add selector.(r) Complex.one
  | None -> ());
  (match plan.Nodal.plan_out_m with
  | Some r -> selector.(r) <- Complex.sub selector.(r) Complex.one
  | None -> ());
  let w = Sparse.solve_transpose factor selector in
  let h =
    let pick = function Some r -> v.(r) | None -> Complex.zero in
    Complex.sub (pick plan.Nodal.plan_out_p) (pick plan.Nodal.plan_out_m)
  in
  if Complex.norm h = 0. then invalid_arg "Sensitivity.adjoint_at: H is zero";
  (* Node potentials in the forward (including drives, unit input) and
     adjoint (zero at driven nodes) solutions. *)
  let v_at n =
    match plan.Nodal.roles.(n) with
    | Nodal.Ground -> Complex.zero
    | Nodal.Driven d -> { Complex.re = d; im = 0. }
    | Nodal.Free r -> v.(r)
  in
  let w_at n =
    match plan.Nodal.roles.(n) with
    | Nodal.Ground | Nodal.Driven _ -> Complex.zero
    | Nodal.Free r -> w.(r)
  in
  let dh_dy (op, om) (cp, cm) =
    Complex.neg
      (Complex.mul (Complex.sub (w_at op) (w_at om)) (Complex.sub (v_at cp) (v_at cm)))
  in
  let normalised y out ctrl = Complex.div (Complex.mul y (dh_dy out ctrl)) h in
  let entries =
    List.filter_map
      (fun (e : Element.t) ->
        let mk sens =
          let percent = 0.01 in
          Some
            {
              element = e.Element.name;
              value = Element.principal_value e;
              s = sens;
              mag_db_per_percent = 20. /. Float.log 10. *. sens.Complex.re *. percent;
              phase_deg_per_percent = sens.Complex.im *. percent *. 180. /. Float.pi;
            }
        in
        match e.Element.kind with
        | Element.Conductance { a; b = b'; siemens } ->
            mk (normalised { re = siemens; im = 0. } (a, b') (a, b'))
        | Element.Resistor { a; b = b'; ohms } ->
            (* S_R = -S_(1/R): the chain rule through y = 1/R. *)
            mk (Complex.neg (normalised { re = 1. /. ohms; im = 0. } (a, b') (a, b')))
        | Element.Capacitor { a; b = b'; farads } ->
            mk (normalised (Complex.mul s { re = farads; im = 0. }) (a, b') (a, b'))
        | Element.Vccs { p; m; cp; cm; gm } ->
            mk (normalised { re = gm; im = 0. } (p, m) (cp, cm))
        | Element.Isrc _ | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _
        | Element.Ccvs _ | Element.Vsrc _ ->
            None)
      (Netlist.elements plan.Nodal.reduced_circuit)
  in
  List.sort (fun a b -> Float.compare (Complex.norm b.s) (Complex.norm a.s)) entries

let worst_case ?rel_step circuit ~input ~output ~freqs =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun f ->
      match at ?rel_step circuit ~input ~output ~freq_hz:f with
      | entries ->
          List.iter
            (fun e ->
              let m = Complex.norm e.s in
              match Hashtbl.find_opt tbl e.element with
              | Some old when old >= m -> ()
              | _ -> Hashtbl.replace tbl e.element m)
            entries
      | exception Invalid_argument _ -> ())
    freqs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
