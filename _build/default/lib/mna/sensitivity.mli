(** Network-function sensitivities — a primary application of symbolic
    analysis (and of the numerical references that drive its
    simplification): how much each circuit parameter moves the transfer
    function.

    Computes normalised sensitivities

    [S_x^H(s) = (x / H) * dH/dx]

    by central-difference perturbation of the element value with two nodal
    solves per element, at any point of the [j*omega] axis.  Magnitude
    sensitivity in dB-per-percent and phase sensitivity are derived views:
    [d|H|dB = 20 / ln 10 * Re S * dx/x * 100]. *)

type entry = {
  element : string;
  value : float;              (** design-point value *)
  s : Complex.t;              (** normalised sensitivity [S_x^H] *)
  mag_db_per_percent : float; (** magnitude shift for a +1% value change *)
  phase_deg_per_percent : float;
}

val at :
  ?rel_step:float ->
  Symref_circuit.Netlist.t ->
  input:Nodal.input ->
  output:Nodal.output ->
  freq_hz:float ->
  entry list
(** Sensitivities of every element with a perturbable value, sorted by
    descending [|s|].  [rel_step] (default [1e-4]) is the relative
    perturbation.  Elements whose perturbed network is singular are
    skipped.
    @raise Nodal.Unsupported on circuits outside the nodal class. *)

val worst_case :
  ?rel_step:float ->
  Symref_circuit.Netlist.t ->
  input:Nodal.input ->
  output:Nodal.output ->
  freqs:float array ->
  (string * float) list
(** Per element, the maximum [|S|] over the frequency grid — the ranking a
    designer (or an SBG pruner) reads to find what matters.  Sorted
    descending. *)

val adjoint_at :
  Symref_circuit.Netlist.t ->
  input:Nodal.input ->
  output:Nodal.output ->
  freq_hz:float ->
  entry list
(** The adjoint (transpose) network method: {e exact} sensitivities of every
    element from two solves total — one forward, one through
    {!Symref_linalg.Sparse.solve_transpose} — instead of two solves per
    element.  For an admittance [y] between nodes [(a, b)] (or a VCCS with
    output [(p, m)] and control [(cp, cm)]),
    [dH/dy = -(w_a - w_b) (v_cp' - v_cm')] with [w] the adjoint solution.
    Results match {!at} to the perturbation's own accuracy; independent
    sources carry no sensitivity here.  Sorted by descending [|s|]. *)
