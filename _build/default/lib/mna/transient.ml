module Sparse = Symref_linalg.Sparse
module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist

type waveform = float -> float

let step ?(amplitude = 1.) () = fun t -> if t >= 0. then amplitude else 0.

let sine ?(amplitude = 1.) ~freq_hz () =
 fun t -> amplitude *. Float.sin (2. *. Float.pi *. freq_hz *. t)

type result = { times : float array; output : float array }

type cap_state = {
  ca : int;          (* node ids, 0 = ground *)
  cb : int;
  g_eq : float;      (* 2C/h *)
  mutable v : float; (* capacitor voltage at the last accepted step *)
  mutable i : float; (* capacitor current at the last accepted step *)
}

let simulate circuit ~input ~output ~waveform ~t_stop ~steps =
  if steps < 1 then invalid_arg "Transient.simulate: steps must be >= 1";
  if not (t_stop > 0.) then invalid_arg "Transient.simulate: t_stop must be > 0";
  let problem = Nodal.make circuit ~input ~output in
  let plan = Nodal.plan problem in
  let dim = plan.Nodal.plan_dim in
  let h = t_stop /. float_of_int steps in
  (* Assemble the constant matrix with capacitor companion conductance
     [coef * C / h]: coef = 2 for trapezoidal, 1 for the backward-Euler
     start-up step that absorbs the inconsistent initial state. *)
  let build coef =
    let b = Sparse.create dim in
    let g_drive = Array.make dim 0. in
    let i_const = Array.make dim 0. in
    let caps = ref [] in
    let entry row col v =
      match plan.Nodal.roles.(row) with
      | Nodal.Ground | Nodal.Driven _ -> ()
      | Nodal.Free r -> (
          match plan.Nodal.roles.(col) with
          | Nodal.Ground -> ()
          | Nodal.Driven d -> g_drive.(r) <- g_drive.(r) +. (v *. d)
          | Nodal.Free c -> Sparse.add b r c { Complex.re = v; im = 0. })
    in
    let conductance a b' g =
      entry a a g;
      entry b' b' g;
      entry a b' (-.g);
      entry b' a (-.g)
    in
    List.iter
      (fun (e : Element.t) ->
        match e.Element.kind with
        | Element.Conductance { a; b = b'; siemens } -> conductance a b' siemens
        | Element.Resistor { a; b = b'; ohms } -> conductance a b' (1. /. ohms)
        | Element.Capacitor { a; b = b'; farads } ->
            let g_eq = coef *. farads /. h in
            conductance a b' g_eq;
            caps := { ca = a; cb = b'; g_eq; v = 0.; i = 0. } :: !caps
        | Element.Vccs { p; m; cp; cm; gm } ->
            entry p cp gm;
            entry p cm (-.gm);
            entry m cp (-.gm);
            entry m cm gm
        | Element.Isrc { a; b = b'; amps } ->
            (match plan.Nodal.roles.(a) with
            | Nodal.Free r -> i_const.(r) <- i_const.(r) -. amps
            | Nodal.Ground | Nodal.Driven _ -> ());
            (match plan.Nodal.roles.(b') with
            | Nodal.Free r -> i_const.(r) <- i_const.(r) +. amps
            | Nodal.Ground | Nodal.Driven _ -> ())
        | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _
        | Element.Vsrc _ ->
            assert false (* excluded by Nodal.make *))
      (Netlist.elements plan.Nodal.reduced_circuit);
    let factor = Sparse.factor b in
    if Symref_numeric.Extcomplex.is_zero (Sparse.det factor) then
      invalid_arg "Transient.simulate: singular system";
    (factor, g_drive, i_const, !caps)
  in
  let factor, g_drive, i_const, caps = build 2. in
  let be_factor, be_g_drive, be_i_const, _ = build 1. in
  let caps = ref caps in
  let x = Array.make dim 0. in
  (* Voltage of a node given the current free solution and drive value. *)
  let node_v u n =
    match plan.Nodal.roles.(n) with
    | Nodal.Ground -> 0.
    | Nodal.Driven d -> d *. u
    | Nodal.Free r -> x.(r)
  in
  let out () =
    let pick = function None -> 0. | Some r -> x.(r) in
    pick plan.Nodal.plan_out_p -. pick plan.Nodal.plan_out_m
  in
  let times = Array.init (steps + 1) (fun i -> float_of_int i *. h) in
  let output = Array.make (steps + 1) 0. in
  output.(0) <- 0.;
  let rhs = Array.make dim Complex.zero in
  for n = 1 to steps do
    let t = times.(n) in
    let u = waveform t in
    (* Backward Euler on the first step (hist = g_be v_n, i unused), then
       trapezoidal (hist = g_eq v_n + i_n). *)
    let first = n = 1 in
    let fct = if first then be_factor else factor in
    let gd = if first then be_g_drive else g_drive in
    let ic = if first then be_i_const else i_const in
    Array.iteri (fun r g -> rhs.(r) <- { Complex.re = (-.g *. u) +. ic.(r); im = 0. }) gd;
    List.iter
      (fun c ->
        let g = if first then c.g_eq /. 2. else c.g_eq in
        let hist = (g *. c.v) +. (if first then 0. else c.i) in
        (match plan.Nodal.roles.(c.ca) with
        | Nodal.Free r -> rhs.(r) <- Complex.add rhs.(r) { re = hist; im = 0. }
        | Nodal.Ground | Nodal.Driven _ -> ());
        (match plan.Nodal.roles.(c.cb) with
        | Nodal.Free r -> rhs.(r) <- Complex.add rhs.(r) { re = -.hist; im = 0. }
        | Nodal.Ground | Nodal.Driven _ -> ()))
      !caps;
    let sol = Sparse.solve fct rhs in
    Array.iteri (fun r (z : Complex.t) -> x.(r) <- z.re) sol;
    (* Update capacitor states. *)
    List.iter
      (fun c ->
        let v_new = node_v u c.ca -. node_v u c.cb in
        let i_new =
          if first then c.g_eq /. 2. *. (v_new -. c.v)
          else (c.g_eq *. (v_new -. c.v)) -. c.i
        in
        c.v <- v_new;
        c.i <- i_new)
      !caps;
    output.(n) <- out ()
  done;
  { times; output }
