(** Linear transient simulation of nodal-class circuits by trapezoidal
    integration (capacitor companion models), with the input applied as a
    time-domain waveform on the driven nodes.

    The conductance part of the system matrix is constant, so it is factored
    once and every time step is a single sparse solve — the standard linear
    circuit-simulator fast path.  Results cross-validate against the modal
    (partial-fraction) responses computed from the reference coefficients,
    which is exactly the kind of independent agreement this repository is
    about. *)

type waveform = float -> float
(** Input value at time [t] (seconds). *)

val step : ?amplitude:float -> unit -> waveform
(** Unit (or scaled) step at [t = 0]. *)

val sine : ?amplitude:float -> freq_hz:float -> unit -> waveform

type result = {
  times : float array;
  output : float array;  (** observed output voltage *)
}

val simulate :
  Symref_circuit.Netlist.t ->
  input:Nodal.input ->
  output:Nodal.output ->
  waveform:waveform ->
  t_stop:float ->
  steps:int ->
  result
(** Trapezoidal integration from zero initial conditions over [steps]
    uniform steps.  The drive coefficients of [input] (e.g. the [+-1/2] of a
    differential pair) scale the waveform.
    @raise Nodal.Unsupported outside the nodal class;
    @raise Invalid_argument when [steps < 1] or [t_stop <= 0.]. *)
