module Netlist = Symref_circuit.Netlist

type params = {
  y11 : Complex.t;
  y12 : Complex.t;
  y21 : Complex.t;
  y22 : Complex.t;
}

(* One excitation: v1/v2 volts forced at the two ports, port currents read
   back from the sources' auxiliary rows (the stamped branch current flows
   from the node into the source, so the current into the network is its
   negation). *)
let port_currents circuit ~port1 ~port2 ~freq_hz v1 v2 =
  let driven =
    Netlist.extend circuit (fun b ->
        Netlist.Builder.vsrc b "_port1" ~p:port1 ~m:"0" v1;
        Netlist.Builder.vsrc b "_port2" ~p:port2 ~m:"0" v2)
  in
  let sol = Ac.solve_full (Ac.make driven) ~omega:(2. *. Float.pi *. freq_hz) in
  let current name =
    match List.assoc_opt name sol.Ac.currents with
    | Some i -> Complex.neg i
    | None -> assert false
  in
  (current "_port1", current "_port2")

let y_params circuit ~port1 ~port2 ~freq_hz =
  let i11, i21 = port_currents circuit ~port1 ~port2 ~freq_hz 1. 0. in
  let i12, i22 = port_currents circuit ~port1 ~port2 ~freq_hz 0. 1. in
  { y11 = i11; y21 = i21; y12 = i12; y22 = i22 }

let det (p : params) =
  Complex.sub (Complex.mul p.y11 p.y22) (Complex.mul p.y12 p.y21)

let z_params p =
  let d = det p in
  if Complex.norm d = 0. then None
  else
    Some
      {
        y11 = Complex.div p.y22 d;
        y12 = Complex.neg (Complex.div p.y12 d);
        y21 = Complex.neg (Complex.div p.y21 d);
        y22 = Complex.div p.y11 d;
      }

(* S = (I - z0 Y) (I + z0 Y)^-1 for a real reference impedance. *)
let s_params ?(z0 = 50.) p =
  let scale k (z : Complex.t) = { Complex.re = k *. z.re; im = k *. z.im } in
  let a11 = Complex.sub Complex.one (scale z0 p.y11)
  and a12 = Complex.neg (scale z0 p.y12)
  and a21 = Complex.neg (scale z0 p.y21)
  and a22 = Complex.sub Complex.one (scale z0 p.y22) in
  let b11 = Complex.add Complex.one (scale z0 p.y11)
  and b12 = scale z0 p.y12
  and b21 = scale z0 p.y21
  and b22 = Complex.add Complex.one (scale z0 p.y22) in
  let db = Complex.sub (Complex.mul b11 b22) (Complex.mul b12 b21) in
  (* B^-1 *)
  let i11 = Complex.div b22 db
  and i12 = Complex.neg (Complex.div b12 db)
  and i21 = Complex.neg (Complex.div b21 db)
  and i22 = Complex.div b11 db in
  {
    y11 = Complex.add (Complex.mul a11 i11) (Complex.mul a12 i21);
    y12 = Complex.add (Complex.mul a11 i12) (Complex.mul a12 i22);
    y21 = Complex.add (Complex.mul a21 i11) (Complex.mul a22 i21);
    y22 = Complex.add (Complex.mul a21 i12) (Complex.mul a22 i22);
  }

let is_reciprocal ?(rel = 1e-9) p =
  let d = Complex.norm (Complex.sub p.y12 p.y21) in
  d <= rel *. Float.max (Complex.norm p.y12) (Complex.norm p.y21)
  || (Complex.norm p.y12 = 0. && Complex.norm p.y21 = 0.)
