(** Two-port parameter extraction.

    Ports are node-to-ground; Y parameters come from two full-MNA solves
    (drive one port with 1 V, short the other, read the port currents), and
    Z/S parameters by the standard 2x2 conversions.  Reciprocity
    ([y12 = y21]) on passive networks is a test invariant. *)

type params = {
  y11 : Complex.t;
  y12 : Complex.t;
  y21 : Complex.t;
  y22 : Complex.t;
}

val y_params :
  Symref_circuit.Netlist.t -> port1:string -> port2:string -> freq_hz:float -> params
(** The circuit must not contain its own sources at the port nodes; any
    internal independent sources are left untouched (superposition does not
    apply — pass a source-free network for meaningful parameters).
    @raise Symref_linalg.Sparse.Singular on a singular network. *)

val z_params : params -> params option
(** [None] when [det Y = 0] (e.g. a series element: no Z representation). *)

val s_params : ?z0:float -> params -> params
(** Scattering parameters for real reference impedance [z0] (default 50
    ohm): [S = (I - z0 Y) (I + z0 Y)^-1]. *)

val is_reciprocal : ?rel:float -> params -> bool
(** [y12 = y21] within tolerance (default [1e-9]). *)
