lib/numeric/extcomplex.ml: Complex Extfloat Float Format Printf
