lib/numeric/extcomplex.mli: Complex Extfloat Format
