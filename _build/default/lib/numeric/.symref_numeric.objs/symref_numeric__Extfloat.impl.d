lib/numeric/extfloat.ml: Float Format Int Printf Stdlib
