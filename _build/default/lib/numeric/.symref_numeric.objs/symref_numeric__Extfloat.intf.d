lib/numeric/extfloat.mli: Format
