lib/numeric/grid.ml: Array Float Int
