lib/numeric/grid.mli:
