lib/numeric/stats.mli:
