type t = Complex.t

let make re im : t = { re; im }
let re (z : t) = z.re
let im (z : t) = z.im
let of_float x : t = { re = x; im = 0. }
let j : t = { re = 0.; im = 1. }
let jomega w : t = { re = 0.; im = w }
let scale k (z : t) : t = { re = k *. z.re; im = k *. z.im }
let add3 a b c = Complex.add a (Complex.add b c)
let sum = List.fold_left Complex.add Complex.zero
let is_finite (z : t) = Float.is_finite z.re && Float.is_finite z.im

let approx_equal ?(rel = 1e-9) ?(abs = 0.) a b =
  let d = Complex.norm (Complex.sub a b) in
  d <= Float.max abs (rel *. Float.max (Complex.norm a) (Complex.norm b))

let to_string (z : t) = Printf.sprintf "%.6g%+.6gj" z.re z.im
let pp ppf z = Format.pp_print_string ppf (to_string z)
