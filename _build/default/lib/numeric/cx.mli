(** Small conveniences over the standard [Complex] module. *)

type t = Complex.t

val make : float -> float -> t
val re : t -> float
val im : t -> float
val of_float : float -> t
val j : t
(** The imaginary unit. *)

val jomega : float -> t
(** [jomega w] is [0 + j*w], the evaluation point for AC analysis. *)

val scale : float -> t -> t
val add3 : t -> t -> t -> t
val sum : t list -> t
val is_finite : t -> bool

val approx_equal : ?rel:float -> ?abs:float -> t -> t -> bool
(** [|a-b| <= max (abs, rel * max|a| |b|)]. Defaults: [rel = 1e-9],
    [abs = 0.]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
