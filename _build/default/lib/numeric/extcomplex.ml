type t = { c : Complex.t; e : int }

let zero = { c = Complex.zero; e = 0 }

(* Normalise so that the larger component's magnitude lies in [0.5, 1); this
   keeps both components of the mantissa representable for any value. *)
let norm_mantissa (c : Complex.t) e =
  let a = Float.max (Float.abs c.re) (Float.abs c.im) in
  if a = 0. then zero
  else
    let _, de = Float.frexp a in
    { c = { re = Float.ldexp c.re (-de); im = Float.ldexp c.im (-de) }; e = e + de }

let finite (c : Complex.t) = Float.is_finite c.re && Float.is_finite c.im

let of_complex c =
  if not (finite c) then invalid_arg "Extcomplex.of_complex: not finite"
  else norm_mantissa c 0

let one = of_complex Complex.one

let to_complex { c; e } =
  if c = Complex.zero then Complex.zero
  else if e > 1030 then
    let blow x = if x = 0. then 0. else x *. infinity in
    { re = blow c.re; im = blow c.im }
  else if e < -1080 then Complex.zero
  else { re = Float.ldexp c.re e; im = Float.ldexp c.im e }

let of_extfloat (x : Extfloat.t) =
  norm_mantissa { re = x.Extfloat.m; im = 0. } x.Extfloat.e

let make ~c ~e =
  if not (finite c) then invalid_arg "Extcomplex.make: not finite"
  else norm_mantissa c e

let is_zero x = x.c = Complex.zero
let neg x = { x with c = Complex.neg x.c }
let conj x = { x with c = Complex.conj x.c }
let mul a b = norm_mantissa (Complex.mul a.c b.c) (a.e + b.e)

let div a b =
  if is_zero b then raise Division_by_zero
  else norm_mantissa (Complex.div a.c b.c) (a.e - b.e)

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else
    let hi, lo = if a.e >= b.e then (a, b) else (b, a) in
    let gap = hi.e - lo.e in
    if gap > 60 then hi
    else
      let scaled =
        { Complex.re = Float.ldexp lo.c.re (-gap); im = Float.ldexp lo.c.im (-gap) }
      in
      norm_mantissa (Complex.add hi.c scaled) hi.e

let sub a b = add a (neg b)
let mul_complex a z = mul a (of_complex z)
let norm x = Extfloat.make ~m:(Complex.norm x.c) ~e:x.e
let arg x = if is_zero x then 0. else Complex.arg x.c
let re x = Extfloat.make ~m:x.c.re ~e:x.e
let im x = Extfloat.make ~m:x.c.im ~e:x.e
let log10_norm x = Extfloat.log10_abs (norm x)

let approx_equal ?(rel = 1e-9) a b =
  if is_zero a && is_zero b then true
  else
    let d = norm (sub a b) in
    let m = Extfloat.(if compare_mag (norm a) (norm b) >= 0 then norm a else norm b) in
    Extfloat.(compare_mag d (mul_float m rel)) <= 0

let to_string x =
  let r = re x and i = im x in
  Printf.sprintf "%s%sj%s" (Extfloat.to_string r)
    (if Extfloat.sign i >= 0 then "+" else "-")
    (Extfloat.to_string (Extfloat.abs i))

let pp ppf x = Format.pp_print_string ppf (to_string x)
