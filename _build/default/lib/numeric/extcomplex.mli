(** Extended-range complex numbers, [c * 2^e] with the mantissa normalised so
    that [0.5 <= Complex.norm c < 1.] (or exactly zero).

    Used to accumulate determinants of large MNA matrices (products of tens of
    pivots under/overflow doubles) and to evaluate network-function
    polynomials whose coefficients are {!Extfloat.t} values. *)

type t = private { c : Complex.t; e : int }

val zero : t
val one : t

val of_complex : Complex.t -> t
(** @raise Invalid_argument when a component is not finite. *)

val to_complex : t -> Complex.t
(** Overflow saturates component-wise to infinities; underflow to [0.]. *)

val of_extfloat : Extfloat.t -> t
val make : c:Complex.t -> e:int -> t
val is_zero : t -> bool
val neg : t -> t
val conj : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val mul_complex : t -> Complex.t -> t
val norm : t -> Extfloat.t
(** Modulus, in extended range. *)

val arg : t -> float
(** Argument in radians, in [(-pi, pi]]; [0.] for zero. *)

val re : t -> Extfloat.t
val im : t -> Extfloat.t
val log10_norm : t -> float
(** [log10] of the modulus; [neg_infinity] for zero. *)

val approx_equal : ?rel:float -> t -> t -> bool
(** Relative comparison on the modulus of the difference. Default [1e-9]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
