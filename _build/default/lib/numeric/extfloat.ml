type t = { m : float; e : int }

let zero = { m = 0.; e = 0 }

(* Renormalise an arbitrary finite mantissa into [0.5, 1). [frexp] already
   returns such a mantissa, so normalisation is a single call. *)
let norm m e =
  if m = 0. then zero
  else
    let m', de = Float.frexp m in
    { m = m'; e = e + de }

let of_float x =
  if not (Float.is_finite x) then invalid_arg "Extfloat.of_float: not finite"
  else norm x 0

let one = of_float 1.
let minus_one = of_float (-1.)
let make ~m ~e =
  if not (Float.is_finite m) then invalid_arg "Extfloat.make: not finite"
  else norm m e

let to_float { m; e } =
  if m = 0. then 0.
  else if e > 1030 then if m > 0. then infinity else neg_infinity
  else if e < -1080 then 0.
  else Float.ldexp m e

let is_zero x = x.m = 0.
let sign x = compare x.m 0.
let neg x = { x with m = -.x.m }
let abs x = { x with m = Float.abs x.m }
let mul a b = norm (a.m *. b.m) (a.e + b.e)

let div a b =
  if b.m = 0. then raise Division_by_zero else norm (a.m /. b.m) (a.e - b.e)

(* Addition aligns the smaller operand's exponent to the larger's; a gap of
   more than 60 bits makes the smaller operand invisible in a double. *)
let add a b =
  if a.m = 0. then b
  else if b.m = 0. then a
  else
    let hi, lo = if a.e >= b.e then (a, b) else (b, a) in
    let gap = hi.e - lo.e in
    if gap > 60 then hi else norm (hi.m +. Float.ldexp lo.m (-gap)) hi.e

let sub a b = add a (neg b)
let mul_float a f = mul a (of_float f)

let pow_int x n =
  if n = 0 then one
  else if x.m = 0. then if n > 0 then zero else raise Division_by_zero
  else
    let rec go acc base n =
      if n = 0 then acc
      else
        let acc = if n land 1 = 1 then mul acc base else acc in
        go acc (mul base base) (n lsr 1)
    in
    let p = go one x (Stdlib.abs n) in
    if n > 0 then p else div one p

let float_pow_int f n =
  if not (f > 0.) then invalid_arg "Extfloat.float_pow_int: base must be > 0";
  pow_int (of_float f) n

let compare_mag a b =
  if a.m = 0. then if b.m = 0. then 0 else -1
  else if b.m = 0. then 1
  else
    let c = Int.compare a.e b.e in
    if c <> 0 then c else Float.compare (Float.abs a.m) (Float.abs b.m)

let compare a b =
  let sa = sign a and sb = sign b in
  if sa <> sb then Int.compare sa sb
  else if sa >= 0 then compare_mag a b
  else compare_mag b a

let equal a b = compare a b = 0

let approx_equal ?(rel = 1e-9) a b =
  if a.m = 0. && b.m = 0. then true
  else
    let d = abs (sub a b) in
    let m = if compare_mag a b >= 0 then abs a else abs b in
    compare_mag d (mul_float m rel) <= 0

let log2_10 = Float.log2 10.
let log10_2 = 1. /. log2_10

let log10_abs x =
  if x.m = 0. then neg_infinity
  else Float.log10 (Float.abs x.m) +. (float_of_int x.e *. log10_2)

let to_decimal x =
  if x.m = 0. then (0., 0)
  else
    let l = log10_abs x in
    let k = int_of_float (Float.floor l) in
    let d = Float.exp ((l -. float_of_int k) *. Float.log 10.) in
    (* Guard against boundary rounding pushing d out of [1, 10). *)
    let d, k = if d >= 10. then (d /. 10., k + 1) else (d, k) in
    let d, k = if d < 1. then (d *. 10., k - 1) else (d, k) in
    ((if x.m < 0. then -.d else d), k)

let of_decimal d k =
  if d = 0. then zero
  else
    (* 10^k = 2^(k*log2 10): split into integer exponent and residual. *)
    let p = float_of_int k *. log2_10 in
    let pi = Float.floor p in
    let residual = Float.exp ((p -. pi) *. Float.log 2.) in
    norm (d *. residual) (int_of_float pi)

let to_string x =
  if x.m = 0. then "0.00000e+00"
  else
    let d, k = to_decimal x in
    Printf.sprintf "%.5fe%+03d" d k

let pp ppf x = Format.pp_print_string ppf (to_string x)
