(** Extended-range floating-point numbers.

    A value is represented as [m * 2^e] with the mantissa [m] kept normalised
    in [[0.5, 1)] by magnitude (or exactly [0.]) and an unbounded (OCaml
    [int]) binary exponent.  The type exists because the denormalised
    network-function coefficients of large analog circuits span magnitudes
    such as [1e-522] (Table 3 of the paper), far outside IEEE-double range,
    while still only needing double precision in the mantissa.

    All operations are total; [nan]/[infinite] mantissas are rejected at
    construction by {!of_float} raising [Invalid_argument]. *)

type t = private {
  m : float;  (** normalised mantissa: [0.] or [0.5 <= abs m < 1.] *)
  e : int;    (** binary exponent *)
}

val zero : t
val one : t
val minus_one : t

val of_float : float -> t
(** [of_float x] represents the double [x] exactly.
    @raise Invalid_argument on [nan] or infinite input. *)

val to_float : t -> float
(** Round back to double; overflows to [infinity] and underflows to [0.]
    silently (this is the expected behaviour when feeding in-range values to
    double-precision consumers). *)

val make : m:float -> e:int -> t
(** [make ~m ~e] builds [m * 2^e], renormalising as needed. *)

val is_zero : t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when the divisor is zero. *)

val mul_float : t -> float -> t
val pow_int : t -> int -> t
(** [pow_int x n] for any integer [n] (negative allowed).
    @raise Division_by_zero if [x] is zero and [n < 0]. *)

val float_pow_int : float -> int -> t
(** [float_pow_int f n] computes [f^n] without intermediate overflow or
    underflow; [f] must be positive. *)

val compare_mag : t -> t -> int
(** Compare absolute values. *)

val compare : t -> t -> int
(** Signed comparison. *)

val equal : t -> t -> bool
(** Exact (representation-level) equality of the values. *)

val approx_equal : ?rel:float -> t -> t -> bool
(** [approx_equal ~rel a b] holds when [|a - b| <= rel * max |a| |b|] (also
    when both are zero).  Default [rel] is [1e-9]. *)

val log10_abs : t -> float
(** Decimal magnitude, [log10 |x|]; [neg_infinity] for zero. *)

val to_decimal : t -> float * int
(** [(d, k)] with [x = d * 10^k], [1. <= abs d < 10.] (or [(0., 0)]). *)

val of_decimal : float -> int -> t
(** [of_decimal d k] is [d * 10^k], computed without overflow. *)

val to_string : t -> string
(** Scientific notation with 6 significant digits, e.g. ["-1.12150e-522"]. *)

val pp : Format.formatter -> t -> unit
