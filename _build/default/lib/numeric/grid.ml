let linspace a b n =
  if n < 2 then invalid_arg "Grid.linspace: need at least 2 points";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> if i = n - 1 then b else a +. (float_of_int i *. h))

let logspace a b n =
  if not (a > 0. && b > 0.) then invalid_arg "Grid.logspace: bounds must be positive";
  let la = Float.log10 a and lb = Float.log10 b in
  let g = Array.map (fun l -> Float.exp (l *. Float.log 10.)) (linspace la lb n) in
  (* Pin the endpoints so callers can rely on exact bounds. *)
  g.(0) <- a;
  g.(n - 1) <- b;
  g

let decades ~start ~stop ~per_decade =
  if per_decade < 1 then invalid_arg "Grid.decades: per_decade must be >= 1";
  if not (start > 0. && stop > 0. && stop > start) then
    invalid_arg "Grid.decades: need 0 < start < stop";
  let n_dec = Float.log10 (stop /. start) in
  let n = 1 + int_of_float (Float.ceil (n_dec *. float_of_int per_decade)) in
  logspace start stop (Int.max 2 n)
