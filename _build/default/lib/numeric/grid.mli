(** Sampling grids for frequency sweeps and parameter scans. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] gives [n] equally-spaced points from [a] to [b]
    inclusive. @raise Invalid_argument when [n < 2]. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] gives [n] logarithmically-spaced points from [a] to [b]
    inclusive; [a] and [b] must be positive.
    @raise Invalid_argument when [n < 2] or a bound is not positive. *)

val decades : start:float -> stop:float -> per_decade:int -> float array
(** Log grid with a fixed number of points per decade, like an AC analysis
    card.  Both bounds positive, [per_decade >= 1]. *)
