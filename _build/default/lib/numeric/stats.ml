let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geometric_mean xs =
  require_nonempty "Stats.geometric_mean" xs;
  if List.exists (fun x -> not (x > 0.)) xs then
    invalid_arg "Stats.geometric_mean: non-positive entry";
  let log_sum = List.fold_left (fun acc x -> acc +. Float.log x) 0. xs in
  Float.exp (log_sum /. float_of_int (List.length xs))

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (infinity, neg_infinity) xs

let median xs =
  require_nonempty "Stats.median" xs;
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let spread_decades xs =
  let nz = List.filter_map (fun x -> if x = 0. then None else Some (Float.abs x)) xs in
  match nz with
  | [] | [ _ ] -> 0.
  | _ :: _ :: _ ->
      let lo, hi = min_max nz in
      Float.log10 (hi /. lo)
