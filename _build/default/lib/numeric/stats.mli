(** Basic descriptive statistics on float lists/arrays (used for the scale
    factor heuristics: the paper's first interpolation uses the inverse of
    the {e mean} capacitor and conductance values). *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val geometric_mean : float list -> float
(** All inputs must be positive. @raise Invalid_argument on the empty list or
    non-positive entries. *)

val min_max : float list -> float * float
(** @raise Invalid_argument on the empty list. *)

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val spread_decades : float list -> float
(** [log10 (max / min)] of the absolute values of the non-zero entries; [0.]
    when fewer than two non-zero entries. *)
