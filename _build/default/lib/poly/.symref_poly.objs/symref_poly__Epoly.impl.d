lib/poly/epoly.ml: Array Complex Format Int Poly Symref_numeric
