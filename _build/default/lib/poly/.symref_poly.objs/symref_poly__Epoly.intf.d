lib/poly/epoly.mli: Format Poly Symref_numeric
