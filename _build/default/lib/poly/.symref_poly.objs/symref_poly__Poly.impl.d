lib/poly/poly.ml: Array Complex Float Format Fun Int List Printf String
