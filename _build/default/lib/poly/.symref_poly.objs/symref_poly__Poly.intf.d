lib/poly/poly.mli: Complex Format
