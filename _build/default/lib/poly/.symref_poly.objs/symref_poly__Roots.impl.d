lib/poly/roots.ml: Array Complex Epoly Float List Symref_numeric
