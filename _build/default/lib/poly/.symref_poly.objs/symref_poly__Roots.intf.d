lib/poly/roots.mli: Complex Epoly Poly
