module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex

type t = Ef.t array
(* Invariant: empty, or last element non-zero. *)

let trim a =
  let n = Array.length a in
  let rec last i = if i >= 0 && Ef.is_zero a.(i) then last (i - 1) else i in
  let d = last (n - 1) in
  if d = n - 1 then Array.copy a else Array.sub a 0 (d + 1)

let zero : t = [||]
let of_coeffs a = trim a
let of_floats a = trim (Array.map Ef.of_float a)
let of_poly p = of_floats (Poly.coeffs p)
let coeffs (p : t) = Array.copy p
let coeff (p : t) i = if i < Array.length p then p.(i) else Ef.zero
let degree (p : t) = Array.length p - 1
let is_zero (p : t) = Array.length p = 0

let add (a : t) (b : t) : t =
  let n = Int.max (Array.length a) (Array.length b) in
  trim (Array.init n (fun i -> Ef.add (coeff a i) (coeff b i)))

let neg (p : t) : t = Array.map Ef.neg p
let sub a b = add a (neg b)
let scale k (p : t) : t = trim (Array.map (Ef.mul k) p)

let mul (a : t) (b : t) : t =
  if is_zero a || is_zero b then zero
  else begin
    let r = Array.make (Array.length a + Array.length b - 1) Ef.zero in
    Array.iteri
      (fun i ai ->
        Array.iteri (fun k bk -> r.(i + k) <- Ef.add r.(i + k) (Ef.mul ai bk)) b)
      a;
    trim r
  end

let eval (p : t) (z : Ec.t) =
  let acc = ref Ec.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Ec.add (Ec.mul !acc z) (Ec.of_extfloat p.(i))
  done;
  !acc

let eval_jomega p w = eval p (Ec.of_complex { Complex.re = 0.; im = w })

let scale_var (p : t) a : t =
  let pow = ref Ef.one in
  trim
    (Array.mapi
       (fun i c ->
         if i > 0 then pow := Ef.mul !pow a;
         Ef.mul c !pow)
       p)

let derivative (p : t) : t =
  if Array.length p <= 1 then zero
  else
    trim
      (Array.init (Array.length p - 1) (fun i ->
           Ef.mul_float p.(i + 1) (float_of_int (i + 1))))

let max_abs_coeff (p : t) =
  Array.fold_left
    (fun acc c -> if Ef.compare_mag c acc > 0 then Ef.abs c else acc)
    Ef.zero p

let approx_equal ?(rel = 1e-9) a b =
  degree a = degree b
  && Array.for_all2 (fun x y -> Ef.approx_equal ~rel x y) a b

let to_poly (p : t) = Poly.of_coeffs (Array.map Ef.to_float p)

let pp ppf (p : t) =
  if is_zero p then Format.pp_print_string ppf "0"
  else
    Array.iteri
      (fun i c ->
        if i > 0 then Format.fprintf ppf " + ";
        Format.fprintf ppf "%a*s^%d" Ef.pp c i)
      p
