(** Polynomials with extended-range coefficients ({!Symref_numeric.Extfloat}).

    Network-function coefficients of large circuits span hundreds of decades
    once denormalised; this representation evaluates them safely (Horner in
    extended-range complex arithmetic), which is what the Bode reconstruction
    of Fig. 2 needs. *)

module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex

type t

val zero : t
val of_coeffs : Ef.t array -> t
(** Copies and trims trailing (exact) zeros. *)

val of_floats : float array -> t
val of_poly : Poly.t -> t
val coeffs : t -> Ef.t array
val coeff : t -> int -> Ef.t
val degree : t -> int
(** [-1] for the zero polynomial. *)

val is_zero : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Ef.t -> t -> t
val mul : t -> t -> t

val eval : t -> Ec.t -> Ec.t
(** Horner evaluation at an extended-complex point. *)

val eval_jomega : t -> float -> Ec.t
(** [eval_jomega p w] evaluates at [s = j*w]. *)

val scale_var : t -> Ef.t -> t
(** [scale_var p a]: substitute [s -> a*s] (coefficient [i] gains [a^i]). *)

val derivative : t -> t

val max_abs_coeff : t -> Ef.t
(** Largest coefficient magnitude; zero for the zero polynomial. *)

val approx_equal : ?rel:float -> t -> t -> bool
(** Coefficient-wise relative comparison (default [1e-9]). *)

val to_poly : t -> Poly.t
(** Round coefficients to doubles (may under/overflow individual terms). *)

val pp : Format.formatter -> t -> unit
