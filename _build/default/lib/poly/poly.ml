type t = float array
(* Invariant: empty, or last element non-zero. *)

let trim a =
  let n = Array.length a in
  let rec last i = if i >= 0 && a.(i) = 0. then last (i - 1) else i in
  let d = last (n - 1) in
  if d = n - 1 then Array.copy a else Array.sub a 0 (d + 1)

let zero : t = [||]
let one : t = [| 1. |]
let s : t = [| 0.; 1. |]
let of_coeffs a = trim a
let of_list l = trim (Array.of_list l)
let coeffs (p : t) = Array.copy p
let coeff (p : t) i = if i < Array.length p then p.(i) else 0.
let degree (p : t) = Array.length p - 1
let is_zero (p : t) = Array.length p = 0

let equal ?(rel = 0.) a b =
  degree a = degree b
  && Array.for_all2
       (fun x y -> Float.abs (x -. y) <= rel *. Float.max (Float.abs x) (Float.abs y))
       a b

let add (a : t) (b : t) : t =
  let n = Int.max (Array.length a) (Array.length b) in
  trim (Array.init n (fun i -> coeff a i +. coeff b i))

let neg (p : t) : t = Array.map Float.neg p
let sub a b = add a (neg b)

let mul (a : t) (b : t) : t =
  if is_zero a || is_zero b then zero
  else begin
    let r = Array.make (Array.length a + Array.length b - 1) 0. in
    Array.iteri
      (fun i ai -> Array.iteri (fun k bk -> r.(i + k) <- r.(i + k) +. (ai *. bk)) b)
      a;
    trim r
  end

let scale k (p : t) : t = trim (Array.map (fun c -> k *. c) p)

let mul_monomial (p : t) k : t =
  if k < 0 then invalid_arg "Poly.mul_monomial: negative power";
  if is_zero p then zero
  else Array.append (Array.make k 0.) p

let eval (p : t) x =
  let acc = ref 0. in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_complex (p : t) (z : Complex.t) =
  let acc = ref Complex.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Complex.add (Complex.mul !acc z) { re = p.(i); im = 0. }
  done;
  !acc

let scale_var (p : t) a : t =
  let pow = ref 1. in
  trim
    (Array.mapi
       (fun i c ->
         if i > 0 then pow := !pow *. a;
         c *. !pow)
       p)

let derivative (p : t) : t =
  if Array.length p <= 1 then zero
  else trim (Array.init (Array.length p - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1)))

let of_roots roots =
  List.fold_left (fun acc r -> mul acc (of_list [ -.r; 1. ])) one roots

let to_string ?(var = "s") (p : t) =
  if is_zero p then "0"
  else
    let term i c =
      if c = 0. then None
      else
        Some
          (match i with
          | 0 -> Printf.sprintf "%g" c
          | 1 -> Printf.sprintf "%g*%s" c var
          | _ -> Printf.sprintf "%g*%s^%d" c var i)
    in
    String.concat " + " (List.filter_map Fun.id (List.mapi term (Array.to_list p)))

let pp ppf p = Format.pp_print_string ppf (to_string p)
