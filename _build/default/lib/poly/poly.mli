(** Dense univariate polynomials with [float] coefficients.

    A polynomial is stored as a coefficient array indexed by power:
    [p = c.(0) + c.(1) s + ... + c.(n) s^n].  The representation is kept
    trimmed: the leading coefficient is non-zero (except for the zero
    polynomial, an empty array). *)

type t

val zero : t
val one : t
val s : t
(** The monomial [s]. *)

val of_coeffs : float array -> t
(** Copies and trims the input. *)

val of_list : float list -> t
val coeffs : t -> float array
(** A fresh copy of the trimmed coefficient array. *)

val coeff : t -> int -> float
(** [coeff p i] is the coefficient of [s^i]; [0.] beyond the degree. *)

val degree : t -> int
(** Degree; [-1] for the zero polynomial. *)

val is_zero : t -> bool
val equal : ?rel:float -> t -> t -> bool
(** Coefficient-wise comparison with relative tolerance (default exact). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val mul_monomial : t -> int -> t
(** [mul_monomial p k] is [p * s^k]. *)

val eval : t -> float -> float
(** Horner evaluation at a real point. *)

val eval_complex : t -> Complex.t -> Complex.t
(** Horner evaluation at a complex point. *)

val scale_var : t -> float -> t
(** [scale_var p a] is [s -> p (a * s)]: coefficient [i] multiplied by
    [a^i].  This is the frequency-scaling substitution of eq. (11). *)

val derivative : t -> t
val of_roots : float list -> t
(** Monic polynomial with the given real roots. *)

val to_string : ?var:string -> t -> string
val pp : Format.formatter -> t -> unit
