module Ef = Symref_numeric.Extfloat

type quality = { iterations : int; max_residual : float; converged : bool }

(* Horner evaluation of p and p' at z, double precision. *)
let eval_with_derivative coeffs (z : Complex.t) =
  let n = Array.length coeffs in
  let p = ref Complex.zero and dp = ref Complex.zero in
  for i = n - 1 downto 0 do
    dp := Complex.add (Complex.mul !dp z) !p;
    p := Complex.add (Complex.mul !p z) coeffs.(i)
  done;
  (!p, !dp)

(* Evaluation scale sum |c_i| |z|^i, for relative residuals. *)
let eval_scale coeffs (z : Complex.t) =
  let az = Complex.norm z in
  let acc = ref 0. and pow = ref 1. in
  Array.iter
    (fun (c : Complex.t) ->
      acc := !acc +. (Complex.norm c *. !pow);
      pow := !pow *. az)
    coeffs;
  !acc

let aberth ?(max_iterations = 200) ?(tolerance = 1e-12) (coeffs : Complex.t array) =
  let n = Array.length coeffs - 1 in
  (* Initial guesses: circle of the root-magnitude geometric estimate with an
     irrational angle offset to break symmetry. *)
  let c0 = Complex.norm coeffs.(0) and cn = Complex.norm coeffs.(n) in
  let radius =
    if c0 > 0. && cn > 0. then Float.exp (Float.log (c0 /. cn) /. float_of_int n)
    else 1.
  in
  let z =
    Array.init n (fun k ->
        let t = (2. *. Float.pi *. float_of_int k /. float_of_int n) +. 0.4 in
        { Complex.re = radius *. Float.cos t; im = radius *. Float.sin t })
  in
  let iterations = ref 0 and converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let max_step = ref 0. in
    for k = 0 to n - 1 do
      let p, dp = eval_with_derivative coeffs z.(k) in
      if Complex.norm p > 0. then begin
        let newton = if Complex.norm dp = 0. then p else Complex.div p dp in
        let repulsion = ref Complex.zero in
        for j = 0 to n - 1 do
          if j <> k then begin
            let d = Complex.sub z.(k) z.(j) in
            if Complex.norm d > 0. then
              repulsion := Complex.add !repulsion (Complex.div Complex.one d)
          end
        done;
        let denom = Complex.sub Complex.one (Complex.mul newton !repulsion) in
        let w = if Complex.norm denom = 0. then newton else Complex.div newton denom in
        z.(k) <- Complex.sub z.(k) w;
        let rel = Complex.norm w /. (Complex.norm z.(k) +. radius *. 1e-30 +. 1e-300) in
        if rel > !max_step then max_step := rel
      end
    done;
    if !max_step < tolerance then converged := true
  done;
  let max_residual =
    Array.fold_left
      (fun acc zk ->
        let p, _ = eval_with_derivative coeffs zk in
        let scale = eval_scale coeffs zk in
        if scale = 0. then acc else Float.max acc (Complex.norm p /. scale))
      0. z
  in
  (* Tight root clusters can keep the last-step size flapping around the
     tolerance even though every iterate already sits on a root to machine
     precision; residuals at the round-off floor count as convergence. *)
  let converged = !converged || max_residual < 1e-13 in
  (z, { iterations = !iterations; max_residual; converged })

let find ?max_iterations ?tolerance p =
  let deg = Epoly.degree p in
  if deg < 1 then invalid_arg "Roots.find: degree must be >= 1";
  (* Roots at the origin: trailing structure of the coefficient array. *)
  let coeffs = Epoly.coeffs p in
  let rec zeros_at_origin i = if Ef.is_zero coeffs.(i) then 1 + zeros_at_origin (i + 1) else 0 in
  let m = zeros_at_origin 0 in
  let deg' = deg - m in
  if deg' = 0 then
    (Array.make m Complex.zero, { iterations = 0; max_residual = 0.; converged = true })
  else begin
    (* Exponent balancing: substitute s -> K * t with log10 K the least-squares
       slope of log10 |c_i| over i, then normalise to the largest magnitude. *)
    let logs =
      Array.init (deg' + 1) (fun i -> Ef.log10_abs coeffs.(i + m))
    in
    let slope =
      let sx = ref 0. and sy = ref 0. and sxx = ref 0. and sxy = ref 0. in
      let cnt = ref 0 in
      Array.iteri
        (fun i l ->
          if Float.is_finite l then begin
            let x = float_of_int i in
            sx := !sx +. x;
            sy := !sy +. l;
            sxx := !sxx +. (x *. x);
            sxy := !sxy +. (x *. l);
            incr cnt
          end)
        logs;
      let c = float_of_int !cnt in
      if !cnt < 2 then 0.
      else
        let d = (c *. !sxx) -. (!sx *. !sx) in
        if d = 0. then 0. else ((c *. !sxy) -. (!sx *. !sy)) /. d
    in
    let log_k = -.slope in
    let balanced_logs = Array.mapi (fun i l -> l +. (float_of_int i *. log_k)) logs in
    let top =
      Array.fold_left
        (fun acc l -> if Float.is_finite l then Float.max acc l else acc)
        neg_infinity balanced_logs
    in
    let balanced =
      Array.init (deg' + 1) (fun i ->
          if Ef.is_zero coeffs.(i + m) then Complex.zero
          else
            let mag = Float.exp ((balanced_logs.(i) -. top) *. Float.log 10.) in
            { Complex.re = float_of_int (Ef.sign coeffs.(i + m)) *. mag; im = 0. })
    in
    let roots, q = aberth ?max_iterations ?tolerance balanced in
    (* Undo the substitution: s = K * t. *)
    let k = Float.exp (log_k *. Float.log 10.) in
    let scaled = Array.map (fun (z : Complex.t) -> { Complex.re = k *. z.re; im = k *. z.im }) roots in
    (Array.append (Array.make m Complex.zero) scaled, q)
  end

let find_real ?max_iterations ?tolerance p =
  find ?max_iterations ?tolerance (Epoly.of_poly p)

let conjugate_pairs roots =
  let is_real (z : Complex.t) = Float.abs z.im <= 1e-9 *. (Complex.norm z +. 1e-300) in
  let reals = ref [] and pos = ref [] and neg = ref [] in
  Array.iter
    (fun (z : Complex.t) ->
      if is_real z then reals := z :: !reals
      else if z.im > 0. then pos := z :: !pos
      else neg := z :: !neg)
    roots;
  (* Greedy nearest-match pairing of upper- and lower-half roots. *)
  let pairs = ref [] in
  List.iter
    (fun (p : Complex.t) ->
      match !neg with
      | [] -> reals := p :: !reals
      | _ :: _ ->
          let best =
            List.fold_left
              (fun (bz, bd) (n : Complex.t) ->
                let d = Complex.norm (Complex.sub (Complex.conj p) n) in
                if d < bd then (n, d) else (bz, bd))
              ({ Complex.re = 0.; im = 0. }, infinity)
              !neg
          in
          let n, _ = best in
          neg := List.filter (fun x -> x <> n) !neg;
          pairs := (p, n) :: !pairs)
    !pos;
  List.iter (fun z -> reals := z :: !reals) !neg;
  (List.rev !pairs, List.rev !reals)
