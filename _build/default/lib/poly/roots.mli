(** Polynomial root finding (Aberth-Ehrlich simultaneous iteration).

    Network-function denominators produced by the reference generator have
    coefficients spanning hundreds of decades; the roots — circuit poles —
    are still well-conditioned in relative terms.  The solver therefore
    works on an exponent-balanced copy of the polynomial: each coefficient
    is pre-scaled by a variable substitution [s -> K*s] with [K] chosen from
    the coefficient magnitudes, bringing the working polynomial into double
    range without changing relative root positions (the roots are scaled
    back afterwards). *)

type quality = {
  iterations : int;
  max_residual : float;
      (** max over roots of |p(root)| relative to local evaluation scale *)
  converged : bool;
}

val find : ?max_iterations:int -> ?tolerance:float -> Epoly.t -> Complex.t array * quality
(** [find p] returns all [degree p] complex roots.  [tolerance] (default
    [1e-12]) is the relative step-size convergence criterion;
    [max_iterations] defaults to [200].
    @raise Invalid_argument on the zero polynomial or degree < 1. *)

val find_real : ?max_iterations:int -> ?tolerance:float -> Poly.t -> Complex.t array * quality
(** Same on a double-precision polynomial. *)

val conjugate_pairs : Complex.t array -> (Complex.t * Complex.t) list * Complex.t list
(** Split a real-polynomial root set into conjugate pairs (im > 0
    representative first) and (near-)real singles.  Pairing is by nearest
    conjugate match; roots whose imaginary part is below [1e-9] of their
    magnitude are treated as real. *)
