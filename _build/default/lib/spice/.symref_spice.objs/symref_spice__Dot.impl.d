lib/spice/dot.ml: Buffer List Printf String Symref_circuit Units
