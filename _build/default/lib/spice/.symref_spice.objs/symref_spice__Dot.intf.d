lib/spice/dot.mli: Symref_circuit
