lib/spice/parser.ml: Fun Hashtbl List Option Printf String Symref_circuit Units
