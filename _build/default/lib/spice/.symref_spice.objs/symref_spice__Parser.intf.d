lib/spice/parser.mli: Symref_circuit
