lib/spice/units.ml: Float List Option Printf String
