lib/spice/units.mli:
