lib/spice/writer.ml: Buffer List Printf String Symref_circuit Units
