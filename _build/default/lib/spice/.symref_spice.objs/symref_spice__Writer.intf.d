lib/spice/writer.mli: Symref_circuit
