module N = Symref_circuit.Netlist
module E = Symref_circuit.Element

let quote s = "\"" ^ String.concat "" (String.split_on_char '"' s) ^ "\""

let to_dot circuit =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph circuit {\n";
  Buffer.add_string buf
    (Printf.sprintf "  label=%s;\n  node [shape=circle fontsize=10];\n"
       (quote (N.title circuit)));
  Buffer.add_string buf "  \"0\" [shape=point label=\"gnd\"];\n";
  let node n = quote (N.node_name circuit n) in
  let edge ?(style = "solid") a b label =
    Buffer.add_string buf
      (Printf.sprintf "  %s -- %s [label=%s style=%s];\n" (node a) (node b)
         (quote label) style)
  in
  List.iter
    (fun (e : E.t) ->
      let name = e.E.name in
      let value v = Printf.sprintf "%s=%s" name (Units.format_si v) in
      match e.E.kind with
      | E.Resistor { a; b; ohms } -> edge a b (value ohms)
      | E.Conductance { a; b; siemens } -> edge a b (value siemens)
      | E.Capacitor { a; b; farads } -> edge a b (value farads)
      | E.Inductor { a; b; henries } -> edge a b (value henries)
      | E.Isrc { a; b; amps } -> edge a b (value amps)
      | E.Vsrc { p; m; volts } -> edge p m (value volts)
      | E.Vccs { p; m; cp; cm; gm } ->
          edge p m (value gm);
          edge ~style:"dashed" cp cm (name ^ ".ctrl")
      | E.Vcvs { p; m; cp; cm; gain } ->
          edge p m (value gain);
          edge ~style:"dashed" cp cm (name ^ ".ctrl")
      | E.Cccs { p; m; gain; _ } -> edge p m (value gain)
      | E.Ccvs { p; m; ohms; _ } -> edge p m (value ohms))
    (N.elements circuit);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file path circuit =
  let oc = open_out path in
  output_string oc (to_dot circuit);
  close_out oc
