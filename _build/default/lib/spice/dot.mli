(** Graphviz export of circuit topology: nodes as graph vertices, elements
    as labelled edges (controlled sources additionally show dashed edges
    from their controlling nodes).  Render with [dot -Tsvg] or any Graphviz
    viewer — the quickest way to sanity-check a generated or parsed
    netlist. *)

val to_dot : Symref_circuit.Netlist.t -> string
(** An undirected [graph { ... }] document. *)

val to_file : string -> Symref_circuit.Netlist.t -> unit
