module Netlist = Symref_circuit.Netlist
module Devices = Symref_circuit.Devices

exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type model = Bjt of Devices.bjt | Mos of Devices.mos

let split_fields s =
  String.split_on_char ' ' (String.map (function '\t' | '=' -> ' ' | c -> c) s)
  |> List.filter (fun f -> f <> "")

(* Join '+' continuation lines onto their card, keeping line numbers. *)
let logical_lines raw =
  let rec go acc current = function
    | [] -> List.rev (match current with None -> acc | Some c -> c :: acc)
    | (lineno, line) :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '*' then go acc current rest
        else if trimmed.[0] = '+' then
          match current with
          | None -> fail lineno "continuation line with nothing to continue"
          | Some (n, body) ->
              go acc (Some (n, body ^ " " ^ String.sub trimmed 1 (String.length trimmed - 1))) rest
        else
          let acc = match current with None -> acc | Some c -> c :: acc in
          go acc (Some (lineno, trimmed)) rest
  in
  go [] None raw

(* .model parameter list -> assoc of lowercase name -> value. *)
let parse_params line fields =
  let rec go acc = function
    | [] -> acc
    | name :: value :: rest -> go ((String.lowercase_ascii name, value) :: acc) rest
    | [ name ] -> fail line "parameter %s has no value" name
  in
  go [] fields

let param_value line params name =
  Option.map
    (fun v ->
      match Units.parse v with
      | Some x -> x
      | None -> fail line "parameter %s: bad number %S" name v)
    (List.assoc_opt name params)

let parse_model line fields =
  match fields with
  | name :: kind :: params -> (
      let params = parse_params line params in
      let opt name = param_value line params name in
      let req name =
        match opt name with
        | Some v -> v
        | None -> fail line "model is missing parameter %s" name
      in
      match String.lowercase_ascii kind with
      | "bjtss" ->
          let ic = req "ic" in
          ( String.lowercase_ascii name,
            Bjt
              (Devices.bjt_of_bias
                 ?beta:(opt "beta") ?va:(opt "va") ?tf:(opt "tf")
                 ?cmu:(opt "cmu") ?rb:(opt "rb") ?ccs:(opt "ccs") ~ic ()) )
      | "mosss" ->
          ( String.lowercase_ascii name,
            Mos
              {
                Devices.gm = req "gm";
                gds = req "gds";
                cgs = Option.value ~default:0. (opt "cgs");
                cgd = Option.value ~default:0. (opt "cgd");
                cdb = Option.value ~default:0. (opt "cdb");
                csb = Option.value ~default:0. (opt "csb");
              } )
      | k -> fail line "unknown model kind %s (want bjtss or mosss)" k)
  | _ -> fail line ".model needs a name and a kind"

let value_field line = function
  | [ v ] | [ "dc"; v ] | [ "ac"; v ] -> (
      match Units.parse v with
      | Some x -> x
      | None -> fail line "bad number %S" v)
  | [] -> fail line "missing value"
  | fs -> fail line "unexpected trailing fields: %s" (String.concat " " fs)

let parse_string text =
  (* The first line is always the title (classic SPICE), so a ['+'] on the
     second line is an orphan continuation. *)
  match String.split_on_char '\n' text with
  | [] -> fail 0 "empty netlist"
  | title :: rest ->
      let title = String.trim title in
      if title = "" then fail 1 "missing title line";
      let cards = logical_lines (List.mapi (fun i l -> (i + 2, l)) rest) in
      let b = Netlist.Builder.create ~title () in
      (* First pass: collect .model cards (global) and .subckt bodies. *)
      let models = Hashtbl.create 8 in
      let subckts = Hashtbl.create 4 in
      (* subckt name -> ports, body cards *)
      let toplevel = ref [] in
      let rec scan current = function
        | [] -> (
            match current with
            | None -> ()
            | Some (line, name, _, _) -> fail line ".subckt %s has no .ends" name)
        | (line, card) :: rest -> (
            let fields = split_fields (String.lowercase_ascii card) in
            match (fields, current) with
            | ".model" :: margs, _ ->
                let name, m = parse_model line margs in
                Hashtbl.replace models name m;
                scan current rest
            | ".subckt" :: name :: ports, None ->
                if ports = [] then fail line ".subckt %s has no ports" name;
                scan (Some (line, name, ports, [])) rest
            | ".subckt" :: _, Some _ -> fail line "nested .subckt definitions"
            | [ ".ends" ], Some (_, name, ports, body) ->
                Hashtbl.replace subckts name (ports, List.rev body);
                scan None rest
            | [ ".ends" ], None -> fail line ".ends without .subckt"
            | _, Some (l0, name, ports, body) ->
                scan (Some (l0, name, ports, (line, card) :: body)) rest
            | _, None ->
                toplevel := (line, card) :: !toplevel;
                scan None rest)
      in
      scan None cards;
      let toplevel = List.rev !toplevel in
      let find_model line name =
        match Hashtbl.find_opt models (String.lowercase_ascii name) with
        | Some m -> m
        | None -> fail line "unknown model %s" name
      in
      let ended = ref false in
      (* [translate] maps node names into the current instantiation scope;
         [rename] prefixes element names.  [depth] guards subckt recursion. *)
      let rec process_card ~depth ~translate ~rename (line, card) =
        if not !ended then begin
          let fields = split_fields (String.lowercase_ascii card) in
          try
            match fields with
            | [] -> ()
            | orig :: args -> (
                let name = rename orig in
                let num v =
                  match Units.parse v with
                  | Some x -> x
                  | None -> fail line "bad number %S" v
                in
                let t = translate in
                match (orig.[0], args) with
                | '.', _ -> (
                    match orig with
                    | ".end" -> ended := true
                    | d -> fail line "unsupported directive %s" d)
                | 'r', [ a; b'; v ] ->
                    Netlist.Builder.resistor b name ~a:(t a) ~b:(t b') (num v)
                | 'c', [ a; b'; v ] ->
                    Netlist.Builder.capacitor b name ~a:(t a) ~b:(t b') (num v)
                | 'l', [ a; b'; v ] ->
                    Netlist.Builder.inductor b name ~a:(t a) ~b:(t b') (num v)
                | 'g', [ p; m; cp; cm; v ] ->
                    Netlist.Builder.vccs b name ~p:(t p) ~m:(t m) ~cp:(t cp)
                      ~cm:(t cm) (num v)
                | 'e', [ p; m; cp; cm; v ] ->
                    Netlist.Builder.vcvs b name ~p:(t p) ~m:(t m) ~cp:(t cp)
                      ~cm:(t cm) (num v)
                | 'f', [ p; m; vname; v ] ->
                    Netlist.Builder.cccs b name ~p:(t p) ~m:(t m)
                      ~vname:(rename vname) (num v)
                | 'h', [ p; m; vname; v ] ->
                    Netlist.Builder.ccvs b name ~p:(t p) ~m:(t m)
                      ~vname:(rename vname) (num v)
                | 'v', p :: m :: rest ->
                    Netlist.Builder.vsrc b name ~p:(t p) ~m:(t m)
                      (value_field line rest)
                | 'i', a :: b' :: rest ->
                    Netlist.Builder.isrc b name ~a:(t a) ~b:(t b')
                      (value_field line rest)
                | 'q', [ c; base; e; mname ] -> (
                    match find_model line mname with
                    | Bjt p -> Devices.add_bjt b name ~c:(t c) ~b:(t base) ~e:(t e) p
                    | Mos _ -> fail line "%s: %s is a MOS model" name mname)
                | 'm', [ d; g; s; mname ] -> (
                    match find_model line mname with
                    | Mos p -> Devices.add_mos b name ~d:(t d) ~g:(t g) ~s:(t s) p
                    | Bjt _ -> fail line "%s: %s is a BJT model" name mname)
                | 'x', _ -> (
                    (* xinst n1 .. nN subckt *)
                    if depth > 16 then fail line "subckt nesting too deep";
                    match List.rev args with
                    | [] -> fail line "%s: missing subcircuit name" name
                    | sub :: rev_nodes -> (
                        match Hashtbl.find_opt subckts sub with
                        | None -> fail line "unknown subcircuit %s" sub
                        | Some (ports, body) ->
                            let actuals = List.rev_map t rev_nodes in
                            if List.length actuals <> List.length ports then
                              fail line "%s: %s expects %d ports, got %d" name sub
                                (List.length ports) (List.length actuals);
                            let map = List.combine ports actuals in
                            let translate' n =
                              if n = "0" || n = "gnd" then "0"
                              else
                                match List.assoc_opt n map with
                                | Some actual -> actual
                                | None -> name ^ "." ^ n
                            in
                            let rename' e = name ^ "." ^ e in
                            List.iter
                              (process_card ~depth:(depth + 1)
                                 ~translate:translate' ~rename:rename')
                              body))
                | ('r' | 'c' | 'l' | 'g' | 'e' | 'f' | 'h' | 'q' | 'm'), _ ->
                    fail line "%s: wrong number of fields" orig
                | _ -> fail line "unknown card %s" orig)
          with Invalid_argument m -> fail line "%s" m
        end
      in
      List.iter
        (process_card ~depth:0 ~translate:Fun.id ~rename:Fun.id)
        toplevel;
      (try Netlist.Builder.finish b
       with Invalid_argument m -> fail 0 "%s" m)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
