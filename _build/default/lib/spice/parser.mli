(** SPICE-subset netlist parser.

    Classic conventions: the first line is the title; ['*'] starts a comment
    line; ['+'] continues the previous card; everything is case-insensitive;
    parsing stops at [.end].  Node ["0"] (or ["gnd"]) is ground.

    Supported cards:

    {v
    Rname a b value            resistor
    Cname a b value            capacitor
    Lname a b value            inductor
    Gname p m cp cm gm         VCCS
    Ename p m cp cm gain       VCVS
    Fname p m vsrc gain        CCCS (control current through vsrc)
    Hname p m vsrc ohms        CCVS
    Vname p m [dc|ac] value    independent voltage source (AC magnitude)
    Iname a b [dc|ac] value    independent current source
    Qname c b e model          BJT (small-signal, see .model)
    Mname d g s model          MOSFET (small-signal)
    Xname n1 .. nN subname     subcircuit instance
    .subckt subname p1 .. pN   ... .ends
    .model name bjtss ic=.. [beta=..] [va=..] [tf=..] [cmu=..] [rb=..] [ccs=..]
    .model name mosss gm=.. gds=.. [cgs=..] [cgd=..] [cdb=..] [csb=..]
    .end
    v}

    Subcircuits expand structurally (as in SPICE): instance [x1] of a body
    element [rs] becomes element ["x1.rs"], a local node [m] becomes
    ["x1.m"], and nesting composes names left to right.  [.model] cards are
    global.

    Transistors are expanded on the spot into their hybrid-pi/quasi-static
    models ({!Symref_circuit.Devices}), since the library analyses linear(ised)
    networks — the [.model] cards carry small-signal parameters, not SPICE
    level-1 DC parameters. *)

exception Parse_error of { line : int; message : string }

val parse_string : string -> Symref_circuit.Netlist.t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> Symref_circuit.Netlist.t
(** @raise Parse_error and [Sys_error]. *)
