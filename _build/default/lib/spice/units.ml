let suffixes =
  [
    ("meg", 1e6);
    ("t", 1e12);
    ("g", 1e9);
    ("k", 1e3);
    ("m", 1e-3);
    ("u", 1e-6);
    ("n", 1e-9);
    ("p", 1e-12);
    ("f", 1e-15);
  ]

let parse s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "" then None
  else begin
    (* Longest numeric prefix. *)
    let n = String.length s in
    let is_num_char i c =
      match c with
      | '0' .. '9' | '.' | '+' | '-' -> true
      | 'e' ->
          (* exponent only if followed by digit or sign+digit *)
          i + 1 < n
          && (match s.[i + 1] with
             | '0' .. '9' -> true
             | '+' | '-' -> i + 2 < n && s.[i + 2] >= '0' && s.[i + 2] <= '9'
             | _ -> false)
      | _ -> false
    in
    let rec span i =
      if i < n && is_num_char i s.[i] then
        if s.[i] = 'e' then
          (* consume exponent: e[+-]?digits *)
          let j = if s.[i + 1] = '+' || s.[i + 1] = '-' then i + 2 else i + 1 in
          let rec digits j = if j < n && s.[j] >= '0' && s.[j] <= '9' then digits (j + 1) else j in
          digits j
        else span (i + 1)
      else i
    in
    let stop = span 0 in
    if stop = 0 then None
    else
      match float_of_string_opt (String.sub s 0 stop) with
      | None -> None
      | Some v ->
          let rest = String.sub s stop (n - stop) in
          let mult =
            if rest = "" then Some 1.
            else
              (* "meg" first (otherwise "m" would shadow it). *)
              match
                List.find_opt
                  (fun (suf, _) ->
                    String.length rest >= String.length suf
                    && String.sub rest 0 (String.length suf) = suf)
                  suffixes
              with
              | Some (_, m) -> Some m
              | None ->
                  (* Unknown trailing letters with no suffix: SPICE ignores
                     pure unit annotations like "ohm", "hz", "v", "a", "s". *)
                  if String.for_all (fun c -> c >= 'a' && c <= 'z') rest then Some 1.
                  else None
          in
          Option.map (fun m -> v *. m) mult
  end

let parse_exn s =
  match parse s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Units.parse: cannot read %S as a number" s)

let format_si v =
  if v = 0. then "0"
  else
    let a = Float.abs v in
    let pick =
      [ (1e12, "t"); (1e9, "g"); (1e6, "meg"); (1e3, "k"); (1., "");
        (1e-3, "m"); (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]
    in
    match List.find_opt (fun (m, _) -> a >= m && a < m *. 1e3) pick with
    | Some (m, suf) ->
        let scaled = v /. m in
        (* Up to 6 significant digits without a trailing ".": %g does it. *)
        Printf.sprintf "%g%s" scaled suf
    | None -> Printf.sprintf "%g" v
