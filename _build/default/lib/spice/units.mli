(** SPICE engineering-notation numbers.

    Accepts plain floats plus the classic case-insensitive suffixes
    [t g meg k m u n p f] (e.g. ["2.2k"], ["30p"], ["1meg"]); trailing unit
    letters after the suffix are ignored as in SPICE (["10pF"], ["1kOhm"]). *)

val parse : string -> float option
(** [None] when the string is not a number. *)

val parse_exn : string -> float
(** @raise Failure with a descriptive message. *)

val format_si : float -> string
(** Pretty-print with an engineering suffix: [2200. -> "2.2k"],
    [3e-11 -> "30p"].  Falls back to scientific notation outside the suffix
    range. *)
