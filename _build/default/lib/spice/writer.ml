module Netlist = Symref_circuit.Netlist
module Element = Symref_circuit.Element

(* Card names are type-dispatched on their first letter, so every emitted
   name gets the canonical prefix; pure conductances (no SPICE card; may be
   negative) are written as the electrically identical self-controlled VCCS
   [G p m p m value]. *)
let to_string circuit =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Netlist.title circuit);
  Buffer.add_char buf '\n';
  let node n = Netlist.node_name circuit n in
  let card letter (e : Element.t) body =
    Buffer.add_string buf
      (Printf.sprintf "%c_%s %s\n" letter (String.lowercase_ascii e.Element.name) body)
  in
  List.iter
    (fun (e : Element.t) ->
      match e.Element.kind with
      | Element.Resistor { a; b; ohms } ->
          card 'r' e (Printf.sprintf "%s %s %s" (node a) (node b) (Units.format_si ohms))
      | Element.Conductance { a; b; siemens } ->
          card 'g' e
            (Printf.sprintf "%s %s %s %s %s" (node a) (node b) (node a) (node b)
               (Units.format_si siemens))
      | Element.Capacitor { a; b; farads } ->
          card 'c' e (Printf.sprintf "%s %s %s" (node a) (node b) (Units.format_si farads))
      | Element.Inductor { a; b; henries } ->
          card 'l' e (Printf.sprintf "%s %s %s" (node a) (node b) (Units.format_si henries))
      | Element.Vccs { p; m; cp; cm; gm } ->
          card 'g' e
            (Printf.sprintf "%s %s %s %s %s" (node p) (node m) (node cp) (node cm)
               (Units.format_si gm))
      | Element.Vcvs { p; m; cp; cm; gain } ->
          card 'e' e
            (Printf.sprintf "%s %s %s %s %s" (node p) (node m) (node cp) (node cm)
               (Units.format_si gain))
      | Element.Cccs { p; m; vname; gain } ->
          card 'f' e
            (Printf.sprintf "%s %s v_%s %s" (node p) (node m)
               (String.lowercase_ascii vname) (Units.format_si gain))
      | Element.Ccvs { p; m; vname; ohms } ->
          card 'h' e
            (Printf.sprintf "%s %s v_%s %s" (node p) (node m)
               (String.lowercase_ascii vname) (Units.format_si ohms))
      | Element.Isrc { a; b; amps } ->
          card 'i' e (Printf.sprintf "%s %s ac %s" (node a) (node b) (Units.format_si amps))
      | Element.Vsrc { p; m; volts } ->
          card 'v' e (Printf.sprintf "%s %s ac %s" (node p) (node m) (Units.format_si volts)))
    (Netlist.elements circuit);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let to_file path circuit =
  let oc = open_out path in
  output_string oc (to_string circuit);
  close_out oc
