(** Netlist writer: emits the SPICE-subset text form of a circuit.

    Circuits are stored as expanded primitives, so transistors appear as
    their hybrid-pi / quasi-static elements; the output parses back with
    {!Parser} into an equivalent circuit (same nodes, same element values —
    element name case may differ). *)

val to_string : Symref_circuit.Netlist.t -> string
val to_file : string -> Symref_circuit.Netlist.t -> unit
