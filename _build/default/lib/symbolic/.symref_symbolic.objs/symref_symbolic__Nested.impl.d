lib/symbolic/nested.ml: Complex Hashtbl Int List Option String Sym
