lib/symbolic/nested.mli: Complex Sym
