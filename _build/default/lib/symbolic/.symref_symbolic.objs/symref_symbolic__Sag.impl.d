lib/symbolic/sag.ml: Array Complex Float Hashtbl List Sdet Sym
