lib/symbolic/sag.mli: Sdet
