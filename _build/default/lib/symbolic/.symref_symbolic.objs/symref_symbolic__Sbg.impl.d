lib/symbolic/sbg.ml: Array Complex Float List Symref_circuit Symref_mna
