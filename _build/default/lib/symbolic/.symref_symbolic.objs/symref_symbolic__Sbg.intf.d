lib/symbolic/sbg.mli: Symref_circuit Symref_mna
