lib/symbolic/sdet.ml: Array Hashtbl List Printf Sym Symref_circuit Symref_mna
