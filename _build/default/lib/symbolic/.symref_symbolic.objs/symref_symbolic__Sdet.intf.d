lib/symbolic/sdet.mli: Sym Symref_circuit Symref_mna
