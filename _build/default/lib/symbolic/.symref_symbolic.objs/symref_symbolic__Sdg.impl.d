lib/symbolic/sdg.ml: Array Float List Sym
