lib/symbolic/sdg.mli: Sym
