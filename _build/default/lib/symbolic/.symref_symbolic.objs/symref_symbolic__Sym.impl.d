lib/symbolic/sym.ml: Complex Float Hashtbl Int List Printf String
