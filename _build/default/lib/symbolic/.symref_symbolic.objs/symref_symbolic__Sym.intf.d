lib/symbolic/sym.mli: Complex
