lib/symbolic/tree_terms.ml: Array Float Fun List Printf Seq Sym Symref_circuit Symref_mna
