lib/symbolic/tree_terms.mli: Seq Sym Symref_circuit Symref_mna
