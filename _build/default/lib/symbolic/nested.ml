type t =
  | Term of Sym.term
  | Factor of Sym.symbol * t
  | Sum of t list

(* Remove one occurrence of a symbol from a term (the term is known to
   contain it). *)
let divide_term (term : Sym.term) (s : Sym.symbol) =
  let rec drop = function
    | [] -> assert false
    | x :: tl -> if x = s then tl else x :: drop tl
  in
  match
    Sym.scale term.Sym.coef
      (List.fold_left
         (fun acc sym -> Sym.mul acc (Sym.of_symbol sym))
         (Sym.const 1.)
         (drop term.Sym.symbols))
  with
  | [ t ] -> t
  | [] -> assert false
  | _ -> assert false

let rec nest (e : Sym.expr) =
  match e with
  | [] -> Sum []
  | [ t ] -> Term t
  | _ :: _ :: _ -> (
      (* Most frequent symbol across terms (counted once per term). *)
      let counts = Hashtbl.create 16 in
      List.iter
        (fun (t : Sym.term) ->
          List.sort_uniq compare t.Sym.symbols
          |> List.iter (fun s ->
                 Hashtbl.replace counts s
                   (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))))
        e;
      let best =
        Hashtbl.fold
          (fun s c acc ->
            match acc with Some (_, bc) when bc >= c -> acc | _ -> Some (s, c))
          counts None
      in
      match best with
      | Some (s, c) when c >= 2 ->
          let with_s, without =
            List.partition (fun (t : Sym.term) -> List.mem s t.Sym.symbols) e
          in
          let quotient = List.map (fun t -> divide_term t s) with_s in
          let factored = Factor (s, nest quotient) in
          if without = [] then factored else Sum [ factored; nest without ]
      | _ -> Sum (List.map (fun t -> Term t) e))

let term_value_at (t : Sym.term) (s : Complex.t) =
  let rec pow acc k = if k = 0 then acc else pow (Complex.mul acc s) (k - 1) in
  Complex.mul (pow Complex.one (Sym.s_power t)) { re = Sym.term_value t; im = 0. }

let symbol_value_at (sym : Sym.symbol) (s : Complex.t) =
  match sym.Sym.kind with
  | Sym.Conductance -> { Complex.re = sym.Sym.value; im = 0. }
  | Sym.Capacitance -> Complex.mul s { re = sym.Sym.value; im = 0. }

let rec eval t s =
  match t with
  | Term term -> term_value_at term s
  | Factor (sym, rest) -> Complex.mul (symbol_value_at sym s) (eval rest s)
  | Sum parts -> List.fold_left (fun acc p -> Complex.add acc (eval p s)) Complex.zero parts

let rec operations = function
  | Term term ->
      (* One multiplication per symbol beyond the first (the coefficient is
         folded into the constant). *)
      Int.max 0 (List.length term.Sym.symbols - 1)
  | Factor (_, rest) -> 1 + operations rest
  | Sum parts ->
      List.fold_left (fun acc p -> acc + operations p) 0 parts
      + Int.max 0 (List.length parts - 1)

let expanded_operations (e : Sym.expr) =
  List.fold_left
    (fun acc (t : Sym.term) -> acc + Int.max 0 (List.length t.Sym.symbols - 1))
    0 e
  + Int.max 0 (List.length e - 1)

let rec to_string = function
  | Term term -> Sym.term_to_string term
  | Factor (sym, rest) -> (
      let inner = to_string rest in
      match rest with
      | Term _ | Factor _ -> sym.Sym.name ^ "*" ^ inner
      | Sum _ -> sym.Sym.name ^ "*(" ^ inner ^ ")")
  | Sum parts -> String.concat " + " (List.map to_string parts)
