(** Nested-form compaction of symbolic expressions.

    The paper's introduction motivates simplification with two consumers:
    "formula interpretation by human designers and computer manipulation for
    repetitive evaluations".  Both benefit from factoring the flat
    sum-of-products into a nested form (the sequence-of-expressions idea):
    recursively pulling out the symbol that occurs in the most terms
    shortens the formula and cuts the operation count, without changing its
    value. *)

type t =
  | Term of Sym.term           (** a leaf product *)
  | Factor of Sym.symbol * t   (** [symbol * t] *)
  | Sum of t list

val nest : Sym.expr -> t
(** Greedy most-frequent-symbol factoring.  [nest []] is [Sum []]. *)

val eval : t -> Complex.t -> Complex.t
(** Same value as {!Sym.eval} on the original expression (capacitance
    symbols carry their [s] factor). *)

val operations : t -> int
(** Multiplications plus additions needed to evaluate the nested form. *)

val expanded_operations : Sym.expr -> int
(** The same count for the flat sum-of-products. *)

val to_string : t -> string
