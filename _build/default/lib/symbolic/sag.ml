type report = {
  total_terms : int;
  kept_terms : int;
  dropped : int;
  max_error : float;
}

type side = Num | Den

(* Value of one term at jw (term_value * (jw)^power). *)
let term_at (t : Sym.term) (s : Complex.t) =
  let rec pow acc k = if k = 0 then acc else pow (Complex.mul acc s) (k - 1) in
  Complex.mul (pow Complex.one (Sym.s_power t)) { re = Sym.term_value t; im = 0. }

let simplify ~epsilon ~freqs (nf : Sdet.network_function) =
  if Array.length freqs = 0 then invalid_arg "Sag.simplify: empty grid";
  let points =
    Array.map (fun f -> { Complex.re = 0.; im = 2. *. Float.pi *. f }) freqs
  in
  let eval_expr e = Array.map (Sym.eval e) points in
  let num_vals = eval_expr nf.Sdet.num and den_vals = eval_expr nf.Sdet.den in
  Array.iter
    (fun (d : Complex.t) ->
      if Complex.norm d = 0. then
        invalid_arg "Sag.simplify: denominator vanishes on the grid")
    den_vals;
  let h0 = Array.map2 Complex.div num_vals den_vals in
  (* Candidate list over both sides, cheapest contribution first. *)
  let contribution side t =
    let vals = match side with Num -> num_vals | Den -> den_vals in
    let worst = ref 0. in
    Array.iteri
      (fun i p ->
        let v = Complex.norm vals.(i) in
        let c = if v = 0. then infinity else Complex.norm (term_at t p) /. v in
        if c > !worst then worst := c)
      points;
    !worst
  in
  let candidates =
    List.map (fun t -> (Num, t, contribution Num t)) nf.Sdet.num
    @ List.map (fun t -> (Den, t, contribution Den t)) nf.Sdet.den
  in
  let candidates =
    List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) candidates
  in
  let error () =
    let worst = ref 0. in
    Array.iteri
      (fun i (d : Complex.t) ->
        let h =
          if Complex.norm d = 0. then { Complex.re = infinity; im = 0. }
          else Complex.div num_vals.(i) d
        in
        let e = Complex.norm (Complex.sub h h0.(i)) /. Complex.norm h0.(i) in
        if e > !worst then worst := e)
      den_vals;
    !worst
  in
  let dropped_num = Hashtbl.create 64 and dropped_den = Hashtbl.create 64 in
  let dropped = ref 0 in
  List.iter
    (fun (side, t, _) ->
      let vals = match side with Num -> num_vals | Den -> den_vals in
      (* Tentatively remove the term's contribution. *)
      Array.iteri
        (fun i p -> vals.(i) <- Complex.sub vals.(i) (term_at t p))
        points;
      if error () <= epsilon then begin
        incr dropped;
        let tbl = match side with Num -> dropped_num | Den -> dropped_den in
        Hashtbl.replace tbl (Sym.term_to_string t) ()
      end
      else
        (* Revert. *)
        Array.iteri
          (fun i p -> vals.(i) <- Complex.add vals.(i) (term_at t p))
          points)
    candidates;
  let keep tbl e =
    List.filter (fun t -> not (Hashtbl.mem tbl (Sym.term_to_string t))) e
  in
  let simplified =
    { Sdet.num = keep dropped_num nf.Sdet.num; den = keep dropped_den nf.Sdet.den }
  in
  let total_terms = Sym.term_count nf.Sdet.num + Sym.term_count nf.Sdet.den in
  ( simplified,
    {
      total_terms;
      kept_terms = total_terms - !dropped;
      dropped = !dropped;
      max_error = error ();
    } )
