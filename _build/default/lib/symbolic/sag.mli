(** Simplification After Generation — the classical technique the paper's
    introduction starts from: generate the complete symbolic expression,
    then discard insignificant terms.

    Error control here is on the {e function}, not per coefficient: a term
    may be dropped as long as the simplified [H(jw) = N'(jw)/D'(jw)] stays
    within a relative tolerance of the full expression over a frequency
    grid.  Terms are tried in increasing order of their worst-case relative
    contribution, with incremental re-evaluation, so the whole pass is
    [O(terms * frequencies)].

    SAG needs the complete expression first, which is exactly why it only
    works "below about 50 symbols" (paper §1) — the expression here comes
    from {!Sdet}, which enforces that limit structurally. *)

type report = {
  total_terms : int;
  kept_terms : int;
  dropped : int;
  max_error : float;  (** worst relative |H' - H| / |H| over the grid *)
}

val simplify :
  epsilon:float ->
  freqs:float array ->
  Sdet.network_function ->
  Sdet.network_function * report
(** [simplify ~epsilon ~freqs nf] prunes numerator and denominator terms
    jointly under the function-level error bound [epsilon].
    @raise Invalid_argument on an empty frequency grid or a [den] that
    evaluates to zero somewhere on it. *)
