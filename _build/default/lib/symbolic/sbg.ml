module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal

type config = {
  tolerance_db : float;
  tolerance_deg : float;
  removable : Element.t -> bool;
}

let default_removable (e : Element.t) =
  match e.Element.kind with
  | Element.Conductance _ | Element.Resistor _ | Element.Capacitor _ -> true
  | Element.Vccs _ | Element.Isrc _ | Element.Inductor _ | Element.Vcvs _
  | Element.Cccs _ | Element.Ccvs _ | Element.Vsrc _ ->
      false

let default_config =
  { tolerance_db = 0.5; tolerance_deg = 5.; removable = default_removable }

type outcome = {
  pruned : Netlist.t;
  removed : string list;
  error_db : float;
  error_deg : float;
  candidates : int;
  trials : int;
}

(* Frequency response through the nodal evaluator; None when the pruned
   network is singular/unsupported at some point. *)
let response circuit ~input ~output freqs =
  match Nodal.make circuit ~input ~output with
  | exception Nodal.Unsupported _ -> None
  | problem ->
      let values =
        Array.map
          (fun f ->
            Nodal.eval problem { Complex.re = 0.; im = 2. *. Float.pi *. f })
          freqs
      in
      if Array.exists (fun v -> v.Nodal.singular) values then None
      else Some (Array.map (fun v -> v.Nodal.h) values)

let deviation reference h =
  let ddb = ref 0. and ddeg = ref 0. in
  Array.iteri
    (fun i (r : Complex.t) ->
      let v : Complex.t = h.(i) in
      let mr = Complex.norm r and mv = Complex.norm v in
      if mr = 0. || mv = 0. then begin
        if mr <> mv then ddb := infinity
      end
      else begin
        ddb := Float.max !ddb (Float.abs (20. *. Float.log10 (mv /. mr)));
        let dphase = Float.abs (Complex.arg (Complex.div v r)) *. 180. /. Float.pi in
        ddeg := Float.max !ddeg dphase
      end)
    reference;
  (!ddb, !ddeg)

let prune ?(config = default_config) circuit ~input ~output ~freqs =
  let reference =
    match response circuit ~input ~output freqs with
    | Some h -> h
    | None -> invalid_arg "Sbg.prune: the full circuit itself is singular"
  in
  let candidates =
    List.filter config.removable (Netlist.elements circuit)
  in
  let trials = ref 0 in
  (* Cheap impact estimate: deviation when the element alone is removed. *)
  let impact (e : Element.t) =
    incr trials;
    match response (Netlist.remove_element circuit e.Element.name) ~input ~output freqs with
    | None -> infinity
    | Some h ->
        let ddb, ddeg = deviation reference h in
        (ddb /. config.tolerance_db) +. (ddeg /. config.tolerance_deg)
  in
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> Float.compare a b)
      (List.map (fun e -> (e, impact e)) candidates)
  in
  let current = ref circuit and removed = ref [] in
  let err_db = ref 0. and err_deg = ref 0. in
  List.iter
    (fun ((e : Element.t), est) ->
      if Float.is_finite est then begin
        incr trials;
        let candidate = Netlist.remove_element !current e.Element.name in
        match response candidate ~input ~output freqs with
        | None -> ()
        | Some h ->
            let ddb, ddeg = deviation reference h in
            if ddb <= config.tolerance_db && ddeg <= config.tolerance_deg then begin
              current := candidate;
              removed := e.Element.name :: !removed;
              err_db := ddb;
              err_deg := ddeg
            end
      end)
    ranked;
  {
    pruned = !current;
    removed = List.rev !removed;
    error_db = !err_db;
    error_deg = !err_deg;
    candidates = List.length candidates;
    trials = !trials;
  }
