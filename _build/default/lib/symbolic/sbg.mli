(** Simplification Before Generation: prune circuit elements whose
    contribution to the network function is negligible, so the reduced
    circuit is much easier to analyse symbolically (paper §1).

    Error control compares the frequency response of the pruned circuit
    against the response of the complete circuit — exactly the comparison
    that needs the numerical reference machinery for large circuits. *)

type config = {
  tolerance_db : float;     (** maximum magnitude deviation (default 0.5 dB) *)
  tolerance_deg : float;    (** maximum phase deviation (default 5 degrees) *)
  removable : Symref_circuit.Element.t -> bool;
      (** candidate filter (default: conductances, resistors, capacitors) *)
}

val default_config : config

type outcome = {
  pruned : Symref_circuit.Netlist.t;
  removed : string list;       (** element names, in removal order *)
  error_db : float;            (** final worst-case magnitude deviation *)
  error_deg : float;
  candidates : int;            (** elements considered *)
  trials : int;                (** pruning attempts performed *)
}

val prune :
  ?config:config ->
  Symref_circuit.Netlist.t ->
  input:Symref_mna.Nodal.input ->
  output:Symref_mna.Nodal.output ->
  freqs:float array ->
  outcome
(** Greedy pruning: elements are tried in increasing order of a cheap
    impact estimate (response change when the element alone is removed) and
    removed while the cumulative deviation from the {e original} response
    stays inside tolerance.  Elements whose removal makes the network
    singular or unsolvable are kept. *)
