module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal

let max_dimension = 16

(* Minor expansion row by row, memoised on the set of still-available
   columns (the row index is implied by its cardinality). *)
let determinant m =
  let n = Array.length m in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Sdet.determinant: not square")
    m;
  if n > max_dimension then
    invalid_arg
      (Printf.sprintf "Sdet.determinant: %dx%d exceeds the symbolic limit (%d)" n n
         max_dimension);
  if n = 0 then Sym.const 1.
  else begin
    let memo = Hashtbl.create 256 in
    let full_mask = (1 lsl n) - 1 in
    let rec go i mask =
      if i = n then Sym.const 1.
      else
        match Hashtbl.find_opt memo mask with
        | Some e -> e
        | None ->
            let acc = ref Sym.zero in
            let pos = ref 0 in
            for j = 0 to n - 1 do
              if mask land (1 lsl j) <> 0 then begin
                if not (Sym.is_zero m.(i).(j)) then begin
                  let minor = go (i + 1) (mask lxor (1 lsl j)) in
                  let signed =
                    if !pos mod 2 = 0 then m.(i).(j) else Sym.neg m.(i).(j)
                  in
                  acc := Sym.add !acc (Sym.mul signed minor)
                end;
                incr pos
              end
            done;
            Hashtbl.replace memo mask !acc;
            !acc
    in
    go 0 full_mask
  end

type network_function = { num : Sym.expr; den : Sym.expr }

let network_function circuit ~input ~output =
  let plan = Nodal.plan (Nodal.make circuit ~input ~output) in
  let dim = plan.Nodal.plan_dim in
  if dim > max_dimension then
    invalid_arg
      (Printf.sprintf "Sdet.network_function: %d nodes exceed the symbolic limit (%d)"
         dim max_dimension);
  let matrix = Array.make_matrix dim dim Sym.zero in
  let rhs = Array.make dim Sym.zero in
  let entry row col e =
    match plan.Nodal.roles.(row) with
    | Nodal.Ground | Nodal.Driven _ -> ()
    | Nodal.Free r -> (
        match plan.Nodal.roles.(col) with
        | Nodal.Ground -> ()
        | Nodal.Driven d -> rhs.(r) <- Sym.add rhs.(r) (Sym.scale (-.d) e)
        | Nodal.Free c -> matrix.(r).(c) <- Sym.add matrix.(r).(c) e)
  in
  let admittance a b e =
    entry a a e;
    entry b b e;
    let ne = Sym.neg e in
    entry a b ne;
    entry b a ne
  in
  let transconductance p m cp cm e =
    let ne = Sym.neg e in
    entry p cp e;
    entry p cm ne;
    entry m cp ne;
    entry m cm e
  in
  let inject n amps =
    match plan.Nodal.roles.(n) with
    | Nodal.Ground | Nodal.Driven _ -> ()
    | Nodal.Free r -> rhs.(r) <- Sym.add rhs.(r) (Sym.const amps)
  in
  List.iter
    (fun (e : Element.t) ->
      let name = e.Element.name in
      match e.Element.kind with
      | Element.Conductance { a; b; siemens } ->
          admittance a b (Sym.of_symbol (Sym.symbol ~name ~value:siemens Sym.Conductance))
      | Element.Resistor { a; b; ohms } ->
          admittance a b
            (Sym.of_symbol (Sym.symbol ~name ~value:(1. /. ohms) Sym.Conductance))
      | Element.Capacitor { a; b; farads } ->
          admittance a b (Sym.of_symbol (Sym.symbol ~name ~value:farads Sym.Capacitance))
      | Element.Vccs { p; m; cp; cm; gm } ->
          transconductance p m cp cm
            (Sym.of_symbol (Sym.symbol ~name ~value:gm Sym.Conductance))
      | Element.Isrc { a; b; amps } ->
          inject a (-.amps);
          inject b amps
      | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _
      | Element.Vsrc _ ->
          assert false (* excluded by Nodal.make *))
    (Netlist.elements plan.Nodal.reduced_circuit);
  List.iter (fun (r, v) -> rhs.(r) <- Sym.add rhs.(r) (Sym.const v)) plan.Nodal.plan_injections;
  let den = determinant matrix in
  let cramer = function
    | None -> Sym.zero
    | Some col ->
        let replaced =
          Array.mapi
            (fun r row -> Array.mapi (fun c e -> if c = col then rhs.(r) else e) row)
            matrix
        in
        determinant replaced
  in
  let num = Sym.add (cramer plan.Nodal.plan_out_p) (Sym.neg (cramer plan.Nodal.plan_out_m)) in
  { num; den }
