(** Exact symbolic network functions of small nodal circuits.

    Expands the reduced nodal determinant symbolically (minor expansion with
    memoisation over column subsets) — exponential in general, so guarded to
    matrices up to 16x16.  This is the "complete expression" that SAG-era
    tools manipulate and that SDG avoids building for large circuits; here it
    serves as the ground truth that validates the numerical references on
    small circuits and feeds the SDG demonstration. *)

val max_dimension : int
(** 16. *)

val determinant : Sym.expr array array -> Sym.expr
(** @raise Invalid_argument when not square or larger than
    {!max_dimension}. *)

type network_function = { num : Sym.expr; den : Sym.expr }

val network_function :
  Symref_circuit.Netlist.t ->
  input:Symref_mna.Nodal.input ->
  output:Symref_mna.Nodal.output ->
  network_function
(** Symbolic [H = num/den] with the same input/output conventions — and the
    same reduced-matrix construction — as the numerical evaluator, so the
    symbolic coefficients line up one-for-one with the references.
    @raise Symref_mna.Nodal.Unsupported outside the nodal class.
    @raise Invalid_argument when the reduced matrix exceeds
    {!max_dimension}. *)
