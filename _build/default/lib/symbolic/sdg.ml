type coefficient_report = {
  power : int;
  total_terms : int;
  kept_terms : int;
  reference : float;
  truncated_value : float;
  achieved_error : float;
}

(* Largest-magnitude first: the generation order of the SDG literature. *)
let sort_terms terms =
  List.sort
    (fun a b -> Float.compare (Float.abs (Sym.term_value b)) (Float.abs (Sym.term_value a)))
    terms

let simplify_coefficient ~epsilon ~reference terms =
  let power = match terms with [] -> 0 | t :: _ -> Sym.s_power t in
  let total_terms = List.length terms in
  if reference = 0. then
    ( [],
      {
        power;
        total_terms;
        kept_terms = 0;
        reference;
        truncated_value = 0.;
        achieved_error = 0.;
      } )
  else begin
    let sorted = sort_terms terms in
    let rec keep acc sum = function
      | [] -> (List.rev acc, sum)
      | t :: rest ->
          let sum = sum +. Sym.term_value t in
          let acc = t :: acc in
          if Float.abs (reference -. sum) <= epsilon *. Float.abs reference then
            (List.rev acc, sum)
          else keep acc sum rest
    in
    let kept, sum = keep [] 0. sorted in
    ( kept,
      {
        power;
        total_terms;
        kept_terms = List.length kept;
        reference;
        truncated_value = sum;
        achieved_error =
          (if reference = 0. then 0. else Float.abs (reference -. sum) /. Float.abs reference);
      } )
  end

type report = {
  coefficients : coefficient_report list;
  total_terms : int;
  kept_terms : int;
}

let simplify ~epsilon ~references expr =
  let top = Sym.max_s_power expr in
  let kept_terms = ref [] and reports = ref [] in
  for k = 0 to top do
    let reference = if k < Array.length references then references.(k) else 0. in
    let kept, rep = simplify_coefficient ~epsilon ~reference (Sym.coefficient expr k) in
    kept_terms := !kept_terms @ kept;
    reports := { rep with power = k } :: !reports
  done;
  let coefficients = List.rev !reports in
  let simplified = List.fold_left (fun acc t -> Sym.add acc [ t ]) Sym.zero !kept_terms in
  ( simplified,
    {
      coefficients;
      total_terms = Sym.term_count expr;
      kept_terms = List.length !kept_terms;
    } )
