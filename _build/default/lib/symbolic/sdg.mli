(** Simplification During Generation: keep only the most significant terms
    of each coefficient, under the reference-based error control of paper
    eq. (3):

    [ |h_k(x0) - sum_of_kept_terms| <= eps_k * |h_k(x0)| ]

    where [h_k(x0)] is the numerical reference.  Terms are generated largest
    magnitude first (the premise of refs. [2]-[4]). *)

type coefficient_report = {
  power : int;
  total_terms : int;
  kept_terms : int;
  reference : float;       (** the numerical reference [h_k(x0)] used *)
  truncated_value : float; (** value of the kept terms *)
  achieved_error : float;  (** relative error vs the reference *)
}

val simplify_coefficient :
  epsilon:float -> reference:float -> Sym.term list -> Sym.term list * coefficient_report
(** Terms of one coefficient, sorted and truncated.  When [reference] is
    [0.] every term is dropped. *)

type report = {
  coefficients : coefficient_report list;  (** by power of [s], ascending *)
  total_terms : int;
  kept_terms : int;
}

val simplify :
  epsilon:float -> references:float array -> Sym.expr -> Sym.expr * report
(** Simplify a whole polynomial expression; [references.(k)] is the
    reference for the coefficient of [s^k] (e.g. from
    {!Symref_core.Adaptive}).  Powers beyond the array are dropped with a
    zero reference. *)
