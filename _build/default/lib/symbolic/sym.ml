type kind = Conductance | Capacitance

type symbol = { name : string; value : float; kind : kind }

let symbol ~name ~value kind =
  if name = "" then invalid_arg "Sym.symbol: empty name";
  if not (Float.is_finite value) then invalid_arg "Sym.symbol: non-finite value";
  { name; value; kind }

type term = { coef : float; symbols : symbol list }
type expr = term list

let s_power t =
  List.length (List.filter (fun s -> s.kind = Capacitance) t.symbols)

let term_value t = List.fold_left (fun acc s -> acc *. s.value) t.coef t.symbols

let term_key t =
  String.concat "*" (List.map (fun s -> s.name) t.symbols)

(* Normal form: combine like terms (same symbol multiset), drop zeros, order
   by (s-power, key) so printing and comparison are deterministic. *)
let normalize terms =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let key = term_key t in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key t
      | Some u -> Hashtbl.replace tbl key { u with coef = u.coef +. t.coef })
    terms;
  Hashtbl.fold (fun _ t acc -> if t.coef = 0. then acc else t :: acc) tbl []
  |> List.sort (fun a b ->
         match Int.compare (s_power a) (s_power b) with
         | 0 -> String.compare (term_key a) (term_key b)
         | c -> c)

let zero : expr = []
let const c : expr = if c = 0. then [] else [ { coef = c; symbols = [] } ]
let of_symbol s : expr = [ { coef = 1.; symbols = [ s ] } ]
let neg (e : expr) : expr = List.map (fun t -> { t with coef = -.t.coef }) e
let add (a : expr) (b : expr) : expr = normalize (a @ b)

let mul_term a b =
  {
    coef = a.coef *. b.coef;
    symbols = List.sort (fun x y -> String.compare x.name y.name) (a.symbols @ b.symbols);
  }

let mul (a : expr) (b : expr) : expr =
  normalize (List.concat_map (fun ta -> List.map (mul_term ta) b) a)

let scale k (e : expr) : expr =
  if k = 0. then [] else List.map (fun t -> { t with coef = k *. t.coef }) e

let is_zero (e : expr) = e = []
let term_count (e : expr) = List.length e

let term_to_string t =
  let syms = if t.symbols = [] then "1" else term_key t in
  let p = s_power t in
  let s_part = if p = 0 then "" else if p = 1 then "*s" else Printf.sprintf "*s^%d" p in
  if t.coef = 1. then syms ^ s_part
  else if t.coef = -1. then "-" ^ syms ^ s_part
  else Printf.sprintf "%g*%s%s" t.coef syms s_part

let coefficient (e : expr) k = List.filter (fun t -> s_power t = k) e

let max_s_power (e : expr) = List.fold_left (fun acc t -> Int.max acc (s_power t)) (-1) e

let eval (e : expr) (s : Complex.t) =
  List.fold_left
    (fun acc t ->
      let sk =
        let rec pow acc k = if k = 0 then acc else pow (Complex.mul acc s) (k - 1) in
        pow Complex.one (s_power t)
      in
      Complex.add acc (Complex.mul sk { re = term_value t; im = 0. }))
    Complex.zero e

let to_string (e : expr) =
  if e = [] then "0"
  else
    String.concat " + " (List.map term_to_string e)
