(** Symbolic admittance expressions.

    Every nodal-class element contributes symbols of two dimensions:
    conductances (G, 1/R, gm) and capacitances (appearing as [s*C]); network
    functions are sums of signed products of such symbols (paper §2.2:
    "each symbolic term is given by a product of admittances:
    transconductances and capacitors").  Each symbol carries its design-point
    value so terms can be ranked by magnitude, which is what SDG needs. *)

type kind = Conductance | Capacitance

type symbol = private {
  name : string;   (** element name, e.g. ["m1.gm"] *)
  value : float;   (** design-point value *)
  kind : kind;
}

val symbol : name:string -> value:float -> kind -> symbol
(** @raise Invalid_argument on empty name or non-finite value. *)

type term = private {
  coef : float;           (** signed multiplicity (integer-valued in exact
                              determinants, fractional after drive scaling) *)
  symbols : symbol list;  (** sorted by name: a product *)
}

type expr = term list
(** A sum of terms, kept normalised: like terms combined, zero coefficients
    dropped, sorted by (s-power, key). *)

val zero : expr
val const : float -> expr
val of_symbol : symbol -> expr
val neg : expr -> expr
val add : expr -> expr -> expr
val mul : expr -> expr -> expr
val scale : float -> expr -> expr
val is_zero : expr -> bool
val term_count : expr -> int

val s_power : term -> int
(** Number of capacitance symbols in the term = its power of [s]. *)

val term_value : term -> float
(** Design-point value of the term (without the [s^k] factor). *)

val term_to_string : term -> string

val coefficient : expr -> int -> term list
(** [coefficient e k] is the list of terms of [s^k]. *)

val max_s_power : expr -> int
(** [-1] for zero. *)

val eval : expr -> Complex.t -> Complex.t
(** Numeric value at a complex frequency, design-point symbol values. *)

val to_string : expr -> string
