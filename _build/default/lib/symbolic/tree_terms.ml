module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal

exception Unsupported of string

(* --- graph extraction ------------------------------------------------- *)

type edge = {
  id : int;
  vu : int;  (* voltage-graph endpoints; 0 = reference *)
  vv : int;
  iu : int;  (* current-graph endpoints (same as vu/vv for passives) *)
  iv : int;
  symbol : Sym.symbol;
  log_w : float;  (* log |value|, the Kruskal key *)
}

(* The denominator does not depend on the chosen output; pick any free node
   so Nodal.make accepts the problem and exposes its reduction plan. *)
let plan_of circuit ~input =
  let n = Netlist.node_count circuit in
  let rec try_node i =
    if i > n then raise (Unsupported "no free node available")
    else
      match
        Nodal.make circuit ~input ~output:(Nodal.Out_node (Netlist.node_name circuit i))
      with
      | problem -> Nodal.plan problem
      | exception Nodal.Unsupported m ->
          if i = n then raise (Unsupported m) else try_node (i + 1)
  in
  try_node 1

let graph_of circuit ~input =
  let plan = plan_of circuit ~input in
  let vertex node =
    match plan.Nodal.roles.(node) with
    | Nodal.Ground | Nodal.Driven _ -> 0
    | Nodal.Free i -> i + 1
  in
  let next = ref 0 in
  let edges =
    List.filter_map
      (fun (e : Element.t) ->
        (* Current edge (iu -> iv) and voltage edge (vu -> vv); orientation
           [+1] at the first node matches the VCCS stamp convention, so the
           Binet-Cauchy signs come out right. *)
        let mk (ia, ib) (va, vb) value kind =
          let iu = vertex ia and iv = vertex ib in
          let vu = vertex va and vv = vertex vb in
          if iu = iv || vu = vv then None (* shorted to the reference: no effect *)
          else begin
            let symbol = Sym.symbol ~name:e.Element.name ~value kind in
            let id = !next in
            incr next;
            Some { id; vu; vv; iu; iv; symbol; log_w = Float.log (Float.abs value) }
          end
        in
        match e.Element.kind with
        | Element.Conductance { a; b; siemens } ->
            mk (a, b) (a, b) siemens Sym.Conductance
        | Element.Resistor { a; b; ohms } -> mk (a, b) (a, b) (1. /. ohms) Sym.Conductance
        | Element.Capacitor { a; b; farads } -> mk (a, b) (a, b) farads Sym.Capacitance
        | Element.Vccs { p; m; cp; cm; gm } -> mk (p, m) (cp, cm) gm Sym.Conductance
        | Element.Isrc _ -> None
        | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _
        | Element.Vsrc _ ->
            raise
              (Unsupported
                 (Printf.sprintf "element %s is outside the G/R/C/VCCS class"
                    e.Element.name)))
      (Netlist.elements plan.Nodal.reduced_circuit)
  in
  (plan.Nodal.plan_dim + 1, edges)

(* --- union-find -------------------------------------------------------- *)

type uf = { parent : int array; rank : int array }

let uf_create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

let rec uf_find u i =
  let p = u.parent.(i) in
  if p = i then i
  else begin
    let r = uf_find u p in
    u.parent.(i) <- r;
    r
  end

let uf_union u a b =
  let ra = uf_find u a and rb = uf_find u b in
  if ra = rb then false
  else begin
    if u.rank.(ra) < u.rank.(rb) then u.parent.(ra) <- rb
    else if u.rank.(ra) > u.rank.(rb) then u.parent.(rb) <- ra
    else begin
      u.parent.(rb) <- ra;
      u.rank.(ra) <- u.rank.(ra) + 1
    end;
    true
  end

(* Constrained maximum spanning tree: edges in [included] forced, edges in
   [excluded] forbidden, remainder greedily by decreasing weight.  Returns
   the tree's edge list (including the forced ones) or None. *)
let constrained_mst ~vertices ~sorted_edges ~included ~excluded =
  let uf = uf_create vertices in
  let chosen = ref [] in
  let count = ref 0 in
  let ok =
    List.for_all
      (fun e ->
        if uf_union uf e.vu e.vv then begin
          chosen := e :: !chosen;
          incr count;
          true
        end
        else false)
      included
  in
  if not ok then None
  else begin
    List.iter
      (fun e ->
        if
          (not (List.exists (fun x -> x.id = e.id) included))
          && not (List.exists (fun x -> x.id = e.id) excluded)
        then
          if uf_union uf e.vu e.vv then begin
            chosen := e :: !chosen;
            incr count
          end)
      sorted_edges;
    if !count = vertices - 1 then Some (List.rev !chosen) else None
  end

let tree_log_weight tree = List.fold_left (fun acc e -> acc +. e.log_w) 0. tree

(* Determinant of the reduced incidence matrix (rows: non-reference
   vertices, columns: tree edges, +1 at the edge's first endpoint).  For a
   spanning tree it is exactly +-1; 0 means the edge set does not span with
   these endpoints.  Plain float elimination is exact on this matrix
   class. *)
let incidence_det vertices tree endpoints =
  let n = vertices - 1 in
  if n = 0 then 1.
  else begin
    let m = Array.make_matrix n n 0. in
    List.iteri
      (fun c e ->
        let u, v = endpoints e in
        if u > 0 then m.(u - 1).(c) <- m.(u - 1).(c) +. 1.;
        if v > 0 then m.(v - 1).(c) <- m.(v - 1).(c) -. 1.)
      tree;
    let det = ref 1. in
    (try
       for k = 0 to n - 1 do
         let piv = ref k in
         for i = k + 1 to n - 1 do
           if Float.abs m.(i).(k) > Float.abs m.(!piv).(k) then piv := i
         done;
         if Float.abs m.(!piv).(k) < 0.5 then begin
           det := 0.;
           raise Exit
         end;
         if !piv <> k then begin
           let t = m.(k) in
           m.(k) <- m.(!piv);
           m.(!piv) <- t;
           det := -. !det
         end;
         det := !det *. m.(k).(k);
         for i = k + 1 to n - 1 do
           if m.(i).(k) <> 0. then begin
             let f = m.(i).(k) /. m.(k).(k) in
             for j = k to n - 1 do
               m.(i).(j) <- m.(i).(j) -. (f *. m.(k).(j))
             done
           end
         done
       done
     with Exit -> ());
    !det
  end

(* --- best-first K-best enumeration (partition scheme) ------------------ *)

type subproblem = {
  weight : float;
  tree : edge list;
  fixed_in : edge list;
  fixed_out : edge list;
}

let terms circuit ~input =
  let vertices, edges = graph_of circuit ~input in
  let sorted_edges =
    List.sort (fun a b -> Float.compare b.log_w a.log_w) edges
  in
  let mst included excluded =
    constrained_mst ~vertices ~sorted_edges ~included ~excluded
  in
  (* The queue is a persistent sorted list (descending weight), threaded
     through the sequence, so the Seq is pure and re-traversable. *)
  let push sp queue =
    let rec ins = function
      | [] -> [ sp ]
      | hd :: tl as l -> if sp.weight > hd.weight then sp :: l else hd :: ins tl
    in
    ins queue
  in
  let term_of tree =
    List.fold_left
      (fun acc e -> Sym.mul acc (Sym.of_symbol e.symbol))
      (Sym.const 1.) tree
  in
  let initial =
    match mst [] [] with
    | Some tree ->
        [ { weight = tree_log_weight tree; tree; fixed_in = []; fixed_out = [] } ]
    | None -> []
  in
  let rec next queue () =
    match queue with
    | [] -> Seq.Nil
    | sp :: rest ->
        (* Partition: children exclude each free tree edge in turn, forcing
           the previously-considered ones in (Lawler/Gabow scheme). *)
        let free =
          List.filter
            (fun e -> not (List.exists (fun x -> x.id = e.id) sp.fixed_in))
            sp.tree
        in
        let rec split acc forced = function
          | [] -> acc
          | e :: tl ->
              let fixed_in = forced @ sp.fixed_in in
              let fixed_out = e :: sp.fixed_out in
              let acc =
                match mst fixed_in fixed_out with
                | Some tree ->
                    push { weight = tree_log_weight tree; tree; fixed_in; fixed_out } acc
                | None -> acc
              in
              split acc (e :: forced) tl
        in
        let queue' = split rest [] free in
        (* A voltage-graph tree contributes only if it also spans the
           current graph; the Binet-Cauchy sign is the product of the two
           incidence determinants. *)
        let det_i = incidence_det vertices sp.tree (fun e -> (e.iu, e.iv)) in
        if Float.abs det_i < 0.5 then next queue' ()
        else begin
          let det_v = incidence_det vertices sp.tree (fun e -> (e.vu, e.vv)) in
          let sign = det_i *. det_v in
          let term =
            match Sym.scale sign (term_of sp.tree) with
            | [ t ] -> t
            | _ -> assert false
          in
          Seq.Cons (term, next queue')
        end
  in
  next initial

type stats = {
  generated : int;
  kept : Sym.term list;
  satisfied : bool;
}

let generate_until ?(max_terms = 100_000) ~epsilon ~references circuit ~input =
  let stream = terms circuit ~input in
  let sums = Array.make (Array.length references) 0. in
  let satisfied () =
    Array.for_all
      (fun k ->
        references.(k) = 0.
        || Float.abs (references.(k) -. sums.(k)) <= epsilon *. Float.abs references.(k))
      (Array.init (Array.length references) Fun.id)
  in
  let power_done k =
    k >= Array.length references
    || references.(k) = 0.
    || Float.abs (references.(k) -. sums.(k)) <= epsilon *. Float.abs references.(k)
  in
  let rec go acc n stream =
    if satisfied () then { generated = n; kept = List.rev acc; satisfied = true }
    else if n >= max_terms then { generated = n; kept = List.rev acc; satisfied = false }
    else
      match stream () with
      | Seq.Nil -> { generated = n; kept = List.rev acc; satisfied = satisfied () }
      | Seq.Cons (t, rest) ->
          let k = Sym.s_power t in
          (* Keep the term only while its coefficient still needs mass;
             later terms of satisfied coefficients are the SDG truncation. *)
          if power_done k then go acc (n + 1) rest
          else begin
            if k < Array.length sums then sums.(k) <- sums.(k) +. Sym.term_value t;
            go (t :: acc) (n + 1) rest
          end
  in
  go [] 0 stream
