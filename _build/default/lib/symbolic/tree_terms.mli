(** True Simplification-During-Generation term generation by the two-graph
    method: denominator terms produced {e strictly in decreasing order of
    magnitude} without ever building the complete expression — the
    mechanism of the paper's refs. [2]-[4], whose error control (eq. 3) is
    what the numerical references exist for.

    The reduced nodal matrix factors as [Y = A_I Y_b A_V^T] with [A_I]/[A_V]
    the reduced incidence matrices of the {e current} and {e voltage} graphs
    (identical endpoints for passive admittances; output and controlling
    node pairs respectively for a VCCS) and [Y_b] the diagonal of branch
    admittances.  By Binet-Cauchy,

    [det Y = sum over common spanning trees S of
       det A_I[S] * det A_V[S] * prod of branch admittances in S]

    — each common tree is one symbolic term with an exact [+-1] sign (always
    [+1] on passive RC networks, where the method reduces to the classical
    matrix-tree theorem).  Ground and driven nodes are contracted into the
    reference vertex.

    Trees are enumerated best-first on the voltage graph (branch-and-bound
    partition over included/excluded edge sets, constrained maximum spanning
    trees by Kruskal) and filtered to common trees, so the [k]-th term
    delivered is the [k]-th largest in magnitude. *)

exception Unsupported of string
(** Raised when the circuit contains elements outside the G/R/C/VCCS class
    (inductors can enter through
    {!Symref_circuit.Transform.inductors_to_gyrators} first). *)

val terms :
  Symref_circuit.Netlist.t ->
  input:Symref_mna.Nodal.input ->
  Sym.term Seq.t
(** Lazy stream of denominator terms (each with its exact [+-1] common-tree
    sign), strictly non-increasing in design-point {e magnitude}.  Forcing
    the whole sequence yields exactly the terms of the full symbolic
    determinant — signed cancellations included on active circuits. *)

type stats = {
  generated : int;       (** trees enumerated (the algorithm's cost) *)
  kept : Sym.term list;  (** retained terms, in generation order (the
                             simplified expression's size) *)
  satisfied : bool;      (** every referenced coefficient met eq. 3 *)
}

val generate_until :
  ?max_terms:int ->
  epsilon:float ->
  references:float array ->
  Symref_circuit.Netlist.t ->
  input:Symref_mna.Nodal.input ->
  stats
(** The SDG loop: pull terms largest-first; a term is {e kept} only while
    its own coefficient still fails eq. 3,
    [|references.(k) - partial_sum_k| <= epsilon * |references.(k)|] — once
    a coefficient is satisfied its later (smaller) terms are discarded.
    Generation stops when every referenced coefficient is satisfied, so
    [kept] is the truncated expression while [generated] counts the
    enumeration work.  [max_terms] (default [100_000]) bounds the run when
    the references and the network disagree. *)
