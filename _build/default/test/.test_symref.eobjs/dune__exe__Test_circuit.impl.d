test/test_circuit.ml: Alcotest Array Symref_circuit Symref_numeric Symref_poly
