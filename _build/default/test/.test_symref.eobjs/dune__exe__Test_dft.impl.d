test/test_dft.ml: Alcotest Array Complex Float Fun List Printf QCheck2 QCheck_alcotest Symref_dft Symref_numeric Symref_poly
