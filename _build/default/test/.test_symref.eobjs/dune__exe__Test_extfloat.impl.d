test/test_extfloat.ml: Alcotest Complex Float List Printf QCheck2 QCheck_alcotest Symref_numeric
