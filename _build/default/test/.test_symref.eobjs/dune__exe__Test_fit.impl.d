test/test_fit.ml: Alcotest Array Complex Float List Printf Symref_circuit Symref_core Symref_mna Symref_numeric
