test/test_linalg.ml: Alcotest Array Complex List Printf QCheck2 QCheck_alcotest Symref_linalg Symref_numeric
