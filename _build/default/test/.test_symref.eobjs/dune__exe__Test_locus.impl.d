test/test_locus.ml: Alcotest Array Complex Float Printf Symref_circuit Symref_core Symref_mna
