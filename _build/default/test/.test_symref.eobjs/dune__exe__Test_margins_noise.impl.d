test/test_margins_noise.ml: Alcotest Float List Printf String Symref_circuit Symref_core Symref_mna Symref_numeric
