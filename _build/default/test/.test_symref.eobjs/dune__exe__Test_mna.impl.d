test/test_mna.ml: Alcotest Array Complex Float List Printf Symref_circuit Symref_mna Symref_numeric
