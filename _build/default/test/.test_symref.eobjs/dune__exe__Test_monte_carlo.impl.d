test/test_monte_carlo.ml: Alcotest Array Complex Float Printf Symref_circuit Symref_mna
