test/test_nested.ml: Alcotest Complex List Printf Symref_circuit Symref_mna Symref_numeric Symref_symbolic
