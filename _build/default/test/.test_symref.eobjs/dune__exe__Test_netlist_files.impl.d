test/test_netlist_files.ml: Alcotest Array Complex Filename Float Printf Symref_circuit Symref_core Symref_mna Symref_spice
