test/test_paper_shape.ml: Alcotest Array Float List Printf Symref_circuit Symref_core Symref_mna Symref_numeric
