test/test_poly.ml: Alcotest Complex Float List QCheck2 QCheck_alcotest Symref_numeric Symref_poly
