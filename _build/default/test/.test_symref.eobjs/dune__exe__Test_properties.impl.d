test/test_properties.ml: Array Complex Float List QCheck2 QCheck_alcotest Symref_core Symref_linalg Symref_numeric Symref_poly Symref_spice
