test/test_random_net.ml: Alcotest Array Float List Printf QCheck2 QCheck_alcotest Symref_circuit Symref_core Symref_mna Symref_numeric Symref_poly
