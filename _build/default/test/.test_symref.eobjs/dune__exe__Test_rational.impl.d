test/test_rational.ml: Alcotest Array Complex Float Printf Symref_circuit Symref_core Symref_mna Symref_numeric Symref_poly
