test/test_report.ml: Alcotest Array Printf String Symref_circuit Symref_core Symref_mna Symref_numeric
