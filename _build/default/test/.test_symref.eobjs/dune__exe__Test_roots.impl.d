test/test_roots.ml: Alcotest Array Complex Float List Printf QCheck2 QCheck_alcotest Symref_circuit Symref_core Symref_mna Symref_numeric Symref_poly
