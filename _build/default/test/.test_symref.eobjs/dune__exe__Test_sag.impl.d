test/test_sag.ml: Alcotest Array Complex Float Printf Symref_circuit Symref_mna Symref_numeric Symref_symbolic
