test/test_sensitivity.ml: Alcotest Complex Float List Printf Symref_circuit Symref_mna Symref_numeric
