test/test_spice.ml: Alcotest Array Complex Float List Printf String Symref_circuit Symref_mna Symref_numeric Symref_spice
