test/test_stats_grid.ml: Alcotest Array Symref_numeric
