test/test_symbolic.ml: Alcotest Array Complex Float List Printf Symref_circuit Symref_core Symref_mna Symref_numeric Symref_symbolic
