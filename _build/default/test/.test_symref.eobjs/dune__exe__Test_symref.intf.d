test/test_symref.mli:
