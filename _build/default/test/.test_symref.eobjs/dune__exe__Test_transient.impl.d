test/test_transient.ml: Alcotest Array Float Printf Symref_circuit Symref_core Symref_mna
