test/test_tree_terms.ml: Alcotest Array Float Hashtbl List Option Printf Seq Symref_circuit Symref_core Symref_mna Symref_numeric Symref_symbolic
