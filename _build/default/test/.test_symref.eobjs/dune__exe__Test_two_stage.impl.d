test/test_two_stage.ml: Alcotest Float Printf Symref_circuit Symref_core Symref_mna
