test/test_twoport.ml: Alcotest Complex Float Printf Symref_circuit Symref_mna Symref_numeric
