test/test_verify.ml: Alcotest Array Printf Symref_circuit Symref_core Symref_mna Symref_numeric
