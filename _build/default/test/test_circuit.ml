(* Tests for elements, netlists, device expansion and workload generators. *)

module E = Symref_circuit.Element
module N = Symref_circuit.Netlist
module D = Symref_circuit.Devices
module Ladder = Symref_circuit.Rc_ladder
module Ota = Symref_circuit.Ota
module Ua741 = Symref_circuit.Ua741
module Gm_c = Symref_circuit.Gm_c
module Epoly = Symref_poly.Epoly
module Ef = Symref_numeric.Extfloat

let check_float = Alcotest.(check (float 1e-9))

let test_element_validation () =
  Alcotest.check_raises "zero R" (Invalid_argument "Element r1: resistance must be > 0")
    (fun () -> ignore (E.make "r1" (E.Resistor { a = 1; b = 0; ohms = 0. })));
  Alcotest.check_raises "negative node" (Invalid_argument "Element c1: negative node")
    (fun () -> ignore (E.make "c1" (E.Capacitor { a = -1; b = 0; farads = 1e-12 })));
  Alcotest.check_raises "zero gm" (Invalid_argument "Element g1: transconductance must be non-zero")
    (fun () ->
      ignore (E.make "g1" (E.Vccs { p = 1; m = 0; cp = 2; cm = 0; gm = 0. })));
  (* Negative gm is legal: positive feedback. *)
  let e = E.make "g2" (E.Vccs { p = 1; m = 0; cp = 2; cm = 0; gm = -1e-3 }) in
  Alcotest.(check bool) "nodal class" true (E.is_nodal_class e)

let test_element_queries () =
  let r = E.make "r1" (E.Resistor { a = 1; b = 2; ohms = 2e3 }) in
  (match E.conductance_value r with
  | Some g -> check_float "resistor as conductance" 5e-4 g
  | None -> Alcotest.fail "resistor has a conductance value");
  Alcotest.(check (list int)) "nodes" [ 1; 2 ] (E.nodes r);
  let c = E.make "c1" (E.Capacitor { a = 1; b = 0; farads = 3e-12 }) in
  (match E.capacitance_value c with
  | Some v -> check_float "cap value" 3e-12 v
  | None -> Alcotest.fail "cap has a capacitance value");
  let l = E.make "l1" (E.Inductor { a = 1; b = 0; henries = 1e-9 }) in
  Alcotest.(check bool) "inductor not nodal" false (E.is_nodal_class l)

let test_builder_basic () =
  let b = N.Builder.create ~title:"t" () in
  N.Builder.resistor b "r1" ~a:"in" ~b:"out" 1e3;
  N.Builder.capacitor b "c1" ~a:"out" ~b:"0" 1e-12;
  let c = N.Builder.finish b in
  Alcotest.(check int) "nodes" 2 (N.node_count c);
  Alcotest.(check int) "elements" 2 (N.element_count c);
  Alcotest.(check string) "node name" "out" (N.node_name c 2);
  Alcotest.(check (option int)) "node id" (Some 2) (N.node_id c "out");
  Alcotest.(check (option int)) "ground alias" (Some 0) (N.node_id c "gnd");
  Alcotest.(check (option int)) "unknown" None (N.node_id c "zz");
  Alcotest.(check bool) "connected" true (N.is_connected c);
  Alcotest.(check bool) "nodal" true (N.is_nodal_class c)

let test_builder_validation () =
  let b = N.Builder.create () in
  N.Builder.resistor b "r1" ~a:"x" ~b:"0" 1.;
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Netlist: duplicate element name r1") (fun () ->
      N.Builder.resistor b "r1" ~a:"y" ~b:"0" 1.);
  let b2 = N.Builder.create () in
  N.Builder.cccs b2 "f1" ~p:"a" ~m:"0" ~vname:"vmissing" 2.;
  Alcotest.check_raises "dangling control"
    (Invalid_argument "Netlist: f1 controls through unknown source vmissing")
    (fun () -> ignore (N.Builder.finish b2))

let test_netlist_queries () =
  let b = N.Builder.create () in
  N.Builder.resistor b "r1" ~a:"x" ~b:"0" 1e3;
  N.Builder.conductance b "g1" ~a:"x" ~b:"0" 2e-3;
  N.Builder.vccs b "gm1" ~p:"y" ~m:"0" ~cp:"x" ~cm:"0" 3e-3;
  N.Builder.capacitor b "c1" ~a:"y" ~b:"0" 2e-12;
  N.Builder.capacitor b "c2" ~a:"x" ~b:"y" 4e-12;
  let c = N.Builder.finish b in
  check_float "mean conductance" 2e-3 (N.mean_conductance c);
  check_float "mean capacitance" 3e-12 (N.mean_capacitance c);
  Alcotest.(check int) "cap count" 2 (N.capacitor_count c);
  let c' = N.remove_element c "c2" in
  Alcotest.(check int) "removed" 1 (N.capacitor_count c');
  Alcotest.(check int) "original untouched" 2 (N.capacitor_count c);
  Alcotest.check_raises "remove unknown" Not_found (fun () ->
      ignore (N.remove_element c "nope"))

let test_disconnected () =
  let b = N.Builder.create () in
  N.Builder.resistor b "r1" ~a:"x" ~b:"0" 1.;
  N.Builder.resistor b "r2" ~a:"island1" ~b:"island2" 1.;
  Alcotest.(check bool) "disconnected" false (N.is_connected (N.Builder.finish b))

let test_mos_expansion () =
  let b = N.Builder.create () in
  D.add_mos b "m1" ~d:"d" ~g:"g" ~s:"0" D.mos_default;
  let c = N.Builder.finish b in
  Alcotest.(check int) "elements: gm gds cgs cgd" 4 (N.element_count c);
  Alcotest.(check bool) "has gm" true (N.find_element c "m1.gm" <> None);
  Alcotest.(check bool) "nodal class" true (N.is_nodal_class c)

let test_bjt_expansion () =
  let p = D.bjt_of_bias ~ic:1e-3 () in
  check_float "gm from ic" (1e-3 /. 0.02585) p.D.gm;
  check_float "gpi" (p.D.gm /. 200.) p.D.gpi;
  let b = N.Builder.create () in
  D.add_bjt b "q1" ~c:"c" ~b:"b" ~e:"0" { p with D.rb = 250.; D.ccs = 1e-12 };
  let c = N.Builder.finish b in
  (* rb, gm, gpi, go, cpi, cmu, ccs *)
  Alcotest.(check int) "elements with rb and ccs" 7 (N.element_count c);
  Alcotest.(check bool) "internal node" true (N.node_id c "q1.bx" <> None)

let test_ladder_circuit () =
  let c = Ladder.circuit 5 in
  Alcotest.(check int) "nodes: in + 5" 6 (N.node_count c);
  Alcotest.(check int) "caps" 5 (N.capacitor_count c);
  Alcotest.(check bool) "connected" true (N.is_connected c)

let test_ladder_exact_denominator () =
  (* Single section: A(s) = 1 + R*C*s. *)
  let d1 = Ladder.exact_denominator ~r:1e3 ~c:1e-12 1 in
  Alcotest.(check int) "degree 1" 1 (Epoly.degree d1);
  check_float "constant" 1. (Ef.to_float (Epoly.coeff d1 0));
  check_float "tau" 1e-9 (Ef.to_float (Epoly.coeff d1 1));
  (* Two equal sections: A = 1 + 3RCs + (RC)^2 s^2. *)
  let d2 = Ladder.exact_denominator ~r:1e3 ~c:1e-12 ~spread:1. 2 in
  Alcotest.(check int) "degree 2" 2 (Epoly.degree d2);
  check_float "s coeff" 3e-9 (Ef.to_float (Epoly.coeff d2 1));
  check_float "s^2 coeff" 1e-18 (Ef.to_float (Epoly.coeff d2 2) *. 1.);
  (* Order grows with n and coefficients stay positive. *)
  let d30 = Ladder.exact_denominator 30 in
  Alcotest.(check int) "degree 30" 30 (Epoly.degree d30);
  Array.iter
    (fun c -> Alcotest.(check bool) "positive" true (Ef.sign c > 0))
    (Epoly.coeffs d30)

let test_ota () =
  Alcotest.(check int) "9 capacitors" 9 (N.capacitor_count Ota.circuit);
  Alcotest.(check bool) "connected" true (N.is_connected Ota.circuit);
  Alcotest.(check bool) "nodal class" true (N.is_nodal_class Ota.circuit);
  Alcotest.(check bool) "has out" true (N.node_id Ota.circuit Ota.output <> None)

let test_ua741 () =
  let c = Ua741.circuit in
  Alcotest.(check bool) "connected" true (N.is_connected c);
  Alcotest.(check bool) "nodal class" true (N.is_nodal_class c);
  (* 24 transistors x (cpi, cmu) + 19 ccs + cc + cload *)
  Alcotest.(check int) "capacitor count" 69 (N.capacitor_count c);
  (* ~50 nodes: 24 internal base nodes + externals. *)
  Alcotest.(check bool) "node count ~50" true (N.node_count c >= 45);
  Alcotest.(check bool) "out exists" true (N.node_id c Ua741.output <> None)

let test_gm_c () =
  let c = Gm_c.circuit 12 in
  Alcotest.(check int) "caps = order" 12 (N.capacitor_count c);
  Alcotest.(check bool) "connected" true (N.is_connected c);
  Alcotest.(check bool) "nodal" true (N.is_nodal_class c);
  Alcotest.check_raises "bad order" (Invalid_argument "Gm_c.circuit: order must be >= 1")
    (fun () -> ignore (Gm_c.circuit 0))

let suite =
  [
    ( "element",
      [
        Alcotest.test_case "validation" `Quick test_element_validation;
        Alcotest.test_case "queries" `Quick test_element_queries;
      ] );
    ( "netlist",
      [
        Alcotest.test_case "builder basics" `Quick test_builder_basic;
        Alcotest.test_case "builder validation" `Quick test_builder_validation;
        Alcotest.test_case "queries" `Quick test_netlist_queries;
        Alcotest.test_case "disconnected" `Quick test_disconnected;
      ] );
    ( "devices",
      [
        Alcotest.test_case "mos expansion" `Quick test_mos_expansion;
        Alcotest.test_case "bjt expansion" `Quick test_bjt_expansion;
      ] );
    ( "workloads",
      [
        Alcotest.test_case "rc ladder circuit" `Quick test_ladder_circuit;
        Alcotest.test_case "rc ladder exact denominator" `Quick test_ladder_exact_denominator;
        Alcotest.test_case "ota" `Quick test_ota;
        Alcotest.test_case "ua741" `Quick test_ua741;
        Alcotest.test_case "gm-c" `Quick test_gm_c;
      ] );
  ]
