(* Unit and property tests for the extended-range numeric types. *)

module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Cx = Symref_numeric.Cx

let check_float = Alcotest.(check (float 1e-12))

let ef_approx msg a b =
  Alcotest.(check bool) msg true (Ef.approx_equal ~rel:1e-12 a b)

let test_roundtrip () =
  List.iter
    (fun x -> check_float (Printf.sprintf "roundtrip %g" x) x Ef.(to_float (of_float x)))
    [ 0.; 1.; -1.; 3.25; -0.5; 1e300; 1e-300; Float.pi ]

let test_normalisation () =
  let x = Ef.of_float 48. in
  Alcotest.(check bool) "mantissa in [0.5,1)" true
    (Float.abs x.Ef.m >= 0.5 && Float.abs x.Ef.m < 1.);
  let y = Ef.make ~m:48. ~e:(-2) in
  check_float "make renormalises" 12. (Ef.to_float y)

let test_arithmetic () =
  let a = Ef.of_float 6.5 and b = Ef.of_float (-2.) in
  check_float "add" 4.5 Ef.(to_float (add a b));
  check_float "sub" 8.5 Ef.(to_float (sub a b));
  check_float "mul" (-13.) Ef.(to_float (mul a b));
  check_float "div" (-3.25) Ef.(to_float (div a b));
  ef_approx "zero add identity" a Ef.(add a zero);
  ef_approx "mul one identity" a Ef.(mul a one)

let test_out_of_double_range () =
  (* 1e-522 as in Table 3 of the paper: must survive a product/ratio chain. *)
  let tiny = Ef.of_decimal 1.1215 (-522) in
  Alcotest.(check bool) "not zero" false (Ef.is_zero tiny);
  check_float "decimal magnitude" (-522. +. Float.log10 1.1215)
    (Ef.log10_abs tiny);
  let back = Ef.(mul tiny (of_decimal 1. 522)) in
  ef_approx "scaled back to ~1.1215" (Ef.of_float 1.1215) back;
  check_float "to_float underflows to 0" 0. (Ef.to_float tiny)

let test_pow_int () =
  check_float "2^10" 1024. Ef.(to_float (pow_int (of_float 2.) 10));
  check_float "2^-3" 0.125 Ef.(to_float (pow_int (of_float 2.) (-3)));
  check_float "x^0" 1. Ef.(to_float (pow_int (of_float 7.7) 0));
  let p = Ef.float_pow_int 10. (-522) in
  check_float "10^-522 magnitude" (-522.) (Ef.log10_abs p)

let test_compare () =
  let lt a b = Alcotest.(check bool) "lt" true (Ef.compare a b < 0) in
  lt (Ef.of_float (-3.)) (Ef.of_float 2.);
  lt (Ef.of_float 2.) (Ef.of_float 3.);
  lt (Ef.of_decimal 1. (-10)) (Ef.of_decimal 1. 10);
  lt (Ef.of_decimal (-1.) 10) (Ef.of_decimal (-1.) (-10));
  Alcotest.(check int) "mag ignores sign" 0
    (Ef.compare_mag (Ef.of_float (-4.)) (Ef.of_float 4.))

let test_to_decimal () =
  let d, k = Ef.to_decimal (Ef.of_float 1234.5) in
  check_float "mantissa" 1.2345 d;
  Alcotest.(check int) "exponent" 3 k;
  let d, k = Ef.to_decimal (Ef.of_decimal (-2.2385) (-39)) in
  Alcotest.(check int) "negative exponent" (-39) k;
  check_float "negative mantissa" (-2.2385) d

let test_to_string () =
  Alcotest.(check string) "fmt" "1.50000e+00" (Ef.to_string (Ef.of_float 1.5));
  Alcotest.(check string) "fmt zero" "0.00000e+00" (Ef.to_string Ef.zero);
  Alcotest.(check string) "fmt tiny" "-1.12150e-522"
    (Ef.to_string (Ef.of_decimal (-1.1215) (-522)))

let test_invalid () =
  Alcotest.check_raises "of_float nan" (Invalid_argument "Extfloat.of_float: not finite")
    (fun () -> ignore (Ef.of_float Float.nan));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Ef.div Ef.one Ef.zero));
  Alcotest.check_raises "0^-1" Division_by_zero (fun () ->
      ignore (Ef.pow_int Ef.zero (-1)))

(* --- Extcomplex --- *)

let ec_of re im = Ec.of_complex { Complex.re; im }

let ec_approx msg a b =
  Alcotest.(check bool) msg true (Ec.approx_equal ~rel:1e-12 a b)

let test_ec_roundtrip () =
  let z = { Complex.re = -3.5; im = 0.25 } in
  let z' = Ec.(to_complex (of_complex z)) in
  check_float "re" z.re z'.re;
  check_float "im" z.im z'.im

let test_ec_arith () =
  let a = ec_of 1. 2. and b = ec_of (-3.) 0.5 in
  ec_approx "mul" (ec_of (-4.) (-5.5)) (Ec.mul a b);
  ec_approx "add" (ec_of (-2.) 2.5) (Ec.add a b);
  ec_approx "sub" (ec_of 4. 1.5) (Ec.sub a b);
  ec_approx "div mul roundtrip" a Ec.(mul (div a b) b);
  ec_approx "conj" (ec_of 1. (-2.)) (Ec.conj a)

let test_ec_extended_range () =
  (* Product of 200 pivots of magnitude 1e-4 underflows doubles: 1e-800. *)
  let p = ref Ec.one in
  for _ = 1 to 200 do
    p := Ec.mul !p (ec_of 0. 1e-4)
  done;
  check_float "log10 norm" (-800.) (Ec.log10_norm !p);
  Alcotest.(check bool) "not zero" false (Ec.is_zero !p)

let test_ec_norm_arg () =
  let z = ec_of 3. 4. in
  ef_approx "norm" (Ef.of_float 5.) (Ec.norm z);
  check_float "arg" (Float.atan2 4. 3.) (Ec.arg z);
  ef_approx "re" (Ef.of_float 3.) (Ec.re z);
  ef_approx "im" (Ef.of_float 4.) (Ec.im z)

(* --- properties --- *)

let finite_float =
  QCheck2.Gen.map
    (fun (m, e) -> Float.ldexp m e)
    QCheck2.Gen.(pair (float_range (-1.) 1.) (int_range (-60) 60))

let prop_roundtrip =
  QCheck2.Test.make ~name:"extfloat roundtrip" ~count:500 finite_float (fun x ->
      Ef.to_float (Ef.of_float x) = x)

let prop_add_commutes =
  QCheck2.Test.make ~name:"extfloat add commutes" ~count:500
    QCheck2.Gen.(pair finite_float finite_float)
    (fun (x, y) ->
      let a = Ef.of_float x and b = Ef.of_float y in
      Ef.equal (Ef.add a b) (Ef.add b a))

let prop_mul_matches_float =
  QCheck2.Test.make ~name:"extfloat mul matches double (in range)" ~count:500
    QCheck2.Gen.(pair finite_float finite_float)
    (fun (x, y) ->
      let p = Ef.to_float (Ef.mul (Ef.of_float x) (Ef.of_float y)) in
      Cx.approx_equal ~rel:1e-15 { Complex.re = p; im = 0. }
        { Complex.re = x *. y; im = 0. })

let prop_log10_consistent =
  QCheck2.Test.make ~name:"extfloat log10 vs decimal exponent" ~count:500
    QCheck2.Gen.(pair (float_range 1. 9.99) (int_range (-600) 600))
    (fun (d, k) ->
      let x = Ef.of_decimal d k in
      Float.abs (Ef.log10_abs x -. (Float.log10 d +. float_of_int k)) < 1e-9)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_add_commutes; prop_mul_matches_float; prop_log10_consistent ]

let suite =
  [
    ( "extfloat",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "normalisation" `Quick test_normalisation;
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "out-of-double range" `Quick test_out_of_double_range;
        Alcotest.test_case "pow_int" `Quick test_pow_int;
        Alcotest.test_case "compare" `Quick test_compare;
        Alcotest.test_case "to_decimal" `Quick test_to_decimal;
        Alcotest.test_case "to_string" `Quick test_to_string;
        Alcotest.test_case "invalid inputs" `Quick test_invalid;
      ]
      @ props );
    ( "extcomplex",
      [
        Alcotest.test_case "roundtrip" `Quick test_ec_roundtrip;
        Alcotest.test_case "arithmetic" `Quick test_ec_arith;
        Alcotest.test_case "extended range" `Quick test_ec_extended_range;
        Alcotest.test_case "norm and arg" `Quick test_ec_norm_arg;
      ] );
  ]
