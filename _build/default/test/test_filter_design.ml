(* Filter synthesis against the textbook response shapes. *)

module Fd = Symref_circuit.Filter_design
module Biquad = Symref_circuit.Biquad
module Nodal = Symref_mna.Nodal
module Reference = Symref_core.Reference
module Rational = Symref_core.Rational
module Poles = Symref_core.Poles
module Grid = Symref_numeric.Grid
module Cx = Symref_numeric.Cx

let check_rel msg want got tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g vs %.6g" msg got want)
    true
    (Float.abs (got -. want) <= tol *. Float.abs want)

let reference_of kind order f_cut =
  Reference.generate
    (Fd.realize kind ~order ~f_cut_hz:f_cut)
    ~input:(Nodal.Vsrc_element "vin")
    ~output:(Nodal.Out_node "out")

let mag r f =
  Complex.norm (Reference.eval r { Complex.re = 0.; im = 2. *. Float.pi *. f })

let test_butterworth_magnitude () =
  List.iter
    (fun order ->
      let fc = 1e6 in
      let r = reference_of Fd.Butterworth order fc in
      List.iter
        (fun f ->
          let want = 1. /. Float.sqrt (1. +. ((f /. fc) ** (2. *. float_of_int order))) in
          check_rel
            (Printf.sprintf "order %d at %g Hz" order f)
            want (mag r f) 2e-3)
        [ 1e4; 5e5; 1e6; 2e6; 1e7 ])
    [ 2; 3; 5 ]

let test_chebyshev_ripple () =
  let ripple_db = 1. in
  let fc = 1e6 in
  let order = 5 in
  let r = reference_of (Fd.Chebyshev ripple_db) order fc in
  let floor_gain = 10. ** (-.ripple_db /. 20.) in
  (* Passband: |H| oscillates between floor and 1, never outside. *)
  Array.iter
    (fun f ->
      let m = mag r f in
      Alcotest.(check bool)
        (Printf.sprintf "in-band |H| at %g Hz (%.4f)" f m)
        true
        (m >= floor_gain *. 0.999 && m <= 1.001))
    (Grid.linspace 1e4 9.99e5 40);
  (* Band edge sits at the ripple floor (odd order: |H(0)| = 1). *)
  check_rel "edge gain" floor_gain (mag r fc) 1e-3;
  check_rel "dc gain" 1. (mag r 1.) 1e-3;
  (* Equiripple: the passband minimum is attained well inside the band. *)
  let interior_min =
    Array.fold_left
      (fun acc f -> Float.min acc (mag r f))
      infinity
      (Grid.linspace 1e4 9e5 60)
  in
  check_rel "interior touches the floor" floor_gain interior_min 5e-3

let test_chebyshev_sharper_than_butterworth () =
  let fc = 1e6 and order = 5 in
  let b = reference_of Fd.Butterworth order fc in
  let c = reference_of (Fd.Chebyshev 1.) order fc in
  Alcotest.(check bool) "chebyshev falls faster" true (mag c (3. *. fc) < mag b (3. *. fc))

let test_bessel_flat_delay () =
  let fc = 1e6 and order = 5 in
  let r = reference_of Fd.Bessel order fc in
  (* -3 dB at the cutoff by construction. *)
  check_rel "-3dB point" (1. /. Float.sqrt 2.) (mag r fc) 5e-3;
  (* Maximally flat delay: in-band group delay varies by < 3%. *)
  let t = Rational.of_reference r in
  let d0 = Rational.group_delay t ~freq_hz:(fc /. 100.) in
  let d_half = Rational.group_delay t ~freq_hz:(fc /. 2.) in
  check_rel "flat group delay to fc/2" d0 d_half 0.03;
  (* Butterworth of the same order is visibly worse. *)
  let bt = Rational.of_reference (reference_of Fd.Butterworth order fc) in
  let bd0 = Rational.group_delay bt ~freq_hz:(fc /. 100.) in
  let bd_half = Rational.group_delay bt ~freq_hz:(fc /. 2.) in
  Alcotest.(check bool) "butterworth delay varies more" true
    (Float.abs (bd_half -. bd0) /. bd0 > Float.abs (d_half -. d0) /. d0 *. 2.)

let test_sections_structure () =
  (* Odd order: one first-order section; highest Q last. *)
  let secs = Fd.sections Fd.Butterworth ~order:5 ~f_cut_hz:1e6 in
  Alcotest.(check int) "three sections" 3 (List.length secs);
  let firsts =
    List.filter (function Fd.First_order _ -> true | Fd.Second_order _ -> false) secs
  in
  Alcotest.(check int) "one real pole" 1 (List.length firsts);
  let qs =
    List.filter_map
      (function Fd.Second_order d -> Some d.Biquad.q | Fd.First_order _ -> None)
      secs
  in
  Alcotest.(check bool) "ascending Q" true (List.sort Float.compare qs = qs);
  (* Butterworth order-5 Q values: 0.618 and 1.618 (the golden ratio!). *)
  match qs with
  | [ q1; q2 ] ->
      check_rel "q1" 0.6180 q1 1e-3;
      check_rel "q2" 1.6180 q2 1e-3
  | _ -> Alcotest.fail "expected two biquads"

let test_poles_extracted_match_prototype () =
  let order = 4 and fc = 2e6 in
  let r = reference_of (Fd.Chebyshev 0.5) order fc in
  let a = Poles.analyse r in
  let designed =
    Array.map
      (fun (p : Complex.t) -> Cx.scale (2. *. Float.pi *. fc) p)
      (Fd.prototype_poles (Fd.Chebyshev 0.5) ~order)
  in
  let key (p : Complex.t) = (Float.round (p.re /. 1e2), Float.round (Float.abs p.im /. 1e2)) in
  let sort a = List.sort compare (Array.to_list (Array.map key a)) in
  Alcotest.(check bool) "pole sets match" true (sort a.Poles.poles = sort designed)

let suite =
  [
    ( "filter-design",
      [
        Alcotest.test_case "butterworth magnitude" `Quick test_butterworth_magnitude;
        Alcotest.test_case "chebyshev ripple" `Quick test_chebyshev_ripple;
        Alcotest.test_case "chebyshev selectivity" `Quick
          test_chebyshev_sharper_than_butterworth;
        Alcotest.test_case "bessel flat delay" `Quick test_bessel_flat_delay;
        Alcotest.test_case "section structure" `Quick test_sections_structure;
        Alcotest.test_case "extracted poles match prototype" `Quick
          test_poles_extracted_match_prototype;
      ] );
  ]
