(* Rational fitting: recover known models from sampled responses. *)

module Fit = Symref_core.Fit
module Rational = Symref_core.Rational
module Reference = Symref_core.Reference
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Biquad = Symref_circuit.Biquad
module Ladder = Symref_circuit.Rc_ladder
module Grid = Symref_numeric.Grid
module Cx = Symref_numeric.Cx

let sample_model model freqs =
  Array.map
    (fun f -> Rational.eval model { Complex.re = 0.; im = 2. *. Float.pi *. f })
    freqs

let test_fit_biquad () =
  (* Sample a known 2nd-order lowpass from its reference model, fit, and
     compare poles. *)
  let d = { Biquad.f0_hz = 1e6; q = 1.2; gm = 40e-6 } in
  let c = Biquad.cascade [ d ] in
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out")
  in
  let truth = Rational.of_reference r in
  let freqs = Grid.logspace 1e4 1e8 40 in
  let values = sample_model truth freqs in
  let fit = Fit.rational ~num_degree:0 ~den_degree:2 ~freqs_hz:freqs values in
  Alcotest.(check bool)
    (Printf.sprintf "fit error %.2e" fit.Fit.max_relative_error)
    true
    (fit.Fit.max_relative_error < 1e-6);
  let got = Rational.decompose fit.Fit.model in
  let want = Rational.decompose truth in
  let key (p : Complex.t) = (Float.round (p.re /. 1e3), Float.round (Float.abs p.im /. 1e3)) in
  let sort a = List.sort compare (Array.to_list (Array.map key a)) in
  Alcotest.(check bool) "poles recovered" true
    (sort got.Rational.poles = sort want.Rational.poles)

let test_fit_ac_sweep () =
  (* Fit the AC simulator's sweep of a 3-section ladder and cross-check
     against the adaptive references: two entirely different routes to the
     same rational function. *)
  let c = Ladder.circuit 3 in
  let freqs = Grid.logspace 1e5 1e10 50 in
  let values = Ac.transfer c ~out_p:Ladder.output_node freqs in
  let fit = Fit.rational ~num_degree:0 ~den_degree:3 ~freqs_hz:freqs values in
  Alcotest.(check bool)
    (Printf.sprintf "fit error %.2e" fit.Fit.max_relative_error)
    true
    (fit.Fit.max_relative_error < 1e-6);
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  List.iter
    (fun f ->
      let a = Rational.eval fit.Fit.model { Complex.re = 0.; im = 2. *. Float.pi *. f } in
      let b = Reference.eval r { Complex.re = 0.; im = 2. *. Float.pi *. f } in
      Alcotest.(check bool)
        (Printf.sprintf "model = reference at %g Hz" f)
        true
        (Cx.approx_equal ~rel:1e-5 a b))
    [ 1e6; 1e8; 3e9 ]

let test_fit_validation () =
  let freqs = [| 1.; 10. |] and values = [| Complex.one; Complex.one |] in
  Alcotest.(check bool) "too few samples" true
    (try
       ignore (Fit.rational ~num_degree:2 ~den_degree:2 ~freqs_hz:freqs values);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad degree" true
    (try
       ignore (Fit.rational ~num_degree:0 ~den_degree:0 ~freqs_hz:freqs values);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "fit",
      [
        Alcotest.test_case "biquad pole recovery" `Quick test_fit_biquad;
        Alcotest.test_case "ac sweep vs references" `Quick test_fit_ac_sweep;
        Alcotest.test_case "validation" `Quick test_fit_validation;
      ] );
  ]
