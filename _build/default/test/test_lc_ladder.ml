(* Butterworth LC ladders: closed-form magnitude response and pole geometry,
   through the gyrator transformation and the reference generator. *)

module Lc = Symref_circuit.Lc_ladder
module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Reference = Symref_core.Reference
module Poles = Symref_core.Poles
module Cx = Symref_numeric.Cx

let check_rel msg want got tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g vs %.6g" msg got want)
    true
    (Float.abs (got -. want) <= tol *. Float.abs want)

(* |H(jw)|^2 of an order-n doubly-terminated Butterworth with equal
   terminations: (1/4) / (1 + (w/wc)^(2n)). *)
let butterworth_mag n f f_cut =
  0.5 /. Float.sqrt (1. +. ((f /. f_cut) ** (2. *. float_of_int n)))

let test_ac_matches_closed_form () =
  List.iter
    (fun n ->
      let c = Lc.butterworth n in
      List.iter
        (fun f ->
          let h = (Ac.transfer c ~out_p:Lc.output_node [| f |]).(0) in
          check_rel
            (Printf.sprintf "order %d at %g Hz" n f)
            (butterworth_mag n f 1e6)
            (Complex.norm h) 2e-3)
        [ 1e3; 5e5; 1e6; 2e6; 1e7 ])
    [ 1; 2; 3; 5; 7 ]

let test_transformed_matches_lc () =
  List.iter
    (fun n ->
      let lc = Lc.butterworth n and nodal = Lc.nodal n in
      Alcotest.(check bool)
        (Printf.sprintf "order %d nodal class" n)
        true
        (N.is_nodal_class (N.remove_element nodal "vin"));
      let freqs = [| 1e4; 1e6; 3e6 |] in
      let a = Ac.transfer lc ~out_p:Lc.output_node freqs in
      let b = Ac.transfer nodal ~out_p:Lc.output_node freqs in
      Array.iteri
        (fun i va ->
          Alcotest.(check bool)
            (Printf.sprintf "order %d point %d" n i)
            true
            (Cx.approx_equal ~rel:1e-9 va b.(i)))
        a)
    [ 2; 4; 6 ]

let test_pole_geometry () =
  (* All n poles on the circle |p| = wc, strictly left half plane. *)
  let n = 5 in
  let r =
    Reference.generate (Lc.nodal n) ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Lc.output_node)
  in
  let a = Poles.analyse r in
  Alcotest.(check int) "n poles" n (Array.length a.Poles.poles);
  Alcotest.(check bool) "stable" true a.Poles.stable;
  let wc = 2. *. Float.pi *. 1e6 in
  Array.iter
    (fun (p : Complex.t) ->
      check_rel "pole on the Butterworth circle" wc (Complex.norm p) 1e-4)
    a.Poles.poles;
  (* Butterworth angles: poles at exp(j pi (2k+n-1)/(2n)). *)
  let angles =
    Array.map (fun (p : Complex.t) -> Complex.arg p) a.Poles.poles
    |> Array.to_list
    |> List.sort Float.compare
  in
  let expected =
    List.init n (fun k ->
        let th = Float.pi *. (2. *. float_of_int k +. float_of_int n +. 1.) /. (2. *. float_of_int n) in
        (* wrap into (-pi, pi] *)
        let th = if th > Float.pi then th -. (2. *. Float.pi) else th in
        th)
    |> List.sort Float.compare
  in
  List.iter2
    (fun got want ->
      Alcotest.(check (float 1e-3)) "pole angle" want got)
    angles expected

let test_reference_matches_ac () =
  let n = 6 in
  let c = Lc.nodal n in
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Lc.output_node)
  in
  let freqs = [| 1e4; 1e6; 5e6 |] in
  let ac = Ac.transfer c ~out_p:Lc.output_node freqs in
  Array.iteri
    (fun i f ->
      let recon = Reference.eval r (Cx.jomega (2. *. Float.pi *. f)) in
      Alcotest.(check bool)
        (Printf.sprintf "order-%d reference at %g Hz" n f)
        true
        (Cx.approx_equal ~rel:1e-5 ac.(i) recon))
    freqs

let suite =
  [
    ( "lc-ladder",
      [
        Alcotest.test_case "closed-form magnitude" `Quick test_ac_matches_closed_form;
        Alcotest.test_case "gyrator transform equivalence" `Quick
          test_transformed_matches_lc;
        Alcotest.test_case "butterworth pole geometry" `Quick test_pole_geometry;
        Alcotest.test_case "references on transformed ladder" `Quick
          test_reference_matches_ac;
      ] );
  ]
