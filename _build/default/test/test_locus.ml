(* Pole-locus sweeps with known geometry. *)

module Locus = Symref_core.Locus
module Nodal = Symref_mna.Nodal
module Biquad = Symref_circuit.Biquad
module Ladder = Symref_circuit.Rc_ladder

let check_rel msg want got tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g vs %.6g" msg got want)
    true
    (Float.abs (got -. want) <= tol *. Float.abs want)

(* Tow-Thomas invariant: the damping transconductance gmq sets Q but not w0,
   so sweeping it moves the poles along the w0 circle. *)
let test_biquad_q_sweep () =
  let d = { Biquad.f0_hz = 1e6; q = 1.0; gm = 40e-6 } in
  let c = Biquad.cascade [ d ] in
  let pts =
    Locus.poles_vs_element c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out") ~element:"b1.gmq"
      ~factors:[| 0.5; 1.; 1.5; 1.9 |]
  in
  let w0 = 2. *. Float.pi *. 1e6 in
  Array.iter
    (fun (p : Locus.point) ->
      Alcotest.(check int) "two poles" 2 (Array.length p.Locus.poles);
      Array.iter
        (fun pole ->
          check_rel
            (Printf.sprintf "|pole| = w0 at factor %g" p.Locus.factor)
            w0 (Complex.norm pole) 1e-4)
        p.Locus.poles;
      (* Q = w0 / (2 |Re p|) = q_design / factor. *)
      let q_measured = w0 /. (2. *. Float.abs p.Locus.poles.(0).Complex.re) in
      check_rel
        (Printf.sprintf "Q tracks 1/factor at %g" p.Locus.factor)
        (1.0 /. p.Locus.factor) q_measured 1e-3;
      (* DC gain of the lowpass is gm1/gm2 = 1, independent of gmq. *)
      check_rel "dc gain invariant" 1. (Float.abs p.Locus.dc_gain) 1e-6)
    pts

(* RC ladder: scaling one capacitor by k moves poles continuously; at k = 1
   the sweep must agree with the direct analysis, and every pole stays real
   and negative throughout (RC networks cannot resonate). *)
let test_ladder_cap_sweep () =
  let c = Ladder.circuit 4 in
  let pts =
    Locus.poles_vs_element c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node) ~element:"c2"
      ~factors:[| 0.1; 1.; 10. |]
  in
  Array.iter
    (fun (p : Locus.point) ->
      Array.iter
        (fun (pole : Complex.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "pole real and negative at factor %g" p.Locus.factor)
            true
            (pole.Complex.re < 0.
            && Float.abs pole.Complex.im < 1e-6 *. Float.abs pole.Complex.re))
        p.Locus.poles;
      check_rel "unity dc gain" 1. p.Locus.dc_gain 1e-6)
    pts

let test_unknown_element () =
  Alcotest.check_raises "unknown element" Not_found (fun () ->
      ignore
        (Locus.poles_vs_element (Ladder.circuit 2) ~input:(Nodal.Vsrc_element "vin")
           ~output:(Nodal.Out_node Ladder.output_node) ~element:"nope"
           ~factors:[| 1. |]))

let suite =
  [
    ( "locus",
      [
        Alcotest.test_case "biquad Q sweep on the w0 circle" `Quick test_biquad_q_sweep;
        Alcotest.test_case "ladder cap sweep stays real" `Quick test_ladder_cap_sweep;
        Alcotest.test_case "unknown element" `Quick test_unknown_element;
      ] );
  ]
