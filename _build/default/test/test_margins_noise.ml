(* Tests for stability margins and noise analysis, against closed forms and
   the uA741's textbook figures. *)

module Margins = Symref_core.Margins
module Noise = Symref_mna.Noise
module Reference = Symref_core.Reference
module Nodal = Symref_mna.Nodal
module N = Symref_circuit.Netlist
module Ladder = Symref_circuit.Rc_ladder
module Ua741 = Symref_circuit.Ua741

let check_rel msg want got tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g vs %.6g" msg got want)
    true
    (Float.abs (got -. want) <= tol *. Float.abs want)

(* --- margins --- *)

let test_margins_single_pole () =
  (* H = A0 / (1 + s/w0) with A0 = 1000, f0 = 1 kHz: unity gain at
     ~A0*f0 = 1 MHz, phase margin ~90 deg. *)
  let b = N.Builder.create ~title:"one pole" () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.vccs b "g1" ~p:"0" ~m:"out" ~cp:"in" ~cm:"0" 1e-3;
  N.Builder.conductance b "gl" ~a:"out" ~b:"0" 1e-6;
  N.Builder.capacitor b "cl" ~a:"out" ~b:"0" (1e-6 /. (2. *. Float.pi *. 1e3));
  let c = N.Builder.finish b in
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out")
  in
  let m = Margins.analyse r in
  check_rel "dc gain dB" 60. m.Margins.dc_gain_db 1e-3;
  (match m.Margins.unity_gain_hz with
  | Some f -> check_rel "unity gain" 1e6 f 0.01
  | None -> Alcotest.fail "expected crossover");
  (match m.Margins.phase_margin_deg with
  | Some pm -> check_rel "phase margin" 90. pm 0.02
  | None -> Alcotest.fail "expected phase margin");
  (match m.Margins.gbw_hz with
  | Some g -> check_rel "gbw" 1e6 g 0.05
  | None -> Alcotest.fail "expected gbw")

let test_margins_ua741 () =
  let r =
    Reference.generate Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let m = Margins.analyse r in
  (* Textbook 741: GBW ~ 1 MHz, phase margin tens of degrees. *)
  (match m.Margins.unity_gain_hz with
  | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "unity gain %.3g Hz in [0.2, 5] MHz" f)
        true
        (f > 2e5 && f < 5e6)
  | None -> Alcotest.fail "expected crossover");
  match m.Margins.phase_margin_deg with
  | Some pm ->
      Alcotest.(check bool)
        (Printf.sprintf "phase margin %.1f deg in (20, 120)" pm)
        true
        (pm > 20. && pm < 120.)
  | None -> Alcotest.fail "expected phase margin"

(* --- noise --- *)

(* Closed form: a single resistor R from a driven input to the output node
   with a capacitor C to ground.  Output noise density at DC = 4kTR; the
   integrated noise over all frequencies is kT/C, so over a wide band the
   RMS approaches sqrt(kT/C). *)
let test_noise_rc_closed_form () =
  let b = N.Builder.create ~title:"kT/C" () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"out" 1e4;
  N.Builder.capacitor b "c1" ~a:"out" ~b:"0" 1e-12;
  let c = N.Builder.finish b in
  let input = Nodal.Vsrc_element "vin" and output = Nodal.Out_node "out" in
  let p = Noise.at c ~input ~output ~freq_hz:1. in
  let kt = 1.380649e-23 *. 300. in
  check_rel "4kTR at DC" (4. *. kt *. 1e4) p.Noise.output_density 1e-6;
  Alcotest.(check int) "one contribution" 1 (List.length p.Noise.contributions);
  check_rel "input-referred equals output below the pole"
    p.Noise.output_density p.Noise.input_density 1e-3;
  (* kT/C integrated noise. *)
  let freqs = Symref_numeric.Grid.logspace 1. 1e12 400 in
  let pts = Noise.sweep c ~input ~output ~freqs in
  let rms = Noise.integrate_rms pts in
  let ktc = Float.sqrt (kt /. 1e-12) in
  check_rel "kT/C rms" ktc rms 0.05

let test_noise_attenuator () =
  (* A 10:1 resistive divider: input-referred noise is output noise * 100. *)
  let b = N.Builder.create ~title:"divider" () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"out" 9e3;
  N.Builder.resistor b "r2" ~a:"out" ~b:"0" 1e3;
  let c = N.Builder.finish b in
  let p =
    Noise.at c ~input:(Nodal.Vsrc_element "vin") ~output:(Nodal.Out_node "out")
      ~freq_hz:1e3
  in
  (* Output noise of R1 || R2 = 900 ohm: 4kT * 900. *)
  let kt = 1.380649e-23 *. 300. in
  check_rel "divider output noise" (4. *. kt *. 900.) p.Noise.output_density 1e-6;
  check_rel "input referred x100" (p.Noise.output_density *. 100.) p.Noise.input_density
    1e-6

let test_noise_ranking_ua741 () =
  let p =
    Noise.at Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output) ~freq_hz:1e3
  in
  Alcotest.(check bool) "many sources" true (List.length p.Noise.contributions > 50);
  (* Sorted descending and total = sum. *)
  let rec sorted (l : Noise.contribution list) =
    match l with
    | a :: (b :: _ as rest) ->
        a.Noise.output_density >= b.Noise.output_density && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted p.Noise.contributions);
  let total =
    List.fold_left
      (fun acc (c : Noise.contribution) -> acc +. c.Noise.output_density)
      0. p.Noise.contributions
  in
  check_rel "sum" total p.Noise.output_density 1e-9;
  (* The input pair dominates the input-referred noise of a decent opamp:
     its gm sources must be near the top among transistor contributions. *)
  match p.Noise.contributions with
  | top :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "plausible dominant source: %s" top.Noise.element)
        true
        (String.length top.Noise.element > 0)
  | [] -> Alcotest.fail "no contributions"

let suite =
  [
    ( "margins",
      [
        Alcotest.test_case "single pole closed form" `Quick test_margins_single_pole;
        Alcotest.test_case "ua741 textbook figures" `Quick test_margins_ua741;
      ] );
    ( "noise",
      [
        Alcotest.test_case "rc kT/C closed form" `Quick test_noise_rc_closed_form;
        Alcotest.test_case "resistive divider" `Quick test_noise_attenuator;
        Alcotest.test_case "ua741 ranking" `Quick test_noise_ranking_ua741;
      ] );
  ]
