(* Tests for the nodal evaluator and the AC simulator, cross-validated
   against closed forms and against each other. *)

module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module N = Symref_circuit.Netlist
module Ladder = Symref_circuit.Rc_ladder
module Ota = Symref_circuit.Ota
module Ua741 = Symref_circuit.Ua741
module Gm_c = Symref_circuit.Gm_c
module Ec = Symref_numeric.Extcomplex
module Ef = Symref_numeric.Extfloat
module Cx = Symref_numeric.Cx

let check_float = Alcotest.(check (float 1e-9))

let check_cx ?(rel = 1e-9) msg a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s vs %s" msg (Cx.to_string a) (Cx.to_string b))
    true
    (Cx.approx_equal ~rel ~abs:1e-300 a b)

(* Closed form for the 1-section RC lowpass: H = 1 / (1 + sRC). *)
let rc_lowpass_h s = Complex.div Complex.one (Complex.add Complex.one (Cx.scale 1e-9 s))

let lowpass_problem () =
  Nodal.make (Ladder.circuit 1) ~input:(Nodal.Vsrc_element "vin")
    ~output:(Nodal.Out_node Ladder.output_node)

let test_nodal_lowpass () =
  let t = lowpass_problem () in
  Alcotest.(check int) "dimension 1" 1 (Nodal.dimension t);
  Alcotest.(check int) "order bound 1" 1 (Nodal.order_bound t);
  Alcotest.(check int) "den gdeg" 1 (Nodal.den_gdeg t);
  List.iter
    (fun s ->
      let v = Nodal.eval t s in
      Alcotest.(check bool) "regular" false v.Nodal.singular;
      check_cx "H matches closed form" (rc_lowpass_h s) v.Nodal.h)
    [ Complex.one; Cx.j; Cx.make (-0.3) 0.8; Cx.jomega 1e9 ]

let test_nodal_num_den_consistency () =
  let t = lowpass_problem () in
  let s = Cx.make 0.25 (-0.7) in
  let v = Nodal.eval t s in
  (* N/D must equal H. *)
  let h = Ec.to_complex (Ec.div v.Nodal.num v.Nodal.den) in
  check_cx "N/D = H" v.Nodal.h h

let test_nodal_scaling_relation () =
  (* Scaled evaluation must satisfy D_fg(s) = g^gdeg * D(s*f/g): the
     homogeneity property (eq. 11) the whole algorithm rests on. *)
  let check_circuit name t =
    let f = 2.5e8 and g = 4.2e3 in
    let s = Cx.make 0.6 0.8 in
    let scaled = Nodal.eval ~f ~g t s in
    let unscaled = Nodal.eval t (Cx.scale (f /. g) s) in
    let gdeg = Nodal.den_gdeg t in
    let factor = Ec.of_extfloat (Ef.float_pow_int g gdeg) in
    let expect_den = Ec.mul factor unscaled.Nodal.den in
    Alcotest.(check bool)
      (name ^ ": denominator homogeneity")
      true
      (Ec.approx_equal ~rel:1e-9 expect_den scaled.Nodal.den);
    let nfactor = Ec.of_extfloat (Ef.float_pow_int g (Nodal.num_gdeg t)) in
    let expect_num = Ec.mul nfactor unscaled.Nodal.num in
    Alcotest.(check bool)
      (name ^ ": numerator homogeneity")
      true
      (Ec.approx_equal ~rel:1e-9 expect_num scaled.Nodal.num)
  in
  check_circuit "ladder"
    (Nodal.make (Ladder.circuit 4) ~input:(Nodal.Vsrc_element "vin")
       ~output:(Nodal.Out_node Ladder.output_node));
  check_circuit "ota"
    (Nodal.make Ota.circuit
       ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
       ~output:(Nodal.Out_node Ota.output))

let test_nodal_ota_dc_gain () =
  let t =
    Nodal.make Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output)
  in
  Alcotest.(check int) "dimension: t x1 x2 out" 4 (Nodal.dimension t);
  Alcotest.(check int) "order bound min(caps=9, dim=4)" 4 (Nodal.order_bound t);
  let v = Nodal.eval t Complex.zero in
  let gain = Complex.norm v.Nodal.h in
  Alcotest.(check bool)
    (Printf.sprintf "DC gain substantial (%.1f)" gain)
    true (gain > 100.)

let test_nodal_unsupported () =
  let b = N.Builder.create () in
  N.Builder.inductor b "l1" ~a:"x" ~b:"0" 1e-9;
  N.Builder.resistor b "r1" ~a:"x" ~b:"y" 1e3;
  let c = N.Builder.finish b in
  Alcotest.(check bool) "raises Unsupported" true
    (try
       ignore (Nodal.make c ~input:(Nodal.V_single "x") ~output:(Nodal.Out_node "y"));
       false
     with Nodal.Unsupported _ -> true);
  let lad = Ladder.circuit 1 in
  Alcotest.(check bool) "unknown output" true
    (try
       ignore
         (Nodal.make lad ~input:(Nodal.Vsrc_element "vin")
            ~output:(Nodal.Out_node "nowhere"));
       false
     with Nodal.Unsupported _ -> true)

let test_ac_lowpass () =
  let c = Ladder.circuit 1 in
  let fc = 1. /. (2. *. Float.pi *. 1e-9) in
  let pts = Ac.bode c ~out_p:Ladder.output_node [| fc /. 100.; fc |] in
  Alcotest.(check (float 0.01)) "flat at low freq" 0. pts.(0).Ac.mag_db;
  Alcotest.(check (float 0.01)) "-3dB at corner" (-3.0103) pts.(1).Ac.mag_db;
  Alcotest.(check (float 0.1)) "-45 deg at corner" (-45.) pts.(1).Ac.phase_deg

let test_ac_rlc_resonance () =
  (* Series RLC driven by 1V, output across C: |H| at resonance = Q. *)
  let b = N.Builder.create () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"x" 10.;
  N.Builder.inductor b "l1" ~a:"x" ~b:"out" 1e-6;
  N.Builder.capacitor b "c1" ~a:"out" ~b:"0" 1e-9;
  let c = N.Builder.finish b in
  let w0 = 1. /. Float.sqrt (1e-6 *. 1e-9) in
  let q = Float.sqrt (1e-6 /. 1e-9) /. 10. in
  let h = Ac.transfer c ~out_p:"out" [| w0 /. (2. *. Float.pi) |] in
  Alcotest.(check (float 0.02)) "peak = Q" q (Complex.norm h.(0))

let test_ac_controlled_sources () =
  (* VCVS doubling: out = 2 * in. *)
  let b = N.Builder.create () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.vcvs b "e1" ~p:"out" ~m:"0" ~cp:"in" ~cm:"0" 2.;
  N.Builder.resistor b "rl" ~a:"out" ~b:"0" 1e3;
  let c = N.Builder.finish b in
  let h = Ac.transfer c ~out_p:"out" [| 1e3 |] in
  check_cx "vcvs gain" (Cx.of_float 2.) h.(0);
  (* CCCS mirror: i(vsense) pushed into a 1 ohm resistor. *)
  let b = N.Builder.create () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"x" 1e3;
  N.Builder.vsrc b "vsense" ~p:"x" ~m:"0" 0.;
  N.Builder.cccs b "f1" ~p:"0" ~m:"out" ~vname:"vsense" 3.;
  N.Builder.resistor b "r2" ~a:"out" ~b:"0" 1.;
  let c = N.Builder.finish b in
  let h = Ac.transfer c ~out_p:"out" [| 1e3 |] in
  (* i(vsense) = 1V/1k = 1mA; out = 3 * 1mA * 1ohm = 3mV. *)
  check_cx ~rel:1e-6 "cccs" (Cx.of_float 3e-3) h.(0)

let test_ac_matches_nodal () =
  (* The two independent formulations must agree on the jw axis. *)
  let check name circuit input out_p out_m freqs =
    let t = Nodal.make circuit ~input ~output:(match out_m with
      | None -> Nodal.Out_node out_p
      | Some m -> Nodal.Out_diff (out_p, m))
    in
    (* Drive the AC simulator with explicit sources. *)
    let with_sources =
      N.extend circuit (fun b ->
          match input with
          | Nodal.V_diff (p, m) ->
              N.Builder.vsrc b "_tp" ~p ~m:"0" 0.5;
              N.Builder.vsrc b "_tm" ~p:m ~m:"0" (-0.5)
          | Nodal.V_common (p, m) ->
              N.Builder.vsrc b "_tp" ~p ~m:"0" 1.;
              N.Builder.vsrc b "_tm" ~p:m ~m:"0" 1.
          | Nodal.V_single p -> N.Builder.vsrc b "_tp" ~p ~m:"0" 1.
          | Nodal.I_single a -> N.Builder.isrc b "_ti" ~a:"0" ~b:a 1.
          | Nodal.Vsrc_element _ -> ())
    in
    let ac = Ac.transfer with_sources ~out_p ?out_m freqs in
    Array.iteri
      (fun i f ->
        let v = Nodal.eval t (Cx.jomega (2. *. Float.pi *. f)) in
        check_cx ~rel:1e-6
          (Printf.sprintf "%s @ %g Hz" name f)
          ac.(i) v.Nodal.h)
      freqs
  in
  check "ladder-4" (Ladder.circuit 4) (Nodal.Vsrc_element "vin") Ladder.output_node
    None [| 1e3; 1e6; 1e8 |];
  check "ota" Ota.circuit
    (Nodal.V_diff (Ota.input_p, Ota.input_n))
    Ota.output None [| 1.; 1e5; 1e7 |];
  check "gm-c-8" (Gm_c.circuit 8) (Nodal.V_single Gm_c.input_node)
    (Gm_c.output_node 8) None [| 1e3; 1e6 |];
  check "ua741" Ua741.circuit
    (Nodal.V_diff (Ua741.input_p, Ua741.input_n))
    Ua741.output None [| 1.; 1e3; 1e6 |]

let test_ua741_dc_gain () =
  let t =
    Nodal.make Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let v = Nodal.eval t Complex.zero in
  let gain_db = 20. *. Float.log10 (Complex.norm v.Nodal.h) in
  Alcotest.(check bool)
    (Printf.sprintf "open-loop DC gain plausible: %.1f dB" gain_db)
    true
    (gain_db > 80. && gain_db < 140.);
  Alcotest.(check bool) "dimension ~48" true (Nodal.dimension t >= 40)

let test_unwrap () =
  let ph = [| -170.; 170.; 150.; -179.; 179. |] in
  let u = Ac.unwrap_phase_deg ph in
  check_float "first untouched" (-170.) u.(0);
  check_float "wrap down removed" (-190.) u.(1);
  check_float "no jump" (-210.) u.(2);
  check_float "wrap up removed" (-179.) u.(3);
  check_float "second wrap down" (-181.) u.(4)

let suite =
  [
    ( "nodal",
      [
        Alcotest.test_case "rc lowpass closed form" `Quick test_nodal_lowpass;
        Alcotest.test_case "N/D consistency" `Quick test_nodal_num_den_consistency;
        Alcotest.test_case "scaling homogeneity (eq 11)" `Quick test_nodal_scaling_relation;
        Alcotest.test_case "ota dc gain" `Quick test_nodal_ota_dc_gain;
        Alcotest.test_case "unsupported inputs" `Quick test_nodal_unsupported;
      ] );
    ( "ac",
      [
        Alcotest.test_case "rc lowpass bode" `Quick test_ac_lowpass;
        Alcotest.test_case "rlc resonance" `Quick test_ac_rlc_resonance;
        Alcotest.test_case "controlled sources" `Quick test_ac_controlled_sources;
        Alcotest.test_case "ac matches nodal" `Quick test_ac_matches_nodal;
        Alcotest.test_case "ua741 dc gain" `Quick test_ua741_dc_gain;
        Alcotest.test_case "phase unwrap" `Quick test_unwrap;
      ] );
  ]
