(* Tests for the Monte-Carlo tolerance analysis. *)

module Mc = Symref_mna.Monte_carlo
module Nodal = Symref_mna.Nodal
module N = Symref_circuit.Netlist
module E = Symref_circuit.Element
module Ladder = Symref_circuit.Rc_ladder
module Biquad = Symref_circuit.Biquad

let divider () =
  let b = N.Builder.create ~title:"divider" () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"out" 1e3;
  N.Builder.resistor b "r2" ~a:"out" ~b:"0" 1e3;
  N.Builder.finish b

let test_deterministic () =
  let c = divider () in
  let freqs = [| 1e3 |] in
  let run () =
    Mc.gain_spread c ~input:(Nodal.Vsrc_element "vin") ~output:(Nodal.Out_node "out")
      ~freqs
  in
  let a = run () and b = run () in
  Alcotest.(check (float 0.)) "same seed, same mean" a.(0).Mc.mean_db b.(0).Mc.mean_db;
  Alcotest.(check (float 0.)) "same std" a.(0).Mc.std_db b.(0).Mc.std_db;
  let config = { Mc.default_config with Mc.seed = 99 } in
  let c2 =
    Mc.gain_spread ~config c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out") ~freqs
  in
  Alcotest.(check bool) "different seed, different mean" true
    (c2.(0).Mc.mean_db <> a.(0).Mc.mean_db)

let test_divider_spread () =
  let c = divider () in
  let freqs = [| 1e3 |] in
  let config = { Mc.default_config with Mc.samples = 400 } in
  let s =
    (Mc.gain_spread ~config c ~input:(Nodal.Vsrc_element "vin")
       ~output:(Nodal.Out_node "out") ~freqs).(0)
  in
  Alcotest.(check (float 0.01)) "nominal -6dB" (-6.0206) s.Mc.nominal_db;
  (* Two independent 10% resistors: gain spread should be well within
     +-2 dB, mean near nominal, and strictly positive std. *)
  Alcotest.(check bool) "mean near nominal" true
    (Float.abs (s.Mc.mean_db -. s.Mc.nominal_db) < 0.2);
  Alcotest.(check bool) "std positive" true (s.Mc.std_db > 0.05);
  Alcotest.(check bool) "std bounded" true (s.Mc.std_db < 1.);
  Alcotest.(check bool) "min < nominal < max" true
    (s.Mc.min_db < s.Mc.nominal_db && s.Mc.nominal_db < s.Mc.max_db)

let test_exact_elements_no_spread () =
  let c = divider () in
  let config =
    { Mc.default_config with Mc.tolerance = (fun _ -> None); samples = 20 }
  in
  let s =
    (Mc.gain_spread ~config c ~input:(Nodal.Vsrc_element "vin")
       ~output:(Nodal.Out_node "out") ~freqs:[| 1e3 |]).(0)
  in
  Alcotest.(check (float 1e-12)) "no spread" 0. s.Mc.std_db;
  Alcotest.(check (float 1e-9)) "mean = nominal" s.Mc.nominal_db s.Mc.mean_db

let test_yield () =
  (* Passband-gain spec on a biquad: a tight spec fails more samples than a
     loose one, and the loose spec passes everything. *)
  let c = Biquad.cascade [ { Biquad.f0_hz = 1e6; q = 1.5; gm = 40e-6 } ] in
  let input = Nodal.Vsrc_element "vin" and output = Nodal.Out_node "out" in
  let freqs = [| 1e6 |] in
  let config = { Mc.default_config with Mc.samples = 120 } in
  let spec tol h =
    (* |H| at f0 should be ~Q; accept within tol dB. *)
    let db = 20. *. Float.log10 (Complex.norm h.(0)) in
    let nominal = 20. *. Float.log10 1.5 in
    Float.abs (db -. nominal) <= tol
  in
  let loose = Mc.yield_ ~config c ~input ~output ~accept:(spec 20.) ~freqs in
  let tight = Mc.yield_ ~config c ~input ~output ~accept:(spec 0.15) ~freqs in
  Alcotest.(check (float 1e-9)) "loose passes all" 1. loose;
  Alcotest.(check bool)
    (Printf.sprintf "tight yield %.2f in (0,1)" tight)
    true
    (tight > 0.02 && tight < 0.98)

let test_ladder_band_edges () =
  (* Spread grows near the rolloff where sensitivity to RC is largest. *)
  let c = Ladder.circuit 3 in
  let fc = 1. /. (2. *. Float.pi *. 1e-9) in
  let freqs = [| fc /. 1e3; fc *. 3. |] in
  let config = { Mc.default_config with Mc.samples = 150 } in
  let s =
    Mc.gain_spread ~config c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node) ~freqs
  in
  Alcotest.(check bool)
    (Printf.sprintf "std at rolloff (%.3f) > std in passband (%.3f)" s.(1).Mc.std_db
       s.(0).Mc.std_db)
    true
    (s.(1).Mc.std_db > (s.(0).Mc.std_db *. 5.))

let suite =
  [
    ( "monte-carlo",
      [
        Alcotest.test_case "deterministic seeding" `Quick test_deterministic;
        Alcotest.test_case "divider spread" `Quick test_divider_spread;
        Alcotest.test_case "exact elements" `Quick test_exact_elements_no_spread;
        Alcotest.test_case "yield" `Quick test_yield;
        Alcotest.test_case "spread grows at rolloff" `Quick test_ladder_band_edges;
      ] );
  ]
