(* Nested-form compaction: value-preserving, operation-reducing. *)

module Nested = Symref_symbolic.Nested
module Sdet = Symref_symbolic.Sdet
module Sym = Symref_symbolic.Sym
module Nodal = Symref_mna.Nodal
module Ota = Symref_circuit.Ota
module Ladder = Symref_circuit.Rc_ladder
module Cx = Symref_numeric.Cx

let check_same_value msg expr points =
  let nested = Nested.nest expr in
  List.iter
    (fun s ->
      let flat = Sym.eval expr s in
      let nest = Nested.eval nested s in
      Alcotest.(check bool)
        (Printf.sprintf "%s at %s: %s vs %s" msg (Cx.to_string s) (Cx.to_string flat)
           (Cx.to_string nest))
        true
        (Cx.approx_equal ~rel:1e-9 ~abs:1e-300 flat nest))
    points

let points = [ Complex.zero; Cx.jomega 1e6; Cx.make (-2e5) 7e5 ]

let test_value_preserved_ladder () =
  let nf =
    Sdet.network_function (Ladder.circuit 3) ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  check_same_value "ladder den" nf.Sdet.den points;
  check_same_value "ladder num" nf.Sdet.num points

let test_value_preserved_ota () =
  let nf =
    Sdet.network_function Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output)
  in
  check_same_value "ota den (1244 terms)" nf.Sdet.den points

let test_operation_reduction () =
  let nf =
    Sdet.network_function Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output)
  in
  let flat = Nested.expanded_operations nf.Sdet.den in
  let nested = Nested.operations (Nested.nest nf.Sdet.den) in
  Alcotest.(check bool)
    (Printf.sprintf "ops reduced: %d -> %d" flat nested)
    true
    (nested * 2 < flat)

let test_to_string () =
  let g n v = Sym.of_symbol (Sym.symbol ~name:n ~value:v Sym.Conductance) in
  (* a*b + a*c -> a*(b + c) *)
  let e = Sym.add (Sym.mul (g "a" 1.) (g "b" 2.)) (Sym.mul (g "a" 1.) (g "c" 3.)) in
  let s = Nested.to_string (Nested.nest e) in
  Alcotest.(check string) "factored string" "a*(b + c)" s;
  Alcotest.(check int) "2 ops" 2 (Nested.operations (Nested.nest e));
  Alcotest.(check int) "3 ops expanded" 3 (Nested.expanded_operations e)

let suite =
  [
    ( "nested",
      [
        Alcotest.test_case "value preserved (ladder)" `Quick test_value_preserved_ladder;
        Alcotest.test_case "value preserved (ota)" `Quick test_value_preserved_ota;
        Alcotest.test_case "operation reduction" `Quick test_operation_reduction;
        Alcotest.test_case "factored printing" `Quick test_to_string;
      ] );
  ]
