(* The shipped sample netlists must parse and analyse end to end. *)

module Parser = Symref_spice.Parser
module N = Symref_circuit.Netlist
module Transform = Symref_circuit.Transform
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Reference = Symref_core.Reference
module Poles = Symref_core.Poles

let path name = Filename.concat "../examples/netlists" name

let load name = Parser.parse_file (path name)

let test_rc_filter () =
  let c = load "rc_filter.cir" in
  Alcotest.(check int) "elements" 7 (N.element_count c);
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "v1") ~output:(Nodal.Out_node "out")
  in
  Alcotest.(check (float 1e-6)) "dc gain 1" 1. (Reference.dc_gain r);
  Alcotest.(check int) "third order" 3
    r.Reference.den.Symref_core.Adaptive.effective_order

let test_two_stage_bjt () =
  let c = load "two_stage_bjt.cir" in
  let h = (Ac.transfer c ~out_p:"c2" [| 1e4 |]).(0) in
  let db = 20. *. Float.log10 (Complex.norm h) in
  Alcotest.(check bool)
    (Printf.sprintf "midband gain %.1f dB in (50, 65)" db)
    true
    (db > 50. && db < 65.)

let test_sallen_key () =
  let c = load "sallen_key.cir" in
  Alcotest.(check bool) "nodal after source removal" true
    (N.is_nodal_class (N.remove_element c "v1"));
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "v1") ~output:(Nodal.Out_node "out")
  in
  (* Unity DC gain through two unity-feedback sections (within the finite
     opamp gain ~60 dB). *)
  Alcotest.(check bool)
    (Printf.sprintf "dc gain ~1 (%.4f)" (Reference.dc_gain r))
    true
    (Float.abs (Reference.dc_gain r -. 1.) < 0.02);
  (* Passband flat, stopband falling: |H| at 1 kHz >> |H| at 1 MHz. *)
  let mag f = Complex.norm (Reference.eval r { Complex.re = 0.; im = 2. *. Float.pi *. f }) in
  Alcotest.(check bool) "lowpass rolloff" true (mag 1e3 > 100. *. mag 1e6)

let test_crossover () =
  let c = Transform.inductors_to_gyrators (load "crossover.cir") in
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "v1") ~output:(Nodal.Out_node "w1")
  in
  let a = Poles.analyse r in
  Alcotest.(check bool) "stable" true a.Poles.stable;
  (* Crossover frequency 1/(2 pi sqrt(LC)) ~ 1418 Hz. *)
  let f0 = 1. /. (2. *. Float.pi *. Float.sqrt (0.9e-3 *. 14e-6)) in
  match a.Poles.resonances with
  | r1 :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "resonance %.0f ~ %.0f Hz" r1.Poles.freq_hz f0)
        true
        (Float.abs (r1.Poles.freq_hz -. f0) < 0.02 *. f0)
  | [] -> Alcotest.fail "expected resonances"

let test_ua741_file () =
  let c = load "ua741.cir" in
  (* Written-out 741 with its sources: the AC gain must match the library
     circuit's. *)
  let h = (Ac.transfer c ~out_p:"out" [| 10. |]).(0) in
  let db = 20. *. Float.log10 (Complex.norm h) in
  Alcotest.(check bool)
    (Printf.sprintf "gain at 10 Hz %.1f dB in (85, 100)" db)
    true
    (db > 85. && db < 100.)

let suite =
  [
    ( "netlist-files",
      [
        Alcotest.test_case "rc_filter.cir" `Quick test_rc_filter;
        Alcotest.test_case "two_stage_bjt.cir" `Quick test_two_stage_bjt;
        Alcotest.test_case "sallen_key.cir" `Quick test_sallen_key;
        Alcotest.test_case "crossover.cir" `Quick test_crossover;
        Alcotest.test_case "ua741.cir" `Quick test_ua741_file;
      ] );
  ]
