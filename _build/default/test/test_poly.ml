(* Unit and property tests for Poly and Epoly. *)

module Poly = Symref_poly.Poly
module Epoly = Symref_poly.Epoly
module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Cx = Symref_numeric.Cx

let check_float = Alcotest.(check (float 1e-9))

let test_construction () =
  let p = Poly.of_list [ 1.; 2.; 0.; 0. ] in
  Alcotest.(check int) "trimmed degree" 1 (Poly.degree p);
  Alcotest.(check int) "zero degree" (-1) (Poly.degree Poly.zero);
  check_float "coeff in range" 2. (Poly.coeff p 1);
  check_float "coeff beyond degree" 0. (Poly.coeff p 7)

let test_arith () =
  let a = Poly.of_list [ 1.; 1. ] (* 1 + s *)
  and b = Poly.of_list [ -1.; 1. ] (* -1 + s *) in
  Alcotest.(check bool) "product is s^2 - 1" true
    (Poly.equal (Poly.mul a b) (Poly.of_list [ -1.; 0.; 1. ]));
  Alcotest.(check bool) "sum" true
    (Poly.equal (Poly.add a b) (Poly.of_list [ 0.; 2. ]));
  Alcotest.(check bool) "cancelling sub trims" true
    (Poly.is_zero (Poly.sub a a));
  Alcotest.(check bool) "monomial shift" true
    (Poly.equal (Poly.mul_monomial a 2) (Poly.of_list [ 0.; 0.; 1.; 1. ]))

let test_eval () =
  let p = Poly.of_list [ 1.; -3.; 2. ] in
  check_float "horner real" (1. -. 9. +. 18.) (Poly.eval p 3.);
  let z = Poly.eval_complex p Cx.j in
  (* 1 - 3j + 2 j^2 = -1 - 3j *)
  check_float "horner complex re" (-1.) z.Complex.re;
  check_float "horner complex im" (-3.) z.Complex.im

let test_scale_var () =
  let p = Poly.of_list [ 1.; 1.; 1. ] in
  let q = Poly.scale_var p 10. in
  Alcotest.(check bool) "s -> 10s" true
    (Poly.equal q (Poly.of_list [ 1.; 10.; 100. ]));
  check_float "eval consistency" (Poly.eval p 30.) (Poly.eval q 3.)

let test_derivative_roots () =
  let p = Poly.of_roots [ 1.; 2. ] in
  Alcotest.(check bool) "(s-1)(s-2)" true
    (Poly.equal p (Poly.of_list [ 2.; -3.; 1. ]));
  Alcotest.(check bool) "derivative" true
    (Poly.equal (Poly.derivative p) (Poly.of_list [ -3.; 2. ]))

let test_epoly_eval () =
  let p = Epoly.of_floats [| 1.; -3.; 2. |] in
  let v = Epoly.eval p (Ec.of_complex { Complex.re = 3.; im = 0. }) in
  check_float "matches float horner" 10. (Ef.to_float (Ec.re v));
  let vj = Epoly.eval_jomega p 1. in
  check_float "jomega re" (-1.) (Ef.to_float (Ec.re vj));
  check_float "jomega im" (-3.) (Ef.to_float (Ec.im vj))

let test_epoly_extended () =
  (* Coefficients spanning 600 decades must evaluate without under/overflow:
     p(s) = 1e-300 + 1e300 * s at s = 1e-300 gives ~1 + 1e-300 ~ 1. *)
  let p = Epoly.of_coeffs [| Ef.of_decimal 1. (-300); Ef.of_decimal 1. 300 |] in
  let v = Epoly.eval p (Ec.of_extfloat (Ef.of_decimal 1. (-300))) in
  check_float "no underflow" 1. (Ef.to_float (Ec.re v));
  let m = Epoly.max_abs_coeff p in
  check_float "max coeff" 300. (Ef.log10_abs m)

let test_epoly_scale_var () =
  let p = Epoly.of_floats [| 2.; 3.; 4. |] in
  let q = Epoly.scale_var p (Ef.of_float 100.) in
  Alcotest.(check bool) "coefficients gain a^i" true
    (Epoly.approx_equal q (Epoly.of_floats [| 2.; 300.; 40000. |]))

let test_epoly_arith () =
  let a = Epoly.of_floats [| 1.; 1. |] and b = Epoly.of_floats [| -1.; 1. |] in
  Alcotest.(check bool) "mul" true
    (Epoly.approx_equal (Epoly.mul a b) (Epoly.of_floats [| -1.; 0.; 1. |]));
  Alcotest.(check bool) "sub trims" true (Epoly.is_zero (Epoly.sub a a));
  Alcotest.(check int) "degree after add" 1 (Epoly.degree (Epoly.add a b))

let small_poly_gen =
  QCheck2.Gen.(
    map
      (fun l -> Poly.of_list l)
      (list_size (int_range 0 8) (float_range (-10.) 10.)))

let prop_eval_add_linear =
  QCheck2.Test.make ~name:"eval of sum = sum of evals" ~count:200
    QCheck2.Gen.(triple small_poly_gen small_poly_gen (float_range (-2.) 2.))
    (fun (a, b, x) ->
      let lhs = Poly.eval (Poly.add a b) x in
      let rhs = Poly.eval a x +. Poly.eval b x in
      Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1. (Float.abs rhs))

let prop_eval_mul =
  QCheck2.Test.make ~name:"eval of product = product of evals" ~count:200
    QCheck2.Gen.(triple small_poly_gen small_poly_gen (float_range (-2.) 2.))
    (fun (a, b, x) ->
      let lhs = Poly.eval (Poly.mul a b) x in
      let rhs = Poly.eval a x *. Poly.eval b x in
      Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1. (Float.abs rhs))

let prop_epoly_matches_poly =
  QCheck2.Test.make ~name:"epoly eval matches poly eval" ~count:200
    QCheck2.Gen.(pair small_poly_gen (float_range (-2.) 2.))
    (fun (p, x) ->
      let ep = Epoly.of_poly p in
      let v = Ef.to_float (Ec.re (Epoly.eval ep (Ec.of_complex { re = x; im = 0. }))) in
      Float.abs (v -. Poly.eval p x) <= 1e-9 *. Float.max 1. (Float.abs (Poly.eval p x)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_eval_add_linear; prop_eval_mul; prop_epoly_matches_poly ]

let suite =
  [
    ( "poly",
      [
        Alcotest.test_case "construction" `Quick test_construction;
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "evaluation" `Quick test_eval;
        Alcotest.test_case "scale_var" `Quick test_scale_var;
        Alcotest.test_case "derivative/roots" `Quick test_derivative_roots;
      ]
      @ props );
    ( "epoly",
      [
        Alcotest.test_case "evaluation" `Quick test_epoly_eval;
        Alcotest.test_case "extended range" `Quick test_epoly_extended;
        Alcotest.test_case "scale_var" `Quick test_epoly_scale_var;
        Alcotest.test_case "arithmetic" `Quick test_epoly_arith;
      ] );
  ]
