(* Cross-cutting algebraic property tests (qcheck) for the numeric and
   linear-algebra substrates. *)

module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Epoly = Symref_poly.Epoly
module Poly = Symref_poly.Poly
module Dense = Symref_linalg.Dense
module Sparse = Symref_linalg.Sparse
module Units = Symref_spice.Units
module Band = Symref_core.Band
module Cx = Symref_numeric.Cx

(* Extended floats across a huge dynamic range. *)
let ef_gen =
  QCheck2.Gen.(
    map
      (fun (d, k, neg) -> Ef.of_decimal (if neg then -.d else d) k)
      (triple (float_range 1. 9.99) (int_range (-400) 400) bool))

let ef_eq = Ef.approx_equal ~rel:1e-12

let prop_mul_commutes =
  QCheck2.Test.make ~name:"extfloat mul commutes across 800 decades" ~count:300
    QCheck2.Gen.(pair ef_gen ef_gen)
    (fun (a, b) -> ef_eq (Ef.mul a b) (Ef.mul b a))

let prop_mul_associates =
  QCheck2.Test.make ~name:"extfloat mul associates" ~count:300
    QCheck2.Gen.(triple ef_gen ef_gen ef_gen)
    (fun (a, b, c) -> ef_eq (Ef.mul (Ef.mul a b) c) (Ef.mul a (Ef.mul b c)))

let prop_distributes =
  (* Restricted to comparable magnitudes: distribution only holds when the
     sum is not annihilated by the 60-bit alignment window. *)
  let near_gen =
    QCheck2.Gen.(
      map
        (fun (d1, d2, k) -> (Ef.of_decimal d1 k, Ef.of_decimal d2 k))
        (triple (float_range 1. 9.99) (float_range 1. 9.99) (int_range (-300) 300)))
  in
  QCheck2.Test.make ~name:"extfloat distributes on comparable operands" ~count:300
    QCheck2.Gen.(pair near_gen ef_gen)
    (fun ((a, b), c) ->
      ef_eq (Ef.mul c (Ef.add a b)) (Ef.add (Ef.mul c a) (Ef.mul c b)))

let prop_div_inverse =
  QCheck2.Test.make ~name:"extfloat division inverts multiplication" ~count:300
    QCheck2.Gen.(pair ef_gen ef_gen)
    (fun (a, b) -> ef_eq a (Ef.div (Ef.mul a b) b))

let prop_pow_homomorphism =
  QCheck2.Test.make ~name:"extfloat pow_int is a homomorphism" ~count:200
    QCheck2.Gen.(triple ef_gen (int_range 0 12) (int_range 0 12))
    (fun (a, m, n) -> ef_eq (Ef.pow_int a (m + n)) (Ef.mul (Ef.pow_int a m) (Ef.pow_int a n)))

let prop_extcomplex_field =
  let ec_gen =
    QCheck2.Gen.(
      map
        (fun (re, im, k) ->
          Ec.mul (Ec.of_complex { Complex.re; im }) (Ec.of_extfloat (Ef.of_decimal 1. k)))
        (triple (float_range 0.1 2.) (float_range 0.1 2.) (int_range (-200) 200)))
  in
  QCheck2.Test.make ~name:"extcomplex a * b / b = a" ~count:300
    QCheck2.Gen.(pair ec_gen ec_gen)
    (fun (a, b) -> Ec.approx_equal ~rel:1e-10 a (Ec.div (Ec.mul a b) b))

(* Polynomial identities at extended points. *)
let epoly_gen =
  QCheck2.Gen.(
    map
      (fun l -> Epoly.of_floats (Array.of_list l))
      (list_size (int_range 1 6) (float_range (-3.) 3.)))

let prop_epoly_ring =
  QCheck2.Test.make ~name:"epoly (a+b)*c = a*c + b*c" ~count:200
    QCheck2.Gen.(triple epoly_gen epoly_gen epoly_gen)
    (fun (a, b, c) ->
      Epoly.approx_equal ~rel:1e-9
        (Epoly.mul (Epoly.add a b) c)
        (Epoly.add (Epoly.mul a c) (Epoly.mul b c)))

let prop_epoly_derivative_linear =
  QCheck2.Test.make ~name:"epoly derivative is linear" ~count:200
    QCheck2.Gen.(pair epoly_gen epoly_gen)
    (fun (a, b) ->
      Epoly.approx_equal ~rel:1e-9
        (Epoly.derivative (Epoly.add a b))
        (Epoly.add (Epoly.derivative a) (Epoly.derivative b)))

let prop_epoly_scale_var_eval =
  QCheck2.Test.make ~name:"epoly scale_var consistency" ~count:200
    QCheck2.Gen.(triple epoly_gen (float_range 0.1 10.) (float_range (-2.) 2.))
    (fun (p, a, x) ->
      let lhs = Epoly.eval (Epoly.scale_var p (Ef.of_float a)) (Ec.of_complex { re = x; im = 0. }) in
      let rhs = Epoly.eval p (Ec.of_complex { re = a *. x; im = 0. }) in
      Ec.approx_equal ~rel:1e-9 lhs rhs)

(* Sparse vs dense across densities. *)
let prop_sparse_dense_solve =
  let st = ref 7 in
  let next () =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !st /. float_of_int 0x40000000
  in
  QCheck2.Test.make ~name:"sparse solve = dense solve at any density" ~count:40
    QCheck2.Gen.(pair (int_range 2 14) (float_range 0.1 1.))
    (fun (n, density) ->
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then { Complex.re = 4. +. next (); im = next () }
                else if next () < density then { Complex.re = next () -. 0.5; im = next () -. 0.5 }
                else Complex.zero))
      in
      let b = Array.init n (fun i -> { Complex.re = next (); im = float_of_int i }) in
      let sb = Sparse.create n in
      Array.iteri
        (fun i row ->
          Array.iteri (fun j v -> if v <> Complex.zero then Sparse.add sb i j v) row)
        a;
      let xd = Dense.solve (Dense.factor a) b in
      let xs = Sparse.solve (Sparse.factor sb) b in
      Array.for_all2 (fun p q -> Cx.approx_equal ~rel:1e-7 ~abs:1e-9 p q) xd xs)

(* Units round-trip. *)
let prop_units_roundtrip =
  QCheck2.Test.make ~name:"units format/parse roundtrip" ~count:300
    QCheck2.Gen.(map (fun (d, k) -> d *. (10. ** float_of_int k))
                   (pair (float_range 1. 9.99) (int_range (-14) 13)))
    (fun v ->
      match Units.parse (Units.format_si v) with
      | Some got -> Float.abs (got -. v) <= 1e-4 *. Float.abs v
      | None -> false)

(* Band detection: raising sigma can only shrink the band. *)
let prop_band_monotone =
  let coeffs_gen =
    QCheck2.Gen.(
      map
        (fun l -> Array.of_list (List.map (fun (d, k) -> Ec.of_extfloat (Ef.of_decimal d k)) l))
        (list_size (int_range 2 20) (pair (float_range (-9.99) 9.99) (int_range (-20) 0))))
  in
  QCheck2.Test.make ~name:"band shrinks with sigma" ~count:200 coeffs_gen (fun coeffs ->
      match
        (Band.detect ~sigma:4 ~base:0 coeffs, Band.detect ~sigma:8 ~base:0 coeffs)
      with
      | Some loose, Some tight ->
          tight.Band.lo >= loose.Band.lo && tight.Band.hi <= loose.Band.hi
      | None, None -> true
      | Some _, None -> true
      | None, Some _ -> false)

let suite =
  [
    ( "properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_mul_commutes;
          prop_mul_associates;
          prop_distributes;
          prop_div_inverse;
          prop_pow_homomorphism;
          prop_extcomplex_field;
          prop_epoly_ring;
          prop_epoly_derivative_linear;
          prop_epoly_scale_var_eval;
          prop_sparse_dense_solve;
          prop_units_roundtrip;
          prop_band_monotone;
        ] );
  ]
