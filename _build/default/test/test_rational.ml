(* Tests for the rational-function analyses: partial fractions, time-domain
   responses, group delay — against RC and second-order closed forms. *)

module Rational = Symref_core.Rational
module Reference = Symref_core.Reference
module Nodal = Symref_mna.Nodal
module Ladder = Symref_circuit.Rc_ladder
module Biquad = Symref_circuit.Biquad
module Epoly = Symref_poly.Epoly
module Cx = Symref_numeric.Cx

let check_rel msg want got tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g vs %.6g" msg got want)
    true
    (Float.abs (got -. want) <= (tol *. Float.abs want) +. 1e-12)

let rc_reference () =
  Reference.generate (Ladder.circuit 1) ~input:(Nodal.Vsrc_element "vin")
    ~output:(Nodal.Out_node Ladder.output_node)

let tau = 1e-9 (* RC of the 1-section default ladder *)

let test_rc_modes () =
  let t = Rational.of_reference (rc_reference ()) in
  Alcotest.(check int) "deg num" 0 (Rational.degree_num t);
  Alcotest.(check int) "deg den" 1 (Rational.degree_den t);
  let m = Rational.decompose t in
  Alcotest.(check int) "one pole" 1 (Array.length m.Rational.poles);
  check_rel "pole at -1/tau" (-1. /. tau) m.Rational.poles.(0).Complex.re 1e-9;
  (* H = (1/tau)/(s + 1/tau): residue 1/tau. *)
  check_rel "residue" (1. /. tau) m.Rational.residues.(0).Complex.re 1e-9;
  Alcotest.(check (float 1e-9)) "no direct term" 0. m.Rational.direct;
  Alcotest.(check bool) "quality" true (m.Rational.quality < 1e-9)

let test_rc_time_domain () =
  let t = Rational.of_reference (rc_reference ()) in
  let times = Array.init 6 (fun i -> float_of_int i *. tau /. 2.) in
  let h = Rational.impulse_response t ~times in
  let s = Rational.step_response t ~times in
  Array.iteri
    (fun i time ->
      check_rel
        (Printf.sprintf "impulse at %g" time)
        (Float.exp (-.time /. tau) /. tau)
        h.(i) 1e-6;
      check_rel
        (Printf.sprintf "step at %g" time)
        (1. -. Float.exp (-.time /. tau))
        s.(i) 1e-6)
    times

let test_rc_group_delay () =
  let t = Rational.of_reference (rc_reference ()) in
  (* tau(w) = RC / (1 + (w RC)^2): equals RC at DC, RC/2 at the corner. *)
  check_rel "group delay at DC" tau (Rational.group_delay t ~freq_hz:1.) 1e-3;
  let fc = 1. /. (2. *. Float.pi *. tau) in
  check_rel "group delay at corner" (tau /. 2.)
    (Rational.group_delay t ~freq_hz:fc)
    1e-3

let test_biquad_step_overshoot () =
  (* Underdamped 2nd order: overshoot = exp(-pi zeta / sqrt(1-zeta^2)). *)
  let q = 1.3 in
  let d = { Biquad.f0_hz = 1e6; q; gm = 40e-6 } in
  let c = Biquad.cascade [ d ] in
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out")
  in
  let t = Rational.of_reference r in
  let w0 = 2. *. Float.pi *. 1e6 in
  let times = Array.init 600 (fun i -> float_of_int i *. 0.02 /. w0 *. Float.pi) in
  let s = Rational.step_response t ~times in
  let peak = Array.fold_left Float.max neg_infinity s in
  let zeta = 1. /. (2. *. q) in
  let overshoot = Float.exp (-.Float.pi *. zeta /. Float.sqrt (1. -. (zeta *. zeta))) in
  check_rel "overshoot" (1. +. overshoot) peak 0.01;
  (* Settles to the DC gain (1). *)
  let final = s.(Array.length s - 1) in
  Alcotest.(check bool) "settling" true (Float.abs (final -. 1.) < 0.25)

let test_improper_rejected () =
  let t =
    Rational.of_epolys ~num:(Epoly.of_floats [| 1.; 2.; 3. |])
      ~den:(Epoly.of_floats [| 1.; 1. |])
  in
  Alcotest.(check bool) "improper raises" true
    (try
       ignore (Rational.decompose t);
       false
     with Invalid_argument _ -> true)

let test_direct_term () =
  (* H = (s + 2)/(s + 1): direct 1, pole -1, residue (p+2)|_{p=-1} = 1. *)
  let t =
    Rational.of_epolys ~num:(Epoly.of_floats [| 2.; 1. |])
      ~den:(Epoly.of_floats [| 1.; 1. |])
  in
  let m = Rational.decompose t in
  Alcotest.(check (float 1e-9)) "direct" 1. m.Rational.direct;
  check_rel "residue" 1. m.Rational.residues.(0).Complex.re 1e-9;
  Alcotest.(check bool) "quality" true (m.Rational.quality < 1e-9);
  (* Step response: H(0) + r/p e^{pt} = 2 - e^{-t}. *)
  let s = Rational.step_response t ~times:[| 0.; 1.; 10. |] in
  check_rel "s(0) = direct" 1. s.(0) 1e-9;
  check_rel "s(1)" (2. -. Float.exp (-1.)) s.(1) 1e-9;
  check_rel "s(inf)" 2. s.(2) 1e-3

let suite =
  [
    ( "rational",
      [
        Alcotest.test_case "rc modes" `Quick test_rc_modes;
        Alcotest.test_case "rc time domain" `Quick test_rc_time_domain;
        Alcotest.test_case "rc group delay" `Quick test_rc_group_delay;
        Alcotest.test_case "biquad overshoot" `Quick test_biquad_step_overshoot;
        Alcotest.test_case "improper rejected" `Quick test_improper_rejected;
        Alcotest.test_case "direct term" `Quick test_direct_term;
      ] );
  ]
