(* String-level tests for the paper-style report printers. *)

module Report = Symref_core.Report
module Naive = Symref_core.Naive
module Fixed_scale = Symref_core.Fixed_scale
module Adaptive = Symref_core.Adaptive
module Evaluator = Symref_core.Evaluator
module Reference = Symref_core.Reference
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module N = Symref_circuit.Netlist
module Ota = Symref_circuit.Ota
module Ladder = Symref_circuit.Rc_ladder
module Grid = Symref_numeric.Grid

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains msg hay needle =
  Alcotest.(check bool) (Printf.sprintf "%s: output mentions %S" msg needle) true
    (contains hay needle)

let ota_problem () =
  Nodal.make Ota.circuit
    ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
    ~output:(Nodal.Out_node Ota.output)

let test_naive_table () =
  let p = ota_problem () in
  let num = Naive.run (Evaluator.of_nodal p ~num:true) in
  let den = Naive.run (Evaluator.of_nodal p ~num:false) in
  let s = Report.naive_table ~title:"T" ~num ~den () in
  check_contains "naive" s "T";
  check_contains "naive" s "s^0";
  check_contains "naive" s "Numerator";
  check_contains "naive" s "error level";
  (* Complex cells carry a j part. *)
  check_contains "naive" s "j"

let test_fixed_scale_table () =
  let p = ota_problem () in
  let r = Fixed_scale.run ~f:1e9 (Evaluator.of_nodal p ~num:false) in
  let s = Report.fixed_scale_table ~title:"T1b" r in
  check_contains "fixed" s "scale factors: f = 1e+09";
  check_contains "fixed" s "Denormalized";
  (* The full band is valid on this circuit: stars present. *)
  check_contains "fixed" s "*"

let test_adaptive_tables () =
  let r =
    Reference.generate (Ladder.circuit ~spread:2.5 12)
      ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  let den = r.Reference.den in
  let summary = Report.adaptive_summary ~title:"den:" den in
  check_contains "summary" summary "den:";
  check_contains "summary" summary "valid band";
  check_contains "summary" summary "effective order 12";
  let pass1 = Report.adaptive_pass_table ~pass:1 den in
  check_contains "pass table" pass1 "interpolation 1";
  check_contains "pass table" pass1 "Normalized";
  let missing = Report.adaptive_pass_table ~pass:99 den in
  check_contains "missing pass" missing "no pass 99"

let test_reference_summary_and_bode () =
  let r =
    Reference.generate (Ladder.circuit 2) ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  let s = Report.reference_summary r in
  check_contains "reference" s "numerator:";
  check_contains "reference" s "denominator:";
  check_contains "reference" s "total LU evaluations";
  let freqs = Grid.decades ~start:1e3 ~stop:1e8 ~per_decade:1 in
  let sim = Ac.bode (Ladder.circuit 2) ~out_p:Ladder.output_node freqs in
  let interp = Reference.bode r freqs in
  let b = Report.bode_table ~interpolated:interp ~simulator:sim in
  check_contains "bode" b "freq (Hz)";
  check_contains "bode" b "delta";
  (* Every frequency row appears. *)
  Array.iter (fun f -> check_contains "bode rows" b (Printf.sprintf "%.4g" f)) freqs

let test_ascii_plot () =
  let module Plot = Symref_core.Ascii_plot in
  let xs = [| 1.; 10.; 100.; 1000. |] in
  let s1 = { Plot.label = "a"; xs; ys = [| 0.; -3.; -20.; -40. |] } in
  let s2 = { Plot.label = "b"; xs; ys = [| 0.; -3.; -20.; -40. |] } in
  let out = Plot.render [ s1; s2 ] in
  check_contains "plot" out "a";
  check_contains "plot" out "b";
  (* Identical series coincide: the overlap marker must appear. *)
  check_contains "plot" out "#";
  check_contains "plot" out "Hz";
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Plot.render []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "nonpositive x rejected" true
    (try
       ignore (Plot.render [ { Plot.label = "x"; xs = [| 0. |]; ys = [| 1. |] } ]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "report",
      [
        Alcotest.test_case "naive table" `Quick test_naive_table;
        Alcotest.test_case "fixed-scale table" `Quick test_fixed_scale_table;
        Alcotest.test_case "adaptive tables" `Quick test_adaptive_tables;
        Alcotest.test_case "reference summary and bode" `Quick
          test_reference_summary_and_bode;
        Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
      ] );
  ]
