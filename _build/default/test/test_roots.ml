(* Tests for the root finder and pole/zero extraction from references. *)

module Roots = Symref_poly.Roots
module Poly = Symref_poly.Poly
module Epoly = Symref_poly.Epoly
module Poles = Symref_core.Poles
module Reference = Symref_core.Reference
module Nodal = Symref_mna.Nodal
module Ladder = Symref_circuit.Rc_ladder
module Biquad = Symref_circuit.Biquad
module Gm_c = Symref_circuit.Gm_c
module Ef = Symref_numeric.Extfloat
module Cx = Symref_numeric.Cx

let sort_by_norm roots =
  let a = Array.copy roots in
  Array.sort
    (fun (x : Complex.t) (y : Complex.t) ->
      match Float.compare x.re y.re with
      | 0 -> Float.compare x.im y.im
      | c -> c)
    a;
  a

let check_roots msg expected got =
  let e = sort_by_norm expected and g = sort_by_norm got in
  Alcotest.(check int) (msg ^ ": count") (Array.length e) (Array.length g);
  Array.iteri
    (fun i want ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: root %d: %s vs %s" msg i (Cx.to_string want)
           (Cx.to_string g.(i)))
        true
        (Cx.approx_equal ~rel:1e-6 ~abs:1e-9 want g.(i)))
    e

let test_known_real_roots () =
  let p = Poly.of_roots [ 1.; -2.; 3.5 ] in
  let roots, q = Roots.find_real p in
  Alcotest.(check bool) "converged" true q.Roots.converged;
  check_roots "cubic"
    [| Cx.of_float 1.; Cx.of_float (-2.); Cx.of_float 3.5 |]
    roots

let test_complex_pair () =
  (* s^2 + 2s + 5 = (s + 1)^2 + 4: roots -1 +- 2j. *)
  let p = Poly.of_list [ 5.; 2.; 1. ] in
  let roots, _ = Roots.find_real p in
  check_roots "conjugate pair" [| Cx.make (-1.) 2.; Cx.make (-1.) (-2.) |] roots

let test_roots_at_origin () =
  (* s^2 * (s + 3) *)
  let p = Poly.of_list [ 0.; 0.; 3.; 1. ] in
  let roots, _ = Roots.find_real p in
  check_roots "origin roots"
    [| Complex.zero; Complex.zero; Cx.of_float (-3.) |]
    roots

let test_wide_magnitude_roots () =
  (* Roots spread over 6 decades: (s+1)(s+1e3)(s+1e6). *)
  let p = Poly.of_roots [ -1.; -1e3; -1e6 ] in
  let roots, q = Roots.find_real p in
  Alcotest.(check bool) "converged" true q.Roots.converged;
  check_roots "wide spread"
    [| Cx.of_float (-1.); Cx.of_float (-1e3); Cx.of_float (-1e6) |]
    roots

let test_extended_coefficients () =
  (* The reference-generator regime: coefficients far outside double range.
     Scale (s+1)(s+2) by 1e-200 * (1e-8)^i: roots become -1e8, -2e8. *)
  let c0 = Ef.of_decimal 2. (-200) in
  let c1 = Ef.mul (Ef.of_decimal 3. (-200)) (Ef.of_decimal 1. (-8)) in
  let c2 = Ef.mul (Ef.of_decimal 1. (-200)) (Ef.of_decimal 1. (-16)) in
  let p = Epoly.of_coeffs [| c0; c1; c2 |] in
  let roots, q = Roots.find p in
  Alcotest.(check bool) "converged" true q.Roots.converged;
  check_roots "extended" [| Cx.of_float (-1e8); Cx.of_float (-2e8) |] roots

let test_conjugate_pairs_split () =
  let roots = [| Cx.make (-1.) 2.; Cx.make (-3.) 0.; Cx.make (-1.) (-2.) |] in
  let pairs, reals = Roots.conjugate_pairs roots in
  Alcotest.(check int) "one pair" 1 (List.length pairs);
  Alcotest.(check int) "one real" 1 (List.length reals);
  match pairs with
  | [ (p, m) ] ->
      Alcotest.(check bool) "pair is conjugate" true
        (Cx.approx_equal ~rel:1e-12 p (Complex.conj m))
  | _ -> Alcotest.fail "expected one pair"

let test_invalid () =
  Alcotest.(check bool) "constant raises" true
    (try
       ignore (Roots.find_real (Poly.of_list [ 3. ]));
       false
     with Invalid_argument _ -> true)

let prop_of_roots_roundtrip =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 6) (float_range (-4.) 4.))
  in
  QCheck2.Test.make ~name:"roots of of_roots are recovered" ~count:100 gen
    (fun rs ->
      (* Keep roots separated to avoid ill-conditioned clusters. *)
      let rs = List.sort_uniq Float.compare (List.map (fun x -> Float.round (x *. 8.) /. 8.) rs) in
      let p = Poly.of_roots rs in
      let roots, q = Roots.find_real p in
      q.Roots.converged
      &&
      let got = sort_by_norm roots and want = sort_by_norm (Array.of_list (List.map Cx.of_float rs)) in
      Array.for_all2 (fun a b -> Cx.approx_equal ~rel:1e-4 ~abs:1e-6 a b) got want)

(* --- pole extraction from references --- *)

let test_ladder_poles_real_negative () =
  let r =
    Reference.generate (Ladder.circuit 6) ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  let a = Poles.analyse r in
  Alcotest.(check int) "six poles" 6 (Array.length a.Poles.poles);
  Alcotest.(check bool) "stable" true a.Poles.stable;
  Alcotest.(check int) "all real (RC network)" 6 (List.length a.Poles.real_poles_hz);
  Alcotest.(check (list string)) "no resonances" []
    (List.map (fun _ -> "r") a.Poles.resonances)

let test_biquad_poles_match_design () =
  let designs =
    [
      { Biquad.f0_hz = 1e6; q = 0.707; gm = 50e-6 };
      { Biquad.f0_hz = 2.5e6; q = 2.0; gm = 50e-6 };
    ]
  in
  let c = Biquad.cascade designs in
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out")
  in
  let a = Poles.analyse r in
  Alcotest.(check int) "four poles" 4 (Array.length a.Poles.poles);
  Alcotest.(check int) "two resonances" 2 (List.length a.Poles.resonances);
  List.iter2
    (fun (d : Biquad.design) (res : Poles.resonance) ->
      Alcotest.(check bool)
        (Printf.sprintf "f0 %.4g vs designed %.4g" res.Poles.freq_hz d.Biquad.f0_hz)
        true
        (Float.abs (res.Poles.freq_hz -. d.Biquad.f0_hz) <= 1e-4 *. d.Biquad.f0_hz);
      Alcotest.(check bool)
        (Printf.sprintf "q %.4f vs designed %.4f" res.Poles.q d.Biquad.q)
        true
        (Float.abs (res.Poles.q -. d.Biquad.q) <= 1e-4 *. d.Biquad.q))
    (List.sort (fun a b -> Float.compare a.Biquad.f0_hz b.Biquad.f0_hz) designs)
    a.Poles.resonances;
  (* Design poles and extracted poles coincide. *)
  let designed =
    List.concat_map (fun d -> let a, b = Biquad.poles d in [ a; b ]) designs
  in
  check_roots "pole positions" (Array.of_list designed) a.Poles.poles

let test_biquad_overdamped () =
  let d = { Biquad.f0_hz = 1e5; q = 0.25; gm = 20e-6 } in
  let p1, p2 = Biquad.poles d in
  Alcotest.(check (float 1e-6)) "real poles" 0. p1.Complex.im;
  let c = Biquad.cascade [ d ] in
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out")
  in
  let a = Poles.analyse r in
  Alcotest.(check int) "two real poles" 2 (List.length a.Poles.real_poles_hz);
  check_roots "overdamped positions" [| p1; p2 |] a.Poles.poles

let test_ua741_dominant_pole () =
  let module Ua741 = Symref_circuit.Ua741 in
  let r =
    Reference.generate Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let a = Poles.analyse r in
  Alcotest.(check bool) "stable" true a.Poles.stable;
  (* The Miller-compensated dominant pole sits at a few Hz (the 741's is
     ~5 Hz); ours must land within a decade. *)
  match a.Poles.real_poles_hz with
  | f :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "dominant pole %.2f Hz in [0.5, 50]" f)
        true
        (f > 0.5 && f < 50.)
  | [] -> Alcotest.fail "expected real poles"

let suite =
  [
    ( "roots",
      [
        Alcotest.test_case "known real roots" `Quick test_known_real_roots;
        Alcotest.test_case "complex pair" `Quick test_complex_pair;
        Alcotest.test_case "roots at origin" `Quick test_roots_at_origin;
        Alcotest.test_case "wide magnitude spread" `Quick test_wide_magnitude_roots;
        Alcotest.test_case "extended-range coefficients" `Quick test_extended_coefficients;
        Alcotest.test_case "conjugate pair split" `Quick test_conjugate_pairs_split;
        Alcotest.test_case "invalid input" `Quick test_invalid;
        QCheck_alcotest.to_alcotest prop_of_roots_roundtrip;
      ] );
    ( "poles",
      [
        Alcotest.test_case "rc ladder: real stable poles" `Quick
          test_ladder_poles_real_negative;
        Alcotest.test_case "biquad cascade matches design" `Quick
          test_biquad_poles_match_design;
        Alcotest.test_case "overdamped biquad" `Quick test_biquad_overdamped;
        Alcotest.test_case "ua741 dominant pole" `Quick test_ua741_dominant_pole;
      ] );
  ]
