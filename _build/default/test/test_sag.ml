(* Tests for Simplification After Generation. *)

module Sag = Symref_symbolic.Sag
module Sdet = Symref_symbolic.Sdet
module Sym = Symref_symbolic.Sym
module Nodal = Symref_mna.Nodal
module Ladder = Symref_circuit.Rc_ladder
module Ota = Symref_circuit.Ota
module Grid = Symref_numeric.Grid
module Cx = Symref_numeric.Cx

let ota_nf () =
  Sdet.network_function Ota.circuit
    ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
    ~output:(Nodal.Out_node Ota.output)

let h_of (nf : Sdet.network_function) f =
  let s = Cx.jomega (2. *. Float.pi *. f) in
  Complex.div (Sym.eval nf.Sdet.num s) (Sym.eval nf.Sdet.den s)

let test_sag_reduces_and_bounds_error () =
  let nf = ota_nf () in
  let freqs = Grid.decades ~start:1e2 ~stop:1e9 ~per_decade:3 in
  let epsilon = 0.05 in
  let simplified, report = Sag.simplify ~epsilon ~freqs nf in
  Alcotest.(check bool)
    (Printf.sprintf "dropped terms (%d of %d)" report.Sag.dropped report.Sag.total_terms)
    true
    (report.Sag.dropped > report.Sag.total_terms / 2);
  Alcotest.(check bool)
    (Printf.sprintf "error %.4f within epsilon" report.Sag.max_error)
    true
    (report.Sag.max_error <= epsilon);
  (* Independent verification on grid points. *)
  Array.iter
    (fun f ->
      let h0 = h_of nf f and h1 = h_of simplified f in
      Alcotest.(check bool)
        (Printf.sprintf "H preserved at %g Hz" f)
        true
        (Cx.approx_equal ~rel:(epsilon *. 1.2) h0 h1))
    freqs

let test_sag_tight_epsilon_keeps_more () =
  let nf = ota_nf () in
  let freqs = Grid.decades ~start:1e2 ~stop:1e9 ~per_decade:3 in
  let _, loose = Sag.simplify ~epsilon:0.2 ~freqs nf in
  let _, tight = Sag.simplify ~epsilon:1e-4 ~freqs nf in
  Alcotest.(check bool)
    (Printf.sprintf "tight keeps more (%d vs %d)" tight.Sag.kept_terms loose.Sag.kept_terms)
    true
    (tight.Sag.kept_terms > loose.Sag.kept_terms)

let test_sag_small_circuit_exact () =
  (* A uniform ladder at tiny epsilon: nothing removable. *)
  let nf =
    Sdet.network_function (Ladder.circuit 2) ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  let freqs = Grid.decades ~start:1e4 ~stop:1e9 ~per_decade:3 in
  let _, report = Sag.simplify ~epsilon:1e-12 ~freqs nf in
  Alcotest.(check int) "nothing dropped" 0 report.Sag.dropped

let test_sag_invalid () =
  let nf = ota_nf () in
  Alcotest.(check bool) "empty grid raises" true
    (try
       ignore (Sag.simplify ~epsilon:0.1 ~freqs:[||] nf);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "sag",
      [
        Alcotest.test_case "reduces under error bound" `Quick
          test_sag_reduces_and_bounds_error;
        Alcotest.test_case "epsilon monotonicity" `Quick test_sag_tight_epsilon_keeps_more;
        Alcotest.test_case "tiny epsilon keeps all" `Quick test_sag_small_circuit_exact;
        Alcotest.test_case "invalid input" `Quick test_sag_invalid;
      ] );
  ]
