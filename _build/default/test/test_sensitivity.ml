(* Tests for the perturbation-based sensitivity analysis, validated against
   closed forms where available. *)

module Sensitivity = Symref_mna.Sensitivity
module Nodal = Symref_mna.Nodal
module N = Symref_circuit.Netlist
module E = Symref_circuit.Element
module Ladder = Symref_circuit.Rc_ladder
module Ota = Symref_circuit.Ota
module Cx = Symref_numeric.Cx

let check_float = Alcotest.(check (float 1e-6))

let test_element_scale () =
  let r = E.make "r1" (E.Resistor { a = 1; b = 0; ohms = 1e3 }) in
  let r2 = E.scale_value r 2. in
  check_float "scaled" 2e3 (E.principal_value r2);
  Alcotest.(check string) "name kept" "r1" r2.E.name;
  Alcotest.check_raises "invalid scale"
    (Invalid_argument "Element r1: resistance must be > 0") (fun () ->
      ignore (E.scale_value r 0.))

let test_netlist_scale () =
  let c = Ladder.circuit 2 in
  let c' = N.scale_element c "r1" 3. in
  (match N.find_element c' "r1" with
  | Some e -> check_float "value tripled" 3e3 (E.principal_value e)
  | None -> Alcotest.fail "r1 missing");
  (* Original untouched. *)
  (match N.find_element c "r1" with
  | Some e -> check_float "original" 1e3 (E.principal_value e)
  | None -> Alcotest.fail "r1 missing");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (N.scale_element c "zz" 2.))

(* Closed form: RC lowpass H = 1/(1 + sRC), S_R^H = S_C^H = -sRC/(1+sRC).
   At the corner (sRC = j): S = -j/(1+j) = -0.5 - 0.5j. *)
let test_rc_lowpass_closed_form () =
  let circuit = Ladder.circuit 1 in
  let fc = 1. /. (2. *. Float.pi *. 1e-9) in
  let entries =
    Sensitivity.at circuit ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node) ~freq_hz:fc
  in
  Alcotest.(check int) "two perturbable elements" 2 (List.length entries);
  List.iter
    (fun (e : Sensitivity.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: S = %s vs -0.5-0.5j" e.Sensitivity.element
           (Cx.to_string e.Sensitivity.s))
        true
        (Cx.approx_equal ~rel:1e-3 (Cx.make (-0.5) (-0.5)) e.Sensitivity.s))
    entries;
  (* At DC the sensitivities vanish (unity passband). *)
  let dc =
    Sensitivity.at circuit ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node) ~freq_hz:1e-3
  in
  List.iter
    (fun (e : Sensitivity.entry) ->
      Alcotest.(check bool) "S ~ 0 at DC" true (Complex.norm e.Sensitivity.s < 1e-6))
    dc

let test_ota_ranking () =
  (* At DC the OTA gain is set by the gm/conductance ratios: the signal-path
     transconductances must rank far above the capacitors. *)
  let entries =
    Sensitivity.at Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output) ~freq_hz:1.
  in
  let sens name =
    match List.find_opt (fun e -> e.Sensitivity.element = name) entries with
    | Some e -> Complex.norm e.Sensitivity.s
    | None -> Alcotest.fail (name ^ " missing from sensitivity list")
  in
  Alcotest.(check bool) "m7 gm matters" true (sens "m7.gm" > 0.5);
  Alcotest.(check bool) "load cap irrelevant at DC" true (sens "cload" < 1e-3);
  Alcotest.(check bool) "gm above cap" true (sens "m1.gm" > sens "cload")

let test_worst_case_grid () =
  let freqs = Symref_numeric.Grid.decades ~start:1e3 ~stop:1e9 ~per_decade:2 in
  let ranking =
    Sensitivity.worst_case Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output) ~freqs
  in
  Alcotest.(check bool) "nonempty" true (List.length ranking > 10);
  (* Sorted descending. *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted ranking);
  (* Over the full band the load capacitor does matter. *)
  (match List.assoc_opt "cload" ranking with
  | Some v -> Alcotest.(check bool) "cload matters somewhere" true (v > 0.05)
  | None -> Alcotest.fail "cload missing")

let test_adjoint_matches_perturbation () =
  (* The adjoint method is exact; the perturbation method has O(step^2)
     error: they must agree tightly on every element, at several
     frequencies, on both workloads. *)
  let check circuit input output freq =
    let pert = Sensitivity.at circuit ~input ~output ~freq_hz:freq in
    let adj = Sensitivity.adjoint_at circuit ~input ~output ~freq_hz:freq in
    List.iter
      (fun (p : Sensitivity.entry) ->
        match
          List.find_opt (fun a -> a.Sensitivity.element = p.Sensitivity.element) adj
        with
        | None -> Alcotest.fail (p.Sensitivity.element ^ " missing from adjoint list")
        | Some a ->
            Alcotest.(check bool)
              (Printf.sprintf "%s at %g Hz: %s vs %s" p.Sensitivity.element freq
                 (Symref_numeric.Cx.to_string p.Sensitivity.s)
                 (Symref_numeric.Cx.to_string a.Sensitivity.s))
              true
              (Symref_numeric.Cx.approx_equal ~rel:1e-5 ~abs:1e-7 p.Sensitivity.s
                 a.Sensitivity.s))
      pert
  in
  List.iter
    (fun f ->
      check Ota.circuit (Nodal.V_diff (Ota.input_p, Ota.input_n))
        (Nodal.Out_node Ota.output) f;
      check (Ladder.circuit 3) (Nodal.Vsrc_element "vin")
        (Nodal.Out_node Ladder.output_node) f)
    [ 1e2; 1e6; 1e8 ]

let test_adjoint_cost () =
  (* Two solves regardless of element count: just confirm it runs on the
     741's ~180 elements and ranks the same top element as perturbation. *)
  let module Ua741 = Symref_circuit.Ua741 in
  let input = Nodal.V_diff (Ua741.input_p, Ua741.input_n) in
  let output = Nodal.Out_node Ua741.output in
  let adj = Sensitivity.adjoint_at Ua741.circuit ~input ~output ~freq_hz:1e3 in
  let pert = Sensitivity.at Ua741.circuit ~input ~output ~freq_hz:1e3 in
  Alcotest.(check bool) "many entries" true (List.length adj > 100);
  match (adj, pert) with
  | a :: _, p :: _ ->
      Alcotest.(check string) "same dominant element" p.Sensitivity.element
        a.Sensitivity.element
  | _ -> Alcotest.fail "empty sensitivity lists"

let suite =
  [
    ( "sensitivity",
      [
        Alcotest.test_case "element scaling" `Quick test_element_scale;
        Alcotest.test_case "netlist scaling" `Quick test_netlist_scale;
        Alcotest.test_case "rc lowpass closed form" `Quick test_rc_lowpass_closed_form;
        Alcotest.test_case "ota ranking" `Quick test_ota_ranking;
        Alcotest.test_case "worst case over grid" `Quick test_worst_case_grid;
        Alcotest.test_case "adjoint = perturbation" `Quick test_adjoint_matches_perturbation;
        Alcotest.test_case "adjoint on the ua741" `Quick test_adjoint_cost;
      ] );
  ]
