(* Tests for the SPICE-subset units, parser and writer. *)

module Units = Symref_spice.Units
module Parser = Symref_spice.Parser
module Writer = Symref_spice.Writer
module N = Symref_circuit.Netlist
module E = Symref_circuit.Element
module Ac = Symref_mna.Ac
module Ota = Symref_circuit.Ota
module Ua741 = Symref_circuit.Ua741
module Cx = Symref_numeric.Cx

let check_float = Alcotest.(check (float 1e-9))

let test_units_parse () =
  let cases =
    [
      ("1", 1.);
      ("2.2k", 2200.);
      ("1MEG", 1e6);
      ("30p", 30e-12);
      ("30pF", 30e-12);
      ("1kohm", 1000.);
      ("-4.7u", -4.7e-6);
      ("1e-12", 1e-12);
      ("2.5E6", 2.5e6);
      ("1e3k", 1e6);
      ("100f", 100e-15);
      ("0.5", 0.5);
    ]
  in
  List.iter
    (fun (s, want) ->
      match Units.parse s with
      | Some got ->
          Alcotest.(check bool)
            (Printf.sprintf "%s -> %g (got %g)" s want got)
            true
            (Float.abs (got -. want) <= 1e-12 *. Float.abs want)
      | None -> Alcotest.fail (Printf.sprintf "%s did not parse" s))
    cases;
  Alcotest.(check (option (float 0.))) "garbage" None (Units.parse "abc");
  Alcotest.(check (option (float 0.))) "empty" None (Units.parse "");
  Alcotest.(check (option (float 0.))) "bad suffix" None (Units.parse "1x2")

let test_units_format () =
  Alcotest.(check string) "kilo" "2.2k" (Units.format_si 2200.);
  Alcotest.(check string) "pico" "30p" (Units.format_si 30e-12);
  Alcotest.(check string) "mega" "1meg" (Units.format_si 1e6);
  Alcotest.(check string) "unit" "42" (Units.format_si 42.);
  Alcotest.(check string) "zero" "0" (Units.format_si 0.);
  (* Round-trips through parse. *)
  List.iter
    (fun v ->
      check_float (Printf.sprintf "roundtrip %g" v) v
        (Units.parse_exn (Units.format_si v)))
    [ 1.; -2200.; 3.3e-12; 4.7e8; 1.5e-15 ]

let sample_netlist =
  {|sample rc filter
* a comment line
v1 in 0 ac 1
r1 in mid 1k
c1 mid 0 1n
r2 mid out 2.2k
+
c2 out 0 470p
.end
this line is after .end and ignored
|}

let test_parse_basic () =
  let c = Parser.parse_string sample_netlist in
  Alcotest.(check string) "title" "sample rc filter" (N.title c);
  Alcotest.(check int) "elements" 5 (N.element_count c);
  Alcotest.(check int) "nodes" 3 (N.node_count c);
  match N.find_element c "c2" with
  | Some { E.kind = E.Capacitor { farads; _ }; _ } -> check_float "c2 value" 470e-12 farads
  | _ -> Alcotest.fail "c2 missing or wrong kind"

let test_parse_controlled_sources () =
  let text =
    {|controlled sources
v1 in 0 1
vsense x 0 0
r1 in x 1k
g1 a 0 in 0 2m
ra a 0 1k
e1 b 0 a 0 3
rb b 0 1k
f1 c 0 vsense 2
rc c 0 1k
h1 d 0 vsense 50
rd d 0 1k
.end
|}
  in
  let c = Parser.parse_string text in
  Alcotest.(check int) "elements" 11 (N.element_count c);
  let freqs = [| 1e3 |] in
  let va = (Ac.transfer c ~out_p:"a" freqs).(0) in
  (* g1 pushes -2mS * 1V into node a over 1k: v(a) = -2. *)
  Alcotest.(check bool) (Printf.sprintf "vccs %s" (Cx.to_string va)) true
    (Cx.approx_equal ~rel:1e-9 (Cx.of_float (-2.)) va)

let test_parse_transistor_models () =
  let text =
    {|two transistor amp
v1 in 0 ac 1
q1 c1 in 0 nsmall
rc1 c1 0 10k
m1 d1 c1 0 psmall
rd1 d1 0 50k
.model nsmall bjtss ic=1m beta=150 rb=250 ccs=1p
.model psmall mosss gm=500u gds=4u cgs=90f cgd=25f
.end
|}
  in
  let c = Parser.parse_string text in
  (* q1: rb, gm, gpi, go, cpi, cmu, ccs = 7; m1: gm, gds, cgs, cgd = 4;
     plus v1, rc1, rd1. *)
  Alcotest.(check int) "expanded elements" 14 (N.element_count c);
  Alcotest.(check bool) "internal base node" true (N.node_id c "q1.bx" <> None);
  match N.find_element c "q1.gm" with
  | Some { E.kind = E.Vccs { gm; _ }; _ } ->
      Alcotest.(check (float 1e-6)) "gm from ic" (1e-3 /. 0.02585) gm
  | _ -> Alcotest.fail "q1.gm missing"

let expect_error ?(contains = "") text =
  try
    ignore (Parser.parse_string text);
    Alcotest.fail "expected Parse_error"
  with Parser.Parse_error { message; _ } ->
    if contains <> "" then begin
      let has_sub hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" message contains)
        true (has_sub message contains)
    end

let test_parse_errors () =
  expect_error ~contains:"wrong number of fields" "t\nr1 a 0\n.end\n";
  expect_error ~contains:"bad number" "t\nr1 a 0 foo\n.end\n";
  expect_error ~contains:"unknown card" "t\nz1 a 0 1k\n.end\n";
  expect_error ~contains:"unknown subcircuit" "t\nx1 a 0 nosub\n.end\n";
  expect_error ~contains:"unknown model" "t\nq1 c b e nomodel\n.end\n";
  expect_error ~contains:"must be > 0" "t\nr1 a 0 -5\n.end\n";
  expect_error ~contains:"duplicate" "t\nr1 a 0 1\nr1 a 0 2\n.end\n";
  expect_error ~contains:"continuation" "t\n+ c1 a 0 1p\n.end\n";
  expect_error ~contains:"unsupported directive" "t\n.tran 1n 1u\n.end\n"

let test_subckt_basic () =
  let text =
    {|subckt demo
v1 in 0 ac 1
x1 in mid lowpass
x2 mid out lowpass
.subckt lowpass a b
rs a b 1k
cs b 0 1n
.ends
.end
|}
  in
  let c = Parser.parse_string text in
  (* Each instance expands to 2 elements. *)
  Alcotest.(check int) "elements" 5 (N.element_count c);
  Alcotest.(check bool) "prefixed name" true (N.find_element c "x1.rs" <> None);
  Alcotest.(check bool) "second instance" true (N.find_element c "x2.cs" <> None);
  (* Must behave exactly like the flat 2-section ladder. *)
  let flat =
    Parser.parse_string
      {|flat
v1 in 0 ac 1
r1 in mid 1k
c1 mid 0 1n
r2 mid out 1k
c2 out 0 1n
.end
|}
  in
  let fa = Ac.transfer c ~out_p:"out" [| 1e4; 1e6 |] in
  let fb = Ac.transfer flat ~out_p:"out" [| 1e4; 1e6 |] in
  Array.iteri
    (fun i va ->
      Alcotest.(check bool)
        (Printf.sprintf "matches flat at point %d" i)
        true
        (Cx.approx_equal ~rel:1e-12 va fb.(i)))
    fa

let test_subckt_nested_and_models () =
  let text =
    {|nested subckts with devices
v1 in 0 ac 1
xa in out stage2
rload out 0 10k
.subckt inverter i o
q1 o i 0 small
rc o 0 10k
.ends
.subckt stage2 i o
x1 i m inverter
x2 m o inverter
.ends
.model small bjtss ic=1m beta=100
.end
|}
  in
  let c = Parser.parse_string text in
  (* Two inverters, each q1 -> 6 elements (no rb/ccs) + rc. *)
  Alcotest.(check bool) "deep name" true (N.find_element c "xa.x1.q1.gm" <> None);
  Alcotest.(check bool) "deep rc" true (N.find_element c "xa.x2.rc" <> None);
  (* Local node isolation: the two instances' internal node m of stage2 is
     unique, and inverter-internal collector nodes do not collide. *)
  Alcotest.(check bool) "internal node" true (N.node_id c "xa.m" <> None);
  (* Two cascaded inverting stages: positive midband gain. *)
  let h = (Ac.transfer c ~out_p:"out" [| 1e3 |]).(0) in
  Alcotest.(check bool)
    (Printf.sprintf "two inversions: gain %s positive and large" (Cx.to_string h))
    true
    (h.Complex.re > 100.)

let test_subckt_errors () =
  expect_error ~contains:"expects 2 ports" "t\nx1 a sub2\n.subckt sub2 p q\nr1 p q 1\n.ends\n.end\n";
  expect_error ~contains:"no .ends" "t\n.subckt s a\nr1 a 0 1\n.end\n";
  expect_error ~contains:"nested .subckt" "t\n.subckt s a\n.subckt t b\n.ends\n.ends\n.end\n";
  expect_error ~contains:".ends without" "t\n.ends\n.end\n";
  expect_error ~contains:"no ports" "t\n.subckt s\n.ends\n.end\n"

let transfer_points circuit out =
  Ac.transfer circuit ~out_p:out [| 1e2; 1e5; 1e7 |]

let test_writer_roundtrip_ota () =
  (* The OTA has conductances, VCCS, capacitors: write, re-parse, and the AC
     behaviour must be identical. *)
  let with_sources =
    N.extend Ota.circuit (fun b ->
        N.Builder.vsrc b "tp" ~p:Ota.input_p ~m:"0" 0.5;
        N.Builder.vsrc b "tm" ~p:Ota.input_n ~m:"0" (-0.5))
  in
  let text = Writer.to_string with_sources in
  let reparsed = Parser.parse_string text in
  Alcotest.(check int) "element count preserved" (N.element_count with_sources)
    (N.element_count reparsed);
  let a = transfer_points with_sources Ota.output in
  let b = transfer_points reparsed Ota.output in
  Array.iteri
    (fun i va ->
      Alcotest.(check bool)
        (Printf.sprintf "H agrees at point %d: %s vs %s" i (Cx.to_string va)
           (Cx.to_string b.(i)))
        true
        (Cx.approx_equal ~rel:1e-6 va b.(i)))
    a

let test_writer_roundtrip_ua741 () =
  let with_sources =
    N.extend Ua741.circuit (fun b ->
        N.Builder.vsrc b "tp" ~p:Ua741.input_p ~m:"0" 0.5;
        N.Builder.vsrc b "tm" ~p:Ua741.input_n ~m:"0" (-0.5))
  in
  let reparsed = Parser.parse_string (Writer.to_string with_sources) in
  let a = transfer_points with_sources Ua741.output in
  let b = transfer_points reparsed Ua741.output in
  Array.iteri
    (fun i va ->
      Alcotest.(check bool)
        (Printf.sprintf "H agrees at point %d" i)
        true
        (Cx.approx_equal ~rel:1e-4 va b.(i)))
    a

let test_dot_export () =
  let dot = Symref_spice.Dot.to_dot (Parser.parse_string sample_netlist) in
  let has needle =
    let nh = String.length dot and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub dot i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "graph header" true (has "graph circuit {");
  Alcotest.(check bool) "resistor edge" true (has "\"in\" -- \"mid\" [label=\"r1=1k\"");
  Alcotest.(check bool) "cap edge" true (has "c2=470p");
  Alcotest.(check bool) "ground node" true (has "\"0\" [shape=point")

let suite =
  [
    ( "units",
      [
        Alcotest.test_case "parse" `Quick test_units_parse;
        Alcotest.test_case "format" `Quick test_units_format;
      ] );
    ( "spice-parser",
      [
        Alcotest.test_case "basic cards" `Quick test_parse_basic;
        Alcotest.test_case "controlled sources" `Quick test_parse_controlled_sources;
        Alcotest.test_case "transistor models" `Quick test_parse_transistor_models;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "subckt expansion" `Quick test_subckt_basic;
        Alcotest.test_case "nested subckts" `Quick test_subckt_nested_and_models;
        Alcotest.test_case "subckt errors" `Quick test_subckt_errors;
      ] );
    ( "spice-writer",
      [
        Alcotest.test_case "ota roundtrip" `Quick test_writer_roundtrip_ota;
        Alcotest.test_case "ua741 roundtrip" `Quick test_writer_roundtrip_ua741;
        Alcotest.test_case "dot export" `Quick test_dot_export;
      ] );
  ]
