(* Tests for Stats, Grid and Cx helpers. *)

module Stats = Symref_numeric.Stats
module Grid = Symref_numeric.Grid
module Cx = Symref_numeric.Cx

let check_float = Alcotest.(check (float 1e-12))

let test_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

let test_geometric_mean () =
  check_float "gmean powers of ten" 1e-9
    (Stats.geometric_mean [ 1e-12; 1e-9; 1e-6 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive entry") (fun () ->
      ignore (Stats.geometric_mean [ 1.; 0. ]))

let test_min_max_median () =
  let lo, hi = Stats.min_max [ 3.; -1.; 7.; 2. ] in
  check_float "min" (-1.) lo;
  check_float "max" 7. hi;
  check_float "median odd" 3. (Stats.median [ 7.; 3.; 1. ]);
  check_float "median even" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ])

let test_spread () =
  check_float "spread decades" 6. (Stats.spread_decades [ 1e-12; 1e-6; 0. ]);
  check_float "degenerate" 0. (Stats.spread_decades [ 0.; 5. ])

let test_linspace () =
  let g = Grid.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length g);
  check_float "first" 0. g.(0);
  check_float "last" 1. g.(4);
  check_float "step" 0.25 g.(1)

let test_logspace () =
  let g = Grid.logspace 1. 1e4 5 in
  check_float "first" 1. g.(0);
  check_float "mid" 100. g.(2);
  check_float "last" 1e4 g.(4)

let test_decades () =
  let g = Grid.decades ~start:1. ~stop:1e8 ~per_decade:10 in
  Alcotest.(check int) "81 points for 8 decades at 10/dec" 81 (Array.length g);
  check_float "first" 1. g.(0);
  check_float "last" 1e8 g.(Array.length g - 1)

let test_cx () =
  let z = Cx.make 3. (-4.) in
  check_float "re" 3. (Cx.re z);
  check_float "im" (-4.) (Cx.im z);
  check_float "jomega" 6.28 (Cx.im (Cx.jomega 6.28));
  Alcotest.(check bool) "approx equal" true
    (Cx.approx_equal (Cx.make 1. 1.) (Cx.make (1. +. 1e-12) 1.));
  Alcotest.(check bool) "not equal" false
    (Cx.approx_equal (Cx.make 1. 1.) (Cx.make 1.1 1.));
  Alcotest.(check bool) "abs tolerance" true
    (Cx.approx_equal ~abs:0.2 (Cx.make 1. 1.) (Cx.make 1.1 1.))

let suite =
  [
    ( "stats-grid",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        Alcotest.test_case "min/max/median" `Quick test_min_max_median;
        Alcotest.test_case "spread" `Quick test_spread;
        Alcotest.test_case "linspace" `Quick test_linspace;
        Alcotest.test_case "logspace" `Quick test_logspace;
        Alcotest.test_case "decades" `Quick test_decades;
        Alcotest.test_case "cx helpers" `Quick test_cx;
      ] );
  ]
