(* Tests for symbolic expressions, exact symbolic network functions, SDG
   truncation against numerical references, and SBG pruning. *)

module Sym = Symref_symbolic.Sym
module Sdet = Symref_symbolic.Sdet
module Sdg = Symref_symbolic.Sdg
module Sbg = Symref_symbolic.Sbg
module Nodal = Symref_mna.Nodal
module N = Symref_circuit.Netlist
module Ladder = Symref_circuit.Rc_ladder
module Ota = Symref_circuit.Ota
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Ef = Symref_numeric.Extfloat
module Cx = Symref_numeric.Cx

let check_float = Alcotest.(check (float 1e-9))

let g name v = Sym.of_symbol (Sym.symbol ~name ~value:v Sym.Conductance)
let c name v = Sym.of_symbol (Sym.symbol ~name ~value:v Sym.Capacitance)

let test_sym_algebra () =
  let g1 = g "g1" 1e-3 and g2 = g "g2" 2e-3 and c1 = c "c1" 1e-12 in
  let e = Sym.add (Sym.mul g1 g2) (Sym.mul g1 c1) in
  Alcotest.(check int) "two terms" 2 (Sym.term_count e);
  Alcotest.(check int) "max s power" 1 (Sym.max_s_power e);
  Alcotest.(check int) "s^0 terms" 1 (List.length (Sym.coefficient e 0));
  (* Like terms combine; opposite terms cancel. *)
  let z = Sym.add (Sym.mul g1 g2) (Sym.neg (Sym.mul g2 g1)) in
  Alcotest.(check bool) "cancellation" true (Sym.is_zero z);
  let doubled = Sym.add (Sym.mul g1 g2) (Sym.mul g2 g1) in
  (match doubled with
  | [ t ] -> check_float "coefficient 2" 2. t.Sym.coef
  | _ -> Alcotest.fail "expected single combined term");
  check_float "term value" (2. *. 1e-3 *. 2e-3) (Sym.term_value (List.hd doubled))

let test_sym_eval () =
  let g1 = g "g1" 2. and c1 = c "c1" 3. in
  let e = Sym.add g1 (Sym.mul c1 c1) in
  (* 2 + 9 s^2 at s = 2j: 2 - 36 *)
  let v = Sym.eval e (Cx.make 0. 2.) in
  check_float "re" (-34.) v.Complex.re;
  check_float "im" 0. v.Complex.im

let test_sym_to_string () =
  let e = Sym.add (g "ga" 1.) (Sym.mul (c "cb" 1.) (g "ga" 1.)) in
  Alcotest.(check string) "printed" "ga + cb*ga*s" (Sym.to_string e)

let test_determinant_2x2 () =
  let a = g "a" 2. and b = g "b" 3. and d = g "d" 5. in
  let m = [| [| a; b |]; [| b; d |] |] in
  let det = Sdet.determinant m in
  (* a*d - b*b *)
  Alcotest.(check int) "terms" 2 (Sym.term_count det);
  let v = Sym.eval det Complex.one in
  check_float "value" ((2. *. 5.) -. 9.) v.Complex.re

let test_determinant_guard () =
  let big = Array.make_matrix 17 17 Sym.zero in
  Alcotest.(check bool) "guard raises" true
    (try
       ignore (Sdet.determinant big);
       false
     with Invalid_argument _ -> true)

(* Exact symbolic network function vs the numerical evaluator on the same
   circuit, point by point. *)
let check_symbolic_vs_numeric name circuit input output points =
  let nf = Sdet.network_function circuit ~input ~output in
  let problem = Nodal.make circuit ~input ~output in
  List.iter
    (fun s ->
      let sym_h =
        Complex.div (Sym.eval nf.Sdet.num s) (Sym.eval nf.Sdet.den s)
      in
      let v = Nodal.eval problem s in
      Alcotest.(check bool)
        (Printf.sprintf "%s at %s: %s vs %s" name (Cx.to_string s)
           (Cx.to_string sym_h) (Cx.to_string v.Nodal.h))
        true
        (Cx.approx_equal ~rel:1e-9 sym_h v.Nodal.h))
    points

let test_network_function_ladder () =
  check_symbolic_vs_numeric "ladder-3" (Ladder.circuit 3)
    (Nodal.Vsrc_element "vin")
    (Nodal.Out_node Ladder.output_node)
    [ Complex.zero; Cx.jomega 1e6; Cx.make 1e5 (-2e5) ]

let test_network_function_ota () =
  check_symbolic_vs_numeric "ota"
    Ota.circuit
    (Nodal.V_diff (Ota.input_p, Ota.input_n))
    (Nodal.Out_node Ota.output)
    [ Complex.zero; Cx.jomega 1e7; Cx.make (-3e6) 5e6 ]

let test_symbolic_coefficients_match_references () =
  (* The SDG premise: symbolic coefficient sums equal the references. *)
  let circuit = Ladder.circuit 3 in
  let input = Nodal.Vsrc_element "vin" in
  let output = Nodal.Out_node Ladder.output_node in
  let nf = Sdet.network_function circuit ~input ~output in
  let r = Reference.generate circuit ~input ~output in
  let den_refs = r.Reference.den.Adaptive.coeffs in
  for k = 0 to Sym.max_s_power nf.Sdet.den do
    let sym_sum =
      List.fold_left (fun acc t -> acc +. Sym.term_value t) 0.
        (Sym.coefficient nf.Sdet.den k)
    in
    let reference = Ef.to_float den_refs.(k) in
    Alcotest.(check bool)
      (Printf.sprintf "coeff %d: %g vs reference %g" k sym_sum reference)
      true
      (Float.abs (sym_sum -. reference) <= 1e-6 *. Float.abs reference)
  done

let test_sdg_truncation () =
  (* A graded ladder: term magnitudes within one coefficient span decades,
     so a 5% error budget allows real truncation (a uniform ladder's terms
     are all comparable and nothing could be dropped). *)
  let circuit = Ladder.circuit ~spread:10. 4 in
  let input = Nodal.Vsrc_element "vin" in
  let output = Nodal.Out_node Ladder.output_node in
  let nf = Sdet.network_function circuit ~input ~output in
  let r = Reference.generate circuit ~input ~output in
  let references = Array.map Ef.to_float r.Reference.den.Adaptive.coeffs in
  let simplified, report = Sdg.simplify ~epsilon:0.05 ~references nf.Sdet.den in
  Alcotest.(check bool)
    (Printf.sprintf "kept %d of %d terms" report.Sdg.kept_terms report.Sdg.total_terms)
    true
    (report.Sdg.kept_terms < report.Sdg.total_terms);
  Alcotest.(check bool) "kept something" true (report.Sdg.kept_terms > 0);
  (* Each coefficient of the truncated expression is within epsilon. *)
  List.iter
    (fun (rep : Sdg.coefficient_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "power %d error %.3g within 5%%" rep.Sdg.power
           rep.Sdg.achieved_error)
        true
        (rep.Sdg.achieved_error <= 0.05))
    report.Sdg.coefficients;
  (* The simplified response stays close to the full one at the corner. *)
  let s = Cx.jomega (1. /. (2. *. Float.pi *. 1e-9)) in
  let full = Sym.eval nf.Sdet.den s and trunc = Sym.eval simplified s in
  Alcotest.(check bool) "response preserved" true
    (Cx.approx_equal ~rel:0.15 full trunc)

let test_sdg_largest_first () =
  let terms =
    [ g "small" 1e-6; g "large" 1.; g "medium" 1e-3 ] |> List.concat
  in
  let kept, rep = Sdg.simplify_coefficient ~epsilon:1e-4 ~reference:1.001001 terms in
  Alcotest.(check int) "keeps the two largest" 2 (List.length kept);
  (match kept with
  | a :: _ -> check_float "largest first" 1. (Sym.term_value a)
  | [] -> Alcotest.fail "nothing kept");
  Alcotest.(check bool) "error within bound" true (rep.Sdg.achieved_error <= 1e-4)

let test_sdg_zero_reference () =
  let kept, rep = Sdg.simplify_coefficient ~epsilon:0.1 ~reference:0. (g "x" 1.) in
  Alcotest.(check int) "drops everything" 0 (List.length kept);
  Alcotest.(check int) "reports total" 1 rep.Sdg.total_terms

(* --- SBG --- *)

(* A filter with deliberately negligible elements. *)
let sloppy_filter () =
  let b = N.Builder.create ~title:"sloppy" () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"x" 1e3;
  N.Builder.capacitor b "c1" ~a:"x" ~b:"0" 1e-9;
  N.Builder.resistor b "r2" ~a:"x" ~b:"out" 1e3;
  N.Builder.capacitor b "c2" ~a:"out" ~b:"0" 1e-9;
  (* Negligible parasitics: a huge shunt resistor and a tiny capacitor. *)
  N.Builder.resistor b "rhuge" ~a:"x" ~b:"0" 1e12;
  N.Builder.capacitor b "ctiny" ~a:"out" ~b:"x" 1e-18;
  N.Builder.conductance b "gleak" ~a:"out" ~b:"0" 1e-15;
  N.Builder.finish b

let test_sbg_prunes_negligible () =
  let circuit = sloppy_filter () in
  let freqs = Symref_numeric.Grid.decades ~start:1e2 ~stop:1e8 ~per_decade:3 in
  let outcome =
    Sbg.prune circuit ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out") ~freqs
  in
  let removed = outcome.Sbg.removed in
  Alcotest.(check bool) "rhuge pruned" true (List.mem "rhuge" removed);
  Alcotest.(check bool) "ctiny pruned" true (List.mem "ctiny" removed);
  Alcotest.(check bool) "gleak pruned" true (List.mem "gleak" removed);
  Alcotest.(check bool) "r1 kept" false (List.mem "r1" removed);
  Alcotest.(check bool) "c1 kept" false (List.mem "c1" removed);
  Alcotest.(check bool) "error within tolerance" true (outcome.Sbg.error_db <= 0.5)

let test_sbg_keeps_everything_when_tight () =
  let circuit = Ladder.circuit 3 in
  let freqs = Symref_numeric.Grid.decades ~start:1e4 ~stop:1e9 ~per_decade:3 in
  let config =
    { Sbg.default_config with Sbg.tolerance_db = 1e-9; tolerance_deg = 1e-9 }
  in
  let outcome =
    Sbg.prune ~config circuit ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node) ~freqs
  in
  Alcotest.(check (list string)) "nothing removed" [] outcome.Sbg.removed

let test_sbg_ota () =
  (* On the OTA, pruning with a loose tolerance must keep the gain path
     (gm, loads) and the response within tolerance. *)
  let freqs = Symref_numeric.Grid.decades ~start:1e2 ~stop:1e9 ~per_decade:2 in
  let outcome =
    Sbg.prune Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output) ~freqs
  in
  Alcotest.(check bool) "within tolerance" true
    (outcome.Sbg.error_db <= 0.5 && outcome.Sbg.error_deg <= 5.);
  Alcotest.(check bool) "load conductance kept" false
    (List.mem "gload" outcome.Sbg.removed)

let suite =
  [
    ( "sym",
      [
        Alcotest.test_case "algebra" `Quick test_sym_algebra;
        Alcotest.test_case "eval" `Quick test_sym_eval;
        Alcotest.test_case "printing" `Quick test_sym_to_string;
      ] );
    ( "sdet",
      [
        Alcotest.test_case "2x2 determinant" `Quick test_determinant_2x2;
        Alcotest.test_case "dimension guard" `Quick test_determinant_guard;
        Alcotest.test_case "ladder network function" `Quick test_network_function_ladder;
        Alcotest.test_case "ota network function" `Quick test_network_function_ota;
        Alcotest.test_case "coefficients match references" `Quick
          test_symbolic_coefficients_match_references;
      ] );
    ( "sdg",
      [
        Alcotest.test_case "truncation under eq 3" `Quick test_sdg_truncation;
        Alcotest.test_case "largest-first order" `Quick test_sdg_largest_first;
        Alcotest.test_case "zero reference" `Quick test_sdg_zero_reference;
      ] );
    ( "sbg",
      [
        Alcotest.test_case "prunes negligible elements" `Quick test_sbg_prunes_negligible;
        Alcotest.test_case "tight tolerance keeps all" `Quick
          test_sbg_keeps_everything_when_tight;
        Alcotest.test_case "ota pruning" `Quick test_sbg_ota;
      ] );
  ]
