(* Tests for the inductor -> gyrator-C transformation: the paper's footnote
   route for analysing RLC circuits within the capacitor-only framework. *)

module Transform = Symref_circuit.Transform
module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Reference = Symref_core.Reference
module Poles = Symref_core.Poles
module Cx = Symref_numeric.Cx

let rlc ?(r = 50.) ?(l = 1e-6) ?(c = 1e-9) () =
  let b = N.Builder.create ~title:"series RLC" () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"x" r;
  N.Builder.inductor b "l1" ~a:"x" ~b:"out" l;
  N.Builder.capacitor b "c1" ~a:"out" ~b:"0" c;
  N.Builder.finish b

let test_structure () =
  let t = Transform.inductors_to_gyrators (rlc ()) in
  Alcotest.(check bool) "nodal class" true (N.is_nodal_class (N.remove_element t "vin"));
  Alcotest.(check bool) "internal node" true (N.node_id t "l1.x" <> None);
  Alcotest.(check bool) "no inductor left" true
    (List.for_all
       (fun (e : Symref_circuit.Element.t) ->
         match e.Symref_circuit.Element.kind with
         | Symref_circuit.Element.Inductor _ -> false
         | _ -> true)
       (N.elements t));
  (* Untouched circuits come back as-is. *)
  let plain = Symref_circuit.Rc_ladder.circuit 2 in
  Alcotest.(check int) "no-op" (N.element_count plain)
    (N.element_count (Transform.inductors_to_gyrators plain))

let test_frequency_response_preserved () =
  let original = rlc () in
  let transformed = Transform.inductors_to_gyrators original in
  let freqs = Symref_numeric.Grid.decades ~start:1e5 ~stop:1e8 ~per_decade:5 in
  let a = Ac.transfer original ~out_p:"out" freqs in
  let b = Ac.transfer transformed ~out_p:"out" freqs in
  Array.iteri
    (fun i va ->
      Alcotest.(check bool)
        (Printf.sprintf "H at %g Hz: %s vs %s" freqs.(i) (Cx.to_string va)
           (Cx.to_string b.(i)))
        true
        (Cx.approx_equal ~rel:1e-9 va b.(i)))
    a

let test_reference_generation_on_rlc () =
  (* The point of the transformation: references for an RLC circuit. *)
  let t = Transform.inductors_to_gyrators (rlc ()) in
  let r =
    Reference.generate t ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "out")
  in
  Alcotest.(check bool) "converged" true r.Reference.den.Symref_core.Adaptive.converged;
  (* Resonance: w0 = 1/sqrt(LC) -> ~5.03 MHz, Q = sqrt(L/C)/R ~ 0.632. *)
  let a = Poles.analyse r in
  match a.Poles.resonances with
  | [ res ] ->
      let f0 = 1. /. (2. *. Float.pi *. Float.sqrt (1e-6 *. 1e-9)) in
      Alcotest.(check bool)
        (Printf.sprintf "f0 %.4g vs %.4g" res.Poles.freq_hz f0)
        true
        (Float.abs (res.Poles.freq_hz -. f0) < 1e-3 *. f0);
      let q = Float.sqrt (1e-6 /. 1e-9) /. 50. in
      Alcotest.(check bool)
        (Printf.sprintf "q %.4g vs %.4g" res.Poles.q q)
        true
        (Float.abs (res.Poles.q -. q) < 1e-3 *. q)
  | _ -> Alcotest.fail "expected exactly one resonance"

let test_floating_inductor_network () =
  (* Two coupled LC tanks with a floating inductor between them. *)
  let b = N.Builder.create ~title:"coupled tanks" () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "rs" ~a:"in" ~b:"t1" 1e3;
  N.Builder.capacitor b "ca" ~a:"t1" ~b:"0" 1e-10;
  N.Builder.inductor b "la" ~a:"t1" ~b:"0" 1e-5;
  N.Builder.inductor b "lc" ~a:"t1" ~b:"t2" 2e-5;
  N.Builder.capacitor b "cb" ~a:"t2" ~b:"0" 1e-10;
  N.Builder.inductor b "lb" ~a:"t2" ~b:"0" 1e-5;
  N.Builder.resistor b "rl" ~a:"t2" ~b:"0" 1e3;
  let original = N.Builder.finish b in
  let transformed = Transform.inductors_to_gyrators original in
  let freqs = Symref_numeric.Grid.decades ~start:1e5 ~stop:1e8 ~per_decade:4 in
  let a = Ac.transfer original ~out_p:"t2" freqs in
  let b' = Ac.transfer transformed ~out_p:"t2" freqs in
  Array.iteri
    (fun i va ->
      Alcotest.(check bool)
        (Printf.sprintf "coupled H at %g Hz" freqs.(i))
        true
        (Cx.approx_equal ~rel:1e-9 va b'.(i)))
    a;
  (* And the references reconstruct the same response. *)
  let r =
    Reference.generate transformed ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node "t2")
  in
  Array.iteri
    (fun i f ->
      let recon = Reference.eval r (Cx.jomega (2. *. Float.pi *. f)) in
      Alcotest.(check bool)
        (Printf.sprintf "reference H at %g Hz" f)
        true
        (Cx.approx_equal ~rel:1e-5 a.(i) recon))
    freqs

let suite =
  [
    ( "transform",
      [
        Alcotest.test_case "structure" `Quick test_structure;
        Alcotest.test_case "response preserved" `Quick test_frequency_response_preserved;
        Alcotest.test_case "references on RLC" `Quick test_reference_generation_on_rlc;
        Alcotest.test_case "floating inductors" `Quick test_floating_inductor_network;
      ] );
  ]
