(* Transient simulation against closed forms and the modal step responses
   from the reference coefficients — two fully independent time-domain
   routes. *)

module Transient = Symref_mna.Transient
module Nodal = Symref_mna.Nodal
module Ladder = Symref_circuit.Rc_ladder
module Biquad = Symref_circuit.Biquad
module Reference = Symref_core.Reference
module Rational = Symref_core.Rational

let check_rel msg want got tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g vs %.6g" msg got want)
    true
    (Float.abs (got -. want) <= (tol *. Float.abs want) +. 1e-9)

let test_rc_step_closed_form () =
  let tau = 1e-9 in
  let r =
    Transient.simulate (Ladder.circuit 1) ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
      ~waveform:(Transient.step ()) ~t_stop:(5. *. tau) ~steps:500
  in
  (* The backward-Euler start-up step carries an O(h) local error that the
     trapezoidal steps then damp; check from a few steps in. *)
  Array.iteri
    (fun i t ->
      if i > 10 then
        check_rel
          (Printf.sprintf "1 - e^(-t/tau) at %g" t)
          (1. -. Float.exp (-.t /. tau))
          r.Transient.output.(i) 2e-3)
    r.Transient.times

let test_rc_sine_steady_state () =
  (* At the corner frequency the steady-state amplitude is 1/sqrt 2 and the
     phase lag 45 degrees. *)
  let tau = 1e-9 in
  let fc = 1. /. (2. *. Float.pi *. tau) in
  let cycles = 12. in
  let r =
    Transient.simulate (Ladder.circuit 1) ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
      ~waveform:(Transient.sine ~freq_hz:fc ())
      ~t_stop:(cycles /. fc) ~steps:6000
  in
  (* Amplitude over the last two cycles. *)
  let n = Array.length r.Transient.output in
  let tail = Array.sub r.Transient.output (n - 1000) 1000 in
  let peak = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0. tail in
  check_rel "steady-state amplitude" (1. /. Float.sqrt 2.) peak 5e-3

let test_matches_modal_step () =
  (* A Q = 1.3 biquad: trapezoidal integration vs the partial-fraction step
     response from the adaptive references. *)
  let d = { Biquad.f0_hz = 1e6; q = 1.3; gm = 40e-6 } in
  let c = Biquad.cascade [ d ] in
  let input = Nodal.Vsrc_element "vin" and output = Nodal.Out_node "out" in
  let t_stop = 3e-6 in
  let steps = 3000 in
  let sim = Transient.simulate c ~input ~output ~waveform:(Transient.step ()) ~t_stop ~steps in
  let reference = Reference.generate c ~input ~output in
  let modal =
    Rational.step_response (Rational.of_reference reference) ~times:sim.Transient.times
  in
  Array.iteri
    (fun i t ->
      if t > 2e-7 then
        check_rel (Printf.sprintf "modal = trapezoidal at %g" t) modal.(i)
          sim.Transient.output.(i) 0.01)
    sim.Transient.times

let test_validation () =
  Alcotest.(check bool) "bad steps" true
    (try
       ignore
         (Transient.simulate (Ladder.circuit 1) ~input:(Nodal.Vsrc_element "vin")
            ~output:(Nodal.Out_node Ladder.output_node)
            ~waveform:(Transient.step ()) ~t_stop:1e-9 ~steps:0);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "transient",
      [
        Alcotest.test_case "rc step closed form" `Quick test_rc_step_closed_form;
        Alcotest.test_case "rc sine steady state" `Quick test_rc_sine_steady_state;
        Alcotest.test_case "modal vs trapezoidal" `Quick test_matches_modal_step;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
