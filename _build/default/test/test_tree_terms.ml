(* Spanning-tree term generation (true SDG) against the exact symbolic
   determinant and the numerical references. *)

module Tree_terms = Symref_symbolic.Tree_terms
module Sdet = Symref_symbolic.Sdet
module Sym = Symref_symbolic.Sym
module Nodal = Symref_mna.Nodal
module N = Symref_circuit.Netlist
module Ladder = Symref_circuit.Rc_ladder
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Ef = Symref_numeric.Extfloat

let ladder_input = Nodal.Vsrc_element "vin"

let all_terms circuit =
  List.of_seq (Tree_terms.terms circuit ~input:ladder_input)

let test_matches_symbolic_determinant () =
  List.iter
    (fun n ->
      let circuit = Ladder.circuit ~spread:1.7 n in
      let nf =
        Sdet.network_function circuit ~input:ladder_input
          ~output:(Nodal.Out_node Ladder.output_node)
      in
      let trees = all_terms circuit in
      Alcotest.(check int)
        (Printf.sprintf "ladder %d: tree count = symbolic term count" n)
        (Sym.term_count nf.Sdet.den)
        (List.length trees);
      (* Same multiset: every tree term appears in the determinant with the
         same value. *)
      let det_table = Hashtbl.create 64 in
      List.iter
        (fun t -> Hashtbl.replace det_table (Sym.term_to_string t) (Sym.term_value t))
        nf.Sdet.den;
      List.iter
        (fun t ->
          match Hashtbl.find_opt det_table (Sym.term_to_string t) with
          | Some v ->
              Alcotest.(check bool)
                (Printf.sprintf "ladder %d: %s value" n (Sym.term_to_string t))
                true
                (Float.abs (v -. Sym.term_value t) <= 1e-12 *. Float.abs v)
          | None ->
              Alcotest.fail
                (Printf.sprintf "tree term %s not in determinant" (Sym.term_to_string t)))
        trees)
    [ 1; 2; 3; 4 ]

let test_decreasing_order () =
  let circuit = Ladder.circuit ~spread:3. 5 in
  let trees = all_terms circuit in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "|%s| >= |%s|" (Sym.term_to_string a) (Sym.term_to_string b))
          true
          (Float.abs (Sym.term_value a) >= Float.abs (Sym.term_value b) *. (1. -. 1e-12));
        check rest
    | _ -> ()
  in
  check trees

let test_generate_until_eq3 () =
  (* The full SDG loop: numerical references from the adaptive algorithm
     control the truncation (eq. 3). *)
  let circuit = Ladder.circuit ~spread:4. 5 in
  let r =
    Reference.generate circuit ~input:ladder_input
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  let references = Array.map Ef.to_float r.Reference.den.Adaptive.coeffs in
  let total = List.length (all_terms circuit) in
  let loose =
    Tree_terms.generate_until ~epsilon:0.2 ~references circuit ~input:ladder_input
  in
  Alcotest.(check bool) "loose satisfied" true loose.Tree_terms.satisfied;
  Alcotest.(check bool)
    (Printf.sprintf "loose truncates (%d of %d kept)"
       (List.length loose.Tree_terms.kept) total)
    true
    (List.length loose.Tree_terms.kept < total);
  let tight =
    Tree_terms.generate_until ~epsilon:1e-9 ~references circuit ~input:ladder_input
  in
  Alcotest.(check bool) "tight satisfied" true tight.Tree_terms.satisfied;
  Alcotest.(check bool)
    (Printf.sprintf "tight keeps more (%d >= %d)"
       (List.length tight.Tree_terms.kept)
       (List.length loose.Tree_terms.kept))
    true
    (List.length tight.Tree_terms.kept >= List.length loose.Tree_terms.kept);
  (* Kept partial sums reproduce the references within epsilon. *)
  let sums = Array.make (Array.length references) 0. in
  List.iter
    (fun t ->
      let k = Sym.s_power t in
      if k < Array.length sums then sums.(k) <- sums.(k) +. Sym.term_value t)
    loose.Tree_terms.kept;
  Array.iteri
    (fun k reference ->
      if reference <> 0. then
        Alcotest.(check bool)
          (Printf.sprintf "power %d within 20%%" k)
          true
          (Float.abs (reference -. sums.(k)) <= 0.2 *. Float.abs reference))
    references

let test_active_circuit_two_graph () =
  (* The decisive check of the two-graph signs: on the OTA (VCCS network,
     cancellations and negative terms) the enumerated common trees must
     reproduce the exact symbolic determinant term by term. *)
  let module Ota = Symref_circuit.Ota in
  let input = Nodal.V_diff (Ota.input_p, Ota.input_n) in
  let nf =
    Sdet.network_function Ota.circuit ~input ~output:(Nodal.Out_node Ota.output)
  in
  let trees = List.of_seq (Tree_terms.terms Ota.circuit ~input) in
  (* The determinant's normal form may merge equal-magnitude tree terms, so
     compare multiset sums keyed by the symbol product. *)
  let sum_by_key terms =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun t ->
        (* Key: symbols only (strip the coefficient printed by
           term_to_string when it is not +-1). *)
        let k = Sym.term_to_string (List.hd (Sym.scale (1. /. t.Sym.coef) [ t ])) in
        let prev = Option.value ~default:0. (Hashtbl.find_opt tbl k) in
        Hashtbl.replace tbl k (prev +. Sym.term_value t))
      terms;
    tbl
  in
  let want = sum_by_key nf.Sdet.den and got = sum_by_key trees in
  Alcotest.(check int) "distinct products" (Hashtbl.length want) (Hashtbl.length got);
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt got k with
      | Some g ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %g vs %g" k g v)
            true
            (Float.abs (g -. v) <= 1e-9 *. Float.abs v)
      | None -> Alcotest.fail (k ^ " missing from tree terms"))
    want;
  (* Signs genuinely appear: some terms negative. *)
  Alcotest.(check bool) "negative terms exist" true
    (List.exists (fun t -> Sym.term_value t < 0.) trees);
  (* Magnitude ordering holds across signs. *)
  let rec decreasing = function
    | a :: (b :: _ as rest) ->
        Float.abs (Sym.term_value a) >= Float.abs (Sym.term_value b) *. (1. -. 1e-12)
        && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "decreasing magnitudes" true (decreasing trees)

let test_unsupported_elements () =
  let b = N.Builder.create () in
  N.Builder.vsrc b "vin" ~p:"in" ~m:"0" 1.;
  N.Builder.inductor b "l1" ~a:"in" ~b:"out" 1e-6;
  N.Builder.resistor b "r1" ~a:"out" ~b:"0" 50.;
  let c = N.Builder.finish b in
  Alcotest.(check bool) "inductor rejected" true
    (try
       ignore (List.of_seq (Tree_terms.terms c ~input:(Nodal.Vsrc_element "vin")));
       false
     with Tree_terms.Unsupported _ -> true)

let test_exhaustion () =
  (* The stream is finite and complete: forcing past the end yields Nil. *)
  let circuit = Ladder.circuit 2 in
  let s = Tree_terms.terms circuit ~input:ladder_input in
  let n = Seq.length s in
  Alcotest.(check bool) "some trees" true (n > 0);
  (* A second traversal gives the same count (the Seq is re-usable). *)
  Alcotest.(check int) "stable" n (Seq.length s)

let suite =
  [
    ( "tree-terms",
      [
        Alcotest.test_case "matches symbolic determinant" `Quick
          test_matches_symbolic_determinant;
        Alcotest.test_case "strictly decreasing order" `Quick test_decreasing_order;
        Alcotest.test_case "eq. 3 generation loop" `Quick test_generate_until_eq3;
        Alcotest.test_case "active circuit (two-graph)" `Quick
          test_active_circuit_two_graph;
        Alcotest.test_case "unsupported elements" `Quick test_unsupported_elements;
        Alcotest.test_case "stream exhaustion" `Quick test_exhaustion;
      ] );
  ]
