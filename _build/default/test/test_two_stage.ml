(* The two-stage Miller opamp against its textbook closed forms, and the
   CMRR study through the V_common input. *)

module Tsm = Symref_circuit.Two_stage_miller
module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Reference = Symref_core.Reference
module Margins = Symref_core.Margins
module Poles = Symref_core.Poles

let check_rel msg want got tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g vs %.6g" msg got want)
    true
    (Float.abs (got -. want) <= tol *. Float.abs want)

let diff_reference ?params () =
  Reference.generate
    (Tsm.circuit ?params ())
    ~input:(Nodal.V_diff (Tsm.input_p, Tsm.input_n))
    ~output:(Nodal.Out_node Tsm.output)

let test_dc_gain () =
  let p = Tsm.default_params in
  let r = diff_reference () in
  check_rel "dc gain vs design" (Tsm.dc_gain p)
    (Float.abs (Reference.dc_gain r))
    0.15

let test_gbw_follows_design () =
  (* GBW = gm1 / (2 pi Cc): doubling Cc halves it; doubling gm1 doubles it. *)
  let gbw params =
    let r = diff_reference ~params () in
    match (Margins.analyse r).Margins.unity_gain_hz with
    | Some f -> f
    | None -> Alcotest.fail "expected a crossover"
  in
  let base = Tsm.default_params in
  let f0 = gbw base in
  check_rel "design GBW" (Tsm.gbw_hz base) f0 0.12;
  let f_bigcc = gbw { base with Tsm.cc = 2. *. base.Tsm.cc } in
  check_rel "doubling Cc halves GBW" (f0 /. 2.) f_bigcc 0.12;
  let f_biggm = gbw { base with Tsm.gm1 = 2. *. base.Tsm.gm1 } in
  check_rel "doubling gm1 doubles GBW" (2. *. f0) f_biggm 0.15

let test_stability () =
  let r = diff_reference () in
  let m = Margins.analyse r in
  (match m.Margins.phase_margin_deg with
  | Some pm ->
      Alcotest.(check bool)
        (Printf.sprintf "phase margin %.1f in (45, 100)" pm)
        true
        (pm > 45. && pm < 100.)
  | None -> Alcotest.fail "expected phase margin");
  let a = Poles.analyse r in
  Alcotest.(check bool) "all poles stable" true a.Poles.stable

let test_cmrr () =
  let c = Tsm.circuit () in
  let adm =
    Float.abs
      (Reference.dc_gain
         (Reference.generate c
            ~input:(Nodal.V_diff (Tsm.input_p, Tsm.input_n))
            ~output:(Nodal.Out_node Tsm.output)))
  in
  let acm =
    Float.abs
      (Reference.dc_gain
         (Reference.generate c
            ~input:(Nodal.V_common (Tsm.input_p, Tsm.input_n))
            ~output:(Nodal.Out_node Tsm.output)))
  in
  let cmrr_db = 20. *. Float.log10 (adm /. acm) in
  Alcotest.(check bool)
    (Printf.sprintf "CMRR %.1f dB > 40" cmrr_db)
    true (cmrr_db > 40.);
  (* A leakier tail degrades CMRR. *)
  let leaky = { Tsm.default_params with Tsm.gtail = 100e-6 } in
  let c' = Tsm.circuit ~params:leaky () in
  let acm' =
    Float.abs
      (Reference.dc_gain
         (Reference.generate c'
            ~input:(Nodal.V_common (Tsm.input_p, Tsm.input_n))
            ~output:(Nodal.Out_node Tsm.output)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "leaky tail raises CM gain (%.3g vs %.3g)" acm' acm)
    true
    (acm' > acm *. 5.)

let suite =
  [
    ( "two-stage-miller",
      [
        Alcotest.test_case "dc gain" `Quick test_dc_gain;
        Alcotest.test_case "gbw scaling law" `Quick test_gbw_follows_design;
        Alcotest.test_case "stability" `Quick test_stability;
        Alcotest.test_case "cmrr via V_common" `Quick test_cmrr;
      ] );
  ]
