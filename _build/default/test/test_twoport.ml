(* Two-port extraction against hand-computed Y/Z/S parameters. *)

module Twoport = Symref_mna.Twoport
module N = Symref_circuit.Netlist
module Lc = Symref_circuit.Lc_ladder
module Cx = Symref_numeric.Cx

let check_cx msg (want : Complex.t) (got : Complex.t) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s vs %s" msg (Cx.to_string got) (Cx.to_string want))
    true
    (Cx.approx_equal ~rel:1e-9 ~abs:1e-15 want got)

(* Pi network: Ya from port1 to ground, Yb series, Yc from port2 to ground.
   y11 = Ya + Yb, y22 = Yc + Yb, y12 = y21 = -Yb. *)
let pi_network () =
  let b = N.Builder.create ~title:"pi" () in
  N.Builder.resistor b "ra" ~a:"p1" ~b:"0" 100.;
  N.Builder.resistor b "rb" ~a:"p1" ~b:"p2" 50.;
  N.Builder.resistor b "rc" ~a:"p2" ~b:"0" 200.;
  N.Builder.finish b

let test_pi_y_params () =
  let p = Twoport.y_params (pi_network ()) ~port1:"p1" ~port2:"p2" ~freq_hz:1e3 in
  check_cx "y11" (Cx.of_float (0.01 +. 0.02)) p.Twoport.y11;
  check_cx "y22" (Cx.of_float (0.005 +. 0.02)) p.Twoport.y22;
  check_cx "y12" (Cx.of_float (-0.02)) p.Twoport.y12;
  check_cx "y21" (Cx.of_float (-0.02)) p.Twoport.y21;
  Alcotest.(check bool) "reciprocal" true (Twoport.is_reciprocal p)

let test_series_capacitor () =
  (* Series C between ports: y11 = y22 = jwC, y12 = -jwC; no Z params. *)
  let b = N.Builder.create ~title:"series c" () in
  N.Builder.capacitor b "c1" ~a:"p1" ~b:"p2" 1e-9;
  let c = N.Builder.finish b in
  let f = 1e6 in
  let w = 2. *. Float.pi *. f in
  let p = Twoport.y_params c ~port1:"p1" ~port2:"p2" ~freq_hz:f in
  check_cx "y11" (Cx.make 0. (w *. 1e-9)) p.Twoport.y11;
  check_cx "y12" (Cx.make 0. (-.w *. 1e-9)) p.Twoport.y12;
  Alcotest.(check bool) "no Z representation" true (Twoport.z_params p = None)

let test_z_params_pi () =
  let p = Twoport.y_params (pi_network ()) ~port1:"p1" ~port2:"p2" ~freq_hz:1e3 in
  match Twoport.z_params p with
  | None -> Alcotest.fail "expected Z params"
  | Some z ->
      (* Z of a pi: z11 = Ra (Rb + Rc) / (Ra + Rb + Rc), z12 = Ra Rc / sum. *)
      let sum = 100. +. 50. +. 200. in
      check_cx "z11" (Cx.of_float (100. *. (50. +. 200.) /. sum)) z.Twoport.y11;
      check_cx "z12" (Cx.of_float (100. *. 200. /. sum)) z.Twoport.y12;
      check_cx "z22" (Cx.of_float (200. *. (50. +. 100.) /. sum)) z.Twoport.y22

let test_s_params_matched_series () =
  (* Series resistor R = 2 z0 between matched ports:
     S11 = R/(R + 2 z0) = 0.5, S21 = 2 z0/(R + 2 z0) = 0.5. *)
  let b = N.Builder.create ~title:"series r" () in
  N.Builder.resistor b "r1" ~a:"p1" ~b:"p2" 100.;
  let c = N.Builder.finish b in
  let y = Twoport.y_params c ~port1:"p1" ~port2:"p2" ~freq_hz:1e3 in
  let s = Twoport.s_params ~z0:50. y in
  check_cx "s11" (Cx.of_float 0.5) s.Twoport.y11;
  check_cx "s21" (Cx.of_float 0.5) s.Twoport.y21;
  check_cx "s22" (Cx.of_float 0.5) s.Twoport.y22

let test_s_params_through () =
  (* A tiny series resistance approximates a through: S21 ~ 1, S11 ~ 0. *)
  let b = N.Builder.create ~title:"thru" () in
  N.Builder.resistor b "r1" ~a:"p1" ~b:"p2" 1e-3;
  let c = N.Builder.finish b in
  let y = Twoport.y_params c ~port1:"p1" ~port2:"p2" ~freq_hz:1e3 in
  let s = Twoport.s_params y in
  Alcotest.(check bool) "s21 ~ 1" true (Complex.norm s.Twoport.y21 > 0.99999);
  Alcotest.(check bool) "s11 ~ 0" true (Complex.norm s.Twoport.y11 < 1e-4)

let test_butterworth_port_match () =
  (* A doubly-terminated Butterworth is matched in-band: |S11| small at DC
     after de-embedding the terminations... simpler invariant: the ladder
     between its termination resistors is reciprocal and lossless in
     structure, so y12 = y21 at any frequency. *)
  let lc = Lc.butterworth 5 in
  (* Strip the source to get a source-free network. *)
  let c = N.remove_element lc "vin" in
  let p = Twoport.y_params c ~port1:Lc.input_node ~port2:Lc.output_node ~freq_hz:7.7e5 in
  Alcotest.(check bool) "reciprocal" true (Twoport.is_reciprocal ~rel:1e-6 p)

let suite =
  [
    ( "twoport",
      [
        Alcotest.test_case "pi network Y" `Quick test_pi_y_params;
        Alcotest.test_case "series capacitor" `Quick test_series_capacitor;
        Alcotest.test_case "pi network Z" `Quick test_z_params_pi;
        Alcotest.test_case "S of matched series R" `Quick test_s_params_matched_series;
        Alcotest.test_case "S of a through" `Quick test_s_params_through;
        Alcotest.test_case "butterworth reciprocity" `Quick test_butterworth_port_match;
      ] );
  ]
