(* Benchmark and reproduction harness.

   Regenerates every table and figure of the paper's evaluation:

     T1a  Table 1a : OTA coefficients, unit-circle interpolation (failure)
     T1b  Table 1b : OTA coefficients, fixed frequency scale 1e9
     T2a  Table 2a : uA741 denominator, 1st adaptive interpolation
     T2b  Table 2b : uA741 denominator, 2nd adaptive interpolation
     T3   Table 3  : uA741 denominator, 3rd+ adaptive interpolations
     F2   Fig. 2   : Bode diagrams, interpolated vs electrical simulator
     CPU  §3.3     : per-iteration cost, with vs without eq. 17 reduction
     X1   §3.2     : simultaneous vs frequency-only scaling (ablation)
     X2   §3.2     : sparse vs dense LU (ablation)

   `dune exec bench/main.exe` prints the tables and then runs one Bechamel
   timing bench per artefact.  `dune exec bench/main.exe -- tables` or
   `-- timing` selects one half. *)

module N = Symref_circuit.Netlist
module Ota = Symref_circuit.Ota
module Ua741 = Symref_circuit.Ua741
module Ladder = Symref_circuit.Rc_ladder
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Evaluator = Symref_core.Evaluator
module Naive = Symref_core.Naive
module Fixed_scale = Symref_core.Fixed_scale
module Adaptive = Symref_core.Adaptive
module Interp = Symref_core.Interp
module Reference = Symref_core.Reference
module Report = Symref_core.Report
module Scaling = Symref_core.Scaling
module Band = Symref_core.Band
module Sparse = Symref_linalg.Sparse
module Dense = Symref_linalg.Dense
module Grid = Symref_numeric.Grid
module Ef = Symref_numeric.Extfloat
module Obs = Symref_obs.Metrics
module Trace = Symref_obs.Trace
module Snapshot = Symref_obs.Snapshot
module Json = Symref_obs.Json

let section id title = Printf.printf "\n=== [%s] %s ===\n\n" id title

(* --- shared problems --- *)

let ota_problem () =
  Nodal.make Ota.circuit
    ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
    ~output:(Nodal.Out_node Ota.output)

let ua741_problem () =
  Nodal.make Ua741.circuit
    ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
    ~output:(Nodal.Out_node Ua741.output)

let ua741_with_sources () =
  N.extend Ua741.circuit (fun b ->
      N.Builder.vsrc b "srcp" ~p:Ua741.input_p ~m:"0" 0.5;
      N.Builder.vsrc b "srcm" ~p:Ua741.input_n ~m:"0" (-0.5))

let ua741_reference () =
  Reference.generate Ua741.circuit
    ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
    ~output:(Nodal.Out_node Ua741.output)

(* --- table reproductions --- *)

let t1a () =
  section "T1a"
    "OTA of Fig. 1: unit-circle interpolation fails beyond the lowest orders";
  (* Table 1a is about the naive per-point-LU pipeline: with pattern reuse
     the round-off correlates across points and loses its Im-garbage
     signature, so reproduce it with an independent pivot search per point. *)
  let p =
    Nodal.make ~reuse:false Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output)
  in
  let num = Naive.run (Evaluator.of_nodal p ~num:true) in
  let den = Naive.run (Evaluator.of_nodal p ~num:false) in
  print_string (Report.naive_table ~num ~den ());
  Printf.printf
    "round-off symptom (Im comparable to Re): %.0f%% of numerator, %.0f%% of \
     denominator coefficients\n"
    (100. *. Naive.garbage_fraction num)
    (100. *. Naive.garbage_fraction den)

let t1b () =
  section "T1b" "OTA of Fig. 1: fixed frequency scale factor 1e9 (paper's choice)";
  let p = ota_problem () in
  print_string
    (Report.fixed_scale_table ~title:"denominator:"
       (Fixed_scale.run ~f:1e9 (Evaluator.of_nodal p ~num:false)));
  print_string
    (Report.fixed_scale_table ~title:"numerator:"
       (Fixed_scale.run ~f:1e9 (Evaluator.of_nodal p ~num:true)))

let t2_t3 () =
  let r = ua741_reference () in
  let den = r.Reference.den in
  section "T2a-T3" "uA741 denominator: successive adaptive interpolations";
  print_string (Report.adaptive_summary den);
  List.iter
    (fun p ->
      if p.Adaptive.fresh > 0 then begin
        print_newline ();
        print_string (Report.adaptive_pass_table ~pass:p.Adaptive.pass den)
      end)
    den.Adaptive.reports;
  (* The paper's signature: consecutive-coefficient ratios of 1e6..1e12. *)
  let ratios = Adaptive.coefficient_ratios den in
  let finite = Array.to_list ratios |> List.filter (fun x -> not (Float.is_nan x)) in
  let lo, hi = Symref_numeric.Stats.min_max finite in
  Printf.printf
    "\nconsecutive coefficient ratios span %.1f .. %.1f decades (paper: 6-12)\n"
    (-.hi) (-.lo);
  r

let f2 r =
  section "F2" "uA741 Bode diagrams: interpolated coefficients vs electrical simulator";
  let freqs = Grid.decades ~start:1. ~stop:1e8 ~per_decade:2 in
  let sim = Ac.bode (ua741_with_sources ()) ~out_p:Ua741.output freqs in
  let interp = Reference.bode r freqs in
  print_string (Report.bode_table ~interpolated:interp ~simulator:sim);
  let dmag, dph = Reference.bode_vs_simulator r sim in
  Printf.printf
    "\nmax |delta|: %.5f dB, %.5f deg (paper: 'perfect matching can be observed')\n"
    dmag dph

let cpu () =
  section "CPU"
    "per-iteration cost with eq. 17 reduction (paper: 3.9s / 2.3s / 0.9s shape)";
  let show config title =
    let ev = Evaluator.of_nodal (ua741_problem ()) ~num:false in
    let t0 = Sys.time () in
    let r = Adaptive.run ~config ev in
    let dt = Sys.time () -. t0 in
    Printf.printf "%s: %d passes, total %.1f ms\n" title r.Adaptive.passes (dt *. 1000.);
    List.iter
      (fun p ->
        Printf.printf "  pass %d: %3d points, %3d LU evaluations%s\n" p.Adaptive.pass
          p.Adaptive.points p.Adaptive.evaluations
          (if p.Adaptive.fresh > 0 then "" else "  (no new coefficients)"))
      r.Adaptive.reports
  in
  show Adaptive.default_config "with reduction (eq. 17)";
  show { Adaptive.default_config with Adaptive.reduce = false } "without reduction";
  print_endline
    "(the reduced run's point count falls pass over pass, as in the paper's\n\
     3.9 -> 2.3 -> 0.9 s sequence; the unreduced run re-interpolates all n+1\n\
     points every time)"

let x1 () =
  section "X1" "ablation: simultaneous f&g scaling (eq. 13) vs frequency-only scaling";
  let run policy =
    let ev = Evaluator.of_nodal (ua741_problem ()) ~num:false in
    let config = { Adaptive.default_config with Adaptive.scaling_policy = policy } in
    let r = Adaptive.run ~config ev in
    let max_f =
      List.fold_left
        (fun acc p -> Float.max acc p.Adaptive.scale.Scaling.f)
        0. r.Adaptive.reports
    in
    (r, max_f)
  in
  let split, split_f = run `Split in
  let fonly, fonly_f = run `Frequency_only in
  Printf.printf "%-18s  %-8s  %-8s  %-12s  %-10s\n" "policy" "passes" "order"
    "max f used" "converged";
  Printf.printf "%-18s  %-8d  %-8d  %-12.3g  %-10b\n" "simultaneous"
    split.Adaptive.passes split.Adaptive.effective_order split_f
    split.Adaptive.converged;
  Printf.printf "%-18s  %-8d  %-8d  %-12.3g  %-10b\n" "frequency-only"
    fonly.Adaptive.passes fonly.Adaptive.effective_order fonly_f
    fonly.Adaptive.converged;
  Printf.printf
    "(frequency-only scaling pushes f to %.2g; the paper caps factors at ~1e18 \
     via simultaneous scaling, which stays at %.2g here)\n"
    fonly_f split_f

let x2 () =
  section "X2" "ablation: sparse vs dense LU on the interpolation inner loop";
  Printf.printf "%-8s  %-12s  %-12s  %-8s\n" "order" "sparse (us)" "dense (us)" "ratio";
  List.iter
    (fun n ->
      (* A tridiagonal admittance matrix, the ladder's pattern. *)
      let b = Sparse.create n in
      let g = 1e-3 and c = 1e-12 in
      for i = 0 to n - 1 do
        Sparse.add b i i { Complex.re = 2. *. g; im = c *. 1e9 };
        if i > 0 then Sparse.add b i (i - 1) { Complex.re = -.g; im = 0. };
        if i < n - 1 then Sparse.add b i (i + 1) { Complex.re = -.g; im = 0. }
      done;
      let dense = Sparse.to_dense b in
      let time f =
        let reps = 64 in
        let t0 = Sys.time () in
        for _ = 1 to reps do
          f ()
        done;
        (Sys.time () -. t0) /. float_of_int reps *. 1e6
      in
      let ts = time (fun () -> ignore (Sparse.det (Sparse.factor b))) in
      let td = time (fun () -> ignore (Dense.det (Dense.factor dense))) in
      Printf.printf "%-8d  %-12.1f  %-12.1f  %-8.1f\n" n ts td (td /. ts))
    [ 8; 16; 32; 64; 128; 256 ]

(* --- JSON pipeline benchmark ------------------------------------------------

   `main.exe json` (and its tiny `smoke` variant wired into the test suite)
   times the evaluation pipeline of this repository against its own
   baselines and writes machine-readable results to BENCH_interp.json, so
   successive PRs accumulate a perf trajectory:

     - full Markowitz factorisation per point vs boxed refactorisation vs
       the fused unboxed kernel vs the batched structure-of-arrays engine
       (per-evaluation cost, four rungs), with the elimination program's
       instruction counts and a decode-vs-float attribution of the
       kernel-to-batched gap,
     - seed-style duplicated num/den adaptive runs vs the shared memoised
       evaluator, at equal coefficients, and batch-on vs batch-off
       coefficient identity,
     - 1-domain vs N-domain interpolation fan-out (bit-identical results),
       persistent pool vs per-pass Domain.spawn,
     - a Symref_obs counter snapshot of one pipeline run, and the measured
       overhead of enabling counters / tracing, median-of-5 per mode
       (schema v8, documented in doc/pipeline.mld).  *)

module Interp_m = Interp
module Random_net = Symref_circuit.Random_net
module Uc = Symref_dft.Unit_circle

let wall = Unix.gettimeofday

let time_wall reps f =
  ignore (f ());
  (* warm: pattern + memo caches, allocator *)
  let t0 = wall () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (wall () -. t0) /. float_of_int reps

(* Median over independent timing runs: a single [time_wall] sample sits at
   the mercy of scheduler noise, which on near-identical modes (counters
   off vs on) can even come out negative as an "overhead".  The median of
   an odd number of runs discards outliers in both directions. *)
let median_wall ~runs reps f =
  let samples = Array.init runs (fun _ -> time_wall reps f) in
  Array.sort compare samples;
  samples.(runs / 2)

type jcircuit = {
  jname : string;
  jcircuit : N.t;
  jinput : Nodal.input;
  joutput : Nodal.output;
}

let json_circuits ~smoke =
  let ladder_n = if smoke then 12 else 64 in
  let random_n = if smoke then 10 else 48 in
  let base =
    [
      {
        jname = "ota";
        jcircuit = Ota.circuit;
        jinput = Nodal.V_diff (Ota.input_p, Ota.input_n);
        joutput = Nodal.Out_node Ota.output;
      };
      {
        jname = "ua741";
        jcircuit = Ua741.circuit;
        jinput = Nodal.V_diff (Ua741.input_p, Ua741.input_n);
        joutput = Nodal.Out_node Ua741.output;
      };
      {
        jname = Printf.sprintf "rc-ladder-%d" ladder_n;
        jcircuit = Ladder.circuit ladder_n;
        jinput = Nodal.Vsrc_element "vin";
        joutput = Nodal.Out_node Ladder.output_node;
      };
      {
        jname = Printf.sprintf "random-net-%d" random_n;
        jcircuit = Random_net.circuit ~seed:7 ~nodes:random_n ();
        jinput = Nodal.Vsrc_element "vin";
        joutput = Nodal.Out_node (Random_net.output_node ~seed:7 ~nodes:random_n);
      };
    ]
  in
  if smoke then List.filteri (fun i _ -> i <> 1) base (* ua741 adaptive is slow-ish *)
  else base

(* --- serve benchmark: scheduler + content-addressed cache -------------------

   Pushes M distinct and N duplicate netlists through the in-process batch
   API (`Symref_serve.Batch`): the distinct files measure scheduler
   throughput, the duplicates measure the content-addressed cache (their
   payloads are answered from it once the first copy has been computed).
   Reported as the "serve" section of BENCH_interp.json (schema v3) and
   runnable standalone as `main.exe serve-smoke`. *)

let ota_with_sources () =
  N.extend Ota.circuit (fun b ->
      N.Builder.vsrc b "srcp" ~p:Ota.input_p ~m:"0" 0.5;
      N.Builder.vsrc b "srcm" ~p:Ota.input_n ~m:"0" (-0.5))

let run_serve ~smoke =
  section (if smoke then "SERVE-SMOKE" else "SERVE")
    "batch service: job scheduler + content-addressed result cache";
  let ladder n = (Printf.sprintf "ladder-%d" n, Ladder.circuit n) in
  let distinct =
    if smoke then [ ("ota", ota_with_sources ()); ladder 8; ladder 12 ]
    else
      [
        ("ota", ota_with_sources ());
        ("ua741", ua741_with_sources ());
        ladder 8;
        ladder 16;
        ladder 24;
        ladder 32;
      ]
  in
  let duplicates = if smoke then 4 else 12 in
  let dir = Filename.temp_dir "symref-serve-bench" "" in
  let write name text =
    let oc = open_out (Filename.concat dir name) in
    output_string oc text;
    close_out oc
  in
  List.iteri
    (fun i (name, c) ->
      write
        (Printf.sprintf "m%02d_%s.cir" i name)
        (Symref_spice.Writer.to_string c))
    distinct;
  (* Duplicates are fresh files with the same content: only the
     content-addressed cache can recognise them. *)
  let first_text = Symref_spice.Writer.to_string (snd (List.hd distinct)) in
  for i = 1 to duplicates do
    write (Printf.sprintf "z_dup%02d.cir" i) first_text
  done;
  let t0 = wall () in
  let report = Symref_serve.Batch.run dir in
  let dt = wall () -. t0 in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let jobs = report.Symref_serve.Batch.files in
  let hits = report.Symref_serve.Batch.cached in
  let misses = jobs - hits in
  let jobs_per_s = float_of_int jobs /. dt in
  Printf.printf
    "batch: %d jobs (%d distinct + %d duplicates) in %.1f ms -> %.0f jobs/s\n\
     cache: %d hits, %d misses (hit ratio %.2f); failures %d\n"
    jobs (List.length distinct) duplicates (dt *. 1000.) jobs_per_s hits misses
    (float_of_int hits /. float_of_int jobs)
    report.Symref_serve.Batch.failed;
  Printf.sprintf
    "  \"serve\": { \"jobs\": %d, \"distinct\": %d, \"duplicates\": %d,\n\
    \    \"wall_ms\": %.2f, \"jobs_per_s\": %.1f, \"failed\": %d,\n\
    \    \"cache\": { \"hits\": %d, \"misses\": %d, \"hit_ratio\": %.3f } }\n"
    jobs (List.length distinct) duplicates (dt *. 1000.) jobs_per_s
    report.Symref_serve.Batch.failed hits misses
    (float_of_int hits /. float_of_int jobs)

(* --- serve-load benchmark: fleet of worker processes vs a single daemon ----

   The multi-process answer to the systhread ceiling: every worker is a real
   `serve-worker` child (a re-exec of this executable) with its own runtime,
   listening on an ephemeral TCP port it announces on stdout.  Clients place
   jobs with the consistent-hash ring (`Symref_serve.Router` as a library —
   the same placement `symref router` computes) and speak raw prebuilt
   NDJSON over persistent connections, so the generator stays cheap and the
   worker daemons are the measured bottleneck.  The workload is a
   duplicate-heavy zipf-skewed draw over K distinct netlists: after one
   warm-up submission per key everything is answered from the workers'
   result caches, which is the operating point the fleet exists for.
   Reported as the "serve_load" section of BENCH_interp.json (schema v6) and
   runnable standalone as `main.exe serve-load`. *)

module Sproto = Symref_serve.Protocol
module Stransport = Symref_serve.Transport
module Srouter = Symref_serve.Router

(* K distinct single-pole-per-section RC ladders: same topology and cost,
   different element values, so every key is a distinct cache entry of equal
   compute weight. *)
let key_netlist i =
  let sections = 8 in
  let b = Buffer.create 256 in
  Printf.bprintf b "loadkey%02d\n" i;
  Printf.bprintf b "v1 in 0 ac 1\n";
  for s = 1 to sections do
    let prev = if s = 1 then "in" else Printf.sprintf "n%d" (s - 1) in
    let node = if s = sections then "out" else Printf.sprintf "n%d" s in
    Printf.bprintf b "r%d %s %s %.3fk\n" s prev node
      (1. +. (0.01 *. float_of_int i));
    Printf.bprintf b "c%d %s 0 1n\n" s node
  done;
  Buffer.add_string b ".end\n";
  Buffer.contents b

let spawn_worker () =
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "serve-worker"; "127.0.0.1:0" |]
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let addr = Stransport.parse (input_line ic) in
  close_in ic;
  (pid, addr)

let stop_worker (pid, addr) =
  (try
     let fd = Stransport.connect addr in
     let ic = Unix.in_channel_of_descr fd
     and oc = Unix.out_channel_of_descr fd in
     ignore (input_line ic);
     output_string oc
       (Json.to_string (Sproto.request_to_json Sproto.Shutdown) ^ "\n");
     flush oc;
     (try ignore (input_line ic) with End_of_file -> ());
     Unix.close fd
   with Unix.Unix_error _ | Sys_error _ | End_of_file ->
     (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
  ignore (Unix.waitpid [] pid)

(* Deterministic splitmix-style mixer: the load is reproducible, and every
   client thread draws an independent stream from its own seed. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

(* Zipf-ish skew: key i drawn with weight 1/(i+1) — a few hot keys, a long
   warm tail, the shape a shared reference service actually sees. *)
let skew_table k =
  let w = Array.init k (fun i -> 1. /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let pick_key table u =
  let n = Array.length table in
  let rec go i = if i >= n - 1 || u < table.(i) then i else go (i + 1) in
  go 0

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let open_conn addr =
  let fd = Stransport.connect addr in
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  ignore (input_line ic);
  (* banner *)
  { fd; ic; oc }

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let exchange c line =
  output_string c.oc line;
  flush c.oc;
  input_line c.ic

let reply_ok line =
  let needle = "\"status\":\"ok\"" in
  let n = String.length needle and l = String.length line in
  let rec at i j = j = n || (line.[i + j] = needle.[j] && at i (j + 1)) in
  let rec go i = i + n <= l && (at i 0 || go (i + 1)) in
  go 0

type load_result = {
  lr_workers : int;
  lr_jobs : int;
  lr_errors : int;
  lr_jobs_per_s : float;
  lr_p50_ms : float;
  lr_p99_ms : float;
}

(* The job set is rebuilt identically by the parent (for warm-up) and by
   every client child (for load): same keys, same prebuilt request lines,
   same ring placement. *)
let load_jobs ~keys addrs =
  let ring = Srouter.create addrs in
  let jobs =
    Array.init keys (fun i ->
        {
          Sproto.default_job with
          Sproto.netlist = `Text (key_netlist i);
          id = Some (Printf.sprintf "k%02d" i);
        })
  in
  let lines =
    Array.map
      (fun j -> Json.to_string (Sproto.request_to_json (Sproto.Submit j)) ^ "\n")
      jobs
  in
  let owner =
    Array.map (fun j -> List.hd (Srouter.route ring (Srouter.job_key j))) jobs
  in
  (lines, owner)

(* One load-generating child process (`serve-load-client`): a closed loop on
   its own runtime, so N clients really offer N concurrent jobs instead of
   serialising on a shared runtime lock.  Prints "njobs nerr" and then one
   latency (ms) per line on stdout for the parent to aggregate. *)
let run_load_client ~seed ~duration ~keys ~addrs =
  let lines, owner = load_jobs ~keys addrs in
  let table = skew_table keys in
  let conns = Array.map open_conn (Array.of_list addrs) in
  let lat = ref [] and njobs = ref 0 and nerr = ref 0 in
  let counter = ref 0 in
  let t_end = wall () +. duration in
  (try
     while wall () < t_end do
       let h = mix64 (Int64.of_int (((seed + 1) * 1_000_003) + !counter)) in
       incr counter;
       let u = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53 in
       let k = pick_key table u in
       let t0 = wall () in
       let reply = exchange conns.(owner.(k)) lines.(k) in
       let t1 = wall () in
       incr njobs;
       if not (reply_ok reply) then incr nerr;
       lat := (t1 -. t0) *. 1000. :: !lat
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> incr nerr);
  Array.iter close_conn conns;
  Printf.printf "%d %d\n" !njobs !nerr;
  List.iter (fun l -> Printf.printf "%.5f\n" l) (List.rev !lat)

let run_load ~workers:nworkers ~clients ~duration ~keys =
  let fleet = Array.init nworkers (fun _ -> spawn_worker ()) in
  let addrs = Array.to_list (Array.map snd fleet) in
  let addr_spec = String.concat "," (List.map Stransport.to_string addrs) in
  (* Warm-up: compute each key once on its owner so the timed window
     measures the duplicate-heavy steady state, not the first touches. *)
  let lines, owner = load_jobs ~keys addrs in
  let warm = Array.map open_conn (Array.of_list addrs) in
  Array.iteri (fun i line -> ignore (exchange warm.(owner.(i)) line)) lines;
  Array.iter close_conn warm;
  let spawn_client i =
    let r, w = Unix.pipe () in
    let pid =
      Unix.create_process Sys.executable_name
        [|
          Sys.executable_name;
          "serve-load-client";
          string_of_int i;
          Printf.sprintf "%.3f" duration;
          string_of_int keys;
          addr_spec;
        |]
        Unix.stdin w Unix.stderr
    in
    Unix.close w;
    (pid, Unix.in_channel_of_descr r)
  in
  let kids = Array.init clients spawn_client in
  let per =
    Array.map
      (fun (pid, ic) ->
        let njobs, nerr =
          match String.split_on_char ' ' (input_line ic) with
          | [ a; b ] -> (int_of_string a, int_of_string b)
          | _ -> failwith "serve-load-client: malformed summary line"
        in
        let lats = ref [] in
        (try
           while true do
             lats := float_of_string (input_line ic) :: !lats
           done
         with End_of_file -> ());
        close_in ic;
        ignore (Unix.waitpid [] pid);
        (njobs, nerr, Array.of_list !lats))
      kids
  in
  Array.iter stop_worker fleet;
  let total_jobs = Array.fold_left (fun a (j, _, _) -> a + j) 0 per in
  let total_err = Array.fold_left (fun a (_, e, _) -> a + e) 0 per in
  let lats =
    Array.concat (Array.to_list (Array.map (fun (_, _, l) -> l) per))
  in
  Array.sort compare lats;
  let pct p =
    let n = Array.length lats in
    if n = 0 then Float.nan
    else lats.(Int.min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  {
    lr_workers = nworkers;
    lr_jobs = total_jobs;
    lr_errors = total_err;
    (* Each child measures its own [duration] window; the windows overlap,
       so the fleet rate is the sum of the per-child rates. *)
    lr_jobs_per_s = float_of_int total_jobs /. duration;
    lr_p50_ms = pct 0.50;
    lr_p99_ms = pct 0.99;
  }

let run_serve_load ~smoke =
  section
    (if smoke then "SERVE-LOAD-SMOKE" else "SERVE-LOAD")
    "fleet load: worker processes + consistent-hash routing vs one daemon";
  let clients = if smoke then 2 else 8 in
  let duration = if smoke then 0.3 else 2.5 in
  let keys = if smoke then 6 else 16 in
  let fleet_n = if smoke then 2 else 4 in
  let baseline = run_load ~workers:1 ~clients ~duration ~keys in
  let fleet = run_load ~workers:fleet_n ~clients ~duration ~keys in
  let speedup = fleet.lr_jobs_per_s /. baseline.lr_jobs_per_s in
  (* Workers and clients are all real processes: the speedup is bounded by
     the cores the machine actually has, so record them next to it. *)
  let cores = Domain.recommended_domain_count () in
  let show tag r =
    Printf.printf
      "%-8s %d workers: %6d jobs in %.1f s -> %8.0f jobs/s  p50 %6.2f ms  \
       p99 %6.2f ms  errors %d\n"
      tag r.lr_workers r.lr_jobs duration r.lr_jobs_per_s r.lr_p50_ms
      r.lr_p99_ms r.lr_errors
  in
  show "baseline" baseline;
  show "fleet" fleet;
  Printf.printf "fleet speedup: %.2fx (on %d core%s)\n" speedup cores
    (if cores = 1 then "" else "s");
  let entry r =
    Printf.sprintf
      "{ \"workers\": %d, \"jobs\": %d, \"jobs_per_s\": %.1f, \"p50_ms\": \
       %.3f, \"p99_ms\": %.3f, \"errors\": %d }"
      r.lr_workers r.lr_jobs r.lr_jobs_per_s r.lr_p50_ms r.lr_p99_ms
      r.lr_errors
  in
  Printf.sprintf
    "  \"serve_load\": { \"clients\": %d, \"duration_s\": %.2f, \"keys\": %d, \
     \"skew\": \"zipf\", \"cores\": %d,\n\
    \    \"baseline\": %s,\n\
    \    \"fleet\": %s,\n\
    \    \"speedup\": %.3f },\n"
    clients duration keys cores (entry baseline) (entry fleet) speedup

(* --- fleet-chaos benchmark: resilience under crash-loop + tarpit ------------

   The acceptance rung for the resilience layer: a three-worker fleet on
   fixed Unix sockets under a {!Symref_serve.Supervisor}, with one worker
   crash-looping (SYMREF_FAULT [serve.crash], deterministic skip/count —
   it dies mid-connection every Nth submit and is restarted on the same
   socket) and one worker tarpitted ([serve.slow_worker] sleeps before
   every submit).  The parent drives the library {!Symref_serve.Router}
   with hedging enabled and tight worker admission (capacity 1, no queue)
   so overload shedding fires under the duplicate bursts.  The rung
   asserts the layer's whole contract at once: zero client-visible errors
   and byte-identical payloads against a healthy baseline, while the
   counters prove the machinery engaged (hedge wins, breaker transitions,
   supervisor restarts, worker-side shed jobs).  Reported as the
   "fleet_chaos" section of BENCH_interp.json (schema v8) and runnable
   standalone as `main.exe fleet-chaos`. *)

module Ssup = Symref_serve.Supervisor

let chaos_sleepf s =
  try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Spawn one fleet worker on a fixed Unix socket with a small admission
   window and an optional fault plan in its environment; stdout (the
   address announce) goes to /dev/null — the socket path is already
   known, and a restarted worker must not scribble on the bench output. *)
let spawn_chaos_worker ~sock ~fault =
  let keep s = not (String.length s >= 12 && String.sub s 0 12 = "SYMREF_FAULT") in
  let env =
    List.filter keep (Array.to_list (Unix.environment ()))
    @ (match fault with None -> [] | Some f -> [ "SYMREF_FAULT=" ^ f ])
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name; "serve-worker"; sock; "1"; "0" |]
      (Array.of_list env) Unix.stdin null Unix.stderr
  in
  Unix.close null;
  pid

let chaos_wait_ready ?(timeout_s = 10.) addr =
  let deadline = wall () +. timeout_s in
  let rec go () =
    match open_conn addr with
    | c ->
        close_conn c;
        true
    | exception (Unix.Unix_error _ | Sys_error _ | End_of_file) ->
        if wall () >= deadline then false
        else begin
          chaos_sleepf 0.02;
          go ()
        end
  in
  go ()

let chaos_exchange_reply addr request =
  let c = open_conn addr in
  let line =
    exchange c (Json.to_string (Sproto.request_to_json request) ^ "\n")
  in
  close_conn c;
  Sproto.reply_of_json (Json.parse line)

(* A worker-side counter, read back over the Stats op (the service embeds
   the full metrics snapshot in its stats body). *)
let chaos_worker_counter addr name =
  match chaos_exchange_reply addr Sproto.Stats with
  | reply -> (
      match Json.member "counters" reply.Sproto.body with
      | Some c -> (
          match Json.member name c with Some v -> Json.to_int v | None -> 0)
      | None -> 0)
  | exception _ -> 0

let run_fleet_chaos ~smoke =
  section
    (if smoke then "FLEET-CHAOS-SMOKE" else "FLEET-CHAOS")
    "fleet chaos: crash-loop + tarpit behind hedging, breakers, supervision";
  let threads = if smoke then 3 else 6 in
  let per_thread = if smoke then 8 else 30 in
  let slow_ms = if smoke then 80 else 120 in
  let crash_skip = if smoke then 5 else 20 in
  let base_keys = if smoke then 4 else 8 in
  let dir = Filename.temp_dir "symref-chaos" "" in
  let sock i = Filename.concat dir (Printf.sprintf "w%d.sock" i) in
  let addrs = List.init 3 (fun i -> Stransport.parse (sock i)) in
  (* Key set: grown until every worker owns at least one key on the
     {e actual} ring (placement hashes the socket addresses), so the
     tarpitted worker is guaranteed primary for some jobs (the hedge
     trigger) and the crash-looper is guaranteed submissions. *)
  let job_of_key i =
    {
      Sproto.default_job with
      Sproto.netlist = `Text (key_netlist i);
      id = Some (Printf.sprintf "chaos%02d" i);
    }
  in
  let keys =
    let probe = Srouter.create addrs in
    let covered k =
      let owners =
        List.init k (fun i ->
            List.hd (Srouter.route probe (Srouter.job_key (job_of_key i))))
      in
      List.for_all (fun w -> List.mem w owners) [ 0; 1; 2 ]
    in
    let rec grow k = if k >= 64 || covered k then k else grow (k + 1) in
    grow base_keys
  in
  let jobs = Array.init keys job_of_key in
  (* Healthy baseline payloads, from a pristine single worker. *)
  let baseline =
    let pid, addr = spawn_worker () in
    let payloads =
      Array.map
        (fun j ->
          let reply = chaos_exchange_reply addr (Sproto.Submit j) in
          if reply.Sproto.status <> Sproto.Ok then
            failwith "fleet-chaos: baseline worker failed a job";
          Json.to_string reply.Sproto.body)
        jobs
    in
    stop_worker (pid, addr);
    payloads
  in
  (* The chaotic fleet: worker 0 healthy, worker 1 crash-looping, worker 2
     tarpitted.  Fixed Unix sockets make restarts transparent to the ring. *)
  let faults =
    [|
      None;
      Some (Printf.sprintf "serve.crash:skip=%d,count=1" crash_skip);
      Some (Printf.sprintf "serve.slow_worker:every=1,payload=%d" slow_ms);
    |]
  in
  Obs.reset ();
  Obs.enable ();
  let sup =
    Ssup.create
      ~config:{ Ssup.default_config with Ssup.crash_budget = 1000 }
      ~slots:3
      ~spawn:(fun ~slot -> spawn_chaos_worker ~sock:(sock slot) ~fault:faults.(slot))
      ()
  in
  let monitor = Ssup.run sup in
  List.iter (fun a -> ignore (chaos_wait_ready a)) addrs;
  let router =
    (* Aggressive breaker for the rung: one mid-connection crash opens the
       worker's circuit, and the short cooldown lets the half-open probe
       and re-close land inside the bench window. *)
    Srouter.create
      ~breaker:
        { Srouter.threshold = 1; cooldown_ms = 100.; max_cooldown_ms = 10_000. }
      ~hedge:
        (Some { Srouter.default_hedge with after_ms_min = 30.; after_ms_max = 30. })
      addrs
  in
  let lock = Mutex.create () in
  let errors = ref 0 and mismatches = ref 0 and retries = ref 0 in
  let lats = ref [] in
  let bump r = Mutex.lock lock; incr r; Mutex.unlock lock in
  let client _t =
    (* Every thread walks the same key sequence, so duplicate bursts hit
       each owner concurrently: capacity 1 + queue 0 makes the excess shed
       (typed Overloaded), which the client absorbs by honoring the
       retry_after hint — chaos must stay invisible to callers. *)
    for n = 0 to per_thread - 1 do
      let k = n mod keys in
      let t0 = wall () in
      let rec attempt left =
        if left = 0 then bump errors
        else
          let r = Srouter.forward router jobs.(k) in
          if r.Sproto.status = Sproto.Ok then begin
            if Json.to_string r.Sproto.body <> baseline.(k) then
              bump mismatches
          end
          else if
            r.Sproto.status = Sproto.Overloaded
            || r.Sproto.status = Sproto.Busy
          then begin
            bump retries;
            let after =
              match Sproto.retry_after_ms r with Some ms -> ms | None -> 10.
            in
            chaos_sleepf (Float.min after 50. /. 1000.);
            attempt (left - 1)
          end
          else if Sproto.error_kind r = Some "connection" then begin
            (* Whole-ring transient (every candidate mid-restart): back
               off briefly and go again. *)
            bump retries;
            chaos_sleepf 0.05;
            attempt (left - 1)
          end
          else bump errors
      in
      attempt 200;
      let ms = (wall () -. t0) *. 1000. in
      Mutex.lock lock;
      lats := ms :: !lats;
      Mutex.unlock lock
    done
  in
  let kids = List.init threads (fun t -> Thread.create client t) in
  List.iter Thread.join kids;
  (* Deterministic shed probe: two cache-miss submits race through the
     tarpit's pre-admission sleep, which synchronises them onto the single
     admission slot — one computes, the other is shed (capacity 1, queue
     0) regardless of scheduling noise in the main run. *)
  let slow_addr = List.nth addrs 2 in
  let probe i =
    let job =
      {
        Sproto.default_job with
        Sproto.netlist = `Text (key_netlist (100 + i));
        id = Some (Printf.sprintf "shedprobe%d" i);
      }
    in
    try ignore (chaos_exchange_reply slow_addr (Sproto.Submit job))
    with _ -> ()
  in
  let probes = List.init 2 (fun i -> Thread.create probe i) in
  List.iter Thread.join probes;
  (* Worker-side shed totals (each incarnation counts from zero; the sum
     across live workers is the proof shedding engaged at all). *)
  let shed =
    List.fold_left
      (fun acc a ->
        ignore (chaos_wait_ready a);
        acc + chaos_worker_counter a "serve.shed_jobs")
      0 addrs
  in
  let restarts = Ssup.restarts sup in
  let snap = Snapshot.capture () in
  Ssup.stop ~grace_s:2.0
    ~notify:(fun ~slot ~pid:_ ->
      try ignore (chaos_exchange_reply (Stransport.parse (sock slot)) Sproto.Shutdown)
      with _ -> ())
    sup;
  Thread.join monitor;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Obs.disable ();
  Obs.reset ();
  let lats = Array.of_list !lats in
  Array.sort compare lats;
  let pct p =
    let n = Array.length lats in
    if n = 0 then Float.nan
    else lats.(Int.min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let total = threads * per_thread in
  Printf.printf
    "chaos: %d jobs over %d threads, %d keys -> p50 %.2f ms  p99 %.2f ms\n\
     contract: errors %d, payload mismatches %d (client retries %d)\n\
     machinery: hedges %d (wins %d), failovers %d, breakers %d/%d/%d \
     (open/half/close), restarts %d, shed %d\n"
    total threads keys (pct 0.50) (pct 0.99) !errors !mismatches !retries
    snap.Snapshot.router_hedges snap.Snapshot.router_hedge_wins
    snap.Snapshot.router_failovers snap.Snapshot.router_breaker_opens
    snap.Snapshot.router_breaker_half_opens snap.Snapshot.router_breaker_closes
    restarts shed;
  Printf.sprintf
    "  \"fleet_chaos\": { \"workers\": 3, \"threads\": %d, \"keys\": %d, \
     \"jobs\": %d,\n\
    \    \"errors\": %d, \"mismatches\": %d, \"retries\": %d, \"p50_ms\": \
     %.3f, \"p99_ms\": %.3f,\n\
    \    \"hedges\": %d, \"hedge_wins\": %d, \"failovers\": %d,\n\
    \    \"breaker_opens\": %d, \"breaker_half_opens\": %d, \
     \"breaker_closes\": %d,\n\
    \    \"restarts\": %d, \"giveups\": %d, \"shed_jobs\": %d },\n"
    threads keys total !errors !mismatches !retries (pct 0.50) (pct 0.99)
    snap.Snapshot.router_hedges snap.Snapshot.router_hedge_wins
    snap.Snapshot.router_failovers snap.Snapshot.router_breaker_opens
    snap.Snapshot.router_breaker_half_opens snap.Snapshot.router_breaker_closes
    restarts snap.Snapshot.fleet_giveups shed

(* --- simplify benchmark: reference-driven symbolic compression --------------

   Runs the lib/simplify pipeline (SBG -> SDG -> SAG under a 0.5 dB / 2 deg
   budget, re-verified against the numerical reference over the full grid)
   on the symbolic-sized built-in workloads and records the term compression
   ratio, the certified worst-case error and the wall time.  Reported as the
   "simplify" section of BENCH_interp.json (schema v7) and runnable
   standalone as `main.exe simplify-smoke`. *)

module Pipeline = Symref_simplify.Pipeline
module Sbudget = Symref_simplify.Budget
module Certificate = Symref_simplify.Certificate
module Miller = Symref_circuit.Two_stage_miller

let run_simplify ~smoke =
  section
    (if smoke then "SIMPLIFY-SMOKE" else "SIMPLIFY")
    "reference-driven simplification: term compression under an error budget";
  let targets =
    let ota =
      ( "ota", Ota.circuit,
        Nodal.V_diff (Ota.input_p, Ota.input_n),
        Nodal.Out_node Ota.output )
    in
    let miller =
      ( "two-stage-miller", Miller.circuit (),
        Nodal.V_diff (Miller.input_p, Miller.input_n),
        Nodal.Out_node Miller.output )
    in
    if smoke then [ ota ] else [ ota; miller ]
  in
  let budget = Sbudget.v ~db:0.5 ~deg:2. () in
  let freqs = Grid.decades ~start:1. ~stop:1e8 ~per_decade:4 in
  let n = List.length targets in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "  \"simplify\": { \"budget_db\": 0.5, \"budget_deg\": 2, \"circuits\": [\n";
  List.iteri
    (fun i (name, c, input, output) ->
      let t0 = wall () in
      let r = Pipeline.run c ~input ~output ~budget ~freqs in
      let dt = (wall () -. t0) *. 1000. in
      let exact = r.Pipeline.exact_num_terms + r.Pipeline.exact_den_terms in
      let kept = r.Pipeline.num_terms + r.Pipeline.den_terms in
      let ratio = float_of_int exact /. float_of_int (Int.max 1 kept) in
      let cert = r.Pipeline.certificate in
      Printf.printf
        "%-18s dim %2d: terms %5d -> %4d (%.1fx)  attempts %d  err %.3f dB / \
         %.3f deg  within %b  %.1f ms\n"
        name r.Pipeline.dim exact kept ratio r.Pipeline.attempts
        cert.Certificate.max_db cert.Certificate.max_deg
        cert.Certificate.within_budget dt;
      Printf.bprintf buf
        "    { \"name\": \"%s\", \"dim\": %d, \"exact_terms\": %d, \"terms\": \
         %d, \"compression\": %.3f,\n\
        \      \"attempts\": %d, \"fallback\": %b, \"max_db\": %.5f, \
         \"max_deg\": %.5f, \"within_budget\": %b, \"wall_ms\": %.2f }%s\n"
        name r.Pipeline.dim exact kept ratio r.Pipeline.attempts
        r.Pipeline.fallback cert.Certificate.max_db cert.Certificate.max_deg
        cert.Certificate.within_budget dt
        (if i = n - 1 then "" else ","))
    targets;
  Buffer.add_string buf "  ] },\n";
  Buffer.contents buf

let coeffs_match (a : Adaptive.result) (b : Adaptive.result) =
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if a.Adaptive.established.(i) && b.Adaptive.established.(i) then
        if not (Ef.is_zero x && Ef.is_zero b.Adaptive.coeffs.(i)) then
          if not (Ef.approx_equal ~rel:1e-5 x b.Adaptive.coeffs.(i)) then ok := false)
    a.Adaptive.coeffs;
  !ok

let run_json ~smoke =
  let reps = if smoke then 2 else 5 in
  let eval_reps = if smoke then 8 else 64 in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  section (if smoke then "SMOKE" else "JSON")
    "pipeline benchmark: full-factor vs refactor, shared num/den, domains";
  out "{\n  \"schema\": \"symref/bench-interp/v8\",\n";
  out "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full");
  out "  \"circuits\": [\n";
  let ncirc = List.length (json_circuits ~smoke) in
  List.iteri
    (fun ci jc ->
      let mk ~reuse ~kernel =
        Nodal.make ~reuse ~kernel jc.jcircuit ~input:jc.jinput ~output:jc.joutput
      in
      (* Four rungs of the same evaluation: full Markowitz search per point,
         boxed replay of the recorded pivot order, the fused unboxed kernel,
         and the batched structure-of-arrays engine (one program decode per
         sweep).  All four return bit-identical values. *)
      let p_full = mk ~reuse:false ~kernel:false in
      let p_refac = mk ~reuse:true ~kernel:false in
      let p_kernel = mk ~reuse:true ~kernel:true in
      let dim = Nodal.dimension p_kernel in
      let f = 1. /. Nodal.mean_capacitance p_kernel
      and g = 1. /. Nodal.mean_conductance p_kernel in
      let k = Nodal.order_bound p_kernel + 1 in
      (* Per-evaluation cost over the unit-circle points of a first pass. *)
      let npts = (k / 2) + 2 in
      let points = Array.init npts (fun j -> Uc.point (Int.max k 4) j) in
      let sweep p () =
        for j = 0 to npts - 1 do
          ignore (Nodal.eval ~f ~g p points.(j))
        done
      in
      let batch_sweep () = ignore (Nodal.eval_batch ~f ~g p_kernel points) in
      let per_point t = t /. float_of_int npts *. 1e6 in
      let t_full = median_wall ~runs:5 eval_reps (sweep p_full) in
      let t_refac = median_wall ~runs:5 eval_reps (sweep p_refac) in
      let t_kernel = median_wall ~runs:5 eval_reps (sweep p_kernel) in
      let t_batch = median_wall ~runs:5 eval_reps batch_sweep in
      (* Whole reference generation: seed path vs pipeline, equal results;
         batch on vs off must agree to the bit, not just to tolerance. *)
      let gen ~share ~reuse ?batch () =
        Reference.generate ~share ~reuse ?batch jc.jcircuit ~input:jc.jinput
          ~output:jc.joutput
      in
      let t_seed = time_wall reps (gen ~share:false ~reuse:false) in
      let t_pipeline = time_wall reps (gen ~share:true ~reuse:true) in
      let r_seed = gen ~share:false ~reuse:false () in
      let r_pipe = gen ~share:true ~reuse:true ~batch:true () in
      let r_nobatch = gen ~share:true ~reuse:true ~batch:false () in
      let equal =
        coeffs_match r_seed.Reference.num r_pipe.Reference.num
        && coeffs_match r_seed.Reference.den r_pipe.Reference.den
      in
      let batch_identical =
        r_pipe.Reference.num.Adaptive.coeffs = r_nobatch.Reference.num.Adaptive.coeffs
        && r_pipe.Reference.den.Adaptive.coeffs
           = r_nobatch.Reference.den.Adaptive.coeffs
      in
      Printf.printf
        "%-16s dim %3d: eval %8.1f -> %7.1f -> %7.1f -> %7.1f us/pt (batch %4.2fx)   \
         reference %8.2f -> %7.2f ms (%4.1fx)  equal %b  batch_identical %b\n"
        jc.jname dim (per_point t_full) (per_point t_refac) (per_point t_kernel)
        (per_point t_batch) (t_kernel /. t_batch) (t_seed *. 1000.)
        (t_pipeline *. 1000.)
        (t_seed /. t_pipeline)
        equal batch_identical;
      out "    {\n      \"name\": \"%s\", \"dim\": %d, \"order_bound\": %d,\n"
        jc.jname dim (Nodal.order_bound p_kernel);
      out
        "      \"eval_us_per_point\": { \"full_factor\": %.3f, \"refactor\": \
         %.3f, \"kernel\": %.3f, \"batched\": %.3f, \"speedup\": %.3f, \
         \"kernel_speedup\": %.3f, \"batch_speedup\": %.3f },\n"
        (per_point t_full) (per_point t_refac) (per_point t_kernel)
        (per_point t_batch)
        (t_full /. t_refac) (t_refac /. t_kernel) (t_kernel /. t_batch);
      out "      \"kernel_us_per_point\": %.3f,\n" (per_point t_kernel);
      out "      \"batched_us_per_point\": %.3f,\n" (per_point t_batch);
      (* The elimination program the batched engine replays: instruction
         counts (what the per-point engine re-decodes at every point), and
         a decode-vs-float attribution of the kernel-to-batched gap — the
         batched rung amortises the decode over the batch, so the per-point
         difference estimates the decode traffic and the batched time the
         irreducible float work. *)
      (match Nodal.elimination_program ~f ~g p_kernel with
      | None -> ()
      | Some prog ->
          let sum a = Array.fold_left (fun acc x -> acc + Array.length x) 0 a in
          let updates =
            Array.fold_left (fun acc t -> acc + sum t) 0
              prog.Symref_linalg.Kernel.elim_upd
          in
          out
            "      \"program\": { \"steps\": %d, \"slots\": %d, \"fill\": %d, \
             \"lower_len\": %d, \"elim_rows\": %d, \"elim_updates\": %d },\n"
            prog.Symref_linalg.Kernel.n prog.Symref_linalg.Kernel.nslots
            prog.Symref_linalg.Kernel.fill prog.Symref_linalg.Kernel.lower_len
            (sum prog.Symref_linalg.Kernel.elim_row)
            updates;
          let decode_us = Float.max 0. (per_point t_kernel -. per_point t_batch) in
          out
            "      \"decode_split\": { \"kernel_us\": %.3f, \"float_us\": %.3f, \
             \"decode_us\": %.3f, \"decode_pct\": %.1f },\n"
            (per_point t_kernel) (per_point t_batch) decode_us
            (decode_us /. per_point t_kernel *. 100.));
      out "      \"reference_ms\": { \"seed\": %.4f, \"pipeline\": %.4f, \"speedup\": %.3f, \"coeffs_match\": %b, \"batch_identical\": %b },\n"
        (t_seed *. 1000.) (t_pipeline *. 1000.) (t_seed /. t_pipeline) equal
        batch_identical;
      out "      \"lu_evaluations\": { \"seed\": %d, \"pipeline\": %d }\n"
        (Reference.total_evaluations r_seed) (Reference.total_evaluations r_pipe);
      out "    }%s\n" (if ci = ncirc - 1 then "" else ","))
    (json_circuits ~smoke);
  out "  ],\n";
  (* Shared num/den evaluator: distinct factorisations vs total calls. *)
  let shared_target = if smoke then List.hd (json_circuits ~smoke) else List.nth (json_circuits ~smoke) 1 in
  let sp =
    Nodal.make shared_target.jcircuit ~input:shared_target.jinput
      ~output:shared_target.joutput
  in
  let sh = Evaluator.of_nodal_shared sp in
  let rn = Adaptive.run sh.Evaluator.snum in
  let rd = Adaptive.run sh.Evaluator.sden in
  let calls = rn.Adaptive.evaluations + rd.Adaptive.evaluations in
  Printf.printf
    "shared num/den on %s: %d evaluator calls -> %d factorizations (%d table hits)\n"
    shared_target.jname calls
    (sh.Evaluator.factorizations ())
    (sh.Evaluator.hits ());
  out "  \"shared\": { \"circuit\": \"%s\", \"calls\": %d, \"factorizations\": %d, \"hits\": %d },\n"
    shared_target.jname calls
    (sh.Evaluator.factorizations ())
    (sh.Evaluator.hits ());
  (* Domain fan-out on one first pass (results must be bit-identical). *)
  let dp =
    Nodal.make shared_target.jcircuit ~input:shared_target.jinput
      ~output:shared_target.joutput
  in
  let dev = Evaluator.of_nodal dp ~num:false in
  let dk = Nodal.order_bound dp + 1 in
  let dscale = Scaling.initial dev in
  let baseline = Interp_m.run dev ~scale:dscale ~k:dk in
  let dlist = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  out "  \"domains\": { \"circuit\": \"%s\", \"points\": %d, \"runs\": [\n"
    shared_target.jname dk;
  let nd = List.length dlist in
  List.iteri
    (fun i d ->
      (* "ms" is the default `Pool path; "spawn_ms" pays a Domain.spawn per
         pass, the pre-pool behaviour that motivated Domain_pool. *)
      let t =
        time_wall reps (fun () -> Interp_m.run ~domains:d dev ~scale:dscale ~k:dk)
      in
      let t_spawn =
        time_wall reps (fun () ->
            Interp_m.run ~domain_strategy:`Spawn ~domains:d dev ~scale:dscale
              ~k:dk)
      in
      let r = Interp_m.run ~domains:d dev ~scale:dscale ~k:dk in
      let identical = r.Interp_m.normalized = baseline.Interp_m.normalized in
      Printf.printf "domains=%d: pool %.2f ms, spawn %.2f ms  bit-identical %b\n"
        d (t *. 1000.) (t_spawn *. 1000.) identical;
      out
        "    { \"domains\": %d, \"ms\": %.4f, \"spawn_ms\": %.4f, \
         \"bit_identical\": %b }%s\n"
        d (t *. 1000.) (t_spawn *. 1000.) identical
        (if i = nd - 1 then "" else ","))
    dlist;
  out "  ] },\n";
  (* Counter snapshot of one full pipeline run on the shared target. *)
  let gen_target () =
    Reference.generate shared_target.jcircuit ~input:shared_target.jinput
      ~output:shared_target.joutput
  in
  Obs.reset ();
  Obs.enable ();
  ignore (gen_target ());
  Obs.disable ();
  let snap = Snapshot.capture () in
  Printf.printf
    "counters on %s: %d adaptive passes, %d factorizations, %d memo hits\n"
    shared_target.jname snap.Snapshot.adaptive_passes
    (Snapshot.factorizations snap) snap.Snapshot.memo_hits;
  out "  \"counters\": { \"circuit\": \"%s\", \"snapshot\": %s },\n"
    shared_target.jname
    (Json.to_string (Snapshot.to_json snap));
  Obs.reset ();
  (* Observability overhead: the same reference generation with counters
     off, with counters on, and with tracing on.  Median-of-5 per mode,
     with the modes interleaved round-robin: the overheads are small
     enough that single-run noise used to dominate, and measuring the
     modes in sequence adds a systematic warm-up drift on top — the
     mode measured first looked slowest, so tracing could even report
     as *faster* than off.  Interleaving exposes every mode to the same
     drift; the median then discards the remaining outliers. *)
  let runs = 5 in
  (* More inner repetitions than the other sections: the quantity of
     interest is a sub-percent difference, so each sample needs to be a
     long enough average for the medians to order meaningfully. *)
  let obs_reps = reps * 4 in
  let trace_tmp = "BENCH_trace.tmp.json" in
  let s_off = Array.make runs 0.
  and s_stats = Array.make runs 0.
  and s_trace = Array.make runs 0. in
  for r = 0 to runs - 1 do
    s_off.(r) <- time_wall obs_reps gen_target;
    Obs.enable ();
    s_stats.(r) <- time_wall obs_reps gen_target;
    Obs.disable ();
    Obs.reset ();
    Trace.start ~file:trace_tmp;
    s_trace.(r) <- time_wall obs_reps gen_target;
    Trace.finish ()
  done;
  let median a =
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let t_off = median s_off in
  let t_stats = median s_stats in
  let t_trace = median s_trace in
  (try Sys.remove trace_tmp with Sys_error _ -> ());
  let pct t = (t -. t_off) /. t_off *. 100. in
  Printf.printf
    "observability overhead on %s: off %.2f ms, stats %.2f ms (%+.1f%%), trace \
     %.2f ms (%+.1f%%)\n"
    shared_target.jname (t_off *. 1000.) (t_stats *. 1000.) (pct t_stats)
    (t_trace *. 1000.) (pct t_trace);
  out
    "  \"observability\": { \"circuit\": \"%s\",\n\
    \    \"reference_ms\": { \"off\": %.4f, \"stats\": %.4f, \"trace\": %.4f },\n\
    \    \"overhead_pct\": { \"stats\": %.2f, \"trace\": %.2f } },\n"
    shared_target.jname (t_off *. 1000.) (t_stats *. 1000.) (t_trace *. 1000.)
    (pct t_stats) (pct t_trace);
  out "%s" (run_simplify ~smoke);
  out "%s" (run_serve_load ~smoke);
  out "%s" (run_fleet_chaos ~smoke);
  out "%s" (run_serve ~smoke);
  out "}\n";
  let file = if smoke then "BENCH_interp.smoke.json" else "BENCH_interp.json" in
  let oc = open_out file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "\nwrote %s\n" file

(* --- Bechamel timing benches: one per table/figure --- *)

open Bechamel
open Toolkit

let stage = Staged.stage

let bench_tests () =
  let ota = ota_problem () in
  let ua741 = ua741_problem () in
  let den_ref = (ua741_reference ()).Reference.den in
  (* Scales of the recorded passes, to bench each interpolation separately. *)
  let pass_scale k =
    match List.nth_opt den_ref.Adaptive.reports (k - 1) with
    | Some p -> p.Adaptive.scale
    | None -> { Scaling.f = 1.; g = 1. }
  in
  let known_below i =
    let acc = ref [] in
    Array.iteri
      (fun j ok -> if ok && j < i then acc := (j, den_ref.Adaptive.coeffs.(j)) :: !acc)
      den_ref.Adaptive.established;
    !acc
  in
  let freqs = Grid.decades ~start:1. ~stop:1e8 ~per_decade:2 in
  let r_full = ua741_reference () in
  let with_sources = ua741_with_sources () in
  let ladder64 =
    let b = Sparse.create 64 in
    for i = 0 to 63 do
      Sparse.add b i i { Complex.re = 2e-3; im = 1e-3 };
      if i > 0 then Sparse.add b i (i - 1) { Complex.re = -1e-3; im = 0. };
      if i < 63 then Sparse.add b i (i + 1) { Complex.re = -1e-3; im = 0. }
    done;
    b
  in
  let ladder64_dense = Sparse.to_dense ladder64 in
  [
    Test.make ~name:"T1a/naive-ota"
      (stage (fun () -> ignore (Naive.run (Evaluator.of_nodal ota ~num:false))));
    Test.make ~name:"T1b/fixed-scale-ota"
      (stage (fun () ->
           ignore (Fixed_scale.run ~f:1e9 (Evaluator.of_nodal ota ~num:false))));
    Test.make ~name:"T2a/ua741-pass1-47pts"
      (stage (fun () ->
           ignore
             (Interp.run
                (Evaluator.of_nodal ua741 ~num:false)
                ~scale:(pass_scale 1) ~k:47)));
    Test.make ~name:"T2b/ua741-pass2-reduced"
      (stage (fun () ->
           ignore
             (Interp.run ~known:(known_below 28) ~base:27
                (Evaluator.of_nodal ua741 ~num:false)
                ~scale:(pass_scale 2) ~k:20)));
    Test.make ~name:"T3/ua741-pass3-reduced"
      (stage (fun () ->
           ignore
             (Interp.run ~known:(known_below 46) ~base:0
                (Evaluator.of_nodal ua741 ~num:false)
                ~scale:(pass_scale 5) ~k:6)));
    Test.make ~name:"CPU/ua741-adaptive-reduced"
      (stage (fun () -> ignore (Adaptive.run (Evaluator.of_nodal ua741 ~num:false))));
    Test.make ~name:"CPU/ua741-adaptive-unreduced"
      (stage (fun () ->
           ignore
             (Adaptive.run
                ~config:{ Adaptive.default_config with Adaptive.reduce = false }
                (Evaluator.of_nodal ua741 ~num:false))));
    Test.make ~name:"X1/ua741-frequency-only"
      (stage (fun () ->
           ignore
             (Adaptive.run
                ~config:
                  { Adaptive.default_config with Adaptive.scaling_policy = `Frequency_only }
                (Evaluator.of_nodal ua741 ~num:false))));
    Test.make ~name:"F2/bode-from-coefficients"
      (stage (fun () -> ignore (Reference.bode r_full freqs)));
    Test.make ~name:"F2/bode-electrical-simulator"
      (stage (fun () -> ignore (Ac.bode with_sources ~out_p:Ua741.output freqs)));
    Test.make ~name:"X2/sparse-lu-64"
      (stage (fun () -> ignore (Sparse.det (Sparse.factor ladder64))));
    Test.make ~name:"X2/dense-lu-64"
      (stage (fun () -> ignore (Dense.det (Dense.factor ladder64_dense))));
    (* Downstream analyses (not paper artefacts; perf reference points). *)
    Test.make ~name:"extra/ua741-pole-extraction"
      (stage (fun () -> ignore (Symref_core.Poles.analyse r_full)));
    Test.make ~name:"extra/ua741-noise-point"
      (stage (fun () ->
           ignore
             (Symref_mna.Noise.at Ua741.circuit
                ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
                ~output:(Nodal.Out_node Ua741.output) ~freq_hz:1e3)));
    Test.make ~name:"extra/tree-terms-ladder6"
      (stage
         (let c = Ladder.circuit 6 in
          fun () ->
            ignore
              (Seq.length
                 (Symref_symbolic.Tree_terms.terms c
                    ~input:(Nodal.Vsrc_element "vin")))));
    Test.make ~name:"extra/transient-biquad-2000steps"
      (stage
         (let c =
            Symref_circuit.Biquad.cascade
              [ { Symref_circuit.Biquad.f0_hz = 1e6; q = 1.3; gm = 40e-6 } ]
          in
          fun () ->
            ignore
              (Symref_mna.Transient.simulate c ~input:(Nodal.Vsrc_element "vin")
                 ~output:(Nodal.Out_node "out")
                 ~waveform:(Symref_mna.Transient.step ())
                 ~t_stop:3e-6 ~steps:2000)));
  ]

let run_timing () =
  section "TIMING" "Bechamel benches (OLS on the monotonic clock)";
  let tests = Test.make_grouped ~name:"symref" (bench_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        let ns = match Analyze.OLS.estimates v with Some [ x ] -> x | _ -> Float.nan in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "%-45s  %s\n" "bench" "time per run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-45s  %s\n" name pretty)
    rows

let run_tables () =
  t1a ();
  t1b ();
  let r = t2_t3 () in
  f2 r;
  cpu ();
  x1 ();
  x2 ()

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "tables" -> run_tables ()
  | "timing" -> run_timing ()
  | "json" -> run_json ~smoke:false
  | "smoke" -> run_json ~smoke:true
  | "serve-smoke" -> print_string (run_serve ~smoke:true)
  | "simplify-smoke" -> print_string (run_simplify ~smoke:true)
  | "all" ->
      run_tables ();
      run_timing ()
  | "serve-load" -> print_string (run_serve_load ~smoke:false)
  | "serve-load-smoke" -> print_string (run_serve_load ~smoke:true)
  | "fleet-chaos" -> print_string (run_fleet_chaos ~smoke:false)
  | "fleet-chaos-smoke" -> print_string (run_fleet_chaos ~smoke:true)
  | "serve-load-client" ->
      let seed = int_of_string Sys.argv.(2) in
      let duration = float_of_string Sys.argv.(3) in
      let keys = int_of_string Sys.argv.(4) in
      let addrs =
        List.map Symref_serve.Transport.parse
          (String.split_on_char ',' Sys.argv.(5))
      in
      run_load_client ~seed ~duration ~keys ~addrs
  | "serve-worker" ->
      (* Fleet worker for the serve-load and fleet-chaos benches: bind
         (ephemeral TCP by default), announce the resolved address on
         stdout, then serve until a shutdown request.  Counters are live —
         the chaos bench reads worker-side shed counts back over Stats —
         and fault plans come from SYMREF_FAULT, so a supervisor restart
         re-arms the same deterministic plan in the fresh process. *)
      let spec =
        if Array.length Sys.argv > 2 then Sys.argv.(2) else "127.0.0.1:0"
      in
      let default = Symref_serve.Service.default_config in
      let capacity =
        if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3)
        else default.Symref_serve.Service.capacity
      in
      let queue =
        if Array.length Sys.argv > 4 then int_of_string Sys.argv.(4)
        else default.Symref_serve.Service.queue
      in
      Obs.enable ();
      Symref_fault.Inject.arm_from_env ();
      let daemon =
        Symref_serve.Daemon.create
          ~config:{ default with Symref_serve.Service.capacity; queue }
          ~listen:[ Symref_serve.Transport.parse spec ]
          ()
      in
      List.iter
        (fun a -> print_endline (Symref_serve.Transport.to_string a))
        (Symref_serve.Daemon.addresses daemon);
      flush stdout;
      Symref_serve.Daemon.serve daemon
  | m ->
      Printf.eprintf
        "unknown mode %s (want \
         tables|timing|all|json|smoke|serve-smoke|simplify-smoke|serve-load|fleet-chaos|serve-worker)\n"
        m;
      exit 1
