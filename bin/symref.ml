(* symref: numerical reference generation for symbolic analysis of analog
   circuits (Garcia-Vargas et al., DATE 1997).

   Subcommands: info, coeffs, bode, ac, sbg, poles, sensitivity, margins,
   noise, mc, tables. *)

module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Parser = Symref_spice.Parser
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Report = Symref_core.Report
module Evaluator = Symref_core.Evaluator
module Naive = Symref_core.Naive
module Fixed_scale = Symref_core.Fixed_scale
module Sbg = Symref_symbolic.Sbg
module Sym = Symref_symbolic.Sym
module Nested = Symref_symbolic.Nested
module Budget = Symref_simplify.Budget
module Pipeline = Symref_simplify.Pipeline
module Certificate = Symref_simplify.Certificate
module Grid = Symref_numeric.Grid
module Ef = Symref_numeric.Extfloat
module Metrics = Symref_obs.Metrics
module Trace = Symref_obs.Trace
module Snapshot = Symref_obs.Snapshot
module Json = Symref_obs.Json
module Serve = Symref_serve
module Inject = Symref_fault.Inject
open Cmdliner

(* --- shared arguments --- *)

let netlist_arg =
  let doc = "SPICE-subset netlist file (first line is the title)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST" ~doc)

let input_arg =
  let doc =
    "Input drive: the name of a grounded voltage source in the netlist \
     (e.g. $(b,v1)), or $(b,diff:P,M) for a differential +-1/2 V drive, or \
     $(b,node:P) for a unit drive at node P, or $(b,current:P) for a unit \
     current injection."
  in
  Arg.(value & opt string "v1" & info [ "i"; "input" ] ~docv:"INPUT" ~doc)

let output_arg =
  let doc = "Output: node name, or $(b,P,M) for a differential output." in
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)

let sigma_arg =
  let doc = "Significant digits for the validity criterion (eq. 12)." in
  Arg.(value & opt int 6 & info [ "sigma" ] ~docv:"DIGITS" ~doc)

let r_arg =
  let doc = "Band-placement tuning factor of eq. 14." in
  Arg.(value & opt float 1.0 & info [ "r" ] ~doc)

let no_reduce_arg =
  let doc = "Disable the problem reduction of eq. 17." in
  Arg.(value & flag & info [ "no-reduce" ] ~doc)

let no_conj_arg =
  let doc = "Disable the conjugate-symmetry optimisation (full-circle LU)." in
  Arg.(value & flag & info [ "no-conjugate-symmetry" ] ~doc)

let from_arg =
  Arg.(value & opt float 1. & info [ "from" ] ~docv:"HZ" ~doc:"Sweep start frequency.")

let to_arg =
  Arg.(value & opt float 1e8 & info [ "to" ] ~docv:"HZ" ~doc:"Sweep stop frequency.")

let per_decade_arg =
  Arg.(value & opt int 4 & info [ "per-decade" ] ~doc:"Sweep points per decade.")

(* The serve library owns the input/output spec syntax, so a CLI run and a
   daemon job interpret the same strings identically. *)
let parse_input = Symref_serve.Service.parse_input
let parse_output = Symref_serve.Service.parse_output

let load file = Parser.parse_file file

(* Reference generation and the other nodal analyses need the nodal class;
   inductors enter it exactly through the gyrator-C transformation. *)
let load_nodal file =
  let c = load file in
  let t = Symref_circuit.Transform.inductors_to_gyrators c in
  if t != c then
    Printf.eprintf "note: inductors replaced by gyrator-C equivalents\n";
  t

(* --- observability: --stats / --trace, shared by every subcommand --- *)

type obs = { stats : bool; trace : string option }

let obs_term =
  let stats =
    let doc =
      "Collect pipeline counters (LU factorisations, memo hits, adaptive \
       passes, ...) and print the table to stdout after the command."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let trace =
    let doc =
      "Record spans (adaptive passes, interpolation batches, factorisations) \
       and write Chrome trace_event JSON to $(docv); open it in Perfetto or \
       chrome://tracing."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  Term.(const (fun stats trace -> { stats; trace }) $ stats $ trace)

(* Run a subcommand body with observability armed, turning the pipeline's
   exceptions into one-line diagnostics (with the netlist file, and the line
   for parse errors) on stderr.  Counters/trace are flushed even when the
   body fails, so a crashing run still leaves its telemetry behind. *)
let wrap ?file obs f =
  if obs.stats then Metrics.enable ();
  (match obs.trace with Some path -> Trace.start ~file:path | None -> ());
  let flush_obs () =
    (match obs.trace with
    | Some path ->
        let n = Trace.event_count () in
        Trace.finish ();
        Printf.eprintf "trace: %d events written to %s\n" n path
    | None -> ());
    if obs.stats then print_string (Snapshot.to_table (Snapshot.capture ()))
  in
  let where = match file with Some f -> f ^ ": " | None -> "" in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "%s\n" m;
        flush_obs ();
        exit 1)
      fmt
  in
  (try f () with
  | Failure m | Invalid_argument m -> fail "error: %s%s" where m
  | Serve.Errors.Error e -> fail "error: %s%s" where (Serve.Errors.message e)
  | Inject.Injected m -> fail "error: %sinjected fault fired: %s" where m
  | Parser.Parse_error { line; message } -> (
      match file with
      | Some f -> fail "error: %s:%d: %s" f line message
      | None -> fail "error: line %d: %s" line message)
  | Nodal.Unsupported m -> fail "error: %sunsupported circuit: %s" where m
  | Pipeline.Symbolic_limit { dim; limit } ->
      fail
        "error: %spruned circuit dimension %d exceeds the symbolic limit %d \
         (lib/symbolic/sdet.ml: max_dimension); simplify needs a circuit \
         that prunes to dimension <= %d"
        where dim limit limit);
  flush_obs ()

(* --- info --- *)

let info_cmd =
  let run file obs =
    wrap ~file obs (fun () ->
        let c = load file in
        Format.printf "%a@." N.pp_summary c;
        Printf.printf "nodal class (reference generation supported): %b\n"
          (N.is_nodal_class c
          || List.for_all
               (fun (e : Symref_circuit.Element.t) ->
                 Symref_circuit.Element.is_nodal_class e
                 ||
                 match e.Symref_circuit.Element.kind with
                 | Symref_circuit.Element.Vsrc _ -> true
                 | _ -> false)
               (N.elements c));
        Printf.printf "connected: %b\n" (N.is_connected c);
        List.iter
          (fun e -> print_endline ("  " ^ Symref_circuit.Element.describe e))
          (N.elements c))
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print a netlist summary and its element list.")
    Term.(const run $ netlist_arg $ obs_term)

(* --- coeffs --- *)

let config_of sigma r no_reduce no_conj =
  {
    Adaptive.default_config with
    Adaptive.sigma;
    r;
    reduce = not no_reduce;
    conj_symmetry = not no_conj;
  }

let coeffs_cmd =
  let run file input output sigma r no_reduce no_conj obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let config = config_of sigma r no_reduce no_conj in
        let t = Reference.generate ~config c ~input ~output in
        print_string (Report.reference_summary t);
        print_endline "numerator coefficients:";
        Array.iteri
          (fun i v -> Printf.printf "  n%-3d %s\n" i (Ef.to_string v))
          t.Reference.num.Adaptive.coeffs;
        print_endline "denominator coefficients:";
        Array.iteri
          (fun i v -> Printf.printf "  d%-3d %s\n" i (Ef.to_string v))
          t.Reference.den.Adaptive.coeffs;
        Printf.printf "DC gain: %g\n" (Reference.dc_gain t))
  in
  Cmd.v
    (Cmd.info "coeffs"
       ~doc:
         "Generate numerical references (network-function coefficients) with \
          the adaptive scaling algorithm.")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ sigma_arg $ r_arg
      $ no_reduce_arg $ no_conj_arg $ obs_term)

(* --- doctor --- *)

let stall_to_string = function
  | Adaptive.No_stall -> "none"
  | Adaptive.Stalled_above i ->
      Printf.sprintf "stalled tilting up from coefficient %d" i
  | Adaptive.Stalled_below i ->
      Printf.sprintf "stalled tilting down from coefficient %d" i
  | Adaptive.Stalled_gap (l, r) ->
      Printf.sprintf "stalled filling the gap between coefficients %d and %d" l r
  | Adaptive.Peak_lost i ->
      Printf.sprintf "lost the established peak at coefficient %d (corrupted state)" i

let doctor_cmd =
  let tolerance_arg =
    let doc = "Relative-residual tolerance for the verification probes." in
    Arg.(value & opt float 1e-4 & info [ "tolerance" ] ~docv:"TOL" ~doc)
  in
  let run file input output sigma r no_reduce no_conj tolerance obs =
    (* The exit status is decided inside [wrap] but applied after it, so the
       --stats/--trace telemetry still flushes on an unhealthy verdict. *)
    let healthy = ref false in
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let config = config_of sigma r no_reduce no_conj in
        let t = Reference.generate ~config c ~input ~output in
        let h = Reference.health ~tolerance t in
        Printf.printf "health report for %s:\n" file;
        List.iter
          (fun (k, v) -> Printf.printf "  %-18s %s\n" k v)
          (Reference.health_to_strings h);
        let side name (r : Adaptive.result) =
          let d = r.Adaptive.diagnosis in
          if d.Adaptive.stalled <> Adaptive.No_stall then
            Printf.printf "  %s: %s\n" name (stall_to_string d.Adaptive.stalled);
          if d.Adaptive.dry_pass_total > 0 then
            Printf.printf "  %s: %d dry pass(es)\n" name d.Adaptive.dry_pass_total
        in
        side "numerator" t.Reference.num;
        side "denominator" t.Reference.den;
        healthy := h.Reference.healthy);
    if not !healthy then exit 1
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Generate references and print a health report: convergence of both \
          adaptive runs, an independent residual verification of every \
          established coefficient, and the singular-point recovery counters. \
          Exits non-zero when any check fails.")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ sigma_arg $ r_arg
      $ no_reduce_arg $ no_conj_arg $ tolerance_arg $ obs_term)

(* --- bode --- *)

let bode_cmd =
  let plot_arg =
    Arg.(value & flag & info [ "plot" ] ~doc:"Render ASCII Bode plots (Fig. 2 style).")
  in
  let run file input output from_ to_ per_decade plot obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let t = Reference.generate c ~input ~output in
        let freqs = Grid.decades ~start:from_ ~stop:to_ ~per_decade in
        let out_p, out_m =
          match output with
          | Nodal.Out_node p -> (p, None)
          | Nodal.Out_diff (p, m) -> (p, Some m)
        in
        let sim = Ac.bode c ~out_p ?out_m freqs in
        let interp = Reference.bode t freqs in
        if plot then
          print_string (Symref_core.Ascii_plot.bode_figure ~interpolated:interp ~simulator:sim)
        else print_string (Report.bode_table ~interpolated:interp ~simulator:sim);
        let dmag, dph = Reference.bode_vs_simulator t sim in
        Printf.printf "max deltas: %.4g dB, %.4g deg\n" dmag dph)
  in
  Cmd.v
    (Cmd.info "bode"
       ~doc:
         "Bode diagram from the interpolated coefficients, compared against \
          the direct AC simulation (Fig. 2).  The netlist's own sources drive \
          the AC side; --input drives the reference side.")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ from_arg $ to_arg
      $ per_decade_arg $ plot_arg $ obs_term)

(* --- ac --- *)

let ac_cmd =
  let run file output from_ to_ per_decade obs =
    wrap ~file obs (fun () ->
        let c = load file in
        let out_p, out_m =
          match parse_output output with
          | Nodal.Out_node p -> (p, None)
          | Nodal.Out_diff (p, m) -> (p, Some m)
        in
        let freqs = Grid.decades ~start:from_ ~stop:to_ ~per_decade in
        Array.iter
          (fun (p : Ac.bode_point) ->
            Printf.printf "%12.5g  %10.4f dB  %10.3f deg\n" p.Ac.freq_hz p.Ac.mag_db
              p.Ac.phase_deg)
          (Ac.bode c ~out_p ?out_m freqs))
  in
  Cmd.v
    (Cmd.info "ac"
       ~doc:"Small-signal AC sweep (full MNA: supports all element types).")
    Term.(
      const run $ netlist_arg $ output_arg $ from_arg $ to_arg $ per_decade_arg
      $ obs_term)

(* --- sbg --- *)

let sbg_cmd =
  let tol_db =
    Arg.(value & opt float 0.5 & info [ "tol-db" ] ~doc:"Magnitude tolerance (dB).")
  in
  let tol_deg =
    Arg.(value & opt float 5. & info [ "tol-deg" ] ~doc:"Phase tolerance (degrees).")
  in
  let shorts_arg =
    Arg.(
      value & flag
      & info [ "shorts" ]
          ~doc:
            "Also consider shorting resistive elements (series parasitics), \
             not just opening them.")
  in
  let run file input output from_ to_ per_decade tdb tdeg shorts obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let freqs = Grid.decades ~start:from_ ~stop:to_ ~per_decade in
        let config =
          {
            Sbg.default_config with
            Sbg.tolerance_db = tdb;
            tolerance_deg = tdeg;
            shortable =
              (if shorts then Sbg.default_shortable else fun _ -> false);
          }
        in
        let o = Sbg.prune ~config c ~input ~output ~freqs in
        Printf.printf
          "removed %d of %d candidate moves; residual %.3f dB / %.2f deg\n"
          (List.length o.Sbg.removals) o.Sbg.candidates o.Sbg.error_db
          o.Sbg.error_deg;
        List.iter
          (fun (r : Sbg.removal) ->
            Printf.printf
              "  - %-12s %-7s +%.4f dB / +%.4f deg  (cumulative %.4f dB / \
               %.4f deg)\n"
              r.Sbg.element
              (match r.Sbg.action with
              | Sbg.Opened -> "opened"
              | Sbg.Shorted -> "shorted")
              r.Sbg.delta_db r.Sbg.delta_deg r.Sbg.error_db r.Sbg.error_deg)
          o.Sbg.removals;
        print_string (Symref_spice.Writer.to_string o.Sbg.pruned))
  in
  Cmd.v
    (Cmd.info "sbg"
       ~doc:
         "Simplification Before Generation: prune negligible elements and \
          print the reduced netlist.")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ from_arg $ to_arg
      $ per_decade_arg $ tol_db $ tol_deg $ shorts_arg $ obs_term)

(* --- simplify --- *)

let budget_db_arg =
  let doc = "End-to-end worst-case magnitude error budget (dB)." in
  Arg.(value & opt float 0.5 & info [ "budget-db" ] ~docv:"DB" ~doc)

let budget_deg_arg =
  let doc = "End-to-end worst-case phase error budget (degrees)." in
  Arg.(value & opt float 2. & info [ "budget-deg" ] ~docv:"DEG" ~doc)

let simplify_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the serve payload JSON (identical to a daemon $(b,simplify) \
             job reply body) instead of the text report.")
  in
  let max_attempts_arg =
    Arg.(
      value & opt int Pipeline.default_config.Pipeline.max_attempts
      & info [ "max-attempts" ]
          ~doc:"SDG/SAG tighten-and-retry rounds before the exact fallback.")
  in
  let no_shorts_arg =
    Arg.(
      value & flag
      & info [ "no-shorts" ]
          ~doc:"Forbid SBG from shorting series resistive elements.")
  in
  let input_auto_arg =
    let doc =
      "Input drive (CLI syntax, see $(b,coeffs)); $(b,auto) detects the \
       netlist's own voltage sources."
    in
    Arg.(value & opt string "auto" & info [ "i"; "input" ] ~docv:"INPUT" ~doc)
  in
  let output_auto_arg =
    let doc = "Output node (or $(b,P,M)); omitted = auto-detect." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)
  in
  let run file input output budget_db budget_deg from_ to_ per_decade sigma r
      max_attempts no_shorts json obs =
    wrap ~file obs (fun () ->
        if json then begin
          (* One in-process service run, so the CLI JSON is byte-compatible
             with a daemon reply body for the same job. *)
          let config =
            { Serve.Service.default_config with Serve.Service.cache_bytes = 0 }
          in
          let service = Serve.Service.create ~config () in
          let job =
            {
              Serve.Protocol.default_job with
              Serve.Protocol.netlist = `Path file;
              id = Some file;
              analysis =
                Serve.Protocol.Simplify
                  { budget_db; budget_deg; from_hz = from_; to_hz = to_;
                    per_decade };
              input;
              output;
              sigma;
              r;
            }
          in
          let reply = Serve.Service.run_job service job in
          Serve.Service.shutdown service;
          print_endline (Json.to_string (Serve.Protocol.reply_to_json reply));
          if reply.Serve.Protocol.status <> Serve.Protocol.Ok then exit 1
        end
        else begin
          let c = load_nodal file in
          let c, input, output, in_desc, out_desc =
            Serve.Service.resolve_io c ~input ~output
          in
          let budget = Budget.v ~db:budget_db ~deg:budget_deg () in
          let freqs = Grid.decades ~start:from_ ~stop:to_ ~per_decade in
          let config =
            { Pipeline.sigma; r; max_attempts; shorts = not no_shorts }
          in
          let res = Pipeline.run ~config c ~input ~output ~budget ~freqs in
          Printf.printf "simplify %s  (input %s, output %s)\n" file in_desc
            out_desc;
          Printf.printf "  elements: %d -> %d   nodal dimension: %d\n"
            res.Pipeline.elements_before res.Pipeline.elements_after
            res.Pipeline.dim;
          let exact =
            res.Pipeline.exact_num_terms + res.Pipeline.exact_den_terms
          and kept = res.Pipeline.num_terms + res.Pipeline.den_terms in
          Printf.printf
            "  terms:    num %d -> %d, den %d -> %d   (%.1fx compression)\n"
            res.Pipeline.exact_num_terms res.Pipeline.num_terms
            res.Pipeline.exact_den_terms res.Pipeline.den_terms
            (float_of_int exact /. float_of_int (Int.max 1 kept));
          Printf.printf "  attempts: %d%s\n" res.Pipeline.attempts
            (if res.Pipeline.fallback then
               "  (fell back to the exact pruned expression)"
             else "");
          if res.Pipeline.sbg.Sbg.removals <> [] then begin
            print_endline "pruned by SBG:";
            List.iter
              (fun (rm : Sbg.removal) ->
                Printf.printf "  - %-12s %-7s (cumulative %.4f dB / %.4f deg)\n"
                  rm.Sbg.element
                  (match rm.Sbg.action with
                  | Sbg.Opened -> "opened"
                  | Sbg.Shorted -> "shorted")
                  rm.Sbg.error_db rm.Sbg.error_deg)
              res.Pipeline.sbg.Sbg.removals
          end;
          print_endline "certificate:";
          List.iter
            (fun (k, v) -> Printf.printf "  %-18s %s\n" k v)
            (Certificate.to_strings res.Pipeline.certificate);
          print_endline "simplified H(s):";
          Printf.printf "  num = %s\n"
            (Nested.to_string (Nested.nest res.Pipeline.num));
          Printf.printf "  den = %s\n"
            (Nested.to_string (Nested.nest res.Pipeline.den));
          if not res.Pipeline.certificate.Certificate.within_budget then
            exit 1
        end)
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:
         "Reference-driven symbolic simplification: prune the circuit (SBG), \
          generate the exact symbolic H(s), truncate coefficients (SDG) and \
          drop function-level terms (SAG) under the error budget, then \
          re-verify the simplified H(s) against the numerical reference over \
          the full grid and print a machine-checkable error certificate.")
    Term.(
      const run $ netlist_arg $ input_auto_arg $ output_auto_arg
      $ budget_db_arg $ budget_deg_arg $ from_arg $ to_arg $ per_decade_arg
      $ sigma_arg $ r_arg $ max_attempts_arg $ no_shorts_arg $ json_arg
      $ obs_term)

(* --- poles --- *)

let poles_cmd =
  let run file input output obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let t = Reference.generate c ~input ~output in
        let a = Symref_core.Poles.analyse t in
        Format.printf "%a@?" Symref_core.Poles.pp a)
  in
  Cmd.v
    (Cmd.info "poles"
       ~doc:
         "Extract poles and zeros from the generated references (Aberth \
          iteration on the extended-range coefficients).")
    Term.(const run $ netlist_arg $ input_arg $ output_arg $ obs_term)

(* --- sensitivity --- *)

let sensitivity_cmd =
  let freq_arg =
    Arg.(
      value & opt float 1e3
      & info [ "freq" ] ~docv:"HZ" ~doc:"Analysis frequency for the detailed table.")
  in
  let top_arg =
    Arg.(value & opt int 15 & info [ "top" ] ~doc:"Rows to print.")
  in
  let run file input output freq top from_ to_ per_decade obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let entries =
          Symref_mna.Sensitivity.adjoint_at c ~input ~output ~freq_hz:freq
        in
        Printf.printf
          "normalised sensitivities at %g Hz (adjoint method, top %d):\n" freq top;
        Printf.printf "%-16s %-12s %-10s %-14s %-14s\n" "element" "value" "|S|"
          "dB per +1%" "deg per +1%";
        List.iteri
          (fun i (e : Symref_mna.Sensitivity.entry) ->
            if i < top then
              Printf.printf "%-16s %-12s %-10.4f %-14.5f %-14.5f\n"
                e.Symref_mna.Sensitivity.element
                (Symref_spice.Units.format_si e.Symref_mna.Sensitivity.value)
                (Complex.norm e.Symref_mna.Sensitivity.s)
                e.Symref_mna.Sensitivity.mag_db_per_percent
                e.Symref_mna.Sensitivity.phase_deg_per_percent)
          entries;
        let freqs = Grid.decades ~start:from_ ~stop:to_ ~per_decade in
        let ranking =
          Symref_mna.Sensitivity.worst_case c ~input ~output ~freqs
        in
        Printf.printf "\nworst-case |S| over %g..%g Hz (top %d):\n" from_ to_ top;
        List.iteri
          (fun i (name, v) ->
            if i < top then Printf.printf "%-16s %.4f\n" name v)
          ranking)
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Element sensitivities of the transfer function (perturbation).")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ freq_arg $ top_arg
      $ from_arg $ to_arg $ per_decade_arg $ obs_term)

(* --- margins --- *)

let margins_cmd =
  let run file input output obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let t = Reference.generate c ~input ~output in
        Format.printf "%a@?" Symref_core.Margins.pp (Symref_core.Margins.analyse t))
  in
  Cmd.v
    (Cmd.info "margins"
       ~doc:"Stability margins (unity-gain frequency, phase/gain margin, GBW).")
    Term.(const run $ netlist_arg $ input_arg $ output_arg $ obs_term)

(* --- noise --- *)

let noise_cmd =
  let freq_arg =
    Arg.(value & opt float 1e3 & info [ "freq" ] ~docv:"HZ" ~doc:"Analysis frequency.")
  in
  let top_arg = Arg.(value & opt int 10 & info [ "top" ] ~doc:"Contributors to list.") in
  let run file input output freq top obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let p = Symref_mna.Noise.at c ~input ~output ~freq_hz:freq in
        Printf.printf "at %g Hz: output %.4g V^2/Hz (%.4g V/rtHz), input-referred %.4g V/rtHz\n"
          freq p.Symref_mna.Noise.output_density
          (Float.sqrt p.Symref_mna.Noise.output_density)
          (Float.sqrt p.Symref_mna.Noise.input_density);
        Printf.printf "top contributors:\n";
        List.iteri
          (fun i (e : Symref_mna.Noise.contribution) ->
            if i < top then
              Printf.printf "  %-16s %.4g V^2/Hz (%.1f%%)\n" e.Symref_mna.Noise.element
                e.Symref_mna.Noise.output_density
                (100. *. e.Symref_mna.Noise.output_density
                /. p.Symref_mna.Noise.output_density))
          p.Symref_mna.Noise.contributions)
  in
  Cmd.v
    (Cmd.info "noise" ~doc:"Output and input-referred noise with contributor ranking.")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ freq_arg $ top_arg
      $ obs_term)

(* --- monte carlo --- *)

let mc_cmd =
  let samples_arg =
    Arg.(value & opt int 100 & info [ "samples" ] ~doc:"Monte-Carlo samples.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let run file input output from_ to_ per_decade samples seed obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let freqs = Grid.decades ~start:from_ ~stop:to_ ~per_decade in
        let config =
          { Symref_mna.Monte_carlo.default_config with
            Symref_mna.Monte_carlo.samples;
            seed }
        in
        let stats =
          Symref_mna.Monte_carlo.gain_spread ~config c ~input ~output ~freqs
        in
        Printf.printf "%-12s  %-10s %-10s %-8s %-10s %-10s\n" "freq (Hz)" "nominal"
          "mean" "std" "min" "max";
        Array.iter
          (fun (s : Symref_mna.Monte_carlo.stat) ->
            Printf.printf "%-12.4g  %-10.3f %-10.3f %-8.3f %-10.3f %-10.3f\n"
              s.Symref_mna.Monte_carlo.freq_hz s.Symref_mna.Monte_carlo.nominal_db
              s.Symref_mna.Monte_carlo.mean_db s.Symref_mna.Monte_carlo.std_db
              s.Symref_mna.Monte_carlo.min_db s.Symref_mna.Monte_carlo.max_db)
          stats)
  in
  Cmd.v
    (Cmd.info "mc" ~doc:"Monte-Carlo gain spread under element tolerances (dB).")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ from_arg $ to_arg
      $ per_decade_arg $ samples_arg $ seed_arg $ obs_term)

(* --- transient --- *)

let transient_cmd =
  let tstop_arg =
    Arg.(value & opt float 1e-6 & info [ "t-stop" ] ~docv:"S" ~doc:"Simulation length.")
  in
  let steps_arg =
    Arg.(value & opt int 2000 & info [ "steps" ] ~doc:"Time steps.")
  in
  let sine_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "sine" ] ~docv:"HZ" ~doc:"Sine input at this frequency (default: unit step).")
  in
  let plot_arg = Arg.(value & flag & info [ "plot" ] ~doc:"ASCII waveform plot.") in
  let run file input output tstop steps sine plot obs =
    wrap ~file obs (fun () ->
        let c = load_nodal file in
        let input = parse_input c input and output = parse_output output in
        let waveform =
          match sine with
          | None -> Symref_mna.Transient.step ()
          | Some f -> Symref_mna.Transient.sine ~freq_hz:f ()
        in
        let r =
          Symref_mna.Transient.simulate c ~input ~output ~waveform ~t_stop:tstop
            ~steps
        in
        if plot then begin
          (* Time axis is linear; reuse the log-x canvas by shifting time. *)
          let n = Array.length r.Symref_mna.Transient.times in
          let xs = Array.init n (fun i -> float_of_int (i + 1)) in
          print_string
            (Symref_core.Ascii_plot.render ~y_label:"output (V) vs step number"
               [ { Symref_core.Ascii_plot.label = "v(out)"; xs;
                   ys = r.Symref_mna.Transient.output } ])
        end
        else
          Array.iteri
            (fun i t ->
              if i mod (Int.max 1 (steps / 40)) = 0 then
                Printf.printf "%12.5g  %14.6g\n" t r.Symref_mna.Transient.output.(i))
            r.Symref_mna.Transient.times)
  in
  Cmd.v
    (Cmd.info "transient"
       ~doc:"Time-domain response (trapezoidal integration) to a step or sine.")
    Term.(
      const run $ netlist_arg $ input_arg $ output_arg $ tstop_arg $ steps_arg
      $ sine_arg $ plot_arg $ obs_term)

(* --- dot --- *)

let dot_cmd =
  let run file obs =
    wrap ~file obs (fun () -> print_string (Symref_spice.Dot.to_dot (load file)))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the netlist topology as Graphviz DOT.")
    Term.(const run $ netlist_arg $ obs_term)

(* --- tables: the built-in paper workloads --- *)

let tables_cmd =
  let run obs =
    wrap obs (fun () ->
        let module Ota = Symref_circuit.Ota in
        let problem =
          Nodal.make Ota.circuit
            ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
            ~output:(Nodal.Out_node Ota.output)
        in
        let num = Naive.run (Evaluator.of_nodal problem ~num:true) in
        let den = Naive.run (Evaluator.of_nodal problem ~num:false) in
        print_string (Report.naive_table ~title:"[T1a] OTA, unit circle:" ~num ~den ());
        print_newline ();
        print_string
          (Report.fixed_scale_table ~title:"[T1b] OTA denominator, f = 1e9:"
             (Fixed_scale.run ~f:1e9 (Evaluator.of_nodal problem ~num:false)));
        print_newline ();
        let module Ua741 = Symref_circuit.Ua741 in
        let t =
          Reference.generate Ua741.circuit
            ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
            ~output:(Nodal.Out_node Ua741.output)
        in
        print_string
          (Report.adaptive_summary ~title:"[T2-T3] uA741 denominator passes:"
             t.Reference.den))
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce the paper's tables on the built-in circuits.")
    Term.(const run $ obs_term)

(* --- serve / submit / batch: the persistent-service front end --- *)

let socket_arg =
  let doc =
    "Daemon endpoint: a Unix domain socket path, or $(b,HOST:PORT) for TCP."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"ADDR" ~doc)

let tcp_extra_arg =
  let doc =
    "Additionally listen on this TCP endpoint ($(b,HOST:PORT)); the daemon \
     then serves both transports at once."
  in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let workers_arg =
  let doc = "Worker domains for job execution (0 = cores - 1)." in
  Arg.(value & opt int 0 & info [ "workers" ] ~doc)

let capacity_arg =
  let doc = "Jobs running at once; the excess waits in the admission queue." in
  Arg.(value & opt int 64 & info [ "capacity" ] ~doc)

let queue_arg =
  let doc =
    "Admission-queue bound behind $(b,--capacity); submissions above it are \
     shed with a typed overloaded reply carrying a retry-after hint \
     (negative = same as capacity)."
  in
  Arg.(value & opt int (-1) & info [ "queue" ] ~doc)

let cache_mb_arg =
  let doc = "Result-cache budget in MiB (0 disables caching)." in
  Arg.(value & opt int 64 & info [ "cache-mb" ] ~doc)

let timeout_ms_arg =
  let doc = "Per-job wall-clock budget in milliseconds (0 = none)." in
  Arg.(value & opt int 0 & info [ "timeout-ms" ] ~doc)

let disk_cache_arg =
  let doc =
    "Persistent result-cache directory, shared across restarts and across \
     the fleet's daemon processes (omit for in-memory only)."
  in
  Arg.(value & opt (some string) None & info [ "disk-cache" ] ~docv:"DIR" ~doc)

let backlog_arg =
  let doc = "listen(2) backlog of the daemon's sockets." in
  Arg.(value & opt int 16 & info [ "backlog" ] ~doc)

let socket_mode_arg =
  let doc =
    "Permission bits (octal, e.g. $(b,600)) applied to the Unix listening \
     socket; omitted = the process umask decides."
  in
  Arg.(value & opt (some string) None & info [ "socket-mode" ] ~docv:"OCTAL" ~doc)

let parse_socket_mode = function
  | None -> None
  | Some s -> (
      match int_of_string_opt ("0o" ^ s) with
      | Some m when m >= 0 && m <= 0o777 -> Some m
      | _ ->
          Printf.eprintf "error: --socket-mode: %s is not an octal mode\n" s;
          exit 2)

let service_config ?disk_cache_dir ?(backlog = 16) ?socket_mode ?(queue = -1)
    workers capacity cache_mb timeout_ms =
  {
    Serve.Service.workers;
    capacity;
    queue = (if queue < 0 then capacity else queue);
    cache_bytes = cache_mb * 1024 * 1024;
    default_timeout_ms = (if timeout_ms > 0 then Some timeout_ms else None);
    disk_cache_dir;
    backlog;
    socket_mode;
  }

let analysis_arg =
  let doc =
    "Analysis to run: $(b,reference), $(b,adaptive), $(b,bode), $(b,poles) \
     or $(b,simplify)."
  in
  Arg.(
    value
    & opt (enum [ ("reference", `Reference); ("adaptive", `Adaptive);
                  ("bode", `Bode); ("poles", `Poles);
                  ("simplify", `Simplify) ]) `Reference
    & info [ "analysis" ] ~docv:"KIND" ~doc)

let job_term =
  let auto_input_arg =
    let doc =
      "Input drive (CLI syntax, see $(b,coeffs)); $(b,auto) detects the \
       netlist's own voltage sources."
    in
    Arg.(value & opt string "auto" & info [ "i"; "input" ] ~docv:"INPUT" ~doc)
  in
  let auto_output_arg =
    let doc = "Output node (or $(b,P,M)); omitted = auto-detect." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)
  in
  let make analysis input output sigma r timeout_ms from_ to_ per_decade
      budget_db budget_deg =
    let analysis =
      match analysis with
      | `Reference -> Serve.Protocol.Reference
      | `Adaptive -> Serve.Protocol.Adaptive
      | `Poles -> Serve.Protocol.Poles
      | `Bode -> Serve.Protocol.Bode { from_hz = from_; to_hz = to_; per_decade }
      | `Simplify ->
          Serve.Protocol.Simplify
            { budget_db; budget_deg; from_hz = from_; to_hz = to_; per_decade }
    in
    {
      Serve.Protocol.default_job with
      Serve.Protocol.analysis;
      input;
      output;
      sigma;
      r;
      timeout_ms = (if timeout_ms > 0 then Some timeout_ms else None);
    }
  in
  Term.(
    const make $ analysis_arg $ auto_input_arg $ auto_output_arg $ sigma_arg
    $ r_arg $ timeout_ms_arg $ from_arg $ to_arg $ per_decade_arg
    $ budget_db_arg $ budget_deg_arg)

let serve_cmd =
  let run socket tcp_extra workers capacity queue cache_mb timeout_ms disk_cache
      backlog socket_mode obs =
    wrap obs (fun () ->
        let config =
          service_config ?disk_cache_dir:disk_cache ~backlog
            ?socket_mode:(parse_socket_mode socket_mode) ~queue workers capacity
            cache_mb timeout_ms
        in
        let listen =
          Serve.Transport.parse socket
          :: (match tcp_extra with
             | Some spec -> [ Serve.Transport.parse spec ]
             | None -> [])
        in
        Printf.eprintf "symref %s serving on %s\n%!" Serve.Version.version
          (String.concat ", " (List.map Serve.Transport.to_string listen));
        Serve.Daemon.run ~config ~listen ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the reference-generation daemon: newline-delimited JSON jobs \
          over a Unix domain socket or TCP (or both at once with $(b,--tcp)), \
          scheduled on the worker pool and answered from a content-addressed \
          result cache — optionally persisted on disk with $(b,--disk-cache). \
          Runs in the foreground until a shutdown request arrives.")
    Term.(
      const run $ socket_arg $ tcp_extra_arg $ workers_arg $ capacity_arg
      $ queue_arg $ cache_mb_arg $ timeout_ms_arg $ disk_cache_arg
      $ backlog_arg $ socket_mode_arg $ obs_term)

let submit_cmd =
  let netlist_opt_arg =
    let doc = "Netlist file to submit (omit for --op stats/shutdown/hello)." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"NETLIST" ~doc)
  in
  let op_arg =
    let doc =
      "What to send: $(b,submit) a job (the default), query daemon \
       $(b,stats), $(b,hello), or request a graceful $(b,shutdown)."
    in
    Arg.(
      value
      & opt (enum [ ("submit", `Submit); ("stats", `Stats);
                    ("hello", `Hello); ("shutdown", `Shutdown) ]) `Submit
      & info [ "op" ] ~docv:"OP" ~doc)
  in
  let run socket op netlist job =
    let request =
      match op with
      | `Stats -> Serve.Protocol.Stats
      | `Hello -> Serve.Protocol.Hello
      | `Shutdown -> Serve.Protocol.Shutdown
      | `Submit -> (
          match netlist with
          | None ->
              Printf.eprintf "error: submit needs a NETLIST argument\n";
              exit 2
          | Some file ->
              let text =
                In_channel.with_open_bin file In_channel.input_all
              in
              Serve.Protocol.Submit
                { job with Serve.Protocol.netlist = `Text text; id = Some file })
    in
    let reply =
      (* Busy backpressure and transient connection failures retry with
         capped exponential backoff; a final failure is a one-line error. *)
      try Serve.Client.retry_request ~addr:(Serve.Transport.parse socket) request
      with
      | Unix.Unix_error (e, _, _) ->
          Printf.eprintf "error: %s: %s\n" socket (Unix.error_message e);
          exit 1
      | Serve.Errors.Error e ->
          Printf.eprintf "error: %s\n" (Serve.Errors.message e);
          exit 1
      | Failure m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
    in
    print_endline (Json.to_string (Serve.Protocol.reply_to_json reply));
    if reply.Serve.Protocol.status <> Serve.Protocol.Ok then exit 1
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Send one request to a running daemon and print the reply line: a \
          netlist job, a stats query, or a graceful shutdown.")
    Term.(const run $ socket_arg $ op_arg $ netlist_opt_arg $ job_term)

let batch_cmd =
  let dir_arg =
    let doc = "Directory of netlists (.sp/.cir/.net/.spi/.ckt) to sweep." in
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)
  in
  let run dir workers capacity cache_mb timeout_ms job obs =
    wrap obs (fun () ->
        let config = service_config workers capacity cache_mb timeout_ms in
        let report = Serve.Batch.run ~config ~template:job dir in
        print_endline (Json.to_string (Serve.Batch.report_to_json report));
        if report.Serve.Batch.failed > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Sweep every netlist in a directory through the job scheduler \
          in-process (no socket) and print an aggregate JSON report.  Exits \
          non-zero when any file fails; individual failures are reported \
          inside the document and never stop the sweep.")
    Term.(
      const run $ dir_arg $ workers_arg $ capacity_arg $ cache_mb_arg
      $ timeout_ms_arg $ job_term $ obs_term)

let listen_arg =
  let doc = "Front endpoint to listen on (socket path or $(b,HOST:PORT))." in
  Arg.(required & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)

let replicas_arg =
  let doc = "Virtual nodes per worker on the consistent-hash ring." in
  Arg.(value & opt int 64 & info [ "replicas" ] ~doc)

let health_arg =
  let doc = "Milliseconds between Hello health probes of the workers." in
  Arg.(value & opt int 1000 & info [ "health-interval-ms" ] ~doc)

let hedge_max_arg =
  let doc =
    "Ceiling on the hedged-request delay in milliseconds: when the owning \
     worker has not answered after the p99 of recent latencies (clamped to \
     this), the job is re-issued to the next ring worker and the first \
     reply wins.  $(b,0) disables hedging."
  in
  Arg.(value & opt int 500 & info [ "hedge-max-ms" ] ~docv:"MS" ~doc)

let hedge_of_ms ms =
  if ms <= 0 then None
  else
    Some
      {
        Serve.Router.default_hedge with
        Serve.Router.after_ms_max = float_of_int ms;
        after_ms_min =
          Float.min Serve.Router.default_hedge.Serve.Router.after_ms_min
            (float_of_int ms);
      }

let router_cmd =
  let worker_args =
    let doc =
      "A worker daemon's endpoint (repeatable; socket path or \
       $(b,HOST:PORT))."
    in
    Arg.(non_empty & opt_all string [] & info [ "worker" ] ~docv:"ADDR" ~doc)
  in
  let run listen workers replicas health_ms hedge_max_ms backlog obs =
    wrap obs (fun () ->
        let router =
          Serve.Router.create ~replicas ~hedge:(hedge_of_ms hedge_max_ms)
            (List.map Serve.Transport.parse workers)
        in
        let server =
          Serve.Router.create_server ~backlog ~health_interval_ms:health_ms
            ~listen:[ Serve.Transport.parse listen ]
            router
        in
        Printf.eprintf "symref %s routing %d workers on %s\n%!"
          Serve.Version.version (List.length workers)
          (String.concat ", "
             (List.map Serve.Transport.to_string
                (Serve.Router.server_addresses server)));
        Serve.Router.serve server)
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Run the fleet front end: consistent-hash jobs across the \
          $(b,--worker) daemons (same NDJSON protocol as $(b,serve)), with \
          per-worker circuit breakers fed by Hello health probes, hedged \
          requests against the tail, and automatic failover to the next \
          worker on the ring.  Stats replies aggregate the whole fleet.  \
          Runs in the foreground until a shutdown request arrives.")
    Term.(
      const run $ listen_arg $ worker_args $ replicas_arg $ health_arg
      $ hedge_max_arg $ backlog_arg $ obs_term)

let fleet_cmd =
  let size_arg =
    let doc = "Worker daemons to supervise." in
    Arg.(value & opt int 2 & info [ "size" ] ~docv:"N" ~doc)
  in
  let dir_arg =
    let doc =
      "Fleet state directory: worker Unix sockets live at \
       $(b,DIR/worker-<i>.sock) (stable across restarts, so the hash ring \
       never moves) and, unless $(b,--disk-cache) overrides it, the shared \
       persistent result cache at $(b,DIR/cache)."
    in
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let grace_arg =
    let doc =
      "Seconds between shutdown-escalation rungs (protocol shutdown, then \
       SIGTERM, then SIGKILL)."
    in
    Arg.(value & opt float 2.0 & info [ "grace-s" ] ~doc)
  in
  let crash_budget_arg =
    let doc =
      "Crashes a worker slot may burn within 30 s before the supervisor \
       gives it up (the rest of the fleet keeps serving)."
    in
    Arg.(
      value
      & opt int Serve.Supervisor.default_config.Serve.Supervisor.crash_budget
      & info [ "crash-budget" ] ~doc)
  in
  let run listen size dir workers capacity queue cache_mb timeout_ms disk_cache
      replicas health_ms hedge_max_ms backlog grace_s crash_budget obs =
    wrap obs (fun () ->
        if size < 1 then begin
          Printf.eprintf "error: --size must be >= 1\n";
          exit 2
        end;
        let rec mkdir_p d =
          if not (Sys.file_exists d) then begin
            let parent = Filename.dirname d in
            if parent <> d then mkdir_p parent;
            try Unix.mkdir d 0o755
            with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
          end
        in
        mkdir_p dir;
        let sleepf s =
          try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        in
        let sock i = Filename.concat dir (Printf.sprintf "worker-%d.sock" i) in
        let cache_dir =
          match disk_cache with
          | Some d -> d
          | None -> Filename.concat dir "cache"
        in
        (* Each slot execs a plain [symref serve] on its fixed socket — a
           restarted worker rebinds the same address, so the ring (and every
           client's routing) is untouched by the crash. *)
        let spawn ~slot =
          (* Glued --opt=value spelling: a bare negative value would read
             as an unknown option to the worker's own parser. *)
          let args =
            [|
              Sys.executable_name; "serve";
              "--socket=" ^ sock slot;
              "--workers=" ^ string_of_int workers;
              "--capacity=" ^ string_of_int capacity;
              "--queue=" ^ string_of_int (if queue < 0 then capacity else queue);
              "--cache-mb=" ^ string_of_int cache_mb;
              "--timeout-ms=" ^ string_of_int timeout_ms;
              "--disk-cache=" ^ cache_dir;
            |]
          in
          Unix.create_process args.(0) args Unix.stdin Unix.stdout Unix.stderr
        in
        let sup =
          Serve.Supervisor.create
            ~config:
              {
                Serve.Supervisor.default_config with
                Serve.Supervisor.crash_budget;
              }
            ~slots:size ~spawn ()
        in
        let monitor = Serve.Supervisor.run sup in
        (* Wait (bounded) for the first generation to answer Hello, so the
           front opens with closed breakers instead of tripping them all on
           the first probe round. *)
        let quick =
          { Serve.Client.default_backoff with Serve.Client.attempts = 1 }
        in
        let answers addr =
          match
            Serve.Client.retry_request ~backoff:quick ~addr Serve.Protocol.Hello
          with
          | _ -> true
          | exception _ -> false
        in
        for i = 0 to size - 1 do
          let addr = Serve.Transport.Unix_sock (sock i) in
          let tries = ref 0 in
          while (not (answers addr)) && !tries < 100 do
            incr tries;
            sleepf 0.1
          done
        done;
        let addrs =
          List.init size (fun i -> Serve.Transport.Unix_sock (sock i))
        in
        let router =
          Serve.Router.create ~replicas ~hedge:(hedge_of_ms hedge_max_ms) addrs
        in
        let server =
          Serve.Router.create_server ~backlog ~health_interval_ms:health_ms
            ~listen:[ Serve.Transport.parse listen ]
            router
        in
        (* Signals only flip a flag; the watchdog thread does the actual
           stop, so no lock is ever taken from a signal handler. *)
        let stop_flag = Atomic.make false in
        let old_term =
          Sys.signal Sys.sigterm
            (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true))
        in
        let old_int =
          Sys.signal Sys.sigint
            (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true))
        in
        let watchdog =
          Thread.create
            (fun () ->
              while not (Atomic.get stop_flag) do
                sleepf 0.1
              done;
              Serve.Router.request_stop server)
            ()
        in
        Printf.eprintf "symref %s fleet: %d workers under %s, front on %s\n%!"
          Serve.Version.version size dir
          (String.concat ", "
             (List.map Serve.Transport.to_string
                (Serve.Router.server_addresses server)));
        Serve.Router.serve server;
        Atomic.set stop_flag true;
        Thread.join watchdog;
        let notify ~slot ~pid:_ =
          ignore
            (Serve.Client.retry_request ~backoff:quick
               ~addr:(Serve.Transport.Unix_sock (sock slot))
               Serve.Protocol.Shutdown)
        in
        Serve.Supervisor.stop ~grace_s ~notify sup;
        Thread.join monitor;
        Sys.set_signal Sys.sigterm old_term;
        Sys.set_signal Sys.sigint old_int)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a self-healing serve fleet under one command: spawn $(b,--size) \
          worker daemons on fixed sockets under $(b,--dir), supervise them \
          (crashed workers restart with capped backoff; a slot that crashes \
          past $(b,--crash-budget) is given up), and front them with the \
          consistent-hash router — circuit breakers, hedged requests, \
          failover.  SIGTERM (or a shutdown request to the front) drains \
          gracefully: protocol shutdown to every worker, then SIGTERM, then \
          SIGKILL, each $(b,--grace-s) apart.")
    Term.(
      const run $ listen_arg $ size_arg $ dir_arg $ workers_arg $ capacity_arg
      $ queue_arg $ cache_mb_arg $ timeout_ms_arg $ disk_cache_arg
      $ replicas_arg $ health_arg $ hedge_max_arg $ backlog_arg $ grace_arg
      $ crash_budget_arg $ obs_term)

let main =
  let doc = "numerical reference generation for symbolic analysis of analog circuits" in
  Cmd.group
    (Cmd.info "symref" ~version:Serve.Version.version ~doc)
    [
      info_cmd;
      coeffs_cmd;
      doctor_cmd;
      bode_cmd;
      ac_cmd;
      sbg_cmd;
      simplify_cmd;
      poles_cmd;
      sensitivity_cmd;
      margins_cmd;
      noise_cmd;
      mc_cmd;
      transient_cmd;
      dot_cmd;
      tables_cmd;
      serve_cmd;
      submit_cmd;
      batch_cmd;
      router_cmd;
      fleet_cmd;
    ]

let () =
  (* Chaos configuration from the environment (SYMREF_FAULT /
     SYMREF_FAULT_SEED) — a no-op when neither variable is set. *)
  (try Inject.arm_from_env ()
   with Failure m ->
     Printf.eprintf "error: SYMREF_FAULT: %s\n" m;
     exit 2);
  exit (Cmd.eval main)
