type t = {
  title : string;
  node_names : string array;
  elements : Element.t list; (* insertion order *)
}

module Builder = struct
  type builder = {
    title : string;
    names : (string, int) Hashtbl.t;
    mutable name_list : string list; (* reverse order, excludes ground *)
    mutable next : int;
    mutable elems : Element.t list; (* reverse order *)
    elem_names : (string, unit) Hashtbl.t;
  }

  type t = builder

  let create ?(title = "untitled") () =
    let names = Hashtbl.create 16 in
    Hashtbl.replace names "0" 0;
    Hashtbl.replace names "gnd" 0;
    {
      title;
      names;
      name_list = [];
      next = 1;
      elems = [];
      elem_names = Hashtbl.create 16;
    }

  let ground = 0

  let node b name =
    match Hashtbl.find_opt b.names name with
    | Some id -> id
    | None ->
        let id = b.next in
        b.next <- id + 1;
        Hashtbl.replace b.names name id;
        b.name_list <- name :: b.name_list;
        id

  let add b (e : Element.t) =
    if Hashtbl.mem b.elem_names e.Element.name then
      invalid_arg (Printf.sprintf "Netlist: duplicate element name %s" e.Element.name);
    List.iter
      (fun n ->
        if n >= b.next then
          invalid_arg
            (Printf.sprintf "Netlist: element %s uses unknown node %d" e.Element.name n))
      (Element.nodes e);
    Hashtbl.replace b.elem_names e.Element.name ();
    b.elems <- e :: b.elems

  (* Bind node lookups explicitly: interning order must follow source order,
     and OCaml evaluates arguments right-to-left. *)
  let two b name ~a ~b:bb mk =
    let na = node b a in
    let nb = node b bb in
    add b (Element.make name (mk na nb))

  let conductance b name ~a ~b:bb v =
    two b name ~a ~b:bb (fun a b -> Element.Conductance { a; b; siemens = v })

  let resistor b name ~a ~b:bb v =
    two b name ~a ~b:bb (fun a b -> Element.Resistor { a; b; ohms = v })

  let capacitor b name ~a ~b:bb v =
    two b name ~a ~b:bb (fun a b -> Element.Capacitor { a; b; farads = v })

  let inductor b name ~a ~b:bb v =
    two b name ~a ~b:bb (fun a b -> Element.Inductor { a; b; henries = v })

  let four b name ~p ~m ~cp ~cm mk =
    let np = node b p in
    let nm = node b m in
    let ncp = node b cp in
    let ncm = node b cm in
    add b (Element.make name (mk np nm ncp ncm))

  let vccs b name ~p ~m ~cp ~cm gm =
    four b name ~p ~m ~cp ~cm (fun p m cp cm -> Element.Vccs { p; m; cp; cm; gm })

  let vcvs b name ~p ~m ~cp ~cm gain =
    four b name ~p ~m ~cp ~cm (fun p m cp cm -> Element.Vcvs { p; m; cp; cm; gain })

  let cccs b name ~p ~m ~vname gain =
    let np = node b p in
    let nm = node b m in
    add b (Element.make name (Element.Cccs { p = np; m = nm; vname; gain }))

  let ccvs b name ~p ~m ~vname ohms =
    let np = node b p in
    let nm = node b m in
    add b (Element.make name (Element.Ccvs { p = np; m = nm; vname; ohms }))

  let isrc b name ~a ~b:bb amps =
    two b name ~a ~b:bb (fun a b -> Element.Isrc { a; b; amps })

  let vsrc b name ~p ~m volts =
    let np = node b p in
    let nm = node b m in
    add b (Element.make name (Element.Vsrc { p = np; m = nm; volts }))

  let finish b =
    let elements = List.rev b.elems in
    (* Controlled-source references must resolve. *)
    let vsrc_names =
      List.filter_map
        (fun (e : Element.t) ->
          match e.Element.kind with Element.Vsrc _ -> Some e.Element.name | _ -> None)
        elements
    in
    List.iter
      (fun (e : Element.t) ->
        match e.Element.kind with
        | Element.Cccs { vname; _ } | Element.Ccvs { vname; _ } ->
            if not (List.mem vname vsrc_names) then
              invalid_arg
                (Printf.sprintf "Netlist: %s controls through unknown source %s"
                   e.Element.name vname)
        | _ -> ())
      elements;
    let node_names = Array.make b.next "0" in
    List.iteri
      (fun i name -> node_names.(b.next - 1 - i) <- name)
      b.name_list;
    { title = b.title; node_names; elements }
end

let title t = t.title
let node_count t = Array.length t.node_names - 1
let elements t = t.elements
let element_count t = List.length t.elements

let node_name t n =
  if n < 0 || n >= Array.length t.node_names then
    invalid_arg "Netlist.node_name: out of range"
  else t.node_names.(n)

let node_id t name =
  if name = "0" || name = "gnd" then Some 0
  else
    let rec go i =
      if i >= Array.length t.node_names then None
      else if t.node_names.(i) = name then Some i
      else go (i + 1)
    in
    go 1

let find_element t name =
  List.find_opt (fun (e : Element.t) -> e.Element.name = name) t.elements

let remove_element t name =
  if find_element t name = None then raise Not_found;
  { t with elements = List.filter (fun (e : Element.t) -> e.Element.name <> name) t.elements }

let extend t f =
  let b = Builder.create ~title:t.title () in
  (* Re-intern nodes in id order so existing elements keep their indices. *)
  for i = 1 to Array.length t.node_names - 1 do
    let id = Builder.node b t.node_names.(i) in
    assert (id = i)
  done;
  List.iter (Builder.add b) t.elements;
  f b;
  Builder.finish b

(* Rewrite every node reference through [rename] (same names, same values). *)
let map_nodes rename (e : Element.t) =
  let kind =
    match e.Element.kind with
    | Element.Conductance { a; b; siemens } ->
        Element.Conductance { a = rename a; b = rename b; siemens }
    | Element.Resistor { a; b; ohms } ->
        Element.Resistor { a = rename a; b = rename b; ohms }
    | Element.Capacitor { a; b; farads } ->
        Element.Capacitor { a = rename a; b = rename b; farads }
    | Element.Inductor { a; b; henries } ->
        Element.Inductor { a = rename a; b = rename b; henries }
    | Element.Vccs { p; m; cp; cm; gm } ->
        Element.Vccs { p = rename p; m = rename m; cp = rename cp; cm = rename cm; gm }
    | Element.Vcvs { p; m; cp; cm; gain } ->
        Element.Vcvs { p = rename p; m = rename m; cp = rename cp; cm = rename cm; gain }
    | Element.Cccs { p; m; vname; gain } ->
        Element.Cccs { p = rename p; m = rename m; vname; gain }
    | Element.Ccvs { p; m; vname; ohms } ->
        Element.Ccvs { p = rename p; m = rename m; vname; ohms }
    | Element.Isrc { a; b; amps } -> Element.Isrc { a = rename a; b = rename b; amps }
    | Element.Vsrc { p; m; volts } -> Element.Vsrc { p = rename p; m = rename m; volts }
  in
  { e with Element.kind }

let compact t =
  let n = Array.length t.node_names in
  let used = Array.make n false in
  used.(0) <- true;
  List.iter (fun e -> List.iter (fun x -> used.(x) <- true) (Element.nodes e)) t.elements;
  let map = Array.make n 0 in
  let b = Builder.create ~title:t.title () in
  (* Intern surviving names in old-id order so the renumbering is stable. *)
  for i = 1 to n - 1 do
    if used.(i) then map.(i) <- Builder.node b t.node_names.(i)
  done;
  List.iter (fun e -> Builder.add b (map_nodes (fun x -> map.(x)) e)) t.elements;
  Builder.finish b

(* After a node merge an element can lose its stamped contribution entirely
   (a self-loop branch, a controlled source whose output or control pair
   coincides).  Constraint elements cannot just vanish: a collapsed voltage
   source is a contradictory circuit, not a simplified one. *)
let survives_merge (e : Element.t) =
  match e.Element.kind with
  | Element.Conductance { a; b; _ }
  | Element.Resistor { a; b; _ }
  | Element.Capacitor { a; b; _ }
  | Element.Inductor { a; b; _ }
  | Element.Isrc { a; b; _ } ->
      a <> b
  | Element.Vccs { p; m; cp; cm; _ } -> p <> m && cp <> cm
  | Element.Cccs { p; m; _ } -> p <> m
  | Element.Vsrc { p; m; _ } | Element.Vcvs { p; m; _ } | Element.Ccvs { p; m; _ } ->
      if p = m then
        invalid_arg
          (Printf.sprintf "Netlist: short collapses constraint element %s"
             e.Element.name);
      true

let short_element t name =
  let e = match find_element t name with None -> raise Not_found | Some e -> e in
  let a, b =
    match e.Element.kind with
    | Element.Conductance { a; b; _ }
    | Element.Resistor { a; b; _ }
    | Element.Capacitor { a; b; _ }
    | Element.Inductor { a; b; _ } ->
        (a, b)
    | _ ->
        invalid_arg
          (Printf.sprintf "Netlist.short_element: %s is not a two-terminal branch"
             name)
  in
  let elements =
    List.filter (fun (x : Element.t) -> x.Element.name <> name) t.elements
  in
  let elements =
    if a = b then elements
    else begin
      (* Ground absorbs the merge; otherwise the lower id keeps its name. *)
      let keep, drop =
        if a = 0 || b = 0 then (0, if a = 0 then b else a)
        else (min a b, max a b)
      in
      let rename x = if x = drop then keep else x in
      List.filter survives_merge (List.map (map_nodes rename) elements)
    end
  in
  compact { t with elements }

let scale_element t name k =
  if find_element t name = None then raise Not_found;
  {
    t with
    elements =
      List.map
        (fun (e : Element.t) ->
          if e.Element.name = name then Element.scale_value e k else e)
        t.elements;
  }

let conductance_values t = List.filter_map Element.conductance_value t.elements
let capacitor_values t = List.filter_map Element.capacitance_value t.elements
let capacitor_count t = List.length (capacitor_values t)

let mean_conductance t =
  match conductance_values t with
  | [] -> invalid_arg "Netlist.mean_conductance: no conductances"
  | vs -> Symref_numeric.Stats.mean vs

let mean_capacitance t =
  match capacitor_values t with
  | [] -> invalid_arg "Netlist.mean_capacitance: no capacitors"
  | vs -> Symref_numeric.Stats.mean vs

let is_nodal_class t = List.for_all Element.is_nodal_class t.elements

let is_connected t =
  let n = Array.length t.node_names in
  if n = 1 then true
  else begin
    let seen = Array.make n false in
    seen.(0) <- true;
    (* Repeated relaxation; element count is small. *)
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun e ->
          let ns = Element.nodes e in
          if List.exists (fun x -> seen.(x)) ns then
            List.iter
              (fun x ->
                if not seen.(x) then begin
                  seen.(x) <- true;
                  changed := true
                end)
              ns)
        t.elements
    done;
    Array.for_all Fun.id seen
  end

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d nodes, %d elements (%d capacitors)" t.title
    (node_count t) (element_count t) (capacitor_count t)
