(** Circuits: an immutable element list plus a node-name table, and a mutable
    builder that interns node names.

    Node [0] is always ground and answers to the names ["0"] and ["gnd"]. *)

type t
(** An immutable circuit. *)

module Builder : sig
  type circuit := t
  type t

  val create : ?title:string -> unit -> t

  val node : t -> string -> Element.node
  (** Intern a node name, creating the node on first use. *)

  val ground : Element.node
  (** The node [0]. *)

  val add : t -> Element.t -> unit
  (** @raise Invalid_argument on duplicate element name or an element
      referring to a node that was never interned. *)

  (* Convenience constructors; nodes given by name. *)
  val conductance : t -> string -> a:string -> b:string -> float -> unit
  val resistor : t -> string -> a:string -> b:string -> float -> unit
  val capacitor : t -> string -> a:string -> b:string -> float -> unit
  val inductor : t -> string -> a:string -> b:string -> float -> unit

  val vccs :
    t -> string -> p:string -> m:string -> cp:string -> cm:string -> float -> unit

  val vcvs :
    t -> string -> p:string -> m:string -> cp:string -> cm:string -> float -> unit

  val cccs : t -> string -> p:string -> m:string -> vname:string -> float -> unit
  val ccvs : t -> string -> p:string -> m:string -> vname:string -> float -> unit
  val isrc : t -> string -> a:string -> b:string -> float -> unit
  val vsrc : t -> string -> p:string -> m:string -> float -> unit

  val finish : t -> circuit
  (** Freeze.  @raise Invalid_argument when a CCCS/CCVS names a voltage
      source that does not exist. *)
end

val title : t -> string

val node_count : t -> int
(** Number of non-ground nodes. *)

val elements : t -> Element.t list
(** In insertion order. *)

val element_count : t -> int
val node_name : t -> Element.node -> string
val node_id : t -> string -> Element.node option
val find_element : t -> string -> Element.t option

val remove_element : t -> string -> t
(** @raise Not_found when no element has that name. *)

val compact : t -> t
(** Drop node names that no remaining element references (nodes stranded by
    {!remove_element}, which would otherwise stamp a zero — singular — nodal
    row).  Surviving nodes keep their names; ids are renumbered densely in
    the original order. *)

val short_element : t -> string -> t
(** [short_element c name] removes the named two-terminal branch (R, G, C or
    L) and merges its two terminal nodes — the short-circuit counterpart of
    {!remove_element}'s open.  Ground absorbs the merge; otherwise the
    lower-numbered node keeps its name.  Elements whose stamp vanishes under
    the merge (self-loop branches, controlled sources with coincident output
    or control pairs) are dropped, and the result is {!compact}ed.
    @raise Not_found when no element has that name.
    @raise Invalid_argument when the element is not a two-terminal branch or
    the merge would collapse a voltage-constraint element (Vsrc/VCVS/CCVS). *)

val extend : t -> (Builder.t -> unit) -> t
(** [extend c f] rebuilds [c] in a fresh builder (same nodes and elements)
    and lets [f] add elements — e.g. attach sources or loads to a library
    circuit. *)

val scale_element : t -> string -> float -> t
(** [scale_element c name k] multiplies the named element's principal value
    by [k] (see {!Element.scale_value}).
    @raise Not_found when no element has that name. *)

val conductance_values : t -> float list
(** Conductance-dimensioned magnitudes (G, 1/R, |gm|) — the paper's
    conductance-mean heuristic input. *)

val capacitor_values : t -> float list
val capacitor_count : t -> int
val mean_conductance : t -> float
(** @raise Invalid_argument when the circuit has no conductances. *)

val mean_capacitance : t -> float
(** @raise Invalid_argument when the circuit has no capacitors. *)

val is_nodal_class : t -> bool
(** All elements in the nodal class (voltage sources excluded). *)

val is_connected : t -> bool
(** Every node reachable from ground through element terminals. *)

val pp_summary : Format.formatter -> t -> unit
