module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Obs = Symref_obs.Metrics
module Tr = Symref_obs.Trace

type config = {
  sigma : int;
  r : float;
  reduce : bool;
  conj_symmetry : bool;
  max_passes : int;
  dry_passes : int;
  scaling_policy : [ `Split | `Frequency_only ];
  domains : int;
}

let default_config =
  {
    sigma = 6;
    r = 1.0;
    reduce = true;
    conj_symmetry = true;
    max_passes = 64;
    dry_passes = 2;
    scaling_policy = `Split;
    domains = 1;
  }

type band_report = {
  pass : int;
  band : Band.t option;
  scale : Scaling.pair;
  points : int;
  evaluations : int;
  fresh : int;
}

(* What still has to be done, relative to the established set. *)
type objective =
  | Above of int (* tilt up from this established edge *)
  | Below of int (* tilt down from this established edge *)
  | Gap of int * int (* unknown run strictly between two established indices *)
  | Done

type stall =
  | No_stall
  | Stalled_above of int
  | Stalled_below of int
  | Stalled_gap of int * int
  | Peak_lost of int

type diagnosis = {
  stalled : stall;
  dry_pass_total : int;
  last_band : Band.t option;
  singular_retries : int;
  nonfinite_retries : int;
  retry_giveups : int;
}

let clean_diagnosis =
  {
    stalled = No_stall;
    dry_pass_total = 0;
    last_band = None;
    singular_retries = 0;
    nonfinite_retries = 0;
    retry_giveups = 0;
  }

type result = {
  coeffs : Ef.t array;
  established : bool array;
  owners : int array;
  gdeg : int;
  effective_order : int;
  reports : band_report list;
  passes : int;
  evaluations : int;
  max_overlap_mismatch : float;
  converged : bool;
  diagnosis : diagnosis;
}

let run ?(config = default_config) (ev : Evaluator.t) =
  let n = ev.Evaluator.order_bound in
  if n < 0 then invalid_arg "Adaptive.run: negative order bound";
  let gdeg = ev.Evaluator.gdeg in
  let coeffs = Array.make (n + 1) Ef.zero in
  let established = Array.make (n + 1) false in
  let resolved = Array.make (n + 1) false in
  let pass_scale = Hashtbl.create 8 in
  (* pass id -> scale *)
  let owner = Array.make (n + 1) 0 in
  (* pass that established each coefficient *)
  let reports = ref [] in
  let pass_no = ref 0 in
  let mismatch = ref 0. in
  (* Diagnosis accumulators. *)
  let stalled = ref No_stall in
  let dry_total = ref 0 in
  let last_band = ref None in
  let singular_retries = ref 0 in
  let nonfinite_retries = ref 0 in
  let retry_giveups = ref 0 in

  let objective () =
    let est = ref [] in
    for i = n downto 0 do
      if established.(i) then est := i :: !est
    done;
    match !est with
    | [] -> Done (* only reachable when everything resolved to zero *)
    | bottom :: _ ->
        let top = List.fold_left Int.max bottom !est in
        let unresolved p = not (resolved.(p)) in
        let above = List.exists unresolved (List.init (n - top) (fun i -> top + 1 + i)) in
        let below = List.exists unresolved (List.init bottom Fun.id) in
        if above then Above top
        else if below then Below bottom
        else begin
          (* Find the first unresolved index; it lies strictly inside. *)
          let rec find i = if i > n then Done else if unresolved i then inside i else find (i + 1)
          and inside i =
            let rec left j = if established.(j) then j else left (j - 1) in
            let rec right j = if established.(j) then j else right (j + 1) in
            Gap (left i, right i)
          in
          find 0
        end
  in

  (* Peak of the established set as seen at a given normalisation. *)
  let peak_at scale =
    let best = ref None in
    Array.iteri
      (fun i ok ->
        if ok then begin
          let m = Ef.abs (Scaling.normalize ~gdeg scale i coeffs.(i)) in
          match !best with
          | Some (_, bm) when Ef.compare_mag m bm <= 0 -> ()
          | _ -> best := Some (i, m)
        end)
      established;
    !best
  in

  let record_coefficient i value =
    if established.(i) then begin
      let old = coeffs.(i) in
      let denom = if Ef.compare_mag old value >= 0 then old else value in
      if not (Ef.is_zero denom) then begin
        let rel = Ef.to_float (Ef.abs (Ef.div (Ef.sub old value) denom)) in
        if rel > !mismatch then mismatch := rel
      end;
      false
    end
    else begin
      coeffs.(i) <- value;
      established.(i) <- true;
      resolved.(i) <- true;
      owner.(i) <- !pass_no;
      true
    end
  in

  let exec_pass scale ~base ~k =
    incr pass_no;
    Obs.incr Obs.adaptive_passes;
    Tr.span ~cat:"adaptive"
      ~args:
        [
          ("pass", string_of_int !pass_no);
          ("k", string_of_int k);
          ("base", string_of_int base);
          ("evaluator", ev.Evaluator.name);
        ]
      "adaptive.pass"
    @@ fun () ->
    Hashtbl.replace pass_scale !pass_no scale;
    let known =
      if config.reduce then begin
        let acc = ref [] in
        Array.iteri (fun i ok -> if ok then acc := (i, coeffs.(i)) :: !acc) established;
        !acc
      end
      else []
    in
    if known <> [] then Obs.incr Obs.deflated_passes;
    let p =
      Interp.run ~conj_symmetry:config.conj_symmetry ~known ~base
        ~domains:config.domains ev ~scale ~k
    in
    Obs.observe Obs.points_per_pass p.Interp.evaluations;
    singular_retries := !singular_retries + p.Interp.singular_retries;
    nonfinite_retries := !nonfinite_retries + p.Interp.nonfinite_retries;
    retry_giveups := !retry_giveups + p.Interp.retry_giveups;
    (* Validity floor anchored to the pre-deflation values: noise in the
       recovered coefficients is ~1e-13 of the ceiling even when deflation
       removed the dominant part of the polynomial. *)
    let min_mag =
      Ef.mul_float
        (Ef.mul p.Interp.ceiling
           (Ef.of_decimal 1. (Band.noise_exponent + config.sigma)))
        (1. /. float_of_int k)
    in
    let band = Band.detect ~min_mag ~sigma:config.sigma ~base p.Interp.normalized in
    let fresh = ref 0 in
    (match band with
    | None -> ()
    | Some b ->
        for i = b.Band.lo to b.Band.hi do
          let value =
            Scaling.denormalize ~gdeg scale i
              (Ec.re p.Interp.normalized.(i - base))
          in
          (* Deflation (eq. 17) subtracts established coefficients before
             the transform, so a slot that was already known recovers only
             the residual: reconstruct the full value before comparing. *)
          let value =
            if config.reduce && established.(i) then Ef.add coeffs.(i) value
            else value
          in
          if record_coefficient i value then incr fresh
        done);
    reports :=
      {
        pass = !pass_no;
        band;
        scale;
        points = p.Interp.points;
        evaluations = p.Interp.evaluations;
        fresh = !fresh;
      }
      :: !reports;
    last_band := band;
    if !fresh = 0 then begin
      Obs.incr Obs.dry_passes;
      incr dry_total
    end;
    (band, !fresh)
  in

  (* --- First interpolation: heuristic scales, full order (§3.2). *)
  let scale0 = Scaling.initial ev in
  let band0, _ = exec_pass scale0 ~base:0 ~k:(n + 1) in
  (if band0 = None then Array.iteri (fun i _ -> resolved.(i) <- true) resolved);

  (* --- Travel towards the remaining coefficients.  Each tilt is computed
     from the scale of the interpolation that established the travelling
     edge (the paper's "normalising the previous ones", eq. 13). *)
  let scale_of_edge i = Hashtbl.find pass_scale owner.(i) in
  let dry = ref 0 in
  let r_eff = ref config.r in
  let declare_zero_pred pred =
    Array.iteri (fun i r -> if (not r) && pred i then resolved.(i) <- true) resolved
  in
  let converged = ref true in
  let continue_ = ref (objective () <> Done) in
  while !continue_ do
    if !pass_no >= config.max_passes then begin
      converged := false;
      (stalled :=
         match objective () with
         | Done -> No_stall
         | Above top -> Stalled_above top
         | Below bottom -> Stalled_below bottom
         | Gap (l, r) -> Stalled_gap (l, r));
      continue_ := false
    end
    else begin
      (match objective () with
      | Done -> continue_ := false
      | Above top -> (
          let base_scale = scale_of_edge top in
          match peak_at base_scale with
          | None ->
              (* Unreachable in theory (the edge itself is established), but
                 a structured stall beats dying inside a server job. *)
              converged := false;
              stalled := Peak_lost top;
              continue_ := false
          | Some (m, peak_mag) ->
              let edge_mag = Ef.abs (Scaling.normalize ~gdeg base_scale top coeffs.(top)) in
              let scale =
                Scaling.tilt ~policy:config.scaling_policy ~dir:`Up ~r:!r_eff
                  ~edge:top ~edge_mag ~peak:m ~peak_mag base_scale
              in
              let base = if config.reduce then Int.max 0 (top - 1) else 0 in
              let k = n - base + 1 in
              let _, fresh = exec_pass scale ~base ~k in
              if fresh = 0 then begin
                incr dry;
                r_eff := !r_eff *. 1.7;
                if !dry >= config.dry_passes then begin
                  declare_zero_pred (fun i -> i > top);
                  dry := 0;
                  r_eff := config.r
                end
              end
              else begin
                dry := 0;
                r_eff := config.r
              end)
      | Below bottom -> (
          let base_scale = scale_of_edge bottom in
          match peak_at base_scale with
          | None ->
              converged := false;
              stalled := Peak_lost bottom;
              continue_ := false
          | Some (m, peak_mag) ->
              let edge_mag =
                Ef.abs (Scaling.normalize ~gdeg base_scale bottom coeffs.(bottom))
              in
              let scale =
                Scaling.tilt ~policy:config.scaling_policy ~dir:`Down ~r:!r_eff
                  ~edge:bottom ~edge_mag ~peak:m ~peak_mag base_scale
              in
              let base = 0 in
              let k = if config.reduce then Int.min n (bottom + 1) + 1 else n + 1 in
              let _, fresh = exec_pass scale ~base ~k in
              if fresh = 0 then begin
                incr dry;
                r_eff := !r_eff *. 1.7;
                if !dry >= config.dry_passes then begin
                  declare_zero_pred (fun i -> i < bottom);
                  dry := 0;
                  r_eff := config.r
                end
              end
              else begin
                dry := 0;
                r_eff := config.r
              end)
      | Gap (left, right) ->
          let s1 = Hashtbl.find pass_scale owner.(left)
          and s2 = Hashtbl.find pass_scale owner.(right) in
          let scale = Scaling.gap_fill s1 s2 in
          let base = if config.reduce then left else 0 in
          let k = if config.reduce then right - base + 1 else n + 1 in
          let _, fresh = exec_pass scale ~base ~k in
          if fresh = 0 then begin
            incr dry;
            if !dry >= config.dry_passes then begin
              declare_zero_pred (fun i -> i > left && i < right);
              dry := 0
            end
          end
          else dry := 0);
      if objective () = Done then continue_ := false
    end
  done;
  if not !converged then Array.iteri (fun i _ -> resolved.(i) <- true) resolved;

  let effective_order =
    let rec go i =
      if i < 0 then 0
      else if established.(i) && not (Ef.is_zero coeffs.(i)) then i
      else go (i - 1)
    in
    go n
  in
  let evaluations = Evaluator.eval_count ev in
  {
    coeffs;
    established;
    owners = owner;
    gdeg;
    effective_order;
    reports = List.rev !reports;
    passes = !pass_no;
    evaluations;
    max_overlap_mismatch = !mismatch;
    converged = !converged;
    diagnosis =
      {
        stalled = !stalled;
        dry_pass_total = !dry_total;
        last_band = !last_band;
        singular_retries = !singular_retries;
        nonfinite_retries = !nonfinite_retries;
        retry_giveups = !retry_giveups;
      };
  }

let coefficient_ratios result =
  let n = Array.length result.coeffs in
  Array.init (Int.max 0 (n - 1)) (fun i ->
      if
        result.established.(i)
        && result.established.(i + 1)
        && (not (Ef.is_zero result.coeffs.(i)))
        && not (Ef.is_zero result.coeffs.(i + 1))
      then Ef.log10_abs result.coeffs.(i + 1) -. Ef.log10_abs result.coeffs.(i)
      else Float.nan)
