(** The adaptive-scaling reference-generation algorithm (paper §3.2-3.3).

    Successive interpolations, each with scale factors computed from the
    previous pass, until every coefficient of the network polynomial is
    either established with [sigma] significant digits or shown to be
    negligible at every scale (an over-estimate of the order, or a
    structural gap):

    + first pass with [f = 1/mean C], [g = 1/mean G];
    + detect the valid band (eq. 12), denormalise and record it;
    + move towards the remaining unknown coefficients with the tilt of
      eqs. (13)-(15), or the geometric-mean scales of eq. (16) for a gap
      between two established bands;
    + optionally deflate already-known coefficients (eq. 17) so later passes
      interpolate fewer points;
    + a pass that yields nothing new widens [r] and retries; after
      [dry_passes] consecutive failures the remaining coefficients in that
      direction are declared zero. *)

type config = {
  sigma : int;  (** significant digits wanted (default 6, as in §3.2) *)
  r : float;  (** band-placement tuning factor of eq. 14 (default 1.0) *)
  reduce : bool;  (** eq. 17 problem reduction (default true) *)
  conj_symmetry : bool;  (** half-circle evaluation (default true) *)
  max_passes : int;  (** hard stop (default 64) *)
  dry_passes : int;
      (** consecutive empty passes before declaring zeros (default 2) *)
  scaling_policy : [ `Split | `Frequency_only ];
      (** eq. 13 simultaneous scaling ([`Split], default) vs the naive
          single-factor alternative (ablation; see {!Scaling.tilt}) *)
  domains : int;
      (** OCaml domains for each pass's point evaluations (default 1;
          see {!Interp.run}).  Results are bit-identical whatever the
          value. *)
}

val default_config : config

type band_report = {
  pass : int;          (** 1-based interpolation number *)
  band : Band.t option;  (** valid region found, absolute powers *)
  scale : Scaling.pair;
  points : int;
  evaluations : int;   (** LU evaluations in this pass *)
  fresh : int;         (** coefficients established by this pass *)
}

(** Which objective the run was pursuing when it gave up — the structured
    replacement for "converged = false, good luck". *)
type stall =
  | No_stall  (** the run converged, or stopped with nothing left to do *)
  | Stalled_above of int
      (** [max_passes] hit while tilting up from this established edge *)
  | Stalled_below of int  (** likewise, tilting down from this edge *)
  | Stalled_gap of int * int
      (** likewise, filling the unknown run between these two indices *)
  | Peak_lost of int
      (** the established set showed no peak at the edge's own scale — a
          numerically corrupted state (theoretically unreachable; previously
          an assertion failure) *)

type diagnosis = {
  stalled : stall;
  dry_pass_total : int;  (** passes that established nothing, whole run *)
  last_band : Band.t option;  (** valid band of the final pass *)
  singular_retries : int;
      (** singular evaluations recovered at perturbed points
          ({!Interp.run}'s guard), summed over all passes *)
  nonfinite_retries : int;  (** non-finite evaluations recovered likewise *)
  retry_giveups : int;  (** points whose retry budget ran out *)
}

val clean_diagnosis : diagnosis
(** All-clear: [No_stall], zero counters, no band — the value hand-built
    results in tests start from. *)

type result = {
  coeffs : Symref_numeric.Extfloat.t array;
      (** denormalised coefficients [0 .. order_bound]; zero where declared
          negligible *)
  established : bool array;
      (** [true] where a band actually produced the value *)
  owners : int array;
      (** 1-based pass number that established each coefficient; [0] where
          none did *)
  gdeg : int;  (** homogeneity degree of the evaluator, for renormalisation *)
  effective_order : int;
      (** highest established power (paper §3.3: orders proven below the
          error level are treated as absent) *)
  reports : band_report list;  (** chronological *)
  passes : int;
  evaluations : int;  (** total LU evaluations *)
  max_overlap_mismatch : float;
      (** worst relative disagreement on coefficients seen by two passes —
          the paper's cross-validation criterion (§3.1): coefficients valid
          in two interpolations must agree *)
  converged : bool;
      (** [false] when [max_passes] (or a lost peak) stopped the loop with
          coefficients still undecided (those are reported as zero) *)
  diagnosis : diagnosis;
      (** what stalled and what was recovered — meaningful whether or not
          the run converged *)
}

val run : ?config:config -> Evaluator.t -> result
(** @raise Invalid_argument when the evaluator's order bound is negative. *)

val coefficient_ratios : result -> float array
(** [|p_(i+1) / p_i|] in decades ([log10]) for established consecutive
    pairs ([nan] elsewhere) — the 1e6..1e12 consecutive-coefficient spread
    the paper cites as the core difficulty (§2.2). *)
