module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex

type t = { lo : int; hi : int; peak : int; threshold : Ef.t }

let noise_exponent = -13

let detect ?(min_mag = Ef.zero) ~sigma ~base coeffs =
  let mags = Array.map (fun c -> Ef.abs (Ec.re c)) coeffs in
  let n = Array.length mags in
  let peak = ref 0 in
  for i = 1 to n - 1 do
    if Ef.compare_mag mags.(i) mags.(!peak) > 0 then peak := i
  done;
  if n = 0 || Ef.is_zero mags.(!peak) || Ef.compare_mag mags.(!peak) min_mag < 0
  then None
  else begin
    let relative =
      Ef.mul mags.(!peak) (Ef.of_decimal 1. (noise_exponent + sigma))
    in
    let threshold = if Ef.compare_mag relative min_mag >= 0 then relative else min_mag in
    let valid i = Ef.compare_mag mags.(i) threshold >= 0 in
    let lo = ref !peak and hi = ref !peak in
    while !lo > 0 && valid (!lo - 1) do
      decr lo
    done;
    while !hi < n - 1 && valid (!hi + 1) do
      incr hi
    done;
    Some { lo = base + !lo; hi = base + !hi; peak = base + !peak; threshold }
  end

let width b = b.hi - b.lo + 1
let contains b i = i >= b.lo && i <= b.hi

(* --- frequency-decade partition --- *)

type span = { lo_hz : float; hi_hz : float; first : int; last : int }

(* The nudge keeps 10^k grid points computed as 9.999..e(k-1) in decade k. *)
let decade_of f = int_of_float (Float.floor (Float.log10 f +. 1e-9))

let spans freqs =
  let n = Array.length freqs in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let d = decade_of freqs.(i) in
      let j = ref i in
      while !j + 1 < n && decade_of freqs.(!j + 1) = d do
        incr j
      done;
      go (!j + 1)
        ({ lo_hz = freqs.(i); hi_hz = freqs.(!j); first = i; last = !j } :: acc)
    end
  in
  go 0 []
