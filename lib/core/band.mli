(** Valid-coefficient region detection (paper eq. 12).

    After an interpolation, only coefficients whose magnitude (prior to
    denormalisation) stays above [10^(sigma - 13) * max_i |p'_i|] carry
    [sigma] significant digits; the rest is round-off.  The valid region is
    the contiguous run around the maximum that clears this threshold. *)

type t = {
  lo : int;   (** first valid index (absolute power of [s]) *)
  hi : int;   (** last valid index *)
  peak : int; (** index of the largest-magnitude coefficient *)
  threshold : Symref_numeric.Extfloat.t;  (** the validity cutoff used *)
}

val noise_exponent : int
(** [-13]: the round-off floor of the double-precision interpolation relative
    to the largest coefficient (16-digit machine, §2.2). *)

val detect :
  ?min_mag:Symref_numeric.Extfloat.t ->
  sigma:int ->
  base:int ->
  Symref_numeric.Extcomplex.t array ->
  t option
(** [detect ~sigma ~base coeffs] finds the valid region of normalised
    coefficients [coeffs] (index [t] holding the coefficient of
    [s^(base + t)]).  Validity is judged on the real part — the circuits are
    real, so imaginary components are pure round-off (§2.2).

    [min_mag] is an absolute validity floor: in a deflated pass (eq. 17) the
    round-off noise is set by the magnitude of the {e pre-deflation} values,
    not by the largest recovered coefficient, so the caller passes
    [10^(sigma-13) * ceiling / K]; without it a window containing no real
    coefficients would promote pure noise.  [None] when no coefficient
    clears the thresholds. *)

val width : t -> int
val contains : t -> int -> bool

(** {1 Frequency-decade partition}

    The same band idea over a frequency grid instead of coefficient indices:
    a verification sweep reports its error breakdown per decade, so a
    certificate can show where in frequency the budget went. *)

type span = {
  lo_hz : float;  (** first grid frequency in the decade *)
  hi_hz : float;  (** last grid frequency in the decade *)
  first : int;    (** index of [lo_hz] in the grid *)
  last : int;     (** index of [hi_hz] in the grid *)
}

val spans : float array -> span list
(** Partition a monotonically increasing frequency grid into runs sharing a
    decade ([10^k <= f < 10^(k+1)]); grid points landing a hair under an
    exact power of ten are counted in the upper decade. *)
