(* Deviation between two frequency responses over a grid.

   The simplification stages and the final certificate all judge error the
   same way the paper does: magnitude deviation in dB and phase deviation in
   degrees, point by point on a logarithmic frequency grid.  This module is
   the single definition of that measure, shared by the SBG greedy loop and
   the end-of-pipeline verification sweep. *)

type point = { freq_hz : float; delta_db : float; delta_deg : float }

type band = {
  lo_hz : float;
  hi_hz : float;
  points : int;
  max_db : float;
  max_deg : float;
}

type t = {
  points : point array;
  max_db : float;
  max_deg : float;
  rms_db : float;
  rms_deg : float;
  bands : band list;
}

(* A response that is exactly zero where the reference is not (or vice
   versa) has no finite dB distance: report infinity so the caller rejects
   the candidate rather than averaging the hole away. *)
let pointwise ~reference value =
  let mr = Complex.norm reference and mv = Complex.norm value in
  if mr = 0. || mv = 0. then if mr = mv then (0., 0.) else (infinity, infinity)
  else
    let delta_db = Float.abs (20. *. Float.log10 (mv /. mr)) in
    let delta_deg =
      Float.abs (Complex.arg (Complex.div value reference)) *. 180. /. Float.pi
    in
    (delta_db, delta_deg)

let worst ~reference values =
  let ddb = ref 0. and ddeg = ref 0. in
  Array.iteri
    (fun i r ->
      let db, deg = pointwise ~reference:r values.(i) in
      ddb := Float.max !ddb db;
      ddeg := Float.max !ddeg deg)
    reference;
  (!ddb, !ddeg)

let of_points freqs points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Deviation.measure: empty frequency grid";
  let max_db = ref 0. and max_deg = ref 0. in
  let sq_db = ref 0. and sq_deg = ref 0. in
  Array.iter
    (fun p ->
      max_db := Float.max !max_db p.delta_db;
      max_deg := Float.max !max_deg p.delta_deg;
      sq_db := !sq_db +. (p.delta_db *. p.delta_db);
      sq_deg := !sq_deg +. (p.delta_deg *. p.delta_deg))
    points;
  let bands =
    List.map
      (fun (s : Band.span) ->
        let max_db = ref 0. and max_deg = ref 0. in
        for i = s.Band.first to s.Band.last do
          max_db := Float.max !max_db points.(i).delta_db;
          max_deg := Float.max !max_deg points.(i).delta_deg
        done;
        {
          lo_hz = s.Band.lo_hz;
          hi_hz = s.Band.hi_hz;
          points = s.Band.last - s.Band.first + 1;
          max_db = !max_db;
          max_deg = !max_deg;
        })
      (Band.spans freqs)
  in
  {
    points;
    max_db = !max_db;
    max_deg = !max_deg;
    rms_db = Float.sqrt (!sq_db /. float_of_int n);
    rms_deg = Float.sqrt (!sq_deg /. float_of_int n);
    bands;
  }

let measure ~reference value freqs =
  let points =
    Array.map
      (fun f ->
        let s = { Complex.re = 0.; im = 2. *. Float.pi *. f } in
        let delta_db, delta_deg = pointwise ~reference:(reference s) (value s) in
        { freq_hz = f; delta_db; delta_deg })
      freqs
  in
  of_points freqs points

let within t ~db ~deg = t.max_db <= db && t.max_deg <= deg
