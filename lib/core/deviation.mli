(** Magnitude/phase deviation between two frequency responses over a grid.

    The single definition of the error measure shared by the SBG greedy loop
    (worst-case over the grid) and the simplification certificate (worst +
    RMS, with a per-decade breakdown via {!Band.spans}).  Magnitude error is
    [|20 log10 |H'|/|H||] in dB, phase error is the principal angle of
    [H'/H] in degrees. *)

type point = { freq_hz : float; delta_db : float; delta_deg : float }

type band = {
  lo_hz : float;   (** first grid frequency of the decade *)
  hi_hz : float;   (** last grid frequency of the decade *)
  points : int;    (** grid points in the decade *)
  max_db : float;  (** worst magnitude deviation inside the decade *)
  max_deg : float; (** worst phase deviation inside the decade *)
}

type t = {
  points : point array;  (** per-grid-point deviation, in grid order *)
  max_db : float;        (** worst-case magnitude deviation *)
  max_deg : float;       (** worst-case phase deviation *)
  rms_db : float;        (** root-mean-square magnitude deviation *)
  rms_deg : float;       (** root-mean-square phase deviation *)
  bands : band list;     (** per-decade breakdown ({!Band.spans}) *)
}

val pointwise : reference:Complex.t -> Complex.t -> float * float
(** [(delta_db, delta_deg)] between one response value and its reference.
    Both are infinite when exactly one of the two magnitudes is zero, zero
    when both are. *)

val worst : reference:Complex.t array -> Complex.t array -> float * float
(** Worst-case [(delta_db, delta_deg)] between two sampled responses of the
    same length (the SBG accept test — cheaper than a full {!measure}). *)

val measure :
  reference:(Complex.t -> Complex.t) ->
  (Complex.t -> Complex.t) ->
  float array ->
  t
(** [measure ~reference h freqs] evaluates both responses at
    [s = j 2 pi f] over the grid and aggregates the deviation.
    @raise Invalid_argument on an empty grid. *)

val within : t -> db:float -> deg:float -> bool
(** Worst-case deviation within both limits. *)
