(* A lazily created, process-wide pool of worker domains.

   [Interp.run ~domains:n] used to [Domain.spawn] fresh domains on every
   interpolation pass; at ~50 LU points per pass the spawn/teardown cost
   (minor heap setup, thread creation) dominated the work and made
   [domains > 1] slower than sequential evaluation.  The pool pays that
   cost once: workers are spawned on first use, sleep on a condition
   variable between batches, and are joined by an [at_exit] hook.

   Two further defences keep tiny batches (an adaptive pass is a few
   hundred microseconds) from drowning in scheduling latency:

   - The pool never grows beyond [Domain.recommended_domain_count () - 1]
     workers.  Oversubscribing cores only adds context switches; on a
     single-core machine the pool stays empty and every job runs on the
     caller, which is exactly the sequential path.

   - The caller drains the job queue itself after finishing its own share,
     so excess jobs (more jobs than workers) and slow worker wake-ups never
     leave the calling domain idle while work remains.  Workers and the
     waiting caller spin briefly on atomic counters before blocking, which
     turns back-to-back pass handoffs into microseconds instead of futex
     round trips.

   Scheduling is deliberately static in who *may* run a job, but any
   assignment is observationally identical: callers partition work into
   disjoint index ranges (as Interp does), so results are bit-identical to
   the sequential path whichever domain executes each chunk.  Not
   reentrant: a pooled job must not itself call [parallel]. *)

type job = unit -> unit

type pool = {
  lock : Mutex.t;
  work : Condition.t; (* a job was queued, or shutdown began *)
  queue : job Queue.t;
  pending : int Atomic.t; (* |queue|, readable without the lock *)
  mutable workers : int;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t list;
  mutable cleanup_registered : bool;
}

let pool =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    pending = Atomic.make 0;
    workers = 0;
    shutting_down = false;
    domains = [];
    cleanup_registered = false;
  }

let max_workers = Int.max 0 (Domain.recommended_domain_count () - 1)

(* The dense per-domain index of the fused-kernel workspace pools, assigned
   on first use.  Re-exported here because consumers think of it as "which
   pool worker am I"; it lives in [Symref_linalg.Kernel] so the matrix layer
   (which cannot see this module) can key workspaces off it. *)
let worker_index = Symref_linalg.Kernel.domain_index

(* ~100us of polling before giving up and blocking: longer than the gap
   between consecutive interpolation passes, far shorter than a human. *)
let spin_budget = 20_000

let worker_loop () =
  (* Claim a workspace index up front: long-lived pool workers get the low,
     densely pooled indices before any transient [`Spawn] domain can. *)
  ignore (worker_index ());
  let rec next () =
    let rec spin budget =
      if budget > 0 && Atomic.get pool.pending = 0 && not pool.shutting_down
      then begin
        Domain.cpu_relax ();
        spin (budget - 1)
      end
    in
    spin spin_budget;
    Mutex.lock pool.lock;
    let rec await () =
      if pool.shutting_down then None
      else
        match Queue.take_opt pool.queue with
        | Some j ->
            Atomic.decr pool.pending;
            Some j
        | None ->
            Condition.wait pool.work pool.lock;
            await ()
    in
    let j = await () in
    Mutex.unlock pool.lock;
    match j with
    | None -> ()
    | Some j ->
        j ();
        next ()
  in
  next ()

let shutdown () =
  Mutex.lock pool.lock;
  pool.shutting_down <- true;
  Condition.broadcast pool.work;
  let ds = pool.domains in
  pool.domains <- [];
  pool.workers <- 0;
  Mutex.unlock pool.lock;
  List.iter Domain.join ds;
  (* Leave the pool usable again (tests exercise restart). *)
  Mutex.lock pool.lock;
  pool.shutting_down <- false;
  Mutex.unlock pool.lock

let ensure n =
  let n = Int.min n max_workers in
  Mutex.lock pool.lock;
  if not pool.cleanup_registered then begin
    pool.cleanup_registered <- true;
    at_exit shutdown
  end;
  while pool.workers < n do
    pool.domains <- Domain.spawn worker_loop :: pool.domains;
    pool.workers <- pool.workers + 1
  done;
  Mutex.unlock pool.lock

let size () =
  Mutex.lock pool.lock;
  let n = pool.workers in
  Mutex.unlock pool.lock;
  n

(* Fire-and-forget submission for long-lived services (Symref_serve): the
   job is queued for a pool worker and [async] returns immediately.  The
   caller owns completion tracking (the scheduler counts jobs in flight and
   drains them before any shutdown).  On a single-core machine the pool can
   have no workers at all, so the job is refused and the caller must run it
   on a thread of its own. *)
let async (job : job) =
  if max_workers = 0 then false
  else begin
    ensure 1;
    Mutex.lock pool.lock;
    Queue.add job pool.queue;
    Atomic.incr pool.pending;
    Condition.signal pool.work;
    Mutex.unlock pool.lock;
    true
  end

let parallel (jobs : job array) =
  let n = Array.length jobs in
  if n = 0 then ()
  else if n = 1 || max_workers = 0 then
    (* Sequential fallback: same jobs, same index order, same results. *)
    Array.iter (fun j -> j ()) jobs
  else begin
    ensure (n - 1);
    let remaining = Atomic.make (n - 1) in
    let fin_lock = Mutex.create () and fin = Condition.create () in
    let failure = Atomic.make None in
    let catching i () =
      (try jobs.(i) ()
       with e -> ignore (Atomic.compare_and_set failure None (Some e)));
      Mutex.lock fin_lock;
      if Atomic.fetch_and_add remaining (-1) = 1 then Condition.signal fin;
      Mutex.unlock fin_lock
    in
    Mutex.lock pool.lock;
    for i = 1 to n - 1 do
      Queue.add (catching i) pool.queue
    done;
    Atomic.fetch_and_add pool.pending (n - 1) |> ignore;
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    (* The caller's own share; even if it raises, wait for the pooled jobs —
       they may still be writing into the caller's result buffers. *)
    let own = try Ok (jobs.(0) ()) with e -> Error e in
    (* Help drain the queue: with fewer workers than jobs (or workers still
       waking up) the caller would otherwise idle while work remains. *)
    let rec drain () =
      Mutex.lock pool.lock;
      let j =
        match Queue.take_opt pool.queue with
        | Some j ->
            Atomic.decr pool.pending;
            Some j
        | None -> None
      in
      Mutex.unlock pool.lock;
      match j with
      | Some j ->
          j ();
          drain ()
      | None -> ()
    in
    drain ();
    let rec spin budget =
      if budget > 0 && Atomic.get remaining > 0 then begin
        Domain.cpu_relax ();
        spin (budget - 1)
      end
    in
    spin spin_budget;
    Mutex.lock fin_lock;
    while Atomic.get remaining > 0 do
      Condition.wait fin fin_lock
    done;
    Mutex.unlock fin_lock;
    match own with
    | Error e -> raise e
    | Ok () -> ( match Atomic.get failure with Some e -> raise e | None -> ())
  end
