(** A lazily created, persistent pool of worker domains.

    {!Interp.run}[ ~domains:n] used to spawn fresh domains on every
    interpolation pass, whose setup cost dwarfed the ~50-point workload and
    made parallel passes {e slower} than sequential ones.  The pool spawns
    workers once, on first use, parks them on a condition variable between
    batches and joins them from an [at_exit] hook.

    The pool never exceeds [Domain.recommended_domain_count () - 1]
    workers (no worker at all on a single core, where [parallel] degrades
    to a plain sequential loop), and the caller helps drain the job queue,
    so oversubscribed or slow-to-wake workers never idle the calling
    domain.  Callers that partition work into disjoint index ranges stay
    bit-identical to their sequential path whichever domain runs each
    chunk. *)

val parallel : (unit -> unit) array -> unit
(** Run all jobs to completion; [jobs.(0)] executes on the calling domain,
    the rest on pool workers and/or the caller as they become free.  Grows
    the pool towards [Array.length jobs - 1] workers (clamped to the core
    count) if needed.  If any job raises, the first exception is re-raised
    here {e after} every job has finished.  Not reentrant: must not be
    called from inside a pooled job. *)

val async : (unit -> unit) -> bool
(** Enqueue one job for execution by a pool worker and return immediately
    (spawning a first worker if none is alive yet).  Unlike {!parallel}
    there is no completion barrier: the caller must track completion itself
    — {!Symref_serve}'s scheduler counts jobs in flight and drains them
    before shutting anything down.  Returns [false] without queueing when
    the pool cannot have workers (single-core machine); the caller then
    runs the job on a thread of its own.  The job must not itself call
    {!parallel} (same non-reentrancy rule as pooled {!parallel} jobs), and
    exceptions escaping it are the job's own responsibility — wrap the body.
    A caller of {!parallel} that helps drain the queue may execute an
    [async] job on its own domain; jobs must therefore not assume which
    domain runs them. *)

val ensure : int -> unit
(** Pre-spawn workers (clamped to the core count) so the first parallel
    pass does not pay creation latency. *)

val size : unit -> int
(** Workers currently alive. *)

val worker_index : unit -> int
(** A small dense index for the calling domain, assigned on first use —
    the key of the fused kernel's per-domain workspace pools
    ({!Symref_linalg.Kernel.Pool}).  Pool workers claim theirs at spawn, so
    long-lived domains occupy the low indices; the main domain gets one on
    its first evaluation. *)

val shutdown : unit -> unit
(** Join every worker (also runs automatically at exit).  The pool can be
    used again afterwards; the next {!parallel} respawns workers. *)
