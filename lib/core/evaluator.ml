module Ec = Symref_numeric.Extcomplex
module Ef = Symref_numeric.Extfloat
module Epoly = Symref_poly.Epoly
module Nodal = Symref_mna.Nodal
module Obs = Symref_obs.Metrics
module Inject = Symref_fault.Inject

type t = {
  eval : f:float -> g:float -> Complex.t -> Ec.t;
  prefetch : (f:float -> g:float -> Complex.t array -> unit) option;
  gdeg : int;
  order_bound : int;
  f0 : float;
  g0 : float;
  name : string;
  counter : int Atomic.t;
  guarded : bool;
  kernel : bool;
}

(* Fault hooks shared by the nodal constructors.  NaN poisoning corrupts
   the evaluation point itself (extended-range values are non-finite-free
   by construction): every matrix entry becomes NaN, the pivot search finds
   nothing — NaN fails every comparison — and the evaluation surfaces as a
   singular zero value, the degradation path [Interp.run]'s guard covers. *)
let inject_faults (s : Complex.t) =
  if Inject.fire Inject.eval_delay then Inject.sleep_payload Inject.eval_delay;
  if Inject.fire Inject.eval_raise then Inject.fail Inject.eval_raise;
  if Inject.fire Inject.eval_nan then { Complex.re = Float.nan; im = Float.nan }
  else s

let of_nodal problem ~num =
  let counter = Atomic.make 0 in
  let eval ~f ~g s =
    Atomic.incr counter;
    Obs.incr Obs.evaluator_calls;
    let s = inject_faults s in
    let v = Nodal.eval ~f ~g problem s in
    if num then v.Nodal.num else v.Nodal.den
  in
  {
    eval;
    prefetch = None;
    gdeg = (if num then Nodal.num_gdeg problem else Nodal.den_gdeg problem);
    order_bound = Nodal.order_bound problem;
    f0 = 1. /. Nodal.mean_capacitance problem;
    g0 = 1. /. Nodal.mean_conductance problem;
    name = (if num then "num" else "den");
    counter;
    guarded = true;
    kernel = Nodal.kernel_enabled problem;
  }

type shared = { snum : t; sden : t; factorizations : unit -> int; hits : unit -> int }

(* Escape hatch mirroring [SYMREF_NO_KERNEL]: batching is bit-identical per
   point, so the switch is a pure cost lever for A/B runs (CI's batched
   bit-identity gate diffs a batch-on against a batch-off run). *)
let batch_default =
  match Sys.getenv_opt "SYMREF_NO_BATCH" with Some _ -> false | None -> true

(* One factorisation already yields both the numerator and the denominator
   (eq. 8-10: one LU, one solve), yet separate adaptive runs would redo it.
   Memoise the full nodal evaluation per (f, g, s): the numerator and
   denominator evaluators draw from one table, so every point the two runs
   share — all of the first pass, since the initial scale and point set
   depend only on the problem — costs a single factorisation.  Mutex-guarded
   so multi-domain interpolation can call it concurrently. *)
let of_nodal_shared ?(batch = batch_default) problem =
  let table : (float * float * float * float, Nodal.value) Hashtbl.t =
    Hashtbl.create 256
  in
  let lock = Mutex.create () in
  let misses = Atomic.make 0 and hits = Atomic.make 0 in
  (* Batched pass warm-up: compute every not-yet-memoised point of a chunk
     through [Nodal.eval_batch] (one elimination-program decode for the
     whole chunk) and seed the table, so the subsequent per-point [eval]
     calls all hit.  Counter shape: each prefetched point is a memo miss —
     the same misses a per-point sweep would record, just ahead of the
     calls — and the later [eval] calls are hits.  Keys are the exact
     (f, g, re, im) quadruples of the points handed in, so [Interp.run]
     must prefetch with the same [Uc.point] values it evaluates. *)
  let prefetch =
    if not (batch && Nodal.kernel_enabled problem) then None
    else
      Some
        (fun ~f ~g (points : Complex.t array) ->
          let seen = Hashtbl.create (2 * Array.length points) in
          let missing =
            Array.to_list points
            |> List.filter (fun (s : Complex.t) ->
                   let key = (f, g, s.Complex.re, s.Complex.im) in
                   if Hashtbl.mem seen key then false
                   else begin
                     Hashtbl.add seen key ();
                     Mutex.lock lock;
                     let cached = Hashtbl.mem table key in
                     Mutex.unlock lock;
                     not cached
                   end)
            |> Array.of_list
          in
          if Array.length missing > 0 then begin
            (* Compute outside the lock, like the per-point miss path:
               concurrent domains may duplicate a point's work, but
               identical results make the race benign. *)
            let vals = Nodal.eval_batch ~f ~g problem missing in
            Mutex.lock lock;
            Array.iteri
              (fun i (s : Complex.t) ->
                Atomic.incr misses;
                Obs.incr Obs.memo_misses;
                Hashtbl.replace table (f, g, s.Complex.re, s.Complex.im) vals.(i))
              missing;
            Mutex.unlock lock
          end)
  in
  let shared_eval ~f ~g (s : Complex.t) =
    let key = (f, g, s.Complex.re, s.Complex.im) in
    let cached =
      Mutex.lock lock;
      let c = Hashtbl.find_opt table key in
      Mutex.unlock lock;
      c
    in
    match cached with
    | Some v ->
        Atomic.incr hits;
        Obs.incr Obs.memo_hits;
        v
    | None ->
        (* Compute outside the lock: concurrent domains may duplicate a
           point's work, but identical results make the race benign. *)
        let v = Nodal.eval ~f ~g problem s in
        Atomic.incr misses;
        Obs.incr Obs.memo_misses;
        Mutex.lock lock;
        Hashtbl.replace table key v;
        Mutex.unlock lock;
        v
  in
  let mk ~num =
    let counter = Atomic.make 0 in
    let eval ~f ~g s =
      Atomic.incr counter;
      Obs.incr Obs.evaluator_calls;
      (* Poisoned points carry NaN keys, which never match in the memo
         (NaN compares unequal to itself) — an injected fault can therefore
         never contaminate the shared table. *)
      let s = inject_faults s in
      let v = shared_eval ~f ~g s in
      if num then v.Nodal.num else v.Nodal.den
    in
    {
      eval;
      prefetch;
      gdeg = (if num then Nodal.num_gdeg problem else Nodal.den_gdeg problem);
      order_bound = Nodal.order_bound problem;
      f0 = 1. /. Nodal.mean_capacitance problem;
      g0 = 1. /. Nodal.mean_conductance problem;
      name = (if num then "num" else "den");
      counter;
      guarded = true;
      kernel = Nodal.kernel_enabled problem;
    }
  in
  {
    snum = mk ~num:true;
    sden = mk ~num:false;
    factorizations = (fun () -> Atomic.get misses);
    hits = (fun () -> Atomic.get hits);
  }

let of_epoly ?(name = "poly") ~gdeg ~f0 ~g0 p =
  if Epoly.degree p > gdeg then
    invalid_arg "Evaluator.of_epoly: degree exceeds homogeneity degree";
  let counter = Atomic.make 0 in
  let eval ~f ~g s =
    Atomic.incr counter;
    Obs.incr Obs.evaluator_calls;
    (* Scale coefficients exactly: p_i -> p_i f^i g^(gdeg-i), then Horner. *)
    let coeffs = Epoly.coeffs p in
    let scaled =
      Array.mapi
        (fun i c ->
          Ef.mul c (Ef.mul (Ef.float_pow_int f i) (Ef.float_pow_int g (gdeg - i))))
        coeffs
    in
    Epoly.eval (Epoly.of_coeffs scaled) (Ec.of_complex s)
  in
  {
    eval;
    prefetch = None;
    gdeg;
    order_bound = Epoly.degree p;
    f0;
    g0;
    name;
    counter;
    guarded = false;
    kernel = false;
  }

let eval_count t = Atomic.get t.counter
