(** The evaluation-side interface of the interpolation engines.

    An evaluator computes one scaled network-function polynomial
    [P'(s) = sum_i p_i f^i g^(gdeg - i) s^i] at arbitrary complex points —
    in practice by assembling the scaled nodal matrix and running a sparse
    LU (eqs. 7-10), but the engines only see this record, which keeps them
    testable against synthetic polynomials with known coefficients. *)

type t = {
  eval : f:float -> g:float -> Complex.t -> Symref_numeric.Extcomplex.t;
      (** Value of the scaled polynomial at a point. *)
  prefetch : (f:float -> g:float -> Complex.t array -> unit) option;
      (** Warm the evaluator for a whole batch of points before the
          per-point [eval] calls — {!of_nodal_shared} backs this with the
          batched structure-of-arrays kernel
          ({!Symref_mna.Nodal.eval_batch}), computing every not-yet-memoised
          point of the batch in one elimination-program replay and seeding
          the memo table.  Purely a cost hook: values, fault-hook firing
          order and the memo-miss count are bit-identical with or without
          it, and [None] (synthetic and unshared evaluators, or batching
          disabled) simply means per-point evaluation.  Callers must pass
          the exact point values they will evaluate — the memo key is the
          (f, g, re, im) quadruple. *)
  gdeg : int;
      (** Conductance-homogeneity degree: the [s^i] coefficient carries
          [g^(gdeg - i)] under conductance scaling (eq. 11). *)
  order_bound : int;
      (** Upper estimate of the polynomial order (number of capacitors
          capped by the matrix dimension, paper §2.1). *)
  f0 : float;  (** heuristic first frequency scale: [1 / mean C] (§3.2) *)
  g0 : float;  (** heuristic first conductance scale: [1 / mean G] (§3.2) *)
  name : string;  (** for reports: ["num"], ["den"], ... *)
  counter : int Atomic.t;
      (** Incremented on every [eval] call by the smart constructors below;
          each call is one LU decomposition when the evaluator comes from
          {!of_nodal} — the paper's cost metric.  Atomic so multi-domain
          interpolation ({!Interp.run}[ ~domains]) counts exactly. *)
  guarded : bool;
      (** [true] when a zero value may mean a {e failed factorisation}
          (singular matrix at that point) rather than a true polynomial
          value — the nodal constructors.  {!Interp.run} retries such
          evaluations at perturbed points; synthetic {!of_epoly} evaluators
          are unguarded, so legitimate roots on the unit circle are never
          perturbed. *)
  kernel : bool;
      (** [true] when evaluations may run through the fused unboxed
          refactor+solve kernel ({!Symref_linalg.Kernel}) — a pure cost
          property ({!Symref_mna.Nodal.kernel_enabled}); results are
          bit-identical either way.  Surfaced in trace spans and bench
          reports. *)
}

val of_nodal : Symref_mna.Nodal.t -> num:bool -> t
(** The numerator ([num:true]) or denominator evaluator of a prepared nodal
    problem.  Each call performs one sparse LU factorisation (and solve, for
    the numerator). *)

type shared = {
  snum : t;  (** numerator evaluator over the shared table *)
  sden : t;  (** denominator evaluator over the shared table *)
  factorizations : unit -> int;
      (** distinct (f, g, s) points actually factorised so far *)
  hits : unit -> int;  (** evaluations served from the table *)
}

val batch_default : bool
(** [true] unless the [SYMREF_NO_BATCH] environment variable is set — the
    default for {!of_nodal_shared}'s [?batch].  Like [SYMREF_NO_KERNEL],
    a pure cost switch for A/B gating outside the API: per-point results
    are bit-identical either way. *)

val of_nodal_shared : ?batch:bool -> Symref_mna.Nodal.t -> shared
(** Numerator and denominator evaluators drawing from one memoised
    {!Symref_mna.Nodal.eval} per (f, g, s): one factorisation already yields
    both values (eqs. 8-10), so every interpolation point the two adaptive
    runs share — the whole first pass in particular — is factorised once
    instead of twice.  Thread-safe; per-evaluator call counters keep the
    paper's cost metric unchanged.

    [batch] (default {!batch_default}) backs the evaluators' [prefetch]
    hook with {!Symref_mna.Nodal.eval_batch}, so an interpolation pass that
    prefetches its point set replays the elimination program once per
    chunk instead of once per point.  With batching the memo-hit/miss
    {e split} shifts — prefetched points are misses up front, the [eval]
    calls then all hit — but the miss count (= factorisations, the paper's
    cost metric) and every computed value stay identical. *)

val of_epoly :
  ?name:string -> gdeg:int -> f0:float -> g0:float -> Symref_poly.Epoly.t -> t
(** Synthetic evaluator around known extended-range coefficients, applying
    the homogeneous scaling law exactly — the engines' unit-test oracle. *)

val eval_count : t -> int
(** [!(t.counter)]. *)
