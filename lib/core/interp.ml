module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Uc = Symref_dft.Unit_circle
module Dft = Symref_dft.Dft
module Epoly = Symref_poly.Epoly
module Obs = Symref_obs.Metrics
module Tr = Symref_obs.Trace

type t = {
  scale : Scaling.pair;
  base : int;
  normalized : Ec.t array;
  points : int;
  evaluations : int;
  ceiling : Ef.t;
  singular_retries : int;
  nonfinite_retries : int;
  retry_giveups : int;
}

(* Bring extended-range values to a common binary exponent and hand doubles
   to the IDFT; the common factor is reapplied afterwards.  This emulates the
   paper's double-precision pipeline (including its 1e-13 noise floor) while
   never over/underflowing on wild scale factors. *)
let max_exponent values =
  Array.fold_left (fun acc (v : Ec.t) -> if Ec.is_zero v then acc else Int.max acc v.Ec.e)
    min_int values

let to_doubles ~max_e values =
  Array.map
    (fun (v : Ec.t) ->
      if Ec.is_zero v then Complex.zero
      else
        let shift = v.Ec.e - max_e in
        if shift < -1000 then Complex.zero
        else
          {
            Complex.re = Float.ldexp v.Ec.c.Complex.re shift;
            im = Float.ldexp v.Ec.c.Complex.im shift;
          })
    values

let of_doubles ~max_e coeffs =
  Array.map
    (fun (c : Complex.t) ->
      if c = Complex.zero then Ec.zero else Ec.make ~c ~e:max_e)
    coeffs

let idft_extended values =
  let max_e = max_exponent values in
  if max_e = min_int then Array.map (fun _ -> Ec.zero) values
  else begin
    let doubles = to_doubles ~max_e values in
    let inverse =
      if Symref_dft.Fft.is_pow2 (Array.length doubles) then Symref_dft.Fft.inverse
      else Dft.inverse
    in
    of_doubles ~max_e (inverse doubles)
  end

(* Half-spectrum variant: [half] holds the (k/2)+1 upper-half-circle values
   of a conjugate-symmetric pass.  [Ec.conj] preserves both the exponent and
   zero-ness, so the common exponent over the half array equals the one the
   completed full array would produce, and conjugating after the ldexp shift
   is bit-identical to shifting the conjugate ([ldexp] negates exactly).
   Power-of-two [k] therefore completes the {e doubles} by conjugation and
   keeps [Fft.inverse] bit-identical to the full path; other [k] take
   [Dft.inverse_real_spectrum], which folds each conjugate pair before
   summing — half the multiply-adds, coefficients equal to a few ulp (and
   imaginary round-off residue cancelled exactly rather than approximately,
   which is why {!Naive} opts out: its garbage diagnostic reads that
   residue). *)
let idft_extended_half ~k half =
  let max_e = max_exponent half in
  if max_e = min_int then Array.make k Ec.zero
  else begin
    let doubles = to_doubles ~max_e half in
    let coeffs =
      if Symref_dft.Fft.is_pow2 k then
        Symref_dft.Fft.inverse (Dft.complete_real_spectrum k doubles)
      else Dft.inverse_real_spectrum k doubles
    in
    of_doubles ~max_e coeffs
  end

let run ?(conj_symmetry = true) ?(full_spectrum_idft = false) ?(known = [])
    ?(base = 0) ?(domains = 1) ?(domain_strategy = `Pool) (ev : Evaluator.t)
    ~(scale : Scaling.pair) ~k =
  if k < 1 then invalid_arg "Interp.run: k must be >= 1";
  if base < 0 then invalid_arg "Interp.run: base must be >= 0";
  if domains < 1 then invalid_arg "Interp.run: domains must be >= 1";
  Tr.span ~cat:"interp"
    ~args:
      [
        ("k", string_of_int k);
        ("base", string_of_int base);
        ("domains", string_of_int domains);
        ("evaluator", ev.Evaluator.name);
        ("kernel", string_of_bool ev.Evaluator.kernel);
      ]
    "interp.batch"
  @@ fun () ->
  (* Renormalise the known (denormalised) coefficients to this pass's scale
     and build the deflation polynomial of eq. 17. *)
  let deflation =
    match known with
    | [] -> None
    | _ :: _ ->
        let top = List.fold_left (fun acc (i, _) -> Int.max acc i) 0 known in
        let arr = Array.make (top + 1) Ef.zero in
        List.iter
          (fun (i, p) ->
            arr.(i) <- Scaling.normalize ~gdeg:ev.Evaluator.gdeg scale i p)
          known;
        Some (Epoly.of_coeffs arr)
  in
  (* Guard counters for this pass (atomic: points fan out over domains). *)
  let singular_retries = Atomic.make 0
  and nonfinite_retries = Atomic.make 0
  and retry_giveups = Atomic.make 0 in
  (* A guarded evaluator's zero value may mean a failed factorisation
     (singular matrix at that point — possibly injected), and a non-finite
     one arithmetic contamination.  Either way the point itself carries no
     information, so recover it from a symmetric pair of slightly rotated
     unit-circle points: the average of [P(s e^{+i delta})] and
     [P(s e^{-i delta})] cancels the first-order term of the rotation,
     leaving an [O(delta^2 P'')] bias — orders of magnitude below even the
     weakest established coefficient's validity floor, where a one-sided
     perturbation would visibly shift band-edge coefficients.  The rotation
     widens tenfold per attempt in case the neighbourhood itself is
     degenerate.  Deterministic (the rotation depends only on the attempt
     index), so multi-domain runs stay bit-identical. *)
  let max_point_retries = 3 in
  let classify (raw : Ec.t) =
    if Ec.is_zero raw then `Singular
    else
      let c = raw.Ec.c in
      if Float.is_finite c.Complex.re && Float.is_finite c.Complex.im then `Ok
      else `Nonfinite
  in
  (* Pure per-point evaluation: (collected value, pre-deflation magnitude).
     Purity is what lets the points fan out across domains bit-identically —
     every point computes the same value whichever domain runs it, and the
     ceiling is an order-independent maximum. *)
  let value_at j =
    let s0 = Uc.point k j in
    let eval_at s = ev.Evaluator.eval ~f:scale.Scaling.f ~g:scale.Scaling.g s in
    let count_retry = function
      | `Singular ->
          Atomic.incr singular_retries;
          Obs.incr Obs.guard_singular_retries
      | `Nonfinite ->
          Atomic.incr nonfinite_retries;
          Obs.incr Obs.guard_nonfinite_retries
    in
    (* [last] is the best value seen so far: a one-sided perturbed value
       when only half a pair succeeded, else whatever the failed evaluation
       returned — a give-up keeps it rather than inventing anything. *)
    let rec recover last attempt cls =
      if attempt >= max_point_retries then begin
        Atomic.incr retry_giveups;
        Obs.incr Obs.guard_retry_giveups;
        last
      end
      else begin
        count_retry cls;
        let delta = 1e-9 *. (10. ** float_of_int attempt) in
        let rot = { Complex.re = Float.cos delta; im = Float.sin delta } in
        let vp = eval_at (Complex.mul s0 rot) in
        let vm = eval_at (Complex.mul s0 (Complex.conj rot)) in
        match (classify vp, classify vm) with
        | `Ok, `Ok ->
            Ec.mul_complex (Ec.add vp vm) { Complex.re = 0.5; im = 0. }
        | `Ok, ((`Singular | `Nonfinite) as bad) -> recover vp (attempt + 1) bad
        | ((`Singular | `Nonfinite) as bad), `Ok -> recover vm (attempt + 1) bad
        | ((`Singular | `Nonfinite) as bad), _ -> recover last (attempt + 1) bad
      end
    in
    let raw0 = eval_at s0 in
    let raw =
      match classify raw0 with
      | `Ok -> raw0
      | (`Singular | `Nonfinite) when not ev.Evaluator.guarded ->
          (* A synthetic polynomial's zero is a true value, never a failed
             factorisation: collect it as-is. *)
          raw0
      | (`Singular | `Nonfinite) as cls -> recover raw0 0 cls
    in
    let mag = Ec.norm raw in
    let deflated =
      match deflation with
      | None -> raw
      | Some poly -> Ec.sub raw (Epoly.eval poly (Ec.of_complex s0))
    in
    let v =
      if base = 0 then deflated
      else
        (* Divide by s^base: multiply by the conjugate root w^(-j*base).
           A recovered value approximates P at the nominal point, so the
           nominal root is the right divisor. *)
        Ec.mul_complex deflated (Uc.point k (-j * base))
    in
    (v, mag)
  in
  (* The unit-circle points are embarrassingly parallel; [domains = 1]
     (the default) stays on the calling domain.  Work is split into [d]
     index-ordered chunks whichever strategy runs them, so results are
     bit-identical to the sequential path.  [`Pool] (default) reuses the
     persistent {!Domain_pool} workers across passes; [`Spawn] pays a fresh
     [Domain.spawn] per pass and exists as the benchmark baseline that
     motivated the pool. *)
  (* Warm the evaluator's memo for a contiguous index range through the
     batched kernel before the per-point loop: the exact [Uc.point] values
     the loop evaluates, so the memo keys match bit-for-bit.  Guard-retry
     points are perturbed off the circle and stay on the per-point path. *)
  let prefetch_range lo hi =
    match ev.Evaluator.prefetch with
    | None -> ()
    | Some pf ->
        pf ~f:scale.Scaling.f ~g:scale.Scaling.g
          (Array.init (hi - lo) (fun i -> Uc.point k (lo + i)))
  in
  let eval_many count =
    if domains <= 1 || count <= 1 then begin
      prefetch_range 0 count;
      Array.init count value_at
    end
    else begin
      let d = Int.min domains count in
      let results = Array.make count (Ec.zero, Ef.zero) in
      let chunk = (count + d - 1) / d in
      let worker i () =
        let lo = i * chunk in
        prefetch_range lo (Int.min count (lo + chunk));
        for j = lo to Int.min count (lo + chunk) - 1 do
          results.(j) <- value_at j
        done
      in
      (match domain_strategy with
      | `Pool -> Domain_pool.parallel (Array.init d worker)
      | `Spawn ->
          let spawned =
            List.init (d - 1) (fun i -> Domain.spawn (worker (i + 1)))
          in
          worker 0 ();
          List.iter Domain.join spawned);
      results
    end
  in
  let collect pairs =
    Array.fold_left
      (fun acc (_, mag) -> if Ef.compare_mag mag acc > 0 then mag else acc)
      Ef.zero pairs
  in
  let normalized, ceiling, evaluations =
    if conj_symmetry then begin
      (* P(conj s) = conj (P s) for real circuits: evaluate only the upper
         half circle (same symmetry as Dft.complete_real_spectrum, here on
         extended-range values). *)
      let half = eval_many ((k / 2) + 1) in
      let coeffs =
        if full_spectrum_idft then
          idft_extended
            (Array.init k (fun i ->
                 if i <= k / 2 then fst half.(i) else Ec.conj (fst half.(k - i))))
        else idft_extended_half ~k (Array.map fst half)
      in
      (coeffs, collect half, (k / 2) + 1)
    end
    else begin
      let all = eval_many k in
      (idft_extended (Array.map fst all), collect all, k)
    end
  in
  Obs.add Obs.points_evaluated evaluations;
  {
    scale;
    base;
    normalized;
    points = k;
    evaluations;
    ceiling;
    singular_retries = Atomic.get singular_retries;
    nonfinite_retries = Atomic.get nonfinite_retries;
    retry_giveups = Atomic.get retry_giveups;
  }
