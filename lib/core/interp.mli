(** One polynomial interpolation pass: evaluate the (scaled) network
    polynomial at [k] points on the unit circle and recover coefficients by
    inverse DFT (paper §2.1, eqs. 4-6).

    Supports the §3.3 problem reduction (eq. 17): when some coefficients are
    already known, the pass evaluates
    [P'(s) = (P(s) - sum_known p_i s^i) / s^base] and interpolates only the
    [k] unknown coefficients starting at power [base], shrinking the number
    of LU decompositions accordingly.

    Values are collected in extended range and brought to a common binary
    exponent before the double-precision IDFT, so badly-scaled passes
    degrade exactly as on the paper's 16-digit machine instead of
    overflowing. *)

type t = {
  scale : Scaling.pair;
  base : int;  (** power of [s] of the first recovered coefficient *)
  normalized : Symref_numeric.Extcomplex.t array;
      (** [normalized.(i)] is the coefficient of [s^(base+i)] {e at the
          pass's normalisation}. *)
  points : int;       (** interpolation points used, [k] *)
  evaluations : int;  (** LU evaluations actually performed (conjugate
                          symmetry halves this) *)
  ceiling : Symref_numeric.Extfloat.t;
      (** largest pre-deflation value magnitude over the interpolation
          points: the round-off noise in the recovered coefficients is
          [~1e-16 * ceiling] regardless of deflation, which anchors the
          validity floor (see {!Band.detect}) *)
  singular_retries : int;
      (** singular (zero) evaluations of a {e guarded} evaluator retried at
          perturbed points in this pass (see the recovery note below) *)
  nonfinite_retries : int;  (** non-finite evaluations retried likewise *)
  retry_giveups : int;
      (** points that stayed singular/non-finite after the retry budget
          (their last value was collected as-is) *)
}

val run :
  ?conj_symmetry:bool ->
  ?full_spectrum_idft:bool ->
  ?known:(int * Symref_numeric.Extfloat.t) list ->
  ?base:int ->
  ?domains:int ->
  ?domain_strategy:[ `Pool | `Spawn ] ->
  Evaluator.t ->
  scale:Scaling.pair ->
  k:int ->
  t
(** [run ev ~scale ~k] interpolates [k] coefficients.  [known] lists
    {e denormalised} coefficients to deflate (eq. 17); [base] (default [0])
    is the first power to recover.  [conj_symmetry] (default [true])
    evaluates only the upper half circle and completes by conjugation
    (real-coefficient polynomials, §2.1); the inverse transform then also
    runs on the half spectrum ({!Dft.inverse_real_spectrum}), folding each
    conjugate pair before summation — about half the IDFT multiply-adds.
    Power-of-two [k] keeps the FFT on the completed spectrum and is
    bit-identical to previous releases; other [k] agree to a few ulp.
    [full_spectrum_idft] (default [false]) forces the conjugate-completed
    full transform of previous releases even under [conj_symmetry] — the
    approximate (rather than exact) cancellation of conjugate pairs leaves
    the imaginary round-off residue that {!Naive.garbage_fraction} reads as
    its failure signature.  [domains] (default [1]) fans the
    independent point evaluations out over that many OCaml domains; results,
    ceiling and evaluation counts are bit-identical to the sequential run
    (the evaluator must be thread-safe when [domains > 1], which all
    {!Evaluator} constructors are).  The IDFT stays sequential.
    [domain_strategy] selects how the fan-out runs: [`Pool] (default)
    reuses the persistent {!Domain_pool} workers across passes; [`Spawn]
    pays a fresh [Domain.spawn] per pass (the pre-pool behaviour, kept as a
    benchmark baseline).  Both split the points into the same index-ordered
    chunks, so the choice never changes results.

    {b Singular-point recovery.}  When a {e guarded} evaluator (see
    {!Evaluator.t.guarded}) returns an exactly-zero or non-finite value —
    the scaled matrix was singular at that unit-circle point, whether
    structurally, through an injected fault, or by NaN contamination — the
    point is recovered from a symmetric pair of rotated positions:
    the average of [P(s e^{+i delta})] and [P(s e^{-i delta})] cancels the
    rotation's first-order error, leaving an [O(delta^2)] bias far below
    the sigma-digit validity floor of even band-edge coefficients.  Up to
    3 attempts with [delta = 1e-9 * 10^attempt] radians; a half-successful
    pair keeps its one good (first-order accurate) value as the fallback.
    Retries are counted in the [guard.*] metrics and the result's
    [singular_retries]/[nonfinite_retries]/[retry_giveups] fields; the
    policy is deterministic, so multi-domain runs stay bit-identical.
    @raise Invalid_argument when [k < 1], [base < 0] or [domains < 1]. *)
