module Ec = Symref_numeric.Extcomplex
module Ef = Symref_numeric.Extfloat

type t = {
  coeffs : Ec.t array;
  band : Band.t option;
  points : int;
  evaluations : int;
}

let run ?(conj_symmetry = true) ?(sigma = 6) (ev : Evaluator.t) =
  let k = ev.Evaluator.order_bound + 1 in
  (* Force the conjugate-completed full IDFT: its approximate pair
     cancellation is what leaves the imaginary round-off residue that
     [garbage_fraction] diagnoses; the half transform cancels pairs exactly
     and would erase the signature. *)
  let pass =
    Interp.run ~conj_symmetry ~full_spectrum_idft:true ev
      ~scale:{ Scaling.f = 1.; g = 1. } ~k
  in
  {
    coeffs = pass.Interp.normalized;
    band = Band.detect ~sigma ~base:0 pass.Interp.normalized;
    points = pass.Interp.points;
    evaluations = pass.Interp.evaluations;
  }

let garbage_fraction t =
  let n = Array.length t.coeffs in
  if n = 0 then 0.
  else begin
    let bad = ref 0 in
    Array.iter
      (fun c ->
        let re = Ef.abs (Ec.re c) and im = Ef.abs (Ec.im c) in
        if (not (Ef.is_zero im)) && Ef.compare_mag (Ef.mul_float im 10.) re >= 0 then
          incr bad)
      t.coeffs;
    float_of_int !bad /. float_of_int n
  end
