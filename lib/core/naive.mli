(** The conventional method (paper §2): interpolation points on the unit
    circle, no scaling.  Kept as the baseline whose failure on integrated
    circuits (Table 1a) motivates the adaptive algorithm: for typical
    magnitudes all but the lowest-order coefficients drown in round-off and
    acquire imaginary parts comparable to their real parts. *)

type t = {
  coeffs : Symref_numeric.Extcomplex.t array;
      (** raw interpolated coefficients, complex as in Table 1a *)
  band : Band.t option;  (** which of them clear the error level (eq. 12) *)
  points : int;
  evaluations : int;
}

val run : ?conj_symmetry:bool -> ?sigma:int -> Evaluator.t -> t
(** Interpolate with [order_bound + 1] unit-circle points and unit scale
    factors.  [sigma] (default 6) only affects the reported band.  Always
    uses the conjugate-completed {e full} IDFT
    ([Interp.run ~full_spectrum_idft:true]): the half-spectrum transform
    cancels conjugate pairs exactly and would erase the imaginary residue
    that {!garbage_fraction} diagnoses. *)

val garbage_fraction : t -> float
(** Fraction of coefficients whose imaginary part is at least a tenth of
    their real part — the paper's symptom that "many coefficients have a
    non-zero imaginary component ... the same order of magnitude as the real
    parts". *)
