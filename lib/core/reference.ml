module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Epoly = Symref_poly.Epoly
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Tr = Symref_obs.Trace

type t = {
  num : Adaptive.result;
  den : Adaptive.result;
  input : Nodal.input;
  output : Nodal.output;
  config : Adaptive.config;
  problem : Nodal.t;
}

(* The numerator and denominator runs draw from one memoised evaluation per
   point ([share], default): every (f, g, s) the two adaptive schedules have
   in common — the entire first pass, whose scale and point set depend only
   on the problem — costs a single LU factorisation that yields both values.
   [reuse] (default) additionally enables the symbolic/numeric factorisation
   split inside {!Symref_mna.Nodal.make}.  Both switches change cost only,
   never values. *)
let generate ?(config = Adaptive.default_config) ?(share = true) ?(reuse = true)
    ?kernel ?batch ?check circuit ~input ~output =
  let problem = Nodal.make ~reuse ?kernel circuit ~input ~output in
  let batch_on =
    (match batch with Some b -> b | None -> Evaluator.batch_default)
    && share
    && Nodal.kernel_enabled problem
  in
  Tr.span ~cat:"reference"
    ~args:
      [
        ("dim", string_of_int (Nodal.dimension problem));
        ("share", string_of_bool share);
        ("reuse", string_of_bool reuse);
        ("kernel", string_of_bool (Nodal.kernel_enabled problem));
        ("batch", string_of_bool batch_on);
      ]
    "reference.generate"
  @@ fun () ->
  let ev_num, ev_den =
    if share then
      let s = Evaluator.of_nodal_shared ?batch problem in
      (s.Evaluator.snum, s.Evaluator.sden)
    else
      (Evaluator.of_nodal problem ~num:true, Evaluator.of_nodal problem ~num:false)
  in
  (* Cooperative cancellation: every evaluation — the unit of cost — first
     runs the caller's check, which may raise (e.g. a deadline exceeded).
     The evaluators are wrapped here rather than hooking Adaptive so the
     engines stay oblivious to scheduling concerns.  The prefetch hook is
     wrapped too: a whole-chunk warm-up is many evaluations' worth of work,
     so it must observe cancellation at least once. *)
  let ev_num, ev_den =
    match check with
    | None -> (ev_num, ev_den)
    | Some chk ->
        let wrap (ev : Evaluator.t) =
          {
            ev with
            Evaluator.eval =
              (fun ~f ~g s ->
                chk ();
                ev.Evaluator.eval ~f ~g s);
            Evaluator.prefetch =
              Option.map
                (fun pf ~f ~g points ->
                  chk ();
                  pf ~f ~g points)
                ev.Evaluator.prefetch;
          }
        in
        (wrap ev_num, wrap ev_den)
  in
  let num = Tr.span ~cat:"reference" "reference.num" (fun () -> Adaptive.run ~config ev_num) in
  let den = Tr.span ~cat:"reference" "reference.den" (fun () -> Adaptive.run ~config ev_den) in
  { num; den; input; output; config; problem }

let numerator t = Epoly.of_coeffs t.num.Adaptive.coeffs
let denominator t = Epoly.of_coeffs t.den.Adaptive.coeffs

let eval t s =
  let z = Ec.of_complex s in
  let n = Epoly.eval (numerator t) z and d = Epoly.eval (denominator t) z in
  if Ec.is_zero d then Complex.{ re = infinity; im = 0. }
  else Ec.to_complex (Ec.div n d)

let dc_gain t =
  let n0 = Epoly.coeff (numerator t) 0 and d0 = Epoly.coeff (denominator t) 0 in
  if Ef.is_zero d0 then
    (* H(0) = n0 / 0: the sign of the divergence is the sign of n0; 0/0 is
       genuinely indeterminate. *)
    if Ef.is_zero n0 then Float.nan
    else if Ef.sign n0 > 0 then infinity
    else neg_infinity
  else Ef.to_float (Ef.div n0 d0)

type bode_point = { freq_hz : float; mag_db : float; phase_deg : float }

let bode t freqs =
  let np = numerator t and dp = denominator t in
  let raw =
    Array.map
      (fun f ->
        let w = 2. *. Float.pi *. f in
        let n = Epoly.eval_jomega np w and d = Epoly.eval_jomega dp w in
        let mag_db = 20. *. (Ec.log10_norm n -. Ec.log10_norm d) in
        let phase = (Ec.arg n -. Ec.arg d) *. 180. /. Float.pi in
        (f, mag_db, phase))
      freqs
  in
  let phases = Ac.unwrap_phase_deg (Array.map (fun (_, _, p) -> p) raw) in
  Array.mapi
    (fun i (f, m, _) -> { freq_hz = f; mag_db = m; phase_deg = phases.(i) })
    raw

let bode_vs_simulator t (sim : Ac.bode_point array) =
  let ours = bode t (Array.map (fun p -> p.Ac.freq_hz) sim) in
  let dmag = ref 0. and dph = ref 0. in
  Array.iteri
    (fun i p ->
      let o = ours.(i) in
      dmag := Float.max !dmag (Float.abs (o.mag_db -. p.Ac.mag_db));
      (* Phase curves are unwrapped independently; compare modulo 360. *)
      let d = Float.abs (o.phase_deg -. p.Ac.phase_deg) in
      let d = Float.rem d 360. in
      let d = Float.min d (360. -. d) in
      dph := Float.max !dph d)
    sim;
  (!dmag, !dph)

let total_evaluations t = t.num.Adaptive.evaluations + t.den.Adaptive.evaluations

(* --- health ------------------------------------------------------------- *)

type health = {
  converged : bool;
  verified : bool;
  max_residual : float;
  probes : int;
  singular_retries : int;
  nonfinite_retries : int;
  retry_giveups : int;
  healthy : bool;
}

let health ?tolerance t =
  (* Fresh unshared evaluators: the verification probes must not draw from
     any table the generation populated. *)
  let vn = Verify.check ?tolerance (Evaluator.of_nodal t.problem ~num:true) t.num in
  let vd = Verify.check ?tolerance (Evaluator.of_nodal t.problem ~num:false) t.den in
  let dn = t.num.Adaptive.diagnosis and dd = t.den.Adaptive.diagnosis in
  let converged = t.num.Adaptive.converged && t.den.Adaptive.converged in
  let verified = vn.Verify.passed && vd.Verify.passed in
  let retry_giveups = dn.Adaptive.retry_giveups + dd.Adaptive.retry_giveups in
  {
    converged;
    verified;
    max_residual =
      Float.max vn.Verify.max_relative_residual vd.Verify.max_relative_residual;
    probes = vn.Verify.probes + vd.Verify.probes;
    singular_retries = dn.Adaptive.singular_retries + dd.Adaptive.singular_retries;
    nonfinite_retries =
      dn.Adaptive.nonfinite_retries + dd.Adaptive.nonfinite_retries;
    retry_giveups;
    healthy = converged && verified && retry_giveups = 0;
  }

let health_to_strings h =
  [
    ("converged", string_of_bool h.converged);
    ("verified", string_of_bool h.verified);
    ("max_residual", Printf.sprintf "%.3e" h.max_residual);
    ("probes", string_of_int h.probes);
    ("singular_retries", string_of_int h.singular_retries);
    ("nonfinite_retries", string_of_int h.nonfinite_retries);
    ("retry_giveups", string_of_int h.retry_giveups);
    ("healthy", string_of_bool h.healthy);
  ]
