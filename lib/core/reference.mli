(** The public façade: numerical references (network-function coefficients)
    for a circuit, computed with the adaptive-scaling algorithm.

    This is what SBG/SDG error control consumes (paper eq. 3): the value of
    every coefficient of [H(s) = N(s) / D(s)] at the design point. *)

module Ef = Symref_numeric.Extfloat

type t = {
  num : Adaptive.result;
  den : Adaptive.result;
  input : Symref_mna.Nodal.input;
  output : Symref_mna.Nodal.output;
  config : Adaptive.config;
  problem : Symref_mna.Nodal.t;
      (** the prepared nodal problem the references were generated from —
          what {!health} builds its fresh verification evaluators on *)
}

val generate :
  ?config:Adaptive.config ->
  ?share:bool ->
  ?reuse:bool ->
  ?kernel:bool ->
  ?batch:bool ->
  ?check:(unit -> unit) ->
  Symref_circuit.Netlist.t ->
  input:Symref_mna.Nodal.input ->
  output:Symref_mna.Nodal.output ->
  t
(** Runs the adaptive algorithm on the numerator and the denominator.
    [share] (default [true]) lets the two runs draw from one memoised
    evaluation per point — one factorisation yields both values (eq. 8-10);
    [reuse] (default [true]) enables the symbolic/numeric factorisation
    split per scale pair (see {!Symref_mna.Nodal.make}); [kernel] (default
    [true] unless [SYMREF_NO_KERNEL] is set) runs replays through the
    fused unboxed refactor+solve engine on per-domain workspaces
    ({!Symref_linalg.Kernel}); [batch] (default [true] unless
    [SYMREF_NO_BATCH] is set, effective only with [share] and the kernel)
    prefetches each interpolation pass through the batched
    structure-of-arrays engine — one elimination-program replay per chunk
    of points instead of one per point
    ({!Symref_mna.Nodal.eval_batch}).  All are pure cost switches: the
    returned coefficients are identical either way.
    [check] is a cooperative-cancellation hook run before {e every}
    evaluation (one LU decomposition each): raising from it aborts the
    generation with that exception — {!Symref_serve} uses it to enforce
    per-job wall-clock deadlines without killing the worker.  When [check]
    never raises the result is unchanged.
    @raise Symref_mna.Nodal.Unsupported outside the nodal class. *)

val numerator : t -> Symref_poly.Epoly.t
val denominator : t -> Symref_poly.Epoly.t

val eval : t -> Complex.t -> Complex.t
(** [H(s)] from the reference coefficients (extended-range Horner and
    division, rounded at the end). *)

val dc_gain : t -> float
(** [H(0) = n_0 / d_0].  When [d_0 = 0] the gain diverges: the result is
    [infinity] or [neg_infinity] following the sign of [n_0], and [nan]
    when [n_0 = 0] too (indeterminate). *)

type bode_point = { freq_hz : float; mag_db : float; phase_deg : float }

val bode : t -> float array -> bode_point array
(** Bode data from the interpolated coefficients (the "interpolated" curves
    of Fig. 2), with unwrapped phase. *)

val bode_vs_simulator :
  t -> Symref_mna.Ac.bode_point array -> float * float
(** [(max |delta mag|, max |delta phase|)] against an AC-simulator sweep of
    the same frequencies — the Fig. 2 agreement metric. *)

val total_evaluations : t -> int
(** LU decompositions spent for both polynomials. *)

(** {1 Health}

    The one-stop answer to "can I trust this result?" — convergence of
    both adaptive runs, an independent {!Verify.check} residual probe of
    both polynomials, and the guard's recovery counters
    (see [doc/robustness.mld]). *)

type health = {
  converged : bool;  (** both adaptive runs converged *)
  verified : bool;  (** both residual checks passed *)
  max_residual : float;
      (** worst relative residual over all probes, both sides *)
  probes : int;  (** verification probes evaluated, both sides *)
  singular_retries : int;
      (** singular points recovered at perturbed positions, both sides *)
  nonfinite_retries : int;  (** non-finite values recovered likewise *)
  retry_giveups : int;  (** points whose retry budget ran out *)
  healthy : bool;
      (** [converged && verified && retry_giveups = 0] — recovered retries
          do {e not} make a result unhealthy, exhausted budgets do *)
}

val health : ?tolerance:float -> t -> health
(** Re-evaluates the circuit at {!Verify}'s off-circle probe points with
    fresh (unshared, unmemoised) evaluators and combines the residuals with
    the generation's own diagnosis.  [tolerance] is {!Verify.check}'s
    (default [1e-4]). *)

val health_to_strings : health -> (string * string) list
(** Rendered key/value rows, in display order — shared by the [doctor]
    CLI report and the serve reply payload. *)
