module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Epoly = Symref_poly.Epoly

type report = {
  probes : int;
  max_relative_residual : float;
  passed : bool;
}

(* Off-circle probe points: radii away from 1 so these were never
   interpolation points, angles away from the axes. *)
let probe_points =
  [
    { Complex.re = 0.83 *. Float.cos 0.7; im = 0.83 *. Float.sin 0.7 };
    { Complex.re = 1.21 *. Float.cos 2.1; im = 1.21 *. Float.sin 2.1 };
    { Complex.re = -0.95 *. Float.cos 1.3; im = 0.95 *. Float.sin 1.3 };
  ]

let check ?(tolerance = 1e-4) (ev : Evaluator.t) (result : Adaptive.result) =
  let gdeg = result.Adaptive.gdeg in
  let scales =
    List.filter_map
      (fun p -> if p.Adaptive.fresh > 0 then Some p.Adaptive.scale else None)
      result.Adaptive.reports
  in
  let probes = ref 0 in
  let worst = ref 0. in
  (* A guarded evaluator's zero or non-finite probe value is a failed
     factorisation, not a property of the network function; skipping the
     probe (a zero denom below) would silently weaken the check exactly when
     the pipeline is degraded.  Both sides of the comparison are evaluated
     at the same point, so the probe simply moves to a nearby one — no
     bias, unlike the on-circle recovery of {!Interp.run} where the point
     is prescribed by the IDFT. *)
  let probe_value scale s0 =
    let eval s = ev.Evaluator.eval ~f:scale.Scaling.f ~g:scale.Scaling.g s in
    let good (v : Ec.t) =
      (not (Ec.is_zero v))
      && Float.is_finite v.Ec.c.Complex.re
      && Float.is_finite v.Ec.c.Complex.im
    in
    let rec go attempt s =
      let v = eval s in
      if good v || (not ev.Evaluator.guarded) || attempt >= 3 then (s, v)
      else begin
        let delta = 1e-6 *. (10. ** float_of_int attempt) in
        let rot = { Complex.re = Float.cos delta; im = Float.sin delta } in
        go (attempt + 1) (Complex.mul s rot)
      end
    in
    go 0 s0
  in
  List.iter
    (fun scale ->
      (* Renormalise the full coefficient set to this band's scale. *)
      let normalized =
        Epoly.of_coeffs
          (Array.mapi
             (fun i c -> Scaling.normalize ~gdeg scale i c)
             result.Adaptive.coeffs)
      in
      List.iter
        (fun s ->
          incr probes;
          let s, fresh = probe_value scale s in
          let reconstructed = Epoly.eval normalized (Ec.of_complex s) in
          let denom = Ec.norm fresh in
          if not (Ef.is_zero denom) then begin
            let residual =
              Ef.to_float (Ef.div (Ec.norm (Ec.sub reconstructed fresh)) denom)
            in
            if residual > !worst then worst := residual
          end)
        probe_points)
    scales;
  { probes = !probes; max_relative_residual = !worst; passed = !worst <= tolerance }
