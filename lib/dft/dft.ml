let transform ~sign (x : Complex.t array) =
  let k = Array.length x in
  if k = 0 then [||]
  else
    Array.init k (fun i ->
        let acc = ref Complex.zero in
        for j = 0 to k - 1 do
          (* w^(sign * i * j); indices into the root table keep the twiddle
             factors exact on the axes. *)
          let idx = sign * i * j mod k in
          acc := Complex.add !acc (Complex.mul x.(j) (Unit_circle.point k idx))
        done;
        !acc)

let forward x = transform ~sign:1 x

let inverse x =
  let k = Array.length x in
  if k = 0 then [||]
  else
    let inv_k = 1. /. float_of_int k in
    Array.map
      (fun z -> { Complex.re = z.Complex.re *. inv_k; im = z.Complex.im *. inv_k })
      (transform ~sign:(-1) x)

let complete_real_spectrum k half =
  if Array.length half <> (k / 2) + 1 then
    invalid_arg "Dft.complete_real_spectrum: need k/2 + 1 values";
  Array.init k (fun i -> if i <= k / 2 then half.(i) else Complex.conj half.(k - i))

let inverse_real_spectrum k half =
  if k < 1 then invalid_arg "Dft.inverse_real_spectrum: k must be >= 1";
  if Array.length half <> (k / 2) + 1 then
    invalid_arg "Dft.inverse_real_spectrum: need k/2 + 1 values";
  let inv_k = 1. /. float_of_int k in
  (* Highest index whose conjugate partner k-j is a distinct point; the
     self-conjugate points (j = 0 and, for even k, j = k/2) contribute on
     their own and are the only carriers of imaginary residue. *)
  let jmax = (k - 1) / 2 in
  Array.init k (fun i ->
      let re = ref half.(0).Complex.re and im = ref half.(0).Complex.im in
      for j = 1 to jmax do
        (* The pair x_j w^(-ij) + conj(x_j) w^(ij) is 2 Re (x_j w^(-ij))
           exactly — one twiddle lookup and one complex multiply where the
           full transform pays two of each and cancels only approximately. *)
        let t = Complex.mul half.(j) (Unit_circle.point k (-i * j mod k)) in
        re := !re +. (2. *. t.Complex.re)
      done;
      if k land 1 = 0 then begin
        (* w^(-i*k/2) = (-1)^i exactly. *)
        let m = half.(k / 2) in
        if i land 1 = 0 then begin
          re := !re +. m.Complex.re;
          im := !im +. m.Complex.im
        end
        else begin
          re := !re -. m.Complex.re;
          im := !im -. m.Complex.im
        end
      end;
      { Complex.re = !re *. inv_k; im = !im *. inv_k })
