(** Discrete Fourier transforms (direct [O(K^2)] evaluation).

    The inverse transform recovers polynomial coefficients from values at the
    roots of unity (eq. 5 of the paper):
    [p_i = (1/K) * sum_k P(s_k) * e^(-2*pi*j*i*k/K)].

    The direct algorithm is used for arbitrary [K] (the number of
    interpolation points is [n+1] for an [n]-th order polynomial, rarely a
    power of two); {!Fft} accelerates the power-of-two case.  In this
    application the LU decompositions behind each [P(s_k)] dominate the run
    time, not the transform. *)

val forward : Complex.t array -> Complex.t array
(** [forward p] evaluates the polynomial with coefficients [p] at the [K]
    roots of unity ([K = Array.length p]): [X.(k) = sum_i p.(i) w^(ik)],
    [w = e^(2*pi*j/K)]. *)

val inverse : Complex.t array -> Complex.t array
(** [inverse values] recovers coefficients from values at the roots of unity;
    inverse of {!forward}. *)

val complete_real_spectrum : int -> Complex.t array -> Complex.t array
(** [complete_real_spectrum k half] expands values at the first [k/2 + 1]
    roots of unity into all [k] values using the conjugate symmetry
    [P(conj s) = conj (P s)] that holds for real-coefficient polynomials.
    @raise Invalid_argument when [Array.length half <> k/2 + 1]. *)

val inverse_real_spectrum : int -> Complex.t array -> Complex.t array
(** [inverse_real_spectrum k half] recovers the [k] coefficients directly
    from the [k/2 + 1] upper-half-circle values of a conjugate-symmetric
    spectrum — the same answer as
    [inverse (complete_real_spectrum k half)] but with roughly half the
    multiply-adds: each conjugate pair [x_j w^(-ij) + conj(x_j) w^(ij)]
    is folded to [2 Re (x_j w^(-ij))] before it is summed.  The folding
    cancels each pair's imaginary parts {e exactly} (the full transform
    cancels them only to round-off), so the output's imaginary residue
    comes solely from the self-conjugate points [j = 0] and (even [k])
    [j = k/2]; results agree with the completed full transform to a few
    ulp, not to the bit.
    @raise Invalid_argument when [k < 1] or
    [Array.length half <> k/2 + 1]. *)
