(* Deterministic fault injection for the reference pipeline.

   The contract mirrors [Symref_obs.Metrics]: while disabled (the default),
   [fire] is one non-atomic bool load and a branch — no allocation, no
   atomic traffic — so injection points can live on the hottest paths of
   the pipeline.  While enabled, hit counting is [Atomic] so multi-domain
   interpolation decides every firing exactly once, and every decision is a
   pure function of (seed, point name, hit index): a chaos run replays
   bit-identically under any interleaving of the hits. *)

let enabled_flag = ref false
let seed_cell = ref 0

type plan =
  | Never
  | Times of { skip : int; count : int }
  | Every of int
  | Probability of float

type point = {
  p_name : string;
  hits : int Atomic.t;
  fired_count : int Atomic.t;
  mutable plan : plan;
  mutable payload : float;
}

let registry_lock = Mutex.create ()
let points : point list ref = ref []

let register name =
  let p =
    {
      p_name = name;
      hits = Atomic.make 0;
      fired_count = Atomic.make 0;
      plan = Never;
      payload = 0.;
    }
  in
  Mutex.lock registry_lock;
  points := p :: !points;
  Mutex.unlock registry_lock;
  p

let enabled () = !enabled_flag

let reset () =
  List.iter
    (fun p ->
      Atomic.set p.hits 0;
      Atomic.set p.fired_count 0;
      p.plan <- Never;
      p.payload <- 0.)
    !points

let enable ?(seed = 0) () =
  reset ();
  seed_cell := seed;
  enabled_flag := true

let disable () =
  enabled_flag := false;
  reset ()

let arm ?(payload = 0.) p plan =
  Atomic.set p.hits 0;
  Atomic.set p.fired_count 0;
  p.payload <- payload;
  p.plan <- plan

(* SplitMix64-style integer mixer: cheap, stateless, and good enough to
   decouple the per-hit uniforms of different points under one seed. *)
let mix64 x =
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94d049bb133111ebL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let uniform ~seed ~name ~hit =
  let h = Int64.of_int (Hashtbl.hash (seed, name, hit)) in
  let bits = Int64.to_int (Int64.logand (mix64 h) 0x1fffffffffffffL) in
  float_of_int bits /. 9007199254740992. (* / 2^53: uniform in [0, 1) *)

let decide p h =
  match p.plan with
  | Never -> false
  | Times { skip; count } -> h >= skip && h < skip + count
  | Every n -> n > 0 && h mod n = 0
  | Probability q -> uniform ~seed:!seed_cell ~name:p.p_name ~hit:h < q

let fire p =
  if not !enabled_flag then false
  else begin
    let h = Atomic.fetch_and_add p.hits 1 in
    let f = decide p h in
    if f then Atomic.incr p.fired_count;
    f
  end

let payload p = p.payload
let hits p = Atomic.get p.hits
let fired p = Atomic.get p.fired_count
let name p = p.p_name
let all () = List.rev !points
let find name = List.find_opt (fun p -> p.p_name = name) !points

exception Injected of string

let fail p = raise (Injected ("injected fault: " ^ p.p_name))
let sleep_payload p = if p.payload > 0. then Unix.sleepf (p.payload /. 1000.)

(* --- the pipeline's injection-point catalogue ----------------------------

   Registered here, like the Metrics catalogue, so the chaos tests, the CLI
   and [doc/robustness.mld] agree on one name per failure site. *)

let sparse_singular = register "sparse.singular"
let eval_nan = register "evaluator.nan"
let eval_raise = register "evaluator.raise"
let eval_delay = register "evaluator.delay"
let serve_drop = register "serve.drop_connection"
let serve_partial = register "serve.partial_write"

(* Fleet-level faults: a worker that answers slowly (the hedging trigger)
   and a worker that dies abruptly on the n-th job (the supervisor's
   restart trigger).  [serve.crash] is acted out by the daemon with
   [Unix._exit], so it only makes sense armed in a real worker process —
   the chaos bench arms it through the child's environment. *)
let serve_slow = register "serve.slow_worker"
let serve_crash = register "serve.crash"

(* --- environment arming --------------------------------------------------

   SYMREF_FAULT="point:key=val,...;point2:..." arms points at program start
   (the CLI calls [arm_from_env] before running a subcommand); SYMREF_FAULT_SEED
   alone enables the registry with nothing armed — the CI bit-identity gate
   runs exactly that configuration against a plain run. *)

let parse_spec spec =
  let parse_point part =
    match String.index_opt part ':' with
    | None -> failwith (Printf.sprintf "fault spec %S: missing ':'" part)
    | Some i ->
        let pname = String.sub part 0 i in
        let p =
          match find pname with
          | Some p -> p
          | None -> failwith (Printf.sprintf "unknown fault point %S" pname)
        in
        let skip = ref 0 and count = ref 1 and payload = ref 0. in
        let plan = ref None in
        let args = String.sub part (i + 1) (String.length part - i - 1) in
        List.iter
          (fun kv ->
            match String.split_on_char '=' kv with
            | [ "skip"; v ] -> skip := int_of_string v
            | [ "count"; v ] -> count := int_of_string v
            | [ "every"; v ] -> plan := Some (Every (int_of_string v))
            | [ "p"; v ] -> plan := Some (Probability (float_of_string v))
            | [ "payload"; v ] -> payload := float_of_string v
            | _ -> failwith (Printf.sprintf "fault spec: bad key=value %S" kv))
          (List.filter (fun s -> s <> "") (String.split_on_char ',' args));
        let plan =
          match !plan with
          | Some p -> p
          | None -> Times { skip = !skip; count = !count }
        in
        arm ~payload:!payload p plan
  in
  List.iter parse_point
    (List.filter (fun s -> s <> "") (String.split_on_char ';' spec))

let arm_from_env () =
  let seed =
    match Sys.getenv_opt "SYMREF_FAULT_SEED" with
    | Some s -> ( match int_of_string_opt s with Some n -> Some n | None -> None)
    | None -> None
  in
  let spec = Sys.getenv_opt "SYMREF_FAULT" in
  match (seed, spec) with
  | None, None -> ()
  | seed, spec ->
      enable ?seed ();
      Option.iter parse_spec spec
