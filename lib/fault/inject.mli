(** Deterministic, seedable fault injection for the reference pipeline.

    A {!point} is a named failure site compiled into the pipeline —
    {!Symref_linalg.Sparse} factorisations, {!Symref_core.Evaluator}
    evaluations, the serve daemon's socket writes.  The sites call {!fire}
    and act out the failure (singular pivot, poisoned value, raised
    exception, dropped connection) only when it returns [true].

    The cost contract mirrors {!Symref_obs.Metrics}: while the registry is
    disabled — the default — {!fire} is one non-atomic boolean load and a
    branch, so the hooks are free on hot paths.  While enabled, hit counting
    is atomic and every firing decision is a pure function of
    [(seed, point name, hit index)], so a chaos run replays bit-identically
    under any thread or domain interleaving.

    See [doc/robustness.mld] for the point catalogue and the recovery
    policies exercised against it. *)

val enabled : unit -> bool

val enable : ?seed:int -> unit -> unit
(** Reset every point, set the seed (default [0], used by
    {!plan.Probability} decisions) and turn the registry on.  Nothing is
    armed until {!arm}. *)

val disable : unit -> unit
(** Turn the registry off and reset every point ({!fire} returns [false]
    at full speed again). *)

val reset : unit -> unit
(** Zero all hit counters and disarm every point (keeps the registry
    enabled). *)

(** {1 Plans} *)

(** When an armed point fires, as a function of its hit index (0-based,
    counted across all threads). *)
type plan =
  | Never  (** disarmed (the state after {!enable} / {!reset}) *)
  | Times of { skip : int; count : int }
      (** fire on hits [skip .. skip + count - 1] — "the Nth evaluation" *)
  | Every of int  (** fire on every [n]-th hit (hit indices [0, n, 2n, ...]) *)
  | Probability of float
      (** fire with this probability, decided by a deterministic hash of
          [(seed, name, hit)] — reproducible randomness *)

type point

val arm : ?payload:float -> point -> plan -> unit
(** Arm one point (resetting its counters).  [payload] is a per-point
    parameter the site interprets — e.g. a delay in milliseconds for
    [evaluator.delay]. *)

val fire : point -> bool
(** [true] when the armed plan says this hit should fail.  Free while the
    registry is disabled. *)

val payload : point -> float
val hits : point -> int  (** times the site was reached since arming *)

val fired : point -> int  (** times the site actually failed *)

val name : point -> string
val all : unit -> point list
val find : string -> point option

exception Injected of string
(** The generic injected failure, raised by sites whose fault mode is an
    exception ([evaluator.raise]).  Carries the point name. *)

val fail : point -> 'a
(** [raise (Injected ...)] for this point. *)

val sleep_payload : point -> unit
(** Sleep [payload] milliseconds (no-op when [payload <= 0]) — the
    [evaluator.delay] fault mode. *)

(** {1 The injection-point catalogue} *)

val sparse_singular : point
(** [sparse.singular] — {!Symref_linalg.Sparse.factor} returns a singular
    factorisation ([det = 0]) and {!Symref_linalg.Sparse.refactor} returns
    [None] (threshold-floor fallback), as if the pivot search had failed. *)

val eval_nan : point
(** [evaluator.nan] — the evaluation point [s] is poisoned with NaN before
    the nodal assembly: all matrix entries become NaN, the pivot search
    finds nothing, and the evaluation surfaces as a singular (zero) value —
    the same degradation path as [sparse.singular]. *)

val eval_raise : point
(** [evaluator.raise] — {!Symref_core.Evaluator} raises {!Injected}. *)

val eval_delay : point
(** [evaluator.delay] — the evaluation sleeps [payload] ms first. *)

val serve_drop : point
(** [serve.drop_connection] — the daemon shuts the socket down instead of
    writing the reply. *)

val serve_partial : point
(** [serve.partial_write] — the daemon writes half the reply line, then
    shuts the socket down. *)

val serve_slow : point
(** [serve.slow_worker] — the daemon sleeps [payload] milliseconds before
    handling a submit request: a deterministically slow worker, the trigger
    the router's hedged requests are built to beat. *)

val serve_crash : point
(** [serve.crash] — the daemon process exits abruptly ([Unix._exit]) when a
    submit request arrives: crash-on-nth-job, the supervisor's restart and
    crash-loop machinery's trigger.  Only arm this in a dedicated worker
    process (via [SYMREF_FAULT] in its environment) — firing it in-process
    kills the host. *)

(** {1 Environment arming}

    [SYMREF_FAULT="point:key=val,...;point2:..."] arms points from the
    environment; keys are [skip]/[count] (a {!plan.Times}), [every],
    [p] (probability) and [payload].  [SYMREF_FAULT_SEED=n] enables the
    registry with seed [n] and nothing armed — the linked-but-disabled
    configuration the CI bit-identity gate compares against a plain run. *)

val arm_from_env : unit -> unit
(** Read [SYMREF_FAULT] / [SYMREF_FAULT_SEED] and enable/arm accordingly;
    no-op when neither is set.
    @raise Failure on a malformed spec or an unknown point name. *)
