/* Batched structure-of-arrays elimination + back substitution.

   This is Kernel.Batch's inner loop: the recorded elimination program is
   walked with instruction streams pre-flattened to int32 arrays, and
   every instruction's float work runs as a fixed-width loop over a tile
   of TILE points (plane index = slot * stride + point, stride a
   multiple of TILE).  GCC vectorises the tile loops; the
   per-instruction decode cost — the per-point engine's dominant
   overhead on small programs — is paid once per tile instead of once
   per point.

   Tiling is the cache story: a tile's plane columns are TILE contiguous
   doubles per slot, so the whole elimination's working set per tile is
   nslots * TILE * 16 bytes — L1-resident for the circuits this serves —
   where the full batch at once would stream its updates through L2.
   Grouping points into tiles changes nothing per point: columns never
   mix, each point's operation sequence is the program's, whichever tile
   runs it.

   Bit-identity contract: each point's float sequence is exactly the
   per-point fused kernel's (Kernel.run_fused + solve_into in
   lib/linalg/kernel.ml) — same formulas, same per-point operation
   order.  Four things make the C translation exact:

   - hypot is the same libm entry point the OCaml runtime's
     caml_hypot_float primitive is a thin wrapper for, so those call
     sites return identical bits (and they stay scalar calls: no vector
     math library matches libm bitwise);
   - frexp_exp below returns exactly what the OCaml cascade returns on
     every input class (verified exhaustively; see its comment), and
     scale2 replaces the OCaml side's Float.ldexp with power-of-two
     multiplies that are bitwise-equal to ldexp for every exponent
     frexp_exp can produce (argument in scale2's comment) — so the det
     loop needs no libm at all and vectorises;
   - branches the OCaml engine takes on per-point data (threshold bail,
     det-hit-zero, Smith's division) are expressed as elementwise
     selects: each lane keeps exactly the value its branch would have
     computed, and the not-taken side's arithmetic is discarded
     unobserved;
   - this translation unit is compiled with -ffp-contract=off (see
     lib/linalg/dune), so GCC never fuses a multiply-add the OCaml code
     would have rounded twice, and no -ffast-math-style value changes
     are licensed.  The omp simd pragmas (compiled with -fopenmp-simd,
     a pure compile-time flag) then only reorder work ACROSS lanes —
     IEEE packed div/mul/add are correctly rounded lane-wise — so
     vectorisation cannot perturb any single point.

   Lanes at count <= q < stride are padding: they scatter as zero, mark
   themselves ejected at the first pivot (magnitude 0), and compute
   harmless garbage in their own columns that no caller reads back.
   The hypot loops skip them — once padding turns NaN it would drag
   every remaining call through libm's NaN slow path.

   The one argument is the Batch.raw record (lib/linalg/kernel.ml);
   fields are read positionally and the enum below must stay in sync
   with the OCaml declaration. */

#include <math.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

/* Field indices of Batch.raw — keep in sync with kernel.ml. */
enum {
  F_RE, F_IM, F_Y_RE, F_Y_IM, F_X_RE, F_X_IM,
  F_PVR, F_PVI, F_PMAG, F_RMAX, F_PDEN, F_PYR, F_PYI, F_MUR, F_MUI,
  F_DRE, F_DIM, F_DEXP, F_EJECT,
  F_PIV_SLOT, F_PIV_ROW, F_PIV_COL,
  F_US_OFF, F_US_SLOT, F_U_COL,
  F_TGT_OFF, F_TGT_ROW, F_TGT_A, F_UPD,
  F_THRESHOLD, F_STRIDE, F_N, F_SIGN, F_CNT
};

/* Must match Batch.tile in kernel.ml (stride is padded to it). */
#define TILE 8

#define DPLANE(v, i) ((double *) Caml_ba_data_val(Field((v), (i))))
#define IPLANE(v, i) ((const int32_t *) Caml_ba_data_val(Field((v), (i))))

/* snd (Float.frexp a) for a >= 0., equal to the OCaml frexp_exp
   cascade (kernel.ml) on EVERY input class the cascade accepts — the
   equality is what matters, since the per-point engine is the
   reference.  Read the biased exponent straight from the bits; for
   subnormals normalise with one exact *2^54 first.  The cascade's
   off-the-scale conventions are selects: 0 -> -1535, inf -> 1536,
   NaN -> 0.  Checked exhaustively over all 2048 exponents (incl.
   specials) x 4096 mantissas against the cascade: identical.  ~10
   branch-free ops instead of ~100, and the det loop vectorises. */
static inline __attribute__((always_inline)) int frexp_exp(double a)
{
  union { double d; uint64_t u; } ua, ud;
  ua.d = a;
  ud.d = a * 0x1p54;
  int be = (int) (ua.u >> 52);
  int bes = (int) (ud.u >> 52);
  int e = be > 0 ? be - 1022 : bes - 1076;
  e = a == 0.0 ? -1535 : e;
  e = be == 2047 ? (a == a ? 1536 : 0) : e;
  return e;
}

/* Exact 2^k as a double; valid for -1022 <= k <= 1023 (normal range). */
static inline __attribute__((always_inline)) double pow2i(int k)
{
  union { uint64_t u; double d; } u;
  u.u = (uint64_t) (k + 1023) << 52;
  return u.d;
}

/* Bitwise-exact ldexp(x, k) for |k| <= 1536 (all frexp_exp can feed
   it), without the libm call that kept the det loop scalar.

   - |k| <= 1022: 2^k is an exact normal double, and one correctly
     rounded multiply of x by an exact power of two IS ldexp — same
     single rounding, including subnormal and overflow results.
   - k > 1022: multiply by 2^(k/2) then 2^(k-k/2) (each a normal
     double).  Scaling that far up only happens when x sits at or below
     the subnormal range 2^k reaches out of, so neither step loses a
     mantissa bit: both multiplies are exact.
   - k < -1022: same split downward.  The intermediate only dips into
     subnormals when the final value is far below 2^-1075, where both
     this path and ldexp round to the same (signed) zero; otherwise the
     first multiply is exact and the second carries ldexp's one
     rounding.

   NaN and infinity ride through multiplication exactly as through
   ldexp. */
static inline __attribute__((always_inline)) double scale2(double x, int k)
{
  int small = (k >= -1022) & (k <= 1022);  /* & keeps the lane branch-free */
  int k1 = small ? k : k / 2;
  int k2 = small ? 0 : k - k / 2;
  return x * pow2i(k1) * pow2i(k2);
}

/* Declared [@@noalloc] on the OCaml side: no allocation, no callbacks,
   no exceptions below — plain loads, stores and scalar hypot calls. */
CAMLprim value symref_batch_run(value raw)
{
  double *restrict bre = DPLANE(raw, F_RE);
  double *restrict bim = DPLANE(raw, F_IM);
  double *restrict yre = DPLANE(raw, F_Y_RE);
  double *restrict yim = DPLANE(raw, F_Y_IM);
  double *restrict xre = DPLANE(raw, F_X_RE);
  double *restrict xim = DPLANE(raw, F_X_IM);
  double *restrict pvr = DPLANE(raw, F_PVR);
  double *restrict pvi = DPLANE(raw, F_PVI);
  double *restrict pmag = DPLANE(raw, F_PMAG);
  double *restrict rmax = DPLANE(raw, F_RMAX);
  double *restrict pden = DPLANE(raw, F_PDEN);
  double *restrict pyr = DPLANE(raw, F_PYR);
  double *restrict pyi = DPLANE(raw, F_PYI);
  double *restrict mur = DPLANE(raw, F_MUR);
  double *restrict mui = DPLANE(raw, F_MUI);
  double *restrict dre = DPLANE(raw, F_DRE);
  double *restrict dim = DPLANE(raw, F_DIM);
  int32_t *restrict dexp = (int32_t *) Caml_ba_data_val(Field(raw, F_DEXP));
  int32_t *restrict eject = (int32_t *) Caml_ba_data_val(Field(raw, F_EJECT));
  const int32_t *piv_slot = IPLANE(raw, F_PIV_SLOT);
  const int32_t *piv_row = IPLANE(raw, F_PIV_ROW);
  const int32_t *piv_col = IPLANE(raw, F_PIV_COL);
  const int32_t *us_off = IPLANE(raw, F_US_OFF);
  const int32_t *us_slot = IPLANE(raw, F_US_SLOT);
  const int32_t *u_col = IPLANE(raw, F_U_COL);
  const int32_t *tgt_off = IPLANE(raw, F_TGT_OFF);
  const int32_t *tgt_row = IPLANE(raw, F_TGT_ROW);
  const int32_t *tgt_a = IPLANE(raw, F_TGT_A);
  const int32_t *upd = IPLANE(raw, F_UPD);
  const double thr = Double_val(Field(raw, F_THRESHOLD));
  const long stride = Long_val(Field(raw, F_STRIDE));
  const long n = Long_val(Field(raw, F_N));
  const long sign = Long_val(Field(raw, F_SIGN));
  const long cnt = Long_val(Field(raw, F_CNT));

  for (long q0 = 0; q0 < stride; q0 += TILE) {
    const long q1 = q0 + TILE;
    const long qh = q1 < cnt ? q1 : cnt;  /* live lanes in this tile */
    long upd_pos = 0;

    /* det := Ec.one = { c = (0.5, 0.); e = 1 } per point. */
#pragma omp simd
    for (long q = q0; q < q1; q++) {
      dre[q] = 0.5;
      dim[q] = 0.0;
      dexp[q] = 1;
    }

    for (long step = 0; step < n; step++) {
      const long base_p = (long) piv_slot[step] * stride;
#pragma omp simd
      for (long q = q0; q < q1; q++) {
        pvr[q] = bre[base_p + q];
        pvi[q] = bim[base_p + q];
      }
      /* hypot stays a scalar libm call and skips pad lanes; their
         pmag := 0 marks them ejected at the threshold select below. */
      for (long q = q0; q < qh; q++) {
        double m = hypot(pvr[q], pvi[q]);
        pmag[q] = m;
        rmax[q] = m;
      }
      for (long q = qh; q < q1; q++) {
        pmag[q] = 0.0;
        rmax[q] = 0.0;
      }
      const long ub = us_off[step], ue = us_off[step + 1];
      for (long idx = ub; idx < ue; idx++) {
        const double *restrict sr = bre + (long) us_slot[idx] * stride;
        const double *restrict si = bim + (long) us_slot[idx] * stride;
        for (long q = q0; q < qh; q++) {
          double m = hypot(sr[q], si[q]);
          if (m > rmax[q]) rmax[q] = m;
        }
      }
      /* The per-point engine's threshold bail, as a sticky mark: the
         marked point keeps computing garbage in its own plane column
         while the batch proceeds.  m -. m = 0. is Float.is_finite,
         literally.  pden and the pivot row's RHS load in the same
         sweep — all elementwise, per-point order intact. */
      const long base_y = (long) piv_row[step] * stride;
#pragma omp simd
      for (long q = q0; q < q1; q++) {
        double m = pmag[q];
        int bad = (m == 0.0) | (m - m != 0.0) | (m < thr * rmax[q]);
        eject[q] = bad ? 1 : eject[q];
        double r = pvr[q], i = pvi[q];
        pden[q] = r * r + i * i;
        pyr[q] = yre[base_y + q];
        pyi[q] = yim[base_y + q];
      }
      const long tb = tgt_off[step], te = tgt_off[step + 1];
      for (long t = tb; t < te; t++) {
        const long base_a = (long) tgt_a[t] * stride;
        const long base_i = (long) tgt_row[t] * stride;
        /* m = a / pivot, then the fused RHS forward elimination — same
           formulas, same order as run_fused. */
#pragma omp simd
        for (long q = q0; q < q1; q++) {
          double ar = bre[base_a + q], ai = bim[base_a + q];
          double pr = pvr[q], pi = pvi[q], den = pden[q];
          double mr = (ar * pr + ai * pi) / den;
          double mi = (ai * pr - ar * pi) / den;
          mur[q] = mr;
          mui[q] = mi;
          double yr = pyr[q], yi = pyi[q];
          yre[base_i + q] = yre[base_i + q] - (mr * yr - mi * yi);
          yim[base_i + q] = yim[base_i + q] - (mr * yi + mi * yr);
        }
        /* Source slots live in the pivot row, destinations in the
           target row: always distinct, so the restrict pairs hold. */
        for (long idx = 0; idx < ue - ub; idx++) {
          const double *restrict sr = bre + (long) us_slot[ub + idx] * stride;
          const double *restrict si = bim + (long) us_slot[ub + idx] * stride;
          double *restrict dr = bre + (long) upd[upd_pos + idx] * stride;
          double *restrict di = bim + (long) upd[upd_pos + idx] * stride;
#pragma omp simd
          for (long q = q0; q < q1; q++) {
            double mr = mur[q], mi = mui[q];
            dr[q] = dr[q] - (mr * sr[q] - mi * si[q]);
            di[q] = di[q] - (mr * si[q] + mi * sr[q]);
          }
        }
        upd_pos += ue - ub;
      }
      /* det := det * pivot, the unboxed Ec.mul mirror per point.  Runs
         for marked points too (on garbage, discarded later): frexp_exp
         and scale2 are total and bounded, so nothing escapes the
         column.  Ec.mul's product-hit-zero branch is the ma == 0
         selects: scale2 of a zero already lands on zero, but the OCaml
         branch writes +0. while the scaled lane may carry prr's sign
         bit, so select the literal constants. */
#pragma omp simd
      for (long q = q0; q < q1; q++) {
        double pr = pvr[q], pi = pvi[q];
        double apr = fabs(pr), api = fabs(pi);
        double pa = apr >= api ? apr : api;
        int dep = frexp_exp(pa);
        double pmr = scale2(pr, -dep), pmi = scale2(pi, -dep);
        double ar = dre[q], ai = dim[q];
        double prr = ar * pmr - ai * pmi;
        double pri = ar * pmi + ai * pmr;
        double aprr = fabs(prr), apri = fabs(pri);
        double ma = aprr >= apri ? aprr : apri;
        int dem = frexp_exp(ma);
        dre[q] = ma == 0.0 ? 0.0 : scale2(prr, -dem);
        dim[q] = ma == 0.0 ? 0.0 : scale2(pri, -dem);
        dexp[q] = ma == 0.0 ? 0 : dexp[q] + dep + dem;
      }
    }
    if (sign < 0)
#pragma omp simd
      for (long q = q0; q < q1; q++) {
        dre[q] = -dre[q];
        dim[q] = -dim[q];
      }

    /* Back substitution — solve_into with the point loop innermost. */
    for (long k = n - 1; k >= 0; k--) {
      const long base_y = (long) piv_row[k] * stride;
      const long base_x = (long) piv_col[k] * stride;
#pragma omp simd
      for (long q = q0; q < q1; q++) {
        xre[base_x + q] = yre[base_y + q];
        xim[base_x + q] = yim[base_y + q];
      }
      const long eb = us_off[k], ee = us_off[k + 1];
      for (long idx = eb; idx < ee; idx++) {
        /* Hoisted restrict bases keep the access pattern affine for the
           vectoriser; the U slot, the solved column j and column k are
           three distinct plane columns. */
        const double *restrict sur = bre + (long) us_slot[idx] * stride;
        const double *restrict sui = bim + (long) us_slot[idx] * stride;
        const double *restrict sxr = xre + (long) u_col[idx] * stride;
        const double *restrict sxi = xim + (long) u_col[idx] * stride;
        double *restrict axr = xre + base_x;
        double *restrict axi = xim + base_x;
#pragma omp simd
        for (long q = q0; q < q1; q++) {
          double ur = sur[q], ui = sui[q];
          double xr = sxr[q], xi = sxi[q];
          axr[q] = axr[q] - (ur * xr - ui * xi);
          axi[q] = axi[q] - (ur * xi + ui * xr);
        }
      }
      /* Smith's-algorithm division as selects: with rn/rd the chosen
         numerator/denominator, both branches of the original are
         rd + r * rn for d, so each lane's kept values are exactly its
         branch's — one real division path per lane, as in OCaml. */
      const long base_p = (long) piv_slot[k] * stride;
#pragma omp simd
      for (long q = q0; q < q1; q++) {
        double pr = bre[base_p + q], pi = bim[base_p + q];
        double ar = xre[base_x + q], ai = xim[base_x + q];
        int big = fabs(pr) >= fabs(pi);
        double rn = big ? pi : pr;
        double rd = big ? pr : pi;
        double r = rn / rd;
        double d = rd + r * rn;
        double nre = big ? ar + r * ai : r * ar + ai;
        double nim = big ? ai - r * ar : r * ai - ar;
        xre[base_x + q] = nre / d;
        xim[base_x + q] = nim / d;
      }
    }
  }
  return Val_unit;
}
