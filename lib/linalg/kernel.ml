module Ec = Symref_numeric.Extcomplex
module Obs = Symref_obs.Metrics
module Tr = Symref_obs.Trace
module Inject = Symref_fault.Inject

(* The fused refactor+solve execution engine.

   [Sparse.refactor] already performs its elimination on flat [re]/[im]
   float arrays, but then round-trips through a boxed [factor] (boxed
   [Complex.t] per multiplier, nested [upper] arrays built by [Array.init]
   closures) that [Sparse.solve] immediately unboxes again.  This module
   replays the same recorded elimination program {e and} the forward/back
   substitution directly on the flat workspaces: the boxed factor never
   exists on the hot path, the multipliers are never stored (the RHS
   forward elimination is fused into the step that computes each
   multiplier), and a [workspace] is allocated once per (pattern, domain)
   and reused across points and passes — the inner loop allocates nothing.

   Bit-identity contract: every float operation below mirrors the boxed
   [Sparse.refactor] + [Sparse.solve] + [Extcomplex] chain in the same
   order with the same formulas, so the kernel's determinant and solution
   are bit-for-bit the boxed path's.  Guard behaviour is mirrored too:
   the [Inject.sparse_singular] hook fires at the same place, and the
   threshold-floor / non-finite-pivot checks bail out exactly where
   [refactor] would return [None]. *)

type program = {
  n : int;  (* matrix dimension *)
  nslots : int;  (* workspace slots, structural fill included *)
  sign : int;  (* permutation sign of the pivot orders *)
  threshold : float;  (* threshold-pivoting floor parameter *)
  coo_slot : int array;  (* values index -> slot (the scatter map) *)
  pivot_rows : int array;  (* step -> original row *)
  pivot_cols : int array;  (* step -> original column *)
  pivot_slot : int array;  (* step -> slot of the pivot *)
  u_cols : int array array;  (* step -> original column per U entry *)
  u_slots : int array array;  (* step -> slot per U entry *)
  elim_row : int array array;  (* step -> row id per eliminated row *)
  elim_a_slot : int array array;  (* step -> slot of (row, pivot col) *)
  elim_upd : int array array array;
      (* step -> target -> destination slot per U entry *)
  lower_len : int;
  fill : int;
}

type workspace = {
  prog : program;
  re : float array;  (* nslots: matrix values, then L/U after [run] *)
  im : float array;
  y_re : float array;  (* n, by original row: RHS, then L^-1 RHS *)
  y_im : float array;
  x_re : float array;  (* n, by original column: the solution *)
  x_im : float array;
  det_m : float array;  (* length 2: determinant mantissa (re, im) *)
  mutable det_e : int;  (* determinant binary exponent *)
  mutable busy : bool;  (* checked out (same-domain reentrancy guard) *)
  scratch : float array;  (* length 1: loop-carried row maximum *)
}

let program ws = ws.prog

let workspace prog =
  Obs.incr Obs.kernel_workspaces;
  {
    prog;
    re = Array.make prog.nslots 0.;
    im = Array.make prog.nslots 0.;
    y_re = Array.make prog.n 0.;
    y_im = Array.make prog.n 0.;
    x_re = Array.make prog.n 0.;
    x_im = Array.make prog.n 0.;
    det_m = [| 0.; 0. |];
    det_e = 0;
    busy = false;
    scratch = [| 0. |];
  }

let begin_point ws =
  Array.fill ws.re 0 (Array.length ws.re) 0.;
  Array.fill ws.im 0 (Array.length ws.im) 0.;
  Array.fill ws.y_re 0 (Array.length ws.y_re) 0.;
  Array.fill ws.y_im 0 (Array.length ws.y_im) 0.

let[@inline] set_slot ws slot ~re ~im =
  ws.re.(slot) <- re;
  ws.im.(slot) <- im

let[@inline] set_value ws e ~re ~im = set_slot ws ws.prog.coo_slot.(e) ~re ~im

let[@inline] set_rhs ws row ~re ~im =
  ws.y_re.(row) <- re;
  ws.y_im.(row) <- im

(* Raw buffer access for hot-path scatters: a cross-module call to the
   setters above boxes its float arguments (no flambda), so allocation-free
   callers store into the flat arrays directly. *)
let matrix_re ws = ws.re
let matrix_im ws = ws.im
let rhs_buf_re ws = ws.y_re
let rhs_buf_im ws = ws.y_im

(* [snd (Float.frexp a)] for finite [a >= 0.], allocation-free
   ([Float.frexp] boxes a tuple on every call).  Scaling by a power of two
   is exact, so the exponent — and the mantissa [Float.ldexp a (-e)] the
   caller derives from it — is bit-for-bit what [frexp] computes.  The
   [512] step runs twice so deep subnormals (down to [2^-1074]) reach the
   [[2^-512, 2^512)] band the cascade then narrows to [[0.5, 2)]. *)
let[@inline always] frexp_exp a =
  let x = if a >= 0x1p512 then a *. 0x1p-512 else if a < 0x1p-512 then a *. 0x1p512 else a in
  let e = if a >= 0x1p512 then 512 else if a < 0x1p-512 then -512 else 0 in
  let e = if x >= 0x1p512 then e + 512 else if x < 0x1p-512 then e - 512 else e in
  let x = if x >= 0x1p512 then x *. 0x1p-512 else if x < 0x1p-512 then x *. 0x1p512 else x in
  let e = if x >= 0x1p256 then e + 256 else if x < 0x1p-256 then e - 256 else e in
  let x = if x >= 0x1p256 then x *. 0x1p-256 else if x < 0x1p-256 then x *. 0x1p256 else x in
  let e = if x >= 0x1p128 then e + 128 else if x < 0x1p-128 then e - 128 else e in
  let x = if x >= 0x1p128 then x *. 0x1p-128 else if x < 0x1p-128 then x *. 0x1p128 else x in
  let e = if x >= 0x1p64 then e + 64 else if x < 0x1p-64 then e - 64 else e in
  let x = if x >= 0x1p64 then x *. 0x1p-64 else if x < 0x1p-64 then x *. 0x1p64 else x in
  let e = if x >= 0x1p32 then e + 32 else if x < 0x1p-32 then e - 32 else e in
  let x = if x >= 0x1p32 then x *. 0x1p-32 else if x < 0x1p-32 then x *. 0x1p32 else x in
  let e = if x >= 0x1p16 then e + 16 else if x < 0x1p-16 then e - 16 else e in
  let x = if x >= 0x1p16 then x *. 0x1p-16 else if x < 0x1p-16 then x *. 0x1p16 else x in
  let e = if x >= 0x1p8 then e + 8 else if x < 0x1p-8 then e - 8 else e in
  let x = if x >= 0x1p8 then x *. 0x1p-8 else if x < 0x1p-8 then x *. 0x1p8 else x in
  let e = if x >= 0x1p4 then e + 4 else if x < 0x1p-4 then e - 4 else e in
  let x = if x >= 0x1p4 then x *. 0x1p-4 else if x < 0x1p-4 then x *. 0x1p4 else x in
  let e = if x >= 0x1p2 then e + 2 else if x < 0x1p-2 then e - 2 else e in
  let x = if x >= 0x1p2 then x *. 0x1p-2 else if x < 0x1p-2 then x *. 0x1p2 else x in
  let e = if x >= 2. then e + 1 else if x < 0.5 then e - 1 else e in
  let x = if x >= 2. then x *. 0.5 else if x < 0.5 then x *. 2. else x in
  if x >= 1. then e + 1 else e

exception Bail

(* The fused replay.  Identical arithmetic to [Sparse.refactor] step for
   step; the only additions are (a) the RHS forward elimination folded into
   each multiplier — reading the pivot row's RHS, which is frozen once its
   step runs, so the update sequence per row is exactly the boxed
   [Sparse.solve] lower replay — and (b) the determinant accumulated
   per step as an unboxed mirror of
   [Ec.mul acc (Ec.of_complex pivot)] instead of a post-hoc fold. *)
let run_fused ws =
  let p = ws.prog in
  let re = ws.re and im = ws.im in
  let y_re = ws.y_re and y_im = ws.y_im in
  let det_m = ws.det_m and scratch = ws.scratch in
  let n = p.n in
  (* det := Ec.one = { c = (0.5, 0.); e = 1 }. *)
  det_m.(0) <- 0.5;
  det_m.(1) <- 0.;
  ws.det_e <- 1;
  try
    for step = 0 to n - 1 do
      let ps = p.pivot_slot.(step) in
      let pr = re.(ps) and pim = im.(ps) in
      let pmag = Float.hypot pr pim in
      (* Threshold floor: the pivot must still dominate its remaining row
         the way Markowitz + threshold pivoting would have required.  A
         non-finite pivot (NaN-contaminated values) bails out too: NaN
         compares false against the floor, and the full search degrades to
         a clean singular result where a replay would feed NaN downstream. *)
      let us = p.u_slots.(step) in
      (* Unsafe accesses below: every index comes straight out of the
         recorded elimination program, whose construction in
         [Sparse.symbolic] guarantees slots < nslots and rows < n —
         bounds checks in these innermost loops are pure overhead. *)
      scratch.(0) <- pmag;
      for idx = 0 to Array.length us - 1 do
        let s = Array.unsafe_get us idx in
        let m = Float.hypot (Array.unsafe_get re s) (Array.unsafe_get im s) in
        if m > scratch.(0) then scratch.(0) <- m
      done;
      if pmag = 0. || (not (Float.is_finite pmag)) || pmag < p.threshold *. scratch.(0)
      then raise Bail;
      let den = (pr *. pr) +. (pim *. pim) in
      let targets = p.elim_row.(step) in
      let a_slots = p.elim_a_slot.(step) in
      let upds = p.elim_upd.(step) in
      let prow = p.pivot_rows.(step) in
      let pyr = y_re.(prow) and pyi = y_im.(prow) in
      for t = 0 to Array.length targets - 1 do
        let a = Array.unsafe_get a_slots t in
        let ar = Array.unsafe_get re a and ai = Array.unsafe_get im a in
        (* m = a / pivot, unboxed (same naive quotient as refactor). *)
        let mr = ((ar *. pr) +. (ai *. pim)) /. den
        and mi = ((ai *. pr) -. (ar *. pim)) /. den in
        (* Fused forward elimination: y_i -= m * y_pivot, the boxed
           [solve]'s lower replay without ever storing the multiplier. *)
        let i = Array.unsafe_get targets t in
        Array.unsafe_set y_re i
          (Array.unsafe_get y_re i -. ((mr *. pyr) -. (mi *. pyi)));
        Array.unsafe_set y_im i
          (Array.unsafe_get y_im i -. ((mr *. pyi) +. (mi *. pyr)));
        let upd = Array.unsafe_get upds t in
        for idx = 0 to Array.length us - 1 do
          let s = Array.unsafe_get us idx in
          let ur = Array.unsafe_get re s and ui = Array.unsafe_get im s in
          let d = Array.unsafe_get upd idx in
          Array.unsafe_set re d
            (Array.unsafe_get re d -. ((mr *. ur) -. (mi *. ui)));
          Array.unsafe_set im d
            (Array.unsafe_get im d -. ((mr *. ui) +. (mi *. ur)))
        done
      done;
      (* det := det * pivot — [Ec.mul acc (Ec.of_complex pv)] unboxed:
         normalise the pivot mantissa, multiply, renormalise. *)
      let pa =
        let apr = Float.abs pr and api = Float.abs pim in
        if apr >= api then apr else api
      in
      let dep = frexp_exp pa in
      let pmr = Float.ldexp pr (-dep) and pmi = Float.ldexp pim (-dep) in
      let ar = det_m.(0) and ai = det_m.(1) in
      let prr = (ar *. pmr) -. (ai *. pmi) in
      let pri = (ar *. pmi) +. (ai *. pmr) in
      let ma =
        let apr = Float.abs prr and api = Float.abs pri in
        if apr >= api then apr else api
      in
      if ma = 0. then begin
        det_m.(0) <- 0.;
        det_m.(1) <- 0.;
        ws.det_e <- 0
      end
      else begin
        let dem = frexp_exp ma in
        det_m.(0) <- Float.ldexp prr (-dem);
        det_m.(1) <- Float.ldexp pri (-dem);
        ws.det_e <- ws.det_e + dep + dem
      end
    done;
    if p.sign < 0 then begin
      (* [Ec.neg]: mantissa negated, exponent untouched. *)
      det_m.(0) <- -.det_m.(0);
      det_m.(1) <- -.det_m.(1)
    end;
    true
  with Bail -> false

let run ws =
  (* Same site, same budget as [Sparse.refactor]'s injection check, so an
     armed fault plan consumes hits identically on either path.  Like the
     boxed refactor, an injected singular is *not* a threshold fallback —
     [refactor_fallbacks] stays untouched; only the kernel-local counter
     records that this point left the fused path. *)
  if Inject.fire Inject.sparse_singular then begin
    Obs.incr Obs.kernel_fallbacks;
    false
  end
  else begin
    let ok =
      if Tr.is_on () then Tr.span ~cat:"lu" "lu.kernel" (fun () -> run_fused ws)
      else run_fused ws
    in
    if ok then begin
      (* The kernel run IS the numeric refactorisation: count it under the
         same catalogue entry so `replays + fallbacks = memo misses` keeps
         holding whichever engine served the point. *)
      Obs.incr Obs.lu_refactor;
      Obs.incr Obs.kernel_points
    end
    else begin
      Obs.incr Obs.refactor_fallbacks;
      Obs.incr Obs.kernel_fallbacks
    end;
    ok
  end

let det_is_zero ws = ws.det_m.(0) = 0. && ws.det_m.(1) = 0.

let det ws =
  (* The stored mantissa is already normalised (it came out of the unboxed
     [norm_mantissa] mirror above), so [Ec.make] reconstructs the exact
     record the boxed fold produces. *)
  Ec.make ~c:{ Complex.re = ws.det_m.(0); im = ws.det_m.(1) } ~e:ws.det_e

(* Back substitution, accumulated in the solution arrays themselves: each
   step's partial sums land in [x.(pivot_col)] — written by this step only —
   so no register-like temporaries (which would box) are needed.  The final
   division replicates [Complex.div]'s Smith's algorithm branch for branch. *)
let solve_into ws =
  let p = ws.prog in
  let re = ws.re and im = ws.im in
  let y_re = ws.y_re and y_im = ws.y_im in
  let x_re = ws.x_re and x_im = ws.x_im in
  for k = p.n - 1 downto 0 do
    let prow = p.pivot_rows.(k) in
    let pc = p.pivot_cols.(k) in
    x_re.(pc) <- y_re.(prow);
    x_im.(pc) <- y_im.(prow);
    let cols = p.u_cols.(k) and slots = p.u_slots.(k) in
    (* Program-derived indices, as in the replay above: unchecked. *)
    for idx = 0 to Array.length cols - 1 do
      let j = Array.unsafe_get cols idx in
      let s = Array.unsafe_get slots idx in
      let ur = Array.unsafe_get re s and ui = Array.unsafe_get im s in
      let xr = Array.unsafe_get x_re j and xi = Array.unsafe_get x_im j in
      x_re.(pc) <- x_re.(pc) -. ((ur *. xr) -. (ui *. xi));
      x_im.(pc) <- x_im.(pc) -. ((ur *. xi) +. (ui *. xr))
    done;
    let ps = p.pivot_slot.(k) in
    let pr = re.(ps) and pim = im.(ps) in
    let ar = x_re.(pc) and ai = x_im.(pc) in
    if Float.abs pr >= Float.abs pim then begin
      let r = pim /. pr in
      let d = pr +. (r *. pim) in
      x_re.(pc) <- (ar +. (r *. ai)) /. d;
      x_im.(pc) <- (ai -. (r *. ar)) /. d
    end
    else begin
      let r = pr /. pim in
      let d = pim +. (r *. pr) in
      x_re.(pc) <- ((r *. ar) +. ai) /. d;
      x_im.(pc) <- ((r *. ai) -. ar) /. d
    end
  done

let solution_re ws = ws.x_re
let solution_im ws = ws.x_im

(* --- Per-domain workspace pooling ----------------------------------------

   Workspaces are mutable scratch state: one per (pattern, domain).  Each
   domain gets a dense small index on first use ([Domain_pool] workers touch
   theirs at spawn), indexing a copy-on-write slot table per pool.  Only the
   owning domain ever touches its slot, so the unlocked fast path is
   race-free; growth serialises on a mutex and publishes a fresh array.
   The [busy] flag guards same-domain reentrancy (systhreads running jobs on
   one domain): a busy or over-cap checkout returns [None] and the caller
   uses the boxed path, which is bit-identical, so pooling pressure is
   invisible in results. *)

let next_index = Atomic.make 0
let index_key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next_index 1)
let domain_index () = Domain.DLS.get index_key

let try_acquire ws =
  if ws.busy then false
  else begin
    ws.busy <- true;
    true
  end

let release ws = ws.busy <- false

module Pool = struct
  type t = {
    p_prog : program;
    slots : workspace option array Atomic.t;
    grow : Mutex.t;
  }

  (* Spawn-strategy interpolation creates fresh domains per pass, so domain
     indices can grow without bound; beyond the cap a point simply takes the
     boxed path instead of leaking workspaces. *)
  let max_slots = 64

  let create prog = { p_prog = prog; slots = Atomic.make [||]; grow = Mutex.create () }

  let slot_workspace pl idx =
    let arr = Atomic.get pl.slots in
    if idx < Array.length arr && arr.(idx) <> None then arr.(idx)
    else begin
      Mutex.lock pl.grow;
      let arr = Atomic.get pl.slots in
      let arr =
        if idx < Array.length arr then arr
        else begin
          let bigger =
            Array.make (Int.min max_slots (Int.max (idx + 1) ((2 * Array.length arr) + 1))) None
          in
          Array.blit arr 0 bigger 0 (Array.length arr);
          Atomic.set pl.slots bigger;
          bigger
        end
      in
      let ws =
        match arr.(idx) with
        | Some ws -> ws
        | None ->
            let ws = workspace pl.p_prog in
            arr.(idx) <- Some ws;
            ws
      in
      Mutex.unlock pl.grow;
      Some ws
    end

  let checkout pl =
    let idx = domain_index () in
    if idx >= max_slots then None
    else
      match slot_workspace pl idx with
      | None -> None
      | Some ws -> if try_acquire ws then Some ws else None

  let release = release
end

(* --- The batched structure-of-arrays engine -------------------------------

   The per-point engine above re-decodes the elimination program — every
   instruction's index arrays, every loop bound — once per evaluation point.
   For a whole interpolation pass that decode traffic rivals the float work
   (rc-ladder patterns, whose programs are long and whose per-step float
   count is tiny, see barely 1.3x from the fused kernel).  This engine
   transposes the loops: [re]/[im] become planes of [nslots * count] floats
   (slot-major, so one instruction's operand column is contiguous across
   points), the program is decoded {e once per batch}, and every instruction
   runs an inner contiguous loop over points — straight-line float code the
   compiler can keep branch-free.

   Bit-identity contract, inherited from the per-point engine: batching
   reorders operations only {e across} points, whose data never interact;
   within one point the float dataflow — pivot magnitude, row maximum in
   [u_slots] order, multiplier, RHS update, U updates, determinant
   accumulation — is operation-for-operation the per-point [run_fused] +
   [solve_into] chain, so every point's determinant and solution are
   bit-for-bit what the per-point kernel (and therefore the boxed path)
   produces.

   Eject semantics: a point whose reused pivot trips the threshold floor
   (or goes non-finite) is {e marked} ejected and keeps computing garbage —
   branch-free, and harmless because plane columns never mix points — while
   the rest of the batch proceeds; the caller discards the marked column
   and re-evaluates that single point on the boxed path.  The batch itself
   never consumes [Inject] hits: the caller fires the [sparse.singular]
   hook per point {e in point order} after the batch, interleaving each
   ejected point's boxed fallback, so an armed fault plan observes exactly
   the per-point engine's fire sequence (see [Symref_mna.Nodal.eval_batch]).

   Counters are likewise the caller's: served points count under
   [lu.refactor] + [kernel.batch_points], ejected ones under
   [kernel.fallback] + [kernel.batch_ejects] (plus [lu.refactor_fallback]
   for threshold bails) — never under [kernel.points], so the two engines
   stay distinguishable in snapshots. *)

module BA1 = Bigarray.Array1

type plane = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t

module Batch = struct
  type iplane = (int32, Bigarray.int32_elt, Bigarray.c_layout) BA1.t

  (* Everything [symref_batch_run] touches, gathered in one record so one
     root crosses the FFI per batch — no per-call argument boxing, so the
     stub call itself allocates nothing.  Field order is the C ABI: the
     stub reads fields positionally (the [enum] in batch_stub.c) — keep
     the two declarations in sync.  Fields 0-18 are per-batch state,
     re-allocated by [grow]; the rest is the elimination program
     flattened once, at [create], into int32 instruction streams the C
     loop walks without ever re-decoding a nested array. *)
  type raw = {
    mutable r_re : plane;  (* 0: matrix planes, nslots * cap *)
    mutable r_im : plane;  (* 1 *)
    mutable r_y_re : plane;  (* 2: RHS by original row, n * cap *)
    mutable r_y_im : plane;  (* 3 *)
    mutable r_x_re : plane;  (* 4: solution by original column, n * cap *)
    mutable r_x_im : plane;  (* 5 *)
    mutable r_pvr : plane;  (* 6: per-point scratch, cap each *)
    mutable r_pvi : plane;  (* 7 *)
    mutable r_pmag : plane;  (* 8: pivot magnitude *)
    mutable r_rmax : plane;  (* 9: remaining-row maximum *)
    mutable r_pden : plane;  (* 10: |pivot|^2 *)
    mutable r_pyr : plane;  (* 11: pivot-row RHS *)
    mutable r_pyi : plane;  (* 12 *)
    mutable r_mur : plane;  (* 13: multiplier per point, per target *)
    mutable r_mui : plane;  (* 14 *)
    mutable r_dre : plane;  (* 15: determinant mantissa *)
    mutable r_dim : plane;  (* 16 *)
    mutable r_dexp : iplane;  (* 17: determinant binary exponent *)
    mutable r_eject : iplane;  (* 18: threshold/non-finite bail marks *)
    r_piv_slot : iplane;  (* 19: step -> pivot slot *)
    r_piv_row : iplane;  (* 20: step -> original row *)
    r_piv_col : iplane;  (* 21: step -> original column *)
    r_us_off : iplane;  (* 22: n+1 offsets into the U streams *)
    r_us_slot : iplane;  (* 23: U-entry slots, flat *)
    r_u_col : iplane;  (* 24: U-entry columns, flat *)
    r_tgt_off : iplane;  (* 25: n+1 offsets into the target streams *)
    r_tgt_row : iplane;  (* 26: eliminated-row ids, flat *)
    r_tgt_a : iplane;  (* 27: (row, pivot col) slots, flat *)
    r_upd : iplane;  (* 28: update destination slots, flat; each target
                        owns a run of length |U(step)|, in target order *)
    r_threshold : float;  (* 29: threshold-pivoting floor *)
    mutable r_stride : int;  (* 30: plane stride = count padded to 8 lanes *)
    r_n : int;  (* 31: matrix dimension *)
    r_sign : int;  (* 32: permutation sign *)
    mutable r_cnt : int;  (* 33: live points (lanes beyond are padding) *)
  } [@@ocaml.warning "-69"]
  (* -69: the program stream fields are read from the C side only. *)

  type t = {
    b_prog : program;
    mutable cap : int;  (* allocated lane capacity (a stride, so 8-padded) *)
    mutable b_count : int;  (* live points in the current batch *)
    mutable s_re : float array;  (* the batch's evaluation points *)
    mutable s_im : float array;
    mutable b_busy : bool;
    raw : raw;
  }

  (* The stub runs the program once per 8-lane tile so a tile's plane
     columns (8 contiguous doubles per slot) stay L1-resident across the
     whole elimination — the full batch's working set is L2-sized and
     was the OCaml engine's real cost.  Padding the stride to the tile
     width keeps every tile a full vector with no scalar tail; the pad
     lanes compute harmless garbage in their own columns (they scatter
     as zero, so they just mark themselves ejected) and nothing reads
     them back. *)
  let tile = 8

  let stride_of cnt = (cnt + (tile - 1)) land lnot (tile - 1)

  (* The whole batched elimination + back substitution, in C: the same
     instruction walk and per-point formulas as [run_elim]/[run_solve]
     used to spell in OCaml, with the point loop innermost over
     contiguous plane columns so GCC vectorises the float work
     (batch_stub.c carries the bit-identity argument; -ffp-contract=off
     keeps every rounding the OCaml engine's). *)
  external raw_run : raw -> unit = "symref_batch_run" [@@noalloc]

  let mkplane len = BA1.create Bigarray.Float64 Bigarray.C_layout len
  let mkiplane len = BA1.create Bigarray.Int32 Bigarray.C_layout len

  let iplane_of_array a =
    let p = mkiplane (Array.length a) in
    Array.iteri (fun i v -> BA1.set p i (Int32.of_int v)) a;
    p

  let offsets_of len n =
    let off = Array.make (n + 1) 0 in
    for s = 0 to n - 1 do
      off.(s + 1) <- off.(s) + len s
    done;
    off

  let create prog =
    Obs.incr Obs.kernel_workspaces;
    let n = prog.n in
    let flat2 a = Array.concat (Array.to_list a) in
    {
      b_prog = prog;
      cap = 0;
      b_count = 0;
      s_re = [||];
      s_im = [||];
      b_busy = false;
      raw =
        {
          r_re = mkplane 0;
          r_im = mkplane 0;
          r_y_re = mkplane 0;
          r_y_im = mkplane 0;
          r_x_re = mkplane 0;
          r_x_im = mkplane 0;
          r_pvr = mkplane 0;
          r_pvi = mkplane 0;
          r_pmag = mkplane 0;
          r_rmax = mkplane 0;
          r_pden = mkplane 0;
          r_pyr = mkplane 0;
          r_pyi = mkplane 0;
          r_mur = mkplane 0;
          r_mui = mkplane 0;
          r_dre = mkplane 0;
          r_dim = mkplane 0;
          r_dexp = mkiplane 0;
          r_eject = mkiplane 0;
          r_piv_slot = iplane_of_array prog.pivot_slot;
          r_piv_row = iplane_of_array prog.pivot_rows;
          r_piv_col = iplane_of_array prog.pivot_cols;
          r_us_off =
            iplane_of_array (offsets_of (fun s -> Array.length prog.u_slots.(s)) n);
          r_us_slot = iplane_of_array (flat2 prog.u_slots);
          r_u_col = iplane_of_array (flat2 prog.u_cols);
          r_tgt_off =
            iplane_of_array (offsets_of (fun s -> Array.length prog.elim_row.(s)) n);
          r_tgt_row = iplane_of_array (flat2 prog.elim_row);
          r_tgt_a = iplane_of_array (flat2 prog.elim_a_slot);
          r_upd =
            iplane_of_array
              (Array.concat
                 (List.concat_map Array.to_list (Array.to_list prog.elim_upd)));
          r_threshold = prog.threshold;
          r_stride = 0;
          r_n = n;
          r_sign = prog.sign;
          r_cnt = 0;
        };
    }

  let program b = b.b_prog
  let count b = b.b_count
  let stride b = b.raw.r_stride

  let grow b lanes =
    let p = b.b_prog and r = b.raw in
    b.cap <- lanes;
    r.r_re <- mkplane (p.nslots * lanes);
    r.r_im <- mkplane (p.nslots * lanes);
    r.r_y_re <- mkplane (p.n * lanes);
    r.r_y_im <- mkplane (p.n * lanes);
    r.r_x_re <- mkplane (p.n * lanes);
    r.r_x_im <- mkplane (p.n * lanes);
    r.r_pvr <- mkplane lanes;
    r.r_pvi <- mkplane lanes;
    r.r_pmag <- mkplane lanes;
    r.r_rmax <- mkplane lanes;
    r.r_pden <- mkplane lanes;
    r.r_pyr <- mkplane lanes;
    r.r_pyi <- mkplane lanes;
    r.r_mur <- mkplane lanes;
    r.r_mui <- mkplane lanes;
    r.r_dre <- mkplane lanes;
    r.r_dim <- mkplane lanes;
    r.r_dexp <- mkiplane lanes;
    r.r_eject <- mkiplane lanes;
    b.s_re <- Array.make lanes 0.;
    b.s_im <- Array.make lanes 0.

  (* The planes are packed with stride [stride b] — the count padded to
     the tile width — so their layout changes per batch; [begin_batch]
     refills everything a batch reads.  Capacity only grows — the steady
     state (same pass sizes every generation) allocates nothing. *)
  let begin_batch b cnt =
    let lanes = stride_of cnt in
    if lanes > b.cap then grow b lanes;
    let r = b.raw in
    r.r_stride <- lanes;
    r.r_cnt <- cnt;
    b.b_count <- cnt;
    BA1.fill r.r_re 0.;
    BA1.fill r.r_im 0.;
    BA1.fill r.r_y_re 0.;
    BA1.fill r.r_y_im 0.;
    BA1.fill r.r_eject 0l

  let matrix_re b = b.raw.r_re
  let matrix_im b = b.raw.r_im
  let rhs_re b = b.raw.r_y_re
  let rhs_im b = b.raw.r_y_im
  let point_re b = b.s_re
  let point_im b = b.s_im

  let run b =
    if Tr.is_on () then
      Tr.span ~cat:"lu"
        ~args:[ ("points", string_of_int b.b_count) ]
        "lu.batch"
        (fun () -> raw_run b.raw)
    else raw_run b.raw

  let ejected b q = BA1.get b.raw.r_eject q <> 0l
  let det_is_zero b q = BA1.get b.raw.r_dre q = 0. && BA1.get b.raw.r_dim q = 0.

  let det b q =
    (* Normalised mantissa, as in the per-point [det]: [Ec.make] rebuilds
       the exact record the boxed fold produces. *)
    Ec.make
      ~c:{ Complex.re = BA1.get b.raw.r_dre q; im = BA1.get b.raw.r_dim q }
      ~e:(Int32.to_int (BA1.get b.raw.r_dexp q))

  let solution_re b = b.raw.r_x_re
  let solution_im b = b.raw.r_x_im

  (* Per-domain batch pooling, same shape as {!Pool}: one growable batch
     workspace per (pattern, domain), busy-guarded against same-domain
     reentrancy; a failed checkout sends the whole batch to the per-point
     path, which is bit-identical. *)
  module Pool = struct
    type batch = t

    type t = {
      p_prog : program;
      slots : batch option array Atomic.t;
      grow : Mutex.t;
    }

    let max_slots = 64
    let fresh_batch = create

    let create prog = { p_prog = prog; slots = Atomic.make [||]; grow = Mutex.create () }

    let slot_batch pl idx =
      let arr = Atomic.get pl.slots in
      if idx < Array.length arr && arr.(idx) <> None then arr.(idx)
      else begin
        Mutex.lock pl.grow;
        let arr = Atomic.get pl.slots in
        let arr =
          if idx < Array.length arr then arr
          else begin
            let bigger =
              Array.make
                (Int.min max_slots (Int.max (idx + 1) ((2 * Array.length arr) + 1)))
                None
            in
            Array.blit arr 0 bigger 0 (Array.length arr);
            Atomic.set pl.slots bigger;
            bigger
          end
        in
        let b =
          match arr.(idx) with
          | Some b -> b
          | None ->
              let b = fresh_batch pl.p_prog in
              arr.(idx) <- Some b;
              b
        in
        Mutex.unlock pl.grow;
        Some b
      end

    let checkout pl =
      let idx = domain_index () in
      if idx >= max_slots then None
      else
        match slot_batch pl idx with
        | None -> None
        | Some b ->
            if b.b_busy then None
            else begin
              b.b_busy <- true;
              Some b
            end

    let release b = b.b_busy <- false
  end
end
