module Ec = Symref_numeric.Extcomplex
module Obs = Symref_obs.Metrics
module Tr = Symref_obs.Trace
module Inject = Symref_fault.Inject

(* The fused refactor+solve execution engine.

   [Sparse.refactor] already performs its elimination on flat [re]/[im]
   float arrays, but then round-trips through a boxed [factor] (boxed
   [Complex.t] per multiplier, nested [upper] arrays built by [Array.init]
   closures) that [Sparse.solve] immediately unboxes again.  This module
   replays the same recorded elimination program {e and} the forward/back
   substitution directly on the flat workspaces: the boxed factor never
   exists on the hot path, the multipliers are never stored (the RHS
   forward elimination is fused into the step that computes each
   multiplier), and a [workspace] is allocated once per (pattern, domain)
   and reused across points and passes — the inner loop allocates nothing.

   Bit-identity contract: every float operation below mirrors the boxed
   [Sparse.refactor] + [Sparse.solve] + [Extcomplex] chain in the same
   order with the same formulas, so the kernel's determinant and solution
   are bit-for-bit the boxed path's.  Guard behaviour is mirrored too:
   the [Inject.sparse_singular] hook fires at the same place, and the
   threshold-floor / non-finite-pivot checks bail out exactly where
   [refactor] would return [None]. *)

type program = {
  n : int;  (* matrix dimension *)
  nslots : int;  (* workspace slots, structural fill included *)
  sign : int;  (* permutation sign of the pivot orders *)
  threshold : float;  (* threshold-pivoting floor parameter *)
  coo_slot : int array;  (* values index -> slot (the scatter map) *)
  pivot_rows : int array;  (* step -> original row *)
  pivot_cols : int array;  (* step -> original column *)
  pivot_slot : int array;  (* step -> slot of the pivot *)
  u_cols : int array array;  (* step -> original column per U entry *)
  u_slots : int array array;  (* step -> slot per U entry *)
  elim_row : int array array;  (* step -> row id per eliminated row *)
  elim_a_slot : int array array;  (* step -> slot of (row, pivot col) *)
  elim_upd : int array array array;
      (* step -> target -> destination slot per U entry *)
  lower_len : int;
  fill : int;
}

type workspace = {
  prog : program;
  re : float array;  (* nslots: matrix values, then L/U after [run] *)
  im : float array;
  y_re : float array;  (* n, by original row: RHS, then L^-1 RHS *)
  y_im : float array;
  x_re : float array;  (* n, by original column: the solution *)
  x_im : float array;
  det_m : float array;  (* length 2: determinant mantissa (re, im) *)
  mutable det_e : int;  (* determinant binary exponent *)
  mutable busy : bool;  (* checked out (same-domain reentrancy guard) *)
  scratch : float array;  (* length 1: loop-carried row maximum *)
}

let program ws = ws.prog

let workspace prog =
  Obs.incr Obs.kernel_workspaces;
  {
    prog;
    re = Array.make prog.nslots 0.;
    im = Array.make prog.nslots 0.;
    y_re = Array.make prog.n 0.;
    y_im = Array.make prog.n 0.;
    x_re = Array.make prog.n 0.;
    x_im = Array.make prog.n 0.;
    det_m = [| 0.; 0. |];
    det_e = 0;
    busy = false;
    scratch = [| 0. |];
  }

let begin_point ws =
  Array.fill ws.re 0 (Array.length ws.re) 0.;
  Array.fill ws.im 0 (Array.length ws.im) 0.;
  Array.fill ws.y_re 0 (Array.length ws.y_re) 0.;
  Array.fill ws.y_im 0 (Array.length ws.y_im) 0.

let[@inline] set_slot ws slot ~re ~im =
  ws.re.(slot) <- re;
  ws.im.(slot) <- im

let[@inline] set_value ws e ~re ~im = set_slot ws ws.prog.coo_slot.(e) ~re ~im

let[@inline] set_rhs ws row ~re ~im =
  ws.y_re.(row) <- re;
  ws.y_im.(row) <- im

(* Raw buffer access for hot-path scatters: a cross-module call to the
   setters above boxes its float arguments (no flambda), so allocation-free
   callers store into the flat arrays directly. *)
let matrix_re ws = ws.re
let matrix_im ws = ws.im
let rhs_buf_re ws = ws.y_re
let rhs_buf_im ws = ws.y_im

(* [snd (Float.frexp a)] for finite [a >= 0.], allocation-free
   ([Float.frexp] boxes a tuple on every call).  Scaling by a power of two
   is exact, so the exponent — and the mantissa [Float.ldexp a (-e)] the
   caller derives from it — is bit-for-bit what [frexp] computes.  The
   [512] step runs twice so deep subnormals (down to [2^-1074]) reach the
   [[2^-512, 2^512)] band the cascade then narrows to [[0.5, 2)]. *)
let[@inline always] frexp_exp a =
  let x = if a >= 0x1p512 then a *. 0x1p-512 else if a < 0x1p-512 then a *. 0x1p512 else a in
  let e = if a >= 0x1p512 then 512 else if a < 0x1p-512 then -512 else 0 in
  let e = if x >= 0x1p512 then e + 512 else if x < 0x1p-512 then e - 512 else e in
  let x = if x >= 0x1p512 then x *. 0x1p-512 else if x < 0x1p-512 then x *. 0x1p512 else x in
  let e = if x >= 0x1p256 then e + 256 else if x < 0x1p-256 then e - 256 else e in
  let x = if x >= 0x1p256 then x *. 0x1p-256 else if x < 0x1p-256 then x *. 0x1p256 else x in
  let e = if x >= 0x1p128 then e + 128 else if x < 0x1p-128 then e - 128 else e in
  let x = if x >= 0x1p128 then x *. 0x1p-128 else if x < 0x1p-128 then x *. 0x1p128 else x in
  let e = if x >= 0x1p64 then e + 64 else if x < 0x1p-64 then e - 64 else e in
  let x = if x >= 0x1p64 then x *. 0x1p-64 else if x < 0x1p-64 then x *. 0x1p64 else x in
  let e = if x >= 0x1p32 then e + 32 else if x < 0x1p-32 then e - 32 else e in
  let x = if x >= 0x1p32 then x *. 0x1p-32 else if x < 0x1p-32 then x *. 0x1p32 else x in
  let e = if x >= 0x1p16 then e + 16 else if x < 0x1p-16 then e - 16 else e in
  let x = if x >= 0x1p16 then x *. 0x1p-16 else if x < 0x1p-16 then x *. 0x1p16 else x in
  let e = if x >= 0x1p8 then e + 8 else if x < 0x1p-8 then e - 8 else e in
  let x = if x >= 0x1p8 then x *. 0x1p-8 else if x < 0x1p-8 then x *. 0x1p8 else x in
  let e = if x >= 0x1p4 then e + 4 else if x < 0x1p-4 then e - 4 else e in
  let x = if x >= 0x1p4 then x *. 0x1p-4 else if x < 0x1p-4 then x *. 0x1p4 else x in
  let e = if x >= 0x1p2 then e + 2 else if x < 0x1p-2 then e - 2 else e in
  let x = if x >= 0x1p2 then x *. 0x1p-2 else if x < 0x1p-2 then x *. 0x1p2 else x in
  let e = if x >= 2. then e + 1 else if x < 0.5 then e - 1 else e in
  let x = if x >= 2. then x *. 0.5 else if x < 0.5 then x *. 2. else x in
  if x >= 1. then e + 1 else e

exception Bail

(* The fused replay.  Identical arithmetic to [Sparse.refactor] step for
   step; the only additions are (a) the RHS forward elimination folded into
   each multiplier — reading the pivot row's RHS, which is frozen once its
   step runs, so the update sequence per row is exactly the boxed
   [Sparse.solve] lower replay — and (b) the determinant accumulated
   per step as an unboxed mirror of
   [Ec.mul acc (Ec.of_complex pivot)] instead of a post-hoc fold. *)
let run_fused ws =
  let p = ws.prog in
  let re = ws.re and im = ws.im in
  let y_re = ws.y_re and y_im = ws.y_im in
  let det_m = ws.det_m and scratch = ws.scratch in
  let n = p.n in
  (* det := Ec.one = { c = (0.5, 0.); e = 1 }. *)
  det_m.(0) <- 0.5;
  det_m.(1) <- 0.;
  ws.det_e <- 1;
  try
    for step = 0 to n - 1 do
      let ps = p.pivot_slot.(step) in
      let pr = re.(ps) and pim = im.(ps) in
      let pmag = Float.hypot pr pim in
      (* Threshold floor: the pivot must still dominate its remaining row
         the way Markowitz + threshold pivoting would have required.  A
         non-finite pivot (NaN-contaminated values) bails out too: NaN
         compares false against the floor, and the full search degrades to
         a clean singular result where a replay would feed NaN downstream. *)
      let us = p.u_slots.(step) in
      (* Unsafe accesses below: every index comes straight out of the
         recorded elimination program, whose construction in
         [Sparse.symbolic] guarantees slots < nslots and rows < n —
         bounds checks in these innermost loops are pure overhead. *)
      scratch.(0) <- pmag;
      for idx = 0 to Array.length us - 1 do
        let s = Array.unsafe_get us idx in
        let m = Float.hypot (Array.unsafe_get re s) (Array.unsafe_get im s) in
        if m > scratch.(0) then scratch.(0) <- m
      done;
      if pmag = 0. || (not (Float.is_finite pmag)) || pmag < p.threshold *. scratch.(0)
      then raise Bail;
      let den = (pr *. pr) +. (pim *. pim) in
      let targets = p.elim_row.(step) in
      let a_slots = p.elim_a_slot.(step) in
      let upds = p.elim_upd.(step) in
      let prow = p.pivot_rows.(step) in
      let pyr = y_re.(prow) and pyi = y_im.(prow) in
      for t = 0 to Array.length targets - 1 do
        let a = Array.unsafe_get a_slots t in
        let ar = Array.unsafe_get re a and ai = Array.unsafe_get im a in
        (* m = a / pivot, unboxed (same naive quotient as refactor). *)
        let mr = ((ar *. pr) +. (ai *. pim)) /. den
        and mi = ((ai *. pr) -. (ar *. pim)) /. den in
        (* Fused forward elimination: y_i -= m * y_pivot, the boxed
           [solve]'s lower replay without ever storing the multiplier. *)
        let i = Array.unsafe_get targets t in
        Array.unsafe_set y_re i
          (Array.unsafe_get y_re i -. ((mr *. pyr) -. (mi *. pyi)));
        Array.unsafe_set y_im i
          (Array.unsafe_get y_im i -. ((mr *. pyi) +. (mi *. pyr)));
        let upd = Array.unsafe_get upds t in
        for idx = 0 to Array.length us - 1 do
          let s = Array.unsafe_get us idx in
          let ur = Array.unsafe_get re s and ui = Array.unsafe_get im s in
          let d = Array.unsafe_get upd idx in
          Array.unsafe_set re d
            (Array.unsafe_get re d -. ((mr *. ur) -. (mi *. ui)));
          Array.unsafe_set im d
            (Array.unsafe_get im d -. ((mr *. ui) +. (mi *. ur)))
        done
      done;
      (* det := det * pivot — [Ec.mul acc (Ec.of_complex pv)] unboxed:
         normalise the pivot mantissa, multiply, renormalise. *)
      let pa =
        let apr = Float.abs pr and api = Float.abs pim in
        if apr >= api then apr else api
      in
      let dep = frexp_exp pa in
      let pmr = Float.ldexp pr (-dep) and pmi = Float.ldexp pim (-dep) in
      let ar = det_m.(0) and ai = det_m.(1) in
      let prr = (ar *. pmr) -. (ai *. pmi) in
      let pri = (ar *. pmi) +. (ai *. pmr) in
      let ma =
        let apr = Float.abs prr and api = Float.abs pri in
        if apr >= api then apr else api
      in
      if ma = 0. then begin
        det_m.(0) <- 0.;
        det_m.(1) <- 0.;
        ws.det_e <- 0
      end
      else begin
        let dem = frexp_exp ma in
        det_m.(0) <- Float.ldexp prr (-dem);
        det_m.(1) <- Float.ldexp pri (-dem);
        ws.det_e <- ws.det_e + dep + dem
      end
    done;
    if p.sign < 0 then begin
      (* [Ec.neg]: mantissa negated, exponent untouched. *)
      det_m.(0) <- -.det_m.(0);
      det_m.(1) <- -.det_m.(1)
    end;
    true
  with Bail -> false

let run ws =
  (* Same site, same budget as [Sparse.refactor]'s injection check, so an
     armed fault plan consumes hits identically on either path.  Like the
     boxed refactor, an injected singular is *not* a threshold fallback —
     [refactor_fallbacks] stays untouched; only the kernel-local counter
     records that this point left the fused path. *)
  if Inject.fire Inject.sparse_singular then begin
    Obs.incr Obs.kernel_fallbacks;
    false
  end
  else begin
    let ok =
      if Tr.is_on () then Tr.span ~cat:"lu" "lu.kernel" (fun () -> run_fused ws)
      else run_fused ws
    in
    if ok then begin
      (* The kernel run IS the numeric refactorisation: count it under the
         same catalogue entry so `replays + fallbacks = memo misses` keeps
         holding whichever engine served the point. *)
      Obs.incr Obs.lu_refactor;
      Obs.incr Obs.kernel_points
    end
    else begin
      Obs.incr Obs.refactor_fallbacks;
      Obs.incr Obs.kernel_fallbacks
    end;
    ok
  end

let det_is_zero ws = ws.det_m.(0) = 0. && ws.det_m.(1) = 0.

let det ws =
  (* The stored mantissa is already normalised (it came out of the unboxed
     [norm_mantissa] mirror above), so [Ec.make] reconstructs the exact
     record the boxed fold produces. *)
  Ec.make ~c:{ Complex.re = ws.det_m.(0); im = ws.det_m.(1) } ~e:ws.det_e

(* Back substitution, accumulated in the solution arrays themselves: each
   step's partial sums land in [x.(pivot_col)] — written by this step only —
   so no register-like temporaries (which would box) are needed.  The final
   division replicates [Complex.div]'s Smith's algorithm branch for branch. *)
let solve_into ws =
  let p = ws.prog in
  let re = ws.re and im = ws.im in
  let y_re = ws.y_re and y_im = ws.y_im in
  let x_re = ws.x_re and x_im = ws.x_im in
  for k = p.n - 1 downto 0 do
    let prow = p.pivot_rows.(k) in
    let pc = p.pivot_cols.(k) in
    x_re.(pc) <- y_re.(prow);
    x_im.(pc) <- y_im.(prow);
    let cols = p.u_cols.(k) and slots = p.u_slots.(k) in
    (* Program-derived indices, as in the replay above: unchecked. *)
    for idx = 0 to Array.length cols - 1 do
      let j = Array.unsafe_get cols idx in
      let s = Array.unsafe_get slots idx in
      let ur = Array.unsafe_get re s and ui = Array.unsafe_get im s in
      let xr = Array.unsafe_get x_re j and xi = Array.unsafe_get x_im j in
      x_re.(pc) <- x_re.(pc) -. ((ur *. xr) -. (ui *. xi));
      x_im.(pc) <- x_im.(pc) -. ((ur *. xi) +. (ui *. xr))
    done;
    let ps = p.pivot_slot.(k) in
    let pr = re.(ps) and pim = im.(ps) in
    let ar = x_re.(pc) and ai = x_im.(pc) in
    if Float.abs pr >= Float.abs pim then begin
      let r = pim /. pr in
      let d = pr +. (r *. pim) in
      x_re.(pc) <- (ar +. (r *. ai)) /. d;
      x_im.(pc) <- (ai -. (r *. ar)) /. d
    end
    else begin
      let r = pr /. pim in
      let d = pim +. (r *. pr) in
      x_re.(pc) <- ((r *. ar) +. ai) /. d;
      x_im.(pc) <- ((r *. ai) -. ar) /. d
    end
  done

let solution_re ws = ws.x_re
let solution_im ws = ws.x_im

(* --- Per-domain workspace pooling ----------------------------------------

   Workspaces are mutable scratch state: one per (pattern, domain).  Each
   domain gets a dense small index on first use ([Domain_pool] workers touch
   theirs at spawn), indexing a copy-on-write slot table per pool.  Only the
   owning domain ever touches its slot, so the unlocked fast path is
   race-free; growth serialises on a mutex and publishes a fresh array.
   The [busy] flag guards same-domain reentrancy (systhreads running jobs on
   one domain): a busy or over-cap checkout returns [None] and the caller
   uses the boxed path, which is bit-identical, so pooling pressure is
   invisible in results. *)

let next_index = Atomic.make 0
let index_key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next_index 1)
let domain_index () = Domain.DLS.get index_key

let try_acquire ws =
  if ws.busy then false
  else begin
    ws.busy <- true;
    true
  end

let release ws = ws.busy <- false

module Pool = struct
  type t = {
    p_prog : program;
    slots : workspace option array Atomic.t;
    grow : Mutex.t;
  }

  (* Spawn-strategy interpolation creates fresh domains per pass, so domain
     indices can grow without bound; beyond the cap a point simply takes the
     boxed path instead of leaking workspaces. *)
  let max_slots = 64

  let create prog = { p_prog = prog; slots = Atomic.make [||]; grow = Mutex.create () }

  let slot_workspace pl idx =
    let arr = Atomic.get pl.slots in
    if idx < Array.length arr && arr.(idx) <> None then arr.(idx)
    else begin
      Mutex.lock pl.grow;
      let arr = Atomic.get pl.slots in
      let arr =
        if idx < Array.length arr then arr
        else begin
          let bigger =
            Array.make (Int.min max_slots (Int.max (idx + 1) ((2 * Array.length arr) + 1))) None
          in
          Array.blit arr 0 bigger 0 (Array.length arr);
          Atomic.set pl.slots bigger;
          bigger
        end
      in
      let ws =
        match arr.(idx) with
        | Some ws -> ws
        | None ->
            let ws = workspace pl.p_prog in
            arr.(idx) <- Some ws;
            ws
      in
      Mutex.unlock pl.grow;
      Some ws
    end

  let checkout pl =
    let idx = domain_index () in
    if idx >= max_slots then None
    else
      match slot_workspace pl idx with
      | None -> None
      | Some ws -> if try_acquire ws then Some ws else None

  let release = release
end
