(** Fused unboxed refactor+solve execution engine.

    {!Sparse.refactor} replays a recorded elimination program on flat float
    arrays but then materialises a boxed factor that {!Sparse.solve}
    immediately unboxes again.  This module runs the {e same} program plus
    the forward/back substitution directly on preallocated flat [re]/[im]
    workspaces: no boxed factor, no stored multipliers (the RHS forward
    elimination is fused into multiplier computation), and zero heap
    allocation per point once a workspace exists.

    Bit-identity contract: {!run}, {!det} and {!solve_into} perform exactly
    the float operations of the boxed
    [Sparse.refactor] → [Sparse.det] → [Sparse.solve] chain, in the same
    order — results are bit-for-bit identical, and the threshold-floor
    bailout, non-finite-pivot degradation and
    [Inject.sparse_singular] fault hook behave identically, so the boxed
    path remains a semantically invisible fallback.

    Typical use per evaluation point: {!Pool.checkout} (or a dedicated
    {!workspace}), {!begin_point}, scatter with {!set_value}/{!set_rhs},
    {!run}; on success read {!det} and, unless {!det_is_zero}, call
    {!solve_into} and read {!solution_re}/{!solution_im}; finally
    {!Pool.release}. *)

type program = {
  n : int;  (** matrix dimension *)
  nslots : int;  (** workspace slots, structural fill included *)
  sign : int;  (** permutation sign of the pivot orders *)
  threshold : float;  (** threshold-pivoting floor parameter *)
  coo_slot : int array;  (** values index -> slot (the scatter map) *)
  pivot_rows : int array;  (** step -> original row *)
  pivot_cols : int array;  (** step -> original column *)
  pivot_slot : int array;  (** step -> slot of the pivot *)
  u_cols : int array array;  (** step -> original column per U entry *)
  u_slots : int array array;  (** step -> slot per U entry *)
  elim_row : int array array;  (** step -> row id per eliminated row *)
  elim_a_slot : int array array;  (** step -> slot of (row, pivot col) *)
  elim_upd : int array array array;
      (** step -> target -> destination slot per U entry (aligned with
          [u_slots]) *)
  lower_len : int;  (** multipliers the boxed path would store *)
  fill : int;  (** structural fill-in *)
}
(** The recorded elimination program — the value-independent half of a
    factorisation, shared with {!Sparse.pattern}
    (see {!Sparse.pattern_program}). *)

type workspace
(** Flat preallocated scratch state for one (program, domain): matrix
    slots, RHS and solution buffers, determinant accumulator. *)

val workspace : program -> workspace
(** Allocate a fresh workspace (counted by [kernel.workspaces]). *)

val program : workspace -> program

val begin_point : workspace -> unit
(** Zero the matrix and RHS buffers for a new evaluation point. *)

val set_value : workspace -> int -> re:float -> im:float -> unit
(** [set_value ws e ~re ~im] stores the value of structural entry [e] (in
    {!Sparse.pattern_coords} order — the scatter {!Sparse.refactor} applies
    to its [values] argument). *)

val set_slot : workspace -> int -> re:float -> im:float -> unit
(** Store directly by workspace slot (callers that precompose the
    coordinate-to-slot map skip the [coo_slot] indirection). *)

val set_rhs : workspace -> int -> re:float -> im:float -> unit
(** [set_rhs ws row ~re ~im] stores the right-hand side for an original
    row. *)

val matrix_re : workspace -> float array
val matrix_im : workspace -> float array
(** The raw slot-indexed matrix buffers (what {!set_slot} writes into).
    Hot-path scatter loops store into these directly: without flambda a
    cross-module [set_slot] call boxes its float arguments, and the whole
    point of the kernel is an allocation-free inner loop.  Write only
    between {!begin_point} and {!run}, at indices below the program's
    [nslots]. *)

val rhs_buf_re : workspace -> float array
val rhs_buf_im : workspace -> float array
(** The raw row-indexed right-hand-side buffers behind {!set_rhs}, under
    the same direct-store contract as {!matrix_re}. *)

val run : workspace -> bool
(** Replay the elimination program on the scattered values, fusing the RHS
    forward elimination.  [false] exactly when {!Sparse.refactor} would
    return [None]: a reused pivot is zero, non-finite, or under the
    threshold-pivoting floor — or the [sparse.singular] fault fired (the
    hook consumes one hit here just as [refactor] does).  Counts a success
    under [lu.refactor] + [kernel.points] and a threshold bailout under
    [lu.refactor_fallback] + [kernel.fallback], mirroring the boxed path's
    accounting; an injected singular counts only [kernel.fallback], since
    the boxed refactor's injection path increments nothing.
    Allocation-free in the steady state (a trace span is built only while
    tracing is on). *)

val frexp_exp : float -> int
(** [snd (Float.frexp a)] for finite [a >= 0.], allocation-free
    ([Float.frexp] boxes a tuple per call) — the determinant accumulator's
    normalisation step.  Exposed so the test suite can check it against
    [Float.frexp] across the full range, subnormals included. *)

val det : workspace -> Symref_numeric.Extcomplex.t
(** Determinant of the last successful {!run}: product of the pivots times
    the permutation sign, accumulated without ever storing the lower
    multipliers — bit-identical to [Sparse.det (Sparse.refactor ...)]. *)

val det_is_zero : workspace -> bool
(** Allocation-free [Ec.is_zero (det ws)]. *)

val solve_into : workspace -> unit
(** Back substitution into the preallocated solution buffers (the forward
    half already happened inside {!run}).  Only meaningful after a
    successful {!run} with a non-zero determinant. *)

val solution_re : workspace -> float array
val solution_im : workspace -> float array
(** The solution by original column index, valid until the next
    {!begin_point}.  These are the workspace's own buffers: read, don't
    keep. *)

(** {1 Per-domain indexing and pooling} *)

val domain_index : unit -> int
(** A small dense index for the calling domain, assigned on first use
    (re-exported as {!Symref_core.Domain_pool.worker_index}; pool workers
    touch theirs at spawn so long-lived domains get the low indices). *)

val try_acquire : workspace -> bool
(** Check the workspace out ([false] if already checked out — e.g. a
    systhread re-entering on the same domain). *)

val release : workspace -> unit

(** A per-domain workspace pool for one program: each domain lazily gets
    its own workspace, indexed by {!domain_index} in a copy-on-write table.
    Checkout fails (→ caller takes the bit-identical boxed path) when the
    index exceeds the table cap or the domain's workspace is busy. *)
module Pool : sig
  type t

  val create : program -> t
  val checkout : t -> workspace option
  val release : workspace -> unit
end

(** {1 The batched structure-of-arrays engine} *)

type plane = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A flat [Float64] plane holding one value per (slot, point): slot-major,
    index [slot * stride + point] with [stride] the batch's point count
    padded to the tile width ({!Batch.stride}), so each instruction's
    operand column is contiguous across the points of a batch and tiles
    never straddle columns. *)

(** Replays the elimination program {e once per batch}: the program —
    pre-flattened into int32 instruction streams — is decoded instruction
    by instruction, and every instruction runs an inner contiguous loop
    over a tile of the batch's points — amortising the decode traffic the
    per-point engine pays at every point, which dominates on long
    programs with little float work per step (the rc-ladder shape).  The
    loops themselves live in a C stub (batch_stub.c) compiled with
    vectorisation on and FP contraction off, so the float work runs as
    packed IEEE arithmetic while every per-point rounding stays exactly
    the OCaml engine's.

    Bit-identity: batching reorders float operations only across points
    (whose data never interact); within one point the dataflow is
    operation-for-operation the per-point {!run} + {!solve_into} chain, so
    per-point results are bit-for-bit identical.

    Eject semantics: a point that trips the threshold floor (or goes
    non-finite) is {e marked} ({!Batch.ejected}) and keeps computing
    garbage confined to its own plane column while the batch proceeds; the
    caller re-evaluates marked points on the boxed path.  The engine itself
    fires no fault hooks and touches no counters — the caller owns both, so
    it can interleave [Inject.sparse_singular] fires and per-point
    fallbacks in point order, reproducing the per-point engine's fire
    sequence exactly ({!Symref_mna.Nodal.eval_batch} is the reference
    consumer, and the accounting contract lives with the
    [kernel.batch_points]/[kernel.batch_ejects] counters). *)
module Batch : sig
  type t
  (** A growable batch workspace for one program: value/RHS/solution planes
      plus per-point scratch (pivot, row-max, multiplier, determinant
      accumulator, eject marks). *)

  val create : program -> t
  (** Allocate an empty batch workspace (counted under
      [kernel.workspaces]); capacity grows on first use. *)

  val program : t -> program

  val begin_batch : t -> int -> unit
  (** [begin_batch b count] sizes the planes for [count] points (growing
      capacity if needed — the steady state allocates nothing) and zeroes
      the value and RHS planes.  Fixes {!stride} for this batch. *)

  val count : t -> int
  (** Points in the current batch. *)

  val stride : t -> int
  (** The plane stride for the current batch: {!count} padded up to the
      engine's tile width (a multiple of 8).  Lanes at
      [count <= q < stride] are padding — zero-scattered, computed as
      garbage, never read back. *)

  val matrix_re : t -> plane
  val matrix_im : t -> plane
  (** Raw value planes for the scatter, under the same direct-store
      contract as the per-point {!matrix_re}: write between
      {!begin_batch} and {!run} at [slot * stride + point]. *)

  val rhs_re : t -> plane
  val rhs_im : t -> plane
  (** Raw right-hand-side planes, index [row * stride + point]. *)

  val point_re : t -> float array
  val point_im : t -> float array
  (** Per-point scratch of length >= [count] for the batch's evaluation
      points, so scatter loops read unboxed floats instead of chasing
      [Complex.t] records.  Purely a caller convenience: the engine never
      reads them. *)

  val run : t -> unit
  (** Batched elimination and back substitution (one [lu.batch] trace span
      when tracing is on).  Never fails: threshold/non-finite bails only
      mark {!ejected}.  Allocation-free in the steady state. *)

  val ejected : t -> int -> bool
  (** Whether the point left the batch (threshold floor or non-finite
      pivot at some step) — its column is garbage; re-evaluate it on the
      boxed path. *)

  val det_is_zero : t -> int -> bool

  val det : t -> int -> Symref_numeric.Extcomplex.t
  (** Determinant of a non-ejected point, bit-identical to the per-point
      {!det}. *)

  val solution_re : t -> plane
  val solution_im : t -> plane
  (** Solution planes, index [column * stride + point], valid until the
      next {!begin_batch}. *)

  (** Per-domain batch pooling, mirroring {!Pool}: a failed checkout sends
      the whole batch to the bit-identical per-point path. *)
  module Pool : sig
    type batch = t
    type t

    val create : program -> t
    val checkout : t -> batch option
    val release : batch -> unit
  end
end
