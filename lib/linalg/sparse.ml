module Ec = Symref_numeric.Extcomplex
module Obs = Symref_obs.Metrics
module Tr = Symref_obs.Trace
module Inject = Symref_fault.Inject

exception Singular

type builder = { n : int; rows : (int, Complex.t) Hashtbl.t array }

let create n =
  if n < 0 then invalid_arg "Sparse.create: negative dimension";
  { n; rows = Array.init n (fun _ -> Hashtbl.create 8) }

let add b i j v =
  if i < 0 || i >= b.n || j < 0 || j >= b.n then
    invalid_arg "Sparse.add: index out of range";
  let row = b.rows.(i) in
  match Hashtbl.find_opt row j with
  | None ->
      (* Component tests instead of the polymorphic [<> Complex.zero]: one
         [caml_compare] call per stamped entry, for two float compares.
         Identical semantics ([-0.] equal, NaN entries kept either way). *)
      if v.Complex.re <> 0. || v.Complex.im <> 0. then Hashtbl.replace row j v
  | Some old -> Hashtbl.replace row j (Complex.add old v)

let dimension b = b.n
let nnz b = Array.fold_left (fun acc r -> acc + Hashtbl.length r) 0 b.rows

let to_dense b =
  let a = Array.make_matrix b.n b.n Complex.zero in
  Array.iteri (fun i row -> Hashtbl.iter (fun j v -> a.(i).(j) <- v) row) b.rows;
  a

let clear b = Array.iter Hashtbl.reset b.rows

type factor = {
  n : int;
  pivot_rows : int array; (* step -> original row *)
  pivot_cols : int array; (* step -> original column *)
  pivots : Complex.t array;
  lower : (int * int * Complex.t) array; (* (row, step, multiplier), in order *)
  upper : (int * Complex.t) array array; (* step -> off-pivot U entries (orig col, v) *)
  det : Ec.t;
  fill_in : int;
  singular : bool;
}

(* Parity of the permutation sending position k to perm.(k). *)
let permutation_sign perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    if not seen.(k) then begin
      (* Walk the cycle containing k; a cycle of length L contributes
         (-1)^(L-1). *)
      let len = ref 0 and i = ref k in
      while not seen.(!i) do
        seen.(!i) <- true;
        incr len;
        i := perm.(!i)
      done;
      if !len mod 2 = 0 then sign := - !sign
    end
  done;
  !sign

(* The forced-singular fault: what {!factor} would return on a matrix with
   no admissible pivot at all.  Exercises every consumer's singular path
   (Cramer numerators, Interp's perturbed-point retry) without a contrived
   input matrix. *)
let injected_singular n =
  {
    n;
    pivot_rows = Array.make n (-1);
    pivot_cols = Array.make n (-1);
    pivots = Array.make n Complex.zero;
    lower = [||];
    upper = Array.make n [||];
    det = Ec.zero;
    fill_in = 0;
    singular = true;
  }

let factor ?(pivot_threshold = 0.1) (b : builder) =
  Obs.incr Obs.lu_factor;
  Tr.span ~cat:"lu" "lu.factor" @@ fun () ->
  if Inject.fire Inject.sparse_singular then injected_singular b.n
  else
  let n = b.n in
  let rows = Array.map Hashtbl.copy b.rows in
  let row_active = Array.make n true and col_active = Array.make n true in
  (* Row/column occupancy counts over the active submatrix, incremental. *)
  let col_count = Array.make n 0 in
  let row_count = Array.make n 0 in
  Array.iteri
    (fun i row ->
      row_count.(i) <- Hashtbl.length row;
      Hashtbl.iter (fun j _ -> col_count.(j) <- col_count.(j) + 1) row)
    rows;
  let pivot_rows = Array.make n (-1)
  and pivot_cols = Array.make n (-1)
  and pivots = Array.make n Complex.zero in
  let lower = ref [] and upper = Array.make n [||] in
  let det_mag = ref Ec.one in
  let fill = ref 0 in
  let singular = ref false in
  (* Markowitz search restricted to a few sparsest candidate rows: the
     classical circuit-simulator compromise between fill-in optimality and
     search cost (a full scan would dominate the factorisation). *)
  let max_candidate_rows = 8 in
  (try
     for k = 0 to n - 1 do
       let best = ref None in
       let search_row i =
         let row = rows.(i) in
         let rmax = ref 0. in
         Hashtbl.iter
           (fun j v ->
             if col_active.(j) then begin
               let m = Complex.norm v in
               if m > !rmax then rmax := m
             end)
           row;
         if !rmax > 0. then
           Hashtbl.iter
             (fun j v ->
               if col_active.(j) then begin
                 let m = Complex.norm v in
                 if m >= pivot_threshold *. !rmax then begin
                   let cost = (row_count.(i) - 1) * (col_count.(j) - 1) in
                   let better =
                     match !best with
                     | None -> true
                     | Some (_, _, _, bcost, bmag) ->
                         cost < bcost || (cost = bcost && m > bmag)
                   in
                   if better then best := Some (i, j, v, cost, m)
                 end
               end)
             row
       in
       (* Examine only the sparsest active rows (counts within one of the
          minimum), allocation-free. *)
       let min_count = ref max_int in
       for i = 0 to n - 1 do
         if row_active.(i) && row_count.(i) > 0 && row_count.(i) < !min_count then
           min_count := row_count.(i)
       done;
       if !min_count < max_int then begin
         let examined = ref 0 in
         let i = ref 0 in
         while !examined < max_candidate_rows && !i < n do
           if row_active.(!i) && row_count.(!i) > 0 && row_count.(!i) <= !min_count + 1
           then begin
             search_row !i;
             incr examined
           end;
           incr i
         done;
         (* Threshold pivoting can reject every entry of the sparse candidate
            rows; fall back to a full search before declaring singularity. *)
         if !best = None then
           for i = 0 to n - 1 do
             if row_active.(i) && row_count.(i) > 0 then search_row i
           done
       end;
       match !best with
       | None ->
           singular := true;
           raise Exit
       | Some (pi, pj, pv, _, _) ->
           pivot_rows.(k) <- pi;
           pivot_cols.(k) <- pj;
           pivots.(k) <- pv;
           det_mag := Ec.mul !det_mag (Ec.of_complex pv);
           row_active.(pi) <- false;
           col_active.(pj) <- false;
           Hashtbl.iter (fun j _ -> col_count.(j) <- col_count.(j) - 1) rows.(pi);
           (* Snapshot the U row (active columns other than the pivot). *)
           let u = ref [] in
           Hashtbl.iter
             (fun j v -> if j <> pj && col_active.(j) then u := (j, v) :: !u)
             rows.(pi);
           upper.(k) <- Array.of_list !u;
           (* Eliminate the pivot column from the remaining active rows. *)
           for i = 0 to n - 1 do
             if row_active.(i) then
               match Hashtbl.find_opt rows.(i) pj with
               | None -> ()
               | Some v ->
                   Hashtbl.remove rows.(i) pj;
                   col_count.(pj) <- col_count.(pj) - 1;
                   row_count.(i) <- row_count.(i) - 1;
                   let m = Complex.div v pv in
                   lower := (i, k, m) :: !lower;
                   Array.iter
                     (fun (j, u) ->
                       let upd = Complex.neg (Complex.mul m u) in
                       match Hashtbl.find_opt rows.(i) j with
                       | None ->
                           (* Innermost loop: component tests instead of a
                              polymorphic-compare call, same semantics. *)
                           if upd.Complex.re <> 0. || upd.Complex.im <> 0.
                           then begin
                             Hashtbl.replace rows.(i) j upd;
                             col_count.(j) <- col_count.(j) + 1;
                             row_count.(i) <- row_count.(i) + 1;
                             incr fill
                           end
                       | Some w ->
                           let nv = Complex.add w upd in
                           if nv.Complex.re = 0. && nv.Complex.im = 0. then begin
                             (* Exact cancellation: keeping a stored zero
                                would inflate the Markowitz row/column
                                counts and skew later pivot choices. *)
                             Hashtbl.remove rows.(i) j;
                             col_count.(j) <- col_count.(j) - 1;
                             row_count.(i) <- row_count.(i) - 1
                           end
                           else Hashtbl.replace rows.(i) j nv)
                     upper.(k)
           done
     done
   with Exit -> ());
  let det =
    if !singular then Ec.zero
    else
      let sr = permutation_sign pivot_rows and sc = permutation_sign pivot_cols in
      if sr * sc < 0 then Ec.neg !det_mag else !det_mag
  in
  {
    n;
    pivot_rows;
    pivot_cols;
    pivots;
    lower = Array.of_list (List.rev !lower);
    upper;
    det;
    fill_in = !fill;
    singular = !singular;
  }

let det f = f.det
let fill_in f = f.fill_in

(* --- Symbolic / numeric split ---------------------------------------------

   A [pattern] is the value-independent half of one factorisation: the pivot
   order, the slot layout (one flat-array slot per matrix position that is
   ever touched, fill-ins included) and the elimination program as index
   arrays.  [refactor] replays the program on fresh numeric values with no
   hashtable traffic at all: the inner loop is pure unboxed float-array
   arithmetic.  The classic SPICE/KLU trick — the sparsity structure of
   [G + sC] is the same at every interpolation point, so the ordering work
   is paid once per scale pair instead of once per point. *)

module Kernel = Kernel

(* The slot layout and elimination program live in {!Kernel.program} — the
   fused execution engine replays them without this module — while the
   pattern keeps the coordinate list that defines {!refactor}'s [values]
   order. *)
type pattern = {
  prog : Kernel.program;
  coo_rows : int array;  (* values index -> original row *)
  coo_cols : int array;  (* values index -> original column *)
}

let pattern_program p = p.prog
let pattern_dimension p = p.prog.Kernel.n
let pattern_nnz p = Array.length p.coo_rows
let pattern_coords p = Array.init (Array.length p.coo_rows) (fun e -> (p.coo_rows.(e), p.coo_cols.(e)))
let pattern_stats p = (p.prog.Kernel.nslots, p.prog.Kernel.fill)

(* Symbolic analysis: one full Markowitz factorisation that additionally
   records the slot layout and elimination program.  Unlike {!factor}, exact
   numeric cancellations keep their (zero-valued) entry: the pattern must
   stay structurally valid at evaluation points where the cancellation does
   not happen.  Returns [None] when the matrix is singular at the analysed
   point (no complete pivot sequence exists to record). *)
let symbolic ?(pivot_threshold = 0.1) (b : builder) =
  Obs.incr Obs.lu_symbolic;
  Tr.span ~cat:"lu" "lu.symbolic" @@ fun () ->
  let n = b.n in
  (* Per-row value and slot maps for the elimination workspace. *)
  let rows = Array.map Hashtbl.copy b.rows in
  let slots = Array.init n (fun _ -> Hashtbl.create 8) in
  let next_slot = ref 0 in
  let coo_rows = ref [] and coo_cols = ref [] and coo_slot = ref [] in
  Array.iteri
    (fun i row ->
      Hashtbl.iter
        (fun j _ ->
          Hashtbl.replace slots.(i) j !next_slot;
          coo_rows := i :: !coo_rows;
          coo_cols := j :: !coo_cols;
          coo_slot := !next_slot :: !coo_slot;
          incr next_slot)
        row)
    b.rows;
  let row_active = Array.make n true and col_active = Array.make n true in
  let col_count = Array.make n 0 in
  let row_count = Array.make n 0 in
  Array.iteri
    (fun i row ->
      row_count.(i) <- Hashtbl.length row;
      Hashtbl.iter (fun j _ -> col_count.(j) <- col_count.(j) + 1) row)
    rows;
  let pivot_rows = Array.make n (-1)
  and pivot_cols = Array.make n (-1)
  and pivots = Array.make n Complex.zero
  and pivot_slot = Array.make n (-1) in
  let u_cols = Array.make n [||]
  and u_slots = Array.make n [||]
  and elim_row = Array.make n [||]
  and elim_a_slot = Array.make n [||]
  and elim_upd = Array.make n [||] in
  let lower = ref [] and upper = Array.make n [||] in
  let lower_len = ref 0 in
  let det_mag = ref Ec.one in
  let fill = ref 0 in
  let singular = ref false in
  let max_candidate_rows = 8 in
  (try
     for k = 0 to n - 1 do
       let best = ref None in
       let search_row i =
         let row = rows.(i) in
         let rmax = ref 0. in
         Hashtbl.iter
           (fun j v ->
             if col_active.(j) then begin
               let m = Complex.norm v in
               if m > !rmax then rmax := m
             end)
           row;
         if !rmax > 0. then
           Hashtbl.iter
             (fun j v ->
               if col_active.(j) then begin
                 let m = Complex.norm v in
                 if m >= pivot_threshold *. !rmax then begin
                   let cost = (row_count.(i) - 1) * (col_count.(j) - 1) in
                   let better =
                     match !best with
                     | None -> true
                     | Some (_, _, _, bcost, bmag) ->
                         cost < bcost || (cost = bcost && m > bmag)
                   in
                   if better then best := Some (i, j, v, cost, m)
                 end
               end)
             row
       in
       let min_count = ref max_int in
       for i = 0 to n - 1 do
         if row_active.(i) && row_count.(i) > 0 && row_count.(i) < !min_count then
           min_count := row_count.(i)
       done;
       if !min_count < max_int then begin
         let examined = ref 0 in
         let i = ref 0 in
         while !examined < max_candidate_rows && !i < n do
           if row_active.(!i) && row_count.(!i) > 0 && row_count.(!i) <= !min_count + 1
           then begin
             search_row !i;
             incr examined
           end;
           incr i
         done;
         if !best = None then
           for i = 0 to n - 1 do
             if row_active.(i) && row_count.(i) > 0 then search_row i
           done
       end;
       match !best with
       | None ->
           singular := true;
           raise Exit
       | Some (pi, pj, pv, _, _) ->
           pivot_rows.(k) <- pi;
           pivot_cols.(k) <- pj;
           pivots.(k) <- pv;
           pivot_slot.(k) <- Hashtbl.find slots.(pi) pj;
           det_mag := Ec.mul !det_mag (Ec.of_complex pv);
           row_active.(pi) <- false;
           col_active.(pj) <- false;
           Hashtbl.iter (fun j _ -> col_count.(j) <- col_count.(j) - 1) rows.(pi);
           let u = ref [] in
           Hashtbl.iter
             (fun j v ->
               if j <> pj && col_active.(j) then
                 u := (j, v, Hashtbl.find slots.(pi) j) :: !u)
             rows.(pi);
           let u = Array.of_list !u in
           upper.(k) <- Array.map (fun (j, v, _) -> (j, v)) u;
           u_cols.(k) <- Array.map (fun (j, _, _) -> j) u;
           u_slots.(k) <- Array.map (fun (_, _, s) -> s) u;
           let e_row = ref [] and e_a = ref [] and e_upd = ref [] in
           for i = 0 to n - 1 do
             if row_active.(i) then
               match Hashtbl.find_opt rows.(i) pj with
               | None -> ()
               | Some v ->
                   Hashtbl.remove rows.(i) pj;
                   col_count.(pj) <- col_count.(pj) - 1;
                   row_count.(i) <- row_count.(i) - 1;
                   let m = Complex.div v pv in
                   lower := (i, k, m) :: !lower;
                   incr lower_len;
                   e_row := i :: !e_row;
                   e_a := Hashtbl.find slots.(i) pj :: !e_a;
                   let upd_slots =
                     Array.map
                       (fun (j, u, _) ->
                         let upd = Complex.neg (Complex.mul m u) in
                         match Hashtbl.find_opt rows.(i) j with
                         | None ->
                             (* Structural fill-in: always materialise the
                                slot, even when the numeric update happens
                                to vanish at this point. *)
                             Hashtbl.replace rows.(i) j upd;
                             let s = !next_slot in
                             incr next_slot;
                             Hashtbl.replace slots.(i) j s;
                             col_count.(j) <- col_count.(j) + 1;
                             row_count.(i) <- row_count.(i) + 1;
                             incr fill;
                             s
                         | Some w ->
                             Hashtbl.replace rows.(i) j (Complex.add w upd);
                             Hashtbl.find slots.(i) j)
                       u
                   in
                   e_upd := upd_slots :: !e_upd
           done;
           elim_row.(k) <- Array.of_list (List.rev !e_row);
           elim_a_slot.(k) <- Array.of_list (List.rev !e_a);
           elim_upd.(k) <- Array.of_list (List.rev !e_upd)
     done
   with Exit -> ());
  if !singular then None
  else begin
    let sr = permutation_sign pivot_rows and sc = permutation_sign pivot_cols in
    let sign = sr * sc in
    let det = if sign < 0 then Ec.neg !det_mag else !det_mag in
    let fct =
      {
        n;
        pivot_rows;
        pivot_cols;
        pivots;
        lower = Array.of_list (List.rev !lower);
        upper;
        det;
        fill_in = !fill;
        singular = false;
      }
    in
    let prog =
      {
        Kernel.n;
        nslots = !next_slot;
        sign;
        threshold = pivot_threshold;
        coo_slot = Array.of_list (List.rev !coo_slot);
        pivot_rows;
        pivot_cols;
        pivot_slot;
        u_cols;
        u_slots;
        elim_row;
        elim_a_slot;
        elim_upd;
        lower_len = !lower_len;
        fill = !fill;
      }
    in
    let pat =
      {
        prog;
        coo_rows = Array.of_list (List.rev !coo_rows);
        coo_cols = Array.of_list (List.rev !coo_cols);
      }
    in
    Some (pat, fct)
  end

(* Numeric refactorisation: replay the recorded elimination program on new
   values.  Returns [None] — caller falls back to a full Markowitz
   factorisation — whenever a reused pivot is exactly zero or falls below the
   threshold-pivoting floor relative to its remaining row, so accuracy never
   regresses versus from-scratch pivoting. *)
let refactor (p : pattern) (values : Complex.t array) =
  let q = p.prog in
  if Array.length values <> Array.length q.Kernel.coo_slot then
    invalid_arg "Sparse.refactor: values length does not match pattern";
  Tr.span ~cat:"lu" "lu.refactor" @@ fun () ->
  if Inject.fire Inject.sparse_singular then None
    (* as if a reused pivot hit the threshold floor: caller falls back *)
  else
  let re = Array.make q.Kernel.nslots 0. and im = Array.make q.Kernel.nslots 0. in
  Array.iteri
    (fun e (v : Complex.t) ->
      let s = q.Kernel.coo_slot.(e) in
      re.(s) <- v.Complex.re;
      im.(s) <- v.Complex.im)
    values;
  let n = q.Kernel.n in
  let lower = Array.make q.Kernel.lower_len (0, 0, Complex.zero) in
  let lpos = ref 0 in
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < n do
    let step = !k in
    let ps = q.Kernel.pivot_slot.(step) in
    let pr = re.(ps) and pim = im.(ps) in
    let pmag = Float.hypot pr pim in
    (* Threshold floor: the pivot must still dominate its remaining row the
       way Markowitz + threshold pivoting would have required. *)
    let us = q.Kernel.u_slots.(step) in
    let rmax = ref pmag in
    Array.iter
      (fun s ->
        let m = Float.hypot re.(s) im.(s) in
        if m > !rmax then rmax := m)
      us;
    (* A non-finite pivot (NaN-contaminated values) must also bail out: NaN
       compares false against the floor, and the full search degrades to a
       clean singular result where the replay would feed NaN downstream. *)
    if pmag = 0. || (not (Float.is_finite pmag)) || pmag < q.Kernel.threshold *. !rmax
    then ok := false
    else begin
      let den = (pr *. pr) +. (pim *. pim) in
      let targets = q.Kernel.elim_row.(step) in
      let a_slots = q.Kernel.elim_a_slot.(step) in
      let upds = q.Kernel.elim_upd.(step) in
      for t = 0 to Array.length targets - 1 do
        let a = a_slots.(t) in
        let ar = re.(a) and ai = im.(a) in
        (* m = a / pivot, unboxed. *)
        let mr = ((ar *. pr) +. (ai *. pim)) /. den
        and mi = ((ai *. pr) -. (ar *. pim)) /. den in
        lower.(!lpos) <- (targets.(t), step, { Complex.re = mr; im = mi });
        incr lpos;
        let upd = upds.(t) in
        for idx = 0 to Array.length us - 1 do
          let s = us.(idx) in
          let ur = re.(s) and ui = im.(s) in
          let d = upd.(idx) in
          re.(d) <- re.(d) -. ((mr *. ur) -. (mi *. ui));
          im.(d) <- im.(d) -. ((mr *. ui) +. (mi *. ur))
        done
      done;
      incr k
    end
  done;
  if not !ok then begin
    (* The caller will redo a full Markowitz search from scratch. *)
    Obs.incr Obs.refactor_fallbacks;
    None
  end
  else begin
    Obs.incr Obs.lu_refactor;
    (* Pivot-row slots freeze at their own step, so the final workspace holds
       exactly the U snapshots and pivots the factor needs. *)
    let pivots =
      Array.init n (fun k ->
          let s = q.Kernel.pivot_slot.(k) in
          { Complex.re = re.(s); im = im.(s) })
    in
    let upper =
      Array.init n (fun k ->
          let cols = q.Kernel.u_cols.(k) and slots = q.Kernel.u_slots.(k) in
          Array.init (Array.length cols) (fun idx ->
              let s = slots.(idx) in
              (cols.(idx), { Complex.re = re.(s); im = im.(s) })))
    in
    let det_mag =
      Array.fold_left (fun acc pv -> Ec.mul acc (Ec.of_complex pv)) Ec.one pivots
    in
    let det = if q.Kernel.sign < 0 then Ec.neg det_mag else det_mag in
    Some
      {
        n;
        pivot_rows = q.Kernel.pivot_rows;
        pivot_cols = q.Kernel.pivot_cols;
        pivots;
        lower;
        upper;
        det;
        fill_in = q.Kernel.fill;
        singular = false;
      }
  end

(* With row/column pivot orders P, Q and the stored unit-lower multipliers L
   and upper rows U (step coordinates: M = P A Q = L U), the transpose system
   A^T x = b becomes U^T L^T (P x) = Q^T b: a forward pass through U^T (using
   the inverse column-pivot map), a reverse replay of the multipliers for
   L^T, and the row-pivot scatter. *)
let solve_transpose f b =
  if Array.length b <> f.n then
    invalid_arg "Sparse.solve_transpose: dimension mismatch";
  if f.singular then raise Singular;
  let n = f.n in
  let step_of_col = Array.make n 0 in
  Array.iteri (fun k c -> step_of_col.(c) <- k) f.pivot_cols;
  let step_of_row = Array.make n 0 in
  Array.iteri (fun k r -> step_of_row.(r) <- k) f.pivot_rows;
  (* Forward: U^T w = Q^T b, scattering each solved w_k through U's row k. *)
  let w = Array.init n (fun k -> b.(f.pivot_cols.(k))) in
  for k = 0 to n - 1 do
    w.(k) <- Complex.div w.(k) f.pivots.(k);
    Array.iter
      (fun (j, u) ->
        let s = step_of_col.(j) in
        w.(s) <- Complex.sub w.(s) (Complex.mul u w.(k)))
      f.upper.(k)
  done;
  (* Backward: L^T v = w, replaying the multipliers in reverse. *)
  for idx = Array.length f.lower - 1 downto 0 do
    let i, k, m = f.lower.(idx) in
    let s = step_of_row.(i) in
    w.(k) <- Complex.sub w.(k) (Complex.mul m w.(s))
  done;
  (* P x = v. *)
  let x = Array.make n Complex.zero in
  Array.iteri (fun k r -> x.(r) <- w.(k)) f.pivot_rows;
  x

let solve f b =
  if Array.length b <> f.n then invalid_arg "Sparse.solve: dimension mismatch";
  if f.singular then raise Singular;
  let y = Array.copy b in
  (* Forward elimination replay: multipliers were recorded in order. *)
  Array.iter
    (fun (i, k, m) -> y.(i) <- Complex.sub y.(i) (Complex.mul m y.(f.pivot_rows.(k))))
    f.lower;
  let x = Array.make f.n Complex.zero in
  for k = f.n - 1 downto 0 do
    let acc = ref y.(f.pivot_rows.(k)) in
    Array.iter
      (fun (j, u) -> acc := Complex.sub !acc (Complex.mul u x.(j)))
      f.upper.(k);
    x.(f.pivot_cols.(k)) <- Complex.div !acc f.pivots.(k)
  done;
  x
