(** Sparse complex LU decomposition with Markowitz pivoting.

    MNA matrices of analog circuits are extremely sparse (a handful of
    entries per row); the paper notes its algorithm "has been implemented
    using sparse matrix techniques".  This module provides a right-looking
    LU with Markowitz ordering under threshold partial pivoting, the
    classical choice for circuit simulators.

    Typical use: assemble once with {!create}/{!add}, then {!factor} (at each
    interpolation or AC frequency point), read the {!det} and {!solve}. *)

exception Singular
(** Raised by {!solve} when the matrix is (numerically) singular. *)

type builder
(** Mutable triplet-style accumulator for an [n x n] matrix. *)

val create : int -> builder
(** [create n] prepares an empty [n x n] builder. @raise Invalid_argument
    when [n < 0]. *)

val add : builder -> int -> int -> Complex.t -> unit
(** [add b i j v] accumulates [v] into entry [(i, j)] (duplicates sum, as
    element stamps require). @raise Invalid_argument when out of range. *)

val dimension : builder -> int
val nnz : builder -> int
(** Number of structurally non-zero entries currently stored. *)

val to_dense : builder -> Complex.t array array
(** Materialise (test helper and dense-baseline bridge). *)

val clear : builder -> unit
(** Reset all entries, keeping the dimension (cheap re-assembly at the next
    frequency point). *)

type factor

val factor : ?pivot_threshold:float -> builder -> factor
(** LU-factorisation.  [pivot_threshold] (default [0.1]) is the threshold
    partial pivoting parameter [tau]: a pivot candidate must satisfy
    [|a| >= tau * max_row |a|]; among candidates the one minimising the
    Markowitz count [(r-1)(c-1)] is chosen (ties broken by magnitude).
    Singular matrices factor with determinant zero. *)

val det : factor -> Symref_numeric.Extcomplex.t
val fill_in : factor -> int
(** Entries created during elimination (diagnostic). *)

val solve : factor -> Complex.t array -> Complex.t array
(** @raise Singular on singular matrices.
    @raise Invalid_argument on dimension mismatch. *)

val solve_transpose : factor -> Complex.t array -> Complex.t array
(** Solve [transpose A x = b] from the same factorisation — the adjoint
    (transpose) network solve that yields every element sensitivity from a
    single extra substitution.  Same exceptions as {!solve}. *)

(** {1 Symbolic / numeric split}

    When the same sparsity structure is factorised at many numeric points
    (every interpolation point of one scale pair shares the structure of
    [G + sC]), the pivot search and the hashtable-based elimination workspace
    are pure overhead after the first point.  {!symbolic} runs one full
    Markowitz factorisation and records its {e pattern} — pivot order, slot
    layout (fill-ins included) and the elimination program as flat index
    arrays; {!refactor} then replays only the numeric elimination on unboxed
    float arrays, typically several times faster than {!factor}. *)

type pattern
(** The value-independent half of a factorisation: reusable across any
    numeric values with the same sparsity structure. *)

val symbolic : ?pivot_threshold:float -> builder -> (pattern * factor) option
(** [symbolic b] factorises [b] like {!factor} and records the pattern;
    the returned factor is the one at the analysed values, for free.
    [None] when the matrix is singular at the analysed point (there is no
    complete pivot sequence to record).  Unlike {!factor}, entries that
    cancel exactly during elimination are kept (with value zero): the
    pattern must stay structurally valid at points where the cancellation
    does not occur, so the recorded [fill_in] counts structural fill. *)

val refactor : pattern -> Complex.t array -> factor option
(** [refactor p values] redoes the numeric elimination with [values.(e)] the
    entry at {!pattern_coords}[ p].(e).  [None] when a reused pivot is
    exactly zero or falls below the threshold-pivoting floor relative to its
    remaining row — the caller should fall back to a fresh {!factor} so
    accuracy never regresses versus from-scratch pivoting.
    @raise Invalid_argument when [values] does not match the pattern. *)

val pattern_coords : pattern -> (int * int) array
(** [(row, col)] of each structural entry, in the order {!refactor} expects
    its [values] argument. *)

val pattern_dimension : pattern -> int

val pattern_nnz : pattern -> int
(** Number of structural entries, i.e. the length {!refactor} expects. *)

val pattern_stats : pattern -> int * int
(** [(slots, structural_fill)] — workspace size diagnostics. *)

(** {1 The fused kernel}

    {!Kernel} executes a pattern's recorded elimination program {e and} the
    forward/back substitution directly on flat preallocated workspaces —
    no boxed factor on the hot path, bit-identical results.
    [Sparse.Kernel] re-exports it so the engine reads as part of this
    module's API. *)

module Kernel = Kernel

val pattern_program : pattern -> Kernel.program
(** The pattern's elimination program, ready for {!Kernel.workspace} /
    {!Kernel.Pool.create}.  Entry [e] of {!refactor}'s [values] order
    scatters to slot [(pattern_program p).coo_slot.(e)]. *)
