module Sparse = Symref_linalg.Sparse
module Kernel = Symref_linalg.Kernel
module Ec = Symref_numeric.Extcomplex
module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist
module Obs = Symref_obs.Metrics
module Inject = Symref_fault.Inject
module BA1 = Bigarray.Array1

type input =
  | Vsrc_element of string
  | V_single of string
  | V_diff of string * string
  | V_common of string * string
  | I_single of string

type output = Out_node of string | Out_diff of string * string

exception Unsupported of string

type role = Ground | Driven of float | Free of int

(* The reduced system, stamped once at [make] time into coordinate arrays.
   Every matrix entry is an affine form [g_coef * g + (s * f) * c_coef]; the
   right-hand side additionally carries unscaled current injections.  [eval]
   then only combines coefficients per point — no netlist traversal, no
   hashtable assembly. *)
type stamp = {
  m_rows : int array;  (* coordinate -> reduced row *)
  m_cols : int array;  (* coordinate -> reduced column *)
  m_g : float array;  (* conductance-dimensioned coefficient (scales with g) *)
  m_c : float array;  (* capacitance coefficient (scales with f*s) *)
  rhs_g : float array;  (* per reduced row, from driven columns *)
  rhs_c : float array;
  rhs_k : float array;  (* constant current injections *)
}

(* Reusable symbolic factorisation, keyed by the scale pair: all unit-circle
   points of one interpolation pass share the sparsity structure of
   [g G + f s C], so the Markowitz ordering is learned once per (f, g) — at
   the canonical point [s = i], which is independent of evaluation order so
   parallel interpolation stays bit-identical to sequential — and only the
   numeric elimination is redone per point.  [None] payload: the pattern
   could not be learned (singular at the canonical point); evaluate from
   scratch.  The mutex makes concurrent [eval] calls from several domains
   safe. *)
(* The kernel half of a learned pattern: the coordinate-to-slot scatter map
   ([-1] for entries identically zero over the pass) and the per-domain
   workspace pool of the fused engine.  [None] when the kernel is disabled
   for this problem. *)
type kernel_payload = {
  k_slot : int array;
  k_pool : Kernel.Pool.t;
  k_batch : Kernel.Batch.Pool.t;
}

type payload = {
  pl_pat : Sparse.pattern;
  pl_pos : int array;  (* stamp coordinate -> pattern values index, -1 none *)
  pl_kernel : kernel_payload option;
}

type cache = {
  mutable pat : (float * float * payload option) option;
  lock : Mutex.t;
}

type t = {
  circuit : Netlist.t; (* input voltage source removed *)
  roles : role array;
  dim : int;
  injections : (int * float) list; (* reduced row -> unit-current injection *)
  out_p : int option;
  out_m : int option;
  den_gdeg : int;
  num_gdeg : int;
  order_bound : int;
  stamp : stamp;
  reuse : bool;
  use_kernel : bool;
  cache : cache;
}

type value = {
  den : Ec.t;
  num : Ec.t;
  h : Complex.t;
  singular : bool;
}

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let resolve_node circuit name =
  match Netlist.node_id circuit name with
  | Some id -> id
  | None -> unsupported "unknown node %s" name

(* One pass over the elements, accumulating the affine coefficients of every
   reduced-matrix entry and right-hand-side row.  Mirrors the per-point
   stamping the evaluator used to redo at every interpolation point. *)
let build_stamp circuit (roles : role array) dim injections =
  let cells = Hashtbl.create 64 in
  (* (r, c) -> (g coefficient, c coefficient), in first-touch order *)
  let order = ref [] in
  let rhs_g = Array.make dim 0.
  and rhs_c = Array.make dim 0.
  and rhs_k = Array.make dim 0. in
  let entry row col ~gc ~cc =
    match roles.(row) with
    | Ground | Driven _ -> ()
    | Free r -> (
        match roles.(col) with
        | Ground -> ()
        | Driven d ->
            rhs_g.(r) <- rhs_g.(r) -. (gc *. d);
            rhs_c.(r) <- rhs_c.(r) -. (cc *. d)
        | Free c -> (
            let key = (r, c) in
            match Hashtbl.find_opt cells key with
            | Some (gr, cr) ->
                gr := !gr +. gc;
                cr := !cr +. cc
            | None ->
                Hashtbl.add cells key (ref gc, ref cc);
                order := key :: !order))
  in
  let admittance a b ~gc ~cc =
    entry a a ~gc ~cc;
    entry b b ~gc ~cc;
    let gc = -.gc and cc = -.cc in
    entry a b ~gc ~cc;
    entry b a ~gc ~cc
  in
  let transconductance p m cp cm gm =
    entry p cp ~gc:gm ~cc:0.;
    entry p cm ~gc:(-.gm) ~cc:0.;
    entry m cp ~gc:(-.gm) ~cc:0.;
    entry m cm ~gc:gm ~cc:0.
  in
  let inject n amps =
    match roles.(n) with
    | Ground | Driven _ -> ()
    | Free r -> rhs_k.(r) <- rhs_k.(r) +. amps
  in
  List.iter
    (fun (e : Element.t) ->
      match e.Element.kind with
      | Element.Conductance { a; b; siemens } -> admittance a b ~gc:siemens ~cc:0.
      | Element.Resistor { a; b; ohms } -> admittance a b ~gc:(1. /. ohms) ~cc:0.
      | Element.Capacitor { a; b; farads } -> admittance a b ~gc:0. ~cc:farads
      | Element.Vccs { p; m; cp; cm; gm } -> transconductance p m cp cm gm
      | Element.Isrc { a; b; amps } ->
          inject a (-.amps);
          inject b amps
      | Element.Inductor _ | Element.Vcvs _ | Element.Cccs _ | Element.Ccvs _
      | Element.Vsrc _ ->
          assert false (* rejected in make *))
    (Netlist.elements circuit);
  List.iter (fun (r, v) -> rhs_k.(r) <- rhs_k.(r) +. v) injections;
  (* Coordinates whose both coefficients cancelled exactly are zero at every
     evaluation point; dropping them keeps the sparsity structure honest. *)
  let live =
    List.filter
      (fun key ->
        let gr, cr = Hashtbl.find cells key in
        !gr <> 0. || !cr <> 0.)
      (List.rev !order)
  in
  let m = List.length live in
  let m_rows = Array.make m 0
  and m_cols = Array.make m 0
  and m_g = Array.make m 0.
  and m_c = Array.make m 0. in
  List.iteri
    (fun e ((r, c) as key) ->
      let gr, cr = Hashtbl.find cells key in
      m_rows.(e) <- r;
      m_cols.(e) <- c;
      m_g.(e) <- !gr;
      m_c.(e) <- !cr)
    live;
  { m_rows; m_cols; m_g; m_c; rhs_g; rhs_c; rhs_k }

(* Escape hatch for A/B gating outside the API (CI's kernel bit-identity
   job diffs a kernel-on against a kernel-off run of the same binary). *)
let kernel_default =
  match Sys.getenv_opt "SYMREF_NO_KERNEL" with Some _ -> false | None -> true

let make ?(reuse = true) ?(kernel = kernel_default) circuit ~input ~output =
  (* Resolve the input into (circuit without source, driven nodes, current
     injections). *)
  let circuit, driven, injections_nodes =
    match input with
    | Vsrc_element name -> (
        match Netlist.find_element circuit name with
        | None -> unsupported "no element named %s" name
        | Some { Element.kind = Element.Vsrc { p; m; volts }; _ } ->
            let reduced = Netlist.remove_element circuit name in
            if m = 0 && p <> 0 then (reduced, [ (p, volts) ], [])
            else if p = 0 && m <> 0 then (reduced, [ (m, -.volts) ], [])
            else unsupported "voltage source %s is not grounded" name
        | Some _ -> unsupported "element %s is not a voltage source" name)
    | V_single name ->
        let n = resolve_node circuit name in
        if n = 0 then unsupported "cannot drive ground";
        (circuit, [ (n, 1.) ], [])
    | V_diff (pn, mn) ->
        let p = resolve_node circuit pn and m = resolve_node circuit mn in
        if p = 0 || m = 0 || p = m then
          unsupported "differential input needs two distinct non-ground nodes";
        (circuit, [ (p, 0.5); (m, -0.5) ], [])
    | V_common (pn, mn) ->
        let p = resolve_node circuit pn and m = resolve_node circuit mn in
        if p = 0 || m = 0 || p = m then
          unsupported "common-mode input needs two distinct non-ground nodes";
        (circuit, [ (p, 1.); (m, 1.) ], [])
    | I_single name ->
        let n = resolve_node circuit name in
        if n = 0 then unsupported "cannot inject into ground";
        (circuit, [], [ (n, 1.) ])
  in
  List.iter
    (fun e ->
      if not (Element.is_nodal_class e) then
        unsupported "element %s is outside the nodal class (%s)" e.Element.name
          (Element.describe e))
    (Netlist.elements circuit);
  let n_nodes = Netlist.node_count circuit in
  let roles = Array.make (n_nodes + 1) Ground in
  List.iter (fun (n, d) -> roles.(n) <- Driven d) driven;
  let dim = ref 0 in
  for i = 1 to n_nodes do
    match roles.(i) with
    | Ground ->
        roles.(i) <- Free !dim;
        incr dim
    | Driven _ -> ()
    | Free _ -> assert false
  done;
  let dim = !dim in
  if dim = 0 then unsupported "no free nodes left";
  let reduced_of name =
    let n = resolve_node circuit name in
    match roles.(n) with
    | Ground -> None
    | Free i -> Some i
    | Driven _ -> unsupported "output node %s is driven" name
  in
  let out_p, out_m =
    match output with
    | Out_node name -> (reduced_of name, None)
    | Out_diff (a, b) -> (reduced_of a, reduced_of b)
  in
  if out_p = None && out_m = None then unsupported "output is identically zero";
  let injections =
    List.map
      (fun (n, v) ->
        match roles.(n) with
        | Free i -> (i, v)
        | Ground | Driven _ -> unsupported "cannot inject into a driven node")
      injections_nodes
  in
  let num_gdeg = match input with I_single _ -> dim - 1 | _ -> dim in
  {
    circuit;
    roles;
    dim;
    injections;
    out_p;
    out_m;
    den_gdeg = dim;
    num_gdeg;
    order_bound = Int.min (Netlist.capacitor_count circuit) dim;
    stamp = build_stamp circuit roles dim injections;
    reuse;
    use_kernel = kernel;
    cache = { pat = None; lock = Mutex.create () };
  }

type plan = {
  reduced_circuit : Netlist.t;
  roles : role array;
  plan_dim : int;
  plan_out_p : int option;
  plan_out_m : int option;
  plan_injections : (int * float) list;
}

let plan t =
  {
    reduced_circuit = t.circuit;
    roles = Array.copy t.roles;
    plan_dim = t.dim;
    plan_out_p = t.out_p;
    plan_out_m = t.out_m;
    plan_injections = t.injections;
  }

let dimension t = t.dim
let kernel_enabled t = t.use_kernel && t.reuse
let order_bound t = t.order_bound
let den_gdeg t = t.den_gdeg
let num_gdeg t = t.num_gdeg
let mean_conductance t = Netlist.mean_conductance t.circuit
let mean_capacitance t = Netlist.mean_capacitance t.circuit

(* Learn the factorisation pattern for a scale pair at the canonical point
   [s = i].  With [s = i] an entry's value is [{re = g_coef*g; im = c_coef*f}]:
   it vanishes exactly when the entry vanishes at {e every} unit-circle point,
   so the learned structure covers all points of the pass. *)
let learn_pattern t ~f ~g =
  let st = t.stamp in
  let b = Sparse.create t.dim in
  Array.iteri
    (fun e r ->
      Sparse.add b r st.m_cols.(e)
        { Complex.re = st.m_g.(e) *. g; im = st.m_c.(e) *. f })
    st.m_rows;
  match Sparse.symbolic b with
  | None -> None
  | Some (pat, _) ->
      (* Map our coordinate order onto the pattern's values order. *)
      let index = Hashtbl.create 64 in
      Array.iteri (fun p rc -> Hashtbl.replace index rc p) (Sparse.pattern_coords pat);
      let pos =
        Array.init (Array.length st.m_rows) (fun e ->
            match Hashtbl.find_opt index (st.m_rows.(e), st.m_cols.(e)) with
            | Some p -> p
            | None -> -1 (* identically zero at every point of this pass *))
      in
      let pl_kernel =
        if not t.use_kernel then None
        else begin
          let prog = Sparse.pattern_program pat in
          (* Precompose coordinate -> values index -> slot so the hot-path
             scatter is one indirection. *)
          let k_slot =
            Array.map
              (fun p -> if p < 0 then -1 else prog.Kernel.coo_slot.(p))
              pos
          in
          Some
            {
              k_slot;
              k_pool = Kernel.Pool.create prog;
              k_batch = Kernel.Batch.Pool.create prog;
            }
        end
      in
      Some { pl_pat = pat; pl_pos = pos; pl_kernel }

let pattern_for t ~f ~g =
  let c = t.cache in
  Mutex.lock c.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.lock)
    (fun () ->
      match c.pat with
      | Some (pf, pg, payload) when pf = f && pg = g ->
          Obs.incr Obs.pattern_hits;
          payload
      | _ ->
          Obs.incr Obs.pattern_misses;
          let payload = learn_pattern t ~f ~g in
          c.pat <- Some (f, g, payload);
          payload)

(* The boxed per-point machinery, shared between [eval] and [eval_batch]'s
   per-point fallbacks (ejected points, pole points).  Toplevel rather than
   closures so both entry points run the exact same float expressions —
   bit-identity across the engines depends on the expression shapes here. *)

(* Lazy: the kernel paths write the right-hand side straight into their
   workspaces and never need the boxed array — only the boxed solve and the
   Cramer fallback force it. *)
let rhs_lazy t ~f ~g ~sre ~sim =
  let st = t.stamp in
  lazy
    (Array.init t.dim (fun r ->
         let cf = st.rhs_c.(r) *. f in
         {
           Complex.re = st.rhs_k.(r) +. (st.rhs_g.(r) *. g) +. (sre *. cf);
           im = sim *. cf;
         }))

(* Assemble a builder from the coordinate arrays — the full-Markowitz
   fallback and the singular-point Cramer matrices (column [col] replaced
   by the right-hand side) share this, so nothing is ever stamped twice.
   Value of coordinate [e] at a point: [g_coef*g + s*(c_coef*f)]. *)
let build_at t ~f ~g ~sre ~sim ~rhs ?replace_col () =
  let st = t.stamp in
  let m = Array.length st.m_rows in
  let value e =
    let cf = st.m_c.(e) *. f in
    { Complex.re = (st.m_g.(e) *. g) +. (sre *. cf); im = sim *. cf }
  in
  let b = Sparse.create t.dim in
  (match replace_col with
  | None -> for e = 0 to m - 1 do Sparse.add b st.m_rows.(e) st.m_cols.(e) (value e) done
  | Some col ->
      for e = 0 to m - 1 do
        if st.m_cols.(e) <> col then Sparse.add b st.m_rows.(e) st.m_cols.(e) (value e)
      done;
      Array.iteri
        (fun r v -> if v <> Complex.zero then Sparse.add b r col v)
        (Lazy.force rhs));
  b

let singular_value_at t ~f ~g ~sre ~sim ~rhs =
  (* A pole sits exactly on this interpolation point: H is undefined, but
     the numerator value is still well-defined through Cramer's rule
     (x_j * D = det of the matrix with column j replaced by the RHS). *)
  let cramer = function
    | None -> Ec.zero
    | Some col ->
        Sparse.det
          (Sparse.factor (build_at t ~f ~g ~sre ~sim ~rhs ~replace_col:col ()))
  in
  let num = Ec.sub (cramer t.out_p) (cramer t.out_m) in
  { den = Ec.zero; num; h = Complex.zero; singular = true }

let finish_at t ~f ~g ~sre ~sim ~rhs factor =
  let den = Sparse.det factor in
  if Ec.is_zero den then singular_value_at t ~f ~g ~sre ~sim ~rhs
  else begin
    let x = Sparse.solve factor (Lazy.force rhs) in
    let pick = function Some i -> x.(i) | None -> Complex.zero in
    let h = Complex.sub (pick t.out_p) (pick t.out_m) in
    let num = Ec.mul_complex den h in
    { den; num; h; singular = false }
  end

let from_scratch_at t ~f ~g ~sre ~sim ~rhs =
  finish_at t ~f ~g ~sre ~sim ~rhs
    (Sparse.factor (build_at t ~f ~g ~sre ~sim ~rhs ()))

let eval ?(f = 1.) ?(g = 1.) t s =
  let st = t.stamp in
  let m = Array.length st.m_rows in
  let sre = s.Complex.re and sim = s.Complex.im in
  (* Value of coordinate [e] at this point: [g_coef*g + s*(c_coef*f)]. *)
  let value e =
    let cf = st.m_c.(e) *. f in
    { Complex.re = (st.m_g.(e) *. g) +. (sre *. cf); im = sim *. cf }
  in
  let rhs = rhs_lazy t ~f ~g ~sre ~sim in
  let singular_value () = singular_value_at t ~f ~g ~sre ~sim ~rhs in
  let finish factor = finish_at t ~f ~g ~sre ~sim ~rhs factor in
  let from_scratch () = from_scratch_at t ~f ~g ~sre ~sim ~rhs in
  (* Fused-kernel evaluation: scatter, replay and substitute on the calling
     domain's pooled workspace — no boxed factor, no per-point allocation
     inside the engine.  Every outcome re-joins a boxed-path behaviour
     bit-identically: [`Bail] is exactly [refactor] returning [None],
     [`Pole] (a determinant of exactly zero) the boxed Cramer branch, and
     [`Unavailable] (workspace busy or over the pool cap) simply runs the
     boxed replay. *)
  let eval_kernel kp =
    match Kernel.Pool.checkout kp.k_pool with
    | None -> `Unavailable
    | Some ws ->
        Kernel.begin_point ws;
        (* Direct stores into the workspace buffers: a cross-module setter
           call would box every float argument in the scatter loop. *)
        let wre = Kernel.matrix_re ws and wim = Kernel.matrix_im ws in
        let k_slot = kp.k_slot in
        for e = 0 to m - 1 do
          let sl = k_slot.(e) in
          if sl >= 0 then begin
            let cf = st.m_c.(e) *. f in
            wre.(sl) <- (st.m_g.(e) *. g) +. (sre *. cf);
            wim.(sl) <- sim *. cf
          end
        done;
        (* Same arithmetic as the boxed [rhs] array, written straight into
           the workspace — no boxed Complex per entry. *)
        let yre = Kernel.rhs_buf_re ws and yim = Kernel.rhs_buf_im ws in
        for r = 0 to t.dim - 1 do
          let cf = st.rhs_c.(r) *. f in
          yre.(r) <- st.rhs_k.(r) +. (st.rhs_g.(r) *. g) +. (sre *. cf);
          yim.(r) <- sim *. cf
        done;
        if not (Kernel.run ws) then begin
          Kernel.Pool.release ws;
          `Bail
        end
        else if Kernel.det_is_zero ws then begin
          Kernel.Pool.release ws;
          `Pole
        end
        else begin
          let den = Kernel.det ws in
          Kernel.solve_into ws;
          let xr = Kernel.solution_re ws and xi = Kernel.solution_im ws in
          let hre =
            (match t.out_p with Some i -> xr.(i) | None -> 0.)
            -. (match t.out_m with Some i -> xr.(i) | None -> 0.)
          and him =
            (match t.out_p with Some i -> xi.(i) | None -> 0.)
            -. (match t.out_m with Some i -> xi.(i) | None -> 0.)
          in
          Kernel.Pool.release ws;
          let h = { Complex.re = hre; im = him } in
          let num = Ec.mul_complex den h in
          `Value { den; num; h; singular = false }
        end
  in
  if not t.reuse then from_scratch ()
  else
    match pattern_for t ~f ~g with
    | None -> from_scratch ()
    | Some pl -> (
        let boxed () =
          let pat = pl.pl_pat and pos = pl.pl_pos in
          let vals = Array.make (Sparse.pattern_nnz pat) Complex.zero in
          for e = 0 to m - 1 do
            let p = pos.(e) in
            if p >= 0 then vals.(p) <- value e
          done;
          match Sparse.refactor pat vals with
          (* Reused pivots hit the threshold floor (or an exact pole): redo
             the full Markowitz search so accuracy never regresses. *)
          | None -> from_scratch ()
          | Some factor -> finish factor
        in
        match pl.pl_kernel with
        | None -> boxed ()
        | Some kp -> (
            match eval_kernel kp with
            | `Value v -> v
            | `Pole -> singular_value ()
            | `Bail -> from_scratch ()
            | `Unavailable -> boxed ()))

(* One whole interpolation pass through the batched structure-of-arrays
   engine: scatter every point's matrix and RHS into slot-major planes, run
   the elimination program once (inner loops over the contiguous points of
   each instruction), then walk the points {e in order} to fire the
   [sparse.singular] hook and dispatch per-point fallbacks.

   Fire ordering is the reason the walk is sequential and ordered: the
   batched engine itself consumes no [Inject] hits and touches no counters,
   so point [q]'s kernel-site fire — and any [Sparse.factor] fires its
   fallback performs — lands strictly between point [q-1]'s and [q+1]'s,
   exactly the sequence the per-point engine produces.  An armed fault plan
   therefore replays identically under both engines, which is what the CI
   batched bit-identity gate diffs.

   Counter contract (see [Metrics.kernel_batch_points]): a batch-served
   point counts [lu.refactor] + [kernel.batch_points]; an ejected point
   (threshold floor, non-finite pivot, or injected singular) counts
   [kernel.fallback] + [kernel.batch_ejects] exactly once — it goes
   straight to the boxed full factorisation, never through the per-point
   kernel, so the eject can't double-count.  Threshold ejects additionally
   count [lu.refactor_fallback], injected ones don't — mirroring
   [Kernel.run]'s accounting branch for branch. *)
let run_batch t ~f ~g kp b points =
  let st = t.stamp in
  let m = Array.length st.m_rows in
  let cnt = Array.length points in
  Kernel.Batch.begin_batch b cnt;
  let stride = Kernel.Batch.stride b in
  let pre = Kernel.Batch.point_re b and pim = Kernel.Batch.point_im b in
  for q = 0 to cnt - 1 do
    pre.(q) <- points.(q).Complex.re;
    pim.(q) <- points.(q).Complex.im
  done;
  (* Direct stores into the planes: the per-coordinate coefficients are
     loop-invariant across the batch, so hoisting [g_coef*g] and [c_coef*f]
     keeps the per-point expression tree identical to [eval]'s
     [(m_g*g) +. (sre *. (m_c*f))]. *)
  let wre = Kernel.Batch.matrix_re b and wim = Kernel.Batch.matrix_im b in
  let k_slot = kp.k_slot in
  for e = 0 to m - 1 do
    let sl = Array.unsafe_get k_slot e in
    if sl >= 0 then begin
      let gc = Array.unsafe_get st.m_g e *. g
      and cf = Array.unsafe_get st.m_c e *. f in
      let base = sl * stride in
      for q = 0 to cnt - 1 do
        BA1.unsafe_set wre (base + q) (gc +. (Array.unsafe_get pre q *. cf));
        BA1.unsafe_set wim (base + q) (Array.unsafe_get pim q *. cf)
      done
    end
  done;
  let yre = Kernel.Batch.rhs_re b and yim = Kernel.Batch.rhs_im b in
  for r = 0 to t.dim - 1 do
    let cf = st.rhs_c.(r) *. f in
    let kg = st.rhs_k.(r) +. (st.rhs_g.(r) *. g) in
    let base = r * stride in
    for q = 0 to cnt - 1 do
      BA1.unsafe_set yre (base + q) (kg +. (Array.unsafe_get pre q *. cf));
      BA1.unsafe_set yim (base + q) (Array.unsafe_get pim q *. cf)
    done
  done;
  Kernel.Batch.run b;
  let xr = Kernel.Batch.solution_re b and xi = Kernel.Batch.solution_im b in
  Array.init cnt (fun q ->
      let s = points.(q) in
      let sre = s.Complex.re and sim = s.Complex.im in
      let rhs = rhs_lazy t ~f ~g ~sre ~sim in
      if Inject.fire Inject.sparse_singular then begin
        (* Injected singular: the per-point kernel bails here before its
           elimination, so injection takes precedence over a threshold
           eject — and, like [Kernel.run], it is not a threshold fallback:
           [lu.refactor_fallback] stays untouched. *)
        Obs.incr Obs.kernel_fallbacks;
        Obs.incr Obs.kernel_batch_ejects;
        from_scratch_at t ~f ~g ~sre ~sim ~rhs
      end
      else if Kernel.Batch.ejected b q then begin
        Obs.incr Obs.refactor_fallbacks;
        Obs.incr Obs.kernel_fallbacks;
        Obs.incr Obs.kernel_batch_ejects;
        from_scratch_at t ~f ~g ~sre ~sim ~rhs
      end
      else begin
        Obs.incr Obs.lu_refactor;
        Obs.incr Obs.kernel_batch_points;
        if Kernel.Batch.det_is_zero b q then
          singular_value_at t ~f ~g ~sre ~sim ~rhs
        else begin
          let den = Kernel.Batch.det b q in
          let hre =
            (match t.out_p with
            | Some i -> BA1.unsafe_get xr ((i * stride) + q)
            | None -> 0.)
            -. (match t.out_m with
               | Some i -> BA1.unsafe_get xr ((i * stride) + q)
               | None -> 0.)
          and him =
            (match t.out_p with
            | Some i -> BA1.unsafe_get xi ((i * stride) + q)
            | None -> 0.)
            -. (match t.out_m with
               | Some i -> BA1.unsafe_get xi ((i * stride) + q)
               | None -> 0.)
          in
          let h = { Complex.re = hre; im = him } in
          let num = Ec.mul_complex den h in
          { den; num; h; singular = false }
        end
      end)

let eval_batch ?(f = 1.) ?(g = 1.) t points =
  let cnt = Array.length points in
  if cnt = 0 then [||]
  else begin
    let per_point () = Array.map (fun s -> eval ~f ~g t s) points in
    if not (kernel_enabled t) then per_point ()
    else
      match pattern_for t ~f ~g with
      | None -> per_point ()
      | Some pl -> (
          match pl.pl_kernel with
          | None -> per_point ()
          | Some kp -> (
              (* A failed checkout (pool cap, busy batch on a re-entrant
                 systhread) sends the whole pass down the bit-identical
                 per-point path. *)
              match Kernel.Batch.Pool.checkout kp.k_batch with
              | None -> per_point ()
              | Some b ->
                  Fun.protect
                    ~finally:(fun () -> Kernel.Batch.Pool.release b)
                    (fun () -> run_batch t ~f ~g kp b points)))
  end

let elimination_program ?(f = 1.) ?(g = 1.) t =
  if not t.reuse then None
  else
    match pattern_for t ~f ~g with
    | None -> None
    | Some pl -> Some (Sparse.pattern_program pl.pl_pat)
