(** Nodal formulation for reference generation.

    This is the evaluation back-end of the interpolation engines: it
    evaluates the network-function numerator and denominator of a circuit at
    an arbitrary complex frequency [s] under the paper's frequency and
    conductance scaling (eq. 11):

    - conductance-dimensioned values (G, 1/R, gm) are multiplied by [g];
    - capacitances are multiplied by [f] (equivalently [s -> f*s]).

    Restricted to the {e nodal class} (G/R/C/VCCS/I sources) plus {e driven}
    voltage inputs, which are eliminated from the system.  Within this class
    every determinant monomial of the [s^i] coefficient contains exactly
    [gdeg - i] conductance factors, so denormalisation is the exact inverse
    [p_i = p'_i * f^(-i) * g^(i - gdeg)] — the property eq. 11 relies on.

    The denominator is [D(s) = det A(s)] (eq. 9) with [A] the reduced nodal
    matrix; [H(s)] comes from one sparse LU solve (eq. 8) and the numerator
    is recovered as [N(s) = H(s) * D(s)] (eq. 10). *)

type input =
  | Vsrc_element of string
      (** Drive through the named grounded voltage source already present in
          the netlist (it is removed and its non-ground node driven with
          its AC magnitude). *)
  | V_single of string  (** Unit voltage at the named node. *)
  | V_diff of string * string
      (** Differential drive [+1/2], [-1/2] — the paper's differential
          voltage gain convention, so that [H = vo / (vi+ - vi-)]. *)
  | V_common of string * string
      (** Both nodes driven with [+1] — the common-mode companion of
          [V_diff], for CMRR studies. *)
  | I_single of string  (** Unit AC current injected into the named node. *)

type output =
  | Out_node of string
  | Out_diff of string * string  (** [v(first) - v(second)]. *)

type t
(** A prepared transfer-function evaluation problem. *)

exception Unsupported of string
(** Raised by {!make} when the circuit leaves the nodal class (inductors,
    VCVS/CCCS/CCVS, floating or extra voltage sources) or refers to unknown
    nodes/elements. *)

val make :
  ?reuse:bool ->
  ?kernel:bool ->
  Symref_circuit.Netlist.t ->
  input:input ->
  output:output ->
  t
(** [reuse] (default [true]) enables the symbolic/numeric factorisation
    split: the Markowitz ordering of the reduced matrix is learned once per
    scale pair (at the canonical point [s = i]) and every evaluation replays
    only the numeric elimination, falling back to a full from-scratch
    factorisation whenever a reused pivot hits the threshold-pivoting floor.
    [~reuse:false] restores the factor-from-scratch-per-point behaviour
    (benchmark baseline).  [kernel] (default [true] unless the
    [SYMREF_NO_KERNEL] environment variable is set) additionally runs the
    replay {e and} the solve through the fused unboxed engine
    ({!Symref_linalg.Kernel}) on a per-domain pooled workspace; it only
    takes effect together with [reuse], is bit-identical to the boxed
    replay (including threshold-floor, fault-injection and singular-point
    behaviour), and is therefore a pure cost switch.  Evaluation is
    thread-safe either way. *)

val kernel_enabled : t -> bool
(** Whether evaluations may use the fused kernel ([kernel && reuse]). *)

val dimension : t -> int
(** Order of the reduced nodal matrix. *)

val order_bound : t -> int
(** Upper estimate on the polynomial order: [min (capacitors, dimension)] —
    the [K >= n+1] estimate the interpolation needs (paper §2.1). *)

val den_gdeg : t -> int
(** Conductance-homogeneity degree of the denominator. *)

val num_gdeg : t -> int
(** Conductance-homogeneity degree of the numerator. *)

type value = {
  den : Symref_numeric.Extcomplex.t;
      (** [D(s)], extended range; exactly zero when the evaluation point is a
          pole of the scaled network *)
  num : Symref_numeric.Extcomplex.t;
      (** [N(s)]: [H(s) * D(s)] (eq. 10) at regular points, Cramer
          determinants at a pole — so numerator interpolation survives scale
          factors that park a pole on the unit circle *)
  h : Complex.t;  (** [H(s)]; meaningless when [singular] *)
  singular : bool;  (** the scaled matrix was singular at this point *)
}

val eval : ?f:float -> ?g:float -> t -> Complex.t -> value
(** [eval ~f ~g t s] evaluates at the point [s] with frequency scale [f] and
    conductance scale [g] (both default [1.]). *)

val eval_batch : ?f:float -> ?g:float -> t -> Complex.t array -> value array
(** [eval_batch ~f ~g t points] evaluates every point of one interpolation
    pass through the batched structure-of-arrays engine
    ({!Symref_linalg.Kernel.Batch}): the elimination program is decoded once
    and each instruction loops over the contiguous points, instead of
    replaying the whole program per point.  Result [i] is bit-for-bit the
    value [eval ~f ~g t points.(i)] would produce, including threshold-floor
    ejects, singular points and armed [sparse.singular] fault plans (hook
    fires are interleaved in point order, exactly as a sequential per-point
    sweep consumes them) — so batching is a pure cost switch.  Falls back to
    a per-point sweep when the kernel is disabled, the pattern is
    unavailable, or the per-domain batch pool refuses a checkout.
    Batch-served points count [kernel.batch_points] (instead of
    [kernel.points]); ejected points count [kernel.fallback] +
    [kernel.batch_ejects] exactly once each. *)

val elimination_program :
  ?f:float -> ?g:float -> t -> Symref_linalg.Kernel.program option
(** The recorded elimination program for a scale pair — [None] when [reuse]
    is off or the canonical point is singular.  Exposed for the benchmark's
    program-shape statistics (steps, slots, fill, update counts); learning
    or reusing the pattern counts under the pattern.* counters as usual. *)

val mean_conductance : t -> float
val mean_capacitance : t -> float
(** Heuristic inputs for the first interpolation (paper §3.2).
    @raise Invalid_argument when the circuit has none. *)

type role = Ground | Driven of float | Free of int

type plan = {
  reduced_circuit : Symref_circuit.Netlist.t;
      (** circuit with the input voltage source removed *)
  roles : role array;  (** indexed by original node id *)
  plan_dim : int;
  plan_out_p : int option;  (** reduced index of the positive output *)
  plan_out_m : int option;
  plan_injections : (int * float) list;  (** reduced row -> injected current *)
}

val plan : t -> plan
(** The reduction the evaluator applies, exposed so other formulations
    (e.g. exact symbolic expansion) can build the {e same} matrix and get
    coefficients that line up with the numerical references. *)
