type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let fail fmt = Printf.ksprintf failwith fmt

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (number_to_string x)
  | Str s -> escape buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* --- parsing: plain recursive descent over the string --- *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "Json.parse: expected '%c' at %d, got '%c'" ch c.pos x
  | None -> fail "Json.parse: expected '%c' at %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "Json.parse: bad literal at %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "Json.parse: unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some (('"' | '\\' | '/') as ch) -> advance c; Buffer.add_char buf ch; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then
              fail "Json.parse: truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "Json.parse: bad \\u escape %s" hex
            in
            (* UTF-8 encode the BMP codepoint (surrogate pairs unsupported;
               nothing in this repository emits them). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail "Json.parse: bad escape at %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some x -> x
  | None -> fail "Json.parse: bad number %S at %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "Json.parse: unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((k, v) :: acc)
          | Some '}' -> advance c; List.rev ((k, v) :: acc)
          | _ -> fail "Json.parse: expected ',' or '}' at %d" c.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; elements (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> fail "Json.parse: expected ',' or ']' at %d" c.pos
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse src =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then
    fail "Json.parse: trailing garbage at %d" c.pos;
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* --- accessors --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> int_of_float x
  | j -> fail "Json.to_int: not an integer (%s)" (to_string j)

let to_list = function
  | Arr xs -> xs
  | j -> fail "Json.to_list: not an array (%s)" (to_string j)

let to_str = function
  | Str s -> s
  | j -> fail "Json.to_str: not a string (%s)" (to_string j)
