(** A dependency-free JSON tree, printer and parser.

    Exactly the subset the observability layer needs: {!Snapshot} values
    round-trip through it, and tests use it to validate the Chrome
    trace_event files {!Trace} writes and the benchmark output.  Numbers are
    floats (integers are printed without a decimal point); surrogate pairs
    in [\u] escapes are not supported. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val parse : string -> t
(** @raise Failure on malformed input (with an offset in the message). *)

val parse_file : string -> t
(** @raise Failure on malformed input, [Sys_error] on I/O errors. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing keys and non-objects. *)

val to_int : t -> int
(** @raise Failure when the value is not an integral number. *)

val to_list : t -> t list
(** @raise Failure when the value is not an array. *)

val to_str : t -> string
(** @raise Failure when the value is not a string. *)
