(* Process-wide counters for the reference pipeline.

   The contract that keeps this safe to sprinkle over hot paths:

   - When disabled (the default), a counter update is one non-atomic bool
     load and a branch — no allocation, no atomic traffic, no lock.
   - When enabled, updates are [Atomic] operations, so multi-domain
     interpolation counts exactly.
   - Counters are registered once, at module-initialisation time; the
     registry itself is only ever read afterwards. *)

let enabled_flag = ref false

let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

type counter = { c_name : string; cell : int Atomic.t }

(* Power-of-two buckets: [counts.(0)] holds observations <= 1, [counts.(i)]
   observations in (2^(i-1), 2^i].  Fixed size, so [observe] never
   allocates. *)
let histogram_buckets = 31

type histogram = { h_name : string; counts : int Atomic.t array }

let registry_lock = Mutex.create ()
let counters : counter list ref = ref []
let histograms : histogram list ref = ref []

let counter name =
  let c = { c_name = name; cell = Atomic.make 0 } in
  Mutex.lock registry_lock;
  counters := c :: !counters;
  Mutex.unlock registry_lock;
  c

let histogram name =
  let h =
    { h_name = name; counts = Array.init histogram_buckets (fun _ -> Atomic.make 0) }
  in
  Mutex.lock registry_lock;
  histograms := h :: !histograms;
  Mutex.unlock registry_lock;
  h

let incr c = if !enabled_flag then Atomic.incr c.cell
let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell
let name c = c.c_name

let bucket_index v =
  if v <= 1 then 0
  else begin
    let i = ref 0 and x = ref 1 in
    while !x < v && !i < histogram_buckets - 1 do
      x := !x * 2;
      i := !i + 1
    done;
    !i
  end

let observe h v =
  if !enabled_flag then Atomic.incr h.counts.(bucket_index v)

let histogram_name h = h.h_name

(* (bucket upper bound, count) for every non-empty bucket. *)
let histogram_buckets_of h =
  let acc = ref [] in
  for i = histogram_buckets - 1 downto 0 do
    let n = Atomic.get h.counts.(i) in
    if n > 0 then acc := ((1 lsl i), n) :: !acc
  done;
  !acc

let reset () =
  List.iter (fun c -> Atomic.set c.cell 0) !counters;
  List.iter (fun h -> Array.iter (fun a -> Atomic.set a 0) h.counts) !histograms

let all () = List.rev_map (fun c -> (c.c_name, value c)) !counters
let all_histograms () =
  List.rev_map (fun h -> (h.h_name, histogram_buckets_of h)) !histograms

(* --- the pipeline's counter catalogue ------------------------------------

   Defined here (not at the call sites) so instrumentation, the CLI table,
   snapshots and tests all agree on one name per quantity.  Keep
   [doc/observability.mld] in sync when adding entries. *)

let lu_factor = counter "lu.factor"
let lu_symbolic = counter "lu.symbolic"
let lu_refactor = counter "lu.refactor"
let refactor_fallbacks = counter "lu.refactor_fallback"

(* The kernel family: the fused unboxed refactor+solve engine
   ([Symref_linalg.Kernel]).  Kernel-served points are *also* counted under
   [lu.refactor]/[lu.refactor_fallback] — the kernel is the numeric
   refactorisation, fused — so the lu.* invariants hold whichever engine
   served a point; these three tell how many went through the fused path. *)
let kernel_points = counter "kernel.points"
let kernel_fallbacks = counter "kernel.fallback"
let kernel_workspaces = counter "kernel.workspaces"
let kernel_batch_points = counter "kernel.batch_points"
let kernel_batch_ejects = counter "kernel.batch_ejects"
let evaluator_calls = counter "evaluator.calls"
let memo_hits = counter "evaluator.memo_hit"
let memo_misses = counter "evaluator.memo_miss"
let pattern_hits = counter "nodal.pattern_hit"
let pattern_misses = counter "nodal.pattern_miss"
let adaptive_passes = counter "adaptive.passes"
let dry_passes = counter "adaptive.dry_passes"
let deflated_passes = counter "adaptive.deflated_passes"
let points_evaluated = counter "interp.points_evaluated"
let points_per_pass = histogram "interp.points_per_pass"

(* The guard family: graceful degradation inside [Interp.run] — singular or
   non-finite evaluations retried at perturbed unit-circle points instead of
   aborting the pass (see [doc/robustness.mld]). *)
let guard_singular_retries = counter "guard.singular_retries"
let guard_nonfinite_retries = counter "guard.nonfinite_retries"
let guard_retry_giveups = counter "guard.retry_giveups"

(* The serve family: the result cache and job scheduler of [Symref_serve].
   (The cache and scheduler also keep their own always-on gauges for
   protocol stats replies; these counters are the --stats/snapshot view.) *)
let serve_cache_hits = counter "serve.cache_hit"
let serve_cache_misses = counter "serve.cache_miss"
let serve_cache_evictions = counter "serve.cache_eviction"
let serve_jobs_submitted = counter "serve.jobs_submitted"
let serve_jobs_completed = counter "serve.jobs_completed"
let serve_jobs_failed = counter "serve.jobs_failed"
let serve_jobs_timeout = counter "serve.jobs_timeout"
let serve_jobs_rejected = counter "serve.jobs_rejected"
let serve_client_retries = counter "serve.client_retries"

(* Fleet additions: the in-memory cache's live byte gauge (maintained by
   +/- deltas, so it reads as a level, not a rate), the persistent on-disk
   cache layer, and the consistent-hash front router. *)
let serve_cache_bytes = counter "serve.cache_bytes"
let serve_disk_cache_hits = counter "serve.disk_cache_hit"
let serve_disk_cache_misses = counter "serve.disk_cache_miss"
let serve_disk_cache_writes = counter "serve.disk_cache_write"
let serve_disk_cache_corrupt = counter "serve.disk_cache_corrupt"
let router_requests = counter "router.requests"
let router_failovers = counter "router.failovers"
let router_health_checks = counter "router.health_checks"
let router_dead_workers = counter "router.dead_workers"

(* Resilience additions: overload shedding in the scheduler, the disk-cache
   scrubber, request hedging and the per-worker circuit breakers in the
   router, and the fleet supervisor's restart accounting. *)
let serve_shed_jobs = counter "serve.shed_jobs"
let serve_evicted_jobs = counter "serve.evicted_jobs"
let serve_disk_cache_scrubbed = counter "serve.disk_cache_scrubbed"
let router_hedges = counter "router.hedges"
let router_hedge_wins = counter "router.hedge_wins"
let router_breaker_opens = counter "router.breaker_open"
let router_breaker_half_opens = counter "router.breaker_half_open"
let router_breaker_closes = counter "router.breaker_close"
let fleet_restarts = counter "fleet.restarts"
let fleet_giveups = counter "fleet.giveups"

(* The simplify family: the reference-driven simplification pipeline
   ([Symref_simplify.Pipeline]).  Retries are tightened SDG/SAG re-runs
   after a failed verification; fallbacks are runs that ended on the exact
   pruned expression; unsupported counts circuits over the symbolic
   dimension limit. *)
let simplify_requests = counter "simplify.requests"
let simplify_retries = counter "simplify.retries"
let simplify_fallbacks = counter "simplify.fallbacks"
let simplify_unsupported = counter "simplify.unsupported"
let simplify_removed_elements = counter "simplify.removed_elements"
let simplify_removed_terms = counter "simplify.removed_terms"
