(** Process-wide, domain-safe counters and histograms for the reference
    pipeline.

    Disabled by default.  While disabled every update is a single non-atomic
    boolean load and a branch — no allocation, no atomic traffic — so
    instrumentation can live on hot paths without measurable cost.  While
    enabled, updates are [Atomic] operations and therefore exact under
    multi-domain interpolation ({!Symref_core.Interp.run}[ ~domains]).

    The fixed catalogue at the bottom is the single source of truth for the
    pipeline's counter names; {!Snapshot} dumps exactly these. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every registered counter and histogram. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Register a new counter.  Call at module-initialisation time only. *)

val incr : counter -> unit
(** No-op while disabled. *)

val add : counter -> int -> unit
(** No-op while disabled. *)

val value : counter -> int
val name : counter -> string

val all : unit -> (string * int) list
(** Every registered counter with its current value, in registration
    order. *)

(** {1 Histograms}

    Power-of-two buckets: bucket [0] collects observations [<= 1], bucket
    [i] observations in [(2^(i-1), 2^i]].  Fixed depth, so {!observe} never
    allocates. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> int -> unit
val histogram_name : histogram -> string

val histogram_buckets_of : histogram -> (int * int) list
(** [(bucket upper bound, count)] for every non-empty bucket, ascending. *)

val all_histograms : unit -> (string * (int * int) list) list

(** {1 The pipeline's counter catalogue} *)

val lu_factor : counter
(** Full Markowitz factorisations ({!Symref_linalg.Sparse.factor}). *)

val lu_symbolic : counter
(** Symbolic (pattern-recording) factorisations
    ({!Symref_linalg.Sparse.symbolic}). *)

val lu_refactor : counter
(** Successful numeric replays ({!Symref_linalg.Sparse.refactor}). *)

val refactor_fallbacks : counter
(** Refactor attempts rejected by the threshold-pivoting floor (the caller
    fell back to a full factorisation). *)

(** {2 The kernel family}

    The fused unboxed refactor+solve engine ({!Symref_linalg.Kernel}).
    Kernel-served points are {e also} counted under
    [lu.refactor]/[lu.refactor_fallback] — the kernel {e is} the numeric
    refactorisation, fused — so the lu.* invariants are engine-agnostic. *)

val kernel_points : counter
(** Evaluation points served by the fused kernel (elimination + solve on
    flat workspaces, no boxed factor). *)

val kernel_fallbacks : counter
(** Kernel runs that bailed (threshold floor, non-finite pivot or injected
    singularity) back to the boxed path. *)

val kernel_workspaces : counter
(** Workspaces allocated — one per (pattern, domain) in the steady state,
    per-point and batched alike. *)

val kernel_batch_points : counter
(** Evaluation points served by the batched structure-of-arrays engine
    ({!Symref_linalg.Kernel.Batch}) — counted {e instead of}
    [kernel.points], so the two engines stay distinguishable; batch-served
    points still count under [lu.refactor]. *)

val kernel_batch_ejects : counter
(** Points ejected from a batch to the boxed per-point fallback (threshold
    floor, non-finite pivot, or injected singularity).  An ejected point is
    counted here and under [kernel.fallback] exactly once — it goes
    straight to the boxed full factorisation, never through the per-point
    kernel, so the two counters cannot double-count one point. *)

val evaluator_calls : counter
(** {!Symref_core.Evaluator} [eval] calls — the paper's cost metric. *)

val memo_hits : counter
(** Shared num/den evaluator: evaluations served from the memo table. *)

val memo_misses : counter
(** Shared num/den evaluator: evaluations that performed a factorisation. *)

val pattern_hits : counter
(** Per-scale factorisation-pattern cache hits
    ({!Symref_mna.Nodal}). *)

val pattern_misses : counter
(** Pattern-cache misses: a symbolic analysis was (re)learned. *)

val adaptive_passes : counter
(** Interpolation passes executed by {!Symref_core.Adaptive.run}. *)

val dry_passes : counter
(** Passes that established no new coefficient. *)

val deflated_passes : counter
(** Passes that subtracted known coefficients before interpolating
    (eq. 17 problem reduction). *)

val points_evaluated : counter
(** LU evaluation points across all interpolation batches. *)

val points_per_pass : histogram
(** Distribution of evaluation points per interpolation batch. *)

(** {2 The guard family}

    Graceful degradation inside {!Symref_core.Interp.run}: evaluations that
    come back singular (zero) or non-finite are retried at slightly
    perturbed unit-circle points instead of aborting the pass. *)

val guard_singular_retries : counter
(** Singular (zero) evaluations retried at a perturbed point. *)

val guard_nonfinite_retries : counter
(** Non-finite evaluations retried at a perturbed point. *)

val guard_retry_giveups : counter
(** Points whose retry budget ran out (the original value was kept). *)

(** {2 The serve family}

    Result cache and job scheduler of the [Symref_serve] service (daemon
    and in-process batch sweeps alike). *)

val serve_cache_hits : counter
(** Jobs answered from the content-addressed result cache. *)

val serve_cache_misses : counter
(** Cache lookups that had to run the analysis. *)

val serve_cache_evictions : counter
(** Entries evicted by the cache's byte budget (LRU order). *)

val serve_jobs_submitted : counter
(** Jobs accepted by the scheduler (admitted past the queue bound). *)

val serve_jobs_completed : counter
(** Jobs that finished with a successful reply (cached or computed). *)

val serve_jobs_failed : counter
(** Jobs that finished with a structured error reply. *)

val serve_jobs_timeout : counter
(** Jobs cancelled by their wall-clock deadline. *)

val serve_jobs_rejected : counter
(** Submissions refused with a backpressure reply (queue full). *)

val serve_client_retries : counter
(** Client-side request retries (busy replies and transient socket
    failures, see {!Symref_serve.Client}). *)

val serve_cache_bytes : counter
(** Live byte footprint of the in-memory result cache — maintained with
    signed deltas on insert/evict/clear, so it is a gauge: its value is the
    current level, not a monotone total. *)

val serve_disk_cache_hits : counter
(** Jobs answered from the persistent on-disk cache layer (an in-memory
    miss that a previous process — or life — of the fleet had computed). *)

val serve_disk_cache_misses : counter
(** On-disk lookups that found no (valid) entry. *)

val serve_disk_cache_writes : counter
(** Payloads persisted to the on-disk cache (atomic tmp + rename). *)

val serve_disk_cache_corrupt : counter
(** On-disk entries rejected by the checksum header (truncated or
    corrupted files are skipped, never fatal). *)

(** {2 The router family}

    The consistent-hash front router ({!Symref_serve.Router} /
    [symref router]). *)

val router_requests : counter
(** Requests forwarded to a worker. *)

val router_failovers : counter
(** Requests re-routed to the next worker on the ring after a failure. *)

val router_health_checks : counter
(** Hello health probes sent to workers. *)

val router_dead_workers : counter
(** Health transitions from alive to dead (the breaker opening). *)

(** {2 The resilience family}

    Overload shedding, hedged requests, circuit breakers and the fleet
    supervisor (see [doc/robustness.mld], "Fleet resilience"). *)

val serve_shed_jobs : counter
(** Submissions shed by admission control: the wait queue was full, or the
    estimated queue wait already exceeded the job's deadline.  Shed jobs get
    a typed [overloaded] reply carrying [retry_after_ms]. *)

val serve_evicted_jobs : counter
(** Queued jobs evicted at dequeue because their deadline passed while they
    waited.  Also counted under [serve.shed_jobs]. *)

val serve_disk_cache_scrubbed : counter
(** Orphaned [.tmp.*] staging files removed when the on-disk cache
    directory was opened — debris of a writer that crashed mid-store. *)

val router_hedges : counter
(** Forwards that issued a hedge request to the next ring candidate after
    the deterministic p99-derived delay. *)

val router_hedge_wins : counter
(** Hedged forwards where the hedge replied first (the primary was
    abandoned). *)

val router_breaker_opens : counter
(** Circuit-breaker transitions closed/half-open → open (consecutive
    failures reached the threshold, or the half-open probe failed). *)

val router_breaker_half_opens : counter
(** Breaker transitions open → half-open (cooldown elapsed; one probe
    request is let through). *)

val router_breaker_closes : counter
(** Breaker transitions half-open/open → closed (a request or probe
    succeeded). *)

val fleet_restarts : counter
(** Worker processes restarted by the supervisor after a crash. *)

val fleet_giveups : counter
(** Worker slots the supervisor stopped restarting because the crash-loop
    budget was exhausted. *)

(** {2 The simplify family}

    The reference-driven simplification pipeline
    ([Symref_simplify.Pipeline]). *)

val simplify_requests : counter
(** Pipeline runs started. *)

val simplify_retries : counter
(** Tightened SDG/SAG re-runs after a failed verification sweep. *)

val simplify_fallbacks : counter
(** Runs that ended on the exact pruned expression (no term dropping). *)

val simplify_unsupported : counter
(** Runs rejected because the pruned circuit stays above the symbolic
    dimension limit. *)

val simplify_removed_elements : counter
(** Circuit elements removed by the SBG stage. *)

val simplify_removed_terms : counter
(** Symbolic terms removed by the SDG and SAG stages. *)
