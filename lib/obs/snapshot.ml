type t = {
  lu_factor : int;
  lu_symbolic : int;
  lu_refactor : int;
  refactor_fallbacks : int;
  kernel_points : int;
  kernel_fallbacks : int;
  kernel_workspaces : int;
  kernel_batch_points : int;
  kernel_batch_ejects : int;
  evaluator_calls : int;
  memo_hits : int;
  memo_misses : int;
  pattern_hits : int;
  pattern_misses : int;
  adaptive_passes : int;
  dry_passes : int;
  deflated_passes : int;
  points_evaluated : int;
  guard_singular_retries : int;
  guard_nonfinite_retries : int;
  guard_retry_giveups : int;
  serve_cache_hits : int;
  serve_cache_misses : int;
  serve_cache_evictions : int;
  serve_jobs_submitted : int;
  serve_jobs_completed : int;
  serve_jobs_failed : int;
  serve_jobs_timeout : int;
  serve_jobs_rejected : int;
  serve_client_retries : int;
  serve_cache_bytes : int;
  serve_disk_cache_hits : int;
  serve_disk_cache_misses : int;
  serve_disk_cache_writes : int;
  serve_disk_cache_corrupt : int;
  serve_disk_cache_scrubbed : int;
  serve_shed_jobs : int;
  serve_evicted_jobs : int;
  router_requests : int;
  router_failovers : int;
  router_health_checks : int;
  router_dead_workers : int;
  router_hedges : int;
  router_hedge_wins : int;
  router_breaker_opens : int;
  router_breaker_half_opens : int;
  router_breaker_closes : int;
  fleet_restarts : int;
  fleet_giveups : int;
  simplify_requests : int;
  simplify_retries : int;
  simplify_fallbacks : int;
  simplify_unsupported : int;
  simplify_removed_elements : int;
  simplify_removed_terms : int;
  points_per_pass : (int * int) list;
}

let zero =
  {
    lu_factor = 0;
    lu_symbolic = 0;
    lu_refactor = 0;
    refactor_fallbacks = 0;
    kernel_points = 0;
    kernel_fallbacks = 0;
    kernel_workspaces = 0;
    kernel_batch_points = 0;
    kernel_batch_ejects = 0;
    evaluator_calls = 0;
    memo_hits = 0;
    memo_misses = 0;
    pattern_hits = 0;
    pattern_misses = 0;
    adaptive_passes = 0;
    dry_passes = 0;
    deflated_passes = 0;
    points_evaluated = 0;
    guard_singular_retries = 0;
    guard_nonfinite_retries = 0;
    guard_retry_giveups = 0;
    serve_cache_hits = 0;
    serve_cache_misses = 0;
    serve_cache_evictions = 0;
    serve_jobs_submitted = 0;
    serve_jobs_completed = 0;
    serve_jobs_failed = 0;
    serve_jobs_timeout = 0;
    serve_jobs_rejected = 0;
    serve_client_retries = 0;
    serve_cache_bytes = 0;
    serve_disk_cache_hits = 0;
    serve_disk_cache_misses = 0;
    serve_disk_cache_writes = 0;
    serve_disk_cache_corrupt = 0;
    serve_disk_cache_scrubbed = 0;
    serve_shed_jobs = 0;
    serve_evicted_jobs = 0;
    router_requests = 0;
    router_failovers = 0;
    router_health_checks = 0;
    router_dead_workers = 0;
    router_hedges = 0;
    router_hedge_wins = 0;
    router_breaker_opens = 0;
    router_breaker_half_opens = 0;
    router_breaker_closes = 0;
    fleet_restarts = 0;
    fleet_giveups = 0;
    simplify_requests = 0;
    simplify_retries = 0;
    simplify_fallbacks = 0;
    simplify_unsupported = 0;
    simplify_removed_elements = 0;
    simplify_removed_terms = 0;
    points_per_pass = [];
  }

let capture () =
  {
    lu_factor = Metrics.value Metrics.lu_factor;
    lu_symbolic = Metrics.value Metrics.lu_symbolic;
    lu_refactor = Metrics.value Metrics.lu_refactor;
    refactor_fallbacks = Metrics.value Metrics.refactor_fallbacks;
    kernel_points = Metrics.value Metrics.kernel_points;
    kernel_fallbacks = Metrics.value Metrics.kernel_fallbacks;
    kernel_workspaces = Metrics.value Metrics.kernel_workspaces;
    kernel_batch_points = Metrics.value Metrics.kernel_batch_points;
    kernel_batch_ejects = Metrics.value Metrics.kernel_batch_ejects;
    evaluator_calls = Metrics.value Metrics.evaluator_calls;
    memo_hits = Metrics.value Metrics.memo_hits;
    memo_misses = Metrics.value Metrics.memo_misses;
    pattern_hits = Metrics.value Metrics.pattern_hits;
    pattern_misses = Metrics.value Metrics.pattern_misses;
    adaptive_passes = Metrics.value Metrics.adaptive_passes;
    dry_passes = Metrics.value Metrics.dry_passes;
    deflated_passes = Metrics.value Metrics.deflated_passes;
    points_evaluated = Metrics.value Metrics.points_evaluated;
    guard_singular_retries = Metrics.value Metrics.guard_singular_retries;
    guard_nonfinite_retries = Metrics.value Metrics.guard_nonfinite_retries;
    guard_retry_giveups = Metrics.value Metrics.guard_retry_giveups;
    serve_cache_hits = Metrics.value Metrics.serve_cache_hits;
    serve_cache_misses = Metrics.value Metrics.serve_cache_misses;
    serve_cache_evictions = Metrics.value Metrics.serve_cache_evictions;
    serve_jobs_submitted = Metrics.value Metrics.serve_jobs_submitted;
    serve_jobs_completed = Metrics.value Metrics.serve_jobs_completed;
    serve_jobs_failed = Metrics.value Metrics.serve_jobs_failed;
    serve_jobs_timeout = Metrics.value Metrics.serve_jobs_timeout;
    serve_jobs_rejected = Metrics.value Metrics.serve_jobs_rejected;
    serve_client_retries = Metrics.value Metrics.serve_client_retries;
    serve_cache_bytes = Metrics.value Metrics.serve_cache_bytes;
    serve_disk_cache_hits = Metrics.value Metrics.serve_disk_cache_hits;
    serve_disk_cache_misses = Metrics.value Metrics.serve_disk_cache_misses;
    serve_disk_cache_writes = Metrics.value Metrics.serve_disk_cache_writes;
    serve_disk_cache_corrupt = Metrics.value Metrics.serve_disk_cache_corrupt;
    serve_disk_cache_scrubbed =
      Metrics.value Metrics.serve_disk_cache_scrubbed;
    serve_shed_jobs = Metrics.value Metrics.serve_shed_jobs;
    serve_evicted_jobs = Metrics.value Metrics.serve_evicted_jobs;
    router_requests = Metrics.value Metrics.router_requests;
    router_failovers = Metrics.value Metrics.router_failovers;
    router_health_checks = Metrics.value Metrics.router_health_checks;
    router_dead_workers = Metrics.value Metrics.router_dead_workers;
    router_hedges = Metrics.value Metrics.router_hedges;
    router_hedge_wins = Metrics.value Metrics.router_hedge_wins;
    router_breaker_opens = Metrics.value Metrics.router_breaker_opens;
    router_breaker_half_opens =
      Metrics.value Metrics.router_breaker_half_opens;
    router_breaker_closes = Metrics.value Metrics.router_breaker_closes;
    fleet_restarts = Metrics.value Metrics.fleet_restarts;
    fleet_giveups = Metrics.value Metrics.fleet_giveups;
    simplify_requests = Metrics.value Metrics.simplify_requests;
    simplify_retries = Metrics.value Metrics.simplify_retries;
    simplify_fallbacks = Metrics.value Metrics.simplify_fallbacks;
    simplify_unsupported = Metrics.value Metrics.simplify_unsupported;
    simplify_removed_elements = Metrics.value Metrics.simplify_removed_elements;
    simplify_removed_terms = Metrics.value Metrics.simplify_removed_terms;
    points_per_pass = Metrics.histogram_buckets_of Metrics.points_per_pass;
  }

let is_zero t = t = zero

let factorizations t = t.lu_refactor + t.lu_factor

(* Field names in the JSON are the catalogue names of {!Metrics}, so the
   dump reads the same as the CLI table and the docs. *)
let fields =
  [
    ("lu.factor", (fun t -> t.lu_factor), fun t v -> { t with lu_factor = v });
    ("lu.symbolic", (fun t -> t.lu_symbolic), fun t v -> { t with lu_symbolic = v });
    ("lu.refactor", (fun t -> t.lu_refactor), fun t v -> { t with lu_refactor = v });
    ( "lu.refactor_fallback",
      (fun t -> t.refactor_fallbacks),
      fun t v -> { t with refactor_fallbacks = v } );
    ("kernel.points", (fun t -> t.kernel_points), fun t v -> { t with kernel_points = v });
    ( "kernel.fallback",
      (fun t -> t.kernel_fallbacks),
      fun t v -> { t with kernel_fallbacks = v } );
    ( "kernel.workspaces",
      (fun t -> t.kernel_workspaces),
      fun t v -> { t with kernel_workspaces = v } );
    ( "kernel.batch_points",
      (fun t -> t.kernel_batch_points),
      fun t v -> { t with kernel_batch_points = v } );
    ( "kernel.batch_ejects",
      (fun t -> t.kernel_batch_ejects),
      fun t v -> { t with kernel_batch_ejects = v } );
    ( "evaluator.calls",
      (fun t -> t.evaluator_calls),
      fun t v -> { t with evaluator_calls = v } );
    ("evaluator.memo_hit", (fun t -> t.memo_hits), fun t v -> { t with memo_hits = v });
    ( "evaluator.memo_miss",
      (fun t -> t.memo_misses),
      fun t v -> { t with memo_misses = v } );
    ("nodal.pattern_hit", (fun t -> t.pattern_hits), fun t v -> { t with pattern_hits = v });
    ( "nodal.pattern_miss",
      (fun t -> t.pattern_misses),
      fun t v -> { t with pattern_misses = v } );
    ( "adaptive.passes",
      (fun t -> t.adaptive_passes),
      fun t v -> { t with adaptive_passes = v } );
    ("adaptive.dry_passes", (fun t -> t.dry_passes), fun t v -> { t with dry_passes = v });
    ( "adaptive.deflated_passes",
      (fun t -> t.deflated_passes),
      fun t v -> { t with deflated_passes = v } );
    ( "interp.points_evaluated",
      (fun t -> t.points_evaluated),
      fun t v -> { t with points_evaluated = v } );
    ( "guard.singular_retries",
      (fun t -> t.guard_singular_retries),
      fun t v -> { t with guard_singular_retries = v } );
    ( "guard.nonfinite_retries",
      (fun t -> t.guard_nonfinite_retries),
      fun t v -> { t with guard_nonfinite_retries = v } );
    ( "guard.retry_giveups",
      (fun t -> t.guard_retry_giveups),
      fun t v -> { t with guard_retry_giveups = v } );
    ( "serve.cache_hit",
      (fun t -> t.serve_cache_hits),
      fun t v -> { t with serve_cache_hits = v } );
    ( "serve.cache_miss",
      (fun t -> t.serve_cache_misses),
      fun t v -> { t with serve_cache_misses = v } );
    ( "serve.cache_eviction",
      (fun t -> t.serve_cache_evictions),
      fun t v -> { t with serve_cache_evictions = v } );
    ( "serve.jobs_submitted",
      (fun t -> t.serve_jobs_submitted),
      fun t v -> { t with serve_jobs_submitted = v } );
    ( "serve.jobs_completed",
      (fun t -> t.serve_jobs_completed),
      fun t v -> { t with serve_jobs_completed = v } );
    ( "serve.jobs_failed",
      (fun t -> t.serve_jobs_failed),
      fun t v -> { t with serve_jobs_failed = v } );
    ( "serve.jobs_timeout",
      (fun t -> t.serve_jobs_timeout),
      fun t v -> { t with serve_jobs_timeout = v } );
    ( "serve.jobs_rejected",
      (fun t -> t.serve_jobs_rejected),
      fun t v -> { t with serve_jobs_rejected = v } );
    ( "serve.client_retries",
      (fun t -> t.serve_client_retries),
      fun t v -> { t with serve_client_retries = v } );
    ( "serve.cache_bytes",
      (fun t -> t.serve_cache_bytes),
      fun t v -> { t with serve_cache_bytes = v } );
    ( "serve.disk_cache_hit",
      (fun t -> t.serve_disk_cache_hits),
      fun t v -> { t with serve_disk_cache_hits = v } );
    ( "serve.disk_cache_miss",
      (fun t -> t.serve_disk_cache_misses),
      fun t v -> { t with serve_disk_cache_misses = v } );
    ( "serve.disk_cache_write",
      (fun t -> t.serve_disk_cache_writes),
      fun t v -> { t with serve_disk_cache_writes = v } );
    ( "serve.disk_cache_corrupt",
      (fun t -> t.serve_disk_cache_corrupt),
      fun t v -> { t with serve_disk_cache_corrupt = v } );
    ( "serve.disk_cache_scrubbed",
      (fun t -> t.serve_disk_cache_scrubbed),
      fun t v -> { t with serve_disk_cache_scrubbed = v } );
    ( "serve.shed_jobs",
      (fun t -> t.serve_shed_jobs),
      fun t v -> { t with serve_shed_jobs = v } );
    ( "serve.evicted_jobs",
      (fun t -> t.serve_evicted_jobs),
      fun t v -> { t with serve_evicted_jobs = v } );
    ( "router.requests",
      (fun t -> t.router_requests),
      fun t v -> { t with router_requests = v } );
    ( "router.failovers",
      (fun t -> t.router_failovers),
      fun t v -> { t with router_failovers = v } );
    ( "router.health_checks",
      (fun t -> t.router_health_checks),
      fun t v -> { t with router_health_checks = v } );
    ( "router.dead_workers",
      (fun t -> t.router_dead_workers),
      fun t v -> { t with router_dead_workers = v } );
    ( "router.hedges",
      (fun t -> t.router_hedges),
      fun t v -> { t with router_hedges = v } );
    ( "router.hedge_wins",
      (fun t -> t.router_hedge_wins),
      fun t v -> { t with router_hedge_wins = v } );
    ( "router.breaker_open",
      (fun t -> t.router_breaker_opens),
      fun t v -> { t with router_breaker_opens = v } );
    ( "router.breaker_half_open",
      (fun t -> t.router_breaker_half_opens),
      fun t v -> { t with router_breaker_half_opens = v } );
    ( "router.breaker_close",
      (fun t -> t.router_breaker_closes),
      fun t v -> { t with router_breaker_closes = v } );
    ( "fleet.restarts",
      (fun t -> t.fleet_restarts),
      fun t v -> { t with fleet_restarts = v } );
    ( "fleet.giveups",
      (fun t -> t.fleet_giveups),
      fun t v -> { t with fleet_giveups = v } );
    ( "simplify.requests",
      (fun t -> t.simplify_requests),
      fun t v -> { t with simplify_requests = v } );
    ( "simplify.retries",
      (fun t -> t.simplify_retries),
      fun t v -> { t with simplify_retries = v } );
    ( "simplify.fallbacks",
      (fun t -> t.simplify_fallbacks),
      fun t v -> { t with simplify_fallbacks = v } );
    ( "simplify.unsupported",
      (fun t -> t.simplify_unsupported),
      fun t v -> { t with simplify_unsupported = v } );
    ( "simplify.removed_elements",
      (fun t -> t.simplify_removed_elements),
      fun t v -> { t with simplify_removed_elements = v } );
    ( "simplify.removed_terms",
      (fun t -> t.simplify_removed_terms),
      fun t v -> { t with simplify_removed_terms = v } );
  ]

let histogram_key = "interp.points_per_pass"

let to_json t =
  let counters =
    List.map (fun (k, get, _) -> (k, Json.Num (float_of_int (get t)))) fields
  in
  let hist =
    Json.Arr
      (List.map
         (fun (le, n) ->
           Json.Obj [ ("le", Json.Num (float_of_int le)); ("count", Json.Num (float_of_int n)) ])
         t.points_per_pass)
  in
  Json.Obj (counters @ [ (histogram_key, hist) ])

let to_string t = Json.to_string (to_json t)

let of_json j =
  let counters =
    List.fold_left
      (fun acc (k, _, set) ->
        match Json.member k j with
        | Some v -> set acc (Json.to_int v)
        | None -> failwith (Printf.sprintf "Snapshot.of_json: missing field %s" k))
      zero fields
  in
  let hist =
    match Json.member histogram_key j with
    | None -> failwith ("Snapshot.of_json: missing field " ^ histogram_key)
    | Some v ->
        List.map
          (fun b ->
            match (Json.member "le" b, Json.member "count" b) with
            | Some le, Some n -> (Json.to_int le, Json.to_int n)
            | _ -> failwith "Snapshot.of_json: malformed histogram bucket")
          (Json.to_list v)
  in
  { counters with points_per_pass = hist }

let of_string s = of_json (Json.parse s)

let to_table t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  line "%-26s %8s\n" "counter" "value";
  List.iter (fun (k, get, _) -> line "%-26s %8d\n" k (get t)) fields;
  line "%-26s %8d   (refactor + scratch)\n" "lu.evaluations" (factorizations t);
  (match t.points_per_pass with
  | [] -> ()
  | buckets ->
      line "%s:\n" histogram_key;
      List.iter (fun (le, n) -> line "  <= %-6d points %8d batches\n" le n) buckets);
  Buffer.contents buf
