(** A typed dump of every {!Metrics} counter of the pipeline catalogue.

    The benchmark embeds one in [BENCH_interp.json], the CLI prints one
    under [--stats], and the tests assert on the fields directly.  JSON
    field names are exactly the {!Metrics} catalogue names, and
    [of_string (to_string t) = t]. *)

type t = {
  lu_factor : int;  (** full Markowitz factorisations *)
  lu_symbolic : int;  (** symbolic (pattern-recording) factorisations *)
  lu_refactor : int;  (** successful numeric replays *)
  refactor_fallbacks : int;  (** replays rejected by the threshold floor *)
  kernel_points : int;  (** points served by the fused kernel *)
  kernel_fallbacks : int;  (** kernel bailouts to the boxed path *)
  kernel_workspaces : int;  (** kernel workspaces allocated *)
  kernel_batch_points : int;  (** points served by the batched SoA engine *)
  kernel_batch_ejects : int;
      (** points ejected from a batch to the boxed fallback *)
  evaluator_calls : int;  (** evaluator [eval] calls *)
  memo_hits : int;  (** shared num/den table hits *)
  memo_misses : int;  (** shared num/den table misses (factorised) *)
  pattern_hits : int;  (** per-scale pattern-cache hits *)
  pattern_misses : int;  (** pattern-cache misses (symbolic analysis ran) *)
  adaptive_passes : int;
  dry_passes : int;  (** passes that established nothing *)
  deflated_passes : int;  (** passes using eq.-17 deflation *)
  points_evaluated : int;  (** LU points across all batches *)
  guard_singular_retries : int;
      (** singular evaluations retried at perturbed points *)
  guard_nonfinite_retries : int;
      (** non-finite evaluations retried at perturbed points *)
  guard_retry_giveups : int;  (** points whose retry budget ran out *)
  serve_cache_hits : int;  (** serve jobs answered from the result cache *)
  serve_cache_misses : int;  (** serve cache lookups that ran the analysis *)
  serve_cache_evictions : int;  (** entries evicted by the cache byte budget *)
  serve_jobs_submitted : int;  (** jobs admitted by the serve scheduler *)
  serve_jobs_completed : int;  (** jobs finished with a successful reply *)
  serve_jobs_failed : int;  (** jobs finished with a structured error *)
  serve_jobs_timeout : int;  (** jobs cancelled by their deadline *)
  serve_jobs_rejected : int;  (** submissions refused by backpressure *)
  serve_client_retries : int;  (** client retries (busy/transient failures) *)
  serve_cache_bytes : int;  (** live in-memory cache bytes (gauge) *)
  serve_disk_cache_hits : int;  (** jobs replayed from the on-disk cache *)
  serve_disk_cache_misses : int;  (** on-disk lookups with no valid entry *)
  serve_disk_cache_writes : int;  (** payloads persisted to disk *)
  serve_disk_cache_corrupt : int;  (** checksum-rejected on-disk entries *)
  serve_disk_cache_scrubbed : int;
      (** orphaned staging files removed on cache open *)
  serve_shed_jobs : int;  (** submissions shed by admission control *)
  serve_evicted_jobs : int;  (** queued jobs evicted past their deadline *)
  router_requests : int;  (** requests forwarded by the front router *)
  router_failovers : int;  (** requests re-routed after a worker failure *)
  router_health_checks : int;  (** Hello health probes sent *)
  router_dead_workers : int;  (** breaker open transitions *)
  router_hedges : int;  (** hedge requests issued against the tail *)
  router_hedge_wins : int;  (** races won by the hedged duplicate *)
  router_breaker_opens : int;  (** circuit breakers opened *)
  router_breaker_half_opens : int;  (** half-open probe admissions *)
  router_breaker_closes : int;  (** breakers closed by a success *)
  fleet_restarts : int;  (** crashed workers restarted by the supervisor *)
  fleet_giveups : int;  (** worker slots abandoned past the crash budget *)
  simplify_requests : int;  (** simplification pipeline runs started *)
  simplify_retries : int;  (** tightened SDG/SAG re-runs after verification *)
  simplify_fallbacks : int;  (** runs ending on the exact pruned expression *)
  simplify_unsupported : int;  (** runs over the symbolic dimension limit *)
  simplify_removed_elements : int;  (** elements removed by the SBG stage *)
  simplify_removed_terms : int;  (** terms removed by the SDG/SAG stages *)
  points_per_pass : (int * int) list;
      (** histogram, [(bucket upper bound, batches)] *)
}

val capture : unit -> t
val zero : t
val is_zero : t -> bool

val factorizations : t -> int
(** [lu_refactor + lu_factor]: numeric factorisations actually performed —
    the paper's cost metric as seen by the matrix layer. *)

val to_json : t -> Json.t
val to_string : t -> string

val of_json : Json.t -> t
(** @raise Failure on missing or ill-typed fields. *)

val of_string : string -> t
(** @raise Failure on malformed input. *)

val to_table : t -> string
(** Human-readable counter table (the [--stats] output). *)
