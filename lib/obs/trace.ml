(* Span tracing in Chrome trace_event format.

   Spans are complete ("X") events stamped with the monotonic clock, so the
   emitted file is balanced by construction and loads directly into
   chrome://tracing or https://ui.perfetto.dev.  Events are buffered in
   memory under a mutex (tracing targets pass-level granularity — tens to a
   few thousand events per run, not per-point firehoses) and written on
   {!finish}.

   When tracing is off, {!span} costs one bool load, a branch and the
   closure the caller built — nothing is recorded and nothing else is
   allocated. *)

type event = {
  e_name : string;
  e_cat : string;
  e_ph : char; (* 'X' complete, 'i' instant *)
  e_ts_ns : int64; (* relative to the trace origin *)
  e_dur_ns : int64; (* 0 for instants *)
  e_tid : int;
  e_args : (string * string) list;
}

type state = {
  lock : Mutex.t;
  mutable events : event list;
  mutable count : int;
  mutable origin_ns : int64;
  mutable file : string option;
}

let state =
  { lock = Mutex.create (); events = []; count = 0; origin_ns = 0L; file = None }

let on = ref false

let is_on () = !on

(* Pass-level spans are rare; if a caller ever traces a hot loop, stop
   recording rather than growing without bound. *)
let max_events = 1_000_000

let now_ns () = Monotonic_clock.now ()

let record ev =
  Mutex.lock state.lock;
  if state.count < max_events then begin
    state.events <- ev :: state.events;
    state.count <- state.count + 1
  end;
  Mutex.unlock state.lock

let tid () = (Domain.self () :> int)

let start ~file =
  Mutex.lock state.lock;
  state.events <- [];
  state.count <- 0;
  state.origin_ns <- now_ns ();
  state.file <- Some file;
  Mutex.unlock state.lock;
  on := true

let span ?(cat = "symref") ?(args = []) name f =
  if not !on then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_ns () in
        record
          {
            e_name = name;
            e_cat = cat;
            e_ph = 'X';
            e_ts_ns = Int64.sub t0 state.origin_ns;
            e_dur_ns = Int64.sub t1 t0;
            e_tid = tid ();
            e_args = args;
          })
      f
  end

let instant ?(cat = "symref") ?(args = []) name =
  if !on then
    record
      {
        e_name = name;
        e_cat = cat;
        e_ph = 'i';
        e_ts_ns = Int64.sub (now_ns ()) state.origin_ns;
        e_dur_ns = 0L;
        e_tid = tid ();
        e_args = args;
      }

let us_of_ns ns = Int64.to_float ns /. 1e3

let json_of_event e =
  let base =
    [
      ("name", Json.Str e.e_name);
      ("cat", Json.Str e.e_cat);
      ("ph", Json.Str (String.make 1 e.e_ph));
      ("ts", Json.Num (us_of_ns e.e_ts_ns));
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int e.e_tid));
    ]
  in
  let dur = if e.e_ph = 'X' then [ ("dur", Json.Num (us_of_ns e.e_dur_ns)) ] else [] in
  let scope = if e.e_ph = 'i' then [ ("s", Json.Str "t") ] else [] in
  let args =
    match e.e_args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ]
  in
  Json.Obj (base @ dur @ scope @ args)

let to_json () =
  Mutex.lock state.lock;
  let events = List.rev state.events in
  Mutex.unlock state.lock;
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map json_of_event events));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("tool", Json.Str "symref") ]);
    ]

let event_count () =
  Mutex.lock state.lock;
  let n = state.count in
  Mutex.unlock state.lock;
  n

let finish () =
  on := false;
  let doc = to_json () in
  Mutex.lock state.lock;
  let file = state.file in
  state.file <- None;
  state.events <- [];
  state.count <- 0;
  Mutex.unlock state.lock;
  match file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Json.to_string doc))
