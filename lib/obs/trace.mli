(** Span tracing for the reference pipeline, in Chrome [trace_event]
    format.

    {!start} a trace, run the workload, {!finish} to write the file; the
    result loads directly into [chrome://tracing] or
    {{:https://ui.perfetto.dev} Perfetto}.  Spans are complete ([ph = "X"])
    events stamped with the monotonic clock and tagged with the OCaml
    domain id as [tid], so multi-domain interpolation shows up as parallel
    tracks.

    While no trace is active, {!span} runs its thunk directly — one boolean
    load and a branch of overhead — and {!instant} is a no-op.  The
    instrumented pipeline emits one span per adaptive pass
    ([adaptive.pass]), per interpolation batch ([interp.batch]) and per
    factorisation class ([lu.factor] / [lu.symbolic] / [lu.refactor]); see
    [doc/observability.mld] for the full naming scheme. *)

val start : file:string -> unit
(** Begin buffering events; {!finish} will write them to [file].  Resets
    any previously buffered events. *)

val is_on : unit -> bool

val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when tracing is active, records a complete
    event covering its execution (also on exception). *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a zero-duration marker. *)

val event_count : unit -> int
(** Events currently buffered. *)

val to_json : unit -> Json.t
(** The trace document that {!finish} would write (test hook). *)

val finish : unit -> unit
(** Stop tracing and write the file given to {!start} (if any).  Clears the
    buffer. *)
