module Json = Symref_obs.Json

type outcome = { file : string; reply : Protocol.reply }

type report = {
  directory : string;
  files : int;
  succeeded : int;
  failed : int;
  timed_out : int;
  cached : int;
  outcomes : outcome list;
  cache_stats : Json.t;
}

let extensions = [ ".sp"; ".cir"; ".net"; ".spi"; ".ckt" ]

let netlist_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         List.exists (fun e -> Filename.check_suffix f e) extensions)
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

let run ?config ?(template = Protocol.default_job) dir =
  let files = netlist_files dir in
  let service = Service.create ?config () in
  let sched = Service.scheduler service in
  let submit file =
    let job =
      { template with Protocol.netlist = `Path file; id = Some file }
    in
    (* Backpressure, not rejection: a sweep owns its queue, so when the
       scheduler is full we wait for a slot rather than drop the file. *)
    let rec admitted () =
      match Service.submit service job with
      | `Ticket ticket -> ticket
      | `Rejected _ ->
          Scheduler.wait_until_below sched (Scheduler.capacity sched);
          admitted ()
    in
    (file, admitted ())
  in
  let tickets = List.map submit files in
  let outcomes =
    List.map
      (fun (file, ticket) ->
        let reply =
          match Scheduler.await ticket with
          | Ok reply -> reply
          | Error e ->
              Protocol.error ~id:(Some file) ~kind:"internal"
                (Printexc.to_string e)
        in
        { file; reply })
      tickets
  in
  let cache_stats = Cache.stats_json (Service.cache service) in
  Service.shutdown service;
  let count p = List.length (List.filter p outcomes) in
  {
    directory = dir;
    files = List.length files;
    succeeded = count (fun o -> o.reply.Protocol.status = Protocol.Ok);
    failed = count (fun o -> o.reply.Protocol.status <> Protocol.Ok);
    timed_out = count (fun o -> o.reply.Protocol.status = Protocol.Timeout);
    cached = count (fun o -> o.reply.Protocol.cached);
    outcomes;
    cache_stats;
  }

let report_to_json r =
  let inum i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("directory", Json.Str r.directory);
      ("files", inum r.files);
      ("succeeded", inum r.succeeded);
      ("failed", inum r.failed);
      ("timed_out", inum r.timed_out);
      ("cached", inum r.cached);
      ("cache", r.cache_stats);
      ( "results",
        Json.Arr
          (List.map
             (fun o ->
               Json.Obj
                 [
                   ("file", Json.Str o.file);
                   ("reply", Protocol.reply_to_json o.reply);
                 ])
             r.outcomes) );
    ]
