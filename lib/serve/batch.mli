(** In-process batch sweep: run one analysis over every netlist in a
    directory, through the same {!Service} (scheduler + cache) the daemon
    uses, without a socket.

    Files are processed in sorted-name order and the report lists them in
    that order, so a batch over an unchanged directory is deterministic and
    each per-file payload is bit-identical to a single-shot run of the same
    job.  A file that fails — unreadable, malformed (the reply carries the
    parser's [file:line: message] one-liner), outside the nodal class, timed
    out — becomes an error entry in the report and never stops the sweep. *)

type outcome = {
  file : string;  (** path as submitted (directory-joined) *)
  reply : Protocol.reply;
}

type report = {
  directory : string;
  files : int;
  succeeded : int;
  failed : int;  (** error outcomes, timeouts included *)
  timed_out : int;
  cached : int;  (** outcomes answered from the result cache *)
  outcomes : outcome list;  (** sorted-name order *)
  cache_stats : Symref_obs.Json.t;
}

val netlist_files : string -> string list
(** Sorted netlist files ([.sp], [.cir], [.net], [.spi], [.ckt]) directly in
    the directory.  @raise Sys_error when the directory cannot be read. *)

val run :
  ?config:Service.config -> ?template:Protocol.job -> string -> report
(** [run dir] sweeps [netlist_files dir], submitting each as [template]
    (default {!Protocol.default_job}: reference analysis, auto input/output)
    with its [netlist] replaced by the file's path and its [id] by the same
    path.  Jobs flow through the bounded scheduler with backpressure —
    submission waits for a slot instead of rejecting.  The service is
    drained and shut down before the report is returned. *)

val report_to_json : report -> Symref_obs.Json.t
(** [{directory; files; succeeded; failed; timed_out; cached; cache;
    results: [{file; reply}...]}] — the aggregate document [symref batch]
    prints. *)
