(* Content-addressed LRU result cache with a byte budget.

   Classic design: a hash table from key to an intrusive doubly-linked node
   ordered by recency (head = most recent).  Everything under one mutex —
   lookups are microseconds against jobs that cost milliseconds, so finer
   locking would buy nothing. *)

module Json = Symref_obs.Json
module Metrics = Symref_obs.Metrics

type node = {
  key : string;
  payload : string;
  mutable prev : node option; (* towards the head (more recent) *)
  mutable next : node option; (* towards the tail (less recent) *)
}

type t = {
  lock : Mutex.t;
  table : (string, node) Hashtbl.t;
  max_bytes : int;
  mutable head : node option;
  mutable tail : node option;
  mutable used_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_bytes = 64 * 1024 * 1024) () =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    max_bytes;
    head = None;
    tail = None;
    used_bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let size_of n = String.length n.key + String.length n.payload

(* [serve.cache_bytes] mirrors [used_bytes] with signed deltas: every
   mutation below pairs its [used_bytes] update with the same delta here,
   so the counter reads as a live gauge in --stats and snapshots. *)
let track_bytes delta = Metrics.add Metrics.serve_cache_bytes delta

(* --- recency list primitives (caller holds the lock) --- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop_tail t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.used_bytes <- t.used_bytes - size_of n;
      track_bytes (-size_of n);
      t.evictions <- t.evictions + 1;
      Metrics.incr Metrics.serve_cache_evictions

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- public API --- *)

let find t ~key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some n ->
      unlink t n;
      push_front t n;
      t.hits <- t.hits + 1;
      Metrics.incr Metrics.serve_cache_hits;
      Some n.payload
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr Metrics.serve_cache_misses;
      None

let add t ~key payload =
  with_lock t @@ fun () ->
  (match Hashtbl.find_opt t.table key with
  | Some old ->
      unlink t old;
      Hashtbl.remove t.table key;
      t.used_bytes <- t.used_bytes - size_of old;
      track_bytes (-size_of old)
  | None -> ());
  let n = { key; payload; prev = None; next = None } in
  if size_of n <= t.max_bytes then begin
    Hashtbl.replace t.table key n;
    push_front t n;
    t.used_bytes <- t.used_bytes + size_of n;
    track_bytes (size_of n);
    while t.used_bytes > t.max_bytes do
      drop_tail t
    done
  end

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)
let entries t = with_lock t (fun () -> Hashtbl.length t.table)
let bytes t = with_lock t (fun () -> t.used_bytes)

let clear t =
  with_lock t @@ fun () ->
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  track_bytes (-t.used_bytes);
  t.used_bytes <- 0

let stats_json t =
  with_lock t @@ fun () ->
  let i k v = (k, Json.Num (float_of_int v)) in
  Json.Obj
    [
      i "hits" t.hits;
      i "misses" t.misses;
      i "evictions" t.evictions;
      i "entries" (Hashtbl.length t.table);
      i "bytes" t.used_bytes;
      i "max_bytes" t.max_bytes;
    ]
