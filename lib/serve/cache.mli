(** Content-addressed result cache: canonical job key → serialized reply
    payload, LRU-evicted under a byte budget.

    Keys come from {!Service.cache_key}: the MD5 of the {e canonicalised}
    netlist (parse → {!Symref_spice.Writer.to_string}, so formatting,
    comment and case differences hash alike) concatenated with the
    canonical analysis-parameter string.  Values are the compact JSON
    payload text, stored and replayed verbatim — a hit is bit-identical to
    the reply that populated it.

    Thread-safe (one mutex; operations are O(1) hash + list splicing).
    The gauges below are always on (the protocol's [stats] reply and the
    batch report read them); the {!Symref_obs.Metrics} serve counters
    ([serve.cache_hit] / [serve.cache_miss] / [serve.cache_eviction]) are
    bumped as well, and cost nothing while metrics are disabled. *)

type t

val create : ?max_bytes:int -> unit -> t
(** [max_bytes] (default 64 MiB) bounds [sum (|key| + |payload|)] over the
    live entries; an over-budget insertion evicts least-recently-used
    entries first.  A payload larger than the whole budget is not cached.
    [max_bytes <= 0] disables caching (every lookup misses). *)

val find : t -> key:string -> string option
(** [Some payload] refreshes the entry's recency and counts a hit;
    [None] counts a miss. *)

val add : t -> key:string -> string -> unit
(** Insert (or refresh) the payload for [key], then evict LRU entries
    until the budget holds. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val entries : t -> int
val bytes : t -> int

val clear : t -> unit
(** Drop every entry (gauges keep their values; no evictions counted). *)

val stats_json : t -> Symref_obs.Json.t
(** [{hits; misses; evictions; entries; bytes; max_bytes}] for the
    protocol's [stats] reply and the batch report. *)
