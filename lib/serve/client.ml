module Json = Symref_obs.Json
module Metrics = Symref_obs.Metrics

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  banner : Json.t;
}

let connect ~addr =
  let fd = Transport.connect addr in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let banner =
    match input_line ic with
    | line -> Json.parse line
    | exception End_of_file ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Errors.fail Errors.No_banner
  in
  (* Version check at Hello, before any request crosses the wire: accept
     any protocol in [min_protocol_version, protocol_version] — older
     compatible peers keep a mixed-version fleet talking during a rolling
     restart — and refuse a missing field or a peer newer than this build
     (whose changes we cannot vouch for). *)
  let got =
    match Json.member "protocol" banner with
    | Some v -> ( try Json.to_int v with Failure _ -> 0)
    | None -> 0
  in
  if got < Protocol.min_protocol_version || got > Protocol.protocol_version
  then begin
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Errors.fail
      (Errors.Version_mismatch { got; want = Protocol.protocol_version })
  end;
  { fd; ic; oc; banner }

let banner t = t.banner

let request t req =
  output_string t.oc (Json.to_string (Protocol.request_to_json req));
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | line -> Protocol.reply_of_json (Json.parse line)
  | exception End_of_file ->
      Errors.fail (Errors.Connection_closed { during = "the reply" })

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ~addr f =
  let t = connect ~addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* --- retry with capped exponential backoff --- *)

type backoff = {
  attempts : int;
  base_delay_ms : float;
  multiplier : float;
  max_delay_ms : float;
  jitter : float;
  seed : int;
}

let default_backoff =
  {
    attempts = 5;
    base_delay_ms = 25.;
    multiplier = 2.;
    max_delay_ms = 1000.;
    jitter = 0.2;
    seed = 0;
  }

(* SplitMix64-style finaliser over a structural hash: enough spread to
   decorrelate the jitter across attempts while staying a pure function of
   (seed, attempt) — schedules are reproducible, tests can assert them. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 33)) 0xff51afd7ed558ccdL in
  let x = mul (logxor x (shift_right_logical x 33)) 0xc4ceb9fe1a85ec53L in
  logxor x (shift_right_logical x 33)

let uniform ~seed n =
  let h = mix64 (Int64.of_int (Hashtbl.hash (seed, "client.backoff", n))) in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let backoff_delay b n =
  let nominal = b.base_delay_ms *. (b.multiplier ** float_of_int n) in
  let capped = Float.min b.max_delay_ms nominal in
  capped *. (1. +. (b.jitter *. (uniform ~seed:b.seed n -. 0.5)))

let backoff_schedule b =
  Array.init (Int.max 0 (b.attempts - 1)) (fun n -> backoff_delay b n)

(* When a backpressure reply carries the server's own drain estimate, that
   estimate replaces the fixed schedule for this attempt — the server knows
   its queue; the geometric schedule is the fallback for servers (or
   failures) that say nothing.  Still pure in (backoff, attempt, hint):
   the same jittered factor as [backoff_delay], a 1 ms floor against
   busy-spinning on a zero hint, the same cap against an absurd one. *)
let delay_after b ~attempt ~retry_after_ms =
  match retry_after_ms with
  | None -> backoff_delay b attempt
  | Some ms ->
      let capped = Float.min b.max_delay_ms (Float.max 1. ms) in
      capped *. (1. +. (b.jitter *. (uniform ~seed:b.seed attempt -. 0.5)))

(* Connection-level failures a fresh attempt can plausibly outlive: the
   daemon restarting (refused / socket file missing), a connection torn
   down mid-exchange (reset / pipe), or transient resource pressure. *)
let transient_errno = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOENT
  | Unix.EAGAIN ->
      true
  | _ -> false

let retry_request ?(backoff = default_backoff)
    ?(sleep = fun ms -> Unix.sleepf (ms /. 1000.)) ~addr req =
  if backoff.attempts < 1 then invalid_arg "Client.retry_request: attempts < 1";
  let attempt () =
    (* A fresh connection per attempt: the previous one may be half-dead. *)
    match with_connection ~addr (fun t -> request t req) with
    | reply -> Ok reply
    | exception Unix.Unix_error (e, _, _) when transient_errno e ->
        Error (`Unix e)
    | exception Errors.Error e when Errors.transient e -> Error (`Typed e)
    | exception Sys_error _ -> Error `Sys
  in
  let backpressure (reply : Protocol.reply) =
    match reply.Protocol.status with
    | Protocol.Busy | Protocol.Overloaded -> true
    | Protocol.Ok | Protocol.Error | Protocol.Timeout -> false
  in
  let rec go n =
    let last = n = backoff.attempts - 1 in
    match attempt () with
    | Ok reply when backpressure reply && not last ->
        Metrics.incr Metrics.serve_client_retries;
        sleep
          (delay_after backoff ~attempt:n
             ~retry_after_ms:(Protocol.retry_after_ms reply));
        go (n + 1)
    | Ok reply -> reply (* success, a structured error, or the final give-up *)
    | Error failure ->
        if last then begin
          (* Budget exhausted: surface the terminal failure as-is. *)
          match failure with
          | `Unix e ->
              raise (Unix.Unix_error (e, "symref client", Transport.to_string addr))
          | `Typed e -> Errors.fail e
          | `Sys ->
              raise (Sys_error (Transport.to_string addr ^ ": connection failed"))
        end
        else begin
          Metrics.incr Metrics.serve_client_retries;
          sleep (backoff_delay backoff n);
          go (n + 1)
        end
  in
  go 0
