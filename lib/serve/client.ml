module Json = Symref_obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  banner : Json.t;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let banner =
    match input_line ic with
    | line -> Json.parse line
    | exception End_of_file -> failwith "serve client: no hello banner"
  in
  { fd; ic; oc; banner }

let banner t = t.banner

let request t req =
  output_string t.oc (Json.to_string (Protocol.request_to_json req));
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | line -> Protocol.reply_of_json (Json.parse line)
  | exception End_of_file ->
      failwith "serve client: connection closed before the reply"

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ~socket_path f =
  let t = connect ~socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
