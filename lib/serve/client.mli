(** Blocking client for the serve protocol — what [symref submit] and the
    CI round-trip test speak through.

    One request, one reply, in order, on a single connection.  Connection
    failures raise [Unix.Unix_error]; protocol-level failures (no banner,
    connection closed mid-exchange) raise the typed {!Errors.Error};
    malformed JSON from the server raises [Failure].

    {!retry_request} wraps the one-shot path in a retry loop with capped
    exponential backoff for [Busy] backpressure replies and transient
    connection failures (see [doc/robustness.mld]). *)

type t

val connect : addr:Transport.address -> t
(** Connect (Unix socket or TCP, see {!Transport.parse}) and consume the
    daemon's hello banner, checking its advertised protocol version.
    @raise Errors.Error [No_banner] when the connection closes first,
    [Version_mismatch] when the banner's [protocol] field is missing or
    outside [[{!Protocol.min_protocol_version},
    {!Protocol.protocol_version}]] — older compatible peers are accepted
    so a rolling restart never needs a flag day. *)

val banner : t -> Symref_obs.Json.t
(** The greeting the daemon sent on connect
    ([{"hello":"symref";"version";...}]). *)

val request : t -> Protocol.request -> Protocol.reply
(** Send one request line and block for its reply line.
    @raise Errors.Error [Connection_closed] when the connection drops
    before the reply. *)

val close : t -> unit

val with_connection : addr:Transport.address -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

(** {1 Retry with capped exponential backoff} *)

type backoff = {
  attempts : int;  (** total attempts (initial try included), [>= 1] *)
  base_delay_ms : float;  (** delay before the second attempt *)
  multiplier : float;  (** geometric growth per attempt *)
  max_delay_ms : float;  (** delay ceiling *)
  jitter : float;
      (** relative jitter width: the delay is scaled by a deterministic
          factor in [1 ± jitter/2] *)
  seed : int;  (** jitter seed — same seed, same schedule *)
}

val default_backoff : backoff
(** 5 attempts, 25 ms base, doubling, 1 s cap, 20% jitter, seed 0 —
    worst case ≈ 0.4 s of waiting. *)

val transient_errno : Unix.error -> bool
(** The connection-level errnos a fresh attempt can plausibly outlive
    ([ECONNREFUSED], [ECONNRESET], [EPIPE], [ENOENT], [EAGAIN]) — shared
    with {!Router.forward}'s failover classification. *)

val backoff_schedule : backoff -> float array
(** The exact delays (ms) slept after attempts [0 .. attempts-2]:
    [min max_delay (base * multiplier^n)] scaled by the deterministic
    jitter factor.  Pure — tests assert against it. *)

val delay_after : backoff -> attempt:int -> retry_after_ms:float option -> float
(** The delay (ms) actually slept after [attempt]: with a server-provided
    [retry_after_ms] hint (a [Busy]/[Overloaded] reply), the hint — floored
    at 1 ms, capped at [max_delay_ms], scaled by the same deterministic
    jitter factor as {!backoff_schedule}; without one, the fixed schedule's
    entry.  Pure — tests assert against it. *)

val retry_request :
  ?backoff:backoff ->
  ?sleep:(float -> unit) ->
  addr:Transport.address ->
  Protocol.request ->
  Protocol.reply
(** One logical request with retries: each attempt opens a fresh
    connection, sends [req] and reads the reply.  A [Busy] or [Overloaded]
    reply (backpressure) or a transient failure — [ECONNREFUSED],
    [ECONNRESET], [EPIPE], [ENOENT], [EAGAIN], a dropped connection, a
    missing banner — sleeps {!delay_after} (the server's [retry_after_ms]
    hint when the reply carried one, the fixed schedule otherwise) and
    tries again; each retry counts in the [serve.client_retries] metric.
    When the attempt budget runs out the final backpressure reply is
    returned as-is (structured give-up), and a final transient failure
    re-raises.  Non-transient failures propagate immediately.  [sleep]
    (default [Unix.sleepf] of ms) is injectable so tests run instantly. *)
