(** Minimal blocking client for the serve protocol — what [symref submit]
    and the CI round-trip test speak through.

    One request, one reply, in order, on a single connection.  All functions
    raise [Unix.Unix_error] on connection failures and [Failure] on protocol
    violations (malformed JSON from the server). *)

type t

val connect : socket_path:string -> t
(** Connect and consume the daemon's hello banner. *)

val banner : t -> Symref_obs.Json.t
(** The greeting the daemon sent on connect
    ([{"hello":"symref";"version";...}]). *)

val request : t -> Protocol.request -> Protocol.reply
(** Send one request line and block for its reply line. *)

val close : t -> unit

val with_connection : socket_path:string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)
