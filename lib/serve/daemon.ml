(* Accept loop + per-connection threads for the serve daemon. *)

module Json = Symref_obs.Json
module Inject = Symref_fault.Inject

type t = {
  service : Service.t;
  listeners : (Transport.address * Unix.file_descr) list;
  lock : Mutex.t;
  mutable stop : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;
}

let create ?config ~listen () =
  if listen = [] then invalid_arg "Daemon.create: no listen addresses";
  (* A client that disconnects while a reply is in flight must surface as a
     write error on that connection, not kill the whole daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let service = Service.create ?config () in
  let cfg = Service.config service in
  let listeners =
    (* Bind them all before serving anything; unwind on partial failure so
       a clashing port doesn't leak the sockets that did bind. *)
    let rec bind_all acc = function
      | [] -> List.rev acc
      | addr :: rest -> (
          match
            Transport.listen ~backlog:cfg.Service.backlog
              ?socket_mode:cfg.Service.socket_mode addr
          with
          | fd -> bind_all ((Transport.bound_address addr fd, fd) :: acc) rest
          | exception e ->
              List.iter (fun (a, fd) -> Transport.close_listener a fd) acc;
              raise e)
    in
    bind_all [] listen
  in
  { service; listeners; lock = Mutex.create (); stop = false; conns = [] }

let service t = t.service
let addresses t = List.map fst t.listeners

let request_stop t =
  Mutex.lock t.lock;
  t.stop <- true;
  Mutex.unlock t.lock

let stopping t =
  Mutex.lock t.lock;
  let s = t.stop in
  Mutex.unlock t.lock;
  s

let handle_request t = function
  | Protocol.Hello -> Protocol.ok (Protocol.hello_banner ())
  | Protocol.Stats -> Protocol.ok (Service.stats_json t.service)
  | Protocol.Shutdown ->
      request_stop t;
      Protocol.ok (Json.Obj [ ("shutting_down", Json.Bool true) ])
  | Protocol.Submit job -> (
      (* The two fleet-level faults act out {e before} admission, where a
         real slow or dying worker would stall or vanish: [serve.slow]
         delays the whole exchange (the router's hedge trigger),
         [serve.crash] kills the process abruptly mid-connection — exactly
         what the supervisor's restart loop and the router's breakers are
         built to absorb. *)
      if Inject.fire Inject.serve_slow then Inject.sleep_payload Inject.serve_slow;
      if Inject.fire Inject.serve_crash then Unix._exit 70;
      match Service.submit t.service job with
      | `Rejected r -> r
      | `Ticket ticket -> (
          match Scheduler.await ticket with
          | Ok reply -> reply
          | Error (Scheduler.Evicted { retry_after_ms }) ->
              (* Queued past its deadline: shed late, same typed reply as
                 shed-at-admission. *)
              Protocol.overloaded ~id:job.Protocol.id ~retry_after_ms
                "job evicted from the queue past its deadline"
          | Error e ->
              (* Service catches every expected failure inside the job, so
                 only a genuinely unexpected exception lands here. *)
              Protocol.error ~id:job.Protocol.id ~kind:"internal"
                (Printexc.to_string e)))

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* The two socket-path injection points (chaos tests): [serve.drop] kills
     the connection instead of replying, [serve.partial] leaks half a line
     first — either way the client sees the connection close mid-exchange,
     exactly what a crashed or OOM-killed daemon produces.  The raised
     [Sys_error] rides the connection handler's normal teardown path. *)
  let send json =
    if Inject.fire Inject.serve_drop then begin
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      raise (Sys_error "injected: connection dropped")
    end;
    let line = Json.to_string json ^ "\n" in
    if Inject.fire Inject.serve_partial then begin
      output_string oc (String.sub line 0 (String.length line / 2));
      flush oc;
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      raise (Sys_error "injected: partial write")
    end;
    output_string oc line;
    flush oc
  in
  let serve_line line =
    let reply =
      match Protocol.request_of_json (Json.parse line) with
      | exception Failure m -> Protocol.error ~kind:"protocol" m
      | request -> handle_request t request
    in
    send (Protocol.reply_to_json reply)
  in
  (try
     send (Protocol.hello_banner ());
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
           if String.trim line <> "" then serve_line line;
           loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t =
  let socks = List.map snd t.listeners in
  let rec accept_loop () =
    if not (stopping t) then begin
      (* Poll so a stop request (from a handler thread) is noticed even when
         no client ever connects again. *)
      (match Unix.select socks [] [] 0.2 with
      | [], _, _ -> ()
      | ready, _, _ ->
          List.iter
            (fun sock ->
              match Unix.accept sock with
              | fd, _ ->
                  let th = Thread.create (handle_conn t) fd in
                  Mutex.lock t.lock;
                  t.conns <- (fd, th) :: t.conns;
                  Mutex.unlock t.lock
              | exception Unix.Unix_error _ -> ())
            ready);
      accept_loop ()
    end
  in
  accept_loop ();
  (* Graceful teardown: finish the admitted jobs (their replies flush on the
     still-open connections), then unblock the readers and join. *)
  Service.shutdown t.service;
  List.iter (fun (addr, fd) -> Transport.close_listener addr fd) t.listeners;
  Mutex.lock t.lock;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.lock;
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, th) -> Thread.join th) conns

let run ?config ~listen () = serve (create ?config ~listen ())
