(** The serve daemon: a Unix-domain-socket front end over {!Service}.

    One listening socket, one systhread per accepted connection.  Requests on
    a connection are answered strictly in order; concurrency comes from jobs
    running on the {!Symref_core.Domain_pool} workers and from multiple
    connections.  The connection threads only do I/O and waiting — never
    numerics — so a slow job never blocks the accept loop.

    Error isolation is total: a malformed line, an unknown op, or a failing
    job produces a structured error reply on that connection and nothing
    else; the daemon only exits through {!request_stop} or a [shutdown]
    request, and then gracefully — admission stops, in-flight jobs drain and
    their replies are flushed before the connections are torn down. *)

type t

val create : ?config:Service.config -> socket_path:string -> unit -> t
(** Bind and listen on [socket_path].  An existing file at that path is
    removed first — starting a daemon on a live daemon's socket replaces it.
    [SIGPIPE] is set to ignore (a client hanging up mid-reply must not kill
    the process).
    @raise Unix.Unix_error when the socket cannot be bound. *)

val service : t -> Service.t

val serve : t -> unit
(** Run the accept loop on the calling thread until a [shutdown] request
    arrives (or {!request_stop} is called from another thread), then drain
    and clean up: the socket file is unlinked and every connection joined
    before this returns. *)

val request_stop : t -> unit
(** Ask the accept loop to wind down; safe from any thread. *)

val run : ?config:Service.config -> socket_path:string -> unit -> unit
(** [create] + [serve]. *)
