(** The serve daemon: a socket front end over {!Service}, listening on any
    mix of Unix-domain and TCP endpoints ({!Transport.address}) — the
    NDJSON exchange is identical on both.

    One systhread per accepted connection.  Requests on
    a connection are answered strictly in order; concurrency comes from jobs
    running on the {!Symref_core.Domain_pool} workers and from multiple
    connections.  The connection threads only do I/O and waiting — never
    numerics — so a slow job never blocks the accept loop.

    Error isolation is total: a malformed line, an unknown op, or a failing
    job produces a structured error reply on that connection and nothing
    else; the daemon only exits through {!request_stop} or a [shutdown]
    request, and then gracefully — admission stops, in-flight jobs drain and
    their replies are flushed before the connections are torn down. *)

type t

val create :
  ?config:Service.config -> listen:Transport.address list -> unit -> t
(** Bind and listen on every address in [listen] (at least one), with the
    config's [backlog] and, for Unix sockets, [socket_mode].  An existing
    file at a Unix socket path is removed first — starting a daemon on a
    live daemon's socket replaces it; a TCP listener sets [SO_REUSEADDR].
    [SIGPIPE] is set to ignore (a client hanging up mid-reply must not kill
    the process).  On partial bind failure the already-bound sockets are
    closed again before the exception escapes.
    @raise Unix.Unix_error when a socket cannot be bound,
    [Invalid_argument] when [listen] is empty. *)

val service : t -> Service.t

val addresses : t -> Transport.address list
(** The addresses actually bound, in [listen] order — TCP port [0]
    resolved to the kernel-assigned ephemeral port (how tests and the
    load bench discover their workers' ports). *)

val serve : t -> unit
(** Run the accept loop on the calling thread until a [shutdown] request
    arrives (or {!request_stop} is called from another thread), then drain
    and clean up: every listener is closed (Unix socket files unlinked) and
    every connection joined before this returns. *)

val request_stop : t -> unit
(** Ask the accept loop to wind down; safe from any thread. *)

val run :
  ?config:Service.config -> listen:Transport.address list -> unit -> unit
(** [create] + [serve]. *)
