(* Content-addressed on-disk result cache.

   One file per entry under a single directory; the file name is the cache
   key (already an MD5 hex digest, so filename-safe by construction).  The
   format is a one-line checksum header followed by the raw payload:

     symref-cache 1 <md5-hex-of-payload> <payload-byte-length>\n
     <payload bytes>

   Writers stage into a dot-prefixed temp file and [Unix.rename] it into
   place, so a reader never observes a half-written entry under the final
   name; readers verify the magic, the length and the digest and treat any
   mismatch — truncation, corruption, a foreign file — as a miss, never a
   failure.  That makes the directory safe to share read-mostly between N
   daemon processes: the worst a concurrent writer can do is win the rename
   race with an identical payload. *)

module Metrics = Symref_obs.Metrics

let magic = "symref-cache"
let format_version = 1

type t = { dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let tmp_prefix = ".tmp."

(* A writer that died between staging and rename leaves its temp file
   behind forever — nothing else ever touches that name again (it embeds
   the dead pid).  Opening the cache is the natural janitor moment: any
   [.tmp.*] file present then is either such an orphan or the in-flight
   staging of a concurrent process — and losing the latter's rename race
   is already a handled (and harmless) case in [store], so scrubbing is
   safe either way. *)
let scrub_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
      Array.iter
        (fun f ->
          if String.starts_with ~prefix:tmp_prefix f then
            match Sys.remove (Filename.concat dir f) with
            | () -> Metrics.incr Metrics.serve_disk_cache_scrubbed
            | exception Sys_error _ -> ())
        files

let create ~dir =
  mkdir_p dir;
  scrub_tmp dir;
  { dir }

let dir t = t.dir

(* Keys are MD5 hex digests; refuse anything that could escape the
   directory or collide with a temp file. *)
let valid_key key =
  String.length key > 0
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       key

let entry_path t key = Filename.concat t.dir key

let header_of payload =
  Printf.sprintf "%s %d %s %d\n" magic format_version
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

let parse_header line =
  match String.split_on_char ' ' line with
  | [ m; v; digest; len ]
    when m = magic && int_of_string_opt v = Some format_version ->
      Option.map (fun n -> (digest, n)) (int_of_string_opt len)
  | _ -> None

let find t ~key =
  if not (valid_key key) then None
  else
    let path = entry_path t key in
    let entry =
      match In_channel.open_bin path with
      | exception Sys_error _ -> `Absent
      | ic ->
          Fun.protect
            ~finally:(fun () -> In_channel.close ic)
            (fun () ->
              match In_channel.input_line ic with
              | None -> `Corrupt
              | Some header -> (
                  match parse_header header with
                  | None -> `Corrupt
                  | Some (digest, len) -> (
                      match In_channel.really_input_string ic len with
                      | None -> `Corrupt (* truncated *)
                      | Some payload ->
                          if
                            In_channel.input_char ic = None
                            && Digest.to_hex (Digest.string payload) = digest
                          then `Hit payload
                          else `Corrupt)))
    in
    match entry with
    | `Hit payload ->
        Metrics.incr Metrics.serve_disk_cache_hits;
        Some payload
    | `Absent ->
        Metrics.incr Metrics.serve_disk_cache_misses;
        None
    | `Corrupt ->
        (* A truncated or corrupted entry is a miss, never fatal; leave the
           file for the next [store] to atomically replace. *)
        Metrics.incr Metrics.serve_disk_cache_misses;
        Metrics.incr Metrics.serve_disk_cache_corrupt;
        None

let store t ~key payload =
  if valid_key key then begin
    let path = entry_path t key in
    (* The temp name embeds pid + key so concurrent writers in different
       processes never collide on the staging file; the final rename is
       atomic within the directory. *)
    let tmp =
      Filename.concat t.dir
        (Printf.sprintf "%s%d.%s" tmp_prefix (Unix.getpid ()) key)
    in
    match Out_channel.open_bin tmp with
    | exception Sys_error _ -> ()
    | oc ->
        let written =
          match
            Fun.protect
              ~finally:(fun () -> Out_channel.close oc)
              (fun () ->
                Out_channel.output_string oc (header_of payload);
                Out_channel.output_string oc payload)
          with
          | () -> true
          | exception Sys_error _ -> false
        in
        if written then (
          try
            Unix.rename tmp path;
            Metrics.incr Metrics.serve_disk_cache_writes
          with Unix.Unix_error _ -> (
            try Sys.remove tmp with Sys_error _ -> ()))
        else (try Sys.remove tmp with Sys_error _ -> ())
  end

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun acc f -> if valid_key f then acc + 1 else acc)
        0 files

let bytes t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun acc f ->
          if valid_key f then
            match (Unix.stat (Filename.concat t.dir f)).Unix.st_size with
            | size -> acc + size
            | exception Unix.Unix_error _ -> acc
          else acc)
        0 files

let stats_json t =
  Symref_obs.Json.Obj
    [
      ("dir", Symref_obs.Json.Str t.dir);
      ("entries", Symref_obs.Json.Num (float_of_int (entries t)));
      ("bytes", Symref_obs.Json.Num (float_of_int (bytes t)));
    ]
