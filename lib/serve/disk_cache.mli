(** Persistent content-addressed result cache: one file per entry under a
    shared directory, layered {e under} the in-memory {!Cache} by
    {!Service} so a hit replays bit-identically after a full daemon
    restart.

    Entry format (see [doc/serve.mld]): a checksum header line
    [symref-cache 1 <md5-hex-of-payload> <length>] followed by the raw
    payload bytes.  Writes stage into a temp file and [rename] into place
    (atomic within the directory), reads verify magic, length and digest
    and report any mismatch as a miss — so N daemon processes can share
    the directory read-mostly with no coordination, and a crash mid-write
    can never poison a reader.  Keys are the MD5-hex digests {!Service}
    already computes, which makes them filename-safe; anything else is
    rejected as invalid and behaves as a permanent miss.

    Hits, misses, writes and checksum rejections count in the
    [serve.disk_cache_*] metrics. *)

type t

val create : dir:string -> t
(** Create (mkdir -p) the cache directory if needed, then scrub orphaned
    [.tmp.*] staging files left by writers that crashed between staging
    and rename (counted in [serve.disk_cache_scrubbed]).  A concurrent
    writer's in-flight staging file may be scrubbed too — it then loses
    its rename race, which [store] already tolerates (the write is
    dropped, costing one future recompute).
    @raise Unix.Unix_error when the directory cannot be created. *)

val dir : t -> string

val find : t -> key:string -> string option
(** Look a payload up by key.  [None] on absent, truncated, corrupt or
    foreign files — never raises on entry content. *)

val store : t -> key:string -> string -> unit
(** Persist a payload atomically (tmp + rename).  I/O failures — a full
    or read-only disk — are swallowed: the disk layer is an accelerator,
    losing a write only costs a future recompute. *)

val entries : t -> int
(** Number of (well-named) entry files currently in the directory. *)

val bytes : t -> int
(** Total size of those entry files, headers included. *)

val stats_json : t -> Symref_obs.Json.t
(** [{dir; entries; bytes}] — directory-scan gauges, cheap at cache
    scales. *)
