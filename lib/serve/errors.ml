(* Typed failure taxonomy for the serve subsystem.

   Everything the client and the job-resolution path used to report as a
   bare [Failure _] is a value of [t] instead: callers can match on the
   shape (retry transient connection losses, reject bad specs outright)
   and the reply kind is derived from the constructor, not from parsing
   the message text. *)

type t =
  | No_banner
      (* the connection closed before the daemon's hello banner arrived *)
  | Connection_closed of { during : string }
      (* the connection closed mid-exchange, e.g. before a reply line *)
  | Bad_spec of { what : string; message : string }
      (* a malformed or unresolvable input/output specification *)
  | Version_mismatch of { got : int; want : int }
      (* the daemon's hello banner advertised an incompatible protocol *)

exception Error of t

let fail e = raise (Error e)
let bad_spec what fmt = Printf.ksprintf (fun m -> fail (Bad_spec { what; message = m })) fmt

(* Reply-kind slug: what goes into the structured reply's "kind" field. *)
let kind = function
  | No_banner | Connection_closed _ -> "connection"
  | Bad_spec _ -> "spec"
  | Version_mismatch _ -> "protocol"

let message = function
  | No_banner -> "serve client: no hello banner"
  | Connection_closed { during } ->
      Printf.sprintf "serve client: connection closed during %s" during
  | Bad_spec { what; message } -> Printf.sprintf "%s: %s" what message
  | Version_mismatch { got; want } ->
      Printf.sprintf
        "serve client: daemon speaks protocol %d, this client speaks %d" got
        want

(* A connection-level failure is worth retrying (the daemon may be
   restarting, the socket may have been torn down mid-reply); a bad spec
   never is, and neither is a protocol mismatch — reconnecting to the same
   daemon yields the same banner. *)
let transient = function
  | No_banner | Connection_closed _ -> true
  | Bad_spec _ | Version_mismatch _ -> false
