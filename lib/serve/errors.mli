(** Typed failure taxonomy for the serve subsystem.

    Replaces the bare [Failure _] escapes of the client and the job
    input/output resolution: callers match on the shape — {!Client.retry_request}
    retries what {!transient} says is worth retrying, {!Service.run_job}
    maps the constructor to a structured reply kind — instead of parsing
    message strings.  See [doc/robustness.mld]. *)

type t =
  | No_banner
      (** the connection closed before the daemon's hello banner arrived *)
  | Connection_closed of { during : string }
      (** the connection closed mid-exchange ([during] names the phase,
          e.g. ["the reply"]) *)
  | Bad_spec of { what : string; message : string }
      (** a malformed or unresolvable input/output specification ([what]
          names the offending spec, e.g. ["input"] or the raw string) *)
  | Version_mismatch of { got : int; want : int }
      (** the daemon's hello banner advertised protocol [got], outside
          the [[{!Protocol.min_protocol_version}, want]] range this
          client accepts — refused at connect, before any request *)

exception Error of t

val fail : t -> 'a
(** [raise (Error t)]. *)

val bad_spec : string -> ('a, unit, string, 'b) format4 -> 'a
(** [bad_spec what fmt ...] formats the message and raises
    [Error (Bad_spec _)]. *)

val kind : t -> string
(** The structured-reply kind slug: ["connection"], ["spec"] or
    ["protocol"]. *)

val message : t -> string
(** Human-readable one-liner (what the old [Failure] carried). *)

val transient : t -> bool
(** Whether a retry can plausibly succeed: [true] for connection-level
    failures, [false] for bad specs. *)
