(* The serve wire protocol: pure JSON codec for requests and replies.

   Kept total and side-effect free so the daemon can turn any decoding
   failure into a structured error reply, and so tests can fuzz it without
   a socket. *)

module Json = Symref_obs.Json

(* v2 added the [overloaded] status and its [retry_after_ms] hint — a pure
   extension, so v1 peers stay understandable and [min_protocol_version]
   stays 1: a rolling restart may mix versions without a flag day.  A peer
   *newer* than us is still refused (we cannot know it stayed compatible). *)
let protocol_version = 2
let min_protocol_version = 1

let fail fmt = Printf.ksprintf failwith fmt

(* --- analyses --- *)

type analysis =
  | Reference
  | Adaptive
  | Bode of { from_hz : float; to_hz : float; per_decade : int }
  | Poles
  | Simplify of {
      budget_db : float;
      budget_deg : float;
      from_hz : float;
      to_hz : float;
      per_decade : int;
    }

let analysis_to_string = function
  | Reference -> "reference"
  | Adaptive -> "adaptive"
  | Bode { from_hz; to_hz; per_decade } ->
      Printf.sprintf "bode(%.17g,%.17g,%d)" from_hz to_hz per_decade
  | Poles -> "poles"
  | Simplify { budget_db; budget_deg; from_hz; to_hz; per_decade } ->
      Printf.sprintf "simplify(%.17g,%.17g,%.17g,%.17g,%d)" budget_db budget_deg
        from_hz to_hz per_decade

(* --- requests --- *)

type job = {
  id : string option;
  netlist : [ `Text of string | `Path of string ];
  analysis : analysis;
  input : string;
  output : string option;
  sigma : int;
  r : float;
  timeout_ms : int option;
}

let default_job =
  {
    id = None;
    netlist = `Text "";
    analysis = Reference;
    input = "auto";
    output = None;
    sigma = 6;
    r = 1.0;
    timeout_ms = None;
  }

type request = Hello | Stats | Submit of job | Shutdown

let num x = Json.Num x
let inum i = Json.Num (float_of_int i)
let str s = Json.Str s

let opt_field k f = function None -> [] | Some v -> [ (k, f v) ]

let analysis_fields = function
  | Reference -> [ ("analysis", str "reference") ]
  | Adaptive -> [ ("analysis", str "adaptive") ]
  | Poles -> [ ("analysis", str "poles") ]
  | Bode { from_hz; to_hz; per_decade } ->
      [
        ("analysis", str "bode");
        ("from", num from_hz);
        ("to", num to_hz);
        ("per_decade", inum per_decade);
      ]
  | Simplify { budget_db; budget_deg; from_hz; to_hz; per_decade } ->
      [
        ("analysis", str "simplify");
        ("budget_db", num budget_db);
        ("budget_deg", num budget_deg);
        ("from", num from_hz);
        ("to", num to_hz);
        ("per_decade", inum per_decade);
      ]

let request_to_json = function
  | Hello -> Json.Obj [ ("op", str "hello") ]
  | Stats -> Json.Obj [ ("op", str "stats") ]
  | Shutdown -> Json.Obj [ ("op", str "shutdown") ]
  | Submit j ->
      Json.Obj
        (("op", str "submit")
         :: opt_field "id" str j.id
        @ (match j.netlist with
          | `Text t -> [ ("netlist", str t) ]
          | `Path p -> [ ("path", str p) ])
        @ analysis_fields j.analysis
        @ [ ("input", str j.input) ]
        @ opt_field "output" str j.output
        @ [ ("sigma", inum j.sigma); ("r", num j.r) ]
        @ opt_field "timeout_ms" inum j.timeout_ms)

let get_str k j =
  match Json.member k j with
  | Some (Json.Str s) -> Some s
  | Some v -> fail "protocol: field %s must be a string, got %s" k (Json.to_string v)
  | None -> None

let get_num k j =
  match Json.member k j with
  | Some (Json.Num x) -> Some x
  | Some v -> fail "protocol: field %s must be a number, got %s" k (Json.to_string v)
  | None -> None

let get_int k j =
  Option.map
    (fun x ->
      if Float.is_integer x then int_of_float x
      else fail "protocol: field %s must be an integer" k)
    (get_num k j)

let get_bool k j =
  match Json.member k j with
  | Some (Json.Bool b) -> Some b
  | Some v -> fail "protocol: field %s must be a boolean, got %s" k (Json.to_string v)
  | None -> None

let analysis_of_json j =
  match get_str "analysis" j with
  | None | Some "reference" -> Reference
  | Some "adaptive" -> Adaptive
  | Some "poles" -> Poles
  | Some "bode" ->
      Bode
        {
          from_hz = Option.value ~default:1. (get_num "from" j);
          to_hz = Option.value ~default:1e8 (get_num "to" j);
          per_decade = Option.value ~default:4 (get_int "per_decade" j);
        }
  | Some "simplify" ->
      Simplify
        {
          budget_db = Option.value ~default:0.5 (get_num "budget_db" j);
          budget_deg = Option.value ~default:2. (get_num "budget_deg" j);
          from_hz = Option.value ~default:1. (get_num "from" j);
          to_hz = Option.value ~default:1e8 (get_num "to" j);
          per_decade = Option.value ~default:4 (get_int "per_decade" j);
        }
  | Some a -> fail "protocol: unknown analysis %S" a

let job_of_json j =
  let netlist =
    match (get_str "netlist" j, get_str "path" j) with
    | Some t, None -> `Text t
    | None, Some p -> `Path p
    | Some _, Some _ -> fail "protocol: submit carries both netlist and path"
    | None, None -> fail "protocol: submit needs a netlist or a path"
  in
  {
    id = get_str "id" j;
    netlist;
    analysis = analysis_of_json j;
    input = Option.value ~default:default_job.input (get_str "input" j);
    output = get_str "output" j;
    sigma = Option.value ~default:default_job.sigma (get_int "sigma" j);
    r = Option.value ~default:default_job.r (get_num "r" j);
    timeout_ms = get_int "timeout_ms" j;
  }

let request_of_json j =
  match get_str "op" j with
  | Some "hello" -> Hello
  | Some "stats" -> Stats
  | Some "shutdown" -> Shutdown
  | Some "submit" -> Submit (job_of_json j)
  | Some op -> fail "protocol: unknown op %S" op
  | None -> fail "protocol: request has no op field"

(* --- replies --- *)

type status = Ok | Error | Timeout | Busy | Overloaded

let status_to_string = function
  | Ok -> "ok"
  | Error -> "error"
  | Timeout -> "timeout"
  | Busy -> "busy"
  | Overloaded -> "overloaded"

let status_of_string = function
  | "ok" -> Ok
  | "error" -> Error
  | "timeout" -> Timeout
  | "busy" -> Busy
  | "overloaded" -> Overloaded
  | s -> fail "protocol: unknown status %S" s

type reply = {
  reply_id : string option;
  status : status;
  cached : bool;
  version : string;
  body : Json.t;
}

let ok ?(id = None) ?(cached = false) body =
  { reply_id = id; status = Ok; cached; version = Version.version; body }

let error ?(id = None) ?(status = Error) ~kind message =
  {
    reply_id = id;
    status;
    cached = false;
    version = Version.version;
    body = Json.Obj [ ("kind", str kind); ("message", str message) ];
  }

(* Load shedding: a typed backpressure reply whose [retry_after_ms] tells
   the client when the queue is expected to have drained enough to admit
   the job — {!Client.retry_request} honours it over its fixed schedule. *)
let overloaded ?(id = None) ~retry_after_ms message =
  {
    reply_id = id;
    status = Overloaded;
    cached = false;
    version = Version.version;
    body =
      Json.Obj
        [
          ("kind", str "overloaded");
          ("message", str message);
          ("retry_after_ms", num retry_after_ms);
        ];
  }

let retry_after_ms r =
  match r.status with
  | Busy | Overloaded -> get_num "retry_after_ms" r.body
  | Ok | Error | Timeout -> None

let reply_to_json r =
  Json.Obj
    (opt_field "id" str r.reply_id
    @ [
        ("status", str (status_to_string r.status));
        ("cached", Json.Bool r.cached);
        ("version", str r.version);
        ((match r.status with Ok -> "result" | _ -> "error"), r.body);
      ])

let reply_of_json j =
  let status =
    match get_str "status" j with
    | Some s -> status_of_string s
    | None -> fail "protocol: reply has no status field"
  in
  let body_key = match status with Ok -> "result" | _ -> "error" in
  {
    reply_id = get_str "id" j;
    status;
    cached = Option.value ~default:false (get_bool "cached" j);
    version = Option.value ~default:"" (get_str "version" j);
    body = Option.value ~default:Json.Null (Json.member body_key j);
  }

let hello_banner () =
  Json.Obj
    [
      ("hello", str "symref");
      ("version", str Version.version);
      ("protocol", inum protocol_version);
    ]

let error_kind r = get_str "kind" r.body
let error_message r = get_str "message" r.body
