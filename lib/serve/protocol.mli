(** The serve wire protocol: newline-delimited JSON over a Unix domain
    socket.

    One request per line, one reply per line, in order; the JSON itself is
    {!Symref_obs.Json}'s compact single-line rendering, so embedded netlist
    text rides inside a JSON string with escaped newlines.  The codec is
    pure (no I/O) and total in both directions: [request_of_json] and
    [reply_of_json] raise [Failure] with a human-readable message on
    malformed input, which the daemon turns into a structured [`Error]
    reply instead of dying.

    See [doc/serve.mld] for the message reference. *)

module Json = Symref_obs.Json

val protocol_version : int
(** The protocol this build speaks; carried by the hello banner.  Bumped
    on every wire change — but additive changes keep
    {!min_protocol_version} where it was, so mixed-version fleets keep
    talking during a rolling restart. *)

val min_protocol_version : int
(** Oldest peer protocol this build still accepts: every version in
    [[min_protocol_version, protocol_version]] differs from ours only by
    additions (new statuses, optional fields) we can ignore or they will.
    {!Client.connect} refuses banners outside the range. *)

(** {1 Analyses} *)

type analysis =
  | Reference  (** network-function coefficients, default config *)
  | Adaptive  (** coefficients plus the per-pass band reports *)
  | Bode of { from_hz : float; to_hz : float; per_decade : int }
      (** Bode data reconstructed from the reference coefficients *)
  | Poles  (** pole/zero extraction from the references *)
  | Simplify of {
      budget_db : float;
      budget_deg : float;
      from_hz : float;
      to_hz : float;
      per_decade : int;
    }
      (** reference-driven symbolic simplification under an error budget,
          verified over the [from_hz..to_hz] grid; the reply carries the
          simplified expressions plus an error certificate *)

val analysis_to_string : analysis -> string
(** Canonical text form, also used in cache keys ([reference], [adaptive],
    [bode(1,1e8,4)], [poles], [simplify(0.5,2,1,1e8,4)]). *)

(** {1 Requests} *)

type job = {
  id : string option;  (** echoed verbatim in the reply *)
  netlist : [ `Text of string | `Path of string ];
      (** inline netlist text, or a path resolved on the daemon's side *)
  analysis : analysis;
  input : string;  (** CLI input syntax, e.g. [v1], [diff:inp,inn]; [auto] *)
  output : string option;  (** node (or [P,M]); [None] = auto-detect *)
  sigma : int;
  r : float;
  timeout_ms : int option;  (** wall-clock budget; [Some 0] expires at once *)
}

val default_job : job
(** [Reference] analysis of [`Text ""], input [auto], everything else at
    the CLI defaults — the base the decoder fills in. *)

type request =
  | Hello  (** capability/version exchange *)
  | Stats  (** counter snapshot + cache and scheduler gauges *)
  | Submit of job
  | Shutdown  (** graceful: drain in-flight jobs, then exit *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> request
(** @raise Failure on an unknown [op] or ill-typed fields. *)

(** {1 Replies} *)

type status =
  | Ok
  | Error  (** structured failure: parse error, unsupported circuit, ... *)
  | Timeout  (** the job's wall-clock deadline expired *)
  | Busy  (** backpressure: the daemon is shutting down, retry elsewhere *)
  | Overloaded
      (** load shed: admission control refused the job (queue full, or the
          estimated wait already exceeds the deadline); the error body
          carries [retry_after_ms] *)

val status_to_string : status -> string

type reply = {
  reply_id : string option;
  status : status;
  cached : bool;  (** [true] when served from the result cache *)
  version : string;  (** the daemon's {!Version.version} *)
  body : Json.t;
      (** [status = Ok]: the analysis payload (or hello/stats object);
          otherwise an error object [{kind; message}] *)
}

val ok : ?id:string option -> ?cached:bool -> Json.t -> reply
val error : ?id:string option -> ?status:status -> kind:string -> string -> reply
(** [error ~kind msg] builds a structured failure reply ([status] defaults
    to [Error]). *)

val overloaded : ?id:string option -> retry_after_ms:float -> string -> reply
(** The typed load-shed reply: status [Overloaded], error kind
    [overloaded], and a [retry_after_ms] hint in the body — the estimated
    time until the shedding queue has drained enough to admit the job. *)

val retry_after_ms : reply -> float option
(** The [retry_after_ms] hint of a [Busy] or [Overloaded] reply, if the
    server provided one; [None] on every other status. *)

val reply_to_json : reply -> Json.t
val reply_of_json : Json.t -> reply
(** @raise Failure on ill-typed fields. *)

val hello_banner : unit -> Json.t
(** The one-line greeting the daemon writes on connect:
    [{"hello":"symref","version":...,"protocol":N}]. *)

val error_kind : reply -> string option
val error_message : reply -> string option
