(* Consistent-hash front router for a fleet of serve daemons.

   The ring holds [replicas] virtual nodes per worker (MD5 of
   "<addr>#<i>", first 8 bytes as an unsigned int64), sorted by hash.  A
   job's key hashes onto the ring and walks clockwise: the first virtual
   node's worker owns it, the following *distinct* workers are its failover
   order.  Adding or removing one worker therefore only remaps the keys
   that hashed onto its virtual nodes — the rest of the fleet keeps its
   (warm) share.

   The router holds no job state: it forwards one request, relays one
   reply.  Worker health is a soft signal — dead workers are skipped when
   routing, but when every candidate is marked dead the walk tries them
   all anyway (the marks may be stale; a wrong "dead" must degrade to a
   slow request, not an outage). *)

module Json = Symref_obs.Json
module Metrics = Symref_obs.Metrics

type worker = { addr : Transport.address; mutable alive : bool }

type t = {
  workers : worker array;
  ring : (int64 * int) array; (* (vnode hash, worker index), sorted *)
  replicas : int;
  backoff : Client.backoff;
  lock : Mutex.t; (* guards the alive flags *)
}

let hash64 s =
  let d = Digest.string s in
  let x = ref 0L in
  for i = 0 to 7 do
    x := Int64.logor (Int64.shift_left !x 8) (Int64.of_int (Char.code d.[i]))
  done;
  !x

(* Forwarding wants to fail over quickly, not sit out a full client retry
   schedule against a dead worker: two attempts, short delays. *)
let default_backoff =
  { Client.default_backoff with Client.attempts = 2; base_delay_ms = 10. }

let create ?(replicas = 64) ?(backoff = default_backoff) addrs =
  if addrs = [] then invalid_arg "Router.create: no workers";
  if replicas < 1 then invalid_arg "Router.create: replicas must be >= 1";
  let workers =
    Array.of_list (List.map (fun addr -> { addr; alive = true }) addrs)
  in
  let ring =
    Array.init
      (Array.length workers * replicas)
      (fun i ->
        let w = i / replicas and r = i mod replicas in
        ( hash64
            (Printf.sprintf "%s#%d" (Transport.to_string workers.(w).addr) r),
          w ))
  in
  Array.sort
    (fun (a, wa) (b, wb) ->
      match Int64.unsigned_compare a b with 0 -> compare wa wb | c -> c)
    ring;
  { workers; ring; replicas; backoff; lock = Mutex.create () }

let workers t = Array.to_list (Array.map (fun w -> w.addr) t.workers)

(* The routing key is over the job's *spelling* (raw netlist text or path,
   analysis, io, sigma, r): cheap, deterministic, and identical requests
   always land on the same worker — which is what makes each worker's LRU
   cache effective.  It intentionally does not canonicalise the netlist;
   only the owning worker pays for parsing. *)
let job_key (job : Protocol.job) =
  let netlist =
    match job.Protocol.netlist with
    | `Text s -> "text\x00" ^ s
    | `Path p -> "path\x00" ^ p
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            netlist;
            Protocol.analysis_to_string job.Protocol.analysis;
            job.Protocol.input;
            (match job.Protocol.output with Some o -> o | None -> "");
            string_of_int job.Protocol.sigma;
            Printf.sprintf "%.17g" job.Protocol.r;
          ]))

(* First ring slot at or clockwise-after [h] (binary search, wrapping). *)
let ring_start t h =
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.ring.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo = n then 0 else !lo

(* Worker indices in ring order starting at the key's owner, each worker
   once: the failover sequence. *)
let route t key =
  let n = Array.length t.ring in
  let start = ring_start t (hash64 key) in
  let seen = Array.make (Array.length t.workers) false in
  let order = ref [] in
  for i = 0 to n - 1 do
    let _, w = t.ring.((start + i) mod n) in
    if not seen.(w) then begin
      seen.(w) <- true;
      order := w :: !order
    end
  done;
  List.rev !order

let owner t key =
  match route t key with
  | w :: _ -> t.workers.(w).addr
  | [] -> assert false (* create requires >= 1 worker *)

let alive t w =
  Mutex.lock t.lock;
  let a = t.workers.(w).alive in
  Mutex.unlock t.lock;
  a

let set_alive t w v =
  Mutex.lock t.lock;
  let was = t.workers.(w).alive in
  t.workers.(w).alive <- v;
  Mutex.unlock t.lock;
  if was && not v then Metrics.incr Metrics.router_dead_workers

(* One forwarded exchange; transient failures surface as [Error] so the
   walk can fail over.  Anything non-transient (a version mismatch, a bad
   spec mapped by the worker) propagates — the next worker would only say
   the same thing. *)
let try_worker t w req =
  match Client.retry_request ~backoff:t.backoff ~addr:t.workers.(w).addr req with
  | reply ->
      set_alive t w true;
      Ok reply
  | exception Unix.Unix_error (e, _, _) when Client.transient_errno e ->
      Error (`Unix e)
  | exception Errors.Error e when Errors.transient e -> Error (`Typed e)
  | exception Sys_error m -> Error (`Sys m)

let forward t (job : Protocol.job) =
  Metrics.incr Metrics.router_requests;
  let order = route t (job_key job) in
  let candidates =
    match List.filter (alive t) order with [] -> order | live -> live
  in
  let rec walk first = function
    | [] ->
        (* Every candidate failed: a structured error, so one dead fleet
           never crashes the router's connection handler. *)
        Protocol.error ~id:job.Protocol.id ~kind:"connection"
          "router: no worker reachable for this job"
    | w :: rest -> (
        if not first then Metrics.incr Metrics.router_failovers;
        match try_worker t w (Protocol.Submit job) with
        | Ok reply -> reply
        | Error _ ->
            set_alive t w false;
            walk false rest)
  in
  walk true candidates

let health_check t =
  Array.iteri
    (fun w _ ->
      Metrics.incr Metrics.router_health_checks;
      match try_worker t w Protocol.Hello with
      | Ok _ -> ()
      | Error _ -> set_alive t w false)
    t.workers

let stats_json t =
  let per_worker =
    Array.to_list
      (Array.mapi
         (fun w (worker : worker) ->
           let base =
             [
               ("addr", Json.Str (Transport.to_string worker.addr));
               ("alive", Json.Bool (alive t w));
             ]
           in
           match try_worker t w Protocol.Stats with
           | Ok reply when reply.Protocol.status = Protocol.Ok ->
               Json.Obj (base @ [ ("stats", reply.Protocol.body) ])
           | Ok _ | Error _ -> Json.Obj base)
         t.workers)
  in
  Json.Obj
    [
      ("version", Json.Str Version.version);
      ("role", Json.Str "router");
      ("replicas", Json.Num (float_of_int t.replicas));
      ("workers", Json.Arr per_worker);
    ]

(* --- the front-end server: same accept-loop shape as {!Daemon} --- *)

type server = {
  router : t;
  listeners : (Transport.address * Unix.file_descr) list;
  health_interval_ms : int;
  lock : Mutex.t;
  mutable stop : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;
}

let create_server ?(backlog = 16) ?(health_interval_ms = 1000) ~listen router =
  if listen = [] then invalid_arg "Router.create_server: no listen addresses";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listeners =
    let rec bind_all acc = function
      | [] -> List.rev acc
      | addr :: rest -> (
          match Transport.listen ~backlog addr with
          | fd -> bind_all ((Transport.bound_address addr fd, fd) :: acc) rest
          | exception e ->
              List.iter (fun (a, fd) -> Transport.close_listener a fd) acc;
              raise e)
    in
    bind_all [] listen
  in
  {
    router;
    listeners;
    health_interval_ms;
    lock = Mutex.create ();
    stop = false;
    conns = [];
  }

let server_addresses s = List.map fst s.listeners

let request_stop s =
  Mutex.lock s.lock;
  s.stop <- true;
  Mutex.unlock s.lock

let stopping s =
  Mutex.lock s.lock;
  let v = s.stop in
  Mutex.unlock s.lock;
  v

let handle_request s = function
  | Protocol.Hello -> Protocol.ok (Protocol.hello_banner ())
  | Protocol.Stats -> Protocol.ok (stats_json s.router)
  | Protocol.Shutdown ->
      request_stop s;
      Protocol.ok (Json.Obj [ ("shutting_down", Json.Bool true) ])
  | Protocol.Submit job -> forward s.router job

let handle_conn s fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send json =
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc
  in
  let serve_line line =
    let reply =
      match Protocol.request_of_json (Json.parse line) with
      | exception Failure m -> Protocol.error ~kind:"protocol" m
      | request -> handle_request s request
    in
    send (Protocol.reply_to_json reply)
  in
  (try
     send (Protocol.hello_banner ());
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
           if String.trim line <> "" then serve_line line;
           loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve s =
  (* Health probing on its own thread, so a slow worker never delays
     accepts; it winds down with the accept loop. *)
  let prober =
    Thread.create
      (fun () ->
        let interval = float_of_int s.health_interval_ms /. 1000. in
        while not (stopping s) do
          health_check s.router;
          (* Sleep in short slices so shutdown is prompt. *)
          let remaining = ref interval in
          while !remaining > 0. && not (stopping s) do
            let slice = Float.min 0.2 !remaining in
            Unix.sleepf slice;
            remaining := !remaining -. slice
          done
        done)
      ()
  in
  let socks = List.map snd s.listeners in
  let rec accept_loop () =
    if not (stopping s) then begin
      (match Unix.select socks [] [] 0.2 with
      | [], _, _ -> ()
      | ready, _, _ ->
          List.iter
            (fun sock ->
              match Unix.accept sock with
              | fd, _ ->
                  let th = Thread.create (handle_conn s) fd in
                  Mutex.lock s.lock;
                  s.conns <- (fd, th) :: s.conns;
                  Mutex.unlock s.lock
              | exception Unix.Unix_error _ -> ())
            ready);
      accept_loop ()
    end
  in
  accept_loop ();
  List.iter (fun (addr, fd) -> Transport.close_listener addr fd) s.listeners;
  Mutex.lock s.lock;
  let conns = s.conns in
  s.conns <- [];
  Mutex.unlock s.lock;
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, th) -> Thread.join th) conns;
  Thread.join prober
