(* Consistent-hash front router for a fleet of serve daemons.

   The ring holds [replicas] virtual nodes per worker (MD5 of
   "<addr>#<i>", first 8 bytes as an unsigned int64), sorted by hash.  A
   job's key hashes onto the ring and walks clockwise: the first virtual
   node's worker owns it, the following *distinct* workers are its failover
   order.  Adding or removing one worker therefore only remaps the keys
   that hashed onto its virtual nodes — the rest of the fleet keeps its
   (warm) share.

   The router holds no job state: it forwards one request, relays one
   reply.  Worker health is tracked by a per-worker circuit breaker
   (closed -> open on failures -> half-open probe -> closed), but the
   marks stay advisory: when every candidate's breaker refuses, the walk
   tries them all anyway — a stale "open" must degrade to a slow request,
   not an outage.

   Tail latency is covered by hedging: when the owner has not answered
   after a delay derived from recent forward latencies (p99, clamped), the
   same job is re-issued to the next ring candidate and the first reply
   wins.  Workers are deterministic and idempotent, so a duplicated job
   can only waste one worker's time, never change the answer. *)

module Json = Symref_obs.Json
module Metrics = Symref_obs.Metrics

(* --- circuit breakers --- *)

type breaker_state =
  | Closed
  | Open of { until : float }
  | Half_open of { since : float }

type breaker_view = [ `Closed | `Open | `Half_open ]

type breaker_config = {
  threshold : int;  (* consecutive forward failures that open the breaker *)
  cooldown_ms : float;  (* first open interval; doubles per re-open *)
  max_cooldown_ms : float;
}

let default_breaker =
  { threshold = 3; cooldown_ms = 250.; max_cooldown_ms = 10_000. }

(* --- hedging --- *)

type hedge_config = {
  after_ms_min : float;
  after_ms_max : float;
  percentile : float;  (* of recent forward latencies, e.g. 0.99 *)
}

let default_hedge = { after_ms_min = 25.; after_ms_max = 500.; percentile = 0.99 }

type worker = {
  addr : Transport.address;
  mutable state : breaker_state;
  mutable failures : int;  (* consecutive failures while Closed *)
  mutable streak : int;  (* opens since the last close, paces re-probing *)
  mutable probes : int;  (* probes sent, salts the deterministic jitter *)
  mutable next_probe : float;  (* prober schedule, unix time *)
}

let lat_window = 256

type t = {
  workers : worker array;
  ring : (int64 * int) array; (* (vnode hash, worker index), sorted *)
  replicas : int;
  backoff : Client.backoff;
  breaker : breaker_config;
  hedge : hedge_config option;
  lat : float array; (* ring buffer of forward latencies, ms *)
  mutable lat_n : int; (* samples recorded, saturates at lat_window *)
  mutable lat_i : int; (* next write slot *)
  lock : Mutex.t; (* guards breaker fields and the latency buffer *)
}

(* A signal must never unwind a serve loop or strand a hedge race: an
   interrupted nap just ends early (callers all re-check their clocks). *)
let sleepf s =
  try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

let hash64 s =
  let d = Digest.string s in
  let x = ref 0L in
  for i = 0 to 7 do
    x := Int64.logor (Int64.shift_left !x 8) (Int64.of_int (Char.code d.[i]))
  done;
  !x

(* Forwarding wants to fail over quickly, not sit out a full client retry
   schedule against a dead worker: two attempts, short delays. *)
let default_backoff =
  { Client.default_backoff with Client.attempts = 2; base_delay_ms = 10. }

let create ?(replicas = 64) ?(backoff = default_backoff)
    ?(breaker = default_breaker) ?(hedge = Some default_hedge) addrs =
  if addrs = [] then invalid_arg "Router.create: no workers";
  if replicas < 1 then invalid_arg "Router.create: replicas must be >= 1";
  if breaker.threshold < 1 then
    invalid_arg "Router.create: breaker threshold must be >= 1";
  let workers =
    Array.of_list
      (List.map
         (fun addr ->
           {
             addr;
             state = Closed;
             failures = 0;
             streak = 0;
             probes = 0;
             next_probe = 0.;
           })
         addrs)
  in
  let ring =
    Array.init
      (Array.length workers * replicas)
      (fun i ->
        let w = i / replicas and r = i mod replicas in
        ( hash64
            (Printf.sprintf "%s#%d" (Transport.to_string workers.(w).addr) r),
          w ))
  in
  Array.sort
    (fun (a, wa) (b, wb) ->
      match Int64.unsigned_compare a b with 0 -> compare wa wb | c -> c)
    ring;
  {
    workers;
    ring;
    replicas;
    backoff;
    breaker;
    hedge;
    lat = Array.make lat_window 0.;
    lat_n = 0;
    lat_i = 0;
    lock = Mutex.create ();
  }

let workers t = Array.to_list (Array.map (fun w -> w.addr) t.workers)

(* The routing key is over the job's *spelling* (raw netlist text or path,
   analysis, io, sigma, r): cheap, deterministic, and identical requests
   always land on the same worker — which is what makes each worker's LRU
   cache effective.  It intentionally does not canonicalise the netlist;
   only the owning worker pays for parsing. *)
let job_key (job : Protocol.job) =
  let netlist =
    match job.Protocol.netlist with
    | `Text s -> "text\x00" ^ s
    | `Path p -> "path\x00" ^ p
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            netlist;
            Protocol.analysis_to_string job.Protocol.analysis;
            job.Protocol.input;
            (match job.Protocol.output with Some o -> o | None -> "");
            string_of_int job.Protocol.sigma;
            Printf.sprintf "%.17g" job.Protocol.r;
          ]))

(* First ring slot at or clockwise-after [h] (binary search, wrapping). *)
let ring_start t h =
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.ring.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo = n then 0 else !lo

(* Worker indices in ring order starting at the key's owner, each worker
   once: the failover sequence. *)
let route t key =
  let n = Array.length t.ring in
  let start = ring_start t (hash64 key) in
  let seen = Array.make (Array.length t.workers) false in
  let order = ref [] in
  for i = 0 to n - 1 do
    let _, w = t.ring.((start + i) mod n) in
    if not seen.(w) then begin
      seen.(w) <- true;
      order := w :: !order
    end
  done;
  List.rev !order

let owner t key =
  match route t key with
  | w :: _ -> t.workers.(w).addr
  | [] -> assert false (* create requires >= 1 worker *)

(* --- breaker transitions (all under t.lock) --- *)

let with_lock t f =
  Mutex.lock t.lock;
  let v = try f () with e -> Mutex.unlock t.lock; raise e in
  Mutex.unlock t.lock;
  v

(* splitmix64 finalizer: a full-avalanche bijection, so consecutive probe
   counts give independent-looking jitter without any hidden state. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

(* Deterministic probe jitter in [0.8, 1.2): spelled by (worker, probe
   count) alone, so replays schedule identically while distinct workers
   never probe in lockstep. *)
let probe_jitter ~salt n =
  let h = mix64 (Int64.of_int ((salt * 1_000_003) + n)) in
  let u =
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.
  in
  0.8 +. (0.4 *. u)

let cooldown_s t (w : worker) =
  Float.min t.breaker.max_cooldown_ms
    (t.breaker.cooldown_ms *. Float.pow 2. (float_of_int (Int.min w.streak 10)))
  /. 1000.

let open_locked t (w : worker) now =
  w.state <- Open { until = now +. cooldown_s t w };
  w.streak <- w.streak + 1;
  w.failures <- 0;
  Metrics.incr Metrics.router_breaker_opens;
  Metrics.incr Metrics.router_dead_workers

let record_success t wi =
  with_lock t (fun () ->
      let w = t.workers.(wi) in
      (match w.state with
      | Closed -> ()
      | Open _ | Half_open _ ->
          w.state <- Closed;
          Metrics.incr Metrics.router_breaker_closes);
      w.failures <- 0;
      w.streak <- 0)

(* A failed forward: below the threshold it only counts; at the threshold
   the breaker opens.  A failed half-open probe re-opens with a doubled
   cooldown (capped), which is what paces re-probing of a worker that
   stays down. *)
let record_failure t wi =
  with_lock t (fun () ->
      let w = t.workers.(wi) in
      let now = Unix.gettimeofday () in
      match w.state with
      | Closed ->
          w.failures <- w.failures + 1;
          if w.failures >= t.breaker.threshold then open_locked t w now
      | Half_open _ -> open_locked t w now
      | Open _ -> ())

(* The dedicated prober is authoritative: a worker that cannot answer
   Hello is down now, whatever the forward count says. *)
let trip t wi =
  with_lock t (fun () ->
      let w = t.workers.(wi) in
      let now = Unix.gettimeofday () in
      match w.state with
      | Open _ -> ()
      | Closed | Half_open _ -> open_locked t w now)

(* May this worker take a request right now?  Closed: yes.  Open past its
   cooldown: yes.  Half-open (a probe is already in flight) or still
   cooling: no.  Read-only on purpose: merely being listed as a candidate
   must not burn the single half-open probe slot — a walk that ends
   before reaching an expired-open worker leaves it Open, and the claim
   happens only when a request is actually sent ({!claim_half_open}). *)
let admits t wi =
  with_lock t (fun () ->
      let w = t.workers.(wi) in
      let now = Unix.gettimeofday () in
      match w.state with
      | Closed -> true
      | Open { until } -> now >= until
      | Half_open _ -> false)

(* The moment an exchange actually goes out: an Open breaker past its
   cooldown flips to Half_open here and nowhere else, so this request is
   the single probe and an untried candidate never gets parked
   Half_open (which would refuse its traffic until the prober's grace). *)
let claim_half_open t wi =
  with_lock t (fun () ->
      let w = t.workers.(wi) in
      let now = Unix.gettimeofday () in
      match w.state with
      | Open { until } when now >= until ->
          w.state <- Half_open { since = now };
          Metrics.incr Metrics.router_breaker_half_opens
      | Closed | Open _ | Half_open _ -> ())

let breaker_state t wi : breaker_view =
  with_lock t (fun () ->
      match t.workers.(wi).state with
      | Closed -> `Closed
      | Open _ -> `Open
      | Half_open _ -> `Half_open)

let breaker_label = function
  | `Closed -> "closed"
  | `Open -> "open"
  | `Half_open -> "half_open"

(* --- latency book-keeping and the hedge delay --- *)

let record_latency t ms =
  with_lock t (fun () ->
      t.lat.(t.lat_i) <- ms;
      t.lat_i <- (t.lat_i + 1) mod lat_window;
      if t.lat_n < lat_window then t.lat_n <- t.lat_n + 1)

(* The hedge delay: the configured percentile of recent forward latencies,
   clamped into [after_ms_min, after_ms_max].  With no samples yet the
   delay is the max — hedging starts conservative and tightens as the
   router learns the fleet's actual tail. *)
let hedge_delay_ms t =
  match t.hedge with
  | None -> infinity
  | Some h ->
      if t.lat_n = 0 then h.after_ms_max
      else
        let sample =
          with_lock t (fun () -> Array.sub t.lat 0 t.lat_n)
        in
        Array.sort compare sample;
        let i =
          Int.min
            (Array.length sample - 1)
            (int_of_float (h.percentile *. float_of_int (Array.length sample)))
        in
        Float.max h.after_ms_min (Float.min h.after_ms_max sample.(i))

(* One forwarded exchange; transient failures surface as [Error] so the
   walk can fail over.  Anything non-transient (a version mismatch, a bad
   spec mapped by the worker, a malformed reply) surfaces as
   [Error (`Fatal _)] — the next worker would only say the same thing, but
   the exception must stay a value: letting it escape would strand a hedge
   race mid-wait or kill a connection handler without a reply.  A fatal
   exchange feeds neither breaker direction — the worker answered, so it
   is not down, and a bad job must not open a healthy worker's circuit. *)
let try_worker t w req =
  claim_half_open t w;
  let t0 = Unix.gettimeofday () in
  match Client.retry_request ~backoff:t.backoff ~addr:t.workers.(w).addr req with
  | reply ->
      record_success t w;
      (match req with
      | Protocol.Submit _ ->
          record_latency t ((Unix.gettimeofday () -. t0) *. 1000.)
      | Protocol.Hello | Protocol.Stats | Protocol.Shutdown -> ());
      Ok reply
  | exception Unix.Unix_error (e, _, _) when Client.transient_errno e ->
      record_failure t w;
      Error (`Unix e)
  | exception Errors.Error e when Errors.transient e ->
      record_failure t w;
      Error (`Typed e)
  | exception Sys_error m ->
      record_failure t w;
      Error (`Sys m)
  | exception e -> Error (`Fatal e)

(* A non-transient exchange failure becomes the client's structured reply:
   it is deterministic in the job (every worker would say the same), so
   relaying it is as correct as a worker saying it — and the connection
   handler never has to survive an exception. *)
let fatal_reply (job : Protocol.job) e =
  let kind, msg =
    match e with
    | Errors.Error err -> (Errors.kind err, Errors.message err)
    | Failure m -> ("protocol", m)
    | e -> ("internal", Printexc.to_string e)
  in
  Protocol.error ~id:job.Protocol.id ~kind msg

(* Race the owner against the next candidate: the primary goes out now,
   the hedge fires once [delay_ms] passes without a primary verdict — or
   immediately if the primary fails first (then it is ordinary failover,
   not a hedge).  First Ok wins; the loser is abandoned, not joined —
   its thread just finds the race decided and exits, costing at most one
   wasted worker computation (idempotent by construction). *)
let hedged_pair t job w1 w2 delay_ms =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let first_ok = ref None in
  let backpressure = ref None in
  let fatal = ref None in
  let primary_bp = ref false in
  let primary_fatal = ref false in
  let primary_failed = ref false in
  let completed = ref 0 in
  let is_bp (reply : Protocol.reply) =
    reply.Protocol.status = Protocol.Busy
    || reply.Protocol.status = Protocol.Overloaded
  in
  let finish outcome ~hedged =
    Mutex.lock m;
    (match outcome with
    | Ok reply when is_bp reply ->
        (* Backpressure from the owner ends the race at once — exactly the
           unhedged relay, and hedging must not duplicate load onto the
           rest of an overloaded fleet.  Backpressure from the hedge is
           only a fallback: the owner may still produce a real answer. *)
        if (not hedged) || !backpressure = None then backpressure := Some reply;
        if not hedged then primary_bp := true
    | Ok reply when !first_ok = None -> first_ok := Some (reply, hedged)
    | Ok _ -> ()
    | Error (`Fatal e) ->
        (* Deterministic in the job, not a failover trigger: primary-side
           it must end the race — the hedge could only repeat the same
           verdict — and either side it is the reply of last resort. *)
        if !fatal = None then fatal := Some e;
        if not hedged then primary_fatal := true
    | Error _ -> if not hedged then primary_failed := true);
    incr completed;
    Condition.signal cv;
    Mutex.unlock m
  in
  (* A racer must always report back through [finish]: an exception that
     escaped a racer thread would leave [completed] short and the
     coordinator in Condition.wait forever (hanging the client connection
     and, later, router shutdown's Thread.join).  [try_worker] is total by
     construction; the catch-all is the belt for whatever it misses. *)
  let race w ~hedged =
    let outcome =
      try try_worker t w (Protocol.Submit job) with e -> Error (`Fatal e)
    in
    finish outcome ~hedged
  in
  let _primary = Thread.create (fun () -> race w1 ~hedged:false) () in
  let _hedge =
    Thread.create
      (fun () ->
        let deadline = Unix.gettimeofday () +. (delay_ms /. 1000.) in
        let decided = ref false in
        let fire = ref false in
        while not !decided do
          Mutex.lock m;
          if !first_ok <> None || !primary_bp || !primary_fatal then
            decided := true
          else if !primary_failed then begin
            (* Primary already lost: fire now as plain failover. *)
            decided := true;
            fire := true
          end
          else if Unix.gettimeofday () >= deadline then begin
            decided := true;
            fire := true;
            Metrics.incr Metrics.router_hedges
          end;
          Mutex.unlock m;
          if not !decided then
            sleepf (Float.min 0.005 (Float.max 0.0005 (delay_ms /. 4000.)))
        done;
        if !fire then begin
          if !primary_failed then Metrics.incr Metrics.router_failovers;
          race w2 ~hedged:true
        end
        else finish (Error `Abandoned) ~hedged:true)
      ()
  in
  Mutex.lock m;
  while
    !first_ok = None
    && (not !primary_bp)
    && (not !primary_fatal)
    && !completed < 2
  do
    Condition.wait cv m
  done;
  let verdict = !first_ok
  and bp = !backpressure
  and fatal_exn = !fatal
  and primary_lost = !primary_failed in
  Mutex.unlock m;
  match verdict with
  | Some (reply, hedged) ->
      if hedged && not primary_lost then
        Metrics.incr Metrics.router_hedge_wins;
      Some reply
  | None -> (
      match bp with
      | Some _ -> bp
      | None -> Option.map (fatal_reply job) fatal_exn)

let no_worker_reply (job : Protocol.job) =
  (* Every candidate failed: a structured error, so one dead fleet never
     crashes the router's connection handler. *)
  Protocol.error ~id:job.Protocol.id ~kind:"connection"
    "router: no worker reachable for this job"

let forward t (job : Protocol.job) =
  Metrics.incr Metrics.router_requests;
  let order = route t (job_key job) in
  let candidates =
    match List.filter (admits t) order with [] -> order | live -> live
  in
  let rec walk first = function
    | [] -> no_worker_reply job
    | w :: rest -> (
        if not first then Metrics.incr Metrics.router_failovers;
        match try_worker t w (Protocol.Submit job) with
        | Ok reply -> reply
        | Error (`Fatal e) ->
            (* Non-transient: the next worker would only say the same
               thing, so answer now instead of walking (and misreporting
               a deterministic failure as "no worker reachable"). *)
            fatal_reply job e
        | Error _ -> walk false rest)
  in
  match (t.hedge, candidates) with
  | Some _, w1 :: w2 :: rest -> (
      match hedged_pair t job w1 w2 (hedge_delay_ms t) with
      | Some reply -> reply
      | None -> walk false rest)
  | _, _ -> walk true candidates

(* --- health probing --- *)

(* One Hello probe, authoritative either way: success closes the breaker,
   failure trips it open on the spot. *)
let probe t wi =
  Metrics.incr Metrics.router_health_checks;
  with_lock t (fun () ->
      let w = t.workers.(wi) in
      w.probes <- w.probes + 1);
  match try_worker t wi Protocol.Hello with
  | Ok _ -> ()
  | Error _ -> trip t wi

let health_check t = Array.iteri (fun wi _ -> probe t wi) t.workers

(* The paced prober: closed workers re-probe every interval, open workers
   only once their (exponentially growing) cooldown has passed — a worker
   that stays down costs ever fewer probes, one that comes back is noticed
   within its current cooldown.  Jitter keeps a fleet of routers from
   probing in lockstep while staying a pure function of (worker, probe
   count). *)
let probe_due ?now ~interval_ms t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  Array.iteri
    (fun wi _ ->
      let due, salt, probes =
        with_lock t (fun () ->
            let w = t.workers.(wi) in
            let ready =
              now >= w.next_probe
              &&
              match w.state with
              | Closed -> true
              | Open { until } -> now >= until
              | Half_open { since } ->
                  (* A half-open probe that never reported back (its
                     thread died mid-flight) must not wedge the breaker:
                     after a cooldown's grace the prober takes over. *)
                  now >= since +. cooldown_s t w
            in
            (ready, wi, w.probes))
      in
      if due then begin
        with_lock t (fun () ->
            t.workers.(wi).next_probe <-
              now
              +. float_of_int interval_ms /. 1000. *. probe_jitter ~salt probes);
        probe t wi
      end)
    t.workers

let stats_json t =
  let per_worker =
    Array.to_list
      (Array.mapi
         (fun w (worker : worker) ->
           let view = breaker_state t w in
           let failures, streak =
             with_lock t (fun () ->
                 (t.workers.(w).failures, t.workers.(w).streak))
           in
           let base =
             [
               ("addr", Json.Str (Transport.to_string worker.addr));
               ("alive", Json.Bool (view = `Closed));
               ("breaker", Json.Str (breaker_label view));
               ("failures", Json.Num (float_of_int failures));
               ("opens_streak", Json.Num (float_of_int streak));
             ]
           in
           match try_worker t w Protocol.Stats with
           | Ok reply when reply.Protocol.status = Protocol.Ok ->
               Json.Obj (base @ [ ("stats", reply.Protocol.body) ])
           | Ok _ | Error _ -> Json.Obj base)
         t.workers)
  in
  Json.Obj
    [
      ("version", Json.Str Version.version);
      ("role", Json.Str "router");
      ("replicas", Json.Num (float_of_int t.replicas));
      ("hedging", Json.Bool (t.hedge <> None));
      ( "hedge_delay_ms",
        match t.hedge with
        | None -> Json.Null
        | Some _ -> Json.Num (hedge_delay_ms t) );
      ("workers", Json.Arr per_worker);
    ]

(* --- the front-end server: same accept-loop shape as {!Daemon} --- *)

type server = {
  router : t;
  listeners : (Transport.address * Unix.file_descr) list;
  health_interval_ms : int;
  lock : Mutex.t;
  mutable stop : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;
}

let create_server ?(backlog = 16) ?(health_interval_ms = 1000) ~listen router =
  if listen = [] then invalid_arg "Router.create_server: no listen addresses";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listeners =
    let rec bind_all acc = function
      | [] -> List.rev acc
      | addr :: rest -> (
          match Transport.listen ~backlog addr with
          | fd -> bind_all ((Transport.bound_address addr fd, fd) :: acc) rest
          | exception e ->
              List.iter (fun (a, fd) -> Transport.close_listener a fd) acc;
              raise e)
    in
    bind_all [] listen
  in
  {
    router;
    listeners;
    health_interval_ms;
    lock = Mutex.create ();
    stop = false;
    conns = [];
  }

let server_addresses s = List.map fst s.listeners

let request_stop s =
  Mutex.lock s.lock;
  s.stop <- true;
  Mutex.unlock s.lock

let stopping s =
  Mutex.lock s.lock;
  let v = s.stop in
  Mutex.unlock s.lock;
  v

let handle_request s = function
  | Protocol.Hello -> Protocol.ok (Protocol.hello_banner ())
  | Protocol.Stats -> Protocol.ok (stats_json s.router)
  | Protocol.Shutdown ->
      request_stop s;
      Protocol.ok (Json.Obj [ ("shutting_down", Json.Bool true) ])
  | Protocol.Submit job -> forward s.router job

let handle_conn s fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send json =
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc
  in
  let serve_line line =
    let reply =
      match Protocol.request_of_json (Json.parse line) with
      | exception Failure m -> Protocol.error ~kind:"protocol" m
      | request -> handle_request s request
    in
    send (Protocol.reply_to_json reply)
  in
  (try
     send (Protocol.hello_banner ());
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
           if String.trim line <> "" then serve_line line;
           loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve s =
  (* Health probing on its own thread, so a slow worker never delays
     accepts; the 0.2 s tick only *considers* probing — [probe_due] sends
     a Hello when a worker's own schedule (interval for closed breakers,
     backed-off cooldown for open ones) says it is time. *)
  let prober =
    Thread.create
      (fun () ->
        while not (stopping s) do
          probe_due ~interval_ms:s.health_interval_ms s.router;
          sleepf 0.2
        done)
      ()
  in
  let socks = List.map snd s.listeners in
  let rec accept_loop () =
    if not (stopping s) then begin
      (match Unix.select socks [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | ready, _, _ ->
          List.iter
            (fun sock ->
              match Unix.accept sock with
              | fd, _ ->
                  let th = Thread.create (handle_conn s) fd in
                  Mutex.lock s.lock;
                  s.conns <- (fd, th) :: s.conns;
                  Mutex.unlock s.lock
              | exception Unix.Unix_error _ -> ())
            ready);
      accept_loop ()
    end
  in
  accept_loop ();
  List.iter (fun (addr, fd) -> Transport.close_listener addr fd) s.listeners;
  Mutex.lock s.lock;
  let conns = s.conns in
  s.conns <- [];
  Mutex.unlock s.lock;
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, th) -> Thread.join th) conns;
  Thread.join prober
