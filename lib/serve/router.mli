(** Consistent-hash front router: one address for a fleet of serve
    daemons ([symref router]).

    Jobs hash by their request {e spelling} (netlist text or path,
    analysis, io, sigma, r) onto a virtual-node ring — identical requests
    always reach the same worker, keeping each worker's result cache
    effective, and resizing the fleet only remaps the keys whose virtual
    nodes moved.  A worker that fails a forward is marked dead and the
    walk continues clockwise to the next distinct worker (counted in
    [router.failovers]); a background Hello prober revives it when it
    comes back.  Health marks are advisory: when every candidate is
    marked dead the walk tries them all anyway, so a stale mark degrades
    to latency, never an outage.

    The router holds no job state and never parses a netlist; it relays
    replies byte-for-byte, so an answer through the router is identical
    to one straight from the worker. *)

type t

val create : ?replicas:int -> ?backoff:Client.backoff -> Transport.address list -> t
(** [create addrs] builds the ring with [replicas] (default 64) virtual
    nodes per worker.  [backoff] shapes each forwarding attempt (default:
    2 attempts, 10 ms base — fail over fast rather than out-wait a dead
    worker).  @raise Invalid_argument on an empty worker list or
    [replicas < 1]. *)

val workers : t -> Transport.address list

val job_key : Protocol.job -> string
(** The routing key: MD5 hex over the job's value-relevant spelling.
    Deterministic and cheap — no parsing, no canonicalisation. *)

val owner : t -> string -> Transport.address
(** The worker a key hashes to (ignoring health). *)

val route : t -> string -> int list
(** Worker indices in ring walk order from the key's owner, each distinct
    worker once — the failover sequence [forward] follows. *)

val forward : t -> Protocol.job -> Protocol.reply
(** Submit through the ring: the owner first, then failover. Transient
    failures (connection refused/reset/dropped, no banner) mark the worker
    dead and move on; non-transient failures propagate.  When no worker is
    reachable the reply is a structured [connection] error. *)

val health_check : t -> unit
(** Probe every worker with Hello once, updating the alive marks
    ([router.health_checks] / [router.dead_workers]). *)

val stats_json : t -> Symref_obs.Json.t
(** Fleet-wide stats: ring parameters plus, per worker, its address,
    health mark and — when reachable — its own stats reply. *)

(** {1 Front-end server}

    The accept loop that makes the router a drop-in daemon: same NDJSON
    protocol, same banner, [Submit] forwarded to the fleet, [Stats]
    answered with {!stats_json}, [Shutdown] stopping the router (workers
    are administered separately). *)

type server

val create_server :
  ?backlog:int ->
  ?health_interval_ms:int ->
  listen:Transport.address list ->
  t ->
  server
(** Bind the front listeners (default backlog 16).  [health_interval_ms]
    (default 1000) paces the background prober {!serve} runs.
    @raise Unix.Unix_error when binding fails, [Invalid_argument] when
    [listen] is empty. *)

val server_addresses : server -> Transport.address list
(** Bound addresses, ephemeral TCP ports resolved. *)

val serve : server -> unit
(** Run the accept loop and the health prober until a [shutdown] request
    or {!request_stop}; listeners are closed and every connection joined
    before this returns. *)

val request_stop : server -> unit
(** Ask {!serve} to wind down; safe from any thread. *)
