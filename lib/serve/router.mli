(** Consistent-hash front router: one address for a fleet of serve
    daemons ([symref router], and the front half of [symref fleet]).

    Jobs hash by their request {e spelling} (netlist text or path,
    analysis, io, sigma, r) onto a virtual-node ring — identical requests
    always reach the same worker, keeping each worker's result cache
    effective, and resizing the fleet only remaps the keys whose virtual
    nodes moved.

    {b Circuit breakers.}  Each worker carries a breaker: [`Closed]
    (healthy) opens after [threshold] consecutive forward failures — or
    immediately when the background prober's Hello goes unanswered — and
    an open breaker refuses traffic for a cooldown that doubles on every
    re-open (capped).  Once the cooldown passes, the first request (or
    probe) through becomes the single {e half-open} trial: success closes
    the breaker, failure re-opens it for longer.  The marks stay
    advisory: when every candidate's breaker refuses, {!forward} tries
    them all anyway, so a stale mark degrades to latency, never an
    outage.  Transitions count in [router.breaker_open] /
    [router.breaker_half_open] / [router.breaker_close].

    {b Hedged requests.}  When the key's owner has not answered after a
    delay derived from recent forward latencies (the configured
    percentile, clamped into [[after_ms_min, after_ms_max]]), the job is
    re-issued to the next ring candidate and the first reply wins; the
    loser is abandoned.  Workers are deterministic and idempotent, so a
    duplicated job can only waste time, never change bytes.  Hedges and
    hedge wins count in [router.hedges] / [router.hedge_wins].

    The router holds no job state and never parses a netlist; it relays
    replies byte-for-byte, so an answer through the router is identical
    to one straight from the worker. *)

type t

type breaker_view = [ `Closed | `Open | `Half_open ]

type breaker_config = {
  threshold : int;
      (** Consecutive forward failures that open a closed breaker. *)
  cooldown_ms : float;
      (** First open interval; doubles on every re-open without an
          intervening close. *)
  max_cooldown_ms : float;  (** Cap on the doubled cooldown. *)
}

val default_breaker : breaker_config
(** [{threshold = 3; cooldown_ms = 250.; max_cooldown_ms = 10_000.}] *)

type hedge_config = {
  after_ms_min : float;  (** Floor on the hedge delay. *)
  after_ms_max : float;
      (** Ceiling on the hedge delay; also the delay used before any
          latency samples exist. *)
  percentile : float;
      (** Which recent-latency percentile derives the delay (e.g. 0.99). *)
}

val default_hedge : hedge_config
(** [{after_ms_min = 25.; after_ms_max = 500.; percentile = 0.99}] *)

val create :
  ?replicas:int ->
  ?backoff:Client.backoff ->
  ?breaker:breaker_config ->
  ?hedge:hedge_config option ->
  Transport.address list ->
  t
(** [create addrs] builds the ring with [replicas] (default 64) virtual
    nodes per worker.  [backoff] shapes each forwarding attempt (default:
    2 attempts, 10 ms base — fail over fast rather than out-wait a dead
    worker).  [breaker] tunes the per-worker circuit breakers; [hedge]
    configures request hedging (default {!default_hedge}; pass [None] to
    disable).  @raise Invalid_argument on an empty worker list,
    [replicas < 1] or [threshold < 1]. *)

val workers : t -> Transport.address list

val job_key : Protocol.job -> string
(** The routing key: MD5 hex over the job's value-relevant spelling.
    Deterministic and cheap — no parsing, no canonicalisation. *)

val owner : t -> string -> Transport.address
(** The worker a key hashes to (ignoring health). *)

val route : t -> string -> int list
(** Worker indices in ring walk order from the key's owner, each distinct
    worker once — the failover sequence [forward] follows. *)

val forward : t -> Protocol.job -> Protocol.reply
(** Submit through the ring: the owner first (hedged against the next
    candidate when hedging is on), then failover.  Transient failures
    (connection refused/reset/dropped, no banner) feed the worker's
    breaker and move on; non-transient failures (version mismatch, bad
    spec, malformed reply) are deterministic in the job and end the walk
    with a structured reply of the matching kind — [forward] never
    raises.  When no worker is reachable the reply is a structured
    [connection] error. *)

val breaker_state : t -> int -> breaker_view
(** The breaker of worker index [w] (as listed by {!workers}), now. *)

val hedge_delay_ms : t -> float
(** The delay {!forward} would hedge after right now: the configured
    percentile of recent forward latencies, clamped — or [infinity] when
    hedging is disabled. *)

val health_check : t -> unit
(** Probe every worker with Hello once, unconditionally.  The prober is
    authoritative: success closes the breaker, failure trips it open on
    the spot ([router.health_checks] / [router.dead_workers]). *)

val probe_due : ?now:float -> interval_ms:int -> t -> unit
(** Probe only the workers whose schedule says it is time: closed
    breakers every [interval_ms], open breakers once their (exponentially
    backed-off) cooldown passes, each stretched by {!probe_jitter}.  The
    background prober {!serve} runs calls this a few times a second. *)

val probe_jitter : salt:int -> int -> float
(** [probe_jitter ~salt n] is a deterministic stretch factor in
    [[0.8, 1.2)] for probe [n] of worker [salt] — a pure function, so a
    replayed schedule is identical while distinct workers never probe in
    lockstep. *)

val stats_json : t -> Symref_obs.Json.t
(** Fleet-wide stats: ring and hedge parameters plus, per worker, its
    address, breaker state (and the derived [alive] flag: breaker
    closed), consecutive-failure count and — when reachable — its own
    stats reply. *)

(** {1 Front-end server}

    The accept loop that makes the router a drop-in daemon: same NDJSON
    protocol, same banner, [Submit] forwarded to the fleet, [Stats]
    answered with {!stats_json}, [Shutdown] stopping the router (workers
    are administered separately). *)

type server

val create_server :
  ?backlog:int ->
  ?health_interval_ms:int ->
  listen:Transport.address list ->
  t ->
  server
(** Bind the front listeners (default backlog 16).  [health_interval_ms]
    (default 1000) paces the background prober {!serve} runs.
    @raise Unix.Unix_error when binding fails, [Invalid_argument] when
    [listen] is empty. *)

val server_addresses : server -> Transport.address list
(** Bound addresses, ephemeral TCP ports resolved. *)

val serve : server -> unit
(** Run the accept loop and the health prober until a [shutdown] request
    or {!request_stop}; listeners are closed and every connection joined
    before this returns. *)

val request_stop : server -> unit
(** Ask {!serve} to wind down; safe from any thread. *)
