(* Bounded scheduler: admission control + completion tracking on top of
   Domain_pool.async, with a private fallback thread for single-core hosts.

   The pool's workers execute jobs in parallel (they are separate domains);
   tickets and the in-flight counter are the only shared state, each behind
   its own mutex.  Mutex/Condition work across domains and systhreads
   alike, so a connection thread awaiting a ticket wakes correctly when a
   worker domain resolves it. *)

module Metrics = Symref_obs.Metrics
module Domain_pool = Symref_core.Domain_pool

type 'a ticket = {
  t_lock : Mutex.t;
  t_done : Condition.t;
  mutable value : ('a, exn) result option;
}

type t = {
  lock : Mutex.t;
  changed : Condition.t; (* in_flight decreased *)
  cap : int;
  mutable in_flight : int;
  mutable accepting : bool;
  (* Fallback lane for machines where the domain pool has no workers. *)
  fb_lock : Mutex.t;
  fb_work : Condition.t;
  fb_queue : (unit -> unit) Queue.t;
  mutable fb_thread : Thread.t option;
  mutable fb_stop : bool;
}

let create ?(capacity = 64) ?(workers = 0) () =
  let workers =
    if workers > 0 then workers
    else Int.max 1 (Domain.recommended_domain_count () - 1)
  in
  Domain_pool.ensure workers;
  {
    lock = Mutex.create ();
    changed = Condition.create ();
    cap = Int.max 1 capacity;
    in_flight = 0;
    accepting = true;
    fb_lock = Mutex.create ();
    fb_work = Condition.create ();
    fb_queue = Queue.create ();
    fb_thread = None;
    fb_stop = false;
  }

let fallback_loop t () =
  let rec next () =
    Mutex.lock t.fb_lock;
    let rec await () =
      match Queue.take_opt t.fb_queue with
      | Some j -> Some j
      | None ->
          if t.fb_stop then None
          else begin
            Condition.wait t.fb_work t.fb_lock;
            await ()
          end
    in
    let j = await () in
    Mutex.unlock t.fb_lock;
    match j with
    | None -> ()
    | Some j ->
        j ();
        next ()
  in
  next ()

let run_on_fallback t job =
  Mutex.lock t.fb_lock;
  if t.fb_thread = None then t.fb_thread <- Some (Thread.create (fallback_loop t) ());
  Queue.add job t.fb_queue;
  Condition.signal t.fb_work;
  Mutex.unlock t.fb_lock

let submit t f =
  Mutex.lock t.lock;
  let admitted = t.accepting && t.in_flight < t.cap in
  if admitted then t.in_flight <- t.in_flight + 1;
  Mutex.unlock t.lock;
  if not admitted then begin
    Metrics.incr Metrics.serve_jobs_rejected;
    None
  end
  else begin
    Metrics.incr Metrics.serve_jobs_submitted;
    let ticket =
      { t_lock = Mutex.create (); t_done = Condition.create (); value = None }
    in
    let run () =
      let v = try Ok (f ()) with e -> Error e in
      Mutex.lock ticket.t_lock;
      ticket.value <- Some v;
      Condition.broadcast ticket.t_done;
      Mutex.unlock ticket.t_lock;
      Mutex.lock t.lock;
      t.in_flight <- t.in_flight - 1;
      Condition.broadcast t.changed;
      Mutex.unlock t.lock
    in
    if not (Domain_pool.async run) then run_on_fallback t run;
    Some ticket
  end

let await ticket =
  Mutex.lock ticket.t_lock;
  let rec wait () =
    match ticket.value with
    | Some v -> v
    | None ->
        Condition.wait ticket.t_done ticket.t_lock;
        wait ()
  in
  let v = wait () in
  Mutex.unlock ticket.t_lock;
  v

let peek ticket =
  Mutex.lock ticket.t_lock;
  let v = ticket.value in
  Mutex.unlock ticket.t_lock;
  v

let pending t =
  Mutex.lock t.lock;
  let n = t.in_flight in
  Mutex.unlock t.lock;
  n

let capacity t = t.cap

let wait_until_below t n =
  Mutex.lock t.lock;
  while t.in_flight >= n do
    Condition.wait t.changed t.lock
  done;
  Mutex.unlock t.lock

let stop t =
  Mutex.lock t.lock;
  t.accepting <- false;
  Mutex.unlock t.lock

let drain t =
  Mutex.lock t.lock;
  while t.in_flight > 0 do
    Condition.wait t.changed t.lock
  done;
  Mutex.unlock t.lock

let shutdown t =
  stop t;
  drain t;
  Mutex.lock t.fb_lock;
  t.fb_stop <- true;
  Condition.broadcast t.fb_work;
  let th = t.fb_thread in
  t.fb_thread <- None;
  Mutex.unlock t.fb_lock;
  Option.iter Thread.join th
